#!/usr/bin/env bash
# CI gate for pmg: plain build + tests, sanitizer build + tests, and static
# analysis on changed files. Tool-gated: hosts without clang-tidy /
# clang-format skip those steps with a notice instead of failing, so the
# script runs both in a full CI image and in the minimal build container.
#
# Usage: tools/ci_check.sh [--fast|--tsan]
#   --fast   skip the sanitizer rebuilds (plain build + lint/format only)
#   --tsan   ThreadSanitizer preset: TSan build + tier1 tests only (the
#            nightly job; ASan/UBSan and the full suite are skipped)
set -u

REPO="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO"

FAST=0
TSAN=0
[[ "${1:-}" == "--fast" ]] && FAST=1
[[ "${1:-}" == "--tsan" ]] && TSAN=1

JOBS="$(nproc 2>/dev/null || echo 2)"
FAILURES=0

step() { printf '\n=== %s ===\n' "$*"; }
fail() {
  echo "FAILED: $*"
  FAILURES=$((FAILURES + 1))
}

# --- 0. TSan preset: nightly ThreadSanitizer pass, then exit ---
# Virtual threads run sequentially on the host today, so TSan stays quiet;
# this job exists so the first host-parallel ParallelFor (ROADMAP item 4)
# meets a race detector on day one, not in production.
if [[ "$TSAN" == 1 ]]; then
  step "build + ctest tier1 (-DPMG_SANITIZE=thread)"
  cmake -B build-ci-thread -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPMG_SANITIZE=thread >/dev/null \
    && cmake --build build-ci-thread -j "$JOBS" \
    && (cd build-ci-thread && ctest -L tier1 --output-on-failure -j "$JOBS") \
    || fail "tsan build/tests"
  step "summary"
  if [[ "$FAILURES" -gt 0 ]]; then
    echo "$FAILURES step(s) failed"
    exit 1
  fi
  echo "all checks passed"
  exit 0
fi

# --- 1. Plain Release build + full test suite ---
step "build (Release)"
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release >/dev/null \
  && cmake --build build-ci -j "$JOBS" \
  || fail "release build"
step "ctest (Release)"
(cd build-ci && ctest --output-on-failure -j "$JOBS") || fail "release tests"

# --- 2. Project-invariant lint: pmg_lint over the tree ---
# Built by step 1; enforces the determinism / hook-guard / atomicity
# contracts (docs/static-analysis.md). The committed baseline only
# shrinks, so both new findings and stale entries fail here.
step "pmg_lint (repo gate)"
if [[ -x build-ci/tools/pmg_lint ]]; then
  ./build-ci/tools/pmg_lint --root "$REPO" \
    --baseline tools/lint_baseline.txt \
    src tools bench tests || fail "pmg_lint"
else
  fail "pmg_lint binary missing (build failed?)"
fi

# --- 3. Sanitizer build + full test suite (ASan, then UBSan) ---
if [[ "$FAST" == 0 ]]; then
  for SAN in address undefined; do
    step "build + ctest (-DPMG_SANITIZE=$SAN)"
    cmake -B "build-ci-$SAN" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPMG_SANITIZE="$SAN" >/dev/null \
      && cmake --build "build-ci-$SAN" -j "$JOBS" \
      && (cd "build-ci-$SAN" && ctest --output-on-failure -j "$JOBS") \
      || fail "$SAN build/tests"
  done
fi

# --- 4. clang-tidy on files changed relative to the merge base ---
if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy (changed files)"
  BASE="$(git merge-base HEAD origin/main 2>/dev/null \
          || git rev-parse 'HEAD~1' 2>/dev/null || true)"
  CHANGED="$(git diff --name-only --diff-filter=d "${BASE:-HEAD}" -- \
             '*.cc' '*.h' | grep -Ev '^build' || true)"
  if [[ -n "$CHANGED" ]]; then
    # shellcheck disable=SC2086
    clang-tidy -p build-ci --quiet $CHANGED || fail "clang-tidy"
  else
    echo "no changed C++ files"
  fi
else
  echo "clang-tidy not found; skipping lint"
fi

# --- 5. Format check over the whole tree ---
if command -v clang-format >/dev/null 2>&1; then
  step "clang-format --dry-run"
  git ls-files '*.cc' '*.h' | grep -Ev '^build' \
    | xargs clang-format --dry-run --Werror || fail "clang-format"
else
  echo "clang-format not found; skipping format check"
fi

step "summary"
if [[ "$FAILURES" -gt 0 ]]; then
  echo "$FAILURES step(s) failed"
  exit 1
fi
echo "all checks passed"
