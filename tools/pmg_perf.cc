// pmg_perf: the CI perf-regression gate. Compares the BENCH_*.json
// reports a bench run just wrote against the committed baselines:
//
//   pmg_perf --baseline bench/baselines [--current .] [--threshold 5%]
//
// Every BENCH_*.json in the baseline directory must have a counterpart in
// the current directory; rows are matched by identity (their string/bool
// fields) and every shared numeric field becomes a delta. Fields ending
// in _ns are simulated-time measurements and gate the result: a ratio
// above 1 + threshold is a regression. Missing files, rows, or fields
// fail the gate outright — a measurement that silently disappears must
// not pass.
//
// Exit codes: 0 = within threshold, 1 = regression or comparison failure,
// 2 = usage or I/O error.

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "pmg/metrics/perf_diff.h"
#include "pmg/scenarios/report.h"

namespace {

using namespace pmg;

[[noreturn]] void Die(const char* fmt, ...) {
  std::fprintf(stderr, "pmg_perf: ");
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
  std::exit(2);
}

void Usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s --baseline <dir> [--current <dir>] [--threshold <pct>]\n"
      "compares every BENCH_*.json under --baseline against the file of\n"
      "the same name under --current (default: the working directory).\n"
      "--threshold takes '5%%' or '0.05' (default 5%%); only *_ns fields\n"
      "gate. exit 0 = pass, 1 = regression/missing data, 2 = usage.\n",
      argv0);
}

/// Reads a whole file; false if it cannot be opened.
bool ReadFile(const std::filesystem::path& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

std::string FormatPct(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", (ratio - 1.0) * 100.0);
  return buf;
}

std::string FormatValue(double v) {
  char buf[32];
  // Bench fields are counters and nanoseconds; print integers as such.
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      Usage(stdout, argv[0]);
      return 0;
    }
  }

  std::string baseline_dir;
  std::string current_dir = ".";
  std::string threshold_text = "5%";
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string value;
    bool has_value = false;
    if (flag.rfind("--", 0) == 0) {
      const size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        value = flag.substr(eq + 1);
        flag = flag.substr(0, eq);
        has_value = true;
      }
    }
    auto need_value = [&]() -> const std::string& {
      if (!has_value) {
        if (i + 1 >= argc) Die("flag %s requires a value", flag.c_str());
        value = argv[++i];
        has_value = true;
      }
      return value;
    };
    if (flag == "--baseline") {
      baseline_dir = need_value();
    } else if (flag == "--current") {
      current_dir = need_value();
    } else if (flag == "--threshold") {
      threshold_text = need_value();
    } else {
      Die("unknown flag '%s' (run with --help for usage)", argv[i]);
    }
  }
  if (baseline_dir.empty()) Die("--baseline is required");
  double threshold = 0.0;
  if (!metrics::ParseThreshold(threshold_text, &threshold)) {
    Die("bad --threshold '%s' (want e.g. '5%%' or '0.05')",
        threshold_text.c_str());
  }

  std::error_code ec;
  std::filesystem::directory_iterator it(baseline_dir, ec);
  if (ec) Die("cannot read baseline directory '%s'", baseline_dir.c_str());
  std::vector<std::string> names;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      names.push_back(name);
    }
  }
  if (names.empty()) {
    Die("no BENCH_*.json files under '%s'", baseline_dir.c_str());
  }
  std::sort(names.begin(), names.end());

  metrics::PerfDiffResult result;
  for (const std::string& name : names) {
    std::string baseline_text;
    if (!ReadFile(std::filesystem::path(baseline_dir) / name,
                  &baseline_text)) {
      Die("cannot read baseline '%s/%s'", baseline_dir.c_str(),
          name.c_str());
    }
    std::string current_text;
    if (!ReadFile(std::filesystem::path(current_dir) / name,
                  &current_text)) {
      // A bench that stopped producing its report must not pass silently.
      result.failures.push_back(name + ": missing from current directory '" +
                                current_dir + "'");
      continue;
    }
    metrics::DiffBenchText(baseline_text, current_text, name, threshold,
                           &result);
  }

  scenarios::Table table(
      {"bench", "row", "field", "baseline", "current", "delta", "verdict"});
  for (const metrics::PerfDelta& d : result.deltas) {
    table.AddRow({d.bench, d.row, d.field, FormatValue(d.baseline),
                  FormatValue(d.current), FormatPct(d.ratio),
                  d.regression ? "REGRESSION"
                               : (d.gated ? "ok" : "info")});
  }
  table.Print();
  for (const std::string& note : result.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  for (const std::string& failure : result.failures) {
    std::printf("FAILURE: %s\n", failure.c_str());
  }
  std::printf(
      "\npmg_perf: %zu bench(es), %zu delta(s), %llu regression(s), "
      "%zu failure(s) at threshold %s\n",
      names.size(), result.deltas.size(),
      static_cast<unsigned long long>(result.regressions),
      result.failures.size(), threshold_text.c_str());
  if (!result.ok()) {
    std::printf("verdict: FAIL\n");
    return 1;
  }
  std::printf("verdict: PASS\n");
  return 0;
}
