#ifndef PMG_TOOLS_HOSTPERF_WALLCLOCK_H_
#define PMG_TOOLS_HOSTPERF_WALLCLOCK_H_

/// \file wallclock.h
/// Host wall-clock measurement. This directory is the lint gate's sole
/// --host-dir exemption from pmg-no-host-clock: host time may be read
/// here and nowhere else that the gate scans. The simulator's clocks are
/// all SimNs; this header exists to measure the simulator itself (how
/// fast the host prices a run — edges per host-second), so anything
/// derived from it is machine-dependent by nature. Bench emitters must
/// publish such numbers only as non-`_ns` fields, which the pmg_perf
/// gate treats as informational rather than regression-gated.

#include <chrono>
#include <cstdint>

namespace pmg::hostperf {

/// Monotonic host nanoseconds since an arbitrary epoch.
inline uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Stopwatch over WallNowNs, started at construction.
class WallTimer {
 public:
  WallTimer() : start_ns_(WallNowNs()) {}
  void Reset() { start_ns_ = WallNowNs(); }
  double Seconds() const {
    return static_cast<double>(WallNowNs() - start_ns_) * 1e-9;
  }

 private:
  uint64_t start_ns_;
};

}  // namespace pmg::hostperf

#endif  // PMG_TOOLS_HOSTPERF_WALLCLOCK_H_
