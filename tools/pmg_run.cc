// pmg_run: command-line driver for one (framework, app, machine, graph)
// cell of the paper's experiment space.
//
//   pmg_run --graph clueweb12 --app bfs --framework galois \
//           --machine pmm --threads 96 [--pages 4k|2m] [--migration]
//           [--placement local|interleaved|blocked] [--pr-rounds N]
//           [--sanitize]
//
// Graph can be a Table 3 scenario name, or "file:<path>" for a binary CSR
// written by pmg::graph::SaveCsr. Prints the simulated time and the
// hardware-counter summary.

#include <cstdio>
#include <cstring>
#include <string>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/graph_io.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"

namespace {

using namespace pmg;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --graph <name|file:path> --app <bc|bfs|cc|kcore|pr|sssp|tc>\n"
      "          [--framework galois|gap|graphit|gbbs] [--machine pmm|dram|"
      "entropy]\n"
      "          [--threads N] [--pages 4k|2m] [--placement "
      "local|interleaved|blocked]\n"
      "          [--migration] [--pr-rounds N] [--vertex-programs] "
      "[--sanitize]\n"
      "graph names: kron30 clueweb12 uk14 iso_m100 rmat32 wdc12\n",
      argv0);
  return 2;
}

bool ParseApp(const std::string& s, frameworks::App* out) {
  for (frameworks::App app : frameworks::AllApps()) {
    if (frameworks::AppName(app) == s) {
      *out = app;
      return true;
    }
  }
  return false;
}

bool ParseFramework(const std::string& s, frameworks::FrameworkKind* out) {
  if (s == "galois") *out = frameworks::FrameworkKind::kGalois;
  else if (s == "gap") *out = frameworks::FrameworkKind::kGap;
  else if (s == "graphit") *out = frameworks::FrameworkKind::kGraphIt;
  else if (s == "gbbs") *out = frameworks::FrameworkKind::kGbbs;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_name;
  std::string app_name;
  std::string framework_name = "galois";
  std::string machine_name = "pmm";
  frameworks::RunConfig cfg;
  cfg.threads = 96;

  std::string pages;
  std::string placement;
  bool migration = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--graph") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      graph_name = v;
    } else if (arg == "--app") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      app_name = v;
    } else if (arg == "--framework") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      framework_name = v;
    } else if (arg == "--machine") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      machine_name = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      cfg.threads = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--pages") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      pages = v;
    } else if (arg == "--placement") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      placement = v;
    } else if (arg == "--pr-rounds") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      cfg.pr_max_rounds = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--migration") {
      migration = true;
    } else if (arg == "--vertex-programs") {
      cfg.force_vertex_programs = true;
    } else if (arg == "--sanitize") {
      cfg.sanitize = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (graph_name.empty() || app_name.empty()) return Usage(argv[0]);

  frameworks::App app;
  frameworks::FrameworkKind fw;
  if (!ParseApp(app_name, &app) || !ParseFramework(framework_name, &fw)) {
    return Usage(argv[0]);
  }
  if (machine_name == "pmm") {
    cfg.machine = memsim::OptanePmmConfig();
  } else if (machine_name == "dram") {
    cfg.machine = memsim::DramOnlyConfig();
  } else if (machine_name == "entropy") {
    cfg.machine = memsim::EntropyConfig();
  } else {
    return Usage(argv[0]);
  }
  cfg.machine.migration.enabled = migration;
  if (pages == "4k") cfg.page_size = memsim::PageSizeClass::k4K;
  else if (pages == "2m") cfg.page_size = memsim::PageSizeClass::k2M;
  else if (!pages.empty()) return Usage(argv[0]);
  if (placement == "local") cfg.placement = memsim::Placement::kLocal;
  else if (placement == "interleaved") {
    cfg.placement = memsim::Placement::kInterleaved;
  } else if (placement == "blocked") {
    cfg.placement = memsim::Placement::kBlocked;
  } else if (!placement.empty()) {
    return Usage(argv[0]);
  }

  graph::CsrTopology topo;
  uint64_t represented = 0;
  if (graph_name.rfind("file:", 0) == 0) {
    if (!graph::LoadCsr(graph_name.substr(5), &topo)) {
      std::fprintf(stderr, "cannot load graph from %s\n",
                   graph_name.c_str() + 5);
      return 1;
    }
  } else {
    const scenarios::Scenario s = scenarios::MakeScenario(graph_name);
    topo = s.topo;
    represented = s.represented_vertices;
  }
  std::printf("graph %s: %s\n", graph_name.c_str(),
              graph::ComputeProperties(topo).ToString().c_str());

  const frameworks::AppInputs inputs =
      frameworks::AppInputs::Prepare(std::move(topo), represented);
  const frameworks::AppRunResult r = RunApp(fw, app, inputs, cfg);
  if (!r.supported) {
    std::printf("%s cannot run %s on this graph (framework limitation)\n",
                framework_name.c_str(), app_name.c_str());
    return 0;
  }
  std::printf("\n%s %s on %s (%u threads): %.3f ms simulated, %llu rounds\n",
              framework_name.c_str(), app_name.c_str(), machine_name.c_str(),
              cfg.threads, static_cast<double>(r.time_ns) / 1e6,
              static_cast<unsigned long long>(r.rounds));
  std::printf("\ncounters:\n%s\n", r.stats.ToString().c_str());
  if (r.sanitized) {
    scenarios::PrintSancheckReport(r.sancheck);
    // A sanitized run that found races is a failed run: the kernel (or a
    // missing atomic annotation) is broken.
    if (r.sancheck.races > 0) return 1;
  }
  return 0;
}
