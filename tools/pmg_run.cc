// pmg_run: command-line driver for one (framework, app, machine, graph)
// cell of the paper's experiment space.
//
//   pmg_run --graph clueweb12 --app bfs --framework galois \
//           --machine pmm --threads 96 [--pages 4k|2m] [--migration]
//           [--placement local|interleaved|blocked] [--pr-rounds N]
//           [--sanitize] [--faults <spec>] [--checkpoint-every N]
//           [--trace out.json] [--json report.json]
//           [--metrics[=prom|json]] [--profile out.folded]
//
// Graph can be a Table 3 scenario name, or "file:<path>" for a binary CSR
// written by pmg::graph::SaveCsr. Prints the simulated time and the
// hardware-counter summary.
//
// Flags take "--flag value" or "--flag=value". Every flag and input is
// validated up front: an unknown flag, a malformed value (including a
// --faults spec FaultSchedule::Parse rejects), or an unloadable graph is
// a one-line error and exit code 2.
//
// A schedule containing a crash — or any nonzero --checkpoint-every —
// routes bfs/cc/pr/sssp to the faultsim recovery drivers, which restart
// after simulated crashes from the newest valid checkpoint.
//
// --serve=<spec> switches to the pmg::serve query-serving mode instead of
// a batch app run: the graph stays resident and an open-loop arrival
// trace (preset name or poisson|burst|diurnal:key=value,... grammar) is
// drained through the overload-robust server. --qps and --deadline-ns
// override the spec's values; --serve-naive runs the no-robustness
// baseline. Serve mode composes with --faults (crash recovery is built
// in), --trace, --json, --metrics, and --profile. --serve-trace[=K]
// attaches the pmg::servetrace request tracer (per-request span tracks in
// the Chrome trace, timelines in the JSON report); --explain-tail[=table|
// json] decomposes the p50/p99/p999 latencies into queue/service/degraded/
// hedge/backoff/recovery components with ranked miss causes.
//
// --tierscope[=table|json] attaches the pmg::tierscope placement observer
// to a batch run: the migration daemon's candidate / migrate / skip
// decision audit, the per-node occupancy series, and (with --metrics /
// --explain) the hot-on-the-wrong-node misplacement join with its
// journal-priced tiering regret. Attaching it never changes a simulated
// number.

#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "pmg/faultsim/recovery.h"
#include "pmg/frameworks/framework.h"
#include "pmg/graph/graph_io.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/metrics/metrics_session.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"
#include "pmg/serve/server.h"
#include "pmg/serve/workload.h"
#include "pmg/servetrace/servetrace.h"
#include "pmg/tierscope/tierscope.h"
#include "pmg/trace/json.h"
#include "pmg/trace/trace_session.h"
#include "pmg/whatif/explain.h"
#include "pmg/whatif/journal.h"

namespace {

using namespace pmg;

[[noreturn]] void Die(const char* fmt, ...) {
  std::fprintf(stderr, "pmg_run: ");
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
  std::exit(2);
}

void Usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s --graph <name|file:path> --app <bc|bfs|cc|kcore|pr|sssp|tc>\n"
      "          [--framework galois|gap|graphit|gbbs] [--machine pmm|dram|"
      "entropy]\n"
      "          [--threads N] [--host-threads N] [--pages 4k|2m] "
      "[--placement local|interleaved|blocked]\n"
      "          [--migration] [--pr-rounds N] [--vertex-programs] "
      "[--sanitize]\n"
      "          [--faults <spec>] [--checkpoint-every N]\n"
      "          [--trace <chrome-trace.json>] [--json <report.json>]\n"
      "          [--metrics[=prom|json]] [--profile <out.folded>]\n"
      "          [--explain[=table|json]] [--journal <out.pmgj>]\n"
      "          [--tierscope[=table|json]]\n"
      "       %s --graph <name|file:path> --serve <preset|spec>\n"
      "          [--qps <rate>] [--deadline-ns <ns>] [--serve-naive]\n"
      "          [--serve-trace[=K]] [--explain-tail[=table|json]]\n"
      "          [--faults <spec>] [--trace ...] [--json ...] "
      "[--metrics...]\n"
      "graph names: kron30 clueweb12 uk14 iso_m100 rmat32 wdc12\n"
      "fault spec:  ';'-separated events, e.g.\n"
      "             'ue@access:500;lat@access:100,ns=2000,count=8;"
      "crash@epoch:3;seed=7'\n"
      "--trace writes a Chrome trace-event file (load in Perfetto);\n"
      "--json writes a versioned machine-readable run report;\n"
      "--metrics prints the heatmap plus the registry (Prometheus text by\n"
      "default, or the versioned metrics JSON with --metrics=json);\n"
      "--profile samples PMG_PROF_SCOPE stacks on simulated time and\n"
      "writes a folded-stack file (flamegraph.pl-compatible);\n"
      "--explain records an epoch cost journal and prints the bottleneck\n"
      "explanation (bound split, stragglers, counterfactual levers);\n"
      "--journal writes the recorded journal to a versioned .pmgj file\n"
      "that pmg_explain re-prices offline;\n"
      "--host-threads sets how many host threads price the simulation\n"
      "(default: PMG_HOST_THREADS, else hardware concurrency); every\n"
      "simulated result is byte-identical no matter the value;\n"
      "--serve serves bfs/sssp/pr-topk/ego queries from an open-loop\n"
      "arrival trace (presets: canonical steady nightly, or\n"
      "poisson|burst|diurnal:qps=...,n=...,deadline=...,mix=...,seed=...)\n"
      "through the overload-robust server; --serve-naive drops the\n"
      "robustness policies (unbounded queue, no timeout/retry/hedge);\n"
      "--serve-trace records per-request span timelines (slowest-K plus\n"
      "shed/failed requests become request tracks in --trace output and a\n"
      "servetrace section in --json output; default K=8);\n"
      "--explain-tail decomposes p50/p99/p999 per query kind into\n"
      "queue/service/degraded/hedge/backoff/recovery time with ranked\n"
      "miss causes (contrast two runs offline with pmg_explain --tail);\n"
      "--tierscope audits the memory-tier decisions of a batch run (the\n"
      "candidate -> migrate/skip funnel, daemon cost split, per-node\n"
      "flows; with --metrics also the hot-on-the-wrong-node misplacement\n"
      "join, priced from the --explain journal) as a table or the\n"
      "versioned JSON that pmg_explain --tiering re-reads; per-node\n"
      "occupancy/migration tracks join the --trace output.\n",
      argv0, argv0);
}

/// The machine-counter section of the --json report.
void AppendStatsJson(pmg::trace::JsonWriter* w,
                     const memsim::MachineStats& s) {
  w->BeginObject();
  w->Key("accesses").UInt(s.accesses);
  w->Key("reads").UInt(s.reads);
  w->Key("writes").UInt(s.writes);
  w->Key("cpu_cache_hits").UInt(s.cpu_cache_hits);
  w->Key("cpu_cache_misses").UInt(s.cpu_cache_misses);
  w->Key("tlb_hits").UInt(s.tlb_hits);
  w->Key("tlb_misses").UInt(s.tlb_misses);
  w->Key("page_walk_ns").UInt(s.page_walk_ns);
  w->Key("minor_faults").UInt(s.minor_faults);
  w->Key("hint_faults").UInt(s.hint_faults);
  w->Key("migrations").UInt(s.migrations);
  w->Key("tlb_shootdowns").UInt(s.tlb_shootdowns);
  w->Key("local_accesses").UInt(s.local_accesses);
  w->Key("remote_accesses").UInt(s.remote_accesses);
  w->Key("near_mem_hits").UInt(s.near_mem_hits);
  w->Key("near_mem_misses").UInt(s.near_mem_misses);
  w->Key("near_mem_writebacks").UInt(s.near_mem_writebacks);
  w->Key("dram_bytes").UInt(s.dram_bytes);
  w->Key("pmm_read_bytes").UInt(s.pmm_read_bytes);
  w->Key("pmm_write_bytes").UInt(s.pmm_write_bytes);
  w->Key("storage_read_bytes").UInt(s.storage_read_bytes);
  w->Key("storage_write_bytes").UInt(s.storage_write_bytes);
  w->Key("total_ns").UInt(s.total_ns);
  w->Key("user_ns").UInt(s.user_ns);
  w->Key("kernel_ns").UInt(s.kernel_ns);
  w->Key("epochs").UInt(s.epochs);
  w->Key("bandwidth_bound_epochs").UInt(s.bandwidth_bound_epochs);
  w->Key("pages_quarantined").UInt(s.pages_quarantined);
  w->Key("machine_check_ns").UInt(s.machine_check_ns);
  w->Key("trace_attributed_ns").UInt(s.trace_attributed_ns);
  w->Key("traced_epochs").UInt(s.traced_epochs);
  w->EndObject();
}

/// Emits `body` to `path`; exit code 2 on an unwritable path.
void WriteOrDie(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) Die("cannot open '%s' for writing", path.c_str());
  const size_t n = std::fwrite(body.data(), 1, body.size(), f);
  if (n != body.size() || std::fclose(f) != 0) {
    Die("short write to '%s'", path.c_str());
  }
}

bool ParseApp(const std::string& s, frameworks::App* out) {
  for (frameworks::App app : frameworks::AllApps()) {
    if (frameworks::AppName(app) == s) {
      *out = app;
      return true;
    }
  }
  return false;
}

bool ParseFramework(const std::string& s, frameworks::FrameworkKind* out) {
  if (s == "galois") *out = frameworks::FrameworkKind::kGalois;
  else if (s == "gap") *out = frameworks::FrameworkKind::kGap;
  else if (s == "graphit") *out = frameworks::FrameworkKind::kGraphIt;
  else if (s == "gbbs") *out = frameworks::FrameworkKind::kGbbs;
  else return false;
  return true;
}

/// Whole-string unsigned decimal; rejects "12abc", "-1", "" and overflow.
bool ParseU32(const std::string& s, uint32_t* out) {
  if (s.empty()) return false;
  uint32_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

/// Whole-string decimal double; rejects trailing junk, empty, inf/nan.
bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (!(v == v) || v > 1e300 || v < -1e300) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      Usage(stdout, argv[0]);
      return 0;
    }
  }
  if (argc <= 1) {
    Usage(stderr, argv[0]);
    return 2;
  }

  std::string graph_name;
  std::string app_name;
  std::string framework_name = "galois";
  std::string machine_name = "pmm";
  frameworks::RunConfig cfg;
  cfg.threads = 96;

  std::string pages;
  std::string placement;
  std::string faults_spec;
  std::string trace_path;
  std::string json_path;
  std::string metrics_format;  // empty = no --metrics
  std::string profile_path;
  std::string explain_mode;  // empty = no --explain
  std::string journal_path;
  std::string serve_spec;  // empty = batch mode, not serve mode
  double qps_override = 0;
  uint64_t deadline_override = 0;
  bool qps_set = false;
  bool deadline_set = false;
  bool serve_naive = false;
  uint32_t serve_trace_k = servetrace::kDefaultSlowestK;
  bool serve_trace_set = false;
  std::string explain_tail_mode;  // empty = no --explain-tail
  std::string tierscope_mode;  // empty = no --tierscope
  bool migration = false;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string value;
    bool has_value = false;
    if (flag.rfind("--", 0) == 0) {
      const size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        value = flag.substr(eq + 1);
        flag = flag.substr(0, eq);
        has_value = true;
      }
    }
    // Pulls the flag's value from "=..." or the next argv slot.
    auto need_value = [&]() -> const std::string& {
      if (!has_value) {
        if (i + 1 >= argc) Die("flag %s requires a value", flag.c_str());
        value = argv[++i];
        has_value = true;
      }
      return value;
    };
    auto no_value = [&]() {
      if (has_value) Die("flag %s takes no value", flag.c_str());
    };
    if (flag == "--graph") {
      graph_name = need_value();
    } else if (flag == "--app") {
      app_name = need_value();
    } else if (flag == "--framework") {
      framework_name = need_value();
    } else if (flag == "--machine") {
      machine_name = need_value();
    } else if (flag == "--threads") {
      if (!ParseU32(need_value(), &cfg.threads) || cfg.threads == 0) {
        Die("--threads wants a positive integer, got '%s'", value.c_str());
      }
    } else if (flag == "--host-threads") {
      // Host execution width only: never appears in any report, and every
      // simulated number is byte-identical across values.
      if (!ParseU32(need_value(), &cfg.host_threads) ||
          cfg.host_threads == 0) {
        Die("--host-threads wants a positive integer, got '%s'",
            value.c_str());
      }
    } else if (flag == "--pages") {
      pages = need_value();
    } else if (flag == "--placement") {
      placement = need_value();
    } else if (flag == "--pr-rounds") {
      if (!ParseU32(need_value(), &cfg.pr_max_rounds) ||
          cfg.pr_max_rounds == 0) {
        Die("--pr-rounds wants a positive integer, got '%s'", value.c_str());
      }
    } else if (flag == "--faults") {
      faults_spec = need_value();
    } else if (flag == "--trace") {
      trace_path = need_value();
      if (trace_path.empty()) Die("--trace wants an output path");
    } else if (flag == "--json") {
      json_path = need_value();
      if (json_path.empty()) Die("--json wants an output path");
    } else if (flag == "--metrics") {
      // The value is optional, so only the "=" form supplies one: a bare
      // --metrics must not swallow the next flag as its format.
      metrics_format = has_value ? value : "prom";
      if (metrics_format != "prom" && metrics_format != "json") {
        Die("unknown metrics format '%s' (want prom|json)",
            metrics_format.c_str());
      }
    } else if (flag == "--profile") {
      profile_path = need_value();
      if (profile_path.empty()) Die("--profile wants an output path");
    } else if (flag == "--explain") {
      // Like --metrics, the value is optional: only the "=" form supplies
      // one, so a bare --explain must not swallow the next flag.
      explain_mode = has_value ? value : "table";
      if (explain_mode != "table" && explain_mode != "json") {
        Die("unknown explain mode '%s' (want table|json)",
            explain_mode.c_str());
      }
    } else if (flag == "--journal") {
      journal_path = need_value();
      if (journal_path.empty()) Die("--journal wants an output path");
    } else if (flag == "--serve") {
      serve_spec = need_value();
      if (serve_spec.empty()) Die("--serve wants a workload spec");
    } else if (flag == "--qps") {
      if (!ParseF64(need_value(), &qps_override) || qps_override <= 0) {
        Die("--qps wants a positive rate, got '%s'", value.c_str());
      }
      qps_set = true;
    } else if (flag == "--deadline-ns") {
      if (!ParseU64(need_value(), &deadline_override) ||
          deadline_override == 0) {
        Die("--deadline-ns wants a positive integer, got '%s'",
            value.c_str());
      }
      deadline_set = true;
    } else if (flag == "--serve-naive") {
      no_value();
      serve_naive = true;
    } else if (flag == "--serve-trace") {
      // The slowest-K value is optional, so only the "=" form supplies
      // one: a bare --serve-trace must not swallow the next flag.
      serve_trace_set = true;
      if (has_value &&
          (!ParseU32(value, &serve_trace_k) || serve_trace_k == 0)) {
        Die("--serve-trace wants a positive slowest-K, got '%s'",
            value.c_str());
      }
    } else if (flag == "--explain-tail") {
      // Like --metrics, the value is optional: only the "=" form counts.
      explain_tail_mode = has_value ? value : "table";
      if (explain_tail_mode != "table" && explain_tail_mode != "json") {
        Die("unknown explain-tail mode '%s' (want table|json)",
            explain_tail_mode.c_str());
      }
    } else if (flag == "--tierscope") {
      // Like --metrics, the value is optional: only the "=" form supplies
      // one, so a bare --tierscope must not swallow the next flag.
      tierscope_mode = has_value ? value : "table";
      if (tierscope_mode != "table" && tierscope_mode != "json") {
        Die("unknown tierscope mode '%s' (want table|json)",
            tierscope_mode.c_str());
      }
    } else if (flag == "--checkpoint-every") {
      if (!ParseU32(need_value(), &cfg.checkpoint_every)) {
        Die("--checkpoint-every wants an integer, got '%s'", value.c_str());
      }
    } else if (flag == "--migration") {
      no_value();
      migration = true;
    } else if (flag == "--vertex-programs") {
      no_value();
      cfg.force_vertex_programs = true;
    } else if (flag == "--sanitize") {
      no_value();
      cfg.sanitize = true;
    } else {
      Die("unknown flag '%s' (run with no arguments for usage)",
          argv[i]);
    }
  }
  if (graph_name.empty()) Die("--graph is required");

  // Serve mode replaces the batch app run; flags that only make sense for
  // a batch kernel are rejected rather than silently ignored.
  const bool serve_mode = !serve_spec.empty();
  serve::WorkloadSpec workload;
  if (serve_mode) {
    if (!app_name.empty()) {
      Die("--serve and --app are mutually exclusive (serve runs its own "
          "query mix)");
    }
    if (cfg.force_vertex_programs) {
      Die("--vertex-programs does not apply to --serve");
    }
    if (cfg.sanitize) Die("--sanitize does not apply to --serve");
    if (cfg.checkpoint_every > 0) {
      Die("--checkpoint-every does not apply to --serve (crash recovery "
          "is built in)");
    }
    if (!explain_mode.empty() || !journal_path.empty()) {
      Die("--explain/--journal do not apply to --serve");
    }
    if (!tierscope_mode.empty()) {
      Die("--tierscope does not apply to --serve (it audits a batch "
          "run's machine)");
    }
    std::string error;
    if (!serve::WorkloadSpec::Parse(serve_spec, &workload, &error)) {
      Die("bad --serve spec: %s", error.c_str());
    }
    if (qps_set) workload.qps = qps_override;
    if (deadline_set) workload.deadline_ns = deadline_override;
  } else {
    if (qps_set) Die("--qps requires --serve");
    if (deadline_set) Die("--deadline-ns requires --serve");
    if (serve_naive) Die("--serve-naive requires --serve");
    if (serve_trace_set) Die("--serve-trace requires --serve");
    if (!explain_tail_mode.empty()) Die("--explain-tail requires --serve");
    if (app_name.empty()) Die("--app is required");
  }

  frameworks::App app = frameworks::App::kBfs;
  if (!serve_mode && !ParseApp(app_name, &app)) {
    Die("unknown app '%s' (want bc|bfs|cc|kcore|pr|sssp|tc)",
        app_name.c_str());
  }
  frameworks::FrameworkKind fw;
  if (!ParseFramework(framework_name, &fw)) {
    Die("unknown framework '%s' (want galois|gap|graphit|gbbs)",
        framework_name.c_str());
  }
  if (machine_name == "pmm") {
    cfg.machine = memsim::OptanePmmConfig();
  } else if (machine_name == "dram") {
    cfg.machine = memsim::DramOnlyConfig();
  } else if (machine_name == "entropy") {
    cfg.machine = memsim::EntropyConfig();
  } else {
    Die("unknown machine '%s' (want pmm|dram|entropy)", machine_name.c_str());
  }
  cfg.machine.migration.enabled = migration;
  if (pages == "4k") cfg.page_size = memsim::PageSizeClass::k4K;
  else if (pages == "2m") cfg.page_size = memsim::PageSizeClass::k2M;
  else if (!pages.empty()) Die("unknown page size '%s' (want 4k|2m)",
                               pages.c_str());
  if (placement == "local") cfg.placement = memsim::Placement::kLocal;
  else if (placement == "interleaved") {
    cfg.placement = memsim::Placement::kInterleaved;
  } else if (placement == "blocked") {
    cfg.placement = memsim::Placement::kBlocked;
  } else if (!placement.empty()) {
    Die("unknown placement '%s' (want local|interleaved|blocked)",
        placement.c_str());
  }
  if (!faults_spec.empty()) {
    std::string error;
    if (!faultsim::FaultSchedule::Parse(faults_spec, &cfg.faults, &error)) {
      Die("bad --faults spec: %s", error.c_str());
    }
  }

  graph::CsrTopology topo;
  uint64_t represented = 0;
  if (graph_name.rfind("file:", 0) == 0) {
    if (!graph::LoadCsr(graph_name.substr(5), &topo)) {
      Die("cannot load graph from '%s'", graph_name.c_str() + 5);
    }
  } else {
    bool known = false;
    for (const std::string& name : scenarios::AllScenarioNames()) {
      known = known || name == graph_name;
    }
    if (!known) {
      Die("unknown graph '%s' (want a scenario name or file:<path>)",
          graph_name.c_str());
    }
    const scenarios::Scenario s = scenarios::MakeScenario(graph_name);
    topo = s.topo;
    represented = s.represented_vertices;
  }
  std::printf("graph %s: %s\n", graph_name.c_str(),
              graph::ComputeProperties(topo).ToString().c_str());

  // Tracing is on whenever either output file was requested; the same
  // session also feeds the human-readable attribution table.
  trace::TraceSession session;
  const bool traced = !trace_path.empty() || !json_path.empty();

  // Metering is on for --metrics (registry + heatmap) and for --profile
  // (which needs the session's simulated-time sampler).
  std::optional<metrics::MetricsSession> msession;
  if (!metrics_format.empty() || !profile_path.empty()) {
    metrics::MetricsOptions mopts;
    mopts.profile = !profile_path.empty();
    msession.emplace(mopts);
  }
  // Prints the heatmap + registry and writes the folded profile; shared
  // by the run and recovery modes.
  auto emit_metrics = [&]() {
    if (!msession.has_value()) return;
    scenarios::PrintHeatReport(msession->BuildHeatReport());
    if (metrics_format == "prom") {
      std::printf("\nmetrics:\n%s", msession->PrometheusText().c_str());
    } else if (metrics_format == "json") {
      std::printf("%s\n", msession->ReportJson().c_str());
    }
    if (!profile_path.empty()) {
      WriteOrDie(profile_path, msession->ProfileFoldedText());
    }
  };
  // Cost journaling is on for --explain and/or --journal. The recorder
  // chains in front of the trace session's sink, so all of --trace,
  // --json, and --explain compose on one run.
  whatif::JournalRecorder recorder;
  const bool journaled = !explain_mode.empty() || !journal_path.empty();
  // Writes the .pmgj and prints the explanation; shared by the run and
  // recovery modes. BuildExplainReport PMG_CHECKs the identity law, so a
  // printed explanation is backed by a journal that reproduces the run.
  auto emit_whatif = [&]() {
    if (!journaled) return;
    if (!journal_path.empty()) {
      std::string err;
      if (!whatif::SaveJournal(recorder.journal(), journal_path, &err)) {
        Die("%s", err.c_str());
      }
    }
    if (explain_mode.empty()) return;
    const whatif::ExplainReport report =
        whatif::BuildExplainReport(recorder.journal());
    if (explain_mode == "json") {
      trace::JsonWriter w;
      whatif::WriteExplainJson(report, &w);
      std::printf("%s\n", w.str().c_str());
    } else {
      scenarios::PrintWhatifReport(report);
    }
  };
  // The report's whatif section, present whenever journaling was on.
  auto append_whatif_json = [&](trace::JsonWriter* w) {
    if (!journaled) return;
    w->Key("whatif");
    whatif::WriteExplainJson(whatif::BuildExplainReport(recorder.journal()),
                             w);
  };
  // Report preamble shared by both run modes.
  auto json_preamble = [&](trace::JsonWriter* w, const char* mode) {
    w->Key("schema_version").UInt(trace::kTraceSchemaVersion);
    w->Key("tool").String("pmg_run");
    w->Key("mode").String(mode);
    w->Key("graph").String(graph_name);
    w->Key("app").String(app_name);
    w->Key("framework").String(framework_name);
    w->Key("machine").String(machine_name);
    w->Key("threads").UInt(cfg.threads);
  };

  if (serve_mode) {
    serve::ServeConfig sc;
    sc.machine = cfg.machine;
    sc.threads = cfg.threads;
    if (cfg.page_size.has_value()) {
      sc.algo.label_policy.page_size = *cfg.page_size;
      sc.algo.label_policy.thp = false;
    }
    if (cfg.placement.has_value()) {
      sc.algo.label_policy.placement = *cfg.placement;
    }
    sc.workload = workload;
    sc.faults = cfg.faults;
    if (traced) sc.trace = &session;
    if (msession.has_value()) sc.metrics = &*msession;
    if (serve_naive) sc = serve::NaiveBaseline(sc);
    // Request-timeline tracing rides on the observer seam; attaching it
    // never changes a simulated number.
    const bool traced_requests =
        serve_trace_set || !explain_tail_mode.empty();
    std::optional<servetrace::ServeTracer> tracer;
    if (traced_requests) {
      tracer.emplace(serve_trace_k);
      sc.observer = &*tracer;
    }

    serve::Server server(topo, sc);
    const serve::ServeReport rep = server.Run();
    std::printf("\nserve%s %s on %s (%u threads): %.3f ms simulated\n",
                serve_naive ? " (naive baseline)" : "", serve_spec.c_str(),
                machine_name.c_str(), cfg.threads,
                static_cast<double>(rep.total_ns) / 1e6);
    scenarios::PrintServeReport(rep);
    if (!explain_tail_mode.empty()) {
      const servetrace::ServeTailReport tail =
          servetrace::BuildTailReport(*tracer);
      if (explain_tail_mode == "json") {
        std::printf("%s\n", tail.ToJson().c_str());
      } else {
        scenarios::PrintServeTailReport(tail);
      }
    }
    if (traced) scenarios::PrintTraceReport(session.report());
    emit_metrics();
    if (metrics_format == "prom") {
      std::printf("\nserve metrics:\n%s",
                  server.registry().PrometheusText().c_str());
    }
    if (!trace_path.empty()) {
      std::string err;
      if (!session.WriteChromeTrace(trace_path, &err,
                                    tracer.has_value() ? &*tracer
                                                       : nullptr)) {
        Die("%s", err.c_str());
      }
    }
    if (!json_path.empty()) {
      trace::JsonWriter w;
      w.BeginObject();
      w.Key("schema_version").UInt(trace::kTraceSchemaVersion);
      w.Key("tool").String("pmg_run");
      w.Key("mode").String("serve");
      w.Key("graph").String(graph_name);
      w.Key("machine").String(machine_name);
      w.Key("threads").UInt(cfg.threads);
      w.Key("workload").String(serve_spec);
      w.Key("naive").Bool(serve_naive);
      w.Key("serve");
      rep.AppendJson(&w);
      if (tracer.has_value()) {
        w.Key("servetrace");
        tracer->AppendJson(&w);
        w.Key("serve_tail");
        servetrace::BuildTailReport(*tracer).AppendJson(&w);
      }
      w.Key("exemplars");
      servetrace::AppendRegistryExemplarsJson(server.registry(), &w);
      w.Key("trace");
      session.report().AppendJson(&w);
      if (msession.has_value()) {
        w.Key("metrics");
        msession->AppendReportJson(&w);
      }
      w.EndObject();
      WriteOrDie(json_path, w.str() + "\n");
    }
    return rep.finished ? 0 : 1;
  }

  // Crash schedules and checkpointing run through the recovery drivers,
  // which know how to resume the bulk-synchronous loops mid-run.
  const bool wants_recovery =
      cfg.checkpoint_every > 0 || cfg.faults.HasCrash();
  if (wants_recovery) {
    if (app != frameworks::App::kBfs && app != frameworks::App::kCc &&
        app != frameworks::App::kPr && app != frameworks::App::kSssp) {
      Die("crash recovery supports --app bfs, cc, pr, or sssp, not %s",
          app_name.c_str());
    }
    if (!tierscope_mode.empty()) {
      Die("--tierscope does not apply to crash-recovery runs (the "
          "recovery drivers rebuild the machine per attempt)");
    }
    faultsim::RecoveryConfig rc;
    rc.machine = cfg.machine;
    rc.threads = cfg.threads;
    rc.faults = cfg.faults;
    rc.checkpoint_every = cfg.checkpoint_every;
    rc.algo.pr_max_rounds = cfg.pr_max_rounds;
    if (cfg.page_size.has_value()) {
      rc.algo.label_policy.page_size = *cfg.page_size;
      rc.algo.label_policy.thp = false;
    }
    if (cfg.placement.has_value()) {
      rc.algo.label_policy.placement = *cfg.placement;
    }
    if (traced) rc.trace = &session;
    if (journaled) rc.journal = &recorder;
    if (msession.has_value()) rc.metrics = &*msession;
    const VertexId source = graph::MaxOutDegreeVertex(topo);
    const faultsim::RecoveryResult r = [&] {
      switch (app) {
        case frameworks::App::kBfs:
          return faultsim::RunBfsWithRecovery(topo, source, rc);
        case frameworks::App::kCc:
          return faultsim::RunCcWithRecovery(topo, rc);
        case frameworks::App::kSssp:
          return faultsim::RunSsspWithRecovery(topo, source, rc);
        // Only pr remains: the recovery-app validation above rejected
        // everything outside {bfs, cc, pr, sssp}.
        default:
          return faultsim::RunPrWithRecovery(topo, rc);
      }
    }();
    std::printf("\n%s on %s (%u threads): %.3f ms simulated over %u "
                "attempt(s)\n",
                app_name.c_str(), machine_name.c_str(), cfg.threads,
                static_cast<double>(r.total_ns) / 1e6, r.attempts);
    scenarios::PrintRecoveryReport(r);
    scenarios::PrintFaultReport(r.fault, r.stats);
    if (traced) scenarios::PrintTraceReport(session.report());
    emit_whatif();
    emit_metrics();
    std::printf("\ncounters (final attempt):\n%s\n",
                r.stats.ToString().c_str());
    if (!trace_path.empty()) {
      std::string err;
      if (!session.WriteChromeTrace(trace_path, &err)) Die("%s", err.c_str());
    }
    if (!json_path.empty()) {
      trace::JsonWriter w;
      w.BeginObject();
      json_preamble(&w, "recovery");
      w.Key("completed").Bool(r.completed);
      w.Key("attempts").UInt(r.attempts);
      w.Key("crashes").UInt(r.crashes);
      w.Key("restarts_from_checkpoint").UInt(r.restarts_from_checkpoint);
      w.Key("restarts_from_scratch").UInt(r.restarts_from_scratch);
      w.Key("rounds").UInt(r.rounds);
      w.Key("time_ns").UInt(r.total_ns);
      w.Key("checkpoint_write_ns").UInt(r.checkpoint_write_ns);
      w.Key("restore_ns").UInt(r.restore_ns);
      w.Key("stats");
      AppendStatsJson(&w, r.stats);
      w.Key("trace");
      session.report().AppendJson(&w);
      if (msession.has_value()) {
        w.Key("metrics");
        msession->AppendReportJson(&w);
      }
      append_whatif_json(&w);
      w.EndObject();
      WriteOrDie(json_path, w.str() + "\n");
    }
    return r.completed ? 0 : 1;
  }

  const frameworks::AppInputs inputs =
      frameworks::AppInputs::Prepare(std::move(topo), represented);
  if (traced) cfg.trace = &session;
  if (journaled) cfg.journal = &recorder;
  if (msession.has_value()) cfg.metrics = &*msession;
  // The tier-decision audit rides the machine's TierHook seam; attaching
  // it never changes a simulated number.
  std::optional<tierscope::TierScope> tscope;
  if (!tierscope_mode.empty()) {
    tscope.emplace();
    cfg.tierscope = &*tscope;
  }
  const frameworks::AppRunResult r = RunApp(fw, app, inputs, cfg);

  // The misplacement join needs the heatmap (--metrics) and prices its
  // regret from the cost journal (--explain/--journal); either absent
  // side just leaves that part of the report empty.
  auto build_misplacement = [&]() -> tierscope::MisplacementReport {
    std::optional<metrics::HeatReport> heat;
    if (msession.has_value()) heat = msession->BuildHeatReport();
    return tscope->BuildMisplacementReport(
        heat.has_value() ? &*heat : nullptr,
        journaled ? &recorder.journal() : nullptr);
  };
  // Prints the audit (and join) to stdout in the requested mode.
  auto emit_tierscope = [&]() {
    if (!tscope.has_value()) return;
    if (tierscope_mode == "json") {
      trace::JsonWriter w;
      w.BeginObject();
      w.Key("schema_version").UInt(tierscope::kTierScopeSchemaVersion);
      w.Key("tierscope");
      tscope->report().AppendJson(&w);
      w.Key("misplacement");
      build_misplacement().AppendJson(&w);
      w.EndObject();
      std::printf("%s\n", w.str().c_str());
    } else {
      scenarios::PrintTierReport(tscope->report());
      if (msession.has_value()) {
        scenarios::PrintMisplacementReport(build_misplacement());
      }
    }
  };
  // The report's tierscope sections, mirrors of the stdout audit.
  auto append_tierscope_json = [&](trace::JsonWriter* w) {
    if (!tscope.has_value()) return;
    w->Key("tierscope");
    tscope->report().AppendJson(w);
    w->Key("misplacement");
    build_misplacement().AppendJson(w);
  };

  auto emit_outputs = [&]() {
    if (!trace_path.empty()) {
      std::string err;
      if (!session.WriteChromeTrace(trace_path, &err,
                                    tscope.has_value() ? &*tscope
                                                       : nullptr)) {
        Die("%s", err.c_str());
      }
    }
    if (json_path.empty()) return;
    trace::JsonWriter w;
    w.BeginObject();
    json_preamble(&w, "run");
    w.Key("supported").Bool(r.supported);
    w.Key("crashed").Bool(r.crashed);
    w.Key("completed").Bool(r.supported && !r.crashed);
    w.Key("time_ns").UInt(r.time_ns);
    w.Key("rounds").UInt(r.rounds);
    w.Key("stats");
    AppendStatsJson(&w, r.stats);
    w.Key("trace");
    session.report().AppendJson(&w);
    if (msession.has_value()) {
      w.Key("metrics");
      msession->AppendReportJson(&w);
    }
    if (r.sanitized) {
      w.Key("sancheck").BeginObject();
      w.Key("races").UInt(r.sancheck.races);
      w.Key("race_epochs").UInt(r.sancheck.race_epochs);
      w.Key("checked_accesses").UInt(r.sancheck.checked_accesses);
      w.Key("checked_epochs").UInt(r.sancheck.checked_epochs);
      w.EndObject();
    }
    if (r.fault_injected) {
      w.Key("fault").BeginObject();
      w.Key("media_ops").UInt(r.fault.media_ops);
      w.Key("ue_delivered").UInt(r.fault.ue_delivered);
      w.Key("transient_faults").UInt(r.fault.transient_faults);
      w.Key("retries").UInt(r.fault.retries);
      w.Key("stall_ns").UInt(r.fault.stall_ns);
      w.Key("degraded_epochs").UInt(r.fault.degraded_epochs);
      w.Key("crashes").UInt(r.fault.crashes);
      w.EndObject();
    }
    append_whatif_json(&w);
    append_tierscope_json(&w);
    w.EndObject();
    WriteOrDie(json_path, w.str() + "\n");
  };

  if (!r.supported) {
    std::printf("%s cannot run %s on this graph (framework limitation)\n",
                framework_name.c_str(), app_name.c_str());
    // The sessions never attached, so the heatmap, registry, journal,
    // and tier audit are empty; still emit so scripted --profile/
    // --journal/--tierscope always get their output.
    emit_whatif();
    emit_metrics();
    emit_tierscope();
    emit_outputs();
    return 0;
  }
  if (r.crashed) {
    std::printf("\n%s %s on %s: CRASHED (no recovery configured)\n",
                framework_name.c_str(), app_name.c_str(),
                machine_name.c_str());
    scenarios::PrintFaultReport(r.fault, r.stats);
    if (traced) scenarios::PrintTraceReport(session.report());
    emit_whatif();
    emit_metrics();
    emit_tierscope();
    emit_outputs();
    return 1;
  }
  std::printf("\n%s %s on %s (%u threads): %.3f ms simulated, %llu rounds\n",
              framework_name.c_str(), app_name.c_str(), machine_name.c_str(),
              cfg.threads, static_cast<double>(r.time_ns) / 1e6,
              static_cast<unsigned long long>(r.rounds));
  std::printf("\ncounters:\n%s\n", r.stats.ToString().c_str());
  if (r.fault_injected) scenarios::PrintFaultReport(r.fault, r.stats);
  if (traced) scenarios::PrintTraceReport(session.report());
  emit_whatif();
  emit_metrics();
  emit_tierscope();
  emit_outputs();
  if (r.sanitized) {
    scenarios::PrintSancheckReport(r.sancheck);
    // A sanitized run that found races is a failed run: the kernel (or a
    // missing atomic annotation) is broken.
    if (r.sancheck.races > 0) return 1;
  }
  return 0;
}
