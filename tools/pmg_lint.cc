// pmg_lint: the project-invariant static analyzer.
//
// Walks the repo's lintable sources and enforces the contracts that keep
// simulated results trustworthy: no host clocks in simulated code, no
// iteration over unordered containers, no side effects in PMG_CHECK
// arguments, null-guarded observer hooks, atomic-annotated shared writes
// in parallel bodies, exhaustive taxonomy switches, and tier-labelled
// tests. See docs/static-analysis.md.
//
// Exit codes (same contract as pmg_run / pmg_perf / pmg_explain):
//   0  clean — no findings beyond the baseline, no stale baseline entries
//   1  new findings, or baseline entries that no longer fire
//   2  usage error

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pmg/lint/lint.h"

namespace {

void Usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: pmg_lint --root <dir> [options] [dir...]\n"
      "\n"
      "Runs the pmg project-invariant checks over the lintable files\n"
      "(*.cc *.h *.cxx *.hxx CMakeLists.txt *.cmake) under the given\n"
      "directories (relative to --root; default: src tools bench tests).\n"
      "\n"
      "options:\n"
      "  --root <dir>            repository root (required)\n"
      "  --baseline <file>       grandfathered findings; the gate becomes\n"
      "                          'no new findings, no stale entries'\n"
      "  --write-baseline <file> write current findings as a baseline and\n"
      "                          exit 0\n"
      "  --host-dir <prefix>     path prefix exempt from pmg-no-host-clock\n"
      "                          (repeatable; host-measuring code only)\n"
      "  --list-checks           print every check id and exit\n"
      "  --help                  this text\n"
      "\n"
      "Findings print one per line as 'file:line: check-id: message',\n"
      "sorted, byte-stable across runs. Suppress a false positive inline\n"
      "with '// pmg-lint: allow(<check-id>) <reason>' on the finding's\n"
      "line or the line above; the reason is mandatory.\n");
}

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "pmg_lint: %s\n", msg.c_str());
  std::fprintf(stderr, "Try: pmg_lint --help\n");
  std::exit(2);
}

/// Accepts --flag=value and --flag value.
bool FlagValue(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  const std::string arg = argv[*i];
  const std::string prefix = std::string(name) + "=";
  if (arg == name) {
    if (*i + 1 >= argc) Die(std::string("missing value for ") + name);
    *out = argv[++*i];
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    *out = arg.substr(prefix.size());
    if (out->empty()) Die(std::string("missing value for ") + name);
    return true;
  }
  return false;
}

bool ReadFileOrDie(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  *out = os.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string baseline_path;
  std::string write_baseline_path;
  pmg::lint::LintOptions options;
  std::vector<std::string> dirs;
  bool list_checks = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else if (arg == "--list-checks") {
      list_checks = true;
    } else if (FlagValue(argc, argv, &i, "--root", &value)) {
      root = value;
    } else if (FlagValue(argc, argv, &i, "--baseline", &value)) {
      baseline_path = value;
    } else if (FlagValue(argc, argv, &i, "--write-baseline", &value)) {
      write_baseline_path = value;
    } else if (FlagValue(argc, argv, &i, "--host-dir", &value)) {
      options.host_dirs.push_back(value);
    } else if (arg.rfind("--", 0) == 0) {
      Die("unknown flag: " + arg);
    } else {
      dirs.push_back(arg);
    }
  }

  if (list_checks) {
    for (const std::string& id : pmg::lint::AllCheckIds()) {
      std::printf("%s\n", id.c_str());
    }
    return 0;
  }
  if (root.empty()) Die("--root is required");
  if (dirs.empty()) dirs = {"src", "tools", "bench", "tests"};

  std::vector<pmg::lint::SourceFile> files;
  std::string error;
  if (!pmg::lint::CollectFiles(root, dirs, &files, &error)) Die(error);

  const std::vector<pmg::lint::Finding> findings =
      pmg::lint::LintTree(files, options);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) Die("cannot write baseline: " + write_baseline_path);
    out << pmg::lint::WriteBaseline(findings);
    std::printf("pmg_lint: wrote %zu baseline entr%s to %s\n",
                findings.size(), findings.size() == 1 ? "y" : "ies",
                write_baseline_path.c_str());
    return 0;
  }

  std::vector<std::string> baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!ReadFileOrDie(baseline_path, &text)) {
      Die("cannot read baseline: " + baseline_path);
    }
    baseline = pmg::lint::ParseBaseline(text);
  }

  const pmg::lint::BaselineDiff diff =
      pmg::lint::DiffAgainstBaseline(findings, baseline);

  std::string out = pmg::lint::FormatFindings(diff.fresh);
  std::fputs(out.c_str(), stdout);
  for (const std::string& key : diff.stale) {
    std::printf("stale baseline entry (fixed? delete its line): %s\n",
                key.c_str());
  }

  std::printf(
      "pmg_lint: %zu file(s), %zu finding(s): %zu new, %llu baselined, "
      "%zu stale\n",
      files.size(), findings.size(), diff.fresh.size(),
      static_cast<unsigned long long>(diff.matched), diff.stale.size());
  const bool clean = diff.fresh.empty() && diff.stale.empty();
  std::printf("verdict: %s\n", clean ? "CLEAN" : "DIRTY");
  return clean ? 0 : 1;
}
