// pmg_explain: offline bottleneck explanation of a recorded .pmgj epoch
// cost journal (written by pmg_run --journal).
//
//   pmg_explain <journal.pmgj> [--json]
//               [--folded <profile.folded> --region <label> [--speedup F]]
//
// Loads the journal, re-prices it under its own recorded timings and
// PMG_CHECKs that this reproduces the recorded run bit for bit (the
// identity law), then prints the explanation: the epoch bound split, the
// straggler table, and the counterfactual "top levers" ranking — as an
// aligned table by default or as one JSON document with --json.
//
// With --folded/--region, additionally estimates the COZ-style virtual
// speedup of one PMG_PROF_SCOPE region from a folded-stack profile
// (pmg_run --profile): the region's share of samples is sped up by
// --speedup (default 2.0).
//
// A missing, malformed, truncated, or version-mismatched journal is a
// one-line "pmg_explain: ..." error on stderr and exit code 2.
//
//   pmg_explain --tail <run.json> [--contrast <other.json>] [--json]
//
// The second mode explains serve-mode tails offline: --tail loads the
// serve_tail section of a pmg_run --serve --serve-trace --json report
// (or a bare --explain-tail=json document) and prints the quantile
// decomposition; --contrast loads a second report — the PMM-vs-DRAM
// workflow — and ranks which latency component moved the p999.
//
//   pmg_explain --tiering <run.json> [--json]
//
// The third mode explains memory-tier placement offline: --tiering loads
// the tierscope section of a pmg_run --tierscope --json report (or a
// bare --tierscope=json document), re-checks the decision conservation
// law, and prints the candidate -> migrate/skip audit plus, when the
// report carries one, the hot-on-the-wrong-node misplacement join.

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pmg/scenarios/report.h"
#include "pmg/servetrace/servetrace.h"
#include "pmg/tierscope/tierscope.h"
#include "pmg/trace/json.h"
#include "pmg/whatif/explain.h"
#include "pmg/whatif/journal.h"
#include "pmg/whatif/reprice.h"

namespace {

using namespace pmg;

[[noreturn]] void Die(const char* fmt, ...) {
  std::fprintf(stderr, "pmg_explain: ");
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
  std::exit(2);
}

void Usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s <journal.pmgj> [--json]\n"
      "          [--folded <profile.folded> --region <label> [--speedup F]]\n"
      "       %s --tail <run.json> [--contrast <other.json>] [--json]\n"
      "       %s --tiering <run.json> [--json]\n"
      "Re-prices a pmg_run --journal file offline: verifies the identity\n"
      "law, classifies epochs latency/bandwidth/daemon-bound, attributes\n"
      "stragglers, and ranks counterfactual levers. --folded/--region add\n"
      "a COZ-style virtual speedup estimate of one profiled region.\n"
      "--tail explains a serve run's latency tail offline from the\n"
      "serve_tail section of a pmg_run --serve --serve-trace --json\n"
      "report; --contrast diffs a second report against the first and\n"
      "ranks which component (queue/service/degraded/hedge/backoff/\n"
      "recovery) moved the p999.\n"
      "--tiering explains memory-tier placement offline from the\n"
      "tierscope section of a pmg_run --tierscope --json report: the\n"
      "candidate -> migrate/skip decision audit with its conservation\n"
      "verdict, plus the misplacement join when the report carries one.\n",
      argv0, argv0, argv0);
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) Die("cannot open '%s'", path.c_str());
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

/// Loads the serve_tail section of a pmg_run --json serve report, or a
/// bare --explain-tail=json document. Any problem is a Die (exit 2).
servetrace::ServeTailReport LoadTailOrDie(const std::string& path) {
  const std::string text = ReadFileOrDie(path);
  trace::JsonValue doc;
  std::string error;
  if (!trace::JsonValue::Parse(text, &doc, &error)) {
    Die("'%s' is not valid JSON: %s", path.c_str(), error.c_str());
  }
  const trace::JsonValue* tail = doc.Find("serve_tail");
  if (tail == nullptr) {
    if (doc.Find("rows") != nullptr) {
      tail = &doc;  // a bare serve_tail document
    } else {
      Die("'%s' has no serve_tail section (write one with pmg_run --serve "
          "--serve-trace --json <path>)",
          path.c_str());
    }
  }
  servetrace::ServeTailReport report;
  if (!servetrace::ServeTailReport::FromJson(*tail, &report, &error)) {
    Die("'%s': %s", path.c_str(), error.c_str());
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path;
  std::string folded_path;
  std::string region;
  std::string tail_path;
  std::string contrast_path;
  std::string tiering_path;
  double speedup_factor = 2.0;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      Usage(stdout, argv[0]);
      return 0;
    }
    std::string value;
    bool has_value = false;
    if (flag.rfind("--", 0) == 0) {
      const size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        value = flag.substr(eq + 1);
        flag = flag.substr(0, eq);
        has_value = true;
      }
    }
    auto need_value = [&]() -> const std::string& {
      if (!has_value) {
        if (i + 1 >= argc) Die("flag %s requires a value", flag.c_str());
        value = argv[++i];
        has_value = true;
      }
      return value;
    };
    if (flag == "--json") {
      if (has_value) Die("flag --json takes no value");
      json = true;
    } else if (flag == "--tail") {
      tail_path = need_value();
      if (tail_path.empty()) Die("--tail wants a run-report path");
    } else if (flag == "--contrast") {
      contrast_path = need_value();
      if (contrast_path.empty()) Die("--contrast wants a run-report path");
    } else if (flag == "--tiering") {
      tiering_path = need_value();
      if (tiering_path.empty()) Die("--tiering wants a run-report path");
    } else if (flag == "--folded") {
      folded_path = need_value();
    } else if (flag == "--region") {
      region = need_value();
    } else if (flag == "--speedup") {
      char* end = nullptr;
      speedup_factor = std::strtod(need_value().c_str(), &end);
      if (end == value.c_str() || *end != '\0' || speedup_factor < 1.0) {
        Die("--speedup wants a factor >= 1, got '%s'", value.c_str());
      }
    } else if (flag.rfind("--", 0) == 0) {
      Die("unknown flag '%s' (run with --help for usage)", argv[i]);
    } else if (journal_path.empty()) {
      journal_path = flag;
    } else {
      Die("more than one journal given ('%s' and '%s')",
          journal_path.c_str(), flag.c_str());
    }
  }
  if (!contrast_path.empty() && tail_path.empty()) {
    Die("--contrast requires --tail");
  }
  if (!tiering_path.empty()) {
    if (!tail_path.empty()) {
      Die("--tail and --tiering are separate modes (pick one)");
    }
    if (!journal_path.empty()) {
      Die("--tiering explains a run report, not a journal (drop '%s')",
          journal_path.c_str());
    }
    if (!folded_path.empty() || !region.empty()) {
      Die("--folded/--region do not apply to --tiering");
    }
    const std::string text = ReadFileOrDie(tiering_path);
    trace::JsonValue doc;
    std::string error;
    if (!trace::JsonValue::Parse(text, &doc, &error)) {
      Die("'%s' is not valid JSON: %s", tiering_path.c_str(),
          error.c_str());
    }
    // A pmg_run --json report and a bare --tierscope=json document both
    // carry the audit under a "tierscope" key.
    const trace::JsonValue* tier = doc.Find("tierscope");
    if (tier == nullptr) {
      Die("'%s' has no tierscope section (write one with pmg_run "
          "--tierscope --json <path>)",
          tiering_path.c_str());
    }
    tierscope::TierReport report;
    if (!tierscope::TierReport::FromJson(*tier, &report, &error)) {
      Die("'%s': %s", tiering_path.c_str(), error.c_str());
    }
    // The misplacement join is optional: it is empty unless the run also
    // metered a heatmap.
    const trace::JsonValue* mis = doc.Find("misplacement");
    tierscope::MisplacementReport misreport;
    const bool has_mis =
        mis != nullptr &&
        tierscope::MisplacementReport::FromJson(*mis, &misreport, &error);
    if (mis != nullptr && !has_mis) {
      Die("'%s': %s", tiering_path.c_str(), error.c_str());
    }
    if (json) {
      trace::JsonWriter w;
      w.BeginObject();
      w.Key("schema_version").UInt(tierscope::kTierScopeSchemaVersion);
      w.Key("tool").String("pmg_explain");
      w.Key("tiering").String(tiering_path);
      w.Key("tierscope");
      report.AppendJson(&w);
      if (has_mis) {
        w.Key("misplacement");
        misreport.AppendJson(&w);
      }
      w.EndObject();
      std::printf("%s\n", w.str().c_str());
      return 0;
    }
    scenarios::PrintTierReport(report);
    if (has_mis) scenarios::PrintMisplacementReport(misreport);
    return 0;
  }
  if (!tail_path.empty()) {
    if (!journal_path.empty()) {
      Die("--tail explains a run report, not a journal (drop '%s')",
          journal_path.c_str());
    }
    if (!folded_path.empty() || !region.empty()) {
      Die("--folded/--region do not apply to --tail");
    }
    const servetrace::ServeTailReport base = LoadTailOrDie(tail_path);
    if (json) {
      trace::JsonWriter w;
      w.BeginObject();
      w.Key("schema_version").UInt(servetrace::kServeTraceSchemaVersion);
      w.Key("tool").String("pmg_explain");
      w.Key("tail").String(tail_path);
      w.Key("serve_tail");
      base.AppendJson(&w);
      if (!contrast_path.empty()) {
        w.Key("contrast").String(contrast_path);
        w.Key("contrast_tail");
        LoadTailOrDie(contrast_path).AppendJson(&w);
      }
      w.EndObject();
      std::printf("%s\n", w.str().c_str());
      return 0;
    }
    scenarios::PrintServeTailReport(base);
    if (!contrast_path.empty()) {
      scenarios::PrintServeTailContrast(base, LoadTailOrDie(contrast_path));
    }
    return 0;
  }
  if (journal_path.empty()) {
    Usage(stderr, argv[0]);
    return 2;
  }
  if (folded_path.empty() != region.empty()) {
    Die("--folded and --region go together");
  }

  whatif::CostJournal journal;
  std::string error;
  if (!whatif::LoadJournal(journal_path, &journal, &error)) {
    Die("%s", error.c_str());
  }
  // BuildExplainReport PMG_CHECKs the identity law: the loaded journal
  // must re-price to its own recorded totals bit for bit.
  const whatif::ExplainReport report = whatif::BuildExplainReport(journal);

  whatif::RegionSpeedup region_est;
  if (!region.empty()) {
    region_est = whatif::EstimateRegionSpeedup(
        journal, ReadFileOrDie(folded_path), region, speedup_factor);
  }

  if (json) {
    trace::JsonWriter w;
    w.BeginObject();
    w.Key("schema_version").UInt(whatif::kJournalSchemaVersion);
    w.Key("tool").String("pmg_explain");
    w.Key("journal").String(journal_path);
    w.Key("whatif");
    whatif::WriteExplainJson(report, &w);
    if (!region.empty()) {
      w.Key("region_speedup").BeginObject();
      w.Key("region").String(region);
      w.Key("factor").Double(speedup_factor);
      w.Key("found").Bool(region_est.found);
      w.Key("samples").UInt(region_est.samples);
      w.Key("total_samples").UInt(region_est.total_samples);
      w.Key("share").Double(region_est.share);
      w.Key("predicted_total_ns").UInt(region_est.predicted_total_ns);
      w.Key("speedup").Double(region_est.speedup);
      w.EndObject();
    }
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }

  scenarios::PrintWhatifReport(report);
  if (!region.empty()) {
    if (!region_est.found) {
      std::printf("region '%s': no samples in %s\n", region.c_str(),
                  folded_path.c_str());
    } else {
      std::printf(
          "region '%s' at %.2fx: %llu/%llu sample(s) (%.1f%%), predicted "
          "%.3f ms (%.2fx overall)\n",
          region.c_str(), speedup_factor,
          static_cast<unsigned long long>(region_est.samples),
          static_cast<unsigned long long>(region_est.total_samples),
          region_est.share * 100.0,
          static_cast<double>(region_est.predicted_total_ns) / 1e6,
          region_est.speedup);
    }
  }
  return 0;
}
