// Cluster vs single machine, as an application (the paper's Section 6.3
// question): you have a graph that fits either on N cluster hosts or on
// one Optane PMM machine — which runs your workload faster, and why?
// Sweeps host counts for BFS on a high-diameter crawl and prints the
// compute/communication split that explains the answer.
//
//   ./cluster_vs_single [tail_length]

#include <cstdio>
#include <cstdlib>

#include "pmg/distsim/dist_engine.h"
#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"

int main(int argc, char** argv) {
  using namespace pmg;

  graph::WebCrawlParams params;
  params.vertices = 30000;
  params.avg_out_degree = 12;
  params.communities = 20;
  params.tail_length = argc > 1 ? std::atoll(argv[1]) : 800;
  params.tail_width = 4;
  params.seed = 9;
  const graph::CsrTopology crawl = graph::WebCrawl(params);
  const VertexId src = graph::MaxOutDegreeVertex(crawl);
  std::printf("crawl: %s\n\n",
              graph::ComputeProperties(crawl).ToString().c_str());

  // Single Optane PMM machine, best (asynchronous sparse) algorithm.
  const frameworks::AppInputs inputs = frameworks::AppInputs::Prepare(crawl);
  frameworks::RunConfig single;
  single.machine = memsim::OptanePmmConfig();
  single.threads = 96;
  const frameworks::AppRunResult ob =
      RunApp(frameworks::FrameworkKind::kGalois, frameworks::App::kBfs,
             inputs, single);

  scenarios::Table table({"configuration", "time (ms)", "compute (ms)",
                          "comm (ms)", "comm bytes (KB)", "rounds"});
  for (const uint32_t hosts : {2u, 4u, 8u, 16u}) {
    distsim::DistConfig cfg;
    cfg.hosts = hosts;
    cfg.threads_per_host = 48;
    cfg.host_machine = memsim::StampedeHostConfig();
    distsim::DistEngine engine(crawl, cfg);
    const distsim::DistRunResult r = engine.Bfs(src);
    table.AddRow({"cluster, " + std::to_string(hosts) + " hosts",
                  scenarios::FormatMillis(r.time_ns),
                  scenarios::FormatMillis(r.compute_ns),
                  scenarios::FormatMillis(r.comm_ns),
                  scenarios::FormatDouble(r.comm_bytes / 1e3, 1),
                  std::to_string(r.rounds)});
  }
  table.AddRow({"Optane PMM, 1 machine", scenarios::FormatMillis(ob.time_ns),
                scenarios::FormatMillis(ob.time_ns), "0", "0",
                std::to_string(ob.rounds)});
  table.Print();
  std::printf(
      "\nAdding hosts shrinks per-host compute but every BFS level still\n"
      "pays a communication round trip — with diameter ~%llu, round\n"
      "latency dominates and the single big-memory machine wins\n"
      "(Section 6.3 / Figure 11 of the paper).\n",
      static_cast<unsigned long long>(params.tail_length));
  return 0;
}
