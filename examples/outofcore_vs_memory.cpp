// Out-of-core vs memory mode, as an application (the paper's Section 6.4
// question): given a machine with Optane PMM, should you stream the graph
// from PMM as storage (GridGraph style) or let the hardware treat PMM as
// memory and run a shared-memory framework? Runs BFS both ways over
// growing diameters and prints the crossover-free verdict.
//
//   ./outofcore_vs_memory

#include <cstdio>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/outofcore/grid_engine.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"

int main() {
  using namespace pmg;

  std::printf(
      "BFS: GridGraph-style streaming from app-direct PMM vs Galois-style\n"
      "execution in memory mode, as crawl diameter grows:\n\n");
  scenarios::Table table({"diameter", "out-of-core (ms)", "memory mode (ms)",
                          "ratio", "storage read (MB)"});
  for (const uint64_t tail : {50ull, 200ull, 800ull, 2000ull}) {
    graph::WebCrawlParams params;
    params.vertices = 25000;
    params.avg_out_degree = 12;
    params.communities = 16;
    params.tail_length = tail;
    params.tail_width = 4;
    params.seed = 5;
    // Out-of-core engines see scattered ids, as real crawls have.
    const graph::CsrTopology crawl =
        scenarios::ScatterIds(graph::WebCrawl(params), 31);
    const VertexId src = graph::MaxOutDegreeVertex(crawl);

    memsim::Machine ad(memsim::AppDirectConfig());
    outofcore::GridConfig grid;
    grid.grid_p = 32;
    grid.threads = 96;
    outofcore::GridEngine engine(&ad, crawl, grid);
    const outofcore::OocResult ooc = engine.Bfs(src, nullptr);

    const frameworks::AppInputs inputs =
        frameworks::AppInputs::Prepare(crawl);
    frameworks::RunConfig cfg;
    cfg.machine = memsim::OptanePmmConfig();
    cfg.threads = 96;
    const frameworks::AppRunResult mm =
        RunApp(frameworks::FrameworkKind::kGalois, frameworks::App::kBfs,
               inputs, cfg);

    table.AddRow({std::to_string(tail), scenarios::FormatMillis(ooc.time_ns),
                  scenarios::FormatMillis(mm.time_ns),
                  scenarios::FormatRatio(static_cast<double>(ooc.time_ns) /
                                         static_cast<double>(mm.time_ns)),
                  scenarios::FormatDouble(ooc.storage_read_bytes / 1e6, 1)});
  }
  table.Print();
  std::printf(
      "\nThe gap widens with diameter: every extra BFS round re-streams\n"
      "edge blocks from storage, while memory mode touches only the\n"
      "frontier (Table 5 of the paper: 268-890x at full scale).\n");
  return 0;
}
