// Memory-hierarchy tuning walkthrough: the paper's Section 4 guidance as
// an application. Runs the same PageRank workload under different NUMA
// placements, page sizes and migration settings on the simulated Optane
// PMM machine, and prints what each lever does to runtime, TLB misses,
// kernel time and near-memory hit rate.
//
//   ./memory_tuning

#include <cstdio>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"

int main() {
  using namespace pmg;
  using frameworks::App;
  using frameworks::AppInputs;
  using frameworks::AppRunResult;
  using frameworks::FrameworkKind;

  graph::WebCrawlParams params;
  params.vertices = 40000;
  params.avg_out_degree = 24;
  params.communities = 32;
  params.tail_length = 400;
  params.seed = 21;
  const AppInputs inputs = AppInputs::Prepare(graph::WebCrawl(params));

  struct Config {
    const char* label;
    memsim::Placement placement;
    memsim::PageSizeClass pages;
    bool migration;
  };
  const Config configs[] = {
      {"4KB pages, interleaved, migration ON",
       memsim::Placement::kInterleaved, memsim::PageSizeClass::k4K, true},
      {"4KB pages, interleaved, migration OFF",
       memsim::Placement::kInterleaved, memsim::PageSizeClass::k4K, false},
      {"2MB pages, interleaved, migration OFF",
       memsim::Placement::kInterleaved, memsim::PageSizeClass::k2M, false},
      {"2MB pages, blocked, migration OFF", memsim::Placement::kBlocked,
       memsim::PageSizeClass::k2M, false},
      {"2MB pages, local(!), migration OFF", memsim::Placement::kLocal,
       memsim::PageSizeClass::k2M, false},
  };

  std::printf("PageRank (pull) on a 40K-vertex crawl, Optane PMM, 96 "
              "threads:\n\n");
  scenarios::Table table({"configuration", "time (ms)", "tlb miss%",
                          "kernel (ms)", "near-mem hit%", "local%"});
  for (const Config& c : configs) {
    frameworks::RunConfig cfg;
    cfg.machine = memsim::OptanePmmConfig();
    cfg.machine.migration.enabled = c.migration;
    cfg.threads = 96;
    cfg.pr_max_rounds = 10;
    cfg.placement = c.placement;
    cfg.page_size = c.pages;
    const AppRunResult r =
        RunApp(FrameworkKind::kGalois, App::kPr, inputs, cfg);
    table.AddRow(
        {c.label, scenarios::FormatMillis(r.time_ns),
         scenarios::FormatDouble(100.0 * r.stats.TlbMissRate(), 2),
         scenarios::FormatMillis(r.stats.kernel_ns),
         scenarios::FormatDouble(100.0 * r.stats.NearMemHitRate(), 1),
         scenarios::FormatDouble(100.0 * r.stats.LocalAccessFraction(), 1)});
  }
  table.Print();
  std::printf(
      "\nPaper guidance (Section 4.4): prefer interleaved/blocked over\n"
      "local for big allocations, turn NUMA migration off, use 2MB pages.\n");
  return 0;
}
