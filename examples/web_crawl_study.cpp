// Web-crawl algorithm study: the paper's Section 5 experiment as an
// application. Generates a high-diameter synthetic crawl, then compares
// dense-worklist, direction-optimizing and sparse-worklist BFS, and
// bulk-synchronous vs asynchronous delta-stepping SSSP on the simulated
// Optane PMM machine — showing why frameworks restricted to vertex
// programs with dense frontiers collapse on real crawl structure.
//
//   ./web_crawl_study [tail_length]

#include <cstdio>
#include <cstdlib>

#include "pmg/analytics/bfs.h"
#include "pmg/analytics/sssp.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/runtime/runtime.h"
#include "pmg/scenarios/report.h"

namespace {

using namespace pmg;

graph::GraphLayout Layout(bool in_edges, bool weights) {
  graph::GraphLayout layout;
  layout.policy.placement = memsim::Placement::kInterleaved;
  layout.policy.page_size = memsim::PageSizeClass::k2M;
  layout.load_in_edges = in_edges;
  layout.with_weights = weights;
  return layout;
}

template <typename Fn>
SimNs Measure(const graph::CsrTopology& topo, bool in_edges, bool weights,
              Fn&& fn) {
  memsim::Machine machine(memsim::OptanePmmConfig());
  runtime::Runtime rt(&machine, 96);
  graph::CsrGraph g(&machine, topo, Layout(in_edges, weights), "g");
  g.Prefault(rt.threads());
  analytics::AlgoOptions opt;
  opt.label_policy = Layout(false, false).policy;
  return fn(rt, g, opt);
}

}  // namespace

int main(int argc, char** argv) {
  graph::WebCrawlParams params;
  params.vertices = 30000;
  params.avg_out_degree = 16;
  params.communities = 24;
  params.tail_length = argc > 1 ? std::atoll(argv[1]) : 1000;
  params.tail_width = 4;
  params.seed = 7;
  const graph::CsrTopology crawl = graph::WebCrawl(params);
  graph::CsrTopology weighted = crawl;
  graph::AssignRandomWeights(&weighted, 100, 3);
  const VertexId src = graph::MaxOutDegreeVertex(crawl);

  std::printf("synthetic crawl: %s\n\n",
              graph::ComputeProperties(crawl).ToString().c_str());

  scenarios::Table table({"problem", "algorithm", "time (ms)", "vs best"});
  struct Row {
    const char* problem;
    const char* algo;
    SimNs ns;
  };
  std::vector<Row> rows;
  rows.push_back({"bfs", "dense worklist",
                  Measure(crawl, false, false,
                          [&](auto& rt, auto& g, auto& opt) {
                            return analytics::BfsDenseWl(rt, g, src, opt)
                                .time_ns;
                          })});
  rows.push_back({"bfs", "direction-optimizing",
                  Measure(crawl, true, false,
                          [&](auto& rt, auto& g, auto& opt) {
                            return analytics::BfsDirectionOpt(rt, g, src, opt)
                                .time_ns;
                          })});
  rows.push_back({"bfs", "sparse worklist",
                  Measure(crawl, false, false,
                          [&](auto& rt, auto& g, auto& opt) {
                            return analytics::BfsSparseWl(rt, g, src, opt)
                                .time_ns;
                          })});
  rows.push_back({"sssp", "bulk-sync dense",
                  Measure(weighted, false, true,
                          [&](auto& rt, auto& g, auto& opt) {
                            return analytics::SsspDenseWl(rt, g, src, opt)
                                .time_ns;
                          })});
  rows.push_back({"sssp", "async delta-stepping",
                  Measure(weighted, false, true,
                          [&](auto& rt, auto& g, auto& opt) {
                            return analytics::SsspDeltaStep(rt, g, src, opt)
                                .time_ns;
                          })});

  for (const char* problem : {"bfs", "sssp"}) {
    SimNs best = ~0ull;
    for (const Row& r : rows) {
      if (std::string(r.problem) == problem && r.ns < best) best = r.ns;
    }
    for (const Row& r : rows) {
      if (std::string(r.problem) != problem) continue;
      table.AddRow({r.problem, r.algo, scenarios::FormatMillis(r.ns),
                    scenarios::FormatRatio(static_cast<double>(r.ns) /
                                           static_cast<double>(best))});
    }
  }
  table.Print();
  std::printf(
      "\nTakeaway: with diameter ~%llu, per-round O(|V|) frontier scans\n"
      "dominate dense scheduling; sparse worklists and asynchronous\n"
      "execution track the actual work (Section 5 of the paper).\n",
      static_cast<unsigned long long>(params.tail_length));
  return 0;
}
