// Quickstart: build a graph, put it on a simulated Optane PMM machine,
// run BFS with the Galois-style recommended configuration (2MB pages,
// interleaved NUMA placement, sparse worklists), and inspect the
// simulated hardware counters.
//
//   ./quickstart [scale]
//
// `scale` is the rmat scale (default 14: 16K vertices, 128K edges).

#include <cstdio>
#include <cstdlib>

#include "pmg/analytics/bfs.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/runtime/runtime.h"

int main(int argc, char** argv) {
  using namespace pmg;
  const uint32_t scale = argc > 1 ? std::atoi(argv[1]) : 14;

  // 1. Generate a scale-free graph (host-side; construction is free).
  const graph::CsrTopology topo = graph::Rmat(scale, /*edge_factor=*/8,
                                              /*seed=*/42);
  std::printf("graph: %s\n",
              graph::ComputeProperties(topo).ToString().c_str());

  // 2. Build the simulated Optane PMM machine (memory mode) and a
  //    96-virtual-thread runtime.
  memsim::Machine machine(memsim::OptanePmmConfig());
  runtime::Runtime rt(&machine, /*threads=*/96);

  // 3. Materialize the graph on the machine with the paper's recommended
  //    allocation: explicit 2MB huge pages, NUMA-interleaved.
  graph::GraphLayout layout;
  layout.policy.placement = memsim::Placement::kInterleaved;
  layout.policy.page_size = memsim::PageSizeClass::k2M;
  graph::CsrGraph g(&machine, topo, layout, "quickstart");
  g.Prefault(rt.threads());

  // 4. Run BFS from the max-out-degree vertex with sparse worklists.
  analytics::AlgoOptions opt;
  opt.label_policy = layout.policy;
  const VertexId source = graph::MaxOutDegreeVertex(topo);
  const analytics::BfsResult r = analytics::BfsSparseWl(rt, g, source, opt);

  uint64_t reached = 0;
  for (size_t v = 0; v < r.level.size(); ++v) {
    if (r.level[v] != analytics::kInfLevel) ++reached;
  }
  std::printf("\nbfs from %llu: %llu rounds, %llu/%llu reached, "
              "simulated time %.3f ms\n",
              static_cast<unsigned long long>(source),
              static_cast<unsigned long long>(r.rounds),
              static_cast<unsigned long long>(reached),
              static_cast<unsigned long long>(topo.num_vertices),
              static_cast<double>(r.time_ns) / 1e6);

  // 5. Inspect simulated hardware counters (the model's VTune).
  std::printf("\nmachine counters:\n%s\n",
              machine.stats().ToString().c_str());
  return 0;
}
