#include "pmg/scenarios/scenarios.h"

#include <gtest/gtest.h>

#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"

namespace pmg::scenarios {
namespace {

TEST(ScenariosTest, AllSixBuild) {
  for (const std::string& name : AllScenarioNames()) {
    const Scenario s = MakeScenario(name);
    EXPECT_EQ(s.name, name);
    EXPECT_GT(s.topo.num_vertices, 0u);
    EXPECT_GT(s.topo.NumEdges(), 0u);
  }
}

TEST(ScenariosTest, DiameterOrderingMatchesPaper) {
  // kron/rmat tiny; iso ~ 100; clueweb ~ 500; uk14 ~ 2500; wdc12 ~ 5000.
  auto diam = [](const std::string& name) {
    return graph::ComputeProperties(MakeScenario(name).topo)
        .estimated_diameter;
  };
  const uint64_t kron = diam("kron30");
  const uint64_t clueweb = diam("clueweb12");
  const uint64_t uk = diam("uk14");
  const uint64_t wdc = diam("wdc12");
  const uint64_t iso = diam("iso_m100");
  EXPECT_LT(kron, 16u);
  EXPECT_GT(clueweb, 300u);
  EXPECT_LT(clueweb, 900u);
  EXPECT_GT(uk, 3 * clueweb);
  EXPECT_GT(wdc, uk);
  EXPECT_GT(iso, 30u);
  EXPECT_LT(iso, 300u);
}

TEST(ScenariosTest, CapacityRelationshipsPreserved) {
  // kron30 fits well inside total DRAM; clueweb12 nearly fills it; the
  // rest exceed DRAM and only fit in PMM — the relationships that drive
  // Figures 9-10 and Table 4.
  const memsim::MachineConfig pmm = memsim::OptanePmmConfig();
  const uint64_t dram_total =
      pmm.topology.dram_bytes_per_socket * pmm.topology.sockets;
  const uint64_t pmm_total =
      pmm.topology.pmm_bytes_per_socket * pmm.topology.sockets;
  auto bytes = [](const std::string& name) {
    return graph::CsrBytes(MakeScenario(name).topo);
  };
  EXPECT_LT(bytes("kron30"), dram_total / 2);
  EXPECT_GT(bytes("clueweb12"), dram_total / 2);
  EXPECT_GT(bytes("rmat32"), dram_total);
  EXPECT_GT(bytes("uk14"), dram_total / 2);
  EXPECT_GT(bytes("wdc12"), dram_total);
  for (const std::string& name : AllScenarioNames()) {
    EXPECT_LT(bytes(name), pmm_total / 2) << name;
  }
}

TEST(ScenariosTest, RepresentedVerticesGate32BitSystems) {
  EXPECT_GT(MakeScenario("wdc12").represented_vertices, 0x7fffffffull);
  EXPECT_GT(MakeScenario("rmat32").represented_vertices, 0x7fffffffull);
  EXPECT_LT(MakeScenario("clueweb12").represented_vertices, 0x7fffffffull);
}

TEST(ScenariosTest, ScatterIdsPreservesStructure) {
  const Scenario s = MakeScenario("kron30");
  const graph::CsrTopology scattered = ScatterIds(s.topo, 7);
  EXPECT_EQ(scattered.NumEdges(), s.topo.NumEdges());
  EXPECT_EQ(scattered.num_vertices, s.topo.num_vertices);
  const auto p1 = graph::ComputeProperties(s.topo);
  const auto p2 = graph::ComputeProperties(scattered);
  EXPECT_EQ(p1.max_out_degree, p2.max_out_degree);
}

TEST(ReportTest, TableAlignsAndPrints) {
  Table t({"graph", "time"});
  t.AddRow({"kron30", "1.234"});
  t.AddRow({"a-much-longer-name", "0.5"});
  // Smoke: printing to a memory stream must not crash and must contain
  // the cells.
  char buf[512] = {0};
  std::FILE* mem = fmemopen(buf, sizeof(buf), "w");
  t.Print(mem);
  std::fclose(mem);
  const std::string out(buf);
  EXPECT_NE(out.find("kron30"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(FormatSeconds(1234567890), "1.235");
  EXPECT_EQ(FormatRatio(2.5), "2.50x");
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
}

TEST(ReportTest, GeomeanBasics) {
  EXPECT_DOUBLE_EQ(Geomean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(Geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(Geomean({2.0, 0.0, 8.0}), 4.0);  // non-positive skipped
}

}  // namespace
}  // namespace pmg::scenarios
