// Golden-file tests for the scenarios/report.cc table renderers and the
// pmg::trace JSON emitters. The expected outputs live next to this file
// in goldens/; regenerate them after an intentional format change with
//
//   ./scenarios_golden_test --update-goldens
//
// The JSON goldens are additionally required to carry the schema version
// and to round-trip through the bundled parser.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "pmg/scenarios/report.h"
#include "pmg/trace/json.h"
#include "pmg/trace/trace_session.h"

namespace pmg::scenarios {

bool g_update_goldens = false;

namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(PMG_GOLDEN_DIR) + "/" + name;
}

/// Compares `actual` against goldens/<name>, or rewrites the golden when
/// the binary runs with --update-goldens.
void ExpectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_goldens) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with --update-goldens to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "output drifted from " << path
      << "; rerun with --update-goldens if the change is intentional";
}

/// Renders through a real FILE* so the goldens capture exactly what the
/// bench binaries print.
template <typename Fn>
std::string Capture(Fn&& fn) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  fn(f);
  std::fflush(f);
  const long size = std::ftell(f);
  std::rewind(f);
  std::string out(static_cast<size_t>(size), '\0');
  const size_t read = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  EXPECT_EQ(read, out.size());
  return out;
}

/// A fully populated synthetic report exercising every formatting path.
trace::TraceReport SyntheticTraceReport() {
  using memsim::TraceBucket;
  trace::TraceReport r;
  auto set = [&](TraceBucket b, SimNs ns) {
    r.buckets[static_cast<size_t>(b)] = ns;
  };
  set(TraceBucket::kCpuCacheHit, 1200000);
  set(TraceBucket::kTlbWalk, 800000);
  set(TraceBucket::kNearMemHitLocal, 2500000);
  set(TraceBucket::kNearMemHitRemote, 4700000);
  set(TraceBucket::kPmmMediaMiss, 1500000);
  set(TraceBucket::kCompute, 300000);
  set(TraceBucket::kRooflineStall, 900000);
  set(TraceBucket::kMinorFault, 400000);
  set(TraceBucket::kMigrationScan, 120000);
  set(TraceBucket::kMigrationMove, 340000);
  set(TraceBucket::kMigrationRemap, 90000);
  set(TraceBucket::kTlbShootdown, 50000);
  for (size_t b = 0; b < memsim::kTraceBucketCount; ++b) {
    r.attributed_ns += r.buckets[b];
  }
  r.user_ns = r.UserBucketNs();
  r.kernel_ns = r.KernelBucketNs();
  r.total_ns = r.attributed_ns;
  r.epochs = 12;
  r.bandwidth_bound_epochs = 3;
  r.migrated_pages = 64;
  r.quarantines = 1;
  r.checkpoint_writes = 2;
  r.checkpoint_restores = 1;
  r.crashes = 1;
  r.threads = {{0, 6000000, 500000}, {1, 5900000, 400000}};
  r.regions = {{"g.out.index", 10000, 2000000},
               {"g.out.dst", 90000, 5000000},
               {"labels", 50000, 3000000}};
  return r;
}

TEST(ReportGoldenTest, TableFormatting) {
  Table t({"graph", "time (s)", "speedup"});
  t.AddRow({"kron30", FormatSeconds(1234567890), FormatRatio(1.0)});
  t.AddRow({"clueweb12", FormatSeconds(98765432100), FormatRatio(12.34)});
  t.AddRow({"a-very-long-graph-name", FormatMillis(1500000),
            FormatDouble(0.5, 3)});
  ExpectMatchesGolden("table_basic.golden",
                      Capture([&](std::FILE* f) { t.Print(f); }));
}

TEST(ReportGoldenTest, TraceReportTable) {
  const trace::TraceReport r = SyntheticTraceReport();
  ExpectMatchesGolden(
      "trace_report.golden",
      Capture([&](std::FILE* f) { PrintTraceReport(r, f); }));
}

TEST(ReportGoldenTest, TraceReportJson) {
  const trace::TraceReport r = SyntheticTraceReport();
  const std::string doc = r.ToJson();
  ExpectMatchesGolden("trace_report.json.golden", doc);
  // Schema contract: versioned, parseable, and stable through a
  // parse -> dump -> parse cycle.
  trace::JsonValue v;
  std::string err;
  ASSERT_TRUE(trace::JsonValue::Parse(doc, &v, &err)) << err;
  EXPECT_EQ(v.Find("schema_version")->AsUInt(), trace::kTraceSchemaVersion);
  EXPECT_TRUE(v.Find("conserves")->bool_value);
  const std::string dumped = v.Dump();
  trace::JsonValue again;
  ASSERT_TRUE(trace::JsonValue::Parse(dumped, &again, &err)) << err;
  EXPECT_EQ(again.Dump(), dumped);
}

TEST(ReportGoldenTest, SancheckReportTable) {
  sancheck::SancheckSummary s;
  s.checked_accesses = 123456;
  s.checked_epochs = 10;
  ExpectMatchesGolden(
      "sancheck_pass.golden",
      Capture([&](std::FILE* f) { PrintSancheckReport(s, f); }));
}

}  // namespace
}  // namespace pmg::scenarios

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-goldens") {
      pmg::scenarios::g_update_goldens = true;
    }
  }
  return RUN_ALL_TESTS();
}
