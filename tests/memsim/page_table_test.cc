#include "pmg/memsim/page_table.h"

#include <gtest/gtest.h>

namespace pmg::memsim {
namespace {

PagePolicy SmallPages() {
  PagePolicy p;
  p.page_size = PageSizeClass::k4K;
  return p;
}

PagePolicy HugePages() {
  PagePolicy p;
  p.page_size = PageSizeClass::k2M;
  return p;
}

TEST(PageTableTest, LookupResolvesWithinRegion) {
  PageTable pt(/*thp_percent=*/0, /*seed=*/1);
  const RegionId id = pt.CreateRegion(4 * kHugePageBytes, SmallPages(), "r");
  const Region& r = pt.region(id);
  PageLookup lk = pt.Lookup(r.base);
  EXPECT_EQ(lk.page_base, r.base);
  EXPECT_EQ(lk.cls, PageSizeClass::k4K);
  lk = pt.Lookup(r.base + 4097);
  EXPECT_EQ(lk.page_base, r.base + 4096);
}

TEST(PageTableTest, SmallRegionPageCount) {
  PageTable pt(0, 1);
  const RegionId id = pt.CreateRegion(10 * kSmallPageBytes + 1, SmallPages(),
                                      "r");
  EXPECT_EQ(pt.region(id).pages.size(), 11u);
}

TEST(PageTableTest, HugeRegionPageCount) {
  PageTable pt(0, 1);
  // 5MB = two full 2MB chunks + a 1MB tail; explicit huge-page arenas
  // round the tail up to a third huge page.
  const RegionId id = pt.CreateRegion(5 * 1024 * 1024, HugePages(), "r");
  const Region& r = pt.region(id);
  EXPECT_EQ(r.pages.size(), 3u);
  EXPECT_EQ(r.chunk_is_huge[0], 1);
  EXPECT_EQ(r.chunk_is_huge[1], 1);
  EXPECT_EQ(r.chunk_is_huge[2], 1);
}

TEST(PageTableTest, HugeLookupUsesChunkBase) {
  PageTable pt(0, 1);
  const RegionId id = pt.CreateRegion(4 * kHugePageBytes, HugePages(), "r");
  const Region& r = pt.region(id);
  const PageLookup lk = pt.Lookup(r.base + kHugePageBytes + 12345);
  EXPECT_EQ(lk.cls, PageSizeClass::k2M);
  EXPECT_EQ(lk.page_base, r.base + kHugePageBytes);
}

TEST(PageTableTest, ThpPromotesConfiguredFraction) {
  PageTable pt(/*thp_percent=*/70, /*seed=*/42);
  PagePolicy p = SmallPages();
  p.thp = true;
  const RegionId id = pt.CreateRegion(256 * kHugePageBytes, p, "r");
  const Region& r = pt.region(id);
  int huge = 0;
  for (uint8_t h : r.chunk_is_huge) huge += h;
  // Expect roughly 70% promotion with deterministic hashing.
  EXPECT_GT(huge, 256 * 55 / 100);
  EXPECT_LT(huge, 256 * 85 / 100);
}

TEST(PageTableTest, ThpZeroPercentStaysSmall) {
  PageTable pt(/*thp_percent=*/0, /*seed=*/42);
  PagePolicy p = SmallPages();
  p.thp = true;
  const RegionId id = pt.CreateRegion(32 * kHugePageBytes, p, "r");
  for (uint8_t h : pt.region(id).chunk_is_huge) EXPECT_EQ(h, 0);
}

TEST(PageTableTest, RegionsDoNotOverlap) {
  PageTable pt(0, 1);
  const RegionId a = pt.CreateRegion(kHugePageBytes + 1, SmallPages(), "a");
  const RegionId b = pt.CreateRegion(3, SmallPages(), "b");
  const Region& ra = pt.region(a);
  const Region& rb = pt.region(b);
  EXPECT_TRUE(ra.end() <= rb.base || rb.end() <= ra.base);
  EXPECT_EQ(pt.Lookup(rb.base).region, &rb);
  EXPECT_EQ(pt.Lookup(ra.base + kHugePageBytes).region, &ra);
}

TEST(PageTableTest, DestroyedRegionIsNotLive) {
  PageTable pt(0, 1);
  const RegionId a = pt.CreateRegion(4096, SmallPages(), "a");
  EXPECT_TRUE(pt.IsLive(a));
  pt.DestroyRegion(a);
  EXPECT_FALSE(pt.IsLive(a));
}

TEST(PageTableTest, ForEachMappedPageVisitsOnlyMapped) {
  PageTable pt(0, 1);
  const RegionId id = pt.CreateRegion(8 * kSmallPageBytes, SmallPages(), "r");
  Region& r = pt.region(id);
  r.pages[3].frame = 100;
  pt.NoteMapped();
  int visited = 0;
  VirtAddr base_seen = 0;
  pt.ForEachMappedPage(
      [&](Region&, PageInfo&, VirtAddr base, PageSizeClass cls) {
        ++visited;
        base_seen = base;
        EXPECT_EQ(cls, PageSizeClass::k4K);
      });
  EXPECT_EQ(visited, 1);
  EXPECT_EQ(base_seen, r.base + 3 * kSmallPageBytes);
  EXPECT_EQ(pt.mapped_pages(), 1u);
}

TEST(PageTableTest, MixedThpLookupConsistent) {
  PageTable pt(/*thp_percent=*/50, /*seed=*/7);
  PagePolicy p = SmallPages();
  p.thp = true;
  const RegionId id = pt.CreateRegion(64 * kHugePageBytes, p, "r");
  const Region& r = pt.region(id);
  // Every address maps to a page whose [base, base+size) contains it.
  for (VirtAddr a = r.base; a < r.end(); a += 777777) {
    const PageLookup lk = pt.Lookup(a);
    EXPECT_LE(lk.page_base, a);
    EXPECT_LT(a, lk.page_base + PageBytes(lk.cls));
  }
}

}  // namespace
}  // namespace pmg::memsim
