#include "pmg/memsim/cpu_cache.h"

#include <gtest/gtest.h>

namespace pmg::memsim {
namespace {

TEST(CpuCacheTest, MissThenHit) {
  CpuCache cache(16);
  EXPECT_FALSE(cache.AccessLine(7));  // cold miss installs the line
  EXPECT_TRUE(cache.AccessLine(7));
}

TEST(CpuCacheTest, DirectMappedConflictEviction) {
  // Lines 3 and 3+16 share index 3 in a 16-line cache: each install
  // evicts the other, so alternating accesses never hit.
  CpuCache cache(16);
  EXPECT_FALSE(cache.AccessLine(3));
  EXPECT_FALSE(cache.AccessLine(3 + 16));
  EXPECT_FALSE(cache.AccessLine(3));
  EXPECT_FALSE(cache.AccessLine(3 + 16));
}

TEST(CpuCacheTest, DistinctIndicesCoexist) {
  CpuCache cache(16);
  for (uint64_t line = 0; line < 16; ++line) {
    EXPECT_FALSE(cache.AccessLine(line));
  }
  for (uint64_t line = 0; line < 16; ++line) {
    EXPECT_TRUE(cache.AccessLine(line));
  }
}

TEST(CpuCacheTest, ClearDropsEverything) {
  CpuCache cache(16);
  for (uint64_t line = 0; line < 16; ++line) cache.AccessLine(line);
  cache.Clear();
  for (uint64_t line = 0; line < 16; ++line) {
    EXPECT_FALSE(cache.AccessLine(line));
  }
}

TEST(CpuCacheTest, InvalidateRangeDropsResidentLines) {
  // The quarantine/victim-fill contract: stale copies of an invalidated
  // range must not serve hits afterwards.
  CpuCache cache(64);
  for (uint64_t line = 10; line < 20; ++line) cache.AccessLine(line);
  cache.InvalidateRange(12, 4);  // lines 12..15
  for (uint64_t line = 10; line < 20; ++line) {
    const bool hit = cache.AccessLine(line);
    if (line >= 12 && line < 16) {
      EXPECT_FALSE(hit) << "line " << line << " must have been invalidated";
    } else {
      EXPECT_TRUE(hit) << "line " << line << " must have stayed resident";
    }
  }
}

TEST(CpuCacheTest, InvalidateRangeLeavesConflictingResidentAlone) {
  // Index 5 holds line 5+64 (not line 5): invalidating line 5 must not
  // evict the unrelated occupant that happens to share the slot.
  CpuCache cache(64);
  EXPECT_FALSE(cache.AccessLine(5 + 64));
  cache.InvalidateRange(5, 1);
  EXPECT_TRUE(cache.AccessLine(5 + 64));
}

TEST(CpuCacheTest, PerThreadIsolation) {
  // One CpuCache instance per virtual thread: installs in one must not
  // produce hits in another.
  CpuCache a(16);
  CpuCache b(16);
  EXPECT_FALSE(a.AccessLine(42));
  EXPECT_FALSE(b.AccessLine(42));
  EXPECT_TRUE(a.AccessLine(42));
  EXPECT_TRUE(b.AccessLine(42));
}

}  // namespace
}  // namespace pmg::memsim
