#include <gtest/gtest.h>

#include <set>

#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"

// Focused tests of the AutoNUMA migration model's rate controls.

namespace pmg::memsim {
namespace {

MachineConfig Base() {
  MachineConfig c;
  c.kind = MachineKind::kDramMain;
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(8);
  c.cpu_cache_lines = 64;
  c.migration.enabled = true;
  c.migration.scan_interval_ns = 0;  // scan every epoch unless stated
  c.migration.min_remote_accesses = 2;
  return c;
}

PagePolicy LocalPolicy(PageSizeClass ps = PageSizeClass::k4K) {
  PagePolicy p;
  p.placement = Placement::kLocal;
  p.preferred_node = 0;
  p.page_size = ps;
  return p;
}

/// Hammers `pages` 4KB pages of `r` from a socket-1 thread for `rounds`
/// epochs.
void HammerRemote(Machine& m, VirtAddr base, uint64_t pages, int rounds) {
  for (int round = 0; round < rounds; ++round) {
    m.BeginEpoch(4);
    for (uint64_t pg = 0; pg < pages; ++pg) {
      for (int i = 0; i < 4; ++i) {
        m.Access(2, base + pg * kSmallPageBytes + uint64_t{i} * 64, 8,
                 AccessType::kRead);
      }
    }
    m.EndEpoch();
    m.FlushVolatileState();
  }
}

TEST(MigrationTest, ScanIntervalSuppressesScans) {
  MachineConfig c = Base();
  c.migration.scan_interval_ns = kNsPerSec;  // effectively never
  Machine m(c);
  const VirtAddr base = m.BaseOf(m.Alloc(8 * kSmallPageBytes,
                                         LocalPolicy(), "r"));
  HammerRemote(m, base, 8, 5);
  EXPECT_EQ(m.stats().migration_scans, 0u);
  EXPECT_EQ(m.stats().migrations, 0u);
}

TEST(MigrationTest, ZeroIntervalScansEveryEpoch) {
  Machine m(Base());
  const VirtAddr base = m.BaseOf(m.Alloc(8 * kSmallPageBytes,
                                         LocalPolicy(), "r"));
  HammerRemote(m, base, 8, 5);
  EXPECT_GE(m.stats().migration_scans, 5u);
  EXPECT_GT(m.stats().migrations, 0u);
}

TEST(MigrationTest, ByteBudgetLimitsPerScanMigrations) {
  MachineConfig c = Base();
  c.migration.migrate_bytes_per_scan = 2 * kSmallPageBytes;
  Machine m(c);
  const VirtAddr base = m.BaseOf(m.Alloc(64 * kSmallPageBytes,
                                         LocalPolicy(), "r"));
  // One hammer round then one scan: at most budget-many pages move
  // (budget may have accumulated one extra installment).
  m.BeginEpoch(4);
  for (uint64_t pg = 0; pg < 64; ++pg) {
    for (int i = 0; i < 4; ++i) {
      m.Access(2, base + pg * kSmallPageBytes + uint64_t{i} * 64, 8,
               AccessType::kRead);
    }
  }
  m.EndEpoch();
  EXPECT_LE(m.stats().migrations, 4u);
}

TEST(MigrationTest, HugePagesMigrateMoreReluctantly) {
  MachineConfig c = Base();
  c.migration.migrate_bytes_per_scan = MiB(16);  // no byte limit in play
  Machine small_m(c);
  Machine huge_m(c);
  const VirtAddr sb = small_m.BaseOf(
      small_m.Alloc(kHugePageBytes, LocalPolicy(PageSizeClass::k4K), "r"));
  const VirtAddr hb = huge_m.BaseOf(
      huge_m.Alloc(kHugePageBytes, LocalPolicy(PageSizeClass::k2M), "r"));
  // The same number of remote touches: enough to trip the 4KB threshold
  // on every small page, far below the huge-page threshold.
  HammerRemote(small_m, sb, 8, 3);
  HammerRemote(huge_m, hb, 8, 3);
  EXPECT_GT(small_m.stats().migrations, 0u);
  EXPECT_EQ(huge_m.stats().migrations, 0u);
}

TEST(MigrationTest, MigrationCountsAsKernelTime) {
  Machine m(Base());
  const VirtAddr base = m.BaseOf(m.Alloc(16 * kSmallPageBytes,
                                         LocalPolicy(), "r"));
  HammerRemote(m, base, 16, 4);
  EXPECT_GT(m.stats().migrations, 0u);
  EXPECT_GT(m.stats().kernel_ns, 0u);
  EXPECT_GT(m.stats().tlb_shootdowns, 0u);
}

TEST(MigrationTest, MigrationFreedFramesDoNotAliasLivePages) {
  // Migrating a page frees its node-0 source frames into the free list;
  // a later allocation that recycles them must not collide with any page
  // that is still mapped.
  Machine m(Base());
  const RegionId moved =
      m.Alloc(16 * kSmallPageBytes, LocalPolicy(), "moved");
  HammerRemote(m, m.BaseOf(moved), 16, 4);
  ASSERT_GT(m.stats().migrations, 0u);
  const RegionId renew =
      m.Alloc(16 * kSmallPageBytes, LocalPolicy(), "renew");
  m.BeginEpoch(4);
  for (uint64_t pg = 0; pg < 16; ++pg) {
    m.Access(0, m.BaseOf(renew) + pg * kSmallPageBytes, 8,
             AccessType::kRead);
  }
  m.EndEpoch();
  std::set<PhysPage> seen;
  for (const RegionId id : {moved, renew}) {
    for (const PageInfo& pg : m.page_table().region(id).pages) {
      if (pg.frame == kInvalidFrame) continue;
      EXPECT_TRUE(seen.insert(pg.frame).second)
          << "frame " << pg.frame << " mapped twice";
    }
  }
}

}  // namespace
}  // namespace pmg::memsim
