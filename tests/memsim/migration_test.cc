#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/memsim/tier_hook.h"

// Focused tests of the AutoNUMA migration model's rate controls.

namespace pmg::memsim {
namespace {

MachineConfig Base() {
  MachineConfig c;
  c.kind = MachineKind::kDramMain;
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(8);
  c.cpu_cache_lines = 64;
  c.migration.enabled = true;
  c.migration.scan_interval_ns = 0;  // scan every epoch unless stated
  c.migration.min_remote_accesses = 2;
  return c;
}

PagePolicy LocalPolicy(PageSizeClass ps = PageSizeClass::k4K) {
  PagePolicy p;
  p.placement = Placement::kLocal;
  p.preferred_node = 0;
  p.page_size = ps;
  return p;
}

/// Hammers `pages` 4KB pages of `r` from a socket-1 thread for `rounds`
/// epochs.
void HammerRemote(Machine& m, VirtAddr base, uint64_t pages, int rounds) {
  for (int round = 0; round < rounds; ++round) {
    m.BeginEpoch(4);
    for (uint64_t pg = 0; pg < pages; ++pg) {
      for (int i = 0; i < 4; ++i) {
        m.Access(2, base + pg * kSmallPageBytes + uint64_t{i} * 64, 8,
                 AccessType::kRead);
      }
    }
    m.EndEpoch();
    m.FlushVolatileState();
  }
}

TEST(MigrationTest, ScanIntervalSuppressesScans) {
  MachineConfig c = Base();
  c.migration.scan_interval_ns = kNsPerSec;  // effectively never
  Machine m(c);
  const VirtAddr base = m.BaseOf(m.Alloc(8 * kSmallPageBytes,
                                         LocalPolicy(), "r"));
  HammerRemote(m, base, 8, 5);
  EXPECT_EQ(m.stats().migration_scans, 0u);
  EXPECT_EQ(m.stats().migrations, 0u);
}

TEST(MigrationTest, ZeroIntervalScansEveryEpoch) {
  Machine m(Base());
  const VirtAddr base = m.BaseOf(m.Alloc(8 * kSmallPageBytes,
                                         LocalPolicy(), "r"));
  HammerRemote(m, base, 8, 5);
  EXPECT_GE(m.stats().migration_scans, 5u);
  EXPECT_GT(m.stats().migrations, 0u);
}

TEST(MigrationTest, ByteBudgetLimitsPerScanMigrations) {
  MachineConfig c = Base();
  c.migration.migrate_bytes_per_scan = 2 * kSmallPageBytes;
  Machine m(c);
  const VirtAddr base = m.BaseOf(m.Alloc(64 * kSmallPageBytes,
                                         LocalPolicy(), "r"));
  // One hammer round then one scan: at most budget-many pages move
  // (budget may have accumulated one extra installment).
  m.BeginEpoch(4);
  for (uint64_t pg = 0; pg < 64; ++pg) {
    for (int i = 0; i < 4; ++i) {
      m.Access(2, base + pg * kSmallPageBytes + uint64_t{i} * 64, 8,
               AccessType::kRead);
    }
  }
  m.EndEpoch();
  EXPECT_LE(m.stats().migrations, 4u);
}

/// Counts every daemon decision event; the boundary tests reconcile the
/// counts against MachineStats and the scan records as exact integers.
struct CountingTierHook final : TierHook {
  uint64_t candidates = 0;
  uint64_t migrated_pages = 0;
  uint64_t migrated_bytes = 0;
  uint64_t skipped[kTierSkipReasonCount] = {};
  uint64_t scans = 0;
  /// Sums of the per-scan records, the daemon's own accounting path.
  uint64_t scan_candidates = 0;
  uint64_t scan_migrated = 0;
  uint64_t scan_skipped = 0;

  uint64_t SkippedTotal() const {
    uint64_t sum = 0;
    for (uint64_t s : skipped) sum += s;
    return sum;
  }

  void OnTierAlloc(RegionId, VirtAddr, uint64_t, std::string_view) override {}
  void OnTierFree(RegionId) override {}
  void OnTierPagePlaced(RegionId, VirtAddr, PageSizeClass, NodeId, ThreadId,
                        SimNs) override {}
  void OnTierCandidate(VirtAddr, PageSizeClass, NodeId, NodeId, uint32_t,
                       uint32_t) override {
    ++candidates;
  }
  void OnTierMigrated(VirtAddr, PageSizeClass, NodeId, NodeId,
                      uint64_t bytes) override {
    ++migrated_pages;
    migrated_bytes += bytes;
  }
  void OnTierSkipped(VirtAddr, PageSizeClass, NodeId,
                     TierSkipReason reason) override {
    ++skipped[static_cast<size_t>(reason)];
  }
  void OnTierScan(const TierScanRecord& scan) override {
    ++scans;
    scan_candidates += scan.candidates;
    scan_migrated += scan.migrated_pages;
    for (uint64_t s : scan.skipped) scan_skipped += s;
  }
  void OnTierQuarantine(VirtAddr, PageSizeClass, NodeId, NodeId,
                        SimNs) override {}
  void OnTierEpoch(const TierEpochSample&) override {}
};

/// One epoch that makes all `pages` 4KB pages of `base` hot (4 remote
/// reads each, zero local) and closes with exactly one daemon scan.
void HammerOnce(Machine& m, VirtAddr base, uint64_t pages) {
  m.BeginEpoch(4);
  for (uint64_t pg = 0; pg < pages; ++pg) {
    for (int i = 0; i < 4; ++i) {
      m.Access(2, base + pg * kSmallPageBytes + uint64_t{i} * 64, 8,
               AccessType::kRead);
    }
  }
  m.EndEpoch();
}

TEST(MigrationTest, RateLimitCapHitExactlyAtBoundary) {
  MachineConfig c = Base();
  c.migration.max_migrations_per_scan = 3;
  c.migration.migrate_bytes_per_scan = MiB(16);  // byte budget not in play
  Machine m(c);
  CountingTierHook h;
  m.SetTierHook(&h);
  const VirtAddr base = m.BaseOf(m.Alloc(16 * kSmallPageBytes,
                                         LocalPolicy(), "r"));
  HammerOnce(m, base, 16);
  // All 16 pages were hot; exactly max_migrations_per_scan moved and
  // every other candidate was skipped for the rate limit alone.
  ASSERT_EQ(h.scans, 1u);
  EXPECT_EQ(m.stats().migrations, 3u);
  EXPECT_EQ(h.candidates, 16u);
  EXPECT_EQ(h.migrated_pages, 3u);
  EXPECT_EQ(h.skipped[static_cast<size_t>(TierSkipReason::kRateLimit)], 13u);
  EXPECT_EQ(h.skipped[static_cast<size_t>(TierSkipReason::kByteBudget)], 0u);
  EXPECT_EQ(h.skipped[static_cast<size_t>(TierSkipReason::kNoFrames)], 0u);
  EXPECT_EQ(h.skipped[static_cast<size_t>(TierSkipReason::kWrongNode)], 0u);
  m.SetTierHook(nullptr);
}

TEST(MigrationTest, ByteBudgetCapHitExactlyAtBoundary) {
  MachineConfig c = Base();
  c.migration.max_migrations_per_scan = 64;  // rate limit not in play
  c.migration.migrate_bytes_per_scan = 3 * kSmallPageBytes;
  Machine m(c);
  CountingTierHook h;
  m.SetTierHook(&h);
  const VirtAddr base = m.BaseOf(m.Alloc(16 * kSmallPageBytes,
                                         LocalPolicy(), "r"));
  HammerOnce(m, base, 16);
  // The first scan's budget is exactly one installment: three 4KB pages
  // move, consuming the budget to the byte, and the rest skip on it.
  ASSERT_EQ(h.scans, 1u);
  EXPECT_EQ(m.stats().migrations, 3u);
  EXPECT_EQ(h.migrated_bytes, 3 * kSmallPageBytes);
  EXPECT_EQ(h.candidates, 16u);
  EXPECT_EQ(h.skipped[static_cast<size_t>(TierSkipReason::kByteBudget)], 13u);
  EXPECT_EQ(h.skipped[static_cast<size_t>(TierSkipReason::kRateLimit)], 0u);
  m.SetTierHook(nullptr);
}

TEST(MigrationTest, SkipReasonAccountingIsExact) {
  // Over many scans with both rate controls engaged, every candidate
  // resolves to exactly one verdict: candidates == migrated + skipped,
  // per event stream and per the daemon's own scan records, and the
  // migrated count is MachineStats' — all exact integers.
  MachineConfig c = Base();
  c.migration.max_migrations_per_scan = 2;
  c.migration.migrate_bytes_per_scan = 3 * kSmallPageBytes;
  Machine m(c);
  CountingTierHook h;
  m.SetTierHook(&h);
  const VirtAddr base = m.BaseOf(m.Alloc(24 * kSmallPageBytes,
                                         LocalPolicy(), "r"));
  HammerRemote(m, base, 24, 6);
  EXPECT_GT(h.candidates, 0u);
  EXPECT_GT(h.migrated_pages, 0u);
  EXPECT_GT(h.SkippedTotal(), 0u);
  EXPECT_EQ(h.candidates, h.migrated_pages + h.SkippedTotal());
  EXPECT_EQ(h.scan_candidates, h.candidates);
  EXPECT_EQ(h.scan_migrated, h.migrated_pages);
  EXPECT_EQ(h.scan_skipped, h.SkippedTotal());
  EXPECT_EQ(h.migrated_pages, m.stats().migrations);
  EXPECT_EQ(h.scans, m.stats().migration_scans);
  m.SetTierHook(nullptr);
}

TEST(MigrationTest, HugePagesMigrateMoreReluctantly) {
  MachineConfig c = Base();
  c.migration.migrate_bytes_per_scan = MiB(16);  // no byte limit in play
  Machine small_m(c);
  Machine huge_m(c);
  const VirtAddr sb = small_m.BaseOf(
      small_m.Alloc(kHugePageBytes, LocalPolicy(PageSizeClass::k4K), "r"));
  const VirtAddr hb = huge_m.BaseOf(
      huge_m.Alloc(kHugePageBytes, LocalPolicy(PageSizeClass::k2M), "r"));
  // The same number of remote touches: enough to trip the 4KB threshold
  // on every small page, far below the huge-page threshold.
  HammerRemote(small_m, sb, 8, 3);
  HammerRemote(huge_m, hb, 8, 3);
  EXPECT_GT(small_m.stats().migrations, 0u);
  EXPECT_EQ(huge_m.stats().migrations, 0u);
}

TEST(MigrationTest, MigrationCountsAsKernelTime) {
  Machine m(Base());
  const VirtAddr base = m.BaseOf(m.Alloc(16 * kSmallPageBytes,
                                         LocalPolicy(), "r"));
  HammerRemote(m, base, 16, 4);
  EXPECT_GT(m.stats().migrations, 0u);
  EXPECT_GT(m.stats().kernel_ns, 0u);
  EXPECT_GT(m.stats().tlb_shootdowns, 0u);
}

TEST(MigrationTest, MigrationFreedFramesDoNotAliasLivePages) {
  // Migrating a page frees its node-0 source frames into the free list;
  // a later allocation that recycles them must not collide with any page
  // that is still mapped.
  Machine m(Base());
  const RegionId moved =
      m.Alloc(16 * kSmallPageBytes, LocalPolicy(), "moved");
  HammerRemote(m, m.BaseOf(moved), 16, 4);
  ASSERT_GT(m.stats().migrations, 0u);
  const RegionId renew =
      m.Alloc(16 * kSmallPageBytes, LocalPolicy(), "renew");
  m.BeginEpoch(4);
  for (uint64_t pg = 0; pg < 16; ++pg) {
    m.Access(0, m.BaseOf(renew) + pg * kSmallPageBytes, 8,
             AccessType::kRead);
  }
  m.EndEpoch();
  std::set<PhysPage> seen;
  for (const RegionId id : {moved, renew}) {
    for (const PageInfo& pg : m.page_table().region(id).pages) {
      if (pg.frame == kInvalidFrame) continue;
      EXPECT_TRUE(seen.insert(pg.frame).second)
          << "frame " << pg.frame << " mapped twice";
    }
  }
}

}  // namespace
}  // namespace pmg::memsim
