#include "pmg/memsim/tlb.h"

#include <gtest/gtest.h>

#include "pmg/memsim/page_table.h"

namespace pmg::memsim {
namespace {

TEST(TlbTest, MissThenHit) {
  Tlb tlb{TlbConfig{}};
  EXPECT_FALSE(tlb.Lookup(0x1000, PageSizeClass::k4K));
  tlb.Insert(0x1000, PageSizeClass::k4K);
  EXPECT_TRUE(tlb.Lookup(0x1000, PageSizeClass::k4K));
}

TEST(TlbTest, ClassesAreSeparatePools) {
  Tlb tlb{TlbConfig{}};
  tlb.Insert(0, PageSizeClass::k4K);
  EXPECT_FALSE(tlb.Lookup(0, PageSizeClass::k2M));
  EXPECT_FALSE(tlb.Lookup(0, PageSizeClass::k1G));
  EXPECT_TRUE(tlb.Lookup(0, PageSizeClass::k4K));
}

TEST(TlbTest, CapacityEviction) {
  // 64 entries for 4KB pages: touching 65 distinct pages that all map to
  // different sets must evict at least one.
  Tlb tlb{TlbConfig{}};
  constexpr uint64_t kPages = 65;
  for (uint64_t p = 0; p < kPages; ++p) {
    tlb.Insert(p * kSmallPageBytes, PageSizeClass::k4K);
  }
  int hits = 0;
  for (uint64_t p = 0; p < kPages; ++p) {
    if (tlb.Lookup(p * kSmallPageBytes, PageSizeClass::k4K)) ++hits;
  }
  EXPECT_LT(hits, static_cast<int>(kPages));
  EXPECT_GE(hits, 1);
}

TEST(TlbTest, LruKeepsHotEntryInSet) {
  // Pages p, p+16, p+32, ... share a set (16 sets for the 4KB class).
  Tlb tlb{TlbConfig{}};
  const uint64_t hot = 0;
  tlb.Insert(hot, PageSizeClass::k4K);
  for (uint64_t i = 1; i <= 3; ++i) {
    tlb.Insert(i * 16 * kSmallPageBytes, PageSizeClass::k4K);
    ASSERT_TRUE(tlb.Lookup(hot, PageSizeClass::k4K));  // refresh LRU
  }
  // A fourth conflicting insert evicts the LRU way, which is not `hot`.
  tlb.Insert(4 * 16 * kSmallPageBytes, PageSizeClass::k4K);
  EXPECT_TRUE(tlb.Lookup(hot, PageSizeClass::k4K));
}

TEST(TlbTest, InvalidatePage) {
  Tlb tlb{TlbConfig{}};
  tlb.Insert(0x2000, PageSizeClass::k4K);
  tlb.InvalidatePage(0x2000, PageSizeClass::k4K);
  EXPECT_FALSE(tlb.Lookup(0x2000, PageSizeClass::k4K));
}

TEST(TlbTest, InvalidateAll) {
  Tlb tlb{TlbConfig{}};
  for (uint64_t p = 0; p < 8; ++p) {
    tlb.Insert(p * kHugePageBytes, PageSizeClass::k2M);
  }
  tlb.InvalidateAll();
  for (uint64_t p = 0; p < 8; ++p) {
    EXPECT_FALSE(tlb.Lookup(p * kHugePageBytes, PageSizeClass::k2M));
  }
}

TEST(TlbTest, HugePagesExtendReach) {
  // 32 huge-page entries cover 64MB; sweeping 16MB of huge pages fits,
  // while the same sweep with 4KB pages (4096 pages vs 64 entries) thrashes.
  Tlb tlb{TlbConfig{}};
  constexpr uint64_t kBytes = 16ull * 1024 * 1024;
  int huge_misses = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t b = 0; b < kBytes; b += kHugePageBytes) {
      if (!tlb.Lookup(b, PageSizeClass::k2M)) {
        ++huge_misses;
        tlb.Insert(b, PageSizeClass::k2M);
      }
    }
  }
  int small_misses = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t b = 0; b < kBytes; b += kSmallPageBytes) {
      if (!tlb.Lookup(b, PageSizeClass::k4K)) {
        ++small_misses;
        tlb.Insert(b, PageSizeClass::k4K);
      }
    }
  }
  // Second pass of huge pages hits entirely: misses == pages of one pass.
  EXPECT_EQ(huge_misses, static_cast<int>(kBytes / kHugePageBytes));
  // Small pages miss on both passes.
  EXPECT_EQ(small_misses, static_cast<int>(2 * kBytes / kSmallPageBytes));
}

}  // namespace
}  // namespace pmg::memsim
