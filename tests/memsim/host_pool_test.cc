#include "pmg/memsim/host_pool.h"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

/// \file host_pool_test.cc
/// Protocol tests for the host worker pool. The pool is pure host-side
/// mechanism (docs/determinism.md), so these tests are about execution
/// integrity — every task of every batch runs exactly once, stale
/// workers can never leak into a newer batch, and contract violations
/// die loudly — not about simulated numbers (the differential and
/// schedule-stress suites own those).

namespace pmg::memsim {
namespace {

/// Back-to-back small batches are the regression surface for the
/// stale-generation race: the caller often drains a tiny batch before a
/// pooled worker even wakes, so workers routinely carry state from a
/// generation that has already retired into the next RunTasks. Each
/// batch asserts exactly-once execution; the nightly TSan job runs this
/// same loop under the race detector.
TEST(HostPoolTest, EveryTaskRunsExactlyOncePerBatch) {
  HostPool* pool = HostPool::ForWorkers(4);
  ASSERT_NE(pool, nullptr);
  constexpr int kBatches = 8000;
  for (int batch = 0; batch < kBatches; ++batch) {
    // Exercise both natural and (replayable) shuffled dispatch, and
    // batches smaller and larger than the worker count.
    pool->SetShuffleSeed(batch % 3 == 0 ? 0 : 0x9e37u + batch);
    const uint32_t count = 2 + batch % 8;
    std::vector<std::atomic<uint32_t>> runs(count);
    pool->RunTasks(count, [&](uint32_t i) {
      ASSERT_LT(i, count);
      runs[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (uint32_t i = 0; i < count; ++i) {
      ASSERT_EQ(runs[i].load(std::memory_order_relaxed), 1u)
          << "batch " << batch << " task " << i;
    }
  }
  pool->SetShuffleSeed(0);
}

TEST(HostPoolTest, TrivialBatchesRunInlineInNaturalOrder) {
  HostPool* pool = HostPool::ForWorkers(2);
  ASSERT_NE(pool, nullptr);
  pool->RunTasks(0, [&](uint32_t) { FAIL() << "empty batch ran a task"; });
  uint32_t ran = 0;
  pool->RunTasks(1, [&](uint32_t i) {
    EXPECT_EQ(i, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1u);
}

TEST(HostPoolTest, ForWorkersCachesPerWidthAndSerialIsNull) {
  EXPECT_EQ(HostPool::ForWorkers(0), nullptr);
  EXPECT_EQ(HostPool::ForWorkers(1), nullptr);
  HostPool* a = HostPool::ForWorkers(3);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->workers(), 3u);
  EXPECT_EQ(HostPool::ForWorkers(3), a);
  EXPECT_NE(HostPool::ForWorkers(2), a);
}

/// A second driver entering RunTasks while a batch is in flight: the
/// first driver parks its whole batch, then another host thread calls
/// RunTasks on the same pool and must die on the single-driver gate.
[[noreturn]] void RaceTwoDrivers() {
  HostPool* pool = HostPool::ForWorkers(2);
  std::atomic<bool> entered{false};
  std::atomic<bool> park{true};
  std::thread first([&] {
    pool->RunTasks(2, [&](uint32_t) {
      entered.store(true);
      while (park.load()) std::this_thread::yield();
    });
  });
  while (!entered.load()) std::this_thread::yield();
  pool->RunTasks(2, [](uint32_t) {});  // dies here
  std::abort();                        // unreachable; keeps [[noreturn]] honest
}

TEST(HostPoolDeathTest, SecondConcurrentDriverDiesLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(RaceTwoDrivers(), "second driver on a shared pool");
}

TEST(HostPoolDeathTest, ReentrantRunTasksDiesLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  HostPool* pool = HostPool::ForWorkers(2);
  ASSERT_NE(pool, nullptr);
  // count must be >= 2 on both levels: single-task batches run inline
  // by design and never reach the gate.
  EXPECT_DEATH(
      pool->RunTasks(2,
                     [&](uint32_t) { pool->RunTasks(2, [](uint32_t) {}); }),
      "second driver on a shared pool");
}

TEST(HostPoolDeathTest, RejectsZeroAndOversizedWidth) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(HostPool p(0), "1\\.\\.4096 workers");
  EXPECT_DEATH(HostPool p(HostPool::kMaxWorkers + 1), "1\\.\\.4096 workers");
}

/// PMG_HOST_THREADS must die on garbage instead of truncating: trailing
/// junk, zero, out-of-long-range (ERANGE would otherwise clamp to
/// LONG_MAX and silently wrap through the uint32_t cast), and values
/// past the worker cap. Nothing else in this binary calls Default(), so
/// each re-exec'd death-test child resolves the env var fresh.
TEST(HostPoolDeathTest, RejectsGarbagePmgHostThreads) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* kGarbage[] = {"8x", "0", "-3", "99999999999999999999", "5000"};
  for (const char* value : kGarbage) {
    ASSERT_EQ(setenv("PMG_HOST_THREADS", value, 1), 0);
    EXPECT_DEATH(HostPool::Default(),
                 "PMG_HOST_THREADS must be an integer in \\[1, 4096\\]")
        << "value '" << value << "'";
  }
  ASSERT_EQ(unsetenv("PMG_HOST_THREADS"), 0);
}

}  // namespace
}  // namespace pmg::memsim
