#include "pmg/memsim/near_memory.h"

#include <gtest/gtest.h>

namespace pmg::memsim {
namespace {

TEST(NearMemoryTest, MissThenHit) {
  NearMemoryCache nm(/*sockets=*/2, /*sets=*/16);
  EXPECT_FALSE(nm.Access(0, 5, /*write=*/false).hit);
  EXPECT_TRUE(nm.Access(0, 5, false).hit);
}

TEST(NearMemoryTest, SocketsAreIndependent) {
  NearMemoryCache nm(2, 16);
  nm.Access(0, 5, false);
  EXPECT_FALSE(nm.Access(1, 5, false).hit);
}

TEST(NearMemoryTest, ConflictEviction) {
  // A one-set cache makes every pair of frames conflict.
  NearMemoryCache nm(1, 1);
  nm.Access(0, 3, false);
  EXPECT_FALSE(nm.Access(0, 19, false).hit);
  EXPECT_FALSE(nm.Access(0, 3, false).hit);  // evicted
}

TEST(NearMemoryTest, DirtyVictimReportsWriteback) {
  NearMemoryCache nm(1, 1);
  nm.Access(0, 3, /*write=*/true);
  const auto r = nm.Access(0, 19, false);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.writeback);
}

TEST(NearMemoryTest, CleanVictimNoWriteback) {
  NearMemoryCache nm(1, 1);
  nm.Access(0, 3, /*write=*/false);
  EXPECT_FALSE(nm.Access(0, 19, false).writeback);
}

TEST(NearMemoryTest, WriteHitMarksDirty) {
  NearMemoryCache nm(1, 1);
  nm.Access(0, 3, /*write=*/false);
  nm.Access(0, 3, /*write=*/true);  // hit, sets dirty
  EXPECT_TRUE(nm.Access(0, 19, false).writeback);
}

TEST(NearMemoryTest, InvalidateDropsFrames) {
  NearMemoryCache nm(1, 64);
  for (PhysPage f = 10; f < 14; ++f) nm.Access(0, f, true);
  nm.Invalidate(0, 10, 4);
  for (PhysPage f = 10; f < 14; ++f) {
    const auto r = nm.Access(0, f, false);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.writeback);  // dirty state was discarded
  }
}

TEST(NearMemoryTest, OccupancyTracksResidency) {
  NearMemoryCache nm(1, 8);
  EXPECT_DOUBLE_EQ(nm.Occupancy(0), 0.0);
  nm.Access(0, 0, false);
  nm.Access(0, 1, false);
  EXPECT_DOUBLE_EQ(nm.Occupancy(0), 0.25);
}

TEST(NearMemoryTest, WorkingSetLargerThanCacheMostlyMisses) {
  // A working set 2x the cache keeps evicting itself: the second sweep
  // still misses for the clear majority of pages (the conflict-miss
  // mechanism of Figure 4(a); hashed placement makes it statistical).
  NearMemoryCache nm(1, 32);
  int second_pass_hits = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (PhysPage f = 0; f < 64; ++f) {
      if (nm.Access(0, f, false).hit && pass == 1) ++second_pass_hits;
    }
  }
  EXPECT_LT(second_pass_hits, 64 / 4);
}

TEST(NearMemoryTest, WorkingSetWithinCacheMostlyHitsOnSecondPass) {
  // Hashed set placement can alias a few pages even below capacity, but
  // a half-full cache retains the large majority.
  NearMemoryCache nm(1, 64);
  for (PhysPage f = 0; f < 32; ++f) nm.Access(0, f, false);
  int hits = 0;
  for (PhysPage f = 0; f < 32; ++f) {
    if (nm.Access(0, f, false).hit) ++hits;
  }
  EXPECT_GE(hits, 32 / 2);
}

TEST(NearMemoryTest, AssociativityKeepsConflictingPair) {
  // Two frames forced into the same set: a 2-way cache holds both, the
  // direct-mapped cache ping-pongs.
  NearMemoryCache dm(1, 2, /*ways=*/1);
  NearMemoryCache assoc(1, 2, /*ways=*/2);
  // With one set (2 frames / 2 ways), all frames share the set.
  NearMemoryCache one_set(1, 2, 2);
  one_set.Access(0, 1, false);
  one_set.Access(0, 2, false);
  EXPECT_TRUE(one_set.Access(0, 1, false).hit);
  EXPECT_TRUE(one_set.Access(0, 2, false).hit);
  (void)dm;
  (void)assoc;
}

TEST(NearMemoryTest, AssociativeLruEvictsOldest) {
  NearMemoryCache nm(1, 2, /*ways=*/2);  // one set, two ways
  nm.Access(0, 1, false);
  nm.Access(0, 2, false);
  nm.Access(0, 1, false);          // refresh 1
  nm.Access(0, 3, false);          // evicts 2 (LRU)
  EXPECT_TRUE(nm.Access(0, 1, false).hit);
  EXPECT_FALSE(nm.Access(0, 2, false).hit);
}

TEST(NearMemoryTest, AssociativeDirtyVictimWritesBack) {
  NearMemoryCache nm(1, 2, 2);
  nm.Access(0, 1, /*write=*/true);
  nm.Access(0, 2, false);
  const auto r = nm.Access(0, 3, false);  // evicts dirty 1
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.writeback);
}

TEST(NearMemoryTest, AssociativityImprovesHitRateNearCapacity) {
  // Working set at ~88% of capacity, random re-touches: LRU associativity
  // must beat direct-mapped hashing (the Section 6.5 ablation's claim).
  constexpr uint64_t kFrames = 256;
  constexpr uint64_t kWorkingSet = 224;
  auto hits = [&](uint32_t ways) {
    NearMemoryCache nm(1, kFrames, ways);
    int hit = 0;
    uint64_t x = 12345;
    for (int i = 0; i < 20000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      if (nm.Access(0, x % kWorkingSet, false).hit) ++hit;
    }
    return hit;
  };
  EXPECT_GT(hits(8), hits(1));
}

TEST(NearMemoryTest, AssociativeInvalidateDrops) {
  NearMemoryCache nm(1, 8, 4);
  for (PhysPage f = 0; f < 4; ++f) nm.Access(0, f, true);
  nm.Invalidate(0, 0, 4);
  for (PhysPage f = 0; f < 4; ++f) {
    EXPECT_FALSE(nm.Access(0, f, false).hit);
  }
}

}  // namespace
}  // namespace pmg::memsim
