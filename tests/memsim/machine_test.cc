#include "pmg/memsim/machine.h"

#include <gtest/gtest.h>

#include <set>

#include "pmg/memsim/machine_configs.h"

namespace pmg::memsim {
namespace {

/// A small 2-socket machine for fast unit tests.
MachineConfig TinyConfig(MachineKind kind) {
  MachineConfig c;
  c.kind = kind;
  c.name = "tiny";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;  // 4 threads: 0,1 on socket 0; 2,3 on socket 1
  c.topology.dram_bytes_per_socket = MiB(1);
  c.topology.pmm_bytes_per_socket =
      kind == MachineKind::kDramMain ? 0 : MiB(16);
  c.cpu_cache_lines = 64;
  return c;
}

PagePolicy Policy(Placement pl, PageSizeClass ps = PageSizeClass::k4K) {
  PagePolicy p;
  p.placement = pl;
  p.page_size = ps;
  return p;
}

TEST(MachineTest, ThreadToSocketMapping) {
  Machine m(TinyConfig(MachineKind::kDramMain));
  EXPECT_EQ(m.SocketOfThread(0), 0u);
  EXPECT_EQ(m.SocketOfThread(1), 0u);
  EXPECT_EQ(m.SocketOfThread(2), 1u);
  EXPECT_EQ(m.SocketOfThread(3), 1u);
}

TEST(MachineTest, PaperMachineThreadMapping) {
  // On the paper's machine, runs with t <= 24 threads stay on socket 0.
  Machine m(OptanePmmConfig());
  for (ThreadId t = 0; t < 24; ++t) EXPECT_EQ(m.SocketOfThread(t), 0u);
  for (ThreadId t = 24; t < 48; ++t) EXPECT_EQ(m.SocketOfThread(t), 1u);
  for (ThreadId t = 48; t < 72; ++t) EXPECT_EQ(m.SocketOfThread(t), 0u);
}

TEST(MachineTest, FirstTouchFaultsOncePerPage) {
  Machine m(TinyConfig(MachineKind::kDramMain));
  const RegionId r = m.Alloc(4 * kSmallPageBytes,
                             Policy(Placement::kInterleaved), "r");
  const VirtAddr base = m.BaseOf(r);
  m.BeginEpoch(1);
  for (int rep = 0; rep < 3; ++rep) {
    for (uint64_t p = 0; p < 4; ++p) {
      m.Access(0, base + p * kSmallPageBytes, 8, AccessType::kRead);
    }
  }
  m.EndEpoch();
  EXPECT_EQ(m.stats().minor_faults, 4u);
  EXPECT_EQ(m.stats().pages_mapped_small, 4u);
}

TEST(MachineTest, InterleavedPlacementAlternatesNodes) {
  Machine m(TinyConfig(MachineKind::kDramMain));
  const RegionId r = m.Alloc(4 * kSmallPageBytes,
                             Policy(Placement::kInterleaved), "r");
  const VirtAddr base = m.BaseOf(r);
  m.BeginEpoch(1);
  for (uint64_t p = 0; p < 4; ++p) {
    m.Access(0, base + p * kSmallPageBytes, 8, AccessType::kRead);
  }
  m.EndEpoch();
  const Region& reg = m.page_table().region(r);
  // Interleaving alternates; the starting node is a per-region rotation.
  const NodeId first = reg.pages[0].node;
  EXPECT_EQ(reg.pages[1].node, 1u - first);
  EXPECT_EQ(reg.pages[2].node, first);
  EXPECT_EQ(reg.pages[3].node, 1u - first);
}

TEST(MachineTest, LocalPlacementPrefersNodeThenSpills) {
  MachineConfig c = TinyConfig(MachineKind::kDramMain);
  c.topology.dram_bytes_per_socket = 8 * kSmallPageBytes;
  Machine m(c);
  PagePolicy p = Policy(Placement::kLocal);
  p.preferred_node = 0;
  // 12 pages: 8 fit on node 0, 4 spill to node 1.
  const RegionId r = m.Alloc(12 * kSmallPageBytes, p, "r");
  const VirtAddr base = m.BaseOf(r);
  m.BeginEpoch(1);
  for (uint64_t i = 0; i < 12; ++i) {
    m.Access(0, base + i * kSmallPageBytes, 8, AccessType::kRead);
  }
  m.EndEpoch();
  EXPECT_EQ(m.NodeBytesUsed(0), 8 * kSmallPageBytes);
  EXPECT_EQ(m.NodeBytesUsed(1), 4 * kSmallPageBytes);
}

TEST(MachineTest, BlockedPlacementFollowsTouchingThread) {
  Machine m(TinyConfig(MachineKind::kDramMain));
  const RegionId r =
      m.Alloc(2 * kSmallPageBytes, Policy(Placement::kBlocked), "r");
  const VirtAddr base = m.BaseOf(r);
  m.BeginEpoch(4);
  m.Access(0, base, 8, AccessType::kWrite);                    // socket 0
  m.Access(2, base + kSmallPageBytes, 8, AccessType::kWrite);  // socket 1
  m.EndEpoch();
  const Region& reg = m.page_table().region(r);
  EXPECT_EQ(reg.pages[0].node, 0u);
  EXPECT_EQ(reg.pages[1].node, 1u);
}

TEST(MachineTest, LocalVsRemoteAccounting) {
  Machine m(TinyConfig(MachineKind::kDramMain));
  PagePolicy p = Policy(Placement::kLocal);
  p.preferred_node = 0;
  const RegionId r = m.Alloc(kSmallPageBytes, p, "r");
  const VirtAddr base = m.BaseOf(r);
  m.BeginEpoch(4);
  m.Access(0, base, 8, AccessType::kRead);        // local (socket 0)
  m.Access(2, base + 64, 8, AccessType::kRead);   // remote (socket 1)
  m.EndEpoch();
  EXPECT_EQ(m.stats().local_accesses, 1u);
  EXPECT_EQ(m.stats().remote_accesses, 1u);
}

TEST(MachineTest, CpuCacheAbsorbsRepeatedAccess) {
  Machine m(TinyConfig(MachineKind::kDramMain));
  const RegionId r = m.Alloc(kSmallPageBytes, Policy(Placement::kLocal), "r");
  const VirtAddr base = m.BaseOf(r);
  m.BeginEpoch(1);
  m.Access(0, base, 8, AccessType::kRead);
  const uint64_t misses = m.stats().cpu_cache_misses;
  m.Access(0, base, 8, AccessType::kRead);
  m.Access(0, base + 8, 8, AccessType::kRead);  // same line
  m.EndEpoch();
  EXPECT_EQ(m.stats().cpu_cache_misses, misses);
  EXPECT_EQ(m.stats().cpu_cache_hits, 2u);
}

TEST(MachineTest, RemoteCostsMoreThanLocalDram) {
  Machine m1(TinyConfig(MachineKind::kDramMain));
  Machine m2(TinyConfig(MachineKind::kDramMain));
  PagePolicy p = Policy(Placement::kLocal);
  p.preferred_node = 0;
  const VirtAddr b1 = m1.BaseOf(m1.Alloc(MiB(1) / 2, p, "r"));
  const VirtAddr b2 = m2.BaseOf(m2.Alloc(MiB(1) / 2, p, "r"));
  m1.BeginEpoch(1);
  m2.BeginEpoch(4);
  for (uint64_t i = 0; i < 1000; ++i) {
    m1.Access(0, b1 + i * 64, 8, AccessType::kRead);  // local
    m2.Access(2, b2 + i * 64, 8, AccessType::kRead);  // remote
  }
  const SimNs local_time = m1.EndEpoch().total_ns;
  const SimNs remote_time = m2.EndEpoch().total_ns;
  EXPECT_GT(remote_time, local_time);
}

TEST(MachineTest, MemoryModeNearMemoryHitsAfterFill) {
  Machine m(TinyConfig(MachineKind::kMemoryMode));
  const RegionId r = m.Alloc(kSmallPageBytes, Policy(Placement::kLocal), "r");
  const VirtAddr base = m.BaseOf(r);
  m.BeginEpoch(1);
  m.Access(0, base, 8, AccessType::kRead);        // miss: fill
  m.Access(0, base + 128, 8, AccessType::kRead);  // same 4KB page: hit
  m.EndEpoch();
  EXPECT_EQ(m.stats().near_mem_misses, 1u);
  EXPECT_EQ(m.stats().near_mem_hits, 1u);
  EXPECT_EQ(m.stats().pmm_read_bytes, kSmallPageBytes);
}

TEST(MachineTest, MemoryModeWorkingSetBeyondNearMemThrashes) {
  // Working set 2x near-memory: a second pass must keep missing.
  MachineConfig c = TinyConfig(MachineKind::kMemoryMode);
  c.topology.dram_bytes_per_socket = 16 * kSmallPageBytes;
  Machine m(c);
  PagePolicy p = Policy(Placement::kLocal);
  p.preferred_node = 0;
  const RegionId r = m.Alloc(32 * kSmallPageBytes, p, "r");
  const VirtAddr base = m.BaseOf(r);
  m.BeginEpoch(1);
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t pg = 0; pg < 32; ++pg) {
      m.Access(0, base + pg * kSmallPageBytes, 8, AccessType::kRead);
    }
  }
  m.EndEpoch();
  // Hashed set placement keeps this statistical: the overwhelming
  // majority of the 64 page touches must miss.
  EXPECT_LT(m.stats().near_mem_hits, 16u);
  EXPECT_GT(m.stats().near_mem_misses, 48u);
}

TEST(MachineTest, DirtyEvictionWritesBack) {
  MachineConfig c = TinyConfig(MachineKind::kMemoryMode);
  c.topology.dram_bytes_per_socket = 4 * kSmallPageBytes;
  Machine m(c);
  PagePolicy p = Policy(Placement::kLocal);
  const RegionId r = m.Alloc(8 * kSmallPageBytes, p, "r");
  const VirtAddr base = m.BaseOf(r);
  m.BeginEpoch(1);
  for (uint64_t pg = 0; pg < 8; ++pg) {
    m.Access(0, base + pg * kSmallPageBytes, 8, AccessType::kWrite);
  }
  // Second pass evicts dirty pages installed by the first.
  for (uint64_t pg = 0; pg < 8; ++pg) {
    m.Access(0, base + pg * kSmallPageBytes, 8, AccessType::kWrite);
  }
  m.EndEpoch();
  EXPECT_GT(m.stats().near_mem_writebacks, 0u);
  EXPECT_GT(m.stats().pmm_write_bytes, 0u);
}

TEST(MachineTest, KernelCostsHigherOnPmm) {
  Machine dram(TinyConfig(MachineKind::kDramMain));
  Machine pmm(TinyConfig(MachineKind::kMemoryMode));
  const VirtAddr bd = dram.BaseOf(
      dram.Alloc(16 * kSmallPageBytes, Policy(Placement::kLocal), "r"));
  const VirtAddr bp = pmm.BaseOf(
      pmm.Alloc(16 * kSmallPageBytes, Policy(Placement::kLocal), "r"));
  dram.BeginEpoch(1);
  pmm.BeginEpoch(1);
  for (uint64_t pg = 0; pg < 16; ++pg) {
    dram.Access(0, bd + pg * kSmallPageBytes, 8, AccessType::kWrite);
    pmm.Access(0, bp + pg * kSmallPageBytes, 8, AccessType::kWrite);
  }
  dram.EndEpoch();
  pmm.EndEpoch();
  EXPECT_GT(pmm.stats().kernel_ns, dram.stats().kernel_ns);
}

TEST(MachineTest, HugePagesReduceTlbMissesAndFaults) {
  MachineConfig c = TinyConfig(MachineKind::kDramMain);
  c.topology.dram_bytes_per_socket = MiB(32);
  Machine small(c);
  Machine huge(c);
  const uint64_t bytes = MiB(8);
  const VirtAddr bs = small.BaseOf(
      small.Alloc(bytes, Policy(Placement::kLocal, PageSizeClass::k4K), "r"));
  const VirtAddr bh = huge.BaseOf(
      huge.Alloc(bytes, Policy(Placement::kLocal, PageSizeClass::k2M), "r"));
  small.BeginEpoch(1);
  huge.BeginEpoch(1);
  // Strided access pattern: one line per page-ish stride.
  for (uint64_t off = 0; off < bytes; off += 8192) {
    small.Access(0, bs + off, 8, AccessType::kRead);
    huge.Access(0, bh + off, 8, AccessType::kRead);
  }
  const SimNs ts = small.EndEpoch().total_ns;
  const SimNs th = huge.EndEpoch().total_ns;
  EXPECT_LT(huge.stats().tlb_misses, small.stats().tlb_misses);
  EXPECT_LT(huge.stats().minor_faults, small.stats().minor_faults);
  EXPECT_LT(th, ts);
}

TEST(MachineTest, MigrationDaemonAddsKernelOverhead) {
  MachineConfig on = TinyConfig(MachineKind::kDramMain);
  on.migration.enabled = true;
  on.migration.scan_interval_ns = 0;  // scan every epoch in this test
  on.migration.hint_every = 32;
  MachineConfig off = TinyConfig(MachineKind::kDramMain);
  Machine m_on(on);
  Machine m_off(off);
  const uint64_t bytes = 64 * kSmallPageBytes;
  const VirtAddr b1 = m_on.BaseOf(
      m_on.Alloc(bytes, Policy(Placement::kInterleaved), "r"));
  const VirtAddr b2 = m_off.BaseOf(
      m_off.Alloc(bytes, Policy(Placement::kInterleaved), "r"));
  for (int round = 0; round < 10; ++round) {
    m_on.BeginEpoch(4);
    m_off.BeginEpoch(4);
    for (uint64_t off_b = 0; off_b < bytes; off_b += 256) {
      // Threads on both sockets touch everything: shared irregular access.
      m_on.Access(round % 4, b1 + off_b, 8, AccessType::kRead);
      m_off.Access(round % 4, b2 + off_b, 8, AccessType::kRead);
    }
    m_on.EndEpoch();
    m_off.EndEpoch();
  }
  EXPECT_GT(m_on.stats().kernel_ns, m_off.stats().kernel_ns);
  EXPECT_GT(m_on.stats().total_ns, m_off.stats().total_ns);
  EXPECT_GT(m_on.stats().hint_faults, 0u);
}

TEST(MachineTest, MigrationMovesRemoteHotPage) {
  MachineConfig c = TinyConfig(MachineKind::kDramMain);
  c.migration.enabled = true;
  c.migration.scan_interval_ns = 0;
  c.migration.min_remote_accesses = 2;
  Machine m(c);
  PagePolicy p = Policy(Placement::kLocal);
  p.preferred_node = 0;
  const RegionId r = m.Alloc(kSmallPageBytes, p, "r");
  const VirtAddr base = m.BaseOf(r);
  for (int round = 0; round < 3; ++round) {
    m.BeginEpoch(4);
    for (int i = 0; i < 8; ++i) {
      // Only socket-1 threads touch the page.
      m.Access(2, base + (static_cast<uint64_t>(i) * 64) % kSmallPageBytes, 8,
               AccessType::kRead);
    }
    m.EndEpoch();
    m.FlushVolatileState();  // defeat the CPU cache between rounds
  }
  EXPECT_GT(m.stats().migrations, 0u);
  EXPECT_EQ(m.page_table().region(r).pages[0].node, 1u);
}

TEST(MachineTest, EpochRooflineDetectsBandwidthBound) {
  // 96 "threads" streaming writes: per-thread latency cost is amortized
  // by cache lines, so channel bandwidth should set the epoch time.
  MachineConfig c = OptanePmmConfig();
  Machine m(c);
  PagePolicy p = Policy(Placement::kInterleaved);
  const uint64_t bytes = MiB(4);
  const VirtAddr base = m.BaseOf(m.Alloc(bytes, p, "buf"));
  const uint32_t threads = 96;
  m.BeginEpoch(threads);
  const uint64_t per_thread = bytes / threads;
  for (ThreadId t = 0; t < threads; ++t) {
    m.AccessRange(t, base + uint64_t{t} * per_thread, per_thread,
                  AccessType::kWrite);
  }
  const EpochReport rep = m.EndEpoch();
  EXPECT_GT(rep.bandwidth_path_ns, 0u);
  EXPECT_GT(rep.total_ns, 0u);
}

TEST(MachineTest, StorageIoOnlyInAppDirect) {
  Machine m(TinyConfig(MachineKind::kAppDirect));
  m.BeginEpoch(1);
  m.StorageRead(0, MiB(1), 0, /*sequential=*/true);
  m.StorageWrite(0, MiB(1) / 2, 0, true);
  m.EndEpoch();
  EXPECT_EQ(m.stats().storage_read_bytes, MiB(1));
  EXPECT_EQ(m.stats().storage_write_bytes, MiB(1) / 2);
  EXPECT_GT(m.stats().total_ns, 0u);
}

TEST(MachineTest, FreeReturnsMemory) {
  Machine m(TinyConfig(MachineKind::kDramMain));
  const RegionId r =
      m.Alloc(16 * kSmallPageBytes, Policy(Placement::kLocal), "r");
  const VirtAddr base = m.BaseOf(r);
  m.BeginEpoch(1);
  for (uint64_t pg = 0; pg < 16; ++pg) {
    m.Access(0, base + pg * kSmallPageBytes, 8, AccessType::kRead);
  }
  m.EndEpoch();
  EXPECT_EQ(m.NodeBytesUsed(0), 16 * kSmallPageBytes);
  m.Free(r);
  EXPECT_EQ(m.NodeBytesUsed(0), 0u);
  // Space is reusable.
  const RegionId r2 =
      m.Alloc(16 * kSmallPageBytes, Policy(Placement::kLocal), "r2");
  const VirtAddr b2 = m.BaseOf(r2);
  m.BeginEpoch(1);
  for (uint64_t pg = 0; pg < 16; ++pg) {
    m.Access(0, b2 + pg * kSmallPageBytes, 8, AccessType::kRead);
  }
  m.EndEpoch();
  EXPECT_EQ(m.NodeBytesUsed(0), 16 * kSmallPageBytes);
}

TEST(MachineTest, TotalTimeMonotonicAcrossEpochs) {
  Machine m(TinyConfig(MachineKind::kDramMain));
  const VirtAddr base =
      m.BaseOf(m.Alloc(kSmallPageBytes, Policy(Placement::kLocal), "r"));
  SimNs prev = m.now();
  for (int e = 0; e < 5; ++e) {
    m.BeginEpoch(1);
    m.Access(0, base + static_cast<uint64_t>(e) * 64, 8, AccessType::kRead);
    m.EndEpoch();
    EXPECT_GT(m.now(), prev);
    prev = m.now();
  }
}

/// Frames currently mapped under region `id` (only pages that took their
/// minor fault).
std::set<PhysPage> FramesOf(const Machine& m, RegionId id) {
  std::set<PhysPage> frames;
  for (const PageInfo& pg : m.page_table().region(id).pages) {
    if (pg.frame != kInvalidFrame) frames.insert(pg.frame);
  }
  return frames;
}

TEST(MachineTest, RecycledFramesNeverAliasLivePages) {
  Machine m(TinyConfig(MachineKind::kDramMain));
  const RegionId live =
      m.Alloc(8 * kSmallPageBytes, Policy(Placement::kLocal), "live");
  const RegionId dead =
      m.Alloc(8 * kSmallPageBytes, Policy(Placement::kLocal), "dead");
  m.BeginEpoch(1);
  for (uint64_t pg = 0; pg < 8; ++pg) {
    m.Access(0, m.BaseOf(live) + pg * kSmallPageBytes, 8, AccessType::kRead);
    m.Access(0, m.BaseOf(dead) + pg * kSmallPageBytes, 8, AccessType::kRead);
  }
  m.EndEpoch();
  const std::set<PhysPage> live_frames = FramesOf(m, live);
  const std::set<PhysPage> dead_frames = FramesOf(m, dead);
  m.Free(dead);
  // A fresh region must draw from the freed runs (the machine is sized so
  // the free list is the only place those frames can come from)...
  const RegionId renew =
      m.Alloc(8 * kSmallPageBytes, Policy(Placement::kLocal), "renew");
  m.BeginEpoch(1);
  for (uint64_t pg = 0; pg < 8; ++pg) {
    m.Access(0, m.BaseOf(renew) + pg * kSmallPageBytes, 8, AccessType::kRead);
  }
  m.EndEpoch();
  const std::set<PhysPage> renew_frames = FramesOf(m, renew);
  EXPECT_EQ(renew_frames.size(), 8u);
  uint64_t recycled = 0;
  for (PhysPage f : renew_frames) {
    // ...and must never hand back a frame still mapped by a live region.
    EXPECT_EQ(live_frames.count(f), 0u) << "frame " << f << " aliased";
    recycled += dead_frames.count(f);
  }
  EXPECT_GT(recycled, 0u);
}

TEST(MachineTest, UserKernelSplitSumsBelowTotal) {
  Machine m(TinyConfig(MachineKind::kMemoryMode));
  const VirtAddr base = m.BaseOf(
      m.Alloc(32 * kSmallPageBytes, Policy(Placement::kInterleaved), "r"));
  m.BeginEpoch(2);
  for (uint64_t off = 0; off < 32 * kSmallPageBytes; off += 128) {
    m.Access(off % 2 == 0 ? 0 : 1, base + off, 8, AccessType::kRead);
  }
  m.EndEpoch();
  EXPECT_GT(m.stats().user_ns, 0u);
  EXPECT_GT(m.stats().kernel_ns, 0u);  // faults
  EXPECT_LE(m.stats().user_ns + m.stats().kernel_ns,
            m.stats().total_ns + 1);
}

}  // namespace
}  // namespace pmg::memsim
