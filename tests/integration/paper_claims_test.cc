#include <gtest/gtest.h>

#include "pmg/distsim/dist_engine.h"
#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/outofcore/grid_engine.h"
#include "pmg/scenarios/scenarios.h"

// End-to-end regression tests for the paper's headline claims. Each test
// runs the actual experiment pipeline at reduced size; if a model change
// would flip one of the paper's conclusions, a test here fails.

namespace pmg {
namespace {

using frameworks::App;
using frameworks::AppInputs;
using frameworks::AppRunResult;
using frameworks::FrameworkKind;
using frameworks::RunApp;

const AppInputs& CrawlInputs() {
  static const AppInputs* kInputs = [] {
    graph::WebCrawlParams p;
    p.vertices = 24000;
    p.avg_out_degree = 10;
    p.communities = 12;
    p.tail_length = 1000;
    p.tail_width = 2;
    p.seed = 77;
    return new AppInputs(AppInputs::Prepare(graph::WebCrawl(p)));
  }();
  return *kInputs;
}

frameworks::RunConfig PmmConfig(uint32_t threads = 96) {
  frameworks::RunConfig cfg;
  cfg.machine = memsim::OptanePmmConfig();
  cfg.threads = threads;
  cfg.pr_max_rounds = 10;
  return cfg;
}

// Section 4.2: turning NUMA migration off does not hurt, and saves
// kernel time, especially with 4KB pages.
TEST(PaperClaims, MigrationOffIsAtLeastAsGood) {
  frameworks::RunConfig on = PmmConfig();
  on.machine.migration.enabled = true;
  // This miniature run simulates well under a default AutoNUMA scan
  // period; shorten it so the daemon actually fires.
  on.machine.migration.scan_interval_ns = 20000;
  on.page_size = memsim::PageSizeClass::k4K;
  frameworks::RunConfig off = on;
  off.machine.migration.enabled = false;
  const AppRunResult r_on = RunApp(FrameworkKind::kGalois, App::kBfs,
                                   CrawlInputs(), on);
  const AppRunResult r_off = RunApp(FrameworkKind::kGalois, App::kBfs,
                                    CrawlInputs(), off);
  EXPECT_LE(r_off.time_ns, r_on.time_ns);
  EXPECT_LT(r_off.stats.kernel_ns, r_on.stats.kernel_ns);
}

// Section 4.3: huge pages beat small pages for graph analytics on PMM,
// and the benefit is bigger on PMM than on DRAM.
TEST(PaperClaims, HugePagesWinAndWinMoreOnPmm) {
  // Measured on pagerank, whose full-graph scans keep translation on the
  // critical path every round. (Sparse-frontier bfs at mini scale sees
  // the opposite micro-effect from coarse 2MB interleaving of a
  // ~10-huge-page graph; see EXPERIMENTS.md.)
  // A graph spanning many huge pages (the crawl scenario), so 2MB
  // interleaving is not degenerate.
  static const AppInputs* kClueweb = new AppInputs(AppInputs::Prepare(
      scenarios::MakeScenario("clueweb12").topo));
  auto run = [&](bool pmm, memsim::PageSizeClass ps) {
    frameworks::RunConfig cfg = PmmConfig();
    if (!pmm) cfg.machine = memsim::DramOnlyConfig();
    cfg.page_size = ps;
    return RunApp(FrameworkKind::kGalois, App::kPr, *kClueweb, cfg).time_ns;
  };
  const double pmm_gain =
      static_cast<double>(run(true, memsim::PageSizeClass::k4K)) /
      static_cast<double>(run(true, memsim::PageSizeClass::k2M));
  // (The DRAM leg cannot run this input: pull-pr materializes both edge
  // directions, which exceeds the scaled DRAM machine — the paper's
  // near-memory-pressure regime.)
  EXPECT_GT(pmm_gain, 1.0);
}

// Section 6.2: when the working set fits near-memory, PMM tracks DRAM
// closely (kron30's regime).
TEST(PaperClaims, PmmTracksDramWhenWorkingSetFitsNearMemory) {
  // kron30's regime: the graph is about a third of total near-memory.
  const AppInputs inputs = AppInputs::Prepare(graph::Kron(16, 16, 30));
  frameworks::RunConfig pmm = PmmConfig();
  frameworks::RunConfig dram = PmmConfig();
  dram.machine = memsim::DramOnlyConfig();
  const SimNs t_pmm =
      RunApp(FrameworkKind::kGalois, App::kBfs, inputs, pmm).time_ns;
  const SimNs t_dram =
      RunApp(FrameworkKind::kGalois, App::kBfs, inputs, dram).time_ns;
  // Within 1.65x (the paper reports 7.3% average, up to 65% worst case).
  EXPECT_LT(static_cast<double>(t_pmm) / static_cast<double>(t_dram), 1.65);
}

// Section 6.3: on a high-diameter graph, the Optane machine beats a
// cluster with the minimum hosts for bfs (round latency dominates).
TEST(PaperClaims, OptaneBeatsMinClusterOnHighDiameterBfs) {
  const AppInputs& inputs = CrawlInputs();
  distsim::DistConfig dcfg;
  dcfg.hosts = 4;
  dcfg.threads_per_host = 8;
  dcfg.host_machine = memsim::StampedeHostConfig();
  distsim::DistEngine cluster(inputs.base, dcfg);
  const distsim::DistRunResult dm = cluster.Bfs(inputs.source);
  const AppRunResult ob =
      RunApp(FrameworkKind::kGalois, App::kBfs, inputs, PmmConfig());
  EXPECT_GT(dm.time_ns, ob.time_ns);
}

// Section 6.4: memory mode is orders of magnitude faster than streaming
// the same computation out-of-core from app-direct PMM.
TEST(PaperClaims, MemoryModeCrushesOutOfCoreOnHighDiameter) {
  // Real-crawl tail levels are wide enough that their scattered ids hit
  // most partition rows every round (clueweb12's configuration).
  graph::WebCrawlParams p;
  p.vertices = 24000;
  p.avg_out_degree = 10;
  p.communities = 12;
  p.tail_length = 1000;
  p.tail_width = 8;
  p.seed = 77;
  const graph::CsrTopology scattered =
      scenarios::ScatterIds(graph::WebCrawl(p), 3);
  const VertexId src = graph::MaxOutDegreeVertex(scattered);
  memsim::Machine ad(memsim::AppDirectConfig());
  outofcore::GridConfig grid;
  grid.grid_p = 16;
  grid.threads = 96;
  outofcore::GridEngine engine(&ad, scattered, grid);
  const outofcore::OocResult ooc = engine.Bfs(src, nullptr);
  const AppInputs inputs = AppInputs::Prepare(scattered);
  const AppRunResult mm =
      RunApp(FrameworkKind::kGalois, App::kBfs, inputs, PmmConfig());
  EXPECT_GT(ooc.time_ns, 10 * mm.time_ns);
}

// Section 5 / 6.1: the Galois profile beats the vertex-program-only
// profile on every data-driven app over high-diameter input.
TEST(PaperClaims, NonVertexAsyncProgramsWinOnHighDiameter) {
  for (App app : {App::kBfs, App::kSssp, App::kBc}) {
    frameworks::RunConfig best = PmmConfig();
    frameworks::RunConfig vertex = PmmConfig();
    vertex.force_vertex_programs = true;
    const AppRunResult r_best =
        RunApp(FrameworkKind::kGalois, app, CrawlInputs(), best);
    const AppRunResult r_vertex =
        RunApp(FrameworkKind::kGalois, app, CrawlInputs(), vertex);
    EXPECT_LT(r_best.time_ns, r_vertex.time_ns)
        << frameworks::AppName(app);
  }
}

// Section 5: conclusions drawn from rmat-style graphs mislead — the
// dense/sparse ranking flips between rmat and crawls for bfs.
TEST(PaperClaims, RmatAndCrawlRankDifferently) {
  const AppInputs rmat = AppInputs::Prepare(graph::Rmat(13, 16, 5));
  auto ratio = [&](const AppInputs& in) {
    frameworks::RunConfig galois = PmmConfig();
    frameworks::RunConfig vertex = PmmConfig();
    vertex.force_vertex_programs = true;
    const SimNs t_sparse =
        RunApp(FrameworkKind::kGalois, App::kBfs, in, galois).time_ns;
    const SimNs t_dense =
        RunApp(FrameworkKind::kGalois, App::kBfs, in, vertex).time_ns;
    return static_cast<double>(t_dense) / static_cast<double>(t_sparse);
  };
  // Dense (direction-optimizing) is competitive on rmat but collapses on
  // the crawl: the dense/sparse ratio must grow by at least 2x.
  EXPECT_GT(ratio(CrawlInputs()), 2.0 * ratio(rmat));
}

}  // namespace
}  // namespace pmg
