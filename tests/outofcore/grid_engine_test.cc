#include "pmg/outofcore/grid_engine.h"

#include <gtest/gtest.h>

#include "pmg/analytics/reference.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/scenarios.h"

namespace pmg::outofcore {
namespace {

GridConfig SmallGrid() {
  GridConfig c;
  c.grid_p = 16;
  c.threads = 8;
  return c;
}

graph::CsrTopology Crawl() {
  graph::WebCrawlParams p;
  p.vertices = 4000;
  p.avg_out_degree = 6;
  p.communities = 8;
  p.tail_length = 200;
  p.seed = 3;
  return graph::WebCrawl(p);
}

TEST(GridEngineTest, BfsMatchesReference) {
  const graph::CsrTopology topo = Crawl();
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  const std::vector<uint32_t> want = analytics::RefBfs(topo, src);
  memsim::Machine m(memsim::AppDirectConfig());
  GridEngine engine(&m, topo, SmallGrid());
  std::vector<uint32_t> got;
  const OocResult r = engine.Bfs(src, &got);
  ASSERT_TRUE(r.supported);
  EXPECT_EQ(got, want);
}

TEST(GridEngineTest, CcMatchesReference) {
  const graph::CsrTopology sym = graph::Symmetrize(Crawl());
  const std::vector<uint64_t> want = analytics::RefCc(sym);
  memsim::Machine m(memsim::AppDirectConfig());
  GridEngine engine(&m, sym, SmallGrid());
  std::vector<uint64_t> got;
  ASSERT_TRUE(engine.Cc(&got).supported);
  EXPECT_EQ(got, want);
}

TEST(GridEngineTest, PageRankMatchesReferenceRounds) {
  const graph::CsrTopology topo = graph::Rmat(9, 8, 6);
  const std::vector<double> want =
      analytics::RefPagerank(topo, 0.85, /*tolerance=*/0, /*max_rounds=*/10);
  memsim::Machine m(memsim::AppDirectConfig());
  GridEngine engine(&m, topo, SmallGrid());
  std::vector<double> got;
  ASSERT_TRUE(engine.PageRank(10, &got).supported);
  ASSERT_EQ(got.size(), want.size());
  for (size_t v = 0; v < want.size(); ++v) {
    EXPECT_NEAR(got[v], want[v], 1e-9) << v;
  }
}

TEST(GridEngineTest, StorageTrafficExplodesOnScatteredIds) {
  // Real crawls have scattered frontier ids, defeating block-granularity
  // selectivity: high-diameter BFS re-reads most blocks every round.
  const graph::CsrTopology topo = scenarios::ScatterIds(Crawl(), 5);
  memsim::Machine m(memsim::AppDirectConfig());
  GridEngine engine(&m, topo, SmallGrid());
  const OocResult r = engine.Bfs(graph::MaxOutDegreeVertex(topo), nullptr);
  EXPECT_GT(r.storage_read_bytes, 30 * topo.NumEdges() * 8);
  EXPECT_GT(r.rounds, 100u);
}

TEST(GridEngineTest, BlockSelectivitySkipsInactiveRows) {
  // One isolated 2-vertex component at the end of the id space: BFS from
  // there only ever touches its own partition row.
  graph::EdgeList edges;
  for (VertexId v = 0; v + 1 < 1000; ++v) edges.push_back({v, v + 1, 1});
  edges.push_back({1000, 1001, 1});
  const graph::CsrTopology topo = graph::BuildCsr(1002, edges, false);
  memsim::Machine m(memsim::AppDirectConfig());
  GridEngine engine(&m, topo, SmallGrid());
  const OocResult r = engine.Bfs(1000, nullptr);
  EXPECT_EQ(r.rounds, 2u);
  EXPECT_LT(r.storage_read_bytes, topo.NumEdges() * 8);
}

TEST(GridEngineTest, TimeDominatedByRounds) {
  // Doubling the diameter should roughly double the streaming time.
  graph::WebCrawlParams p;
  p.vertices = 4000;
  p.avg_out_degree = 6;
  p.communities = 8;
  p.seed = 3;
  p.tail_width = 2;
  p.tail_length = 100;
  const graph::CsrTopology short_tail = graph::WebCrawl(p);
  p.tail_length = 800;
  const graph::CsrTopology long_tail = graph::WebCrawl(p);
  memsim::Machine m1(memsim::AppDirectConfig());
  memsim::Machine m2(memsim::AppDirectConfig());
  GridEngine e1(&m1, short_tail, SmallGrid());
  GridEngine e2(&m2, long_tail, SmallGrid());
  const OocResult r1 = e1.Bfs(graph::MaxOutDegreeVertex(short_tail), nullptr);
  const OocResult r2 = e2.Bfs(graph::MaxOutDegreeVertex(long_tail), nullptr);
  EXPECT_GT(r2.time_ns, 3 * r1.time_ns);
}

}  // namespace
}  // namespace pmg::outofcore
