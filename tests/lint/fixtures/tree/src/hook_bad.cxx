// Fixture: observer-seam dispatches with no null guard in sight.
#include <cstdint>

namespace fx {

struct Sink {
  void OnEpochTrace(int et);
  void OnInstant(int kind, uint64_t at);
};

struct Machine {
  Sink* trace_sink() const { return sink_; }
  Sink* sink_ = nullptr;
};

struct Emitter {
  Sink* trace_ = nullptr;

  void Emit(int et) {
    trace_->OnEpochTrace(et);  // no guard anywhere above
  }
};

inline void Chained(const Machine& machine, uint64_t at) {
  machine.trace_sink()->OnInstant(0, at);  // chained base, still unguarded
}

}  // namespace fx
