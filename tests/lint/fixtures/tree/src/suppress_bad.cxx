// Fixture: malformed suppressions. Each is itself a finding, and the
// violation it meant to cover still fires.
#include <cstdint>

namespace fx {

inline void Broken(Runtime& rt, long& shared) {
  rt.ParallelFor(0, 10, [&](ThreadId t, uint64_t v) {
    // pmg-lint: allow(pmg-atomic-shared-write)
    shared += v;
  });
  rt.ParallelFor(0, 10, [&](ThreadId t, uint64_t v) {
    // pmg-lint: allow(pmg-not-a-real-check) reason does not save it
    shared += v;
  });
  rt.ParallelFor(0, 10, [&](ThreadId t, uint64_t v) {
    // pmg-lint: this comment has no allow clause at all
    shared += v;
  });
}

}  // namespace fx
