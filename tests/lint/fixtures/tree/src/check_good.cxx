// Fixture: pure PMG_CHECK predicates, and the macro definition site
// itself (which the check must skip).
#include <cstdlib>

#define PMG_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) std::abort();                                 \
  } while (0)
#define PMG_CHECK_MSG(cond, msg) PMG_CHECK(cond)

namespace fx {

struct Queue {
  int size() const;
  bool empty() const;
};

inline void PurePredicates(const Queue& q, int a, int b) {
  PMG_CHECK(a + b < 10);
  PMG_CHECK(q.size() == a);  // const query, not a mutating call
  PMG_CHECK_MSG(a == b || !q.empty(), "reads only");
}

// The shape ParallelForDynamic's chunk guard actually uses: a pure
// comparison with a message, which must lint clean.
inline void GuardChunk(unsigned chunk) {
  PMG_CHECK_MSG(chunk > 0,
                "chunk must be positive: a chunk of 0 would loop forever");
}

}  // namespace fx
