// Fixture: order-stable iteration — declaring an unordered container is
// fine; only range-for over one is not.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace fx {

struct Cache {
  std::unordered_map<int, int> lookup_;  // declaration alone: no finding
};

inline int SortedSum(const Cache& c, const std::map<int, int>& ordered) {
  int acc = 0;
  for (const auto& [k, v] : ordered) acc += v;  // std::map is ordered
  std::vector<int> keys;
  for (int i = 0; i < 4; ++i) keys.push_back(c.lookup_.count(i));
  std::sort(keys.begin(), keys.end());
  for (int k : keys) acc += k;  // sorted snapshot: deterministic
  return acc;
}

}  // namespace fx
