// Fixture: iteration-order dependence on unordered containers.
#include <unordered_map>
#include <unordered_set>

namespace fx {

struct Index {
  std::unordered_map<int, int> edges_;
};

inline int SumDirect(const std::unordered_map<int, long>& weights) {
  int acc = 0;
  for (const auto& [k, v] : weights) acc += static_cast<int>(v);
  return acc;
}

inline int SumMember(const Index& ix) {
  int acc = 0;
  for (const auto& [k, v] : ix.edges_) acc += v;
  return acc;
}

inline int SumInline(const std::unordered_set<int>& live,
                     std::unordered_set<int> scratch) {
  int acc = 0;
  for (int v : scratch) acc += v;
  return acc + static_cast<int>(live.size());
}

}  // namespace fx
