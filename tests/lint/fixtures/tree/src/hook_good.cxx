// Fixture: every guard shape the hook check accepts.
#include <cstdint>
#include <vector>

namespace fx {

struct Sink {
  void OnEpochTrace(int et);
  void OnInstant(int kind, uint64_t at);
  bool WantsCostModel() const;
};

struct Obs {
  void OnAccess(uint64_t addr);
};

struct Machine {
  Sink* trace_sink() const { return sink_; }
  Sink* sink_ = nullptr;
};

struct Emitter {
  Sink* trace_ = nullptr;
  std::vector<Obs*> observers_;

  void Emit(int et) {
    if (trace_ != nullptr) trace_->OnEpochTrace(et);  // explicit null test
  }

  void EmitIfTruthy(int et) {
    if (trace_) trace_->OnEpochTrace(et);  // truthiness form
  }

  void EmitChecked(int et) {
    PMG_CHECK(trace_ != nullptr);  // precondition form
    trace_->OnEpochTrace(et);
  }

  void Fan(uint64_t addr) {
    if (!observers_.empty()) {
      for (Obs* o : observers_) o->OnAccess(addr);  // range-for binding
    }
  }
};

struct ByValue {
  Obs heat_;
  void OnAccess(uint64_t addr) { heat_.OnAccess(addr); }  // '.' never null
};

inline void Guarded(const Machine& machine, uint64_t at) {
  if (machine.trace_sink() != nullptr) {
    machine.trace_sink()->OnInstant(0, at);  // chained base, guarded
  }
}

}  // namespace fx
