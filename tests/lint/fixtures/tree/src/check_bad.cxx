// Fixture: PMG_CHECK arguments that mutate state — the check disappears
// in a build that compiles assertions out, and the mutation with it.
#include <cstdint>

namespace fx {

struct Queue {
  bool Pop(int* out);
  int size() const;
};

inline void SideEffects(Queue& q, int* p, int n) {
  int got = 0;
  PMG_CHECK(n++ < 10);
  PMG_CHECK_MSG((*p = n) != 0, "assigned inside the assert");
  PMG_CHECK(q.Pop(&got));
}

// A broken clone of ParallelForDynamic's chunk guard: the decrement means
// a build that compiles checks out also skips the "fix", and the loop
// below it runs with a different chunk than the one validated.
inline void GuardChunk(unsigned chunk) {
  PMG_CHECK_MSG(chunk-- > 0, "chunk must be positive");
}

}  // namespace fx
