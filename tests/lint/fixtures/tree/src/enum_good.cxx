// Fixture: exhaustive or justified switches, and the shapes the check
// must leave alone.
namespace fx {

enum class Fruit { kApple, kPear, kPlum };

inline int Exhaustive(Fruit f) {
  switch (f) {
    case Fruit::kApple:
      return 1;
    case Fruit::kPear:
      return 2;
    case Fruit::kPlum:
      return 3;
  }
  return 0;
}

inline int Justified(Fruit f) {
  switch (f) {
    case Fruit::kApple:
      return 1;
    default:  // pears and plums price identically
      return 2;
  }
}

inline int NotAnEnum(int x) {
  switch (x) {
    case 0:
      return 1;
    default:
      return 2;  // integer switch: out of scope
  }
}

}  // namespace fx
