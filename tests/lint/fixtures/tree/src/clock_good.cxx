// Fixture: simulated-time idioms that must NOT trip pmg-no-host-clock.
#include <cstdint>

namespace fx {

struct Machine {
  uint64_t now() const { return now_; }
  uint64_t time(int scale) const { return now_ * scale; }  // member, not ::time
  uint64_t now_ = 0;
};

inline uint64_t SimulatedOnly(const Machine& m) {
  const uint64_t start = m.now();
  const uint64_t scaled = m.time(2);  // member call named 'time' is fine
  uint64_t randomish = start * 6364136223846793005ULL + 1442695040888963407ULL;
  return scaled ^ randomish;  // deterministic LCG, no host entropy
}

}  // namespace fx
