// Fixture: non-exhaustive switches over a taxonomy enum.
namespace fx {

enum class Color { kRed, kGreen, kBlue };

inline int Missing(Color c) {
  switch (c) {
    case Color::kRed:
      return 1;
    case Color::kGreen:
      return 2;
  }
  return 0;
}

inline int UnjustifiedDefault(Color c) {
  switch (c) {
    case Color::kRed:
      return 1;
    default:
      return 0;
  }
}

}  // namespace fx
