// Fixture: the write shapes the atomicity contract allows in parallel
// bodies — owner writes, atomic annotations, locals, per-thread slots.
#include <cstdint>
#include <vector>

namespace fx {

inline void Kernel(Runtime& rt, NumaArray& level, Graph& g,
                   uint32_t nthreads) {
  std::vector<uint8_t> changed(nthreads, 0);
  std::vector<uint64_t> count(nthreads, 0);
  rt.ParallelFor(0, 100, [&](ThreadId t, uint64_t v) {
    level.Set(t, v, 0);           // owner write: indexed by the loop var
    level.Set(t, v + 1, 0);       // still derived from the loop var
    level.SetAtomic(t, 42, 1);    // atomic annotation carries the intent
    level.CasMin(t, 7, 3);
    uint64_t local = v * 2;       // body-local
    local += 3;
    changed[t] = 1;               // per-thread slot
    ++count[t];                   // per-thread pre-increment
    g.ForEachOutEdge(t, v, [&](ThreadId tt, uint64_t u, uint32_t w) {
      level.CasMin(tt, u, w);     // neighbor write, atomic
      count[tt] += w;             // nested-lambda thread id slot
    });
  });
}

inline void HostSide(NumaArray& level, uint64_t source) {
  level.Set(0, source, 0);  // outside any parallel body: no finding
}

}  // namespace fx
