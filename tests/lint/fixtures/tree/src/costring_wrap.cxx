// Fixture: regression model of the CostRing wrap bug. The ring's wrap
// bookkeeping was executed as a side effect of the invariant check, so
// any build (or refactor) that dropped the check also dropped the wrap
// — exactly the bug class pmg-check-side-effects exists to catch.
#include <cstdint>

namespace fx {

struct CostRingModel {
  uint32_t head_ = 0;
  uint32_t cap_ = 8;
  uint32_t Advance(uint32_t n);       // mutates head_, returns new head
  bool WouldWrap(uint32_t n) const;   // pure query
};

inline void ChargeBuggy(CostRingModel& ring, uint32_t n) {
  PMG_CHECK(ring.Advance(n) < ring.cap_);  // wrap happens inside the check
}

inline void ChargeFixed(CostRingModel& ring, uint32_t n) {
  PMG_CHECK(!ring.WouldWrap(n));  // pure predicate first...
  const uint32_t head = ring.Advance(n);  // ...then the mutation
  PMG_CHECK(head < ring.cap_);
}

}  // namespace fx
