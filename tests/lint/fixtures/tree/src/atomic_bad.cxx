// Fixture: shared-state writes inside parallel bodies that would race
// under host-parallel execution.
#include <cstdint>

namespace fx {

inline void Kernel(Runtime& rt, NumaArray& level, NumaArray& dist,
                   Worklist& wl, uint64_t frontier) {
  long shared_sum = 0;
  bool flag = false;
  uint64_t spins = 0;
  rt.ParallelFor(0, 100, [&](ThreadId t, uint64_t v) {
    level.Set(t, frontier, 1);  // plain write to a non-owner element
    shared_sum += v;            // captured accumulator
    flag = true;                // captured flag
    ++spins;                    // captured pre-increment
  });
  wl.ForEachActive(rt, [&](ThreadId t, uint64_t v) {
    dist.Update(t, frontier, 7);  // plain Update off the loop variable
  });
}

}  // namespace fx
