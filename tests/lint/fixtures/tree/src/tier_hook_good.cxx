// Fixture: guarded TierHook seam dispatches, every accepted shape.
#include <cstdint>

namespace fx {

struct TierHook {
  void OnTierCandidate(uint64_t page, int from, int to);
  void OnTierMigrated(uint64_t page, int from, int to, uint64_t bytes);
  void OnTierScan(int record);
  void OnTierEpoch(int sample);
};

struct Machine {
  TierHook* tier_hook() const { return tier_; }
  TierHook* tier_ = nullptr;
};

struct Daemon {
  TierHook* tier_ = nullptr;

  void Decide(uint64_t page) {
    if (tier_ != nullptr) tier_->OnTierCandidate(page, 0, 1);  // null test
  }

  void Move(uint64_t page, uint64_t bytes) {
    if (tier_) tier_->OnTierMigrated(page, 0, 1, bytes);  // truthiness
  }

  void CloseEpoch(int sample) {
    PMG_CHECK(tier_ != nullptr);  // precondition form
    tier_->OnTierEpoch(sample);
  }
};

struct ByValue {
  TierHook audit_;
  void OnTierScan(int record) { audit_.OnTierScan(record); }  // '.' never null
};

inline void Guarded(const Machine& machine, int record) {
  if (machine.tier_hook() != nullptr) {
    machine.tier_hook()->OnTierScan(record);  // chained base, guarded
  }
}

}  // namespace fx
