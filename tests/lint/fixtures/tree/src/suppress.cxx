// Fixture: well-formed suppressions — every violation here is covered,
// so this file must produce zero findings.
#include <cstdint>

namespace fx {

inline void Covered(Runtime& rt, long& shared) {
  rt.ParallelFor(0, 10, [&](ThreadId t, uint64_t v) {
    shared += v;  // pmg-lint: allow(pmg-atomic-shared-write) fixture: trailing form
  });
  rt.ParallelFor(0, 10, [&](ThreadId t, uint64_t v) {
    // pmg-lint: allow(pmg-atomic-shared-write) fixture: comment-above form
    shared += v;
  });
  rt.ParallelFor(0, 10, [&](ThreadId t, uint64_t v) {
    // pmg-lint: allow(pmg-atomic-shared-write) fixture: a reason long
    // enough to wrap onto a second comment line still covers the
    // statement after the block
    shared += v;
  });
}

}  // namespace fx
