// Fixture: every way simulated code can leak host time or randomness.
#include <chrono>
#include <ctime>

namespace fx {

inline long HostLeaks() {
  long a = time(nullptr);
  long b = std::clock();
  auto c = std::chrono::steady_clock::now();
  int d = rand();
  std::random_device rd;
  struct timespec ts;
  clock_gettime(0, &ts);
  return a + b + d + static_cast<long>(rd());
}

}  // namespace fx
