// Fixture: TierHook seam dispatches with no null guard in sight.
#include <cstdint>

namespace fx {

struct TierHook {
  void OnTierCandidate(uint64_t page, int from, int to);
  void OnTierMigrated(uint64_t page, int from, int to, uint64_t bytes);
  void OnTierScan(int record);
};

struct Machine {
  TierHook* tier_hook() const { return tier_; }
  TierHook* tier_ = nullptr;
};

struct Daemon {
  TierHook* tier_ = nullptr;

  void Decide(uint64_t page) {
    tier_->OnTierCandidate(page, 0, 1);  // no guard anywhere above
  }

  void Move(uint64_t page, uint64_t bytes) {
    tier_->OnTierMigrated(page, 0, 1, bytes);  // still unguarded
  }
};

inline void Chained(const Machine& machine, int record) {
  machine.tier_hook()->OnTierScan(record);  // chained base, unguarded
}

}  // namespace fx
