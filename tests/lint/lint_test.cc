// Tests for pmg::lint — the project-invariant static analyzer.
//
// The centerpiece is a golden of the full fixture-tree lint run: every
// check has at least one firing and one non-firing fixture under
// fixtures/tree/, and the rendered findings are pinned byte for byte.
// Regenerate after an intentional check or message change with
//
//   ./lint_test --update-goldens
//
// Around the golden sit unit tests for the lexer, the suppression
// grammar, the project index, and the baseline gate's multiset
// semantics.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pmg/lint/lexer.h"
#include "pmg/lint/lint.h"

namespace pmg::lint {

bool g_update_goldens = false;

namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(PMG_GOLDEN_DIR) + "/" + name;
}

void ExpectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_goldens) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with --update-goldens to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "output drifted from " << path
      << "; rerun with --update-goldens if the change is intentional";
}

/// Collects and lints the fixture tree the way the CLI would: the same
/// dirs, with tools/hostperf/ declared host-side.
struct FixtureRun {
  std::vector<SourceFile> files;
  std::vector<Finding> findings;
};

FixtureRun LintFixtureTree() {
  FixtureRun run;
  LintOptions options;
  options.host_dirs = {"tools/hostperf/"};
  std::string error;
  const bool ok = CollectFiles(PMG_LINT_FIXTURE_DIR, {"src", "tools", "tests"},
                               &run.files, &error);
  EXPECT_TRUE(ok) << error;
  run.findings = LintTree(run.files, options);
  return run;
}

SourceFile Cpp(const std::string& text) {
  SourceFile f;
  f.path = "src/unit.cc";
  f.text = text;
  return f;
}

std::vector<Finding> LintText(const std::string& text) {
  const SourceFile f = Cpp(text);
  ProjectIndex index;
  IndexSource(f, &index);
  return LintSource(f, index, LintOptions{});
}

// ---------------------------------------------------------------------------
// Lexer.

TEST(Lexer, TokenKindsAndLines) {
  const std::string src =
      "int x = 42;  // trailing\n"
      "auto s = \"str\"; char c = 'a';\n"
      "p->Call(0x1F);\n";
  const std::vector<Token> toks = Tokenize(src);
  ASSERT_FALSE(toks.empty());
  EXPECT_TRUE(toks[0].IsIdent("int"));
  EXPECT_EQ(toks[0].line, 1u);

  bool saw_comment = false, saw_string = false, saw_char = false;
  bool saw_arrow = false, saw_hex = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kComment && t.text == "// trailing") {
      saw_comment = true;
      EXPECT_EQ(t.line, 1u);
    }
    if (t.kind == TokKind::kString && t.text == "\"str\"") saw_string = true;
    if (t.kind == TokKind::kChar && t.text == "'a'") saw_char = true;
    if (t.kind == TokKind::kPunct && t.text == "->") {
      saw_arrow = true;
      EXPECT_EQ(t.line, 3u);
    }
    if (t.kind == TokKind::kNumber && t.text == "0x1F") saw_hex = true;
  }
  EXPECT_TRUE(saw_comment);
  EXPECT_TRUE(saw_string);
  EXPECT_TRUE(saw_char);
  EXPECT_TRUE(saw_arrow);
  EXPECT_TRUE(saw_hex);
}

TEST(Lexer, RawStringsAndBlockComments) {
  const std::string src =
      "auto r = R\"(time(nullptr) // not code)\";\n"
      "/* time(nullptr)\n   spans lines */ int y;\n";
  const TokenStream ts = TokenStream::Of(src);
  // Neither the raw string body nor the comment body leaks code tokens.
  for (const Token& t : ts.code) {
    EXPECT_FALSE(t.IsIdent("time")) << "line " << t.line;
  }
  ASSERT_EQ(ts.comments.count(2u), 1u);
  EXPECT_TRUE(ts.comments.find(2u)->second.find("spans lines") !=
              std::string_view::npos);
}

TEST(Lexer, UnterminatedLiteralDoesNotAbort) {
  const std::string src = "auto s = \"never closed\nint after = 1;\n";
  const std::vector<Token> toks = Tokenize(src);
  // Degrades to one malformed token plus the rest of the file.
  bool saw_after = false;
  for (const Token& t : toks) {
    if (t.IsIdent("after")) saw_after = true;
  }
  EXPECT_TRUE(saw_after);
}

// ---------------------------------------------------------------------------
// Finding formatting and check registry.

TEST(Finding, FormatAndKey) {
  Finding f;
  f.file = "src/a.cc";
  f.line = 12;
  f.check = "pmg-no-host-clock";
  f.message = "call to time()";
  EXPECT_EQ(f.Format(), "src/a.cc:12: pmg-no-host-clock: call to time()");
  EXPECT_EQ(f.Key(), "src/a.cc: pmg-no-host-clock: call to time()");
}

TEST(Finding, OrderingIsFileLineCheckMessage) {
  Finding a{"a.cc", 5, "x", "m"};
  Finding b{"a.cc", 9, "x", "m"};
  Finding c{"b.cc", 1, "x", "m"};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
}

TEST(CheckRegistry, AllIdsKnownAndSorted) {
  const std::vector<std::string>& ids = AllCheckIds();
  EXPECT_EQ(ids.size(), 8u);  // 7 checks + the pmg-suppression meta check.
  for (size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
  for (const std::string& id : ids) EXPECT_TRUE(IsKnownCheckId(id));
  EXPECT_TRUE(IsKnownCheckId("pmg-suppression"));
  EXPECT_FALSE(IsKnownCheckId("pmg-not-a-check"));
}

// ---------------------------------------------------------------------------
// Project index.

TEST(ProjectIndexTest, EnumsAndUnorderedNames) {
  SourceFile f = Cpp(
      "enum class Kind { kA, kB = 3, kC };\n"
      "enum class Fwd;\n"
      "std::unordered_map<int, long> lookup_;\n"
      "std::unordered_set<std::string> seen;\n"
      "std::map<int, int> ordered_;\n");
  ProjectIndex index;
  IndexSource(f, &index);
  ASSERT_EQ(index.enums.count("Kind"), 1u);
  EXPECT_EQ(index.enums["Kind"],
            (std::vector<std::string>{"kA", "kB", "kC"}));
  EXPECT_EQ(index.enums.count("Fwd"), 0u);  // forward decl has no body
  EXPECT_EQ(index.unordered_names.count("lookup_"), 1u);
  EXPECT_EQ(index.unordered_names.count("seen"), 1u);
  EXPECT_EQ(index.unordered_names.count("ordered_"), 0u);
}

// ---------------------------------------------------------------------------
// Suppressions.

TEST(Suppression, TrailingAndPrecedingFormsCover) {
  const std::string trailing =
      "long F() {\n"
      "  return time(nullptr);  // pmg-lint: allow(pmg-no-host-clock) fixture\n"
      "}\n";
  EXPECT_TRUE(LintText(trailing).empty());

  const std::string above =
      "long F() {\n"
      "  // pmg-lint: allow(pmg-no-host-clock) fixture\n"
      "  return time(nullptr);\n"
      "}\n";
  EXPECT_TRUE(LintText(above).empty());
}

TEST(Suppression, CommentBlockExtendsCoverage) {
  // A two-line justification above the statement still covers it.
  const std::string block =
      "long F() {\n"
      "  // pmg-lint: allow(pmg-no-host-clock) the justification is long\n"
      "  // enough to need a second comment line\n"
      "  return time(nullptr);\n"
      "}\n";
  EXPECT_TRUE(LintText(block).empty());
}

TEST(Suppression, MissingReasonIsItselfAFinding) {
  const std::string src =
      "long F() {\n"
      "  return time(nullptr);  // pmg-lint: allow(pmg-no-host-clock)\n"
      "}\n";
  const std::vector<Finding> fs = LintText(src);
  ASSERT_EQ(fs.size(), 2u);  // the meta finding + the uncovered violation
  EXPECT_EQ(fs[0].check, "pmg-no-host-clock");
  EXPECT_EQ(fs[1].check, "pmg-suppression");
  EXPECT_TRUE(fs[1].message.find("needs a reason") != std::string::npos);
}

TEST(Suppression, UnknownCheckIdRejected) {
  const std::string src =
      "long F() {\n"
      "  return time(nullptr);  // pmg-lint: allow(pmg-bogus) why not\n"
      "}\n";
  const std::vector<Finding> fs = LintText(src);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[1].check, "pmg-suppression");
  EXPECT_TRUE(fs[1].message.find("unknown check id") != std::string::npos);
}

TEST(Suppression, WrongCheckIdDoesNotCover) {
  const std::string src =
      "long F() {\n"
      "  return time(nullptr);  // pmg-lint: allow(pmg-enum-switch) wrong id\n"
      "}\n";
  const std::vector<Finding> fs = LintText(src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].check, "pmg-no-host-clock");
}

TEST(Suppression, ProseMentionIsNotADirective) {
  // Comments *about* the syntax (docs, this test's own sources) must not
  // parse as suppressions: only comments starting with "pmg-lint:" do.
  const std::string src =
      "// Suppress with `// pmg-lint: allow(<check-id>) <reason>` inline.\n"
      "long F(long x) { return x; }\n";
  EXPECT_TRUE(LintText(src).empty());
}

TEST(Suppression, MetaFindingsAreNotSuppressible) {
  // A malformed directive cannot silence itself.
  const std::string src =
      "// pmg-lint: allow(pmg-suppression) quiet please\n"
      "// pmg-lint: allow(pmg-no-host-clock)\n"
      "long F(long x) { return x; }\n";
  const std::vector<Finding> fs = LintText(src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].check, "pmg-suppression");
  EXPECT_EQ(fs[0].line, 2u);
}

// ---------------------------------------------------------------------------
// Baseline gate.

TEST(Baseline, ParseSkipsCommentsAndBlanks) {
  const std::string text =
      "# header\n"
      "\n"
      "  src/a.cc: pmg-no-host-clock: call to time()\r\n"
      "src/b.cc: pmg-enum-switch: switch over Kind misses kC\n";
  const std::vector<std::string> keys = ParseBaseline(text);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "src/a.cc: pmg-no-host-clock: call to time()");
  EXPECT_EQ(keys[1], "src/b.cc: pmg-enum-switch: switch over Kind misses kC");
}

TEST(Baseline, DiffSplitsFreshMatchedStale) {
  Finding hit{"src/a.cc", 4, "pmg-no-host-clock", "call to time()"};
  Finding fresh{"src/c.cc", 9, "pmg-hook-guard", "unguarded hook"};
  const std::vector<std::string> baseline = {
      hit.Key(), "src/gone.cc: pmg-enum-switch: fixed long ago"};
  const BaselineDiff diff = DiffAgainstBaseline({hit, fresh}, baseline);
  EXPECT_EQ(diff.matched, 1u);
  ASSERT_EQ(diff.fresh.size(), 1u);
  EXPECT_EQ(diff.fresh[0], fresh);
  ASSERT_EQ(diff.stale.size(), 1u);
  EXPECT_EQ(diff.stale[0], "src/gone.cc: pmg-enum-switch: fixed long ago");
}

TEST(Baseline, MultisetSemantics) {
  // Two findings with the same key need two baseline entries: one entry
  // absorbs one finding, the second finding is fresh.
  Finding a{"src/a.cc", 4, "pmg-no-host-clock", "call to time()"};
  Finding b{"src/a.cc", 9, "pmg-no-host-clock", "call to time()"};
  const BaselineDiff one = DiffAgainstBaseline({a, b}, {a.Key()});
  EXPECT_EQ(one.matched, 1u);
  EXPECT_EQ(one.fresh.size(), 1u);
  const BaselineDiff two = DiffAgainstBaseline({a, b}, {a.Key(), b.Key()});
  EXPECT_EQ(two.matched, 2u);
  EXPECT_TRUE(two.fresh.empty());
  EXPECT_TRUE(two.stale.empty());
}

TEST(Baseline, WriteRoundTrips) {
  Finding b{"src/b.cc", 2, "pmg-hook-guard", "unguarded hook"};
  Finding a{"src/a.cc", 7, "pmg-no-host-clock", "call to time()"};
  const std::string text = WriteBaseline({b, a});
  EXPECT_EQ(text.front(), '#');  // header comment survives a round trip
  const std::vector<std::string> keys = ParseBaseline(text);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], a.Key());  // serialized sorted
  EXPECT_EQ(keys[1], b.Key());
}

// ---------------------------------------------------------------------------
// The fixture tree: golden + per-check coverage + determinism.

TEST(FixtureTree, GoldenFindings) {
  const FixtureRun run = LintFixtureTree();
  ExpectMatchesGolden("fixture_tree_findings.txt",
                      FormatFindings(run.findings));
}

TEST(FixtureTree, EveryCheckFiresAndEveryGoodFileIsClean) {
  const FixtureRun run = LintFixtureTree();
  std::set<std::string> fired;
  for (const Finding& f : run.findings) {
    fired.insert(f.check);
    // The *_good.cxx fixtures are the non-firing half of each check's
    // coverage: a finding there is a linter regression.
    EXPECT_EQ(f.file.find("_good"), std::string::npos) << f.Format();
  }
  for (const std::string& id : AllCheckIds()) {
    EXPECT_EQ(fired.count(id), 1u) << "no fixture fires " << id;
  }
}

TEST(FixtureTree, SuppressedFixturesStayQuiet) {
  const FixtureRun run = LintFixtureTree();
  for (const Finding& f : run.findings) {
    EXPECT_EQ(f.file.find("suppress.cxx"), std::string::npos) << f.Format();
    // The cmake suppression block in tests/CMakeLists.txt covers
    // suppressed_test; the other unlabelled tests still fire.
    if (f.file == "tests/CMakeLists.txt") {
      EXPECT_EQ(f.message.find("suppressed_test"), std::string::npos)
          << f.Format();
    }
  }
}

TEST(FixtureTree, HostDirExemptsHostPerfCode) {
  const FixtureRun run = LintFixtureTree();
  for (const Finding& f : run.findings) {
    EXPECT_EQ(f.file.find("tools/hostperf/"), std::string::npos)
        << f.Format();
  }
}

TEST(FixtureTree, OutputIsByteDeterministic) {
  // Two independent collect+lint passes over the same tree must render
  // identical bytes — the property the golden relies on.
  const FixtureRun first = LintFixtureTree();
  const FixtureRun second = LintFixtureTree();
  ASSERT_EQ(first.files.size(), second.files.size());
  for (size_t i = 0; i < first.files.size(); ++i) {
    EXPECT_EQ(first.files[i].path, second.files[i].path);
  }
  EXPECT_EQ(FormatFindings(first.findings), FormatFindings(second.findings));
}

TEST(FixtureTree, CollectSkipsFixtureAndBuildDirs) {
  // The repo's own walker must never descend into fixtures/ — otherwise
  // the fixture tree would pollute the repo gate.
  std::vector<SourceFile> files;
  std::string error;
  ASSERT_TRUE(CollectFiles(PMG_LINT_FIXTURE_DIR, {"src", "tools", "tests"},
                           &files, &error))
      << error;
  for (const SourceFile& f : files) {
    EXPECT_EQ(f.path.find("fixtures/"), std::string::npos) << f.path;
    EXPECT_EQ(f.path.find("build/"), std::string::npos) << f.path;
  }
  EXPECT_FALSE(files.empty());
}

TEST(CollectFiles, BadRootFails) {
  std::vector<SourceFile> files;
  std::string error;
  EXPECT_FALSE(CollectFiles("/nonexistent/pmg-lint-root", {"src"}, &files,
                            &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace pmg::lint

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-goldens") {
      pmg::lint::g_update_goldens = true;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
