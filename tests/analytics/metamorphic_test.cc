#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "pmg/analytics/bfs.h"
#include "pmg/analytics/cc.h"
#include "pmg/analytics/pagerank.h"
#include "pmg/analytics/sssp.h"
#include "pmg/graph/properties.h"
#include "tests/analytics/test_util.h"

// Metamorphic properties: transformations of the input with a known
// effect on the output. These catch bugs that oracle-equality tests on
// fixed graphs can miss (e.g. accidental dependence on vertex order or
// weight magnitudes).

namespace pmg::analytics {
namespace {

using testutil::DefaultOptions;
using testutil::Env;

graph::CsrTopology TestGraph() { return graph::Rmat(9, 8, 21); }

std::vector<VertexId> ReversePerm(uint64_t n) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::reverse(perm.begin(), perm.end());
  return perm;
}

TEST(MetamorphicTest, BfsLevelsInvariantUnderRelabeling) {
  const graph::CsrTopology g = TestGraph();
  const std::vector<VertexId> perm = ReversePerm(g.num_vertices);
  const graph::CsrTopology r = graph::Relabel(g, perm);
  const VertexId src = graph::MaxOutDegreeVertex(g);
  Env e1(g, false, false);
  Env e2(r, false, false);
  const BfsResult a = BfsSparseWl(e1.rt(), e1.graph(), src, DefaultOptions());
  const BfsResult b =
      BfsSparseWl(e2.rt(), e2.graph(), perm[src], DefaultOptions());
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    EXPECT_EQ(a.level[v], b.level[perm[v]]) << v;
  }
}

TEST(MetamorphicTest, SsspDistancesScaleWithWeights) {
  graph::CsrTopology g = TestGraph();
  graph::AssignRandomWeights(&g, 50, 5);
  graph::CsrTopology scaled = g;
  for (uint32_t& w : scaled.weight) w *= 3;
  const VertexId src = graph::MaxOutDegreeVertex(g);
  Env e1(g, false, true);
  Env e2(scaled, false, true);
  const SsspResult a =
      SsspDeltaStep(e1.rt(), e1.graph(), src, DefaultOptions());
  const SsspResult b =
      SsspDeltaStep(e2.rt(), e2.graph(), src, DefaultOptions());
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    if (a.dist[v] == kInfDist) {
      EXPECT_EQ(b.dist[v], kInfDist);
    } else {
      EXPECT_EQ(b.dist[v], 3 * a.dist[v]) << v;
    }
  }
}

TEST(MetamorphicTest, SsspMonotoneUnderExtraEdges) {
  // Adding edges can only shorten (or preserve) distances.
  graph::CsrTopology g = TestGraph();
  graph::AssignRandomWeights(&g, 50, 5);
  graph::EdgeList extra;
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) {
      extra.push_back({v, g.dst[e], g.weight[e]});
    }
  }
  for (VertexId v = 0; v + 7 < g.num_vertices; v += 7) {
    extra.push_back({v, v + 7, 1});
  }
  graph::CsrTopology denser = graph::BuildCsr(g.num_vertices, extra, true);
  const VertexId src = graph::MaxOutDegreeVertex(g);
  Env e1(g, false, true);
  Env e2(denser, false, true);
  const SsspResult a =
      SsspDeltaStep(e1.rt(), e1.graph(), src, DefaultOptions());
  const SsspResult b =
      SsspDeltaStep(e2.rt(), e2.graph(), src, DefaultOptions());
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    EXPECT_LE(b.dist[v], a.dist[v]) << v;
  }
}

TEST(MetamorphicTest, CcComponentCountInvariantUnderRelabeling) {
  const graph::CsrTopology sym = graph::Symmetrize(TestGraph());
  const std::vector<VertexId> perm = ReversePerm(sym.num_vertices);
  const graph::CsrTopology r = graph::Relabel(sym, perm);
  auto count = [](const runtime::NumaArray<uint64_t>& labels) {
    uint64_t n = 0;
    for (size_t v = 0; v < labels.size(); ++v) {
      if (labels[v] == v) ++n;
    }
    return n;
  };
  Env e1(sym, false, false);
  Env e2(r, false, false);
  const CcResult a = CcLabelPropSC(e1.rt(), e1.graph(), DefaultOptions());
  const CcResult b = CcLabelPropSC(e2.rt(), e2.graph(), DefaultOptions());
  EXPECT_EQ(count(a.label), count(b.label));
}

TEST(MetamorphicTest, PrConservesMassOnClosedGraph) {
  // On a graph with no dangling vertices, the stationary total score is
  // |V| regardless of the damping factor (rank mass is conserved).
  const graph::CsrTopology g = graph::Cycle(128);
  for (double damping : {0.5, 0.7, 0.85}) {
    Env env(g, true, false);
    AlgoOptions opt = DefaultOptions();
    opt.pr_damping = damping;
    const PrResult r = PrPull(env.rt(), env.graph(), opt);
    double total = 0;
    for (size_t v = 0; v < r.rank.size(); ++v) total += r.rank[v];
    EXPECT_NEAR(total, 128.0, 1e-2) << "damping " << damping;
  }
}

TEST(MetamorphicTest, BfsUnaffectedByWeightValues) {
  // BFS ignores weights: the same graph with random weights must give
  // identical levels.
  graph::CsrTopology g = TestGraph();
  graph::CsrTopology weighted = g;
  graph::AssignRandomWeights(&weighted, 99, 9);
  const VertexId src = graph::MaxOutDegreeVertex(g);
  Env e1(g, false, false);
  Env e2(weighted, false, true);
  const BfsResult a = BfsSparseWl(e1.rt(), e1.graph(), src, DefaultOptions());
  const BfsResult b = BfsSparseWl(e2.rt(), e2.graph(), src, DefaultOptions());
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    EXPECT_EQ(a.level[v], b.level[v]);
  }
}

TEST(MetamorphicTest, SimulatedTimeIsDeterministic) {
  // Bit-identical simulated time across repeated runs (the property all
  // benchmark comparisons rest on).
  const graph::CsrTopology g = TestGraph();
  const VertexId src = graph::MaxOutDegreeVertex(g);
  SimNs first = 0;
  for (int i = 0; i < 3; ++i) {
    Env env(g, false, false);
    const BfsResult r =
        BfsSparseWl(env.rt(), env.graph(), src, DefaultOptions());
    if (i == 0) {
      first = r.time_ns;
    } else {
      EXPECT_EQ(r.time_ns, first);
    }
  }
}

}  // namespace
}  // namespace pmg::analytics
