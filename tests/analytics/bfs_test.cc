#include "pmg/analytics/bfs.h"

#include <gtest/gtest.h>

#include "pmg/analytics/reference.h"
#include "pmg/graph/properties.h"
#include "tests/analytics/test_util.h"

namespace pmg::analytics {
namespace {

using testutil::Corpus;
using testutil::DefaultOptions;
using testutil::Env;
using testutil::NamedGraph;

class BfsCorpusTest : public testing::TestWithParam<NamedGraph> {};

void ExpectLevelsMatch(const runtime::NumaArray<uint32_t>& got,
                       const std::vector<uint32_t>& want,
                       const std::string& tag) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t v = 0; v < want.size(); ++v) {
    ASSERT_EQ(got[v], want[v]) << tag << " vertex " << v;
  }
}

TEST_P(BfsCorpusTest, DenseMatchesReference) {
  const NamedGraph& g = GetParam();
  const VertexId src = graph::MaxOutDegreeVertex(g.topo);
  const std::vector<uint32_t> want = RefBfs(g.topo, src);
  Env env(g.topo, /*in_edges=*/false, /*weights=*/false);
  const BfsResult r = BfsDenseWl(env.rt(), env.graph(), src, DefaultOptions());
  ExpectLevelsMatch(r.level, want, "dense");
}

TEST_P(BfsCorpusTest, DirectionOptMatchesReference) {
  const NamedGraph& g = GetParam();
  const VertexId src = graph::MaxOutDegreeVertex(g.topo);
  const std::vector<uint32_t> want = RefBfs(g.topo, src);
  Env env(g.topo, /*in_edges=*/true, /*weights=*/false);
  const BfsResult r =
      BfsDirectionOpt(env.rt(), env.graph(), src, DefaultOptions());
  ExpectLevelsMatch(r.level, want, "dir-opt");
}

TEST_P(BfsCorpusTest, SparseMatchesReference) {
  const NamedGraph& g = GetParam();
  const VertexId src = graph::MaxOutDegreeVertex(g.topo);
  const std::vector<uint32_t> want = RefBfs(g.topo, src);
  Env env(g.topo, false, false);
  const BfsResult r =
      BfsSparseWl(env.rt(), env.graph(), src, DefaultOptions());
  ExpectLevelsMatch(r.level, want, "sparse");
}

TEST_P(BfsCorpusTest, AsyncMatchesReference) {
  const NamedGraph& g = GetParam();
  const VertexId src = graph::MaxOutDegreeVertex(g.topo);
  const std::vector<uint32_t> want = RefBfs(g.topo, src);
  Env env(g.topo, false, false);
  const BfsResult r = BfsAsync(env.rt(), env.graph(), src, DefaultOptions());
  ExpectLevelsMatch(r.level, want, "async");
}

TEST_P(BfsCorpusTest, EdgeRelaxationInvariant) {
  // For every edge (v, u) with v reached: level[u] <= level[v] + 1.
  const NamedGraph& g = GetParam();
  const VertexId src = graph::MaxOutDegreeVertex(g.topo);
  Env env(g.topo, false, false);
  const BfsResult r =
      BfsSparseWl(env.rt(), env.graph(), src, DefaultOptions());
  for (VertexId v = 0; v < g.topo.num_vertices; ++v) {
    if (r.level[v] == kInfLevel) continue;
    for (uint64_t e = g.topo.index[v]; e < g.topo.index[v + 1]; ++e) {
      EXPECT_LE(r.level[g.topo.dst[e]], r.level[v] + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BfsCorpusTest, testing::ValuesIn(Corpus()),
    [](const testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(BfsTest, RoundsEqualEccentricityOnPath) {
  graph::CsrTopology topo = graph::Path(64);
  Env env(topo, false, false);
  const BfsResult r = BfsDenseWl(env.rt(), env.graph(), 0, DefaultOptions());
  // 63 productive rounds + one empty-detection round.
  EXPECT_GE(r.rounds, 63u);
  EXPECT_LE(r.rounds, 64u);
  EXPECT_EQ(r.level[63], 63u);
}

TEST(BfsTest, SourceOnlyGraph) {
  graph::CsrTopology topo = graph::BuildCsr(1, {}, false);
  Env env(topo, false, false);
  const BfsResult r = BfsSparseWl(env.rt(), env.graph(), 0, DefaultOptions());
  EXPECT_EQ(r.level[0], 0u);
}

TEST(BfsTest, UnreachableVerticesStayInf) {
  // Two disconnected paths; start in the first.
  graph::EdgeList edges = {{0, 1, 1}, {2, 3, 1}};
  graph::CsrTopology topo = graph::BuildCsr(4, edges, false);
  Env env(topo, false, false);
  const BfsResult r = BfsAsync(env.rt(), env.graph(), 0, DefaultOptions());
  EXPECT_EQ(r.level[1], 1u);
  EXPECT_EQ(r.level[2], kInfLevel);
  EXPECT_EQ(r.level[3], kInfLevel);
}

TEST(BfsTest, SparseBeatsDenseOnHighDiameterGraph) {
  // The Section 5 claim that motivates sparse worklists: on a
  // high-diameter graph the dense frontier's per-round O(|V|) scans make
  // it far slower than sparse scheduling.
  graph::WebCrawlParams wp;
  wp.vertices = 20000;
  wp.communities = 16;
  wp.tail_length = 2000;
  wp.tail_width = 4;
  wp.avg_out_degree = 8;
  graph::CsrTopology topo = graph::WebCrawl(wp);
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  Env dense_env(topo, false, false);
  Env sparse_env(topo, false, false);
  const BfsResult dense =
      BfsDenseWl(dense_env.rt(), dense_env.graph(), src, DefaultOptions());
  const BfsResult sparse =
      BfsSparseWl(sparse_env.rt(), sparse_env.graph(), src, DefaultOptions());
  EXPECT_GT(dense.time_ns, 3 * sparse.time_ns);
}

TEST(BfsTest, DirectionOptWinsOnLowDiameterScaleFree) {
  // On rmat-like graphs the giant middle frontier makes pull profitable.
  graph::CsrTopology topo = graph::Rmat(13, 16, 3);
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  Env a(topo, true, false);
  Env b(topo, false, false);
  const BfsResult dir =
      BfsDirectionOpt(a.rt(), a.graph(), src, DefaultOptions());
  const BfsResult dense = BfsDenseWl(b.rt(), b.graph(), src, DefaultOptions());
  EXPECT_LT(dir.time_ns, dense.time_ns);
}

}  // namespace
}  // namespace pmg::analytics
