#include "pmg/analytics/cc.h"

#include <gtest/gtest.h>

#include "pmg/analytics/reference.h"
#include "pmg/graph/generators.h"
#include "tests/analytics/test_util.h"

namespace pmg::analytics {
namespace {

using testutil::Corpus;
using testutil::DefaultOptions;
using testutil::Env;
using testutil::NamedGraph;

class CcCorpusTest : public testing::TestWithParam<NamedGraph> {};

void ExpectLabelsMatch(const runtime::NumaArray<uint64_t>& got,
                       const std::vector<uint64_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t v = 0; v < want.size(); ++v) {
    ASSERT_EQ(got[v], want[v]) << "vertex " << v;
  }
}

TEST_P(CcCorpusTest, LabelPropMatchesReference) {
  const graph::CsrTopology sym = graph::Symmetrize(GetParam().topo);
  const std::vector<uint64_t> want = RefCc(sym);
  Env env(sym, false, false);
  const CcResult r = CcLabelProp(env.rt(), env.graph(), DefaultOptions());
  ExpectLabelsMatch(r.label, want);
}

TEST_P(CcCorpusTest, LabelPropScMatchesReference) {
  const graph::CsrTopology sym = graph::Symmetrize(GetParam().topo);
  const std::vector<uint64_t> want = RefCc(sym);
  Env env(sym, false, false);
  const CcResult r = CcLabelPropSC(env.rt(), env.graph(), DefaultOptions());
  ExpectLabelsMatch(r.label, want);
}

TEST_P(CcCorpusTest, LabelPropScDirMatchesReferenceOnDirectedInput) {
  // The directed-input variant computes weak components without a
  // symmetrized copy; RefCc already treats edges as undirected.
  const graph::CsrTopology& topo = GetParam().topo;
  const std::vector<uint64_t> want = RefCc(topo);
  Env env(topo, false, false);
  const CcResult r = CcLabelPropSCDir(env.rt(), env.graph(), DefaultOptions());
  ExpectLabelsMatch(r.label, want);
}

TEST(CcTest, DirectedVariantHalvesGraphFootprint) {
  // The point of the directed variant: no transpose, no symmetrized copy.
  const graph::CsrTopology topo = graph::Rmat(11, 8, 3);
  const graph::CsrTopology sym = graph::Symmetrize(topo);
  EXPECT_GT(graph::CsrBytes(sym), graph::CsrBytes(topo) * 3 / 2);
}

TEST_P(CcCorpusTest, UnionFindMatchesReference) {
  const graph::CsrTopology sym = graph::Symmetrize(GetParam().topo);
  const std::vector<uint64_t> want = RefCc(sym);
  Env env(sym, false, false);
  const CcResult r = CcUnionFind(env.rt(), env.graph(), DefaultOptions());
  ExpectLabelsMatch(r.label, want);
}

TEST_P(CcCorpusTest, AsyncMatchesReference) {
  const graph::CsrTopology sym = graph::Symmetrize(GetParam().topo);
  const std::vector<uint64_t> want = RefCc(sym);
  Env env(sym, false, false);
  const CcResult r = CcAsync(env.rt(), env.graph(), DefaultOptions());
  ExpectLabelsMatch(r.label, want);
}

TEST_P(CcCorpusTest, LabelsFormEquivalenceOverEdges) {
  const graph::CsrTopology sym = graph::Symmetrize(GetParam().topo);
  Env env(sym, false, false);
  const CcResult r = CcLabelPropSC(env.rt(), env.graph(), DefaultOptions());
  for (VertexId v = 0; v < sym.num_vertices; ++v) {
    // The label is a component representative: itself labeled by itself.
    EXPECT_LE(r.label[v], v);
    EXPECT_EQ(r.label[r.label[v]], r.label[v]);
    for (uint64_t e = sym.index[v]; e < sym.index[v + 1]; ++e) {
      EXPECT_EQ(r.label[v], r.label[sym.dst[e]]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CcCorpusTest, testing::ValuesIn(Corpus()),
    [](const testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(CcTest, CountsIsolatedVerticesAsComponents) {
  // 5 isolated vertices + one 3-cycle.
  graph::EdgeList edges = {{5, 6, 1}, {6, 7, 1}, {7, 5, 1}};
  graph::CsrTopology sym = graph::Symmetrize(graph::BuildCsr(8, edges, false));
  Env env(sym, false, false);
  const CcResult r = CcAsync(env.rt(), env.graph(), DefaultOptions());
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(r.label[v], v);
  EXPECT_EQ(r.label[5], 5u);
  EXPECT_EQ(r.label[6], 5u);
  EXPECT_EQ(r.label[7], 5u);
}

TEST(CcTest, ShortcuttingConvergesInFewerRoundsOnLongPath) {
  // Plain label propagation needs O(path length) rounds; shortcutting
  // compresses labels along the way (the paper's LabelProp-SC argument).
  graph::CsrTopology sym = graph::Symmetrize(graph::Path(512));
  Env e1(sym, false, false);
  Env e2(sym, false, false);
  const CcResult plain = CcLabelProp(e1.rt(), e1.graph(), DefaultOptions());
  const CcResult sc = CcLabelPropSC(e2.rt(), e2.graph(), DefaultOptions());
  // Jacobi label propagation needs ~path-length rounds; shortcutting
  // collapses the pointer chains.
  EXPECT_GE(plain.rounds, 256u);
  EXPECT_LT(sc.rounds, plain.rounds / 8);
}

TEST(CcTest, ShortcuttingFasterOnHighDiameter) {
  graph::WebCrawlParams wp;
  wp.vertices = 12000;
  wp.communities = 10;
  wp.tail_length = 1200;
  wp.tail_width = 4;
  wp.avg_out_degree = 6;
  graph::CsrTopology sym = graph::Symmetrize(graph::WebCrawl(wp));
  Env e1(sym, false, false);
  Env e2(sym, false, false);
  const CcResult dense = CcLabelProp(e1.rt(), e1.graph(), DefaultOptions());
  const CcResult sc = CcLabelPropSC(e2.rt(), e2.graph(), DefaultOptions());
  EXPECT_GT(dense.time_ns, 2 * sc.time_ns);
}

}  // namespace
}  // namespace pmg::analytics
