#ifndef PMG_TESTS_ANALYTICS_TEST_UTIL_H_
#define PMG_TESTS_ANALYTICS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "pmg/graph/csr_graph.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/properties.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/runtime/runtime.h"

/// Shared fixtures for analytics tests: a corpus of structurally diverse
/// graphs and a helper bundling machine + runtime + machine-resident graph.

namespace pmg::analytics::testutil {

struct NamedGraph {
  std::string name;
  graph::CsrTopology topo;
};

/// Deterministic corpus covering path/star/cycle extremes, grids, dense
/// cliques, scale-free (rmat), uniform random, and high-diameter crawls.
inline std::vector<NamedGraph> Corpus() {
  std::vector<NamedGraph> out;
  out.push_back({"path50", graph::Path(50)});
  out.push_back({"cycle40", graph::Cycle(40)});
  out.push_back({"star30", graph::Star(30)});
  out.push_back({"grid8x9", graph::Grid2d(8, 9)});
  out.push_back({"complete12", graph::Complete(12)});
  out.push_back({"rmat10", graph::Rmat(10, 8, 7)});
  out.push_back({"er", graph::ErdosRenyi(400, 2400, 5)});
  graph::WebCrawlParams wp;
  wp.vertices = 3000;
  wp.communities = 12;
  wp.tail_length = 120;
  wp.avg_out_degree = 6;
  wp.seed = 9;
  out.push_back({"crawl", graph::WebCrawl(wp)});
  out.push_back({"protein", graph::ProteinCluster(6, 50, 8, 3)});
  return out;
}

/// A machine + runtime + resident graph in one object.
class Env {
 public:
  Env(const graph::CsrTopology& topo, bool in_edges, bool weights,
      uint32_t threads = 8)
      : machine_(memsim::DramOnlyConfig()) {
    graph::GraphLayout layout;
    layout.policy.placement = memsim::Placement::kInterleaved;
    layout.load_in_edges = in_edges;
    layout.with_weights = weights;
    graph_ = std::make_unique<graph::CsrGraph>(&machine_, topo, layout, "g");
    rt_ = std::make_unique<runtime::Runtime>(&machine_, threads);
  }

  runtime::Runtime& rt() { return *rt_; }
  const graph::CsrGraph& graph() const { return *graph_; }

 private:
  memsim::Machine machine_;
  std::unique_ptr<graph::CsrGraph> graph_;
  std::unique_ptr<runtime::Runtime> rt_;
};

inline AlgoOptions DefaultOptions() {
  AlgoOptions opt;
  opt.label_policy.placement = memsim::Placement::kInterleaved;
  return opt;
}

}  // namespace pmg::analytics::testutil

#endif  // PMG_TESTS_ANALYTICS_TEST_UTIL_H_
