#include <gtest/gtest.h>

#include <cmath>

#include "pmg/analytics/bc.h"
#include "pmg/analytics/pagerank.h"
#include "pmg/analytics/reference.h"
#include "pmg/graph/properties.h"
#include "tests/analytics/test_util.h"

namespace pmg::analytics {
namespace {

using testutil::Corpus;
using testutil::DefaultOptions;
using testutil::Env;
using testutil::NamedGraph;

class PrCorpusTest : public testing::TestWithParam<NamedGraph> {};
class BcCorpusTest : public testing::TestWithParam<NamedGraph> {};

TEST_P(PrCorpusTest, PullMatchesReference) {
  const NamedGraph& g = GetParam();
  const std::vector<double> want =
      RefPagerank(g.topo, 0.85, 1e-6, /*max_rounds=*/100);
  Env env(g.topo, /*in_edges=*/true, false);
  const PrResult r = PrPull(env.rt(), env.graph(), DefaultOptions());
  ASSERT_EQ(r.rank.size(), want.size());
  for (size_t v = 0; v < want.size(); ++v) {
    ASSERT_NEAR(r.rank[v], want[v], 1e-6) << "vertex " << v;
  }
}

TEST_P(PrCorpusTest, PushResidualApproximatesPull) {
  const NamedGraph& g = GetParam();
  const std::vector<double> want = RefPagerank(g.topo, 0.85, 1e-9, 200);
  Env env(g.topo, false, false);
  AlgoOptions opt = DefaultOptions();
  opt.pr_tolerance = 1e-7;
  const PrResult r = PrPushResidual(env.rt(), env.graph(), opt);
  for (size_t v = 0; v < want.size(); ++v) {
    // Residual push converges from below within eps-dependent slack.
    ASSERT_NEAR(r.rank[v], want[v], 0.02 * want[v] + 1e-3) << "vertex " << v;
  }
}

TEST_P(PrCorpusTest, RanksBoundedBelowByBase) {
  const NamedGraph& g = GetParam();
  Env env(g.topo, true, false);
  const PrResult r = PrPull(env.rt(), env.graph(), DefaultOptions());
  for (size_t v = 0; v < r.rank.size(); ++v) {
    EXPECT_GE(r.rank[v], 0.15 - 1e-12);
    EXPECT_TRUE(std::isfinite(r.rank[v]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PrCorpusTest, testing::ValuesIn(Corpus()),
    [](const testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(PrTest, RoundCapRespected) {
  graph::CsrTopology topo = graph::Cycle(100);
  Env env(topo, true, false);
  AlgoOptions opt = DefaultOptions();
  opt.pr_max_rounds = 5;
  opt.pr_tolerance = 0;  // never converge by tolerance
  const PrResult r = PrPull(env.rt(), env.graph(), opt);
  EXPECT_EQ(r.rounds, 5u);
}

TEST(PrTest, UniformGraphGivesUniformRanks) {
  graph::CsrTopology topo = graph::Cycle(64);
  Env env(topo, true, false);
  const PrResult r = PrPull(env.rt(), env.graph(), DefaultOptions());
  for (size_t v = 1; v < r.rank.size(); ++v) {
    EXPECT_NEAR(r.rank[v], r.rank[0], 1e-9);
  }
}

TEST_P(BcCorpusTest, SparseMatchesReference) {
  const NamedGraph& g = GetParam();
  const VertexId src = graph::MaxOutDegreeVertex(g.topo);
  const std::vector<double> want = RefBc(g.topo, src);
  Env env(g.topo, false, false);
  const BcResult r = BcSparse(env.rt(), env.graph(), src, DefaultOptions());
  ASSERT_EQ(r.centrality.size(), want.size());
  for (size_t v = 0; v < want.size(); ++v) {
    ASSERT_NEAR(r.centrality[v], want[v], 1e-7 * (1.0 + std::fabs(want[v])))
        << "vertex " << v;
  }
}

TEST_P(BcCorpusTest, DenseMatchesReference) {
  const NamedGraph& g = GetParam();
  const VertexId src = graph::MaxOutDegreeVertex(g.topo);
  const std::vector<double> want = RefBc(g.topo, src);
  Env env(g.topo, false, false);
  const BcResult r = BcDense(env.rt(), env.graph(), src, DefaultOptions());
  for (size_t v = 0; v < want.size(); ++v) {
    ASSERT_NEAR(r.centrality[v], want[v], 1e-7 * (1.0 + std::fabs(want[v])))
        << "vertex " << v;
  }
}

TEST_P(BcCorpusTest, CentralityNonNegativeAndZeroOnLeaves) {
  const NamedGraph& g = GetParam();
  const VertexId src = graph::MaxOutDegreeVertex(g.topo);
  Env env(g.topo, false, false);
  const BcResult r = BcSparse(env.rt(), env.graph(), src, DefaultOptions());
  for (size_t v = 0; v < r.centrality.size(); ++v) {
    EXPECT_GE(r.centrality[v], 0.0);
    if (g.topo.OutDegree(v) == 0) {
      EXPECT_DOUBLE_EQ(r.centrality[v], 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BcCorpusTest, testing::ValuesIn(Corpus()),
    [](const testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(BcTest, PathCentralityIsClosedForm) {
  // On a directed path 0->1->...->n-1 from source 0, bc[v] = n-1-v - ...:
  // vertex v lies on paths to all deeper vertices: bc[v] = n-1-v-1 + 1?
  // Exactly: delta[v] = number of shortest paths through v = (n-1-v).
  // With the pair-dependency recursion, bc[v] = n - 1 - v for interior
  // vertices (v != 0), 0 for the last.
  constexpr uint64_t kN = 10;
  graph::CsrTopology topo = graph::Path(kN);
  Env env(topo, false, false);
  const BcResult r = BcSparse(env.rt(), env.graph(), 0, DefaultOptions());
  for (VertexId v = 1; v < kN; ++v) {
    EXPECT_DOUBLE_EQ(r.centrality[v], static_cast<double>(kN - 1 - v));
  }
}

TEST(BcTest, SparseBeatsDenseOnHighDiameter) {
  graph::WebCrawlParams wp;
  wp.vertices = 12000;
  wp.communities = 10;
  wp.tail_length = 1500;
  wp.tail_width = 2;
  wp.avg_out_degree = 6;
  graph::CsrTopology topo = graph::WebCrawl(wp);
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  Env e1(topo, false, false);
  Env e2(topo, false, false);
  const uint64_t a1 = e1.rt().machine().stats().accesses;
  const uint64_t a2 = e2.rt().machine().stats().accesses;
  const BcResult sparse = BcSparse(e1.rt(), e1.graph(), src, DefaultOptions());
  const BcResult dense = BcDense(e2.rt(), e2.graph(), src, DefaultOptions());
  const uint64_t sparse_work = e1.rt().machine().stats().accesses - a1;
  const uint64_t dense_work = e2.rt().machine().stats().accesses - a2;
  // The vertex-program formulation re-scans all |V| labels per level:
  // orders of magnitude more memory operations, and slower end to end.
  // (The time gap at this miniature |V| is modest because sequential
  // scans amortize; at the paper's scale the same mechanism dominates.)
  EXPECT_GT(dense_work, 20 * sparse_work);
  EXPECT_GT(dense.time_ns, 3 * sparse.time_ns / 2);
}

}  // namespace
}  // namespace pmg::analytics
