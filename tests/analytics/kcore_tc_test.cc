#include <gtest/gtest.h>

#include <numeric>

#include "pmg/analytics/kcore.h"
#include "pmg/analytics/reference.h"
#include "pmg/analytics/tc.h"
#include "tests/analytics/test_util.h"

namespace pmg::analytics {
namespace {

using testutil::Corpus;
using testutil::DefaultOptions;
using testutil::Env;
using testutil::NamedGraph;

class KcoreCorpusTest : public testing::TestWithParam<NamedGraph> {};
class TcCorpusTest : public testing::TestWithParam<NamedGraph> {};

TEST_P(KcoreCorpusTest, AsyncMatchesReference) {
  const graph::CsrTopology sym = graph::Symmetrize(GetParam().topo);
  for (uint32_t k : {2u, 3u, 6u}) {
    const std::vector<uint8_t> want = RefKcore(sym, k);
    Env env(sym, false, false);
    AlgoOptions opt = DefaultOptions();
    opt.kcore_k = k;
    const KcoreResult r = KcoreAsync(env.rt(), env.graph(), opt);
    for (size_t v = 0; v < want.size(); ++v) {
      ASSERT_EQ(r.alive[v], want[v]) << "k=" << k << " vertex " << v;
    }
  }
}

TEST_P(KcoreCorpusTest, DenseMatchesReference) {
  const graph::CsrTopology sym = graph::Symmetrize(GetParam().topo);
  const std::vector<uint8_t> want = RefKcore(sym, 3);
  Env env(sym, false, false);
  AlgoOptions opt = DefaultOptions();
  opt.kcore_k = 3;
  const KcoreResult r = KcoreDense(env.rt(), env.graph(), opt);
  for (size_t v = 0; v < want.size(); ++v) {
    ASSERT_EQ(r.alive[v], want[v]) << "vertex " << v;
  }
}

TEST_P(KcoreCorpusTest, CoreMembersHaveKAliveNeighbors) {
  // The defining invariant of the k-core.
  const graph::CsrTopology sym = graph::Symmetrize(GetParam().topo);
  Env env(sym, false, false);
  AlgoOptions opt = DefaultOptions();
  opt.kcore_k = 3;
  const KcoreResult r = KcoreAsync(env.rt(), env.graph(), opt);
  for (VertexId v = 0; v < sym.num_vertices; ++v) {
    if (r.alive[v] == 0) continue;
    uint32_t alive_neighbors = 0;
    for (uint64_t e = sym.index[v]; e < sym.index[v + 1]; ++e) {
      alive_neighbors += r.alive[sym.dst[e]];
    }
    EXPECT_GE(alive_neighbors, 3u) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, KcoreCorpusTest, testing::ValuesIn(Corpus()),
    [](const testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(KcoreTest, CompleteGraphIsItsOwnCore) {
  const graph::CsrTopology sym = graph::Symmetrize(graph::Complete(10));
  Env env(sym, false, false);
  AlgoOptions opt = DefaultOptions();
  opt.kcore_k = 9;
  const KcoreResult r = KcoreAsync(env.rt(), env.graph(), opt);
  EXPECT_EQ(r.in_core, 10u);
  opt.kcore_k = 10;
  Env env2(sym, false, false);
  const KcoreResult r2 = KcoreAsync(env2.rt(), env2.graph(), opt);
  EXPECT_EQ(r2.in_core, 0u);
}

TEST(KcoreTest, PeelingCascades) {
  // A clique of 5 with a pendant chain: the chain must unravel entirely.
  graph::EdgeList edges;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) edges.push_back({u, v, 1});
  }
  edges.push_back({4, 5, 1});
  edges.push_back({5, 6, 1});
  edges.push_back({6, 7, 1});
  const graph::CsrTopology sym =
      graph::Symmetrize(graph::BuildCsr(8, edges, false));
  Env env(sym, false, false);
  AlgoOptions opt = DefaultOptions();
  opt.kcore_k = 4;
  const KcoreResult r = KcoreAsync(env.rt(), env.graph(), opt);
  EXPECT_EQ(r.in_core, 5u);
  for (VertexId v = 5; v < 8; ++v) EXPECT_EQ(r.alive[v], 0);
}

TEST_P(TcCorpusTest, MatchesReference) {
  const NamedGraph& g = GetParam();
  const uint64_t want = RefTc(g.topo);
  const graph::CsrTopology fwd = TcPrepare(g.topo);
  Env env(fwd, false, false);
  const TcResult r = Tc(env.rt(), env.graph());
  EXPECT_EQ(r.triangles, want);
}

TEST_P(TcCorpusTest, InvariantUnderRelabeling) {
  const NamedGraph& g = GetParam();
  std::vector<VertexId> perm(g.topo.num_vertices);
  std::iota(perm.begin(), perm.end(), 0);
  std::reverse(perm.begin(), perm.end());
  const graph::CsrTopology relabeled = graph::Relabel(g.topo, perm);
  const graph::CsrTopology f1 = TcPrepare(g.topo);
  const graph::CsrTopology f2 = TcPrepare(relabeled);
  Env e1(f1, false, false);
  Env e2(f2, false, false);
  EXPECT_EQ(Tc(e1.rt(), e1.graph()).triangles,
            Tc(e2.rt(), e2.graph()).triangles);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, TcCorpusTest, testing::ValuesIn(Corpus()),
    [](const testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(TcTest, KnownCounts) {
  struct Case {
    graph::CsrTopology topo;
    uint64_t want;
  };
  const Case cases[] = {
      {graph::Complete(6), 20},   // C(6,3)
      {graph::Complete(12), 220}, // C(12,3)
      {graph::Path(20), 0},
      {graph::Grid2d(5, 5), 0},
      {graph::Star(10), 0},
      {graph::BuildCsr(3, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}}, false), 1},
  };
  for (const Case& c : cases) {
    const graph::CsrTopology fwd = TcPrepare(c.topo);
    Env env(fwd, false, false);
    EXPECT_EQ(Tc(env.rt(), env.graph()).triangles, c.want);
  }
}

}  // namespace
}  // namespace pmg::analytics
