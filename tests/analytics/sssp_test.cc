#include "pmg/analytics/sssp.h"

#include <gtest/gtest.h>

#include "pmg/analytics/bfs.h"
#include "pmg/analytics/reference.h"
#include "pmg/graph/properties.h"
#include "tests/analytics/test_util.h"

namespace pmg::analytics {
namespace {

using testutil::Corpus;
using testutil::DefaultOptions;
using testutil::Env;
using testutil::NamedGraph;

graph::CsrTopology Weighted(const graph::CsrTopology& g, uint64_t seed = 17) {
  graph::CsrTopology w = g;
  graph::AssignRandomWeights(&w, 100, seed);
  return w;
}

class SsspCorpusTest : public testing::TestWithParam<NamedGraph> {};

void ExpectDistsMatch(const runtime::NumaArray<uint64_t>& got,
                      const std::vector<uint64_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t v = 0; v < want.size(); ++v) {
    ASSERT_EQ(got[v], want[v]) << "vertex " << v;
  }
}

TEST_P(SsspCorpusTest, BellmanFordMatchesDijkstra) {
  const graph::CsrTopology topo = Weighted(GetParam().topo);
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  const std::vector<uint64_t> want = RefSssp(topo, src);
  Env env(topo, false, /*weights=*/true);
  const SsspResult r =
      SsspBellmanFord(env.rt(), env.graph(), src, DefaultOptions());
  ExpectDistsMatch(r.dist, want);
}

TEST_P(SsspCorpusTest, DenseWlMatchesDijkstra) {
  const graph::CsrTopology topo = Weighted(GetParam().topo);
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  const std::vector<uint64_t> want = RefSssp(topo, src);
  Env env(topo, false, true);
  const SsspResult r =
      SsspDenseWl(env.rt(), env.graph(), src, DefaultOptions());
  ExpectDistsMatch(r.dist, want);
}

TEST_P(SsspCorpusTest, DeltaStepMatchesDijkstra) {
  const graph::CsrTopology topo = Weighted(GetParam().topo);
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  const std::vector<uint64_t> want = RefSssp(topo, src);
  Env env(topo, false, true);
  const SsspResult r =
      SsspDeltaStep(env.rt(), env.graph(), src, DefaultOptions());
  ExpectDistsMatch(r.dist, want);
}

TEST_P(SsspCorpusTest, TriangleInequalityOverEdges) {
  const graph::CsrTopology topo = Weighted(GetParam().topo);
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  Env env(topo, false, true);
  const SsspResult r =
      SsspDeltaStep(env.rt(), env.graph(), src, DefaultOptions());
  for (VertexId v = 0; v < topo.num_vertices; ++v) {
    if (r.dist[v] == kInfDist) continue;
    for (uint64_t e = topo.index[v]; e < topo.index[v + 1]; ++e) {
      EXPECT_LE(r.dist[topo.dst[e]], r.dist[v] + topo.weight[e]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SsspCorpusTest, testing::ValuesIn(Corpus()),
    [](const testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(SsspTest, UnitWeightsReduceToBfs) {
  graph::CsrTopology topo = graph::Rmat(9, 8, 4);
  graph::AssignRandomWeights(&topo, 1, 1);  // all weights 1
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  Env env(topo, false, true);
  Env env2(topo, false, false);
  const SsspResult d =
      SsspDeltaStep(env.rt(), env.graph(), src, DefaultOptions());
  const BfsResult b =
      BfsSparseWl(env2.rt(), env2.graph(), src, DefaultOptions());
  for (VertexId v = 0; v < topo.num_vertices; ++v) {
    if (b.level[v] == kInfLevel) {
      EXPECT_EQ(d.dist[v], kInfDist);
    } else {
      EXPECT_EQ(d.dist[v], b.level[v]);
    }
  }
}

TEST(SsspTest, DeltaParameterDoesNotChangeResult) {
  graph::CsrTopology topo = Weighted(graph::Rmat(9, 8, 6), 5);
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  AlgoOptions small_delta = DefaultOptions();
  small_delta.delta = 1;
  AlgoOptions big_delta = DefaultOptions();
  big_delta.delta = 512;
  Env e1(topo, false, true);
  Env e2(topo, false, true);
  const SsspResult a = SsspDeltaStep(e1.rt(), e1.graph(), src, small_delta);
  const SsspResult b = SsspDeltaStep(e2.rt(), e2.graph(), src, big_delta);
  for (VertexId v = 0; v < topo.num_vertices; ++v) {
    EXPECT_EQ(a.dist[v], b.dist[v]);
  }
}

TEST(SsspTest, DeltaStepBeatsDenseOnHighDiameter) {
  // Figure 7c: asynchronous delta-stepping vs bulk-synchronous dense.
  graph::WebCrawlParams wp;
  wp.vertices = 15000;
  wp.communities = 12;
  wp.tail_length = 1500;
  wp.tail_width = 4;
  wp.avg_out_degree = 8;
  graph::CsrTopology topo = Weighted(graph::WebCrawl(wp), 3);
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  Env e1(topo, false, true);
  Env e2(topo, false, true);
  const SsspResult dense =
      SsspDenseWl(e1.rt(), e1.graph(), src, DefaultOptions());
  const SsspResult delta =
      SsspDeltaStep(e2.rt(), e2.graph(), src, DefaultOptions());
  EXPECT_GT(dense.time_ns, 2 * delta.time_ns);
}

TEST(SsspTest, BellmanFordRoundsBoundedByLongestPath) {
  graph::CsrTopology topo = Weighted(graph::Path(30));
  Env env(topo, false, true);
  const SsspResult r =
      SsspBellmanFord(env.rt(), env.graph(), 0, DefaultOptions());
  EXPECT_LE(r.rounds, 31u);
  EXPECT_NE(r.dist[29], kInfDist);
}

}  // namespace
}  // namespace pmg::analytics
