// Determinism regression: two identical seeded runs with tracing enabled
// must produce byte-identical trace and report files, and a third run
// that also attaches sancheck must price bit-identically to the
// trace-only runs (the seams are independent and cost nothing).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "pmg/frameworks/framework.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/scenarios.h"
#include "pmg/trace/trace_session.h"

namespace pmg::trace {
namespace {

using frameworks::App;
using frameworks::AppInputs;
using frameworks::AppRunResult;
using frameworks::FrameworkKind;
using frameworks::RunApp;
using frameworks::RunConfig;

const AppInputs& Kron30Inputs() {
  static const AppInputs* kInputs = [] {
    const scenarios::Scenario s = scenarios::MakeScenario("kron30");
    return new AppInputs(AppInputs::Prepare(s.topo, s.represented_vertices));
  }();
  return *kInputs;
}

struct TracedRun {
  AppRunResult result;
  std::string chrome;
  std::string report;
};

TracedRun RunTraced(App app, bool sanitize) {
  RunConfig cfg;
  cfg.machine = memsim::OptanePmmConfig();
  cfg.threads = 8;
  cfg.pr_max_rounds = 5;
  cfg.sanitize = sanitize;
  TraceSession session;
  cfg.trace = &session;
  TracedRun out;
  out.result = RunApp(FrameworkKind::kGalois, app, Kron30Inputs(), cfg);
  out.chrome = session.ChromeTraceJson();
  out.report = session.report().ToJson();
  return out;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TraceDeterminismTest, IdenticalRunsProduceByteIdenticalFiles) {
  for (App app : {App::kBfs, App::kPr}) {
    SCOPED_TRACE(frameworks::AppName(app));
    TraceSession first_session;
    TraceSession second_session;
    RunConfig cfg;
    cfg.machine = memsim::OptanePmmConfig();
    cfg.threads = 8;
    cfg.pr_max_rounds = 5;

    cfg.trace = &first_session;
    const AppRunResult r1 =
        RunApp(FrameworkKind::kGalois, app, Kron30Inputs(), cfg);
    cfg.trace = &second_session;
    const AppRunResult r2 =
        RunApp(FrameworkKind::kGalois, app, Kron30Inputs(), cfg);
    EXPECT_EQ(r1.time_ns, r2.time_ns);

    const std::string dir = ::testing::TempDir();
    const std::string base =
        dir + "/pmg_det_" + frameworks::AppName(app) + "_";
    std::string err;
    ASSERT_TRUE(first_session.WriteChromeTrace(base + "1.trace", &err))
        << err;
    ASSERT_TRUE(second_session.WriteChromeTrace(base + "2.trace", &err))
        << err;
    ASSERT_TRUE(first_session.WriteReportJson(base + "1.json", &err)) << err;
    ASSERT_TRUE(second_session.WriteReportJson(base + "2.json", &err))
        << err;
    const std::string trace1 = Slurp(base + "1.trace");
    EXPECT_FALSE(trace1.empty());
    EXPECT_EQ(trace1, Slurp(base + "2.trace"));
    const std::string report1 = Slurp(base + "1.json");
    EXPECT_FALSE(report1.empty());
    EXPECT_EQ(report1, Slurp(base + "2.json"));
    for (const char* suffix : {"1.trace", "2.trace", "1.json", "2.json"}) {
      std::remove((base + suffix).c_str());
    }
  }
}

TEST(TraceDeterminismTest, SancheckAttachmentDoesNotPerturbTrace) {
  for (App app : {App::kBfs, App::kPr}) {
    SCOPED_TRACE(frameworks::AppName(app));
    const TracedRun plain = RunTraced(app, /*sanitize=*/false);
    const TracedRun sanitized = RunTraced(app, /*sanitize=*/true);
    // Bit-identical pricing with the extra observer attached...
    EXPECT_EQ(plain.result.time_ns, sanitized.result.time_ns);
    EXPECT_EQ(plain.result.stats.total_ns, sanitized.result.stats.total_ns);
    EXPECT_EQ(plain.result.stats.user_ns, sanitized.result.stats.user_ns);
    EXPECT_EQ(plain.result.stats.kernel_ns,
              sanitized.result.stats.kernel_ns);
    // ...and byte-identical trace artifacts.
    EXPECT_EQ(plain.chrome, sanitized.chrome);
    EXPECT_EQ(plain.report, sanitized.report);
  }
}

}  // namespace
}  // namespace pmg::trace
