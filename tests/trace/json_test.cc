#include "pmg/trace/json.h"

#include <gtest/gtest.h>

namespace pmg::trace {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndScalars) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(-3);
  w.Key("b").UInt(18446744073709551615ull);
  w.Key("c").Bool(true);
  w.Key("d").Null();
  w.Key("e").BeginArray();
  w.String("x");
  w.Fixed(1.25, 3);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"a\":-3,\"b\":18446744073709551615,\"c\":true,\"d\":null,"
            "\"e\":[\"x\",1.250]}");
}

TEST(JsonWriterTest, EscapesControlAndQuote) {
  JsonWriter w;
  w.BeginObject();
  w.Key("k").String("a\"b\\c\nd\te\x01");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
}

TEST(JsonWriterTest, DeterministicDoubles) {
  JsonWriter a, b;
  a.BeginArray();
  a.Double(0.1);
  a.EndArray();
  b.BeginArray();
  b.Double(0.1);
  b.EndArray();
  EXPECT_EQ(a.str(), b.str());
  // %.17g round-trips through strtod exactly.
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(a.str(), &v, nullptr));
  EXPECT_EQ(v.array[0].number, 0.1);
}

TEST(JsonParserTest, ParsesNestedDocument) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::Parse(
      R"({"n": 42, "s": "hiA", "l": [1, 2.5, null, false], "o": {}})",
      &v, &err))
      << err;
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(v.Find("n")->AsUInt(), 42u);
  EXPECT_EQ(v.Find("s")->string_value, "hiA");
  ASSERT_EQ(v.Find("l")->array.size(), 4u);
  EXPECT_EQ(v.Find("l")->array[1].number, 2.5);
  EXPECT_EQ(v.Find("l")->array[2].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.Find("l")->array[3].bool_value, false);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(JsonValue::Parse("{", &v, &err));
  EXPECT_FALSE(JsonValue::Parse("[1,]", &v, &err));
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}", &v, &err));
  EXPECT_FALSE(JsonValue::Parse("tru", &v, &err));
  EXPECT_FALSE(JsonValue::Parse("[1] x", &v, &err));
  EXPECT_FALSE(err.empty());
}

TEST(JsonParserTest, RejectsExcessiveDepth) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  JsonValue v;
  std::string err;
  EXPECT_FALSE(JsonValue::Parse(deep, &v, &err));
}

TEST(JsonRoundTripTest, DumpReparsesToSameDump) {
  const std::string doc =
      R"({"a":1,"b":[true,null,"s\n"],"c":{"d":2.5,"e":-7}})";
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(doc, &v, nullptr));
  const std::string once = v.Dump();
  JsonValue again;
  ASSERT_TRUE(JsonValue::Parse(once, &again, nullptr));
  EXPECT_EQ(again.Dump(), once);
}

}  // namespace
}  // namespace pmg::trace
