#include "pmg/trace/trace_session.h"

#include <gtest/gtest.h>

#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/trace/json.h"

namespace pmg::trace {
namespace {

using memsim::Machine;
using memsim::MachineConfig;
using memsim::MachineKind;
using memsim::PagePolicy;
using memsim::Placement;
using memsim::TraceInstantKind;

MachineConfig TinyConfig(MachineKind kind = MachineKind::kMemoryMode) {
  MachineConfig c;
  c.kind = kind;
  c.name = "tiny";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(1);
  c.topology.pmm_bytes_per_socket =
      kind == MachineKind::kDramMain ? 0 : MiB(16);
  c.cpu_cache_lines = 64;
  return c;
}

PagePolicy Policy() {
  PagePolicy p;
  p.placement = Placement::kInterleaved;
  return p;
}

/// Touches `pages` small pages from two threads over `epochs` epochs.
void RunWorkload(Machine& m, memsim::RegionId r, int epochs,
                 uint64_t pages = 32) {
  const VirtAddr base = m.BaseOf(r);
  for (int e = 0; e < epochs; ++e) {
    m.BeginEpoch(2);
    for (uint64_t p = 0; p < pages; ++p) {
      m.Access(0, base + p * memsim::kSmallPageBytes, 8, AccessType::kRead);
      m.Access(1, base + p * memsim::kSmallPageBytes + 64, 8,
               AccessType::kWrite);
    }
    m.AddCompute(0, 500);
    m.EndEpoch();
  }
}

TEST(TraceSessionTest, AttachOutsideEpochOnly) {
  Machine m(TinyConfig());
  TraceSession session;
  m.BeginEpoch(1);
  EXPECT_DEATH(session.Attach(&m), "outside an epoch");
  m.EndEpoch();
  session.Attach(&m);
  m.BeginEpoch(1);
  EXPECT_DEATH(session.Detach(), "outside an epoch");
  m.EndEpoch();
  session.Detach();
}

TEST(TraceSessionTest, ConservationOnHandDrivenMachine) {
  Machine m(TinyConfig());
  TraceSession session;
  session.Attach(&m);
  const memsim::RegionId r = m.Alloc(32 * memsim::kSmallPageBytes,
                                     Policy(), "r");
  RunWorkload(m, r, 3);
  const TraceReport& report = session.report();
  EXPECT_TRUE(report.Conserves());
  EXPECT_EQ(report.attributed_ns, m.stats().user_ns + m.stats().kernel_ns);
  EXPECT_EQ(report.attributed_ns, m.stats().trace_attributed_ns);
  EXPECT_EQ(report.epochs, m.stats().epochs);
  EXPECT_EQ(report.epochs, m.stats().traced_epochs);
  EXPECT_GT(report.UserBucketNs(), 0u);
  EXPECT_GT(report.KernelBucketNs(), 0u);  // first-touch faults
  session.Detach();
  // Detached: the report is frozen and still conserves.
  EXPECT_TRUE(session.report().Conserves());
}

TEST(TraceSessionTest, TracingDoesNotChangePricing) {
  Machine plain(TinyConfig());
  Machine traced(TinyConfig());
  TraceSession session;
  session.Attach(&traced);
  for (Machine* m : {&plain, &traced}) {
    const memsim::RegionId r = m->Alloc(32 * memsim::kSmallPageBytes,
                                        Policy(), "r");
    RunWorkload(*m, r, 3);
  }
  EXPECT_EQ(plain.stats().total_ns, traced.stats().total_ns);
  EXPECT_EQ(plain.stats().user_ns, traced.stats().user_ns);
  EXPECT_EQ(plain.stats().kernel_ns, traced.stats().kernel_ns);
  EXPECT_EQ(plain.stats().accesses, traced.stats().accesses);
  session.Detach();
}

TEST(TraceSessionTest, RegionsAreNamedAndCharged) {
  Machine m(TinyConfig());
  TraceSession session;
  session.Attach(&m);
  const memsim::RegionId r = m.Alloc(32 * memsim::kSmallPageBytes,
                                     Policy(), "labels");
  RunWorkload(m, r, 2);
  const TraceReport& report = session.report();
  ASSERT_EQ(report.regions.size(), 1u);
  EXPECT_EQ(report.regions[0].name, "labels");
  EXPECT_GT(report.regions[0].accesses, 0u);
  EXPECT_GT(report.regions[0].user_ns, 0u);
  session.Detach();
}

TEST(TraceSessionTest, ThreadRowsCoverActiveThreads) {
  Machine m(TinyConfig());
  TraceSession session;
  session.Attach(&m);
  const memsim::RegionId r = m.Alloc(32 * memsim::kSmallPageBytes,
                                     Policy(), "r");
  RunWorkload(m, r, 1);
  const TraceReport& report = session.report();
  ASSERT_EQ(report.threads.size(), 2u);
  EXPECT_EQ(report.threads[0].thread, 0u);
  EXPECT_EQ(report.threads[1].thread, 1u);
  EXPECT_GT(report.threads[0].user_ns, 0u);
  EXPECT_GT(report.threads[1].user_ns, 0u);
  session.Detach();
}

TEST(TraceSessionTest, InstantEventsAreCounted) {
  TraceSession session;
  session.OnInstant(TraceInstantKind::kCheckpointWrite, 0, 100, 64);
  session.OnInstant(TraceInstantKind::kCheckpointRestore, 0, 200, 64);
  session.OnInstant(TraceInstantKind::kCrash, 0, 300, 1);
  session.OnInstant(TraceInstantKind::kQuarantine, 1, 400, 2);
  const TraceReport& report = session.report();
  EXPECT_EQ(report.checkpoint_writes, 1u);
  EXPECT_EQ(report.checkpoint_restores, 1u);
  EXPECT_EQ(report.crashes, 1u);
  EXPECT_EQ(report.quarantines, 1u);
  // And they land in the Chrome export as instant events.
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(session.ChromeTraceJson(), &v, nullptr));
  int instants = 0;
  for (const JsonValue& e : v.Find("traceEvents")->array) {
    if (e.Find("ph")->string_value == "i") ++instants;
  }
  EXPECT_EQ(instants, 4);
}

TEST(TraceSessionTest, ChromeTraceIsValidJsonWithTracks) {
  Machine m(TinyConfig());
  TraceSession session;
  session.Attach(&m);
  const memsim::RegionId r = m.Alloc(32 * memsim::kSmallPageBytes,
                                     Policy(), "r");
  RunWorkload(m, r, 2);
  session.Detach();
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::Parse(session.ChromeTraceJson(), &v, &err)) << err;
  const JsonValue* events = v.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  int slices = 0, counters = 0, metadata = 0;
  for (const JsonValue& e : events->array) {
    const std::string& ph = e.Find("ph")->string_value;
    if (ph == "X") {
      ++slices;
      EXPECT_NE(e.Find("ts"), nullptr);
      EXPECT_NE(e.Find("dur"), nullptr);
      EXPECT_NE(e.Find("tid"), nullptr);
    } else if (ph == "C") {
      ++counters;
    } else if (ph == "M") {
      ++metadata;
    }
  }
  // 2 epochs x (1 epoch slice + 2 thread slices); 2 sockets x 2 epochs
  // counters; process + epoch track + 2 thread names.
  EXPECT_EQ(slices, 6);
  EXPECT_EQ(counters, 4);
  EXPECT_EQ(metadata, 4);
}

TEST(TraceSessionTest, ReattachKeepsTimelineMonotonic) {
  TraceSession session;
  for (int attempt = 0; attempt < 2; ++attempt) {
    Machine m(TinyConfig());
    session.Attach(&m);
    const memsim::RegionId r = m.Alloc(32 * memsim::kSmallPageBytes,
                                       Policy(), "r");
    RunWorkload(m, r, 2);
    session.Detach();
  }
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(session.ChromeTraceJson(), &v, nullptr));
  // Epoch-track slices must not rewind when the second machine starts.
  double last_ts = -1.0;
  int epoch_slices = 0;
  for (const JsonValue& e : v.Find("traceEvents")->array) {
    if (e.Find("ph")->string_value != "X") continue;
    if (e.Find("tid")->AsUInt() != 1000000u) continue;
    ++epoch_slices;
    EXPECT_GE(e.Find("ts")->number, last_ts);
    last_ts = e.Find("ts")->number + e.Find("dur")->number;
  }
  EXPECT_EQ(epoch_slices, 4);
  EXPECT_EQ(session.report().epochs, 4u);
  EXPECT_TRUE(session.report().Conserves());
}

TEST(TraceSessionTest, ReportJsonIsVersionedAndRoundTrips) {
  Machine m(TinyConfig());
  TraceSession session;
  session.Attach(&m);
  const memsim::RegionId r = m.Alloc(32 * memsim::kSmallPageBytes,
                                     Policy(), "r");
  RunWorkload(m, r, 1);
  session.Detach();
  const std::string doc = session.report().ToJson();
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::Parse(doc, &v, &err)) << err;
  EXPECT_EQ(v.Find("schema_version")->AsUInt(), kTraceSchemaVersion);
  EXPECT_TRUE(v.Find("conserves")->bool_value);
  ASSERT_NE(v.Find("buckets"), nullptr);
  EXPECT_EQ(v.Find("buckets")->object.size(), memsim::kTraceBucketCount);
  // Sum of the serialized buckets equals the serialized attributed_ns.
  uint64_t sum = 0;
  for (const auto& [name, ns] : v.Find("buckets")->object) sum += ns.AsUInt();
  EXPECT_EQ(sum, v.Find("attributed_ns")->AsUInt());
}

TEST(TraceSessionTest, EpochCapDropsFromExportNotReport) {
  TraceOptions options;
  options.max_epochs = 1;
  TraceSession session(options);
  Machine m(TinyConfig());
  session.Attach(&m);
  const memsim::RegionId r = m.Alloc(32 * memsim::kSmallPageBytes,
                                     Policy(), "r");
  RunWorkload(m, r, 3);
  session.Detach();
  const TraceReport& report = session.report();
  EXPECT_EQ(report.epochs, 3u);           // aggregation sees everything
  EXPECT_EQ(report.dropped_epochs, 2u);   // export kept only the first
  EXPECT_TRUE(report.Conserves());
}

TEST(TraceSessionTest, StatsFieldsStayZeroWithoutSink) {
  Machine m(TinyConfig());
  const memsim::RegionId r = m.Alloc(32 * memsim::kSmallPageBytes,
                                     Policy(), "r");
  RunWorkload(m, r, 2);
  EXPECT_EQ(m.stats().trace_attributed_ns, 0u);
  EXPECT_EQ(m.stats().traced_epochs, 0u);
}

}  // namespace
}  // namespace pmg::trace
