// The headline invariant of pmg::trace: for every app x graph in the
// corpus, the attributed buckets sum bit-exactly to the run's reported
// user+kernel simulated time. Nothing the machine bills may escape the
// bucket taxonomy — a new cost site that forgets to attribute aborts the
// machine (PMG_CHECK in EmitEpochTrace), and this test locks the law down
// end-to-end through the framework layer, on latency-bound and
// bandwidth-bound machines, with and without the migration daemon.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/scenarios.h"
#include "pmg/trace/trace_session.h"

namespace pmg::trace {
namespace {

using frameworks::App;
using frameworks::AppInputs;
using frameworks::FrameworkKind;
using frameworks::RunApp;
using frameworks::RunConfig;

/// Runs one cell traced and checks the conservation law plus the
/// machine-side mirrors of it.
void ExpectConserves(App app, const AppInputs& inputs, RunConfig cfg,
                     const std::string& label) {
  TraceSession session;
  cfg.trace = &session;
  const auto r = RunApp(FrameworkKind::kGalois, app, inputs, cfg);
  ASSERT_TRUE(r.supported) << label;
  const TraceReport& report = session.report();
  EXPECT_TRUE(report.Conserves())
      << label << ": attributed " << report.attributed_ns << " != user "
      << report.user_ns << " + kernel " << report.kernel_ns;
  EXPECT_EQ(report.attributed_ns, report.user_ns + report.kernel_ns)
      << label;
  // MachineStats mirrors the law through an independent accumulation.
  // r.stats is the app-phase delta — the session additionally covers graph
  // construction — and because attribution matches user+kernel at every
  // epoch boundary, the delta conserves on its own.
  EXPECT_EQ(r.stats.trace_attributed_ns, r.stats.user_ns + r.stats.kernel_ns)
      << label;
  EXPECT_GE(report.attributed_ns, r.stats.trace_attributed_ns) << label;
  EXPECT_GE(report.epochs, r.stats.traced_epochs) << label;
  EXPECT_GT(r.stats.traced_epochs, 0u) << label;
  EXPECT_GT(report.epochs, 0u) << label;
}

const AppInputs& CorpusInputs(const std::string& name) {
  static std::vector<std::pair<std::string, AppInputs>>* cache =
      new std::vector<std::pair<std::string, AppInputs>>();
  for (auto& [n, in] : *cache) {
    if (n == name) return in;
  }
  const scenarios::Scenario s = scenarios::MakeScenario(name);
  cache->emplace_back(name,
                      AppInputs::Prepare(s.topo, s.represented_vertices));
  return cache->back().second;
}

RunConfig SmallConfig() {
  RunConfig cfg;
  cfg.machine = memsim::OptanePmmConfig();
  cfg.threads = 8;
  cfg.pr_max_rounds = 5;
  return cfg;
}

// Every app on every corpus graph, on the paper's Optane PMM machine.
class ConservationLaw
    : public ::testing::TestWithParam<std::tuple<std::string, App>> {};

TEST_P(ConservationLaw, HoldsOnOptanePmm) {
  const auto& [graph, app] = GetParam();
  ExpectConserves(app, CorpusInputs(graph), SmallConfig(),
                  graph + "/" + frameworks::AppName(app));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ConservationLaw,
    ::testing::Combine(::testing::Values("kron30", "clueweb12", "uk14",
                                         "iso_m100", "rmat32", "wdc12"),
                       ::testing::ValuesIn(frameworks::AllApps())),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             frameworks::AppName(std::get<1>(info.param));
    });

TEST(ConservationLawTest, HoldsOnDramMachine) {
  RunConfig cfg = SmallConfig();
  cfg.machine = memsim::DramOnlyConfig();
  for (App app : {App::kBfs, App::kPr, App::kCc}) {
    ExpectConserves(app, CorpusInputs("kron30"), cfg,
                    "dram/" + frameworks::AppName(app));
  }
}

TEST(ConservationLawTest, HoldsWithMigrationDaemon) {
  // The daemon's scan/move/remap/shootdown kernel costs must be
  // attributed too.
  RunConfig cfg = SmallConfig();
  cfg.machine.migration.enabled = true;
  cfg.page_size = memsim::PageSizeClass::k4K;
  for (App app : {App::kBfs, App::kPr}) {
    ExpectConserves(app, CorpusInputs("kron30"), cfg,
                    "migration/" + frameworks::AppName(app));
  }
}

TEST(ConservationLawTest, HoldsOnAppDirectMachine) {
  RunConfig cfg = SmallConfig();
  cfg.machine = memsim::AppDirectConfig();
  ExpectConserves(App::kBfs, CorpusInputs("kron30"), cfg, "appdirect/bfs");
}

TEST(ConservationLawTest, HoldsUnderSancheckAndFaults) {
  // All three machine seams attached at once: observer chain (sancheck),
  // fault hook (transient latency faults), and the trace sink.
  RunConfig cfg = SmallConfig();
  cfg.sanitize = true;
  std::string err;
  ASSERT_TRUE(faultsim::FaultSchedule::Parse(
      "lat@access:1000,ns=2000,count=8;seed=7", &cfg.faults, &err))
      << err;
  ExpectConserves(App::kBfs, CorpusInputs("kron30"), cfg,
                  "sanitize+faults/bfs");
}

}  // namespace
}  // namespace pmg::trace
