#include "pmg/faultsim/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "pmg/faultsim/checkpoint.h"
#include "pmg/faultsim/fault_schedule.h"
#include "pmg/faultsim/recovery.h"
#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"

namespace pmg::faultsim {
namespace {


using memsim::Machine;
using memsim::MachineConfig;
using memsim::MachineKind;


/// The small 2-socket machine of the memsim tests: 4 threads, tiny caches.
MachineConfig TinyConfig(MachineKind kind = MachineKind::kDramMain) {
  MachineConfig c;
  c.kind = kind;
  c.name = "tiny";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(8);
  c.topology.pmm_bytes_per_socket = kind == MachineKind::kDramMain ? 0
                                                                   : MiB(16);
  c.cpu_cache_lines = 64;
  return c;
}

memsim::PagePolicy TestPolicy() {
  memsim::PagePolicy policy;
  policy.placement = memsim::Placement::kInterleaved;
  return policy;
}

FaultSchedule MustParse(const std::string& spec) {
  FaultSchedule s;
  std::string error;
  EXPECT_TRUE(FaultSchedule::Parse(spec, &s, &error)) << error;
  return s;
}

// ---------------------------------------------------------------------------
// Schedule grammar.
// ---------------------------------------------------------------------------

TEST(FaultScheduleTest, ParsesFullGrammar) {
  const FaultSchedule s = MustParse(
      "ue@access:5000;ue@addr:0x1f40;"
      "lat@access:9000,ns=2000,count=16,retries=4;"
      "link@epoch:3,x=0.25,epochs=2;crash@epoch:3;crash@access:77;seed=9");
  ASSERT_EQ(s.events.size(), 6u);
  EXPECT_EQ(s.seed, 9u);
  EXPECT_TRUE(s.HasCrash());
  EXPECT_EQ(s.events[0].kind, FaultKind::kUe);
  EXPECT_EQ(s.events[0].trigger, TriggerKind::kAccess);
  EXPECT_EQ(s.events[0].at, 5000u);
  EXPECT_EQ(s.events[1].trigger, TriggerKind::kAddr);
  EXPECT_EQ(s.events[1].at, 0x1f40u);
  EXPECT_EQ(s.events[2].kind, FaultKind::kLatency);
  EXPECT_EQ(s.events[2].stall_ns, 2000);
  EXPECT_EQ(s.events[2].count, 16u);
  EXPECT_EQ(s.events[2].max_retries, 4u);
  EXPECT_EQ(s.events[3].kind, FaultKind::kLink);
  EXPECT_DOUBLE_EQ(s.events[3].factor, 0.25);
  EXPECT_EQ(s.events[3].epochs, 2u);
  EXPECT_EQ(s.events[4].trigger, TriggerKind::kEpoch);
  EXPECT_EQ(s.events[5].trigger, TriggerKind::kAccess);
}

TEST(FaultScheduleTest, EmptySpecParsesToEmptySchedule) {
  const FaultSchedule s = MustParse("");
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.HasCrash());
}

TEST(FaultScheduleTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "boom@access:1",            // unknown kind
      "ue@tick:1",                // unknown trigger
      "ue@epoch:3",               // incompatible kind/trigger
      "lat@addr:0x10",            // incompatible kind/trigger
      "link@access:1",            // incompatible kind/trigger
      "crash@addr:0x10",          // incompatible kind/trigger
      "ue@access:12abc",          // trailing junk in number
      "ue@access:",               // missing value
      "ue:5",                     // missing @trigger
      "lat@access:1,ns=0",        // zero stall
      "lat@access:1,retries=17",  // retry bound out of range
      "lat@access:1,x=0.5",       // option of another kind
      "link@epoch:1,x=0",         // factor out of (0, 1]
      "link@epoch:1,x=1.5",       // factor out of (0, 1]
      "link@epoch:1,x",           // not key=value
      "seed=zzz",                 // bad seed
  };
  for (const char* spec : bad) {
    FaultSchedule s;
    std::string error;
    EXPECT_FALSE(FaultSchedule::Parse(spec, &s, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// ---------------------------------------------------------------------------
// CRC and checkpoint store.
// ---------------------------------------------------------------------------

TEST(Crc32Test, MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 test vector.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, ChainingEqualsOneShot) {
  const char* data = "the quick brown fox jumps over the lazy dog";
  const uint64_t n = std::strlen(data);
  const uint32_t whole = Crc32(data, n);
  const uint32_t part = Crc32(data + 10, n - 10, Crc32(data, 10));
  EXPECT_EQ(part, whole);
  EXPECT_NE(whole, Crc32(data, n - 1));
}

std::vector<uint8_t> TestPayload(uint64_t n, uint8_t salt) {
  std::vector<uint8_t> p(n);
  for (uint64_t i = 0; i < n; ++i) {
    p[i] = static_cast<uint8_t>(salt + i * 7);
  }
  return p;
}

TEST(CheckpointTest, RoundTripsThroughPricedStorage) {
  Machine m(TinyConfig());
  CheckpointStore store;
  const std::vector<uint8_t> payload = TestPayload(10000, 3);
  EXPECT_FALSE(store.HasCommitted());
  store.Write(m, 2, payload.data(), payload.size());
  EXPECT_TRUE(store.HasCommitted());
  // Storage I/O must be priced: the write epoch advanced the clock and
  // counted bytes (payload chunks + the 64-byte commit record).
  EXPECT_GT(m.now(), 0);
  EXPECT_EQ(m.stats().storage_write_bytes, payload.size() + 64);

  std::vector<uint8_t> restored;
  ASSERT_TRUE(store.Restore(m, &restored));
  EXPECT_EQ(restored, payload);
  EXPECT_GE(m.stats().storage_read_bytes, payload.size() + 64);
  EXPECT_EQ(store.stats().writes_started, 1u);
  EXPECT_EQ(store.stats().writes_committed, 1u);
  EXPECT_EQ(store.stats().restores, 1u);
  EXPECT_EQ(store.stats().torn_detected, 0u);
  EXPECT_EQ(store.stats().fallbacks, 0u);
}

TEST(CheckpointTest, NewestCommittedSlotWins) {
  Machine m(TinyConfig());
  CheckpointStore store;
  const std::vector<uint8_t> p1 = TestPayload(5000, 1);
  const std::vector<uint8_t> p2 = TestPayload(5000, 2);
  const std::vector<uint8_t> p3 = TestPayload(5000, 3);
  store.Write(m, 2, p1.data(), p1.size());
  store.Write(m, 2, p2.data(), p2.size());
  store.Write(m, 2, p3.data(), p3.size());  // reuses p1's slot
  std::vector<uint8_t> restored;
  ASSERT_TRUE(store.Restore(m, &restored));
  EXPECT_EQ(restored, p3);
}

TEST(CheckpointTest, CrashMidWriteLeavesTornSlotAndFallsBack) {
  // Learn the media-op stream with a fault-free twin, then aim a crash
  // into the middle of the second write.
  uint64_t ops_after_p1 = 0;
  {
    Machine m(TinyConfig());
    FaultInjector counter((FaultSchedule()));
    m.SetFaultHook(&counter);
    CheckpointStore store;
    const std::vector<uint8_t> p1 = TestPayload(10000, 1);
    store.Write(m, 2, p1.data(), p1.size());
    ops_after_p1 = counter.media_ops();
    EXPECT_GT(ops_after_p1, 1u);  // chunks + commit record
  }

  Machine m(TinyConfig());
  FaultSchedule sched = MustParse(
      "crash@access:" + std::to_string(ops_after_p1 + 1));
  FaultInjector injector(sched);
  m.SetFaultHook(&injector);
  CheckpointStore store;
  const std::vector<uint8_t> p1 = TestPayload(10000, 1);
  const std::vector<uint8_t> p2 = TestPayload(10000, 2);
  store.Write(m, 2, p1.data(), p1.size());
  bool crashed = false;
  try {
    store.Write(m, 2, p2.data(), p2.size());
  } catch (const memsim::SimulatedCrash&) {
    crashed = true;
    m.CloseEpochIfOpen();
  }
  ASSERT_TRUE(crashed);
  EXPECT_EQ(store.stats().writes_started, 2u);
  EXPECT_EQ(store.stats().writes_committed, 1u);

  std::vector<uint8_t> restored;
  ASSERT_TRUE(store.Restore(m, &restored));
  EXPECT_EQ(restored, p1);  // the torn p2 slot was rejected
  EXPECT_GE(store.stats().torn_detected, 1u);
  EXPECT_EQ(store.stats().fallbacks, 1u);
}

TEST(CheckpointTest, SilentCorruptionFailsCrcAndFallsBack) {
  Machine m(TinyConfig());
  CheckpointStore store;
  const std::vector<uint8_t> p1 = TestPayload(9000, 1);
  const std::vector<uint8_t> p2 = TestPayload(9000, 2);
  store.Write(m, 2, p1.data(), p1.size());
  store.Write(m, 2, p2.data(), p2.size());
  store.CorruptNewest();
  std::vector<uint8_t> restored;
  ASSERT_TRUE(store.Restore(m, &restored));
  EXPECT_EQ(restored, p1);
  EXPECT_GE(store.stats().crc_failures, 1u);
  EXPECT_EQ(store.stats().fallbacks, 1u);
}

// ---------------------------------------------------------------------------
// Injection and degradation on a bare machine.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, UncorrectableErrorQuarantinesAndRemaps) {
  Machine m(TinyConfig());
  const memsim::RegionId id =
      m.Alloc(4 * memsim::kSmallPageBytes, TestPolicy(), "arr");
  const VirtAddr base = m.BaseOf(id);
  // Map every page first so the UE hits a live frame.
  m.BeginEpoch(1);
  for (uint64_t p = 0; p < 4; ++p) {
    m.Access(0, base + p * memsim::kSmallPageBytes, 8, AccessType::kRead);
  }
  m.EndEpoch();
  const PhysPage frame_before = m.page_table().region(id).pages[1].frame;

  FaultSchedule sched = MustParse(
      "ue@addr:" + std::to_string(base + memsim::kSmallPageBytes));
  FaultInjector injector(sched);
  m.SetFaultHook(&injector);
  m.FlushVolatileState();  // the poisoned line must miss the CPU cache
  const memsim::MachineStats before = m.stats();
  m.BeginEpoch(1);
  m.Access(0, base + memsim::kSmallPageBytes, 8, AccessType::kRead);
  // The page survives quarantine: later accesses hit the replacement
  // frame without further machine checks.
  m.Access(0, base + memsim::kSmallPageBytes + 64, 8, AccessType::kRead);
  m.EndEpoch();
  m.SetFaultHook(nullptr);

  const memsim::MachineStats d = m.stats() - before;
  EXPECT_EQ(d.media_ue_events, 1u);
  EXPECT_EQ(d.pages_quarantined, 1u);
  EXPECT_GT(d.machine_check_ns, 0);
  EXPECT_GT(d.kernel_ns, 0);
  EXPECT_NE(m.page_table().region(id).pages[1].frame, frame_before);
  ASSERT_EQ(injector.report().losses.size(), 1u);
  EXPECT_EQ(injector.report().losses[0].region, "arr");
  EXPECT_EQ(injector.report().losses[0].bytes, memsim::kSmallPageBytes);
  EXPECT_EQ(injector.report().ue_delivered, 1u);
}

TEST(FaultInjectorTest, TransientFaultsChargeSeededRetriesAndBackoff) {
  Machine m(TinyConfig());
  const memsim::RegionId id =
      m.Alloc(memsim::kSmallPageBytes, TestPolicy(), "arr");
  const VirtAddr base = m.BaseOf(id);
  FaultInjector injector(
      MustParse("lat@access:0,ns=1000,count=5,retries=3;seed=42"));
  m.SetFaultHook(&injector);
  m.BeginEpoch(1);
  for (int i = 0; i < 8; ++i) {
    m.Access(0, base + uint64_t{i} * 64, 8, AccessType::kRead);
  }
  m.EndEpoch();
  m.SetFaultHook(nullptr);
  EXPECT_EQ(injector.report().transient_faults, 5u);
  EXPECT_GE(injector.report().retries, 5u);   // at least one retry per op
  EXPECT_LE(injector.report().retries, 15u);  // at most three
  EXPECT_EQ(m.stats().fault_retries, injector.report().retries);
  EXPECT_EQ(m.stats().fault_stall_ns, injector.report().stall_ns);
  // Backoff of base 1000ns: r retries stall 1000 * (2^r - 1).
  EXPECT_GE(injector.report().stall_ns, 5 * 1000);
  // The stall is charged to simulated user time, so the clock moved at
  // least as far as the stall itself.
  EXPECT_GE(m.now(), injector.report().stall_ns);
}

TEST(FaultInjectorTest, RetryDrawsAreSeedDeterministic) {
  auto run = [&](uint64_t seed) {
    Machine m(TinyConfig());
    const memsim::RegionId id =
        m.Alloc(memsim::kSmallPageBytes, TestPolicy(), "arr");
    const VirtAddr base = m.BaseOf(id);
    FaultSchedule sched =
        MustParse("lat@access:0,ns=1000,count=8,retries=8");
    sched.seed = seed;
    FaultInjector injector(sched);
    m.SetFaultHook(&injector);
    m.BeginEpoch(1);
    for (int i = 0; i < 8; ++i) {
      m.Access(0, base + uint64_t{i} * 64, 8, AccessType::kRead);
    }
    m.EndEpoch();
    return injector.report().stall_ns;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // astronomically unlikely to collide
}

TEST(FaultInjectorTest, LinkDegradationPricesRemoteWindowEpochs) {
  // A machine wide enough for the bandwidth roofline to bind: 64 remote
  // threads at ~1.9 GB/s of demand each (64B per 138/4 ns) oversubscribe
  // the 100 GB/s interconnect, so scaling the link down must stretch the
  // epoch. A couple of threads could never expose the degradation — their
  // aggregate demand sits far under the link and the epoch stays
  // latency-bound.
  auto run = [&](const std::string& spec) {
    MachineConfig c = TinyConfig();
    c.topology.cores_per_socket = 64;
    Machine m(c);
    memsim::PagePolicy local0;
    local0.placement = memsim::Placement::kLocal;
    local0.preferred_node = 0;
    const memsim::RegionId id =
        m.Alloc(64 * memsim::kSmallPageBytes, local0, "arr");
    const VirtAddr base = m.BaseOf(id);
    FaultInjector injector(MustParse(spec));
    m.SetFaultHook(&injector);
    // Three epochs: every socket-1 thread streams one node-0 page.
    for (int e = 0; e < 3; ++e) {
      m.BeginEpoch(128);
      for (uint32_t t = 64; t < 128; ++t) {
        m.AccessRange(t, base + uint64_t{t - 64} * memsim::kSmallPageBytes,
                      memsim::kSmallPageBytes, AccessType::kRead);
      }
      m.EndEpoch();
      m.FlushVolatileState();
    }
    m.SetFaultHook(nullptr);
    return std::pair<SimNs, uint64_t>(m.now(),
                                      m.stats().link_degraded_epochs);
  };
  const auto [clean_ns, clean_degraded] = run("");
  const auto [slow_ns, slow_degraded] = run("link@epoch:1,x=0.25,epochs=2");
  EXPECT_EQ(clean_degraded, 0u);
  EXPECT_EQ(slow_degraded, 2u);
  EXPECT_GT(slow_ns, clean_ns);
}

TEST(FaultInjectorTest, EpochCrashThrowsAfterTheEpochCloses) {
  Machine m(TinyConfig());
  const memsim::RegionId id =
      m.Alloc(memsim::kSmallPageBytes, TestPolicy(), "arr");
  const VirtAddr base = m.BaseOf(id);
  FaultInjector injector(MustParse("crash@epoch:1"));
  m.SetFaultHook(&injector);
  m.BeginEpoch(1);
  m.Access(0, base, 8, AccessType::kRead);
  m.EndEpoch();  // epoch 0: survives
  bool crashed = false;
  SimNs at_crash = 0;
  try {
    m.BeginEpoch(1);
    m.Access(0, base + 64, 8, AccessType::kRead);
    m.EndEpoch();  // epoch 1: throws after pricing
  } catch (const memsim::SimulatedCrash& c) {
    crashed = true;
    at_crash = m.now();
    EXPECT_EQ(c.epoch, 1u);
  }
  ASSERT_TRUE(crashed);
  EXPECT_FALSE(m.in_epoch());     // the epoch closed before the throw
  EXPECT_EQ(m.stats().epochs, 2u);
  EXPECT_GT(at_crash, 0);
  EXPECT_EQ(injector.report().crashes, 1u);
  // One-shot: the consumed event must not re-fire.
  m.BeginEpoch(1);
  m.Access(0, base + 128, 8, AccessType::kRead);
  m.EndEpoch();
}

TEST(FaultInjectorTest, EmptyScheduleHookIsBitIdenticalToNoHook) {
  auto run = [&](bool attach) {
    Machine m(TinyConfig());
    FaultInjector injector((FaultSchedule()));
    if (attach) m.SetFaultHook(&injector);
    memsim::PagePolicy local0;
    local0.placement = memsim::Placement::kLocal;
    local0.preferred_node = 0;
    const memsim::RegionId id =
        m.Alloc(32 * memsim::kSmallPageBytes, local0, "arr");
    const VirtAddr base = m.BaseOf(id);
    for (int e = 0; e < 3; ++e) {
      m.BeginEpoch(4);
      for (ThreadId t = 0; t < 4; ++t) {
        m.AccessRange(t, base, 8 * memsim::kSmallPageBytes,
                      AccessType::kRead);
      }
      m.EndEpoch();
    }
    return m.now();
  };
  // A hook with nothing armed must not perturb a single simulated
  // nanosecond — including remote-bandwidth pricing at factor 1.0.
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Crash-recovery equivalence (the PR's core contract).
// ---------------------------------------------------------------------------

RecoveryConfig BaseRecoveryConfig() {
  RecoveryConfig cfg;
  cfg.machine = TinyConfig();
  cfg.threads = 4;
  cfg.algo.label_policy = TestPolicy();
  cfg.algo.pr_max_rounds = 10;
  return cfg;
}

TEST(RecoveryTest, BfsSurvivesEveryEpochCrashPointBitIdentically) {
  const graph::CsrTopology topo = graph::Grid2d(6, 6);
  RecoveryConfig clean_cfg = BaseRecoveryConfig();
  clean_cfg.checkpoint_every = 2;
  const RecoveryResult clean = RunBfsWithRecovery(topo, 0, clean_cfg);
  ASSERT_TRUE(clean.completed);
  EXPECT_EQ(clean.attempts, 1u);
  EXPECT_GT(clean.ckpt.writes_committed, 1u);
  ASSERT_GT(clean.stats.epochs, 4u);

  for (uint64_t e = 0; e < clean.stats.epochs; ++e) {
    RecoveryConfig cfg = BaseRecoveryConfig();
    cfg.checkpoint_every = 2;
    cfg.faults = MustParse("crash@epoch:" + std::to_string(e));
    const RecoveryResult r = RunBfsWithRecovery(topo, 0, cfg);
    ASSERT_TRUE(r.completed) << "crash at epoch " << e;
    EXPECT_EQ(r.attempts, 2u) << "crash at epoch " << e;
    EXPECT_EQ(r.fault.crashes, 1u);
    EXPECT_EQ(r.bfs_levels, clean.bfs_levels) << "crash at epoch " << e;
    EXPECT_EQ(r.rounds, clean.rounds) << "crash at epoch " << e;
    // Recovery always costs more than never crashing.
    EXPECT_GT(r.total_ns, clean.total_ns) << "crash at epoch " << e;
  }
}

TEST(RecoveryTest, BfsSurvivesAMidEpochCrashBitIdentically) {
  const graph::CsrTopology topo = graph::Grid2d(6, 6);
  RecoveryConfig clean_cfg = BaseRecoveryConfig();
  clean_cfg.checkpoint_every = 2;
  const RecoveryResult clean = RunBfsWithRecovery(topo, 0, clean_cfg);
  ASSERT_TRUE(clean.completed);
  ASSERT_GT(clean.fault.media_ops, 100u);

  // A crash in the middle of the media-op stream lands inside an epoch,
  // between the round boundaries the epoch sweep exercises.
  RecoveryConfig cfg = BaseRecoveryConfig();
  cfg.checkpoint_every = 2;
  cfg.faults = MustParse("crash@access:" +
                         std::to_string(clean.fault.media_ops / 2));
  const RecoveryResult r = RunBfsWithRecovery(topo, 0, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.fault.crashes, 1u);
  EXPECT_EQ(r.bfs_levels, clean.bfs_levels);
}

TEST(RecoveryTest, BfsWithoutCheckpointsRestartsFromScratch) {
  const graph::CsrTopology topo = graph::Grid2d(6, 6);
  const RecoveryResult clean = RunBfsWithRecovery(topo, 0,
                                                  BaseRecoveryConfig());
  ASSERT_TRUE(clean.completed);
  RecoveryConfig cfg = BaseRecoveryConfig();
  cfg.faults = MustParse("crash@epoch:12");
  const RecoveryResult r = RunBfsWithRecovery(topo, 0, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.restarts_from_scratch, 1u);
  EXPECT_EQ(r.restarts_from_checkpoint, 0u);
  EXPECT_EQ(r.bfs_levels, clean.bfs_levels);
}

TEST(RecoveryTest, TornNewestCheckpointFallsBackToPreviousValid) {
  const graph::CsrTopology topo = graph::Grid2d(6, 6);
  RecoveryConfig clean_cfg = BaseRecoveryConfig();
  clean_cfg.checkpoint_every = 1;
  const RecoveryResult clean = RunBfsWithRecovery(topo, 0, clean_cfg);
  ASSERT_TRUE(clean.completed);
  ASSERT_GE(clean.ckpt_op_ranges.size(), 2u);

  // Aim the crash inside the second checkpoint write: its slot tears,
  // and recovery must fall back to the first (older but valid) one.
  const OpRange target = clean.ckpt_op_ranges[1];
  ASSERT_GT(target.end_op, target.begin_op);
  RecoveryConfig cfg = BaseRecoveryConfig();
  cfg.checkpoint_every = 1;
  cfg.faults = MustParse(
      "crash@access:" +
      std::to_string(target.begin_op + (target.end_op - target.begin_op) / 2));
  const RecoveryResult r = RunBfsWithRecovery(topo, 0, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.fault.crashes, 1u);
  EXPECT_GE(r.ckpt.torn_detected, 1u);
  EXPECT_GE(r.ckpt.fallbacks, 1u);
  EXPECT_EQ(r.restarts_from_checkpoint, 1u);
  EXPECT_EQ(r.bfs_levels, clean.bfs_levels);
}

TEST(RecoveryTest, PagerankSurvivesEpochAndMidEpochCrashesBitIdentically) {
  const graph::CsrTopology topo = graph::Grid2d(6, 6);
  RecoveryConfig clean_cfg = BaseRecoveryConfig();
  clean_cfg.checkpoint_every = 3;
  const RecoveryResult clean = RunPrWithRecovery(topo, clean_cfg);
  ASSERT_TRUE(clean.completed);
  ASSERT_GT(clean.stats.epochs, 4u);
  ASSERT_FALSE(clean.pr_ranks.empty());

  // Every epoch boundary, plus one mid-epoch media-op crash point.
  std::vector<std::string> specs;
  for (uint64_t e = 0; e < clean.stats.epochs; ++e) {
    specs.push_back("crash@epoch:" + std::to_string(e));
  }
  specs.push_back("crash@access:" +
                  std::to_string(clean.fault.media_ops / 2));
  for (const std::string& spec : specs) {
    RecoveryConfig cfg = BaseRecoveryConfig();
    cfg.checkpoint_every = 3;
    cfg.faults = MustParse(spec);
    const RecoveryResult r = RunPrWithRecovery(topo, cfg);
    ASSERT_TRUE(r.completed) << spec;
    EXPECT_EQ(r.rounds, clean.rounds) << spec;
    ASSERT_EQ(r.pr_ranks.size(), clean.pr_ranks.size());
    // Bit-identical, not approximately equal: recovery replays the exact
    // FP summation order of the uninterrupted run.
    EXPECT_EQ(0, std::memcmp(r.pr_ranks.data(), clean.pr_ranks.data(),
                             clean.pr_ranks.size() * sizeof(double)))
        << spec;
  }
}

TEST(RecoveryTest, CcSurvivesEpochAndMidEpochCrashesBitIdentically) {
  const graph::CsrTopology topo = graph::Grid2d(6, 6);
  RecoveryConfig clean_cfg = BaseRecoveryConfig();
  clean_cfg.checkpoint_every = 2;
  const RecoveryResult clean = RunCcWithRecovery(topo, clean_cfg);
  ASSERT_TRUE(clean.completed);
  EXPECT_EQ(clean.attempts, 1u);
  ASSERT_GT(clean.stats.epochs, 4u);
  ASSERT_FALSE(clean.cc_labels.empty());

  // Every epoch boundary, plus one mid-epoch media-op crash point.
  std::vector<std::string> specs;
  for (uint64_t e = 0; e < clean.stats.epochs; ++e) {
    specs.push_back("crash@epoch:" + std::to_string(e));
  }
  specs.push_back("crash@access:" +
                  std::to_string(clean.fault.media_ops / 2));
  for (const std::string& spec : specs) {
    RecoveryConfig cfg = BaseRecoveryConfig();
    cfg.checkpoint_every = 2;
    cfg.faults = MustParse(spec);
    const RecoveryResult r = RunCcWithRecovery(topo, cfg);
    ASSERT_TRUE(r.completed) << spec;
    EXPECT_EQ(r.fault.crashes, 1u) << spec;
    EXPECT_EQ(r.rounds, clean.rounds) << spec;
    EXPECT_EQ(r.cc_labels, clean.cc_labels) << spec;
    EXPECT_GT(r.total_ns, clean.total_ns) << spec;
  }
}

TEST(RecoveryTest, SsspSurvivesEpochAndMidEpochCrashesBitIdentically) {
  graph::CsrTopology topo = graph::Grid2d(6, 6);
  graph::AssignRandomWeights(&topo, /*max_weight=*/9, /*seed=*/17);
  RecoveryConfig clean_cfg = BaseRecoveryConfig();
  clean_cfg.checkpoint_every = 2;
  const RecoveryResult clean = RunSsspWithRecovery(topo, 0, clean_cfg);
  ASSERT_TRUE(clean.completed);
  EXPECT_EQ(clean.attempts, 1u);
  ASSERT_GT(clean.stats.epochs, 4u);
  ASSERT_FALSE(clean.sssp_dists.empty());
  // The weighted relaxation actually happened: some distance exceeds the
  // hop count any unweighted path could produce.
  EXPECT_GT(*std::max_element(clean.sssp_dists.begin(),
                              clean.sssp_dists.end()),
            12u);

  std::vector<std::string> specs;
  for (uint64_t e = 0; e < clean.stats.epochs; ++e) {
    specs.push_back("crash@epoch:" + std::to_string(e));
  }
  specs.push_back("crash@access:" +
                  std::to_string(clean.fault.media_ops / 2));
  for (const std::string& spec : specs) {
    RecoveryConfig cfg = BaseRecoveryConfig();
    cfg.checkpoint_every = 2;
    cfg.faults = MustParse(spec);
    const RecoveryResult r = RunSsspWithRecovery(topo, 0, cfg);
    ASSERT_TRUE(r.completed) << spec;
    EXPECT_EQ(r.fault.crashes, 1u) << spec;
    EXPECT_EQ(r.rounds, clean.rounds) << spec;
    EXPECT_EQ(r.sssp_dists, clean.sssp_dists) << spec;
  }
}

TEST(RecoveryTest, InjectedRunsAreFullyDeterministic) {
  const graph::CsrTopology topo = graph::Grid2d(6, 6);
  // Fault-free twin run to learn the media-op and epoch counts, so the
  // schedule below aims its faults inside the run instead of past its end.
  RecoveryConfig clean_cfg = BaseRecoveryConfig();
  clean_cfg.checkpoint_every = 2;
  const RecoveryResult clean = RunBfsWithRecovery(topo, 0, clean_cfg);
  ASSERT_TRUE(clean.completed);
  const uint64_t ops = clean.fault.media_ops;
  const uint64_t epochs = clean.stats.epochs;
  ASSERT_GT(ops, 6u);
  ASSERT_GT(epochs, 1u);
  auto run = [&] {
    RecoveryConfig cfg = BaseRecoveryConfig();
    cfg.checkpoint_every = 2;
    char spec[160];
    std::snprintf(spec, sizeof(spec),
                  "ue@access:%llu;lat@access:%llu,ns=500,count=32,retries=3;"
                  "crash@epoch:%llu;seed=11",
                  static_cast<unsigned long long>(ops / 3),
                  static_cast<unsigned long long>(ops / 2),
                  static_cast<unsigned long long>(epochs / 2));
    cfg.faults = MustParse(spec);
    return RunBfsWithRecovery(topo, 0, cfg);
  };
  const RecoveryResult a = run();
  const RecoveryResult b = run();
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.total_ns, b.total_ns);
  EXPECT_EQ(a.bfs_levels, b.bfs_levels);
  EXPECT_EQ(a.fault.media_ops, b.fault.media_ops);
  EXPECT_EQ(a.fault.stall_ns, b.fault.stall_ns);
  EXPECT_EQ(a.ckpt.bytes_written, b.ckpt.bytes_written);
  EXPECT_EQ(a.fault.ue_delivered, 1u);
  EXPECT_EQ(a.fault.crashes, 1u);
}

TEST(RecoveryTest, GivesUpAfterMaxRestarts) {
  const graph::CsrTopology topo = graph::Grid2d(6, 6);
  RecoveryConfig cfg = BaseRecoveryConfig();
  cfg.max_restarts = 2;
  // One crash per attempt: epoch triggers re-arm... they do not — each
  // event is one-shot, so arm one crash per attempt the run can make.
  cfg.faults = MustParse("crash@epoch:0;crash@epoch:0;crash@epoch:0");
  const RecoveryResult r = RunBfsWithRecovery(topo, 0, cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.attempts, 3u);  // initial + 2 restarts
  EXPECT_EQ(r.fault.crashes, 3u);
}

// ---------------------------------------------------------------------------
// Graceful degradation through the framework driver.
// ---------------------------------------------------------------------------

TEST(FrameworkFaultTest, UncorrectableErrorsDegradeButComplete) {
  const frameworks::AppInputs inputs =
      frameworks::AppInputs::Prepare(graph::Grid2d(8, 8));
  frameworks::RunConfig cfg;
  cfg.machine = memsim::DramOnlyConfig();
  cfg.threads = 8;
  // Twin run with a never-firing fault (so the injector is attached and
  // counts) to learn how many media ops the run makes, then aim two UEs
  // inside that range.
  cfg.faults = MustParse("lat@access:0xffffffffff,ns=1,count=1");
  const frameworks::AppRunResult probe =
      RunApp(frameworks::FrameworkKind::kGbbs, frameworks::App::kBfs,
             inputs, cfg);
  ASSERT_TRUE(probe.supported);
  const uint64_t ops = probe.fault.media_ops;
  ASSERT_GT(ops, 3u);
  char spec[96];
  std::snprintf(spec, sizeof(spec), "ue@access:%llu;ue@access:%llu",
                static_cast<unsigned long long>(ops / 3),
                static_cast<unsigned long long>(2 * ops / 3));
  cfg.faults = MustParse(spec);
  const frameworks::AppRunResult r =
      RunApp(frameworks::FrameworkKind::kGbbs, frameworks::App::kBfs,
             inputs, cfg);
  ASSERT_TRUE(r.supported);
  EXPECT_FALSE(r.crashed);
  EXPECT_TRUE(r.fault_injected);
  EXPECT_EQ(r.fault.ue_delivered, 2u);
  EXPECT_EQ(r.fault.losses.size(), 2u);
  EXPECT_EQ(r.fault.crashes, 0u);
}

TEST(FrameworkFaultTest, UnrecoveredCrashIsReportedNotFatal) {
  const frameworks::AppInputs inputs =
      frameworks::AppInputs::Prepare(graph::Grid2d(8, 8));
  frameworks::RunConfig cfg;
  cfg.machine = memsim::DramOnlyConfig();
  cfg.threads = 8;
  cfg.faults = MustParse("crash@epoch:6");
  const frameworks::AppRunResult r =
      RunApp(frameworks::FrameworkKind::kGbbs, frameworks::App::kBfs,
             inputs, cfg);
  ASSERT_TRUE(r.supported);
  EXPECT_TRUE(r.crashed);
  EXPECT_EQ(r.fault.crashes, 1u);
  EXPECT_GT(r.stats.epochs, 0u);  // partial work was still accounted
}

}  // namespace
}  // namespace pmg::faultsim
