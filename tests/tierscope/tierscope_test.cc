#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/metrics/metrics_session.h"
#include "pmg/scenarios/scenarios.h"
#include "pmg/tierscope/tierscope.h"
#include "pmg/trace/json.h"
#include "pmg/whatif/journal.h"

// pmg::tierscope: the decision conservation law re-derived independently
// of the scope's own Conserves() check, attach/detach byte-identity,
// JSON round-trips, the regret pricer, and the misplacement join.

namespace pmg::tierscope {
namespace {

/// The bench_tierscope machine: two sockets, small, migration-heavy.
memsim::MachineConfig TinyConfig() {
  memsim::MachineConfig c;
  c.kind = memsim::MachineKind::kDramMain;
  c.name = "tiny";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(8);
  c.topology.pmm_bytes_per_socket = 0;
  c.cpu_cache_lines = 64;
  c.migration.enabled = true;
  c.migration.scan_interval_ns = 20000;
  return c;
}

frameworks::AppRunResult RunTiny(frameworks::App app, TierScope* scope) {
  frameworks::RunConfig cfg;
  cfg.machine = TinyConfig();
  cfg.threads = 4;
  cfg.placement = memsim::Placement::kInterleaved;
  cfg.pr_max_rounds = 10;
  cfg.tierscope = scope;
  graph::CsrTopology topo = graph::Rmat(8, 8, 7);
  graph::AssignRandomWeights(&topo, /*max_weight=*/9, /*seed=*/13);
  const frameworks::AppInputs inputs =
      frameworks::AppInputs::Prepare(std::move(topo), 0);
  return RunApp(frameworks::FrameworkKind::kGalois, app, inputs, cfg);
}

/// Re-derives every conjunct of the conservation law from the scope's
/// retained records and its folded machine-counter mirrors — the two
/// accounting paths the audit claims to reconcile — without trusting
/// TierReport::Conserves(). (AppRunResult.stats is deliberately NOT the
/// comparison target: the framework reports a kernel-only delta while
/// the scope spans attach to detach, graph construction included. The
/// bit-exact audit-vs-machine diff with both sides alive is pinned by
/// ConservationMatchesMachineCountersDirectly below.)
void ExpectConserved(const TierScope& scope, const TierReport& rep) {
  // The event-stream audit vs the machine-counter delta the scope folded
  // at detach: two independent sources inside the machine.
  EXPECT_EQ(rep.migrated_pages, rep.stats_migrations);
  EXPECT_EQ(rep.scans, rep.stats_migration_scans);
  EXPECT_EQ(rep.shootdowns, rep.stats_tlb_shootdowns);
  EXPECT_EQ(rep.placements, rep.stats_minor_faults);
  EXPECT_EQ(rep.quarantines, rep.stats_pages_quarantined);
  // Every hot page got exactly one verdict.
  EXPECT_EQ(rep.candidates, rep.migrated_pages + rep.SkippedTotal());
  // The retained scan records re-derive the same totals.
  uint64_t candidates = 0, migrated = 0, skipped = 0;
  SimNs scan_split = 0;
  for (const memsim::TierScanRecord& s : scope.scan_records()) {
    candidates += s.candidates;
    migrated += s.migrated_pages;
    for (uint64_t k : s.skipped) skipped += k;
    scan_split += s.scan_ns + s.move_ns + s.remap_ns + s.shootdown_ns;
    EXPECT_EQ(s.candidates, s.migrated_pages +
                                s.skipped[0] + s.skipped[1] + s.skipped[2] +
                                s.skipped[3]);
  }
  if (rep.dropped_scans == 0) {
    EXPECT_EQ(candidates, rep.candidates);
    EXPECT_EQ(migrated, rep.migrated_pages);
    EXPECT_EQ(skipped, rep.SkippedTotal());
    EXPECT_EQ(scan_split, rep.daemon_scan_ns + rep.daemon_move_ns +
                              rep.daemon_remap_ns + rep.daemon_shootdown_ns);
  }
  // The daemon time the epochs carried equals the per-scan split.
  SimNs epoch_daemon = 0;
  for (const memsim::TierEpochSample& e : scope.epoch_samples()) {
    epoch_daemon += e.daemon_ns;
  }
  if (rep.dropped_epochs == 0 && rep.dropped_scans == 0) {
    EXPECT_EQ(epoch_daemon, scan_split);
  }
  EXPECT_EQ(rep.epoch_daemon_ns, rep.daemon_scan_ns + rep.daemon_move_ns +
                                     rep.daemon_remap_ns +
                                     rep.daemon_shootdown_ns);
  // Only after re-deriving everything: the report's own verdict.
  EXPECT_TRUE(rep.Conserves());
}

TEST(TierScopeTest, ConservationLawAcrossFig5Corpus) {
  // The fig-5 corpus cells that fit tier-1 time: every graph x app on
  // the Optane machine with the daemon on, exactly as the figure runs
  // them. Conservation must hold bit-exactly on each.
  for (const char* name : {"kron30", "clueweb12"}) {
    const scenarios::Scenario s = scenarios::MakeScenario(name);
    const frameworks::AppInputs inputs =
        frameworks::AppInputs::Prepare(s.topo, s.represented_vertices);
    for (const frameworks::App app :
         {frameworks::App::kBfs, frameworks::App::kPr}) {
      frameworks::RunConfig cfg;
      cfg.machine = memsim::OptanePmmConfig();
      cfg.machine.migration.enabled = true;
      cfg.threads = 96;
      cfg.pr_max_rounds = 10;
      TierScope scope;
      cfg.tierscope = &scope;
      const frameworks::AppRunResult r =
          RunApp(frameworks::FrameworkKind::kGalois, app, inputs, cfg);
      ASSERT_TRUE(r.supported);
      const TierReport& rep = scope.report();
      SCOPED_TRACE(std::string(name) + "/" + frameworks::AppName(app));
      EXPECT_GT(rep.scans, 0u);
      ExpectConserved(scope, rep);
    }
  }
}

TEST(TierScopeTest, AttachingChangesNoSimulatedNumber) {
  frameworks::AppRunResult bare = RunTiny(frameworks::App::kPr, nullptr);
  TierScope scope;
  frameworks::AppRunResult scoped = RunTiny(frameworks::App::kPr, &scope);
  EXPECT_EQ(scoped.time_ns, bare.time_ns);
  EXPECT_EQ(scoped.rounds, bare.rounds);
  EXPECT_EQ(scoped.stats.ToString(), bare.stats.ToString());
  EXPECT_GT(scope.report().migrated_pages, 0u);
  ExpectConserved(scope, scope.report());
}

TEST(TierScopeTest, ConservationMatchesMachineCountersDirectly) {
  // The genuinely independent accounting path: a hand-driven machine
  // whose MachineStats are still alive to diff against the audit.
  // RunApp cannot offer this (its AppRunResult.stats is a kernel-only
  // delta and the machine dies inside it), so this is where
  // audit == machine is pinned bit-exactly against the source counters.
  memsim::MachineConfig c = TinyConfig();
  c.migration.scan_interval_ns = 0;  // scan every epoch
  c.migration.min_remote_accesses = 2;
  memsim::Machine m(c);
  TierScope scope;
  scope.Attach(&m);
  memsim::PagePolicy policy;
  policy.placement = memsim::Placement::kLocal;
  policy.preferred_node = 0;
  policy.page_size = memsim::PageSizeClass::k4K;
  const VirtAddr base =
      m.BaseOf(m.Alloc(24 * memsim::kSmallPageBytes, policy, "r"));
  // Hammer every page from a socket-1 thread so the daemon keeps finding
  // hot-remote candidates round after round.
  for (int round = 0; round < 6; ++round) {
    m.BeginEpoch(4);
    for (uint64_t pg = 0; pg < 24; ++pg) {
      for (int i = 0; i < 4; ++i) {
        m.Access(2, base + pg * memsim::kSmallPageBytes +
                        static_cast<uint64_t>(i) * 64,
                 8, AccessType::kRead);
      }
    }
    m.EndEpoch();
    m.FlushVolatileState();
  }
  const memsim::MachineStats stats = m.stats();
  scope.Detach();
  const TierReport& rep = scope.report();
  EXPECT_GT(rep.scans, 0u);
  EXPECT_GT(rep.migrated_pages, 0u);
  // Audit vs the machine's own counters, bit-exact, both sides alive.
  EXPECT_EQ(rep.migrated_pages, stats.migrations);
  EXPECT_EQ(rep.scans, stats.migration_scans);
  EXPECT_EQ(rep.shootdowns, stats.tlb_shootdowns);
  EXPECT_EQ(rep.placements, stats.minor_faults);
  EXPECT_EQ(rep.quarantines, stats.pages_quarantined);
  ExpectConserved(scope, rep);
}

TEST(TierScopeTest, ReportAndChromeEventsDeterministicAcrossReruns) {
  auto once = [](std::string* chrome) {
    TierScope scope;
    RunTiny(frameworks::App::kPr, &scope);
    trace::JsonWriter w;
    w.BeginArray();
    scope.AppendChromeEvents(&w);
    w.EndArray();
    *chrome = w.str();
    return scope.report().ToJson();
  };
  std::string chrome_a, chrome_b;
  const std::string a = once(&chrome_a);
  const std::string b = once(&chrome_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(chrome_a, chrome_b);
}

TEST(TierScopeTest, TierReportJsonRoundTrips) {
  TierScope scope;
  RunTiny(frameworks::App::kPr, &scope);
  const TierReport& rep = scope.report();
  const std::string doc = rep.ToJson();
  trace::JsonValue v;
  std::string error;
  ASSERT_TRUE(trace::JsonValue::Parse(doc, &v, &error)) << error;
  TierReport back;
  ASSERT_TRUE(TierReport::FromJson(v, &back, &error)) << error;
  EXPECT_EQ(back.ToJson(), doc);
  EXPECT_TRUE(back.Conserves());
}

TEST(TierScopeTest, TierReportFromJsonRejectsGarbage) {
  trace::JsonValue v;
  std::string error;
  ASSERT_TRUE(trace::JsonValue::Parse("{\"schema_version\":1}", &v, &error))
      << error;
  TierReport out;
  EXPECT_FALSE(TierReport::FromJson(v, &out, &error));
  EXPECT_FALSE(error.empty());
  ASSERT_TRUE(trace::JsonValue::Parse("{\"schema_version\":99}", &v, &error))
      << error;
  EXPECT_FALSE(TierReport::FromJson(v, &out, &error));
}

TEST(TierScopeTest, JournalRegretPricesRemoteTrafficDelta) {
  whatif::CostJournal journal;
  journal.timings.dram_local.seq_read_gbs = 10.0;
  journal.timings.dram_remote.seq_read_gbs = 5.0;
  whatif::EpochCost epoch;
  memsim::ChannelByteCounts ch;
  // 1000 remote sequential-read DRAM bytes: 200 ns at the remote row,
  // 100 ns at the local row => 100 ns of regret. Local-side traffic
  // must not contribute.
  ch.dram[1][0][0] = 1000;
  ch.dram[0][0][0] = 999999;
  epoch.channels.push_back(ch);
  journal.epochs.push_back(epoch);
  EXPECT_EQ(JournalRegretNs(journal), 100u);
  // Two epochs price independently and sum deterministically.
  journal.epochs.push_back(epoch);
  EXPECT_EQ(JournalRegretNs(journal), 200u);
  // A journal with no remote traffic has zero regret.
  whatif::CostJournal clean;
  clean.timings = journal.timings;
  whatif::EpochCost local_only;
  memsim::ChannelByteCounts lc;
  lc.dram[0][0][0] = 4096;
  local_only.channels.push_back(lc);
  clean.epochs.push_back(local_only);
  EXPECT_EQ(JournalRegretNs(clean), 0u);
}

TEST(TierScopeTest, MisplacementJoinRanksHotRemotePages) {
  frameworks::RunConfig cfg;
  cfg.machine = TinyConfig();
  cfg.threads = 4;
  cfg.placement = memsim::Placement::kInterleaved;
  cfg.pr_max_rounds = 10;
  TierScope scope;
  cfg.tierscope = &scope;
  metrics::MetricsSession msession;
  cfg.metrics = &msession;
  whatif::JournalRecorder recorder;
  cfg.journal = &recorder;
  graph::CsrTopology topo = graph::Rmat(8, 8, 7);
  graph::AssignRandomWeights(&topo, /*max_weight=*/9, /*seed=*/13);
  const frameworks::AppInputs inputs =
      frameworks::AppInputs::Prepare(std::move(topo), 0);
  RunApp(frameworks::FrameworkKind::kGalois, frameworks::App::kPr, inputs,
         cfg);

  const metrics::HeatReport heat = msession.BuildHeatReport();
  ASSERT_FALSE(heat.hot_pages.empty());
  const MisplacementReport rep =
      scope.BuildMisplacementReport(&heat, &recorder.journal());
  // Every heatmap hot page is either joined to a live placement or
  // counted out loud — none vanish.
  EXPECT_EQ(rep.joined_pages + rep.unjoined_pages, heat.hot_pages.size());
  // Rows are ranked by sampled remote accesses, descending.
  for (size_t i = 1; i < rep.pages.size(); ++i) {
    EXPECT_GE(rep.pages[i - 1].remote_accesses, rep.pages[i].remote_accesses);
  }
  // A misplaced row is exactly one living off its wanted node with
  // remote-majority evidence.
  for (const MisplacedPageRow& row : rep.pages) {
    EXPECT_NE(row.node, row.wanted);
    EXPECT_GT(row.remote_accesses, row.local_accesses);
  }
  // Per-structure regret attribution never exceeds the priced total.
  SimNs attributed = 0;
  for (const MisplacementStructureRow& s : rep.structures) {
    attributed += s.regret_ns;
  }
  EXPECT_LE(attributed, rep.regret_total_ns);
  // The report round-trips through its JSON.
  const std::string doc = rep.ToJson();
  trace::JsonValue v;
  std::string error;
  ASSERT_TRUE(trace::JsonValue::Parse(doc, &v, &error)) << error;
  MisplacementReport back;
  ASSERT_TRUE(MisplacementReport::FromJson(v, &back, &error)) << error;
  EXPECT_EQ(back.ToJson(), doc);
}

TEST(TierScopeTest, DetachFoldsStatsSoReportSurvivesTheMachine) {
  // After RunApp the machine is gone; the report must still reconcile
  // because Detach folded the final stats delta into the mirrors.
  TierScope scope;
  const frameworks::AppRunResult r = RunTiny(frameworks::App::kBfs, &scope);
  EXPECT_FALSE(scope.attached());
  const TierReport& rep = scope.report();
  EXPECT_EQ(rep.placements, rep.stats_minor_faults);
  // The scope covers graph construction too, so it has seen at least the
  // kernel-only faults the framework reports.
  EXPECT_GE(rep.placements, r.stats.minor_faults);
  EXPECT_TRUE(rep.Conserves());
}

}  // namespace
}  // namespace pmg::tierscope
