// Golden-file tests for the tierscope output surfaces: the --tierscope
// table, the misplacement join, the versioned "tierscope"/"misplacement"
// JSON sections, and the Chrome per-node tracks. The workload is a fixed
// interleaved Galois pagerank on a tiny two-socket machine with the
// migration daemon on (deterministic by construction), so what a user
// sees is pinned byte for byte. Regenerate after an intentional format
// change with
//
//   ./tierscope_golden_test --update-goldens

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/memsim/machine.h"
#include "pmg/metrics/metrics_session.h"
#include "pmg/scenarios/report.h"
#include "pmg/tierscope/tierscope.h"
#include "pmg/trace/json.h"
#include "pmg/whatif/journal.h"

namespace pmg::tierscope {

bool g_update_goldens = false;

namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(PMG_GOLDEN_DIR) + "/" + name;
}

/// Compares `actual` against goldens/<name>, or rewrites the golden when
/// the binary runs with --update-goldens.
void ExpectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_goldens) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with --update-goldens to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "output drifted from " << path
      << "; rerun with --update-goldens if the change is intentional";
}

/// Renders through a real FILE* so the goldens capture exactly what
/// pmg_run --tierscope and pmg_explain --tiering print.
template <typename Fn>
std::string Capture(Fn&& fn) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  fn(f);
  std::fflush(f);
  const long size = std::ftell(f);
  std::rewind(f);
  std::string out(static_cast<size_t>(size), '\0');
  const size_t read = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  EXPECT_EQ(read, out.size());
  return out;
}

/// The fixed workload behind every golden: interleaved pagerank on the
/// bench_tierscope machine, with the heatmap and journal attached so the
/// misplacement join has both of its inputs.
struct GoldenRun {
  TierScope scope;
  metrics::MetricsSession metrics;
  whatif::JournalRecorder recorder;
};

GoldenRun& Fixture() {
  static GoldenRun* run = [] {
    auto* r = new GoldenRun();
    memsim::MachineConfig mc;
    mc.kind = memsim::MachineKind::kDramMain;
    mc.name = "tiny";
    mc.topology.sockets = 2;
    mc.topology.cores_per_socket = 2;
    mc.topology.smt = 1;
    mc.topology.dram_bytes_per_socket = MiB(8);
    mc.topology.pmm_bytes_per_socket = 0;
    mc.cpu_cache_lines = 64;
    mc.migration.enabled = true;
    mc.migration.scan_interval_ns = 20000;
    frameworks::RunConfig cfg;
    cfg.machine = mc;
    cfg.threads = 4;
    cfg.placement = memsim::Placement::kInterleaved;
    cfg.pr_max_rounds = 10;
    cfg.tierscope = &r->scope;
    cfg.metrics = &r->metrics;
    cfg.journal = &r->recorder;
    graph::CsrTopology topo = graph::Rmat(8, 8, 7);
    graph::AssignRandomWeights(&topo, /*max_weight=*/9, /*seed=*/13);
    const frameworks::AppInputs inputs =
        frameworks::AppInputs::Prepare(std::move(topo), 0);
    RunApp(frameworks::FrameworkKind::kGalois, frameworks::App::kPr, inputs,
           cfg);
    return r;
  }();
  return *run;
}

MisplacementReport GoldenMisplacement() {
  GoldenRun& run = Fixture();
  const metrics::HeatReport heat = run.metrics.BuildHeatReport();
  return run.scope.BuildMisplacementReport(&heat, &run.recorder.journal());
}

TEST(TierScopeGoldenTest, TierTable) {
  const TierReport& report = Fixture().scope.report();
  ASSERT_TRUE(report.Conserves());
  ExpectMatchesGolden("tier_report.golden", Capture([&](std::FILE* f) {
                        scenarios::PrintTierReport(report, f);
                      }));
}

TEST(TierScopeGoldenTest, TierJson) {
  trace::JsonWriter w;
  w.BeginObject().Key("tierscope");
  Fixture().scope.report().AppendJson(&w);
  w.EndObject();
  const std::string doc = w.str();
  ExpectMatchesGolden("tier_report.json.golden", doc);
  // Schema contract: parseable, stable through parse -> dump -> parse,
  // and re-readable by the pmg_explain --tiering loader.
  trace::JsonValue v;
  std::string err;
  ASSERT_TRUE(trace::JsonValue::Parse(doc, &v, &err)) << err;
  const std::string dumped = v.Dump();
  trace::JsonValue again;
  ASSERT_TRUE(trace::JsonValue::Parse(dumped, &again, &err)) << err;
  EXPECT_EQ(again.Dump(), dumped);
  TierReport back;
  ASSERT_TRUE(TierReport::FromJson(*v.Find("tierscope"), &back, &err)) << err;
  EXPECT_TRUE(back.Conserves());
}

TEST(TierScopeGoldenTest, MisplacementTable) {
  const MisplacementReport report = GoldenMisplacement();
  ExpectMatchesGolden("misplacement.golden", Capture([&](std::FILE* f) {
                        scenarios::PrintMisplacementReport(report, f);
                      }));
}

TEST(TierScopeGoldenTest, MisplacementJson) {
  trace::JsonWriter w;
  w.BeginObject().Key("misplacement");
  GoldenMisplacement().AppendJson(&w);
  w.EndObject();
  const std::string doc = w.str();
  ExpectMatchesGolden("misplacement.json.golden", doc);
  trace::JsonValue v;
  std::string err;
  ASSERT_TRUE(trace::JsonValue::Parse(doc, &v, &err)) << err;
  MisplacementReport back;
  ASSERT_TRUE(
      MisplacementReport::FromJson(*v.Find("misplacement"), &back, &err))
      << err;
  EXPECT_EQ(back.pages.size(), GoldenMisplacement().pages.size());
}

TEST(TierScopeGoldenTest, ChromeTracks) {
  // The per-node occupancy counters, daemon scan slices, and migration
  // flow/shootdown instants, exactly as they land inside --trace output.
  trace::JsonWriter w;
  w.BeginArray();
  Fixture().scope.AppendChromeEvents(&w);
  w.EndArray();
  ExpectMatchesGolden("tier_chrome.json.golden", w.str());
}

}  // namespace
}  // namespace pmg::tierscope

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-goldens") {
      pmg::tierscope::g_update_goldens = true;
    }
  }
  return RUN_ALL_TESTS();
}
