// Unit tests for the perf gate's diff engine: threshold parsing, row
// identity matching, the gated-vs-informational field split, and —
// critically — that a synthetic regression at or past the threshold
// fails the gate while vanished measurements never pass silently.

#include <gtest/gtest.h>

#include <string>

#include "pmg/metrics/perf_diff.h"

namespace pmg::metrics {
namespace {

std::string Doc(const std::string& bench, const std::string& rows) {
  return "{\"schema_version\":1,\"bench\":\"" + bench +
         "\",\"rows\":[" + rows + "]}";
}

PerfDiffResult Diff(const std::string& baseline, const std::string& current,
                    double threshold = 0.05) {
  PerfDiffResult result;
  DiffBenchText(baseline, current, "test", threshold, &result);
  return result;
}

TEST(ParseThresholdTest, PercentAndFractionForms) {
  double v = -1.0;
  EXPECT_TRUE(ParseThreshold("5%", &v));
  EXPECT_DOUBLE_EQ(v, 0.05);
  EXPECT_TRUE(ParseThreshold("0.05", &v));
  EXPECT_DOUBLE_EQ(v, 0.05);
  EXPECT_TRUE(ParseThreshold("12.5%", &v));
  EXPECT_DOUBLE_EQ(v, 0.125);
  EXPECT_TRUE(ParseThreshold("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ParseThresholdTest, RejectsGarbageAndNegatives) {
  double v = 0.0;
  EXPECT_FALSE(ParseThreshold("", &v));
  EXPECT_FALSE(ParseThreshold("five", &v));
  EXPECT_FALSE(ParseThreshold("%", &v));
  EXPECT_FALSE(ParseThreshold("-5%", &v));
  EXPECT_FALSE(ParseThreshold("-0.01", &v));
  EXPECT_FALSE(ParseThreshold("5%%", &v));
  EXPECT_FALSE(ParseThreshold("5% extra", &v));
}

TEST(PerfDiffTest, IdenticalDocumentsPass) {
  const std::string doc = Doc(
      "fig5", "{\"graph\":\"kron30\",\"app\":\"bfs\",\"time_ns\":1000000}");
  const PerfDiffResult r = Diff(doc, doc);
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].row, "graph=kron30 app=bfs");
  EXPECT_EQ(r.deltas[0].field, "time_ns");
  EXPECT_DOUBLE_EQ(r.deltas[0].ratio, 1.0);
  EXPECT_TRUE(r.deltas[0].gated);
  EXPECT_FALSE(r.deltas[0].regression);
}

TEST(PerfDiffTest, RegressionPastThresholdFailsGate) {
  const PerfDiffResult r =
      Diff(Doc("b", "{\"app\":\"bfs\",\"time_ns\":1000000}"),
           Doc("b", "{\"app\":\"bfs\",\"time_ns\":1080000}"));  // +8%
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.regressions, 1u);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_TRUE(r.deltas[0].regression);
  EXPECT_DOUBLE_EQ(r.deltas[0].ratio, 1.08);
}

TEST(PerfDiffTest, RegressionWithinThresholdPasses) {
  const PerfDiffResult r =
      Diff(Doc("b", "{\"app\":\"bfs\",\"time_ns\":1000000}"),
           Doc("b", "{\"app\":\"bfs\",\"time_ns\":1030000}"));  // +3%
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.regressions, 0u);
}

TEST(PerfDiffTest, ImprovementIsNeverARegression) {
  const PerfDiffResult r =
      Diff(Doc("b", "{\"app\":\"bfs\",\"time_ns\":1000000}"),
           Doc("b", "{\"app\":\"bfs\",\"time_ns\":500000}"));  // -50%
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(r.deltas[0].ratio, 0.5);
}

TEST(PerfDiffTest, NonGatedNumericFieldNeverRegresses) {
  // vs_best triples, but it has no _ns suffix: informational only.
  const PerfDiffResult r =
      Diff(Doc("b", "{\"app\":\"bfs\",\"vs_best\":1.0}"),
           Doc("b", "{\"app\":\"bfs\",\"vs_best\":3.0}"));
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_FALSE(r.deltas[0].gated);
  EXPECT_FALSE(r.deltas[0].regression);
}

TEST(PerfDiffTest, MissingRowIsAFailure) {
  const PerfDiffResult r =
      Diff(Doc("b", "{\"app\":\"bfs\",\"time_ns\":100}"
                    ",{\"app\":\"pr\",\"time_ns\":200}"),
           Doc("b", "{\"app\":\"bfs\",\"time_ns\":100}"));
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("app=pr"), std::string::npos);
}

TEST(PerfDiffTest, MissingFieldIsAFailure) {
  const PerfDiffResult r =
      Diff(Doc("b", "{\"app\":\"bfs\",\"time_ns\":100,\"mem_ns\":50}"),
           Doc("b", "{\"app\":\"bfs\",\"time_ns\":100}"));
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("mem_ns"), std::string::npos);
}

TEST(PerfDiffTest, NewRowAndNewFieldAreNotes) {
  const PerfDiffResult r =
      Diff(Doc("b", "{\"app\":\"bfs\",\"time_ns\":100}"),
           Doc("b", "{\"app\":\"bfs\",\"time_ns\":100,\"extra\":7}"
                    ",{\"app\":\"cc\",\"time_ns\":300}"));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.notes.size(), 2u);
}

TEST(PerfDiffTest, ZeroBaselineWithNonZeroCurrentGates) {
  // A measurement appearing from zero cannot produce a finite ratio; the
  // engine forces it past any threshold.
  const PerfDiffResult r =
      Diff(Doc("b", "{\"app\":\"bfs\",\"time_ns\":0}"),
           Doc("b", "{\"app\":\"bfs\",\"time_ns\":100}"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.regressions, 1u);
}

TEST(PerfDiffTest, BothZeroIsAUnitRatio) {
  const PerfDiffResult r = Diff(Doc("b", "{\"app\":\"bfs\",\"time_ns\":0}"),
                                Doc("b", "{\"app\":\"bfs\",\"time_ns\":0}"));
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(r.deltas[0].ratio, 1.0);
}

TEST(PerfDiffTest, BenchNameMismatchFails) {
  const PerfDiffResult r = Diff(Doc("fig5", "{\"time_ns\":1}"),
                                Doc("fig6", "{\"time_ns\":1}"));
  EXPECT_FALSE(r.ok());
}

TEST(PerfDiffTest, MalformedCurrentIsAFailure) {
  const PerfDiffResult r = Diff(Doc("b", "{\"time_ns\":1}"), "not json");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.failures.empty());
}

TEST(PerfDiffTest, BoolFieldsJoinTheIdentity) {
  // Flipping a bool renames the row: old identity missing (failure), new
  // identity noted.
  const PerfDiffResult r =
      Diff(Doc("b", "{\"app\":\"bfs\",\"huge\":true,\"time_ns\":100}"),
           Doc("b", "{\"app\":\"bfs\",\"huge\":false,\"time_ns\":100}"));
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("huge=true"), std::string::npos);
}

TEST(PerfDiffTest, UnknownTopLevelSectionsAreNotesNotFailures) {
  // A report that grew a section this differ does not know (the whatif
  // block) still passes against a pre-section baseline — one note each
  // direction, never a failure.
  const std::string base = Doc("b", "{\"app\":\"bfs\",\"time_ns\":100}");
  const std::string cur =
      "{\"schema_version\":1,\"bench\":\"b\","
      "\"rows\":[{\"app\":\"bfs\",\"time_ns\":100}],"
      "\"whatif\":{\"total_ns\":100,\"levers\":[]}}";

  const PerfDiffResult forward = Diff(base, cur);
  EXPECT_TRUE(forward.ok());
  ASSERT_EQ(forward.notes.size(), 1u);
  EXPECT_EQ(forward.notes[0],
            "bench 'b': unknown section 'whatif' in current report (ignored)");

  const PerfDiffResult backward = Diff(cur, base);
  EXPECT_TRUE(backward.ok());
  ASSERT_EQ(backward.notes.size(), 1u);
  EXPECT_EQ(backward.notes[0],
            "bench 'b': section 'whatif' from baseline absent in current "
            "report (ignored)");

  // Both sides carrying the section is not noteworthy at all.
  EXPECT_TRUE(Diff(cur, cur).notes.empty());
}

TEST(PerfDiffTest, AccumulatesAcrossDocuments) {
  PerfDiffResult r;
  DiffBenchText(Doc("b1", "{\"time_ns\":100}"), Doc("b1", "{\"time_ns\":100}"),
                "b1", 0.05, &r);
  DiffBenchText(Doc("b2", "{\"time_ns\":100}"), Doc("b2", "{\"time_ns\":120}"),
                "b2", 0.05, &r);
  EXPECT_EQ(r.deltas.size(), 2u);
  EXPECT_EQ(r.regressions, 1u);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace pmg::metrics
