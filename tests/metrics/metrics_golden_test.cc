// Golden-file tests for the pmg::metrics output surfaces: Prometheus
// text, the versioned JSON report, and the folded-stack profile. The
// workload is a fixed synthetic access pattern on the simulated machine,
// so "enabled instrumentation is byte-identical across runs" is enforced
// twice: in-process (two runs compared) and against the committed golden
// (across builds and machines). Regenerate after an intentional format
// change with
//
//   ./metrics_golden_test --update-goldens

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/metrics/metrics_session.h"
#include "pmg/metrics/profiler.h"
#include "pmg/trace/json.h"

namespace pmg::metrics {

bool g_update_goldens = false;

namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(PMG_GOLDEN_DIR) + "/" + name;
}

/// Compares `actual` against goldens/<name>, or rewrites the golden when
/// the binary runs with --update-goldens.
void ExpectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_goldens) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with --update-goldens to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "output drifted from " << path
      << "; rerun with --update-goldens if the change is intentional";
}

struct GoldenOutputs {
  std::string prom;
  std::string json;
  std::string folded;
};

/// A fixed two-epoch workload with two labeled structures, mixed
/// read/write traffic, a skewed page-heat distribution, and profiler
/// scopes spanning the epochs. Everything downstream of this is required
/// to be deterministic.
GoldenOutputs RunGoldenWorkload() {
  MetricsOptions opt;
  opt.heat_top_k = 8;
  opt.profile = true;
  opt.profile_interval_ns = 10 * 1000;
  MetricsSession session(opt);

  memsim::Machine m(memsim::OptanePmmConfig());
  session.Attach(&m);
  memsim::PagePolicy policy;
  const uint64_t kIndexBytes = 8 * memsim::kSmallPageBytes;
  const uint64_t kDstBytes = 32 * memsim::kSmallPageBytes;
  const VirtAddr index = m.BaseOf(m.Alloc(kIndexBytes, policy, "g.index"));
  const VirtAddr dst = m.BaseOf(m.Alloc(kDstBytes, policy, "g.dst"));

  {
    PMG_PROF_SCOPE("golden.load");
    m.BeginEpoch(2);
    for (uint64_t i = 0; i < 512; ++i) {
      m.Access(static_cast<ThreadId>(i % 2), index + (i * 64) % kIndexBytes,
               8, AccessType::kRead);
    }
    m.EndEpoch();
  }
  {
    PMG_PROF_SCOPE("golden.run");
    PMG_PROF_SCOPE("relax");
    m.BeginEpoch(2);
    for (uint64_t i = 0; i < 2048; ++i) {
      // A skewed stride: page 0 of g.dst stays far hotter than the tail.
      const uint64_t off =
          (i % 4 == 0) ? (i * 4096 + i * 64) % kDstBytes : (i * 8) % 4096;
      m.Access(static_cast<ThreadId>(i % 2), dst + off, 8,
               i % 5 == 0 ? AccessType::kWrite : AccessType::kRead);
    }
    m.EndEpoch();
  }
  session.Detach();

  GoldenOutputs out;
  out.prom = session.PrometheusText();
  out.json = session.ReportJson();
  out.folded = session.ProfileFoldedText();
  return out;
}

TEST(MetricsGoldenTest, OutputsAreIdenticalAcrossRuns) {
  const GoldenOutputs a = RunGoldenWorkload();
  const GoldenOutputs b = RunGoldenWorkload();
  EXPECT_EQ(a.prom, b.prom);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.folded, b.folded);
}

TEST(MetricsGoldenTest, PrometheusText) {
  ExpectMatchesGolden("metrics_prom.golden", RunGoldenWorkload().prom);
}

TEST(MetricsGoldenTest, ReportJson) {
  const std::string doc = RunGoldenWorkload().json;
  ExpectMatchesGolden("metrics_report.json.golden", doc);
  // Schema contract: versioned, parseable, and stable through a
  // parse -> dump -> parse cycle.
  trace::JsonValue v;
  std::string err;
  ASSERT_TRUE(trace::JsonValue::Parse(doc, &v, &err)) << err;
  EXPECT_EQ(v.Find("schema_version")->AsUInt(), kMetricsSchemaVersion);
  ASSERT_NE(v.Find("heatmap"), nullptr);
  ASSERT_NE(v.Find("counters"), nullptr);
  ASSERT_NE(v.Find("profile"), nullptr);
  const std::string dumped = v.Dump();
  trace::JsonValue again;
  ASSERT_TRUE(trace::JsonValue::Parse(dumped, &again, &err)) << err;
  EXPECT_EQ(again.Dump(), dumped);
}

TEST(MetricsGoldenTest, ProfileFolded) {
  const std::string folded = RunGoldenWorkload().folded;
  ExpectMatchesGolden("metrics_profile.folded.golden", folded);
  // The scopes wrapping the two epochs must both appear, the nested one
  // as a two-frame stack.
  EXPECT_NE(folded.find("golden.load "), std::string::npos);
  EXPECT_NE(folded.find("golden.run;relax "), std::string::npos);
}

}  // namespace
}  // namespace pmg::metrics

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-goldens") {
      pmg::metrics::g_update_goldens = true;
    }
  }
  return RUN_ALL_TESTS();
}
