// pmg::metrics unit tests: histogram edge cases (zero observations,
// single bucket, saturation at the max bucket, quantile interpolation at
// bucket boundaries), hook-table seam behavior, profiler stack folding,
// heatmap top-K tie-break determinism across runs / thread counts /
// allocation orders, and an independent re-derivation of the
// conservation laws the session PMG_CHECKs internally.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/metrics/heatmap.h"
#include "pmg/metrics/hooks.h"
#include "pmg/metrics/metrics_session.h"
#include "pmg/metrics/profiler.h"
#include "pmg/metrics/registry.h"

namespace pmg::metrics {
namespace {

// --- Log2 bucketing -------------------------------------------------------

TEST(Log2BucketTest, Boundaries) {
  EXPECT_EQ(Log2Bucket(0), 0u);
  EXPECT_EQ(Log2Bucket(1), 1u);
  EXPECT_EQ(Log2Bucket(2), 2u);
  EXPECT_EQ(Log2Bucket(3), 2u);
  EXPECT_EQ(Log2Bucket(4), 3u);
  EXPECT_EQ(Log2Bucket(7), 3u);
  EXPECT_EQ(Log2Bucket(8), 4u);
  EXPECT_EQ(Log2Bucket(1ull << 62), 63u);
  // The top bucket saturates instead of indexing out of range.
  EXPECT_EQ(Log2Bucket(1ull << 63), 64u);
  EXPECT_EQ(Log2Bucket(UINT64_MAX), 64u);
}

// --- Histogram edge cases -------------------------------------------------

TEST(HistogramTest, ZeroObservations) {
  Registry reg;
  const MetricId h = reg.AddHistogram("h", "help");
  const HistogramSnapshot snap = reg.HistogramValue(h);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.Quantile(0.0), 0.0);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Quantile(1.0), 0.0);
}

TEST(HistogramTest, SingleObservationReturnsBucketLower) {
  Registry reg;
  const MetricId h = reg.AddHistogram("h", "help");
  reg.Observe(h, 6);  // bucket 3: [4, 7]
  const HistogramSnapshot snap = reg.HistogramValue(h);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 6u);
  EXPECT_EQ(snap.buckets[3], 1u);
  // A single-count bucket has no rank spread: every quantile is the
  // bucket's lower bound.
  EXPECT_EQ(snap.Quantile(0.0), 4.0);
  EXPECT_EQ(snap.Quantile(0.99), 4.0);
  EXPECT_EQ(snap.Quantile(1.0), 4.0);
}

TEST(HistogramTest, SingleBucketInterpolation) {
  Registry reg;
  const MetricId h = reg.AddHistogram("h", "help");
  // Three observations, all in bucket 3 ([4, 7]).
  reg.Observe(h, 5);
  reg.Observe(h, 5);
  reg.Observe(h, 5);
  const HistogramSnapshot snap = reg.HistogramValue(h);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.buckets[3], 3u);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 5.5);  // midway through [4, 7]
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 7.0);
}

TEST(HistogramTest, SaturatesAtMaxBucket) {
  Registry reg;
  const MetricId h = reg.AddHistogram("h", "help");
  reg.Observe(h, 1ull << 63);
  reg.Observe(h, UINT64_MAX);
  const HistogramSnapshot snap = reg.HistogramValue(h);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets[kHistogramBuckets - 1], 2u);
  // Rank 0 is the bucket's lower bound (2^63), rank 1 its saturated
  // upper bound (~2^64).
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 9.223372036854775808e18);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 1.8446744073709552e19);
}

TEST(HistogramTest, QuantileExactAtBucketBoundaries) {
  Registry reg;
  const MetricId h = reg.AddHistogram("h", "help");
  // Two in bucket 1 ([1, 1]), two in bucket 4 ([8, 15]); ranks 0..3.
  reg.Observe(h, 1);
  reg.Observe(h, 1);
  reg.Observe(h, 8);
  reg.Observe(h, 9);
  const HistogramSnapshot snap = reg.HistogramValue(h);
  ASSERT_EQ(snap.count, 4u);
  // Rank 1 (q = 1/3) is the last rank of bucket 1: exactly its edge.
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0 / 3.0), 1.0);
  // Rank 2 (q = 2/3) is the first rank of bucket 4: exactly 8.
  EXPECT_DOUBLE_EQ(snap.Quantile(2.0 / 3.0), 8.0);
  // Rank 3 (q = 1) is the far edge of bucket 4.
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 15.0);
  // Out-of-range q clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(snap.Quantile(-1.0), snap.Quantile(0.0));
  EXPECT_DOUBLE_EQ(snap.Quantile(2.0), snap.Quantile(1.0));
}

// --- Registry basics ------------------------------------------------------

TEST(RegistryTest, ShardedCounterMergesAllThreads) {
  Registry reg;
  const MetricId c = reg.AddCounter("c", "help");
  for (ThreadId t = 0; t < 16; ++t) reg.AddShard(c, t, 1);
  EXPECT_EQ(reg.CounterValue(c), 16u);
}

TEST(RegistryTest, GaugeHoldsLastValueIncludingNegative) {
  Registry reg;
  const MetricId g = reg.AddGauge("g", "help");
  reg.GaugeSet(g, 42);
  EXPECT_EQ(reg.GaugeValue(g), 42);
  reg.GaugeSet(g, -7);
  EXPECT_EQ(reg.GaugeValue(g), -7);
}

TEST(RegistryTest, PrometheusTextIsDeterministic) {
  auto build = [] {
    Registry reg;
    const MetricId c = reg.AddCounter("zzz_total", "last name, registered "
                                                   "first");
    const MetricId g = reg.AddGauge("aaa_gauge", "first name");
    const MetricId h = reg.AddHistogram("mmm_hist", "middle");
    reg.Add(c, 5);
    reg.GaugeSet(g, 3);
    reg.Observe(h, 9);
    return reg.PrometheusText();
  };
  const std::string a = build();
  EXPECT_EQ(a, build());
  // Families are sorted by name, not registration order.
  EXPECT_LT(a.find("aaa_gauge"), a.find("mmm_hist"));
  EXPECT_LT(a.find("mmm_hist"), a.find("zzz_total"));
}

// --- Exemplars ------------------------------------------------------------

TEST(RegistryTest, ExemplarReplacementIsOrderIndependent) {
  // Largest value wins the bucket; ties break to the lowest exemplar id —
  // so any observation order retains the same exemplar set.
  auto build = [](const int order[4]) {
    Registry reg;
    const MetricId h = reg.AddHistogramWithExemplars("h", "help");
    // Two bucket-3 observations (4 and 6) and two tied bucket-4 ones.
    const uint64_t values[4] = {4, 6, 9, 9};
    const uint64_t ids[4] = {40, 41, 90, 7};
    for (int i = 0; i < 4; ++i) {
      reg.ObserveExemplar(h, values[order[i]], ids[order[i]]);
    }
    return reg.HistogramExemplars(h);
  };
  const int forward[4] = {0, 1, 2, 3};
  const int backward[4] = {3, 2, 1, 0};
  const std::vector<HistogramExemplar> a = build(forward);
  const std::vector<HistogramExemplar> b = build(backward);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].bucket, 3u);  // [4, 7]: 6 beats 4.
  EXPECT_EQ(a[0].value, 6u);
  EXPECT_EQ(a[0].exemplar, 41u);
  EXPECT_EQ(a[1].bucket, 4u);  // [8, 15]: the 9 == 9 tie goes to id 7.
  EXPECT_EQ(a[1].value, 9u);
  EXPECT_EQ(a[1].exemplar, 7u);
  ASSERT_EQ(b.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(b[i].bucket, a[i].bucket);
    EXPECT_EQ(b[i].value, a[i].value);
    EXPECT_EQ(b[i].exemplar, a[i].exemplar);
  }
}

TEST(RegistryTest, PlainHistogramsHaveNoExemplarsAndUnchangedText) {
  // A plain histogram exposes no exemplars and its exposition bytes stay
  // exactly as they were before exemplars existed; only the opt-in family
  // grows the OpenMetrics-style suffix on its bucket rows.
  Registry reg;
  const MetricId plain = reg.AddHistogram("plain_hist", "plain");
  const MetricId fancy = reg.AddHistogramWithExemplars("tagged_hist", "ex");
  reg.Observe(plain, 9);
  reg.ObserveExemplar(fancy, 9, 1234);
  EXPECT_TRUE(reg.HistogramExemplars(plain).empty());
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("plain_hist_bucket{le=\"15\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tagged_hist_bucket{le=\"15\"} 1 "
                      "# {exemplar_id=\"1234\"} 9\n"),
            std::string::npos);
  // The suffix never leaks onto the plain family's rows.
  const size_t plain_at = text.find("plain_hist_bucket");
  const size_t plain_end = text.find('\n', plain_at);
  EXPECT_EQ(text.substr(plain_at, plain_end - plain_at)
                .find("exemplar_id"),
            std::string::npos);
}

TEST(RegistryTest, ExemplarsComeBackAscendingByBucket) {
  Registry reg;
  const MetricId h = reg.AddHistogramWithExemplars("h", "help");
  EXPECT_TRUE(reg.HistogramExemplars(h).empty());
  const uint64_t values[] = {1ull << 20, 3, 1ull << 40, 0, 100};
  for (uint64_t v : values) reg.ObserveExemplar(h, v, v + 1);
  const std::vector<HistogramExemplar> got = reg.HistogramExemplars(h);
  ASSERT_EQ(got.size(), 5u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GT(got[i].bucket, got[i - 1].bucket);
  }
  for (const HistogramExemplar& e : got) {
    EXPECT_EQ(Log2Bucket(e.value), e.bucket);
    EXPECT_EQ(e.exemplar, e.value + 1);
  }
}

// --- Hook seam ------------------------------------------------------------

TEST(HooksTest, DisabledCallsAreNoOps) {
  ASSERT_FALSE(HooksActive());
  // Must not crash or touch anything with no table installed.
  CountWorklistPush(0);
  CountWorklistPop(3, true);
  ObserveWorklistOccupancy(100);
}

TEST(HooksTest, InstalledTableCountsIntoRegistry) {
  Registry reg;
  HookTable table;
  table.registry = &reg;
  table.worklist_pushes = reg.AddCounter("pushes", "");
  table.worklist_pops = reg.AddCounter("pops", "");
  table.worklist_steals = reg.AddCounter("steals", "");
  table.worklist_occupancy = reg.AddHistogram("occupancy", "");
  InstallHooks(&table);
  EXPECT_TRUE(HooksActive());
  CountWorklistPush(0);
  CountWorklistPush(1);
  CountWorklistPop(2, /*stolen=*/false);
  CountWorklistPop(3, /*stolen=*/true);
  ObserveWorklistOccupancy(9);
  UninstallHooks(&table);
  EXPECT_FALSE(HooksActive());
  EXPECT_EQ(reg.CounterValue(table.worklist_pushes), 2u);
  EXPECT_EQ(reg.CounterValue(table.worklist_pops), 2u);
  EXPECT_EQ(reg.CounterValue(table.worklist_steals), 1u);
  EXPECT_EQ(reg.HistogramValue(table.worklist_occupancy).count, 1u);
  // After uninstall the calls are no-ops again.
  CountWorklistPush(0);
  EXPECT_EQ(reg.CounterValue(table.worklist_pushes), 2u);
}

// --- Profiler -------------------------------------------------------------

TEST(ProfilerTest, SamplesScopedStacksOnSimulatedTime) {
  Profiler p(/*sample_interval_ns=*/100);
  p.Activate();
  {
    PMG_PROF_SCOPE("outer");
    {
      PMG_PROF_SCOPE("inner");
      p.SampleUpTo(250);  // samples at 100 and 200
    }
    p.SampleUpTo(320);  // sample at 300
  }
  p.SampleUpTo(410);  // sample at 400, stack empty
  p.Deactivate();
  EXPECT_EQ(p.sample_count(), 4u);
  EXPECT_EQ(p.FoldedText(),
            "(unscoped) 1\nouter 1\nouter;inner 2\n");
}

TEST(ProfilerTest, ScopesAreNoOpsWithNoActiveProfiler) {
  // No profiler active: the macro must be safe to execute.
  PMG_PROF_SCOPE("orphan");
  SUCCEED();
}

// --- Heatmap determinism --------------------------------------------------

/// Serializes every field of a HeatReport so byte-equality means
/// report-equality.
std::string DumpHeat(const HeatReport& r) {
  std::string out;
  auto u64 = [&](uint64_t v) { out += std::to_string(v) + "|"; };
  u64(r.attributed);
  u64(r.unattributed);
  u64(r.touched_pages);
  u64(r.dropped_pages);
  u64(r.dropped_accesses);
  for (const HeatStructureRow& s : r.structures) {
    out += s.name + ":";
    u64(s.accesses);
    u64(s.bytes);
  }
  for (const HeatNodeRow& n : r.nodes) {
    u64(n.node);
    u64(n.accesses);
  }
  for (const HeatPageSizeRow& ps : r.page_sizes) {
    u64(ps.page_bytes);
    u64(ps.accesses);
  }
  for (size_t b = 0; b < kHistogramBuckets; ++b) u64(r.heat_bins[b]);
  for (const HotPageRow& h : r.hot_pages) {
    out += h.structure + ":";
    u64(h.page_index);
    u64(h.page_bytes);
    u64(h.node);
    u64(h.accesses);
  }
  return out;
}

/// A workload in which every page of both regions ties at two accesses,
/// so the top-K table is decided purely by the tie-break order. The
/// allocation order, access order, and virtual-thread spread vary; the
/// report must not.
std::string RunTiedWorkload(bool swap_alloc_order, uint32_t threads) {
  MetricsOptions opt;
  opt.heat_top_k = 4;
  MetricsSession session(opt);
  memsim::Machine m(memsim::DramOnlyConfig());
  session.Attach(&m);

  memsim::PagePolicy policy;
  // Pin every page to node 0: interleaved placement rotates per region
  // base, so the alloc-order swap below would legitimately move pages
  // between nodes and mask what this test checks (tie-break ordering).
  policy.placement = memsim::Placement::kLocal;
  policy.preferred_node = 0;
  const uint64_t kPages = 4;
  const uint64_t kBytes = kPages * memsim::kSmallPageBytes;
  memsim::RegionId ra, rb;
  if (swap_alloc_order) {
    rb = m.Alloc(kBytes, policy, "b");
    ra = m.Alloc(kBytes, policy, "a");
  } else {
    ra = m.Alloc(kBytes, policy, "a");
    rb = m.Alloc(kBytes, policy, "b");
  }
  const VirtAddr a = m.BaseOf(ra);
  const VirtAddr b = m.BaseOf(rb);

  m.BeginEpoch(threads);
  for (uint64_t rep = 0; rep < 2; ++rep) {
    for (uint64_t p = 0; p < kPages; ++p) {
      // Vary the per-page order with the allocation order.
      const uint64_t page = swap_alloc_order ? kPages - 1 - p : p;
      m.Access(static_cast<ThreadId>((rep + page) % threads),
               a + page * memsim::kSmallPageBytes, 8, AccessType::kRead);
      m.Access(static_cast<ThreadId>((rep + page + 1) % threads),
               b + page * memsim::kSmallPageBytes, 8, AccessType::kRead);
    }
  }
  m.EndEpoch();
  session.Detach();
  return DumpHeat(session.BuildHeatReport());
}

TEST(HeatmapTest, TopKTieBreakIsDeterministic) {
  const std::string baseline = RunTiedWorkload(false, 1);
  EXPECT_EQ(baseline, RunTiedWorkload(false, 1));  // identical rerun
  EXPECT_EQ(baseline, RunTiedWorkload(true, 1));   // allocation order
  EXPECT_EQ(baseline, RunTiedWorkload(false, 4));  // thread count
  EXPECT_EQ(baseline, RunTiedWorkload(true, 4));
}

TEST(HeatmapTest, TopKDropsAreExplicitAndOrdered) {
  MetricsOptions opt;
  opt.heat_top_k = 4;
  MetricsSession session(opt);
  memsim::Machine m(memsim::DramOnlyConfig());
  session.Attach(&m);

  memsim::PagePolicy policy;
  const uint64_t kPages = 4;
  const uint64_t kBytes = kPages * memsim::kSmallPageBytes;
  const VirtAddr a = m.BaseOf(m.Alloc(kBytes, policy, "a"));
  const VirtAddr b = m.BaseOf(m.Alloc(kBytes, policy, "b"));
  m.BeginEpoch(1);
  for (uint64_t rep = 0; rep < 2; ++rep) {
    for (uint64_t p = 0; p < kPages; ++p) {
      m.Access(0, a + p * memsim::kSmallPageBytes, 8, AccessType::kRead);
      m.Access(0, b + p * memsim::kSmallPageBytes, 8, AccessType::kRead);
    }
  }
  m.EndEpoch();
  session.Detach();

  const HeatReport r = session.BuildHeatReport();
  EXPECT_EQ(r.attributed, 16u);
  EXPECT_EQ(r.unattributed, 0u);
  EXPECT_EQ(r.touched_pages, 8u);
  // All eight pages tie at two accesses; the tie-break (structure asc,
  // page index asc) keeps exactly a's pages, in order.
  ASSERT_EQ(r.hot_pages.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.hot_pages[i].structure, "a");
    EXPECT_EQ(r.hot_pages[i].page_index, i);
    EXPECT_EQ(r.hot_pages[i].accesses, 2u);
  }
  // What fell off the table is accounted, never silently dropped.
  EXPECT_EQ(r.dropped_pages, 4u);
  EXPECT_EQ(r.dropped_accesses, 8u);
}

// --- Conservation, re-derived independently -------------------------------

TEST(MetricsSessionTest, ConservationRederivedFromReport) {
  memsim::Machine m(memsim::OptanePmmConfig());
  memsim::PagePolicy policy;
  // Allocated before the session attaches: its traffic must land in
  // `unattributed`, not vanish.
  const VirtAddr pre =
      m.BaseOf(m.Alloc(memsim::kSmallPageBytes, policy, "pre"));

  MetricsSession session;
  session.Attach(&m);
  const VirtAddr post =
      m.BaseOf(m.Alloc(4 * memsim::kSmallPageBytes, policy, "post"));

  m.BeginEpoch(2);
  for (int i = 0; i < 100; ++i) {
    m.Access(static_cast<ThreadId>(i % 2), post + (i % 4) * 64, 8,
             i % 3 == 0 ? AccessType::kWrite : AccessType::kRead);
    if (i % 10 == 0) m.Access(0, pre, 8, AccessType::kRead);
  }
  m.EndEpoch();
  session.Detach();  // PMG_CHECKs the laws internally

  // Re-derive the same laws from the public report, against MachineStats
  // accounted entirely independently of the registry mirrors.
  const memsim::MachineStats& stats = m.stats();
  const HeatReport heat = session.BuildHeatReport();
  uint64_t structure_sum = 0;
  for (const HeatStructureRow& s : heat.structures) {
    structure_sum += s.accesses;
  }
  EXPECT_EQ(structure_sum, heat.attributed);
  EXPECT_EQ(heat.attributed + heat.unattributed, stats.accesses);
  EXPECT_EQ(heat.unattributed, 10u);  // the pre-attach region's traffic

  const Registry& reg = session.registry();
  auto counter = [&](const std::string& name) -> uint64_t {
    for (MetricId id = 0; id < reg.metric_count(); ++id) {
      if (reg.name(id) == name) return reg.CounterValue(id);
    }
    ADD_FAILURE() << "no metric named " << name;
    return 0;
  };
  // The registry mirrors must bit-match the machine's own counters.
  EXPECT_EQ(counter("pmg_machine_accesses_total"), stats.accesses);
  EXPECT_EQ(counter("pmg_machine_tlb_misses_total"), stats.tlb_misses);
  EXPECT_EQ(counter("pmg_machine_near_mem_misses_total"),
            stats.near_mem_misses);
  EXPECT_EQ(counter("pmg_machine_migrated_pages_total"), stats.migrations);
  EXPECT_EQ(counter("pmg_machine_minor_faults_total"), stats.minor_faults);
  EXPECT_EQ(counter("pmg_epochs_total"), stats.epochs);

  // One epoch ended while attached: one snapshot row, cumulative.
  ASSERT_EQ(session.snapshots().size(), 1u);
  EXPECT_EQ(session.snapshots()[0].epoch, 1u);
  EXPECT_EQ(session.snapshots()[0].accesses, stats.accesses);
  EXPECT_EQ(session.dropped_snapshots(), 0u);
}

TEST(MetricsSessionTest, ReattachAccumulatesAcrossMachines) {
  // The recovery drivers rebuild the machine per crash attempt and
  // re-attach the same session; totals must accumulate, not reset.
  MetricsSession session;
  memsim::PagePolicy policy;
  uint64_t expected_accesses = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    memsim::Machine m(memsim::DramOnlyConfig());
    session.Attach(&m);
    const VirtAddr base =
        m.BaseOf(m.Alloc(memsim::kSmallPageBytes, policy, "r"));
    m.BeginEpoch(1);
    for (int i = 0; i < 10 * (attempt + 1); ++i) {
      m.Access(0, base, 8, AccessType::kRead);
    }
    m.EndEpoch();
    expected_accesses += m.stats().accesses;
    session.Detach();
  }
  const Registry& reg = session.registry();
  for (MetricId id = 0; id < reg.metric_count(); ++id) {
    if (reg.name(id) == "pmg_machine_accesses_total") {
      EXPECT_EQ(reg.CounterValue(id), expected_accesses);
    }
  }
  const HeatReport heat = session.BuildHeatReport();
  EXPECT_EQ(heat.attributed, expected_accesses);
  EXPECT_EQ(session.snapshots().size(), 3u);
}

}  // namespace
}  // namespace pmg::metrics
