// Tier-2 corpus sweep of the whatif identity law: for every analytics
// kernel, on every machine kind (and with the migration daemon both off
// and on), a recorded journal must re-price its own run bit-exactly and
// survive the .pmgj byte round trip. This is the acceptance bar that
// makes every counterfactual trustworthy: the re-pricer provably
// reproduces reality before it is allowed to predict anything else.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/whatif/explain.h"
#include "pmg/whatif/journal.h"
#include "pmg/whatif/reprice.h"

namespace pmg::whatif {
namespace {

using frameworks::App;
using frameworks::AppInputs;
using frameworks::FrameworkKind;

struct MachineCase {
  const char* label;
  memsim::MachineConfig config;
};

std::vector<MachineCase> CorpusMachines() {
  std::vector<MachineCase> cases;
  cases.push_back({"pmm", memsim::OptanePmmConfig()});
  {
    MachineCase mc{"pmm+migration", memsim::OptanePmmConfig()};
    mc.config.migration.enabled = true;
    cases.push_back(mc);
  }
  cases.push_back({"dram", memsim::DramOnlyConfig()});
  cases.push_back({"appdirect", memsim::AppDirectConfig()});
  return cases;
}

TEST(WhatifCorpusTest, EveryKernelOnEveryMachineRepricesBitExactly) {
  const AppInputs inputs = AppInputs::Prepare(graph::Rmat(10, 8, 3));
  for (const MachineCase& mc : CorpusMachines()) {
    for (const App app : frameworks::AllApps()) {
      SCOPED_TRACE(std::string(mc.label) + "/" + frameworks::AppName(app));
      frameworks::RunConfig cfg;
      cfg.machine = mc.config;
      cfg.threads = 16;
      cfg.pr_max_rounds = 10;
      JournalRecorder recorder;
      cfg.journal = &recorder;
      const frameworks::AppRunResult r =
          RunApp(FrameworkKind::kGalois, app, inputs, cfg);
      ASSERT_TRUE(r.supported);

      const CostJournal& journal = recorder.journal();
      ASSERT_GT(journal.epochs.size(), 0u);
      // The identity law, PMG_CHECKed epoch by epoch.
      VerifyIdentity(journal);

      // Byte round trip: serialize, parse, serialize again.
      const std::string text = JournalToJson(journal);
      CostJournal reloaded;
      std::string error;
      ASSERT_TRUE(JournalFromJson(text, &reloaded, &error)) << error;
      EXPECT_EQ(JournalToJson(reloaded), text);
      VerifyIdentity(reloaded);

      // The explainer accepts every corpus journal and its class sums
      // always partition the run.
      const ExplainReport report = BuildExplainReport(reloaded);
      EXPECT_EQ(report.total_ns, journal.total_ns);
      EXPECT_EQ(report.latency_bound_ns + report.bandwidth_bound_ns +
                    report.daemon_bound_ns,
                report.total_ns);
    }
  }
}

}  // namespace
}  // namespace pmg::whatif
