// Tier-2 agreement tests: a counterfactual prediction is only useful if
// it matches what the simulator actually does when the knob is real. For
// knobs whose effect is purely a pricing change (DRAM-speed PMM, a
// cheaper page walk), re-running the workload with the edited timings
// replays the identical event stream, so the journal's prediction must
// land within a tight tolerance of the re-run. Zero-migration has a
// second-order behavioral component (migrated pages keep their improved
// locality in the recorded events), so its bound is checked on a
// configuration where pricing dominates — the documented semantics of
// the knob library (see reprice.h).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/whatif/journal.h"
#include "pmg/whatif/reprice.h"

namespace pmg::whatif {
namespace {

using frameworks::App;
using frameworks::AppInputs;
using frameworks::FrameworkKind;

AppInputs CorpusInputs() { return AppInputs::Prepare(graph::Rmat(10, 8, 3)); }

/// Runs `app` under `cfg` with a recorder attached and returns the
/// journal (whose total covers the same window the journal of the
/// baseline run covers, so totals are comparable run to run).
CostJournal Record(App app, const frameworks::RunConfig& cfg,
                   const AppInputs& inputs) {
  frameworks::RunConfig journaled = cfg;
  JournalRecorder recorder;
  journaled.journal = &recorder;
  const frameworks::AppRunResult r =
      RunApp(FrameworkKind::kGalois, app, inputs, journaled);
  EXPECT_TRUE(r.supported);
  VerifyIdentity(recorder.journal());
  return recorder.journal();
}

const Counterfactual& Knob(const std::vector<Counterfactual>& knobs,
                           const std::string& name) {
  for (const Counterfactual& cf : knobs) {
    if (cf.name == name) return cf;
  }
  ADD_FAILURE() << "no standard knob named " << name;
  static const Counterfactual missing;
  return missing;
}

double RelativeError(SimNs predicted, SimNs actual) {
  return std::abs(static_cast<double>(predicted) -
                  static_cast<double>(actual)) /
         static_cast<double>(actual);
}

TEST(WhatifAblationTest, DramSpeedPmmPredictionMatchesRerunWithin1Percent) {
  const AppInputs inputs = CorpusInputs();
  frameworks::RunConfig cfg;
  cfg.machine = memsim::OptanePmmConfig();
  cfg.threads = 16;
  cfg.pr_max_rounds = 10;

  const CostJournal recorded = Record(App::kPr, cfg, inputs);
  const SimNs predicted =
      Reprice(recorded, Knob(StandardKnobs(recorded), "dram-speed-pmm"))
          .total_ns;

  // The real ablation: the same machine with its PMM constants set to
  // the DRAM ones — exactly the edit the knob makes to the price table.
  frameworks::RunConfig ablated = cfg;
  memsim::MemoryTimings& tm = ablated.machine.timings;
  tm.near_mem_hit_local_ns = tm.dram_local_ns;
  tm.near_mem_hit_remote_ns = tm.dram_remote_ns;
  tm.near_mem_miss_extra_ns = 0;
  tm.appdirect_local_ns = tm.dram_local_ns;
  tm.appdirect_remote_ns = tm.dram_remote_ns;
  tm.walk_step_pmm_ns = tm.walk_step_dram_ns;
  tm.pmm_kernel_factor = 1.0;
  tm.pmm_local = tm.dram_local;
  tm.pmm_remote = tm.dram_remote;
  const CostJournal rerun = Record(App::kPr, ablated, inputs);

  ASSERT_LT(predicted, recorded.total_ns);
  EXPECT_LT(RelativeError(predicted, rerun.total_ns), 0.01)
      << "predicted " << predicted << " ns vs re-run " << rerun.total_ns;
}

TEST(WhatifAblationTest, PageWalkStepPredictionMatchesRerunWithin1Percent) {
  const AppInputs inputs = CorpusInputs();
  frameworks::RunConfig cfg;
  cfg.machine = memsim::OptanePmmConfig();
  cfg.threads = 16;
  cfg.pr_max_rounds = 10;

  const CostJournal recorded = Record(App::kPr, cfg, inputs);
  Counterfactual cf = IdentityCounterfactual(recorded);
  cf.name = "walk-step-20";
  cf.timings.walk_step_pmm_ns = 20;
  const SimNs predicted = Reprice(recorded, cf).total_ns;

  frameworks::RunConfig ablated = cfg;
  ablated.machine.timings.walk_step_pmm_ns = 20;
  const CostJournal rerun = Record(App::kPr, ablated, inputs);

  ASSERT_LT(predicted, recorded.total_ns);
  EXPECT_LT(RelativeError(predicted, rerun.total_ns), 0.01)
      << "predicted " << predicted << " ns vs re-run " << rerun.total_ns;
}

TEST(WhatifAblationTest, ZeroMigrationPredictionMatchesRerunWithin1Percent) {
  const AppInputs inputs = CorpusInputs();
  frameworks::RunConfig cfg;
  cfg.machine = memsim::OptanePmmConfig();
  cfg.machine.migration.enabled = true;
  // Wake the daemon many times inside this small run (the default 500us
  // interval would outlast it entirely).
  cfg.machine.migration.scan_interval_ns = 5000;
  cfg.threads = 16;
  cfg.pr_max_rounds = 10;

  const CostJournal recorded = Record(App::kPr, cfg, inputs);
  SimNs recorded_daemon = 0;
  for (const EpochCost& e : recorded.epochs) recorded_daemon += e.daemon_ns;
  ASSERT_GT(recorded_daemon, 0u)
      << "the daemon never ran; nothing to predict away";

  const SimNs predicted =
      Reprice(recorded, Knob(StandardKnobs(recorded), "zero-migration"))
          .total_ns;

  frameworks::RunConfig ablated = cfg;
  ablated.machine.migration.enabled = false;
  const CostJournal rerun = Record(App::kPr, ablated, inputs);

  ASSERT_LT(predicted, recorded.total_ns);
  EXPECT_LT(RelativeError(predicted, rerun.total_ns), 0.01)
      << "predicted " << predicted << " ns vs re-run " << rerun.total_ns
      << " (second-order locality drift past the documented bound)";
}

}  // namespace
}  // namespace pmg::whatif
