// Unit and integration tests for pmg::whatif: the cost-journal recorder
// (invisibility, crash-recovery re-attachment), the .pmgj round trip, the
// counterfactual re-pricer (identity law + knob semantics), the COZ-style
// region speedup estimator, and the bottleneck explainer's accounting.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "pmg/analytics/common.h"
#include "pmg/faultsim/fault_schedule.h"
#include "pmg/faultsim/recovery.h"
#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/whatif/explain.h"
#include "pmg/whatif/journal.h"
#include "pmg/whatif/reprice.h"

namespace pmg::whatif {
namespace {

using frameworks::App;
using frameworks::AppInputs;
using frameworks::FrameworkKind;
using frameworks::RunConfig;

/// A deterministic small workload: Galois-profile run on a scaled-down
/// rmat graph. Big enough to produce multi-epoch, multi-thread journals
/// with TLB walks and near-memory misses; small enough for tier1.
AppInputs SmallInputs() {
  return AppInputs::Prepare(graph::Rmat(10, 8, 3));
}

RunConfig SmallPmmConfig(uint32_t threads) {
  RunConfig cfg;
  cfg.machine = memsim::OptanePmmConfig();
  cfg.threads = threads;
  cfg.pr_max_rounds = 10;
  return cfg;
}

/// Runs `app` with a recorder attached and returns the captured journal.
CostJournal Record(App app, const RunConfig& base) {
  const AppInputs inputs = SmallInputs();
  RunConfig cfg = base;
  JournalRecorder recorder;
  cfg.journal = &recorder;
  const frameworks::AppRunResult r =
      RunApp(FrameworkKind::kGalois, app, inputs, cfg);
  EXPECT_TRUE(r.supported);
  return recorder.journal();
}

// ---------------------------------------------------------------------------
// Recorder invisibility + the identity law.
// ---------------------------------------------------------------------------

TEST(JournalRecorderTest, RecordingIsInvisibleAndRepricesItselfExactly) {
  const AppInputs inputs = SmallInputs();
  const RunConfig cfg = SmallPmmConfig(8);

  const frameworks::AppRunResult plain =
      RunApp(FrameworkKind::kGalois, App::kBfs, inputs, cfg);
  ASSERT_TRUE(plain.supported);

  RunConfig journaled_cfg = cfg;
  JournalRecorder recorder;
  journaled_cfg.journal = &recorder;
  const frameworks::AppRunResult journaled =
      RunApp(FrameworkKind::kGalois, App::kBfs, inputs, journaled_cfg);
  ASSERT_TRUE(journaled.supported);

  EXPECT_EQ(plain.time_ns, journaled.time_ns);
  EXPECT_EQ(plain.rounds, journaled.rounds);
  // Any attached sink updates the trace bookkeeping counters; pricing
  // invisibility is about every other field of MachineStats.
  memsim::MachineStats masked = journaled.stats;
  masked.trace_attributed_ns = plain.stats.trace_attributed_ns;
  masked.traced_epochs = plain.stats.traced_epochs;
  EXPECT_EQ(std::memcmp(&plain.stats, &masked, sizeof(masked)), 0)
      << "attaching a JournalRecorder changed the priced run";

  const CostJournal& journal = recorder.journal();
  EXPECT_EQ(journal.kind, memsim::MachineKind::kMemoryMode);
  EXPECT_GT(journal.epochs.size(), 1u);
  EXPECT_GT(journal.total_ns, 0u);
  VerifyIdentity(journal);  // PMG_CHECK-aborts on any divergence.
}

TEST(JournalRecorderTest, CapturesMachineHeaderAndSortedThreads) {
  const CostJournal journal = Record(App::kBfs, SmallPmmConfig(4));
  EXPECT_EQ(journal.schema_version, kJournalSchemaVersion);
  EXPECT_FALSE(journal.machine_name.empty());
  EXPECT_GT(journal.sockets, 0u);
  SimNs sum = 0;
  for (const EpochCost& e : journal.epochs) {
    sum += e.total_ns;
    ASSERT_EQ(e.channels.size(), journal.sockets);
    ASSERT_EQ(e.fills.size(), journal.sockets);
    for (size_t i = 1; i < e.threads.size(); ++i) {
      EXPECT_LT(e.threads[i - 1].thread, e.threads[i].thread);
    }
    for (const EpochCost::ThreadCost& tc : e.threads) {
      // user_ns is the truncation of the exact clock the machine kept.
      EXPECT_EQ(tc.user_ns, static_cast<SimNs>(tc.user_exact_ns));
    }
  }
  EXPECT_EQ(sum, journal.total_ns);
}

// ---------------------------------------------------------------------------
// Serialization round trip.
// ---------------------------------------------------------------------------

TEST(JournalJsonTest, RoundTripIsByteIdenticalAcrossThreadCounts) {
  for (const uint32_t threads : {1u, 4u, 8u}) {
    const CostJournal journal = Record(App::kBfs, SmallPmmConfig(threads));
    const std::string first = JournalToJson(journal);

    CostJournal reloaded;
    std::string error;
    ASSERT_TRUE(JournalFromJson(first, &reloaded, &error))
        << threads << " threads: " << error;
    // Doubles print with %.17g, so a save/load/save cycle is a fixpoint.
    EXPECT_EQ(JournalToJson(reloaded), first) << threads << " threads";

    // And the reloaded journal re-prices exactly like the original.
    VerifyIdentity(reloaded);
    EXPECT_EQ(Reprice(reloaded, IdentityCounterfactual(reloaded)).total_ns,
              journal.total_ns);
  }
}

TEST(JournalJsonTest, TruncatedDocumentFailsWithErrorNotAbort) {
  const CostJournal journal = Record(App::kBfs, SmallPmmConfig(4));
  const std::string text = JournalToJson(journal);
  // Chop the document at several depths: mid-header, mid-epoch array,
  // just before the closing brace. Every prefix must fail cleanly.
  for (const size_t keep :
       {size_t{0}, size_t{10}, text.size() / 4, text.size() / 2,
        text.size() - 2}) {
    CostJournal out;
    std::string error;
    EXPECT_FALSE(JournalFromJson(text.substr(0, keep), &out, &error))
        << "prefix of " << keep << " bytes parsed";
    EXPECT_FALSE(error.empty());
  }
}

TEST(JournalJsonTest, DroppedEpochsAreReportedAsTruncation) {
  const CostJournal journal = Record(App::kBfs, SmallPmmConfig(4));
  ASSERT_GT(journal.epochs.size(), 1u);

  // An epoch vanished from the body but the header still counts it: the
  // parser names the discrepancy instead of aborting.
  std::string text = JournalToJson(journal);
  const std::string tag =
      "\"epochs_total\":" + std::to_string(journal.epochs.size());
  const size_t at = text.find(tag);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, tag.size(), "\"epochs_total\":" +
                                   std::to_string(journal.epochs.size() + 1));
  CostJournal out;
  std::string error;
  EXPECT_FALSE(JournalFromJson(text, &out, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;

  // A consistently re-serialized but shortened journal instead trips the
  // total-vs-epoch-sum cross check.
  CostJournal shorter = journal;
  shorter.epochs.pop_back();
  error.clear();
  EXPECT_FALSE(JournalFromJson(JournalToJson(shorter), &out, &error));
  EXPECT_NE(error.find("total_ns"), std::string::npos) << error;
}

TEST(JournalJsonTest, VersionMismatchNamesBothVersions) {
  const CostJournal journal = Record(App::kBfs, SmallPmmConfig(4));
  std::string text = JournalToJson(journal);
  const std::string tag = "\"pmgj_version\":1";
  const size_t at = text.find(tag);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, tag.size(), "\"pmgj_version\":99");
  CostJournal out;
  std::string error;
  EXPECT_FALSE(JournalFromJson(text, &out, &error));
  EXPECT_NE(error.find("version 99"), std::string::npos) << error;
  EXPECT_NE(error.find("reads version 1"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Crash-recovery re-attachment.
// ---------------------------------------------------------------------------

/// The small 2-socket machine of the faultsim tests.
memsim::MachineConfig TinyConfig() {
  memsim::MachineConfig c;
  c.kind = memsim::MachineKind::kDramMain;
  c.name = "tiny";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(8);
  c.topology.pmm_bytes_per_socket = 0;
  c.cpu_cache_lines = 64;
  return c;
}

faultsim::FaultSchedule MustParse(const std::string& spec) {
  faultsim::FaultSchedule s;
  std::string error;
  EXPECT_TRUE(faultsim::FaultSchedule::Parse(spec, &s, &error)) << error;
  return s;
}

TEST(JournalRecoveryTest, ReattachmentAppendsAllAttemptsOntoOneJournal) {
  const graph::CsrTopology topo = graph::Grid2d(6, 6);
  faultsim::RecoveryConfig cfg;
  cfg.machine = TinyConfig();
  cfg.threads = 4;
  cfg.algo.label_policy.placement = memsim::Placement::kInterleaved;
  cfg.checkpoint_every = 2;
  cfg.faults = MustParse("crash@epoch:2");

  JournalRecorder recorder;
  cfg.journal = &recorder;
  const faultsim::RecoveryResult r =
      faultsim::RunBfsWithRecovery(topo, 0, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.attempts, 2u);

  // Both attempts' epochs landed in one journal whose total is the full
  // deployment cost, and the merged journal still re-prices exactly.
  const CostJournal& journal = recorder.journal();
  EXPECT_EQ(journal.total_ns, r.total_ns);
  VerifyIdentity(journal);

  // The merged journal survives the byte round trip too.
  const std::string text = JournalToJson(journal);
  CostJournal reloaded;
  std::string error;
  ASSERT_TRUE(JournalFromJson(text, &reloaded, &error)) << error;
  EXPECT_EQ(JournalToJson(reloaded), text);
  VerifyIdentity(reloaded);

  // A crash-free run costs strictly less and journals fewer epochs.
  faultsim::RecoveryConfig clean_cfg = cfg;
  clean_cfg.faults = faultsim::FaultSchedule();
  JournalRecorder clean_recorder;
  clean_cfg.journal = &clean_recorder;
  const faultsim::RecoveryResult clean =
      faultsim::RunBfsWithRecovery(topo, 0, clean_cfg);
  ASSERT_TRUE(clean.completed);
  EXPECT_EQ(clean_recorder.journal().total_ns, clean.total_ns);
  EXPECT_LT(clean_recorder.journal().total_ns, journal.total_ns);
  EXPECT_LT(clean_recorder.journal().epochs.size(), journal.epochs.size());
}

// ---------------------------------------------------------------------------
// Counterfactual knob semantics.
// ---------------------------------------------------------------------------

/// Finds a standard knob by name (the library's order is fixed, but the
/// tests should not depend on it).
const Counterfactual& Knob(const std::vector<Counterfactual>& knobs,
                           const std::string& name) {
  for (const Counterfactual& cf : knobs) {
    if (cf.name == name) return cf;
  }
  ADD_FAILURE() << "no standard knob named " << name;
  static const Counterfactual missing;
  return missing;
}

/// A memory-mode config whose migration daemon actually wakes during a
/// tier1-sized run (the default 500us scan interval outlasts the whole
/// small workload).
RunConfig MigratingPmmConfig(uint32_t threads) {
  RunConfig cfg = SmallPmmConfig(threads);
  cfg.machine.migration.enabled = true;
  cfg.machine.migration.scan_interval_ns = 5000;
  return cfg;
}

TEST(RepriceTest, KnobsOnlyEverSpeedTheRecordedRunUp) {
  const RunConfig cfg = MigratingPmmConfig(8);
  const CostJournal journal = Record(App::kPr, cfg);
  ASSERT_GT(journal.total_ns, 0u);
  EXPECT_TRUE(journal.migration_enabled);

  for (const Counterfactual& cf : StandardKnobs(journal)) {
    const RepriceResult r = Reprice(journal, cf);
    EXPECT_EQ(r.epochs.size(), journal.epochs.size());
    // Every standard knob removes cost, so no prediction may exceed the
    // recorded total.
    EXPECT_LE(r.total_ns, journal.total_ns) << cf.name;
    EXPECT_GT(r.total_ns, 0u) << cf.name;
  }
}

TEST(RepriceTest, ZeroMigrationDropsEveryDaemonCharge) {
  const CostJournal journal = Record(App::kPr, MigratingPmmConfig(8));

  SimNs recorded_daemon = 0;
  for (const EpochCost& e : journal.epochs) recorded_daemon += e.daemon_ns;
  ASSERT_GT(recorded_daemon, 0u)
      << "workload never woke the migration daemon; the knob is untested";

  const RepriceResult r =
      Reprice(journal, Knob(StandardKnobs(journal), "zero-migration"));
  for (const EpochReprice& e : r.epochs) EXPECT_EQ(e.daemon_ns, 0u);
  EXPECT_LE(r.total_ns, journal.total_ns - recorded_daemon)
      << "zero-migration must shed at least the daemon itself (hint-fault "
         "kernel time comes off the latency path on top)";
}

TEST(RepriceTest, InfiniteBandwidthUnbindsEveryEpoch) {
  const CostJournal journal = Record(App::kPr, SmallPmmConfig(8));
  const RepriceResult r =
      Reprice(journal, Knob(StandardKnobs(journal), "infinite-bandwidth"));
  EXPECT_EQ(r.bandwidth_bound_epochs, 0u);
  for (const EpochReprice& e : r.epochs) {
    EXPECT_EQ(e.bandwidth_path_ns, 0u);
    EXPECT_FALSE(e.bandwidth_bound);
  }
}

TEST(RepriceTest, TlbKnobsShedWalkCostWithoutEverAddingAny) {
  const CostJournal journal = Record(App::kPr, SmallPmmConfig(8));
  const std::vector<Counterfactual> knobs = StandardKnobs(journal);
  const SimNs perfect = Reprice(journal, Knob(knobs, "perfect-tlb")).total_ns;
  const SimNs huge = Reprice(journal, Knob(knobs, "huge-pages")).total_ns;
  // Both knobs only remove cost (perfect-tlb frees the walks; huge-pages
  // cheapens walks *and* batches minor faults, so the two totals are not
  // ordered against each other — only against the recorded run).
  EXPECT_LE(huge, journal.total_ns);
  EXPECT_LT(perfect, journal.total_ns)
      << "pagerank must pay for some TLB walks";
}

TEST(RepriceTest, DramSpeedPmmIsAPureTimingsEdit) {
  const CostJournal journal = Record(App::kBfs, SmallPmmConfig(8));
  const Counterfactual cf =
      Knob(StandardKnobs(journal), "dram-speed-pmm");
  EXPECT_FALSE(cf.zero_migration || cf.perfect_tlb || cf.perfect_near_mem ||
               cf.infinite_bandwidth || cf.huge_pages);
  EXPECT_EQ(cf.timings.near_mem_miss_extra_ns, 0u);
  EXPECT_EQ(cf.timings.pmm_kernel_factor, 1.0);
  const RepriceResult r = Reprice(journal, cf);
  EXPECT_LT(r.total_ns, journal.total_ns)
      << "a memory-mode run priced at DRAM speed must get faster";
}

// ---------------------------------------------------------------------------
// COZ-style region speedups from folded profiles.
// ---------------------------------------------------------------------------

TEST(RegionSpeedupTest, FoldedShareMath) {
  CostJournal journal;
  journal.total_ns = 1000000;
  const std::string folded = "main;hot 30\nmain;cold 10\n";

  const RegionSpeedup hot = EstimateRegionSpeedup(journal, folded, "hot", 2.0);
  EXPECT_TRUE(hot.found);
  EXPECT_EQ(hot.samples, 30u);
  EXPECT_EQ(hot.total_samples, 40u);
  EXPECT_DOUBLE_EQ(hot.share, 0.75);
  // scale = 1 - 0.75 * (1 - 1/2) = 0.625
  EXPECT_EQ(hot.predicted_total_ns, 625000u);
  EXPECT_DOUBLE_EQ(hot.speedup, 1.6);

  // A frame on every stack owns the whole run.
  const RegionSpeedup all = EstimateRegionSpeedup(journal, folded, "main", 2.0);
  EXPECT_DOUBLE_EQ(all.share, 1.0);
  EXPECT_EQ(all.predicted_total_ns, 500000u);

  // Exact frame match only: "ho" is a prefix, not a frame.
  const RegionSpeedup missing =
      EstimateRegionSpeedup(journal, folded, "ho", 4.0);
  EXPECT_FALSE(missing.found);
  EXPECT_EQ(missing.samples, 0u);
  EXPECT_EQ(missing.predicted_total_ns, journal.total_ns);
  EXPECT_DOUBLE_EQ(missing.speedup, 1.0);
}

TEST(RegionSpeedupTest, EmptyProfileSpeedsNothingUp) {
  CostJournal journal;
  journal.total_ns = 12345;
  const RegionSpeedup r = EstimateRegionSpeedup(journal, "", "x", 3.0);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.total_samples, 0u);
  EXPECT_EQ(r.predicted_total_ns, journal.total_ns);
}

// ---------------------------------------------------------------------------
// The bottleneck explainer.
// ---------------------------------------------------------------------------

TEST(ExplainTest, ClassificationAndBlameAccounting) {
  const CostJournal journal = Record(App::kPr, MigratingPmmConfig(8));
  const ExplainReport report = BuildExplainReport(journal);

  EXPECT_EQ(report.epochs, journal.epochs.size());
  EXPECT_EQ(report.total_ns, journal.total_ns);
  EXPECT_EQ(report.kind, "memory");
  EXPECT_TRUE(report.migration_enabled);

  // Every epoch lands in exactly one bound class, and the class sums
  // partition the run's simulated time.
  EXPECT_EQ(report.latency_bound_epochs + report.bandwidth_bound_epochs +
                report.daemon_bound_epochs,
            report.epochs);
  EXPECT_EQ(report.latency_bound_ns + report.bandwidth_bound_ns +
                report.daemon_bound_ns,
            report.total_ns);

  // Straggler blame is sorted by critical time descending and only ever
  // covers latency-path epochs.
  uint64_t blamed_epochs = 0;
  for (size_t i = 0; i < report.stragglers.size(); ++i) {
    blamed_epochs += report.stragglers[i].critical_epochs;
    if (i > 0) {
      EXPECT_GE(report.stragglers[i - 1].critical_ns,
                report.stragglers[i].critical_ns);
    }
  }
  EXPECT_LE(blamed_epochs, report.epochs - report.bandwidth_bound_epochs);

  uint64_t bucketed = 0;
  for (size_t b = 0; b < kImbalanceBuckets; ++b) {
    EXPECT_NE(ImbalanceBucketName(b), nullptr);
    bucketed += report.imbalance[b];
  }
  EXPECT_LE(bucketed, report.epochs);

  // One lever per standard knob, ranked by predicted speedup.
  EXPECT_EQ(report.levers.size(), StandardKnobs(journal).size());
  for (size_t i = 0; i < report.levers.size(); ++i) {
    EXPECT_GE(report.levers[i].speedup, 1.0);
    if (i > 0) {
      EXPECT_GE(report.levers[i - 1].speedup, report.levers[i].speedup);
    }
  }
}

TEST(ExplainTest, JsonSectionIsWellFormed) {
  const CostJournal journal = Record(App::kBfs, SmallPmmConfig(4));
  const ExplainReport report = BuildExplainReport(journal);
  trace::JsonWriter w;
  w.BeginObject().Key("whatif");
  WriteExplainJson(report, &w);
  w.EndObject();

  trace::JsonValue doc;
  std::string error;
  ASSERT_TRUE(trace::JsonValue::Parse(w.str(), &doc, &error)) << error;
  const trace::JsonValue* whatif = doc.Find("whatif");
  ASSERT_NE(whatif, nullptr);
  const trace::JsonValue* levers = whatif->Find("levers");
  ASSERT_NE(levers, nullptr);
  EXPECT_EQ(levers->array.size(), report.levers.size());
  const trace::JsonValue* total = whatif->Find("total_ns");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->AsUInt(), report.total_ns);
}

}  // namespace
}  // namespace pmg::whatif
