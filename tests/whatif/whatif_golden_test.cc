// Golden-file tests for the whatif output surfaces: the --explain table,
// the "whatif" JSON section, and the perf gate's unknown-section notes.
// The workload is a fixed Galois BFS run on the simulated Optane machine
// (deterministic by construction), so the explanation a user sees is
// pinned byte for byte. Regenerate after an intentional format or cost
// model change with
//
//   ./whatif_golden_test --update-goldens

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/metrics/perf_diff.h"
#include "pmg/scenarios/report.h"
#include "pmg/trace/json.h"
#include "pmg/whatif/explain.h"
#include "pmg/whatif/journal.h"
#include "pmg/whatif/reprice.h"

namespace pmg::whatif {

bool g_update_goldens = false;

namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(PMG_GOLDEN_DIR) + "/" + name;
}

/// Compares `actual` against goldens/<name>, or rewrites the golden when
/// the binary runs with --update-goldens.
void ExpectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_goldens) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with --update-goldens to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "output drifted from " << path
      << "; rerun with --update-goldens if the change is intentional";
}

/// Renders through a real FILE* so the goldens capture exactly what
/// pmg_run --explain and pmg_explain print.
template <typename Fn>
std::string Capture(Fn&& fn) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  fn(f);
  std::fflush(f);
  const long size = std::ftell(f);
  std::rewind(f);
  std::string out(static_cast<size_t>(size), '\0');
  const size_t read = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  EXPECT_EQ(read, out.size());
  return out;
}

/// The fixed workload behind every golden: Galois BFS on a small rmat
/// graph, 8 threads, memory-mode Optane machine with the migration
/// daemon on (so the explanation has daemon rows and stragglers).
const CostJournal& GoldenJournal() {
  static const CostJournal journal = [] {
    frameworks::RunConfig cfg;
    cfg.machine = memsim::OptanePmmConfig();
    cfg.machine.migration.enabled = true;
    cfg.machine.migration.scan_interval_ns = 5000;
    cfg.threads = 8;
    JournalRecorder recorder;
    cfg.journal = &recorder;
    const frameworks::AppInputs inputs =
        frameworks::AppInputs::Prepare(graph::Rmat(10, 8, 3));
    RunApp(frameworks::FrameworkKind::kGalois, frameworks::App::kBfs, inputs,
           cfg);
    return recorder.journal();
  }();
  return journal;
}

TEST(WhatifGoldenTest, ExplainTable) {
  const ExplainReport report = BuildExplainReport(GoldenJournal());
  ExpectMatchesGolden(
      "whatif_report.golden",
      Capture([&](std::FILE* f) { scenarios::PrintWhatifReport(report, f); }));
}

TEST(WhatifGoldenTest, ExplainJson) {
  const ExplainReport report = BuildExplainReport(GoldenJournal());
  trace::JsonWriter w;
  w.BeginObject().Key("whatif");
  WriteExplainJson(report, &w);
  w.EndObject();
  const std::string doc = w.str();
  ExpectMatchesGolden("whatif_report.json.golden", doc);
  // Schema contract: parseable and stable through parse -> dump -> parse.
  trace::JsonValue v;
  std::string err;
  ASSERT_TRUE(trace::JsonValue::Parse(doc, &v, &err)) << err;
  const std::string dumped = v.Dump();
  trace::JsonValue again;
  ASSERT_TRUE(trace::JsonValue::Parse(dumped, &again, &err)) << err;
  EXPECT_EQ(again.Dump(), dumped);
}

TEST(WhatifGoldenTest, OfflineExplainEqualsLiveExplain) {
  // The pmg_explain path: save the journal, load it back, explain the
  // loaded copy. The rendered explanation must be byte-identical to the
  // live one (covered by the golden above).
  const CostJournal& journal = GoldenJournal();
  std::string dir;
  const char* tmp = std::getenv("TMPDIR");
  dir = tmp != nullptr ? tmp : "/tmp";
  const std::string path = dir + "/whatif_golden_test.pmgj";
  std::string error;
  ASSERT_TRUE(SaveJournal(journal, path, &error)) << error;
  CostJournal loaded;
  ASSERT_TRUE(LoadJournal(path, &loaded, &error)) << error;
  std::remove(path.c_str());

  const auto print = [](const CostJournal& j) {
    const ExplainReport report = BuildExplainReport(j);
    return Capture(
        [&](std::FILE* f) { scenarios::PrintWhatifReport(report, f); });
  };
  EXPECT_EQ(print(loaded), print(journal));
}

TEST(WhatifGoldenTest, PerfGateNotesForWhatifSection) {
  // The perf gate diffing a report that grew a whatif section against a
  // pre-PR baseline without one (and vice versa): clean pass, one note
  // each way, printed the way pmg_perf prints notes.
  const std::string base =
      "{\"schema_version\":1,\"bench\":\"fig7\","
      "\"rows\":[{\"app\":\"bfs\",\"time_ns\":1000}]}";
  const std::string cur =
      "{\"schema_version\":1,\"bench\":\"fig7\","
      "\"rows\":[{\"app\":\"bfs\",\"time_ns\":1000}],"
      "\"whatif\":{\"total_ns\":1000,\"levers\":[]}}";

  metrics::PerfDiffResult forward;
  metrics::DiffBenchText(base, cur, "fig7", 0.05, &forward);
  EXPECT_TRUE(forward.ok());
  metrics::PerfDiffResult backward;
  metrics::DiffBenchText(cur, base, "fig7", 0.05, &backward);
  EXPECT_TRUE(backward.ok());

  std::string notes;
  for (const std::string& note : forward.notes) {
    notes += "note: " + note + "\n";
  }
  for (const std::string& note : backward.notes) {
    notes += "note: " + note + "\n";
  }
  ExpectMatchesGolden("perf_whatif_notes.golden", notes);
}

}  // namespace
}  // namespace pmg::whatif

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-goldens") {
      pmg::whatif::g_update_goldens = true;
    }
  }
  return RUN_ALL_TESTS();
}
