# One pmg_lint CLI smoke case per ctest invocation:
#
#   cmake -DEXE=<pmg_lint> -DCASE=<name> -DOUT_DIR=<scratch> -P lint_case.cmake
#
# Exercises the analyzer's exit-code contract end to end on tiny synthetic
# trees: exit 0 clean, exit 1 on new findings or stale baseline entries,
# exit 2 on usage errors — and byte-identical output across runs.

if(NOT DEFINED EXE OR NOT DEFINED CASE OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "lint_case.cmake needs -DEXE=, -DCASE= and -DOUT_DIR=")
endif()

set(work "${OUT_DIR}/lint_case.${CASE}")
file(REMOVE_RECURSE "${work}")
file(MAKE_DIRECTORY "${work}/src")

# A tree with exactly one finding (host clock call), and a clean file.
function(write_tree)
  file(WRITE "${work}/src/dirty.cxx"
    "inline long Bad() { return time(nullptr); }\n")
  file(WRITE "${work}/src/clean.cxx"
    "inline long Good(long x) { return x + 1; }\n")
endfunction()

function(run_lint)
  execute_process(
    COMMAND ${EXE} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    TIMEOUT 120)
  set(rc "${rc}" PARENT_SCOPE)
  set(out "${out}" PARENT_SCOPE)
  set(err "${err}" PARENT_SCOPE)
endfunction()

function(expect_exit expected)
  if(NOT rc EQUAL ${expected})
    message(FATAL_ERROR
            "case ${CASE}: expected exit ${expected}, got '${rc}'\n"
            "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

if(CASE STREQUAL "help")
  run_lint(--help)
  expect_exit(0)
  if(NOT out MATCHES "usage: pmg_lint")
    message(FATAL_ERROR "case help: no usage text:\n${out}")
  endif()

elseif(CASE STREQUAL "list_checks")
  run_lint(--list-checks)
  expect_exit(0)
  if(NOT out MATCHES "pmg-no-host-clock" OR NOT out MATCHES "pmg-enum-switch")
    message(FATAL_ERROR "case list_checks: check ids missing:\n${out}")
  endif()

elseif(CASE STREQUAL "bad_flag")
  run_lint(--bogus)
  expect_exit(2)
  if(NOT err MATCHES "^pmg_lint: ")
    message(FATAL_ERROR "case bad_flag: bad stderr:\n${err}")
  endif()

elseif(CASE STREQUAL "missing_root")
  run_lint(src)
  expect_exit(2)
  if(NOT err MATCHES "--root is required")
    message(FATAL_ERROR "case missing_root: bad stderr:\n${err}")
  endif()

elseif(CASE STREQUAL "bad_root")
  run_lint(--root "${work}/does-not-exist")
  expect_exit(2)

elseif(CASE STREQUAL "clean")
  file(WRITE "${work}/src/clean.cxx"
    "inline long Good(long x) { return x + 1; }\n")
  run_lint(--root "${work}" src)
  expect_exit(0)
  if(NOT out MATCHES "verdict: CLEAN")
    message(FATAL_ERROR "case clean: no CLEAN verdict:\n${out}")
  endif()

elseif(CASE STREQUAL "findings")
  write_tree()
  run_lint(--root "${work}" src)
  expect_exit(1)
  if(NOT out MATCHES "pmg-no-host-clock" OR NOT out MATCHES "verdict: DIRTY")
    message(FATAL_ERROR "case findings: bad output:\n${out}")
  endif()

elseif(CASE STREQUAL "baseline_green")
  # A baseline covering the one finding turns the gate green.
  write_tree()
  run_lint(--root "${work}" --write-baseline "${work}/baseline.txt" src)
  expect_exit(0)
  run_lint(--root "${work}" --baseline "${work}/baseline.txt" src)
  expect_exit(0)
  if(NOT out MATCHES "1 baselined" OR NOT out MATCHES "verdict: CLEAN")
    message(FATAL_ERROR "case baseline_green: bad output:\n${out}")
  endif()

elseif(CASE STREQUAL "baseline_stale")
  # Fixing the finding without shrinking the baseline must fail the gate:
  # the file may only shrink.
  write_tree()
  run_lint(--root "${work}" --write-baseline "${work}/baseline.txt" src)
  expect_exit(0)
  file(WRITE "${work}/src/dirty.cxx"
    "inline long Fixed(long x) { return x + 2; }\n")
  run_lint(--root "${work}" --baseline "${work}/baseline.txt" src)
  expect_exit(1)
  if(NOT out MATCHES "stale baseline entry")
    message(FATAL_ERROR "case baseline_stale: no stale message:\n${out}")
  endif()

elseif(CASE STREQUAL "baseline_missing_file")
  write_tree()
  run_lint(--root "${work}" --baseline "${work}/nope.txt" src)
  expect_exit(2)

elseif(CASE STREQUAL "determinism")
  # Two runs over the same tree must print identical bytes.
  write_tree()
  run_lint(--root "${work}" src)
  expect_exit(1)
  set(first "${out}")
  run_lint(--root "${work}" src)
  expect_exit(1)
  if(NOT first STREQUAL out)
    message(FATAL_ERROR
            "case determinism: output drifted between runs\n"
            "first:\n${first}\nsecond:\n${out}")
  endif()

elseif(CASE STREQUAL "host_dir")
  # --host-dir exempts deliberately host-measuring code.
  write_tree()
  run_lint(--root "${work}" --host-dir src/ src)
  expect_exit(0)

else()
  message(FATAL_ERROR "unknown CASE '${CASE}'")
endif()
