# One pmg_run CLI smoke case per ctest invocation:
#
#   cmake -DEXE=<pmg_run> -DCASE=<name> -DOUT_DIR=<scratch> -P cli_case.cmake
#
# Checks the CLI contract the tools README promises: --help exits 0 with
# usage on stdout; any bad flag or input is exit code 2 with exactly one
# stderr line; --sanitize/--trace/--faults compose in one run and produce
# parseable artifacts.

if(NOT DEFINED EXE OR NOT DEFINED CASE OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "cli_case.cmake needs -DEXE=, -DCASE= and -DOUT_DIR=")
endif()

function(run_cli)
  execute_process(
    COMMAND ${EXE} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    TIMEOUT 120)
  set(rc "${rc}" PARENT_SCOPE)
  set(out "${out}" PARENT_SCOPE)
  set(err "${err}" PARENT_SCOPE)
endfunction()

function(expect_exit expected)
  if(NOT rc EQUAL ${expected})
    message(FATAL_ERROR
            "case ${CASE}: expected exit ${expected}, got '${rc}'\n"
            "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# The one-line-error contract: stderr is a single "pmg_run: ..." line.
function(expect_one_stderr_line)
  string(REGEX REPLACE "\n$" "" trimmed "${err}")
  if(trimmed STREQUAL "")
    message(FATAL_ERROR "case ${CASE}: expected one stderr line, got none")
  endif()
  string(FIND "${trimmed}" "\n" nl)
  if(NOT nl EQUAL -1)
    message(FATAL_ERROR
            "case ${CASE}: expected exactly one stderr line, got:\n${err}")
  endif()
  if(NOT trimmed MATCHES "^pmg_run: ")
    message(FATAL_ERROR
            "case ${CASE}: stderr line not prefixed 'pmg_run: ': ${trimmed}")
  endif()
endfunction()

function(expect_json_file path)
  if(NOT EXISTS "${path}")
    message(FATAL_ERROR "case ${CASE}: expected output file ${path}")
  endif()
  file(READ "${path}" body LIMIT 64)
  if(NOT body MATCHES "^{")
    message(FATAL_ERROR
            "case ${CASE}: ${path} does not start a JSON object: '${body}'")
  endif()
endfunction()

if(CASE STREQUAL "help")
  run_cli(--help)
  expect_exit(0)
  if(NOT out MATCHES "usage:")
    message(FATAL_ERROR "case help: no usage text on stdout:\n${out}")
  endif()
  if(NOT err STREQUAL "")
    message(FATAL_ERROR "case help: --help must not write stderr:\n${err}")
  endif()

elseif(CASE STREQUAL "no_args")
  run_cli()
  expect_exit(2)
  if(NOT err MATCHES "usage:")
    message(FATAL_ERROR "case no_args: no usage text on stderr:\n${err}")
  endif()

elseif(CASE STREQUAL "unknown_flag")
  run_cli(--graph kron30 --app bfs --bogus-flag)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "missing_graph")
  run_cli(--app bfs)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "bad_graph")
  run_cli(--graph no_such_graph --app bfs)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "bad_graph_file")
  run_cli(--graph file:${OUT_DIR}/does_not_exist.csr --app bfs)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "bad_faults")
  run_cli(--graph kron30 --app bfs --faults thisisnotaspec)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "bad_threads")
  run_cli(--graph kron30 --app bfs --threads 0)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "bad_metrics")
  run_cli(--graph kron30 --app bfs --metrics=xml)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "bad_profile")
  run_cli(--graph kron30 --app bfs --profile)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "bad_explain")
  run_cli(--graph kron30 --app bfs --explain=yaml)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "explain_compose")
  # --explain (table on stdout), --journal (.pmgj artifact), and the
  # "whatif" section of the --json report, all from one run.
  set(journal_file "${OUT_DIR}/explain.pmgj")
  set(report_file "${OUT_DIR}/explain.report.json")
  file(REMOVE "${journal_file}" "${report_file}")
  run_cli(--graph kron30 --app bfs --threads 8 --explain
          --journal "${journal_file}" --json "${report_file}")
  expect_exit(0)
  expect_json_file("${journal_file}")
  expect_json_file("${report_file}")
  file(READ "${journal_file}" journal)
  if(NOT journal MATCHES "\"pmgj_version\":")
    message(FATAL_ERROR
            "case explain_compose: ${journal_file} is not a .pmgj document")
  endif()
  file(READ "${report_file}" report)
  foreach(needle "\"whatif\":" "\"levers\":" "\"stragglers\":" "\"bound\":")
    string(FIND "${report}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR
              "case explain_compose: report.json lacks ${needle}:\n${report}")
    endif()
  endforeach()
  if(NOT out MATCHES "top levers")
    message(FATAL_ERROR
            "case explain_compose: no levers table on stdout:\n${out}")
  endif()
  if(NOT out MATCHES "whatif: ")
    message(FATAL_ERROR
            "case explain_compose: no whatif header on stdout:\n${out}")
  endif()

elseif(CASE STREQUAL "metrics_compose")
  # Bare --metrics (Prometheus text), --profile, and the --json embedding
  # in one run.
  set(report_file "${OUT_DIR}/metrics.report.json")
  set(folded_file "${OUT_DIR}/metrics.folded")
  file(REMOVE "${report_file}" "${folded_file}")
  run_cli(--graph kron30 --app bfs --threads 8 --metrics
          --profile "${folded_file}" --json "${report_file}")
  expect_exit(0)
  expect_json_file("${report_file}")
  file(READ "${report_file}" report)
  foreach(needle "\"metrics\":" "\"heatmap\":" "\"counters\":"
          "\"profile\":" "pmg_machine_accesses_total")
    string(FIND "${report}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR
              "case metrics_compose: report.json lacks ${needle}:\n${report}")
    endif()
  endforeach()
  if(NOT out MATCHES "heatmap: ")
    message(FATAL_ERROR
            "case metrics_compose: no heatmap section on stdout:\n${out}")
  endif()
  if(NOT out MATCHES "pmg_machine_accesses_total")
    message(FATAL_ERROR
            "case metrics_compose: no Prometheus text on stdout:\n${out}")
  endif()
  if(NOT EXISTS "${folded_file}")
    message(FATAL_ERROR "case metrics_compose: no folded profile written")
  endif()
  file(READ "${folded_file}" folded)
  if(NOT folded MATCHES "bfs\\.")
    message(FATAL_ERROR
            "case metrics_compose: folded profile has no bfs samples:\n"
            "${folded}")
  endif()

elseif(CASE STREQUAL "bad_serve")
  run_cli(--graph kron30 --serve thisisnotaspec)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "bad_qps")
  run_cli(--graph kron30 --serve steady --qps 0)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "bad_deadline")
  run_cli(--graph kron30 --serve steady --deadline-ns 0)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "qps_without_serve")
  run_cli(--graph kron30 --app bfs --qps 100)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "serve_with_app")
  run_cli(--graph kron30 --app bfs --serve steady)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "serve_compose")
  # Serve mode composing with --faults, --metrics, and --json: the report
  # carries the serve section and the conservation law holds on stdout.
  set(report_file "${OUT_DIR}/serve.report.json")
  file(REMOVE "${report_file}")
  run_cli(--graph kron30 --threads 8 --metrics
          --serve "poisson:qps=500,n=10,deadline=8000000,seed=3"
          --faults "lat@access:1000,ns=2000,count=4\;seed=7"
          --json "${report_file}")
  expect_exit(0)
  expect_json_file("${report_file}")
  file(READ "${report_file}" report)
  foreach(needle "\"mode\":\"serve\"" "\"serve\":" "\"workload\":"
          "\"busy_ns\":" "\"kinds\":" "\"shed_by_reason\":" "\"fault\":")
    string(FIND "${report}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR
              "case serve_compose: report.json lacks ${needle}:\n${report}")
    endif()
  endforeach()
  if(NOT out MATCHES "conservation +OK")
    message(FATAL_ERROR
            "case serve_compose: no conservation OK line on stdout:\n${out}")
  endif()
  if(NOT out MATCHES "pmg_serve_latency_ns")
    message(FATAL_ERROR
            "case serve_compose: no serve metrics on stdout:\n${out}")
  endif()

elseif(CASE STREQUAL "serve_determinism")
  # The acceptance invariant at the CLI layer: identical seeds and flags
  # yield byte-identical serve reports.
  set(report_a "${OUT_DIR}/serve.det.a.json")
  set(report_b "${OUT_DIR}/serve.det.b.json")
  file(REMOVE "${report_a}" "${report_b}")
  run_cli(--graph kron30 --threads 8
          --serve "burst:qps=600,x=4,duty=25,period=10000000,n=12,deadline=6000000,seed=11"
          --faults "crash@access:2000000\;seed=9"
          --json "${report_a}")
  expect_exit(0)
  run_cli(--graph kron30 --threads 8
          --serve "burst:qps=600,x=4,duty=25,period=10000000,n=12,deadline=6000000,seed=11"
          --faults "crash@access:2000000\;seed=9"
          --json "${report_b}")
  expect_exit(0)
  file(READ "${report_a}" a)
  file(READ "${report_b}" b)
  if(NOT a STREQUAL b)
    message(FATAL_ERROR
            "case serve_determinism: identical-seed runs differ:\n"
            "A: ${a}\nB: ${b}")
  endif()

elseif(CASE STREQUAL "compose")
  # --sanitize, --trace, --faults (plus --json) in one run.
  set(trace_file "${OUT_DIR}/compose.trace.json")
  set(report_file "${OUT_DIR}/compose.report.json")
  file(REMOVE "${trace_file}" "${report_file}")
  # \; keeps the spec one argument: an unescaped ; is a CMake list split.
  run_cli(--graph kron30 --app bfs --threads 8 --sanitize
          --faults "lat@access:1000,ns=2000,count=4\;seed=7"
          --trace "${trace_file}" --json "${report_file}")
  expect_exit(0)
  expect_json_file("${trace_file}")
  expect_json_file("${report_file}")
  file(READ "${report_file}" report)
  foreach(needle "\"schema_version\":" "\"trace\":" "\"sancheck\":"
          "\"fault\":" "\"conserves\":true")
    string(FIND "${report}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR
              "case compose: report.json lacks ${needle}:\n${report}")
    endif()
  endforeach()

elseif(CASE STREQUAL "bad_tierscope")
  run_cli(--graph kron30 --app bfs --tierscope=xml)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "tierscope_with_serve")
  run_cli(--graph kron30 --serve steady --tierscope)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "tierscope_with_recovery")
  run_cli(--graph kron30 --app bfs --checkpoint-every 2 --tierscope)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "tierscope_compose")
  # --tierscope composing with --migration, --metrics, --explain, --trace
  # and --json: the audit table (with its conservation verdict) and the
  # misplacement join land on stdout, the report carries the versioned
  # tierscope/misplacement sections, and the Chrome trace carries the
  # per-node tier tracks.
  set(trace_file "${OUT_DIR}/tierscope.trace.json")
  set(report_file "${OUT_DIR}/tierscope.report.json")
  file(REMOVE "${trace_file}" "${report_file}")
  run_cli(--graph kron30 --app bfs --machine pmm --migration --threads 8
          --tierscope --metrics --explain
          --trace "${trace_file}" --json "${report_file}")
  expect_exit(0)
  expect_json_file("${trace_file}")
  expect_json_file("${report_file}")
  file(READ "${report_file}" report)
  foreach(needle "\"tierscope\":" "\"misplacement\":" "\"conserves\":true"
          "\"flows\":" "\"nodes\":" "\"regret_total_ns\":")
    string(FIND "${report}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR
              "case tierscope_compose: report.json lacks ${needle}:\n"
              "${report}")
    endif()
  endforeach()
  file(READ "${trace_file}" chrome)
  if(NOT chrome MATCHES "tier daemon")
    message(FATAL_ERROR
            "case tierscope_compose: Chrome trace lacks the tier daemon "
            "track")
  endif()
  if(NOT out MATCHES "tierscope: ")
    message(FATAL_ERROR
            "case tierscope_compose: no tierscope audit on stdout:\n${out}")
  endif()
  if(NOT out MATCHES "conservation OK")
    message(FATAL_ERROR
            "case tierscope_compose: no conservation verdict on stdout:\n"
            "${out}")
  endif()
  if(NOT out MATCHES "misplacement: ")
    message(FATAL_ERROR
            "case tierscope_compose: no misplacement join on stdout:\n${out}")
  endif()

elseif(CASE STREQUAL "bad_serve_trace")
  run_cli(--graph kron30 --serve steady --serve-trace=0)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "serve_trace_without_serve")
  run_cli(--graph kron30 --app bfs --serve-trace)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "bad_explain_tail")
  run_cli(--graph kron30 --serve steady --explain-tail=frobs)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "explain_tail_without_serve")
  run_cli(--graph kron30 --app bfs --explain-tail)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "serve_trace_compose")
  # --serve-trace and --explain-tail composing with --serve-naive, --trace
  # and --json: the report carries the servetrace / serve_tail / exemplars
  # sections, the Chrome trace carries the per-request tracks, and the
  # tail table lands on stdout.
  set(trace_file "${OUT_DIR}/servetrace.trace.json")
  set(report_file "${OUT_DIR}/servetrace.report.json")
  file(REMOVE "${trace_file}" "${report_file}")
  run_cli(--graph kron30 --threads 8 --serve-naive
          --serve "poisson:qps=500,n=10,deadline=8000000,seed=3"
          --serve-trace=4 --explain-tail
          --trace "${trace_file}" --json "${report_file}")
  expect_exit(0)
  expect_json_file("${trace_file}")
  expect_json_file("${report_file}")
  file(READ "${report_file}" report)
  foreach(needle "\"servetrace\":" "\"serve_tail\":" "\"exemplars\":"
          "\"slowest_k\":4" "\"miss_causes\":")
    string(FIND "${report}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR
              "case serve_trace_compose: report.json lacks ${needle}:\n"
              "${report}")
    endif()
  endforeach()
  file(READ "${trace_file}" chrome)
  foreach(needle "serve worker (selected requests)" "\"cat\":\"serve\"")
    string(FIND "${chrome}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR
              "case serve_trace_compose: Chrome trace lacks ${needle}")
    endif()
  endforeach()
  if(NOT out MATCHES "serve tail:")
    message(FATAL_ERROR
            "case serve_trace_compose: no tail table on stdout:\n${out}")
  endif()

else()
  message(FATAL_ERROR "unknown CASE '${CASE}'")
endif()
