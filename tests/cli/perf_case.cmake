# One pmg_perf CLI smoke case per ctest invocation:
#
#   cmake -DEXE=<pmg_perf> -DCASE=<name> -DOUT_DIR=<scratch> -P perf_case.cmake
#
# Exercises the gate contract end to end on synthetic BENCH documents:
# exit 0 within threshold, exit 1 on a regression or a vanished
# measurement, exit 2 on usage errors.

if(NOT DEFINED EXE OR NOT DEFINED CASE OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "perf_case.cmake needs -DEXE=, -DCASE= and -DOUT_DIR=")
endif()

set(work "${OUT_DIR}/perf_case.${CASE}")
file(REMOVE_RECURSE "${work}")
file(MAKE_DIRECTORY "${work}/base" "${work}/cur")

# A two-row baseline bench document shared by the cases.
file(WRITE "${work}/base/BENCH_demo.json"
  "{\"schema_version\": 3, \"bench\": \"demo\", \"rows\": ["
  "{\"graph\": \"rmat27\", \"variant\": \"a\", \"time_ns\": 1000000},"
  "{\"graph\": \"rmat27\", \"variant\": \"b\", \"time_ns\": 2000000}]}\n")

function(write_current a_ns b_ns)
  file(WRITE "${work}/cur/BENCH_demo.json"
    "{\"schema_version\": 3, \"bench\": \"demo\", \"rows\": ["
    "{\"graph\": \"rmat27\", \"variant\": \"a\", \"time_ns\": ${a_ns}},"
    "{\"graph\": \"rmat27\", \"variant\": \"b\", \"time_ns\": ${b_ns}}]}\n")
endfunction()

function(run_perf)
  execute_process(
    COMMAND ${EXE} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    TIMEOUT 120)
  set(rc "${rc}" PARENT_SCOPE)
  set(out "${out}" PARENT_SCOPE)
  set(err "${err}" PARENT_SCOPE)
endfunction()

function(expect_exit expected)
  if(NOT rc EQUAL ${expected})
    message(FATAL_ERROR
            "case ${CASE}: expected exit ${expected}, got '${rc}'\n"
            "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

if(CASE STREQUAL "green")
  # +3% on one row stays under the 5% gate.
  write_current(1030000 2000000)
  run_perf(--baseline "${work}/base" --current "${work}/cur" --threshold 5%)
  expect_exit(0)
  if(NOT out MATCHES "verdict: PASS")
    message(FATAL_ERROR "case green: no PASS verdict:\n${out}")
  endif()

elseif(CASE STREQUAL "regression")
  # +8% on a gated _ns field must fail a 5% gate.
  write_current(1080000 2000000)
  run_perf(--baseline "${work}/base" --current "${work}/cur" --threshold 5%)
  expect_exit(1)
  if(NOT out MATCHES "REGRESSION")
    message(FATAL_ERROR "case regression: no REGRESSION row:\n${out}")
  endif()

elseif(CASE STREQUAL "missing_row")
  # A measurement that vanished from the current report fails the gate.
  file(WRITE "${work}/cur/BENCH_demo.json"
    "{\"schema_version\": 3, \"bench\": \"demo\", \"rows\": ["
    "{\"graph\": \"rmat27\", \"variant\": \"a\", \"time_ns\": 1000000}]}\n")
  run_perf(--baseline "${work}/base" --current "${work}/cur" --threshold 5%)
  expect_exit(1)
  if(NOT out MATCHES "FAILURE")
    message(FATAL_ERROR "case missing_row: no FAILURE line:\n${out}")
  endif()

elseif(CASE STREQUAL "missing_file")
  run_perf(--baseline "${work}/base" --current "${work}/cur" --threshold 5%)
  expect_exit(1)
  if(NOT out MATCHES "missing from current")
    message(FATAL_ERROR "case missing_file: no missing-file FAILURE:\n${out}")
  endif()

elseif(CASE STREQUAL "bad_threshold")
  write_current(1000000 2000000)
  run_perf(--baseline "${work}/base" --current "${work}/cur"
           --threshold nonsense)
  expect_exit(2)
  if(NOT err MATCHES "^pmg_perf: ")
    message(FATAL_ERROR "case bad_threshold: bad stderr:\n${err}")
  endif()

elseif(CASE STREQUAL "bad_flag")
  run_perf(--bogus)
  expect_exit(2)
  if(NOT err MATCHES "^pmg_perf: ")
    message(FATAL_ERROR "case bad_flag: bad stderr:\n${err}")
  endif()

else()
  message(FATAL_ERROR "unknown CASE '${CASE}'")
endif()
