# One pmg_explain CLI smoke case per ctest invocation:
#
#   cmake -DEXE=<pmg_explain> -DRUN_EXE=<pmg_run> -DCASE=<name>
#         -DOUT_DIR=<scratch> -P explain_case.cmake
#
# Checks the offline-explanation contract: --help exits 0 with usage on
# stdout; a missing, corrupt, truncated, or version-mismatched journal
# (and any bad flag) is exit code 2 with exactly one "pmg_explain: ..."
# stderr line; a journal recorded by pmg_run --journal explains cleanly
# in both table and JSON form.

if(NOT DEFINED EXE OR NOT DEFINED RUN_EXE OR NOT DEFINED CASE
   OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR
          "explain_case.cmake needs -DEXE=, -DRUN_EXE=, -DCASE=, -DOUT_DIR=")
endif()

function(run_cli)
  execute_process(
    COMMAND ${EXE} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    TIMEOUT 120)
  set(rc "${rc}" PARENT_SCOPE)
  set(out "${out}" PARENT_SCOPE)
  set(err "${err}" PARENT_SCOPE)
endfunction()

function(expect_exit expected)
  if(NOT rc EQUAL ${expected})
    message(FATAL_ERROR
            "case ${CASE}: expected exit ${expected}, got '${rc}'\n"
            "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# The one-line-error contract: stderr is a single "pmg_explain: ..." line.
function(expect_one_stderr_line)
  string(REGEX REPLACE "\n$" "" trimmed "${err}")
  if(trimmed STREQUAL "")
    message(FATAL_ERROR "case ${CASE}: expected one stderr line, got none")
  endif()
  string(FIND "${trimmed}" "\n" nl)
  if(NOT nl EQUAL -1)
    message(FATAL_ERROR
            "case ${CASE}: expected exactly one stderr line, got:\n${err}")
  endif()
  if(NOT trimmed MATCHES "^pmg_explain: ")
    message(FATAL_ERROR
            "case ${CASE}: stderr not prefixed 'pmg_explain: ': ${trimmed}")
  endif()
endfunction()

# Records a fresh journal with pmg_run --journal into ${journal_file}.
function(record_journal)
  set(journal_file "${OUT_DIR}/explain_case.pmgj" PARENT_SCOPE)
  execute_process(
    COMMAND ${RUN_EXE} --graph kron30 --app bfs --threads 8
            --journal "${OUT_DIR}/explain_case.pmgj"
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err
    TIMEOUT 120)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
            "case ${CASE}: pmg_run --journal failed (${run_rc}):\n${run_err}")
  endif()
endfunction()

# Records a batch run report with a tierscope section into
# ${tiering_report} via pmg_run --tierscope --json.
function(record_tiering_report)
  set(report "${OUT_DIR}/explain_case.tiering.json")
  set(tiering_report "${report}" PARENT_SCOPE)
  execute_process(
    COMMAND ${RUN_EXE} --graph kron30 --app bfs --threads 8
            --machine pmm --migration --tierscope --json "${report}"
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err
    TIMEOUT 120)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
            "case ${CASE}: pmg_run --tierscope failed (${run_rc}):\n"
            "${run_err}")
  endif()
endfunction()

# Records a serve-mode run report (with its serve_tail section) into
# ${tail_report_<tag>} via pmg_run --serve --serve-trace --json.
function(record_tail_report tag workload)
  set(report "${OUT_DIR}/explain_case.tail.${tag}.json")
  set(tail_report_${tag} "${report}" PARENT_SCOPE)
  execute_process(
    COMMAND ${RUN_EXE} --graph kron30 --threads 8
            --serve "${workload}" --serve-trace --json "${report}"
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err
    TIMEOUT 120)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
            "case ${CASE}: pmg_run --serve failed (${run_rc}):\n${run_err}")
  endif()
endfunction()

if(CASE STREQUAL "help")
  run_cli(--help)
  expect_exit(0)
  if(NOT out MATCHES "usage:")
    message(FATAL_ERROR "case help: no usage text on stdout:\n${out}")
  endif()
  if(NOT err STREQUAL "")
    message(FATAL_ERROR "case help: --help must not write stderr:\n${err}")
  endif()

elseif(CASE STREQUAL "no_args")
  run_cli()
  expect_exit(2)
  if(NOT err MATCHES "usage:")
    message(FATAL_ERROR "case no_args: no usage text on stderr:\n${err}")
  endif()

elseif(CASE STREQUAL "unknown_flag")
  run_cli(whatever.pmgj --bogus-flag)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "missing_journal")
  run_cli(${OUT_DIR}/does_not_exist.pmgj)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "corrupt_journal")
  set(journal_file "${OUT_DIR}/corrupt.pmgj")
  file(WRITE "${journal_file}" "this is not a journal")
  run_cli("${journal_file}")
  expect_exit(2)
  expect_one_stderr_line()
  if(NOT err MATCHES "parse")
    message(FATAL_ERROR
            "case corrupt_journal: error does not mention parsing:\n${err}")
  endif()

elseif(CASE STREQUAL "version_mismatch")
  set(journal_file "${OUT_DIR}/future.pmgj")
  file(WRITE "${journal_file}" "{\"pmgj_version\":99}")
  run_cli("${journal_file}")
  expect_exit(2)
  expect_one_stderr_line()
  if(NOT err MATCHES "version 99")
    message(FATAL_ERROR
            "case version_mismatch: error does not name the version:\n${err}")
  endif()

elseif(CASE STREQUAL "truncated_journal")
  record_journal()
  file(READ "${journal_file}" body)
  string(LENGTH "${body}" len)
  math(EXPR half "${len} / 2")
  string(SUBSTRING "${body}" 0 ${half} prefix)
  set(cut_file "${OUT_DIR}/truncated.pmgj")
  file(WRITE "${cut_file}" "${prefix}")
  run_cli("${cut_file}")
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "bad_speedup")
  run_cli(whatever.pmgj --folded x.folded --region r --speedup 0.5)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "good")
  record_journal()
  run_cli("${journal_file}")
  expect_exit(0)
  foreach(needle "whatif: " "top levers" "dram-speed-pmm")
    string(FIND "${out}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "case good: stdout lacks '${needle}':\n${out}")
    endif()
  endforeach()

elseif(CASE STREQUAL "good_json")
  record_journal()
  # A synthetic folded profile exercises the region-speedup block too:
  # the frame name does not matter for the contract, only the math.
  set(folded_file "${OUT_DIR}/explain_case.folded")
  file(WRITE "${folded_file}" "bfs;hot 30\nbfs;cold 10\n")
  run_cli("${journal_file}" --json --folded "${folded_file}" --region hot)
  expect_exit(0)
  if(NOT out MATCHES "^{")
    message(FATAL_ERROR "case good_json: stdout is not JSON:\n${out}")
  endif()
  foreach(needle "\"tool\":\"pmg_explain\"" "\"whatif\":" "\"levers\":"
          "\"region_speedup\":" "\"found\":true")
    string(FIND "${out}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "case good_json: output lacks ${needle}:\n${out}")
    endif()
  endforeach()

elseif(CASE STREQUAL "tail")
  record_tail_report(a "poisson:qps=500,n=10,deadline=8000000,seed=3")
  run_cli(--tail "${tail_report_a}")
  expect_exit(0)
  foreach(needle "serve tail: " "p999" "answered time split:")
    string(FIND "${out}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "case tail: stdout lacks '${needle}':\n${out}")
    endif()
  endforeach()

elseif(CASE STREQUAL "tail_contrast")
  # Two runs of different workloads contrasted offline — the same flow
  # that diffs a PMM report against a DRAM one.
  record_tail_report(a "poisson:qps=500,n=10,deadline=60000000,seed=3")
  record_tail_report(b "burst:qps=600,x=4,duty=25,period=10000000,n=12,deadline=60000000,seed=11")
  run_cli(--tail "${tail_report_a}" --contrast "${tail_report_b}" --json)
  expect_exit(0)
  foreach(needle "\"tool\":\"pmg_explain\"" "\"serve_tail\":"
          "\"contrast_tail\":" "\"miss_causes\":")
    string(FIND "${out}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR
              "case tail_contrast: output lacks ${needle}:\n${out}")
    endif()
  endforeach()
  run_cli(--tail "${tail_report_a}" --contrast "${tail_report_b}")
  expect_exit(0)
  if(NOT out MATCHES "p999 movers")
    message(FATAL_ERROR
            "case tail_contrast: no movers table on stdout:\n${out}")
  endif()

elseif(CASE STREQUAL "tail_missing")
  run_cli(--tail "${OUT_DIR}/no_such_report.json")
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "tail_no_section")
  # A valid JSON document that is not a serve report: clean exit-2 error.
  set(bogus "${OUT_DIR}/explain_case.notail.json")
  file(WRITE "${bogus}" "{\"schema_version\":1}")
  run_cli(--tail "${bogus}")
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "tail_with_journal")
  # --tail explains a run report; mixing in a journal positional is a
  # usage error, not a silent pick-one.
  run_cli(--tail "${OUT_DIR}/whatever.json" "${OUT_DIR}/whatever.pmgj")
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "contrast_without_tail")
  run_cli(--contrast "${OUT_DIR}/whatever.json")
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "tiering")
  record_tiering_report()
  run_cli(--tiering "${tiering_report}")
  expect_exit(0)
  foreach(needle "tierscope: " "conservation OK" "daemon component")
    string(FIND "${out}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "case tiering: stdout lacks '${needle}':\n${out}")
    endif()
  endforeach()

elseif(CASE STREQUAL "tiering_json")
  record_tiering_report()
  run_cli(--tiering "${tiering_report}" --json)
  expect_exit(0)
  if(NOT out MATCHES "^{")
    message(FATAL_ERROR "case tiering_json: stdout is not JSON:\n${out}")
  endif()
  foreach(needle "\"tool\":\"pmg_explain\"" "\"tierscope\":"
          "\"conserves\":true" "\"misplacement\":")
    string(FIND "${out}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR
              "case tiering_json: output lacks ${needle}:\n${out}")
    endif()
  endforeach()

elseif(CASE STREQUAL "tiering_missing")
  run_cli(--tiering "${OUT_DIR}/no_such_report.json")
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "tiering_no_section")
  # A valid JSON document without a tierscope section: clean exit-2 error
  # that tells the user how to write one.
  set(bogus "${OUT_DIR}/explain_case.notiering.json")
  file(WRITE "${bogus}" "{\"schema_version\":1}")
  run_cli(--tiering "${bogus}")
  expect_exit(2)
  expect_one_stderr_line()
  if(NOT err MATCHES "--tierscope")
    message(FATAL_ERROR
            "case tiering_no_section: error does not point at pmg_run "
            "--tierscope:\n${err}")
  endif()

elseif(CASE STREQUAL "tiering_with_tail")
  run_cli(--tail "${OUT_DIR}/whatever.json" --tiering "${OUT_DIR}/other.json")
  expect_exit(2)
  expect_one_stderr_line()

else()
  message(FATAL_ERROR "unknown CASE '${CASE}'")
endif()
