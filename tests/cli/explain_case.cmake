# One pmg_explain CLI smoke case per ctest invocation:
#
#   cmake -DEXE=<pmg_explain> -DRUN_EXE=<pmg_run> -DCASE=<name>
#         -DOUT_DIR=<scratch> -P explain_case.cmake
#
# Checks the offline-explanation contract: --help exits 0 with usage on
# stdout; a missing, corrupt, truncated, or version-mismatched journal
# (and any bad flag) is exit code 2 with exactly one "pmg_explain: ..."
# stderr line; a journal recorded by pmg_run --journal explains cleanly
# in both table and JSON form.

if(NOT DEFINED EXE OR NOT DEFINED RUN_EXE OR NOT DEFINED CASE
   OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR
          "explain_case.cmake needs -DEXE=, -DRUN_EXE=, -DCASE=, -DOUT_DIR=")
endif()

function(run_cli)
  execute_process(
    COMMAND ${EXE} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    TIMEOUT 120)
  set(rc "${rc}" PARENT_SCOPE)
  set(out "${out}" PARENT_SCOPE)
  set(err "${err}" PARENT_SCOPE)
endfunction()

function(expect_exit expected)
  if(NOT rc EQUAL ${expected})
    message(FATAL_ERROR
            "case ${CASE}: expected exit ${expected}, got '${rc}'\n"
            "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# The one-line-error contract: stderr is a single "pmg_explain: ..." line.
function(expect_one_stderr_line)
  string(REGEX REPLACE "\n$" "" trimmed "${err}")
  if(trimmed STREQUAL "")
    message(FATAL_ERROR "case ${CASE}: expected one stderr line, got none")
  endif()
  string(FIND "${trimmed}" "\n" nl)
  if(NOT nl EQUAL -1)
    message(FATAL_ERROR
            "case ${CASE}: expected exactly one stderr line, got:\n${err}")
  endif()
  if(NOT trimmed MATCHES "^pmg_explain: ")
    message(FATAL_ERROR
            "case ${CASE}: stderr not prefixed 'pmg_explain: ': ${trimmed}")
  endif()
endfunction()

# Records a fresh journal with pmg_run --journal into ${journal_file}.
function(record_journal)
  set(journal_file "${OUT_DIR}/explain_case.pmgj" PARENT_SCOPE)
  execute_process(
    COMMAND ${RUN_EXE} --graph kron30 --app bfs --threads 8
            --journal "${OUT_DIR}/explain_case.pmgj"
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err
    TIMEOUT 120)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
            "case ${CASE}: pmg_run --journal failed (${run_rc}):\n${run_err}")
  endif()
endfunction()

if(CASE STREQUAL "help")
  run_cli(--help)
  expect_exit(0)
  if(NOT out MATCHES "usage:")
    message(FATAL_ERROR "case help: no usage text on stdout:\n${out}")
  endif()
  if(NOT err STREQUAL "")
    message(FATAL_ERROR "case help: --help must not write stderr:\n${err}")
  endif()

elseif(CASE STREQUAL "no_args")
  run_cli()
  expect_exit(2)
  if(NOT err MATCHES "usage:")
    message(FATAL_ERROR "case no_args: no usage text on stderr:\n${err}")
  endif()

elseif(CASE STREQUAL "unknown_flag")
  run_cli(whatever.pmgj --bogus-flag)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "missing_journal")
  run_cli(${OUT_DIR}/does_not_exist.pmgj)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "corrupt_journal")
  set(journal_file "${OUT_DIR}/corrupt.pmgj")
  file(WRITE "${journal_file}" "this is not a journal")
  run_cli("${journal_file}")
  expect_exit(2)
  expect_one_stderr_line()
  if(NOT err MATCHES "parse")
    message(FATAL_ERROR
            "case corrupt_journal: error does not mention parsing:\n${err}")
  endif()

elseif(CASE STREQUAL "version_mismatch")
  set(journal_file "${OUT_DIR}/future.pmgj")
  file(WRITE "${journal_file}" "{\"pmgj_version\":99}")
  run_cli("${journal_file}")
  expect_exit(2)
  expect_one_stderr_line()
  if(NOT err MATCHES "version 99")
    message(FATAL_ERROR
            "case version_mismatch: error does not name the version:\n${err}")
  endif()

elseif(CASE STREQUAL "truncated_journal")
  record_journal()
  file(READ "${journal_file}" body)
  string(LENGTH "${body}" len)
  math(EXPR half "${len} / 2")
  string(SUBSTRING "${body}" 0 ${half} prefix)
  set(cut_file "${OUT_DIR}/truncated.pmgj")
  file(WRITE "${cut_file}" "${prefix}")
  run_cli("${cut_file}")
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "bad_speedup")
  run_cli(whatever.pmgj --folded x.folded --region r --speedup 0.5)
  expect_exit(2)
  expect_one_stderr_line()

elseif(CASE STREQUAL "good")
  record_journal()
  run_cli("${journal_file}")
  expect_exit(0)
  foreach(needle "whatif: " "top levers" "dram-speed-pmm")
    string(FIND "${out}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "case good: stdout lacks '${needle}':\n${out}")
    endif()
  endforeach()

elseif(CASE STREQUAL "good_json")
  record_journal()
  # A synthetic folded profile exercises the region-speedup block too:
  # the frame name does not matter for the contract, only the math.
  set(folded_file "${OUT_DIR}/explain_case.folded")
  file(WRITE "${folded_file}" "bfs;hot 30\nbfs;cold 10\n")
  run_cli("${journal_file}" --json --folded "${folded_file}" --region hot)
  expect_exit(0)
  if(NOT out MATCHES "^{")
    message(FATAL_ERROR "case good_json: stdout is not JSON:\n${out}")
  endif()
  foreach(needle "\"tool\":\"pmg_explain\"" "\"whatif\":" "\"levers\":"
          "\"region_speedup\":" "\"found\":true")
    string(FIND "${out}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "case good_json: output lacks ${needle}:\n${out}")
    endif()
  endforeach()

else()
  message(FATAL_ERROR "unknown CASE '${CASE}'")
endif()
