#include "pmg/sancheck/sancheck.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "pmg/analytics/bc.h"
#include "pmg/analytics/bfs.h"
#include "pmg/analytics/cc.h"
#include "pmg/analytics/kcore.h"
#include "pmg/analytics/pagerank.h"
#include "pmg/analytics/sssp.h"
#include "pmg/analytics/tc.h"
#include "pmg/frameworks/framework.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/properties.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"
#include "pmg/runtime/worklist.h"
#include "tests/analytics/test_util.h"

namespace pmg::sancheck {
namespace {

using analytics::testutil::Corpus;
using analytics::testutil::DefaultOptions;
using analytics::testutil::NamedGraph;

memsim::PagePolicy TestPolicy() {
  memsim::PagePolicy policy;
  policy.placement = memsim::Placement::kInterleaved;
  return policy;
}

// ---------------------------------------------------------------------------
// Race-detector semantics on a bare machine.
// ---------------------------------------------------------------------------

class RaceDetectorTest : public testing::Test {
 protected:
  RaceDetectorTest() : machine_(memsim::DramOnlyConfig()) {
    machine_.AddObserver(&checker_);
    region_ = machine_.Alloc(4096, TestPolicy(), "arr");
    base_ = machine_.BaseOf(region_);
  }
  ~RaceDetectorTest() override { machine_.RemoveObserver(&checker_); }

  memsim::Machine machine_;
  Sancheck checker_;
  memsim::RegionId region_ = 0;
  VirtAddr base_ = 0;
};

TEST_F(RaceDetectorTest, ConflictingPlainWritesAreARace) {
  machine_.BeginEpoch(2);
  machine_.Access(0, base_, 8, AccessType::kWrite);
  machine_.Access(1, base_, 8, AccessType::kWrite);
  machine_.EndEpoch();
  EXPECT_EQ(machine_.stats().sancheck_races, 1u);
  EXPECT_EQ(machine_.stats().sancheck_race_epochs, 1u);
  ASSERT_EQ(checker_.summary().reports.size(), 1u);
  const RaceReport& r = checker_.summary().reports[0];
  EXPECT_EQ(r.region, "arr");
  EXPECT_EQ(r.offset, 0u);
  EXPECT_EQ(r.first_thread, 0u);
  EXPECT_EQ(r.second_thread, 1u);
  EXPECT_NE(r.ToString().find("data race"), std::string::npos);
}

TEST_F(RaceDetectorTest, PlainReadAgainstPlainWriteIsARace) {
  machine_.BeginEpoch(2);
  machine_.Access(0, base_, 8, AccessType::kRead);
  machine_.Access(1, base_, 8, AccessType::kWrite);
  machine_.EndEpoch();
  EXPECT_EQ(machine_.stats().sancheck_races, 1u);
}

TEST_F(RaceDetectorTest, ConcurrentPlainReadsAreNotARace) {
  machine_.BeginEpoch(2);
  machine_.Access(0, base_, 8, AccessType::kRead);
  machine_.Access(1, base_, 8, AccessType::kRead);
  machine_.EndEpoch();
  EXPECT_EQ(machine_.stats().sancheck_races, 0u);
}

TEST_F(RaceDetectorTest, DisjointBytesOfOneLineAreNotARace) {
  // Adjacent blocked partitions share boundary cache lines without sharing
  // bytes; the detector must not flag that.
  machine_.BeginEpoch(2);
  machine_.Access(0, base_, 8, AccessType::kWrite);
  machine_.Access(1, base_ + 8, 8, AccessType::kWrite);
  machine_.EndEpoch();
  EXPECT_EQ(machine_.stats().sancheck_races, 0u);
}

TEST_F(RaceDetectorTest, AtomicAccessesSuppressTheRace) {
  // Neither side atomic -> race; either side atomic -> synchronization.
  machine_.BeginEpoch(2);
  machine_.Access(0, base_, 8, AccessType::kAtomicWrite);
  machine_.Access(1, base_, 8, AccessType::kAtomicRead);
  machine_.Access(0, base_ + 64, 8, AccessType::kWrite);
  machine_.Access(1, base_ + 64, 8, AccessType::kAtomicRead);
  machine_.Access(0, base_ + 128, 8, AccessType::kAtomicRMW);
  machine_.Access(1, base_ + 128, 8, AccessType::kAtomicRMW);
  machine_.EndEpoch();
  EXPECT_EQ(machine_.stats().sancheck_races, 0u);
}

TEST_F(RaceDetectorTest, SingleThreadedEpochIsNeverARace) {
  machine_.BeginEpoch(1);
  machine_.Access(0, base_, 8, AccessType::kWrite);
  machine_.Access(0, base_, 8, AccessType::kWrite);
  machine_.EndEpoch();
  EXPECT_EQ(machine_.stats().sancheck_races, 0u);
}

TEST_F(RaceDetectorTest, OneReportPerLinePerEpoch) {
  machine_.BeginEpoch(4);
  for (ThreadId t = 0; t < 4; ++t) {
    machine_.Access(t, base_, 8, AccessType::kWrite);       // line 0
    machine_.Access(t, base_ + 64, 8, AccessType::kWrite);  // line 1
  }
  machine_.EndEpoch();
  EXPECT_EQ(machine_.stats().sancheck_races, 2u);
  EXPECT_EQ(machine_.stats().sancheck_race_epochs, 1u);
}

TEST_F(RaceDetectorTest, ShadowStateResetsBetweenEpochs) {
  machine_.BeginEpoch(2);
  machine_.Access(0, base_, 8, AccessType::kWrite);
  machine_.EndEpoch();
  // The earlier write must not carry into this epoch.
  machine_.BeginEpoch(2);
  machine_.Access(1, base_, 8, AccessType::kRead);
  machine_.EndEpoch();
  EXPECT_EQ(machine_.stats().sancheck_races, 0u);
  EXPECT_EQ(checker_.summary().checked_epochs, 2u);
}

TEST_F(RaceDetectorTest, AtomicRmwKeepsAccessMixParity) {
  const memsim::MachineStats before = machine_.stats();
  machine_.BeginEpoch(1);
  machine_.Access(0, base_, 8, AccessType::kAtomicRMW);
  machine_.EndEpoch();
  const memsim::MachineStats d = machine_.stats() - before;
  EXPECT_EQ(d.accesses, 1u);
  EXPECT_EQ(d.reads, 1u);
  EXPECT_EQ(d.writes, 1u);
}

// ---------------------------------------------------------------------------
// Shadow bounds/lifetime checker (death tests).
// ---------------------------------------------------------------------------

using BoundsCheckerDeathTest = RaceDetectorTest;

TEST_F(BoundsCheckerDeathTest, OutOfBoundsPastRegionSizeAborts) {
  // The region is 4096 bytes but the page table rounds it up to a page, so
  // only the shadow checker can see this overflow.
  EXPECT_DEATH(machine_.Access(0, base_ + 4092, 8, AccessType::kWrite),
               "out-of-bounds");
}

TEST_F(BoundsCheckerDeathTest, AccessIntoAllocatorGapAborts) {
  EXPECT_DEATH(machine_.Access(0, base_ + 8192, 8, AccessType::kRead),
               "out-of-bounds");
}

TEST_F(BoundsCheckerDeathTest, UseAfterFreeAborts) {
  const memsim::RegionId id = machine_.Alloc(4096, TestPolicy(), "tmp");
  const VirtAddr tmp = machine_.BaseOf(id);
  machine_.Access(0, tmp, 8, AccessType::kWrite);
  machine_.CloseEpochIfOpen();
  machine_.Free(id);
  EXPECT_DEATH(machine_.Access(0, tmp, 8, AccessType::kRead),
               "use-after-free");
}

TEST_F(BoundsCheckerDeathTest, UseAfterFreeStillCaughtAfterFrameRecycling) {
  // Free a region, then allocate and touch a same-sized one so the machine
  // hands the freed frames back out. The stale virtual address must still
  // trip the tombstone even though its old frames are live again elsewhere.
  const memsim::RegionId id = machine_.Alloc(4096, TestPolicy(), "tmp");
  const VirtAddr tmp = machine_.BaseOf(id);
  machine_.Access(0, tmp, 8, AccessType::kWrite);
  machine_.CloseEpochIfOpen();
  machine_.Free(id);
  const memsim::RegionId renew = machine_.Alloc(4096, TestPolicy(), "renew");
  machine_.Access(0, machine_.BaseOf(renew), 8, AccessType::kWrite);
  machine_.CloseEpochIfOpen();
  EXPECT_DEATH(machine_.Access(0, tmp, 8, AccessType::kRead),
               "use-after-free");
}

TEST_F(BoundsCheckerDeathTest, NeverAllocatedAddressAborts) {
  EXPECT_DEATH(machine_.Access(0, 64, 8, AccessType::kRead), "wild access");
}

TEST_F(BoundsCheckerDeathTest, AttachInsideAnEpochAborts) {
  machine_.BeginEpoch(2);
  Sancheck other;
  EXPECT_DEATH(machine_.AddObserver(&other), "outside an epoch");
  machine_.EndEpoch();
}

TEST(AbortOnRaceTest, AbortsAtTheFirstRace) {
  memsim::Machine machine(memsim::DramOnlyConfig());
  SancheckOptions options;
  options.abort_on_race = true;
  Sancheck checker(options);
  machine.AddObserver(&checker);
  const memsim::RegionId id = machine.Alloc(4096, TestPolicy(), "arr");
  const VirtAddr base = machine.BaseOf(id);
  machine.BeginEpoch(2);
  machine.Access(0, base, 8, AccessType::kWrite);
  EXPECT_DEATH(machine.Access(1, base, 8, AccessType::kWrite), "data race");
  machine.EndEpoch();
  machine.RemoveObserver(&checker);
}

// ---------------------------------------------------------------------------
// CostRing wrap regression.
// ---------------------------------------------------------------------------

TEST(CostRingTest, MinimalSliceWrapsInsteadOfOverflowing) {
  // Regression: the old cursor arithmetic computed modulo
  // (slice_bytes - 64), which divides by zero on a 64-byte slice and runs
  // past the slice end for anything smaller than a line. With sancheck
  // attached, any overflow would abort as out-of-bounds.
  memsim::Machine machine(memsim::DramOnlyConfig());
  Sancheck checker;
  machine.AddObserver(&checker);
  {
    runtime::CostRing ring(&machine, 2, "ring", runtime::CostRing::DefaultPolicy(),
                           /*slice_bytes=*/64);
    machine.BeginEpoch(2);
    for (int i = 0; i < 20; ++i) {
      ring.Charge(0, 8, AccessType::kWrite);
      ring.Charge(1, 8, AccessType::kRead);
    }
    machine.EndEpoch();
    EXPECT_EQ(machine.stats().sancheck_races, 0u);
  }
  machine.RemoveObserver(&checker);
}

TEST(CostRingTest, SubLineSliceStaysInBounds) {
  memsim::Machine machine(memsim::DramOnlyConfig());
  Sancheck checker;
  machine.AddObserver(&checker);
  {
    runtime::CostRing ring(&machine, 1, "ring", runtime::CostRing::DefaultPolicy(),
                           /*slice_bytes=*/48);
    machine.BeginEpoch(1);
    for (int i = 0; i < 50; ++i) ring.Charge(0, 16, AccessType::kWrite);
    machine.EndEpoch();
  }
  machine.RemoveObserver(&checker);
}

TEST(CostRingDeathTest, ChargeLargerThanSliceAborts) {
  memsim::Machine machine(memsim::DramOnlyConfig());
  runtime::CostRing ring(&machine, 1, "ring",
                         runtime::CostRing::DefaultPolicy(),
                         /*slice_bytes=*/16);
  EXPECT_DEATH(ring.Charge(0, 32, AccessType::kWrite),
               "larger than its scratch slice");
}

// ---------------------------------------------------------------------------
// A deliberately racy kernel must be flagged.
// ---------------------------------------------------------------------------

/// Machine + sanitizer + resident graph, with the sanitizer attached
/// *before* the graph is materialized so its shadow table is complete.
class SanEnv {
 public:
  SanEnv(const graph::CsrTopology& topo, bool in_edges, bool weights,
         uint32_t threads = 8)
      : machine_(memsim::DramOnlyConfig()) {
    machine_.AddObserver(&checker_);
    graph::GraphLayout layout;
    layout.policy.placement = memsim::Placement::kInterleaved;
    layout.load_in_edges = in_edges;
    layout.with_weights = weights;
    graph_ = std::make_unique<graph::CsrGraph>(&machine_, topo, layout, "g");
    rt_ = std::make_unique<runtime::Runtime>(&machine_, threads);
  }

  ~SanEnv() {
    // Detach before members are torn down so the machine never calls a
    // destroyed observer.
    graph_.reset();
    machine_.RemoveObserver(&checker_);
  }

  runtime::Runtime& rt() { return *rt_; }
  const graph::CsrGraph& graph() const { return *graph_; }
  memsim::Machine& machine() { return machine_; }
  const Sancheck& checker() const { return checker_; }

 private:
  memsim::Machine machine_;
  Sancheck checker_;
  std::unique_ptr<graph::CsrGraph> graph_;
  std::unique_ptr<runtime::Runtime> rt_;
};

TEST(RacyKernelTest, RacyLabelPropagationIsFlagged) {
  // CC-style label propagation written the racy way: every vertex reads
  // its successor's label with a plain load while the successor's owner
  // plain-writes it in the same epoch. On a cycle, every partition
  // boundary is such a pair.
  const graph::CsrTopology topo = graph::Cycle(40);
  SanEnv env(topo, false, false);
  runtime::NumaArray<uint64_t> label(&env.machine(), topo.num_vertices,
                                     TestPolicy(), "racy.label");
  env.rt().ParallelFor(0, topo.num_vertices, [&](ThreadId t, uint64_t v) {
    label.Set(t, v, v);
  });
  EXPECT_EQ(env.checker().summary().races, 0u) << "init must be clean";
  env.rt().ParallelFor(0, topo.num_vertices, [&](ThreadId t, uint64_t v) {
    const uint64_t lv = label.Get(t, v);
    env.graph().ForEachOutEdge(t, v,
                               [&](ThreadId tt, VertexId u, uint32_t) {
      const uint64_t lu = label.Get(tt, u);          // racy cross read
      label.Set(tt, v, lu < lv ? lu : lv);           // racy write
    });
  });
  EXPECT_GT(env.checker().summary().races, 0u);
  EXPECT_GT(env.machine().stats().sancheck_races, 0u);
  // The fixed spelling of the same round is clean: atomic neighbour reads
  // against atomic owner writes.
  const uint64_t before = env.checker().summary().races;
  env.rt().ParallelFor(0, topo.num_vertices, [&](ThreadId t, uint64_t v) {
    const uint64_t lv = label.Get(t, v);
    env.graph().ForEachOutEdge(t, v,
                               [&](ThreadId tt, VertexId u, uint32_t) {
      const uint64_t lu = label.GetAtomic(tt, u);
      label.SetAtomic(tt, v, lu < lv ? lu : lv);
    });
  });
  EXPECT_EQ(env.checker().summary().races, before);
}

// ---------------------------------------------------------------------------
// Every seed analytics kernel runs clean under the detector.
// ---------------------------------------------------------------------------

class CleanKernelTest : public testing::TestWithParam<NamedGraph> {
 protected:
  /// Runs `body(env)` under an attached sanitizer and returns the race
  /// count (bounds violations abort, so returning at all proves in-bounds).
  template <typename Body>
  static uint64_t RacesIn(const graph::CsrTopology& topo, bool in_edges,
                          bool weights, Body&& body) {
    SanEnv env(topo, in_edges, weights);
    body(env);
    return env.checker().summary().races;
  }
};

TEST_P(CleanKernelTest, Bfs) {
  const graph::CsrTopology& topo = GetParam().topo;
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  const analytics::AlgoOptions opt = DefaultOptions();
  EXPECT_EQ(RacesIn(topo, false, false, [&](SanEnv& e) {
    analytics::BfsDenseWl(e.rt(), e.graph(), src, opt);
  }), 0u);
  EXPECT_EQ(RacesIn(topo, false, false, [&](SanEnv& e) {
    analytics::BfsSparseWl(e.rt(), e.graph(), src, opt);
  }), 0u);
  EXPECT_EQ(RacesIn(topo, false, false, [&](SanEnv& e) {
    analytics::BfsAsync(e.rt(), e.graph(), src, opt);
  }), 0u);
  EXPECT_EQ(RacesIn(topo, true, false, [&](SanEnv& e) {
    analytics::BfsDirectionOpt(e.rt(), e.graph(), src, opt);
  }), 0u);
}

TEST_P(CleanKernelTest, Sssp) {
  graph::CsrTopology topo = GetParam().topo;
  graph::AssignRandomWeights(&topo, 100, 17);
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  const analytics::AlgoOptions opt = DefaultOptions();
  EXPECT_EQ(RacesIn(topo, false, true, [&](SanEnv& e) {
    analytics::SsspBellmanFord(e.rt(), e.graph(), src, opt);
  }), 0u);
  EXPECT_EQ(RacesIn(topo, false, true, [&](SanEnv& e) {
    analytics::SsspDenseWl(e.rt(), e.graph(), src, opt);
  }), 0u);
  EXPECT_EQ(RacesIn(topo, false, true, [&](SanEnv& e) {
    analytics::SsspDeltaStep(e.rt(), e.graph(), src, opt);
  }), 0u);
}

TEST_P(CleanKernelTest, Cc) {
  const graph::CsrTopology& topo = GetParam().topo;
  const analytics::AlgoOptions opt = DefaultOptions();
  EXPECT_EQ(RacesIn(topo, false, false, [&](SanEnv& e) {
    analytics::CcLabelProp(e.rt(), e.graph(), opt);
  }), 0u);
  EXPECT_EQ(RacesIn(topo, false, false, [&](SanEnv& e) {
    analytics::CcLabelPropSC(e.rt(), e.graph(), opt);
  }), 0u);
  EXPECT_EQ(RacesIn(topo, false, false, [&](SanEnv& e) {
    analytics::CcLabelPropSCDir(e.rt(), e.graph(), opt);
  }), 0u);
  EXPECT_EQ(RacesIn(topo, false, false, [&](SanEnv& e) {
    analytics::CcUnionFind(e.rt(), e.graph(), opt);
  }), 0u);
  EXPECT_EQ(RacesIn(topo, false, false, [&](SanEnv& e) {
    analytics::CcAsync(e.rt(), e.graph(), opt);
  }), 0u);
}

TEST_P(CleanKernelTest, PageRank) {
  const graph::CsrTopology& topo = GetParam().topo;
  analytics::AlgoOptions opt = DefaultOptions();
  opt.pr_max_rounds = 5;
  EXPECT_EQ(RacesIn(topo, true, false, [&](SanEnv& e) {
    analytics::PrPull(e.rt(), e.graph(), opt);
  }), 0u);
  EXPECT_EQ(RacesIn(topo, false, false, [&](SanEnv& e) {
    analytics::PrPushResidual(e.rt(), e.graph(), opt);
  }), 0u);
}

TEST_P(CleanKernelTest, Kcore) {
  const graph::CsrTopology sym = graph::Symmetrize(GetParam().topo);
  analytics::AlgoOptions opt = DefaultOptions();
  opt.kcore_k = 3;
  EXPECT_EQ(RacesIn(sym, false, false, [&](SanEnv& e) {
    analytics::KcoreAsync(e.rt(), e.graph(), opt);
  }), 0u);
  EXPECT_EQ(RacesIn(sym, false, false, [&](SanEnv& e) {
    analytics::KcoreDense(e.rt(), e.graph(), opt);
  }), 0u);
}

TEST_P(CleanKernelTest, Bc) {
  const graph::CsrTopology& topo = GetParam().topo;
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  const analytics::AlgoOptions opt = DefaultOptions();
  EXPECT_EQ(RacesIn(topo, false, false, [&](SanEnv& e) {
    analytics::BcSparse(e.rt(), e.graph(), src, opt);
  }), 0u);
  EXPECT_EQ(RacesIn(topo, false, false, [&](SanEnv& e) {
    analytics::BcDense(e.rt(), e.graph(), src, opt);
  }), 0u);
}

TEST_P(CleanKernelTest, Tc) {
  const graph::CsrTopology fwd = analytics::TcPrepare(GetParam().topo);
  EXPECT_EQ(RacesIn(fwd, false, false, [&](SanEnv& e) {
    analytics::Tc(e.rt(), e.graph());
  }), 0u);
}

INSTANTIATE_TEST_SUITE_P(Corpus, CleanKernelTest, testing::ValuesIn(Corpus()),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Framework-level plumbing: RunApp(sanitize) across the full matrix.
// ---------------------------------------------------------------------------

TEST(SanitizedRunAppTest, FullMatrixRunsRaceFree) {
  graph::WebCrawlParams p;
  p.vertices = 1500;
  p.avg_out_degree = 6;
  p.communities = 8;
  p.tail_length = 60;
  p.seed = 4;
  const frameworks::AppInputs inputs =
      frameworks::AppInputs::Prepare(graph::WebCrawl(p));
  frameworks::RunConfig cfg;
  cfg.machine = memsim::DramOnlyConfig();
  cfg.threads = 8;
  cfg.pr_max_rounds = 3;
  cfg.sanitize = true;
  for (frameworks::FrameworkKind fw : frameworks::AllFrameworks()) {
    for (frameworks::App app : frameworks::AllApps()) {
      const frameworks::AppRunResult r = RunApp(fw, app, inputs, cfg);
      if (!r.supported) continue;
      EXPECT_TRUE(r.sanitized);
      EXPECT_EQ(r.sancheck.races, 0u)
          << frameworks::GetProfile(fw).name << " "
          << frameworks::AppName(app) << "\n"
          << r.sancheck.ToString();
      EXPECT_EQ(r.stats.sancheck_races, 0u);
      EXPECT_GT(r.sancheck.checked_accesses, 0u);
    }
  }
}

TEST(SanitizedRunAppTest, UnsanitizedRunCarriesNoSummary) {
  const frameworks::AppInputs inputs =
      frameworks::AppInputs::Prepare(graph::ErdosRenyi(400, 2400, 5));
  frameworks::RunConfig cfg;
  cfg.machine = memsim::DramOnlyConfig();
  cfg.threads = 4;
  const frameworks::AppRunResult r =
      RunApp(frameworks::FrameworkKind::kGalois, frameworks::App::kBfs,
             inputs, cfg);
  ASSERT_TRUE(r.supported);
  EXPECT_FALSE(r.sanitized);
  EXPECT_EQ(r.sancheck.checked_accesses, 0u);
  EXPECT_EQ(r.stats.sancheck_races, 0u);
}

}  // namespace
}  // namespace pmg::sancheck
