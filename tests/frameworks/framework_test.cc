#include "pmg/frameworks/framework.h"

#include <gtest/gtest.h>

#include "pmg/graph/generators.h"
#include "pmg/memsim/machine_configs.h"

namespace pmg::frameworks {
namespace {

const AppInputs& SmallInputs() {
  static const AppInputs* kInputs = [] {
    graph::WebCrawlParams p;
    p.vertices = 6000;
    p.avg_out_degree = 8;
    p.communities = 10;
    p.tail_length = 300;
    p.seed = 4;
    return new AppInputs(AppInputs::Prepare(graph::WebCrawl(p)));
  }();
  return *kInputs;
}

RunConfig SmallConfig() {
  RunConfig cfg;
  cfg.machine = memsim::OptanePmmConfig();
  cfg.threads = 16;
  cfg.pr_max_rounds = 5;
  return cfg;
}

TEST(ProfileTest, CapabilityMatrixMatchesPaper) {
  const FrameworkProfile galois = GetProfile(FrameworkKind::kGalois);
  EXPECT_TRUE(galois.sparse_worklists);
  EXPECT_TRUE(galois.async_execution);
  EXPECT_TRUE(galois.explicit_huge_pages);
  EXPECT_FALSE(galois.loads_both_directions);
  EXPECT_FALSE(galois.node_ids_32bit);

  const FrameworkProfile gap = GetProfile(FrameworkKind::kGap);
  EXPECT_FALSE(gap.supports_kcore);
  EXPECT_TRUE(gap.node_ids_32bit);
  EXPECT_TRUE(gap.loads_both_directions);

  const FrameworkProfile graphit = GetProfile(FrameworkKind::kGraphIt);
  EXPECT_TRUE(graphit.vertex_programs_only);
  EXPECT_FALSE(graphit.supports_bc);
  EXPECT_FALSE(graphit.supports_kcore);

  const FrameworkProfile gbbs = GetProfile(FrameworkKind::kGbbs);
  EXPECT_TRUE(gbbs.supports_kcore);
  EXPECT_FALSE(gbbs.node_ids_32bit);
}

TEST(RunAppTest, UnsupportedAppsReportUnsupported) {
  const RunConfig cfg = SmallConfig();
  EXPECT_FALSE(
      RunApp(FrameworkKind::kGraphIt, App::kBc, SmallInputs(), cfg).supported);
  EXPECT_FALSE(RunApp(FrameworkKind::kGraphIt, App::kKcore, SmallInputs(), cfg)
                   .supported);
  EXPECT_FALSE(
      RunApp(FrameworkKind::kGap, App::kKcore, SmallInputs(), cfg).supported);
  EXPECT_TRUE(
      RunApp(FrameworkKind::kGbbs, App::kKcore, SmallInputs(), cfg).supported);
}

TEST(RunAppTest, ThirtyTwoBitFrameworksRejectHugeGraphs) {
  graph::CsrTopology topo = graph::Rmat(9, 8, 2);
  // Stand-in for a graph with more than 2^31 - 1 vertices (wdc12).
  const AppInputs inputs = AppInputs::Prepare(topo, 3563ull * 1000 * 1000);
  const RunConfig cfg = SmallConfig();
  EXPECT_FALSE(RunApp(FrameworkKind::kGap, App::kBfs, inputs, cfg).supported);
  EXPECT_FALSE(
      RunApp(FrameworkKind::kGraphIt, App::kBfs, inputs, cfg).supported);
  EXPECT_TRUE(RunApp(FrameworkKind::kGbbs, App::kBfs, inputs, cfg).supported);
  EXPECT_TRUE(
      RunApp(FrameworkKind::kGalois, App::kBfs, inputs, cfg).supported);
}

TEST(RunAppTest, DeterministicAcrossRuns) {
  const RunConfig cfg = SmallConfig();
  const AppRunResult a =
      RunApp(FrameworkKind::kGalois, App::kBfs, SmallInputs(), cfg);
  const AppRunResult b =
      RunApp(FrameworkKind::kGalois, App::kBfs, SmallInputs(), cfg);
  EXPECT_EQ(a.time_ns, b.time_ns);
  EXPECT_EQ(a.stats.accesses, b.stats.accesses);
}

TEST(RunAppTest, GaloisUsesHugePagesOthersMostlySmall) {
  // Use a graph whose label arrays exceed the arena's 1MB huge-page
  // threshold so the measured (post-construction) region of the run maps
  // huge pages.
  const AppInputs inputs = AppInputs::Prepare(graph::Rmat(18, 4, 3));
  RunConfig cfg = SmallConfig();
  cfg.threads = 96;
  const AppRunResult galois =
      RunApp(FrameworkKind::kGalois, App::kBfs, inputs, cfg);
  const AppRunResult gap = RunApp(FrameworkKind::kGap, App::kBfs, inputs, cfg);
  EXPECT_GT(galois.stats.pages_mapped_huge, 0u);
  // GAP relies on THP, which only promotes full 2MB chunks: this run's
  // 1MB label array stays on base pages there.
  EXPECT_EQ(gap.stats.pages_mapped_huge, 0u);
  EXPECT_GT(gap.stats.pages_mapped_small, 0u);
}

TEST(RunAppTest, GaloisBeatsGraphItOnHighDiameterSssp) {
  // Figure 9's biggest gaps: GraphIt has no delta-stepping and no sparse
  // worklists, so sssp on a high-diameter crawl collapses.
  const RunConfig cfg = SmallConfig();
  const AppRunResult galois =
      RunApp(FrameworkKind::kGalois, App::kSssp, SmallInputs(), cfg);
  const AppRunResult graphit =
      RunApp(FrameworkKind::kGraphIt, App::kSssp, SmallInputs(), cfg);
  ASSERT_TRUE(galois.supported && graphit.supported);
  EXPECT_GT(graphit.time_ns, 2 * galois.time_ns);
}

TEST(RunAppTest, GaloisBeatsDenseFrameworksOnHighDiameterBfs) {
  const RunConfig cfg = SmallConfig();
  const AppRunResult galois =
      RunApp(FrameworkKind::kGalois, App::kBfs, SmallInputs(), cfg);
  const AppRunResult gbbs =
      RunApp(FrameworkKind::kGbbs, App::kBfs, SmallInputs(), cfg);
  ASSERT_TRUE(galois.supported && gbbs.supported);
  EXPECT_GT(gbbs.time_ns, galois.time_ns);
}

TEST(RunAppTest, PageSizeOverrideApplies) {
  RunConfig cfg = SmallConfig();
  cfg.page_size = memsim::PageSizeClass::k4K;
  const AppRunResult r =
      RunApp(FrameworkKind::kGalois, App::kBfs, SmallInputs(), cfg);
  EXPECT_EQ(r.stats.pages_mapped_huge, 0u);
  EXPECT_GT(r.stats.pages_mapped_small, 0u);
}

TEST(RunAppTest, PlacementOverrideApplies) {
  RunConfig cfg = SmallConfig();
  cfg.placement = memsim::Placement::kLocal;
  const AppRunResult local =
      RunApp(FrameworkKind::kGalois, App::kBfs, SmallInputs(), cfg);
  cfg.placement = memsim::Placement::kInterleaved;
  const AppRunResult il =
      RunApp(FrameworkKind::kGalois, App::kBfs, SmallInputs(), cfg);
  // Local placement puts everything on socket 0: all socket-1 threads
  // access remotely, so locality must differ between the two runs.
  EXPECT_NE(local.stats.remote_accesses, il.stats.remote_accesses);
}

TEST(RunAppTest, AllSupportedCellsRun) {
  // Smoke-run the full Figure 9 matrix on a small graph.
  RunConfig cfg = SmallConfig();
  cfg.pr_max_rounds = 3;
  for (FrameworkKind fw : AllFrameworks()) {
    for (App app : AllApps()) {
      const AppRunResult r = RunApp(fw, app, SmallInputs(), cfg);
      const FrameworkProfile p = GetProfile(fw);
      const bool expect_supported =
          !(app == App::kBc && !p.supports_bc) &&
          !(app == App::kKcore && !p.supports_kcore);
      EXPECT_EQ(r.supported, expect_supported)
          << p.name << " " << AppName(app);
      if (r.supported) {
        EXPECT_GT(r.time_ns, 0u) << p.name << " " << AppName(app);
      }
    }
  }
}

}  // namespace
}  // namespace pmg::frameworks
