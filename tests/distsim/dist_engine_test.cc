#include "pmg/distsim/dist_engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pmg/analytics/reference.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"

namespace pmg::distsim {
namespace {

DistConfig Config(uint32_t hosts,
                  PartitionPolicy policy = PartitionPolicy::kOec) {
  DistConfig c;
  c.hosts = hosts;
  c.threads_per_host = 8;
  c.policy = policy;
  c.host_machine = memsim::StampedeHostConfig();
  return c;
}

graph::CsrTopology Crawl(uint64_t n = 4000, uint64_t tail = 150) {
  graph::WebCrawlParams p;
  p.vertices = n;
  p.avg_out_degree = 6;
  p.communities = 8;
  p.tail_length = tail;
  p.tail_width = 2;
  p.seed = 11;
  return graph::WebCrawl(p);
}

TEST(DistEngineTest, BfsMatchesReference) {
  const graph::CsrTopology topo = Crawl();
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  const std::vector<uint32_t> want = analytics::RefBfs(topo, src);
  DistEngine engine(topo, Config(4));
  std::vector<uint64_t> got;
  const DistRunResult r = engine.Bfs(src, &got);
  ASSERT_TRUE(r.supported);
  for (VertexId v = 0; v < topo.num_vertices; ++v) {
    const uint64_t expect = want[v] == analytics::kInfLevel
                                ? analytics::kInfDist
                                : want[v];
    ASSERT_EQ(got[v], expect) << "vertex " << v;
  }
}

TEST(DistEngineTest, CcMatchesReference) {
  const graph::CsrTopology sym = graph::Symmetrize(Crawl());
  const std::vector<uint64_t> want = analytics::RefCc(sym);
  DistEngine engine(sym, Config(4));
  std::vector<uint64_t> got;
  ASSERT_TRUE(engine.Cc(&got).supported);
  EXPECT_EQ(got, want);
}

TEST(DistEngineTest, SsspMatchesDijkstra) {
  graph::CsrTopology topo = Crawl();
  graph::AssignRandomWeights(&topo, 50, 5);
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  const std::vector<uint64_t> want = analytics::RefSssp(topo, src);
  DistEngine engine(topo, Config(3));
  std::vector<uint64_t> got;
  ASSERT_TRUE(engine.Sssp(src, &got).supported);
  EXPECT_EQ(got, want);
}

TEST(DistEngineTest, PrMatchesReference) {
  const graph::CsrTopology topo = graph::Rmat(9, 8, 3);
  const std::vector<double> want =
      analytics::RefPagerank(topo, 0.85, /*tolerance=*/0, /*max_rounds=*/8);
  DistEngine engine(topo, Config(4));
  std::vector<double> got;
  ASSERT_TRUE(engine.Pr(8, /*tolerance=*/0, &got).supported);
  ASSERT_EQ(got.size(), want.size());
  for (size_t v = 0; v < want.size(); ++v) {
    EXPECT_NEAR(got[v], want[v], 1e-9) << v;
  }
}

TEST(DistEngineTest, KcoreMatchesReference) {
  const graph::CsrTopology sym = graph::Symmetrize(Crawl());
  const std::vector<uint8_t> want = analytics::RefKcore(sym, 4);
  DistEngine engine(sym, Config(4));
  std::vector<uint8_t> got;
  ASSERT_TRUE(engine.Kcore(4, &got).supported);
  EXPECT_EQ(got, want);
}

TEST(DistEngineTest, BcMatchesReference) {
  const graph::CsrTopology topo = Crawl(2000, 80);
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  const std::vector<double> want = analytics::RefBc(topo, src);
  DistEngine engine(topo, Config(3));
  std::vector<double> got;
  ASSERT_TRUE(engine.Bc(src, &got).supported);
  ASSERT_EQ(got.size(), want.size());
  for (size_t v = 0; v < want.size(); ++v) {
    ASSERT_NEAR(got[v], want[v], 1e-6 * (1.0 + std::fabs(want[v]))) << v;
  }
}

TEST(DistEngineTest, SingleHostHasNoComm) {
  const graph::CsrTopology topo = Crawl();
  DistEngine engine(topo, Config(1));
  const DistRunResult r = engine.Bfs(graph::MaxOutDegreeVertex(topo));
  EXPECT_EQ(r.comm_bytes, 0u);
}

TEST(DistEngineTest, MoreHostsMoreCommunication) {
  const graph::CsrTopology topo = Crawl();
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  DistEngine e2(topo, Config(2));
  DistEngine e8(topo, Config(8));
  const DistRunResult r2 = e2.Bfs(src);
  const DistRunResult r8 = e8.Bfs(src);
  EXPECT_GT(r8.comm_bytes, r2.comm_bytes);
}

TEST(DistEngineTest, CvcReducesCommVolumeAtScale) {
  const graph::CsrTopology topo = Crawl();
  const VertexId src = graph::MaxOutDegreeVertex(topo);
  DistEngine oec(topo, Config(16, PartitionPolicy::kOec));
  DistEngine cvc(topo, Config(16, PartitionPolicy::kCvc));
  const DistRunResult ro = oec.Bfs(src);
  const DistRunResult rc = cvc.Bfs(src);
  EXPECT_LT(rc.comm_bytes, ro.comm_bytes);
}

TEST(DistEngineTest, TimeSplitsIntoComputeAndComm) {
  const graph::CsrTopology topo = Crawl();
  DistEngine engine(topo, Config(4));
  const DistRunResult r = engine.Bfs(graph::MaxOutDegreeVertex(topo));
  EXPECT_EQ(r.time_ns, r.compute_ns + r.comm_ns);
  EXPECT_GT(r.comm_ns, 0u);
  EXPECT_GT(r.compute_ns, 0u);
}

TEST(DistEngineTest, PartitionCoversGraphAndBoundsHostMemory) {
  const graph::CsrTopology topo = Crawl(8000, 100);
  DistEngine engine(topo, Config(8));
  // Every host's local graph is a fraction of the whole.
  EXPECT_LT(engine.MaxHostGraphBytes(), graph::CsrBytes(topo));
  EXPECT_GT(engine.MaxHostGraphBytes(), 0u);
}

TEST(DistEngineTest, HighDiameterCostsManyRounds) {
  const graph::CsrTopology topo = Crawl(4000, 600);
  DistEngine engine(topo, Config(4));
  const DistRunResult r = engine.Bfs(graph::MaxOutDegreeVertex(topo));
  // One BSP round (with its collective latency) per BFS level: the
  // round-trip count is what a single big-memory machine avoids.
  EXPECT_GT(r.rounds, 600u);
  EXPECT_GT(r.comm_ns, 600u * 30000u / 2);
}

}  // namespace
}  // namespace pmg::distsim
