#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pmg/analytics/reference.h"
#include "pmg/distsim/dist_engine.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"

// Parameterized correctness sweep of the distributed engine: every
// min-push app must agree with the serial oracles on a structurally
// diverse corpus across several host counts, including hosts > vertices'
// natural balance points.

namespace pmg::distsim {
namespace {

struct Case {
  std::string name;
  graph::CsrTopology topo;
  uint32_t hosts;
};

std::vector<Case> Cases() {
  std::vector<Case> out;
  const std::vector<uint32_t> host_counts = {2, 5, 9};
  auto add = [&](const std::string& name, graph::CsrTopology topo) {
    for (uint32_t h : host_counts) {
      out.push_back({name + "_h" + std::to_string(h), topo, h});
    }
  };
  add("path", graph::Path(300));
  add("star", graph::Star(200));
  add("rmat", graph::Rmat(9, 8, 5));
  add("grid", graph::Grid2d(12, 13));
  graph::WebCrawlParams wp;
  wp.vertices = 2500;
  wp.communities = 6;
  wp.tail_length = 80;
  wp.tail_width = 2;
  wp.avg_out_degree = 5;
  wp.seed = 17;
  add("crawl", graph::WebCrawl(wp));
  return out;
}

DistConfig Config(uint32_t hosts) {
  DistConfig c;
  c.hosts = hosts;
  c.threads_per_host = 4;
  c.host_machine = memsim::StampedeHostConfig();
  return c;
}

class DistCorpusTest : public testing::TestWithParam<Case> {};

TEST_P(DistCorpusTest, BfsMatchesOracle) {
  const Case& c = GetParam();
  const VertexId src = graph::MaxOutDegreeVertex(c.topo);
  const std::vector<uint32_t> want = analytics::RefBfs(c.topo, src);
  DistEngine engine(c.topo, Config(c.hosts));
  std::vector<uint64_t> got;
  ASSERT_TRUE(engine.Bfs(src, &got).supported);
  for (VertexId v = 0; v < c.topo.num_vertices; ++v) {
    const uint64_t expect = want[v] == analytics::kInfLevel
                                ? analytics::kInfDist
                                : want[v];
    ASSERT_EQ(got[v], expect) << c.name << " vertex " << v;
  }
}

TEST_P(DistCorpusTest, CcMatchesOracle) {
  const Case& c = GetParam();
  const graph::CsrTopology sym = graph::Symmetrize(c.topo);
  const std::vector<uint64_t> want = analytics::RefCc(sym);
  DistEngine engine(sym, Config(c.hosts));
  std::vector<uint64_t> got;
  ASSERT_TRUE(engine.Cc(&got).supported);
  EXPECT_EQ(got, want) << c.name;
}

TEST_P(DistCorpusTest, SsspMatchesOracle) {
  const Case& c = GetParam();
  graph::CsrTopology weighted = c.topo;
  graph::AssignRandomWeights(&weighted, 30, 9);
  const VertexId src = graph::MaxOutDegreeVertex(weighted);
  const std::vector<uint64_t> want = analytics::RefSssp(weighted, src);
  DistEngine engine(weighted, Config(c.hosts));
  std::vector<uint64_t> got;
  ASSERT_TRUE(engine.Sssp(src, &got).supported);
  EXPECT_EQ(got, want) << c.name;
}

TEST_P(DistCorpusTest, KcoreMatchesOracle) {
  const Case& c = GetParam();
  const graph::CsrTopology sym = graph::Symmetrize(c.topo);
  const std::vector<uint8_t> want = analytics::RefKcore(sym, 3);
  DistEngine engine(sym, Config(c.hosts));
  std::vector<uint8_t> got;
  ASSERT_TRUE(engine.Kcore(3, &got).supported);
  EXPECT_EQ(got, want) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DistCorpusTest, testing::ValuesIn(Cases()),
    [](const testing::TestParamInfo<Case>& info) { return info.param.name; });

}  // namespace
}  // namespace pmg::distsim
