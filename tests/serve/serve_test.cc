#include "pmg/serve/server.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "pmg/faultsim/fault_schedule.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/serve/policy.h"
#include "pmg/serve/request.h"
#include "pmg/serve/workload.h"

namespace pmg::serve {
namespace {

using memsim::MachineConfig;
using memsim::MachineKind;

/// The small 2-socket machine of the memsim tests: 4 threads, tiny caches.
MachineConfig TinyConfig() {
  MachineConfig c;
  c.kind = MachineKind::kDramMain;
  c.name = "tiny";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(8);
  c.topology.pmm_bytes_per_socket = 0;
  c.cpu_cache_lines = 64;
  return c;
}

WorkloadSpec MustSpec(const std::string& spec) {
  WorkloadSpec w;
  std::string error;
  EXPECT_TRUE(WorkloadSpec::Parse(spec, &w, &error)) << error;
  return w;
}

faultsim::FaultSchedule MustFaults(const std::string& spec) {
  faultsim::FaultSchedule s;
  std::string error;
  EXPECT_TRUE(faultsim::FaultSchedule::Parse(spec, &s, &error)) << error;
  return s;
}

/// The serving test graph: scale-free, 256 vertices, weighted.
graph::CsrTopology ServeGraph() {
  graph::CsrTopology topo = graph::Rmat(8, 8, 7);
  graph::AssignRandomWeights(&topo, /*max_weight=*/9, /*seed=*/13);
  return topo;
}

ServeConfig BaseConfig(const std::string& spec) {
  ServeConfig c;
  c.machine = TinyConfig();
  c.threads = 4;
  c.algo.label_policy.placement = memsim::Placement::kInterleaved;
  c.pr_rounds = 5;
  c.workload = MustSpec(spec);
  return c;
}

uint64_t SumBilled(const ServeReport& rep) {
  uint64_t sum = 0;
  for (const RequestRecord& rec : rep.records) sum += rec.billed_ns;
  return sum;
}

// ---------------------------------------------------------------------------
// Workload grammar + arrival generation.
// ---------------------------------------------------------------------------

TEST(WorkloadTest, PresetsExpandAndParse) {
  for (const std::string& name : ServePresetNames()) {
    ASSERT_FALSE(ServePresetSpec(name).empty()) << name;
    WorkloadSpec w;
    std::string error;
    EXPECT_TRUE(WorkloadSpec::Parse(name, &w, &error)) << name << ": "
                                                       << error;
    EXPECT_GT(w.qps, 0.0) << name;
    EXPECT_GT(w.requests, 0u) << name;
  }
  EXPECT_EQ(MustSpec("canonical").arrival, ArrivalKind::kBurst);
}

TEST(WorkloadTest, RejectsBadSpecs) {
  WorkloadSpec w;
  std::string error;
  for (const char* bad :
       {"nope", "poisson:qps=0,n=10", "poisson:qps=100,n=0",
        "burst:qps=100,n=10,x=0.5", "poisson:qps=100,n=10,mix=bfs:50",
        "poisson:qps=100,n=10,frobs=3", "flood:qps=100,n=10"}) {
    EXPECT_FALSE(WorkloadSpec::Parse(bad, &w, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(WorkloadTest, ArrivalsAreDeterministicOrderedAndInRange) {
  const WorkloadSpec spec =
      MustSpec("burst:qps=5000,x=4,duty=30,period=5000000,n=64,"
               "deadline=2000000,seed=9");
  const std::vector<Request> a = GenerateArrivals(spec, 256);
  const std::vector<Request> b = GenerateArrivals(spec, 256);
  ASSERT_EQ(a.size(), spec.requests);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].arrival_ns, b[i].arrival_ns);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_LT(a[i].source, 256u);
    EXPECT_EQ(a[i].deadline_ns, spec.deadline_ns);
    if (i > 0) EXPECT_GE(a[i].arrival_ns, a[i - 1].arrival_ns);
  }
  // A different seed moves the arrivals.
  WorkloadSpec other = spec;
  other.seed = 10;
  const std::vector<Request> c = GenerateArrivals(other, 256);
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_differs = any_differs || a[i].arrival_ns != c[i].arrival_ns;
  }
  EXPECT_TRUE(any_differs);
}

TEST(WorkloadTest, BurstRateIsASquareWave) {
  const WorkloadSpec spec =
      MustSpec("burst:qps=1000,x=6,duty=25,period=20000000,n=10");
  // Inside the window: qps * x; outside: qps. PeakRate is the envelope.
  EXPECT_DOUBLE_EQ(spec.RateAt(0), 6000.0);
  EXPECT_DOUBLE_EQ(spec.RateAt(4'999'999), 6000.0);
  EXPECT_DOUBLE_EQ(spec.RateAt(5'000'001), 1000.0);
  EXPECT_DOUBLE_EQ(spec.RateAt(19'999'999), 1000.0);
  EXPECT_DOUBLE_EQ(spec.RateAt(20'000'001), 6000.0);
  EXPECT_DOUBLE_EQ(spec.PeakRate(), 6000.0);
}

// ---------------------------------------------------------------------------
// Backoff schedule properties.
// ---------------------------------------------------------------------------

TEST(PolicyTest, BackoffIsDeterministicPerSeed) {
  RetryConfig retry;
  retry.backoff_base_ns = 100'000;
  retry.jitter_pct = 20;
  retry.seed = 42;
  const RetryConfig same = retry;
  RetryConfig other = retry;
  other.seed = 43;
  bool any_differs = false;
  for (uint64_t id = 0; id < 64; ++id) {
    for (uint32_t r = 1; r <= 3; ++r) {
      EXPECT_EQ(retry.BackoffNs(id, r), same.BackoffNs(id, r));
      any_differs = any_differs || retry.BackoffNs(id, r) !=
                                       other.BackoffNs(id, r);
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(PolicyTest, BackoffIsExponentialWithBoundedJitter) {
  RetryConfig retry;
  retry.backoff_base_ns = 100'000;
  retry.jitter_pct = 20;
  retry.seed = 7;
  for (uint64_t id = 0; id < 256; ++id) {
    for (uint32_t r = 1; r <= 4; ++r) {
      const SimNs base = retry.backoff_base_ns << (r - 1);
      const SimNs got = retry.BackoffNs(id, r);
      EXPECT_GE(got, base * 80 / 100) << "id " << id << " retry " << r;
      EXPECT_LE(got, base * 120 / 100) << "id " << id << " retry " << r;
    }
  }
  // The jitter actually varies across request ids.
  std::set<SimNs> distinct;
  for (uint64_t id = 0; id < 256; ++id) distinct.insert(retry.BackoffNs(id, 1));
  EXPECT_GT(distinct.size(), 8u);
  // jitter_pct=0 is exact exponential doubling.
  retry.jitter_pct = 0;
  EXPECT_EQ(retry.BackoffNs(5, 1), 100'000u);
  EXPECT_EQ(retry.BackoffNs(5, 2), 200'000u);
  EXPECT_EQ(retry.BackoffNs(5, 3), 400'000u);
}

// ---------------------------------------------------------------------------
// Serve-loop conservation + determinism.
// ---------------------------------------------------------------------------

TEST(ServeTest, ConservationHoldsAndBilledSumsToBusy) {
  const graph::CsrTopology topo = ServeGraph();
  const ServeConfig cfg = BaseConfig(
      "poisson:qps=4000,n=40,deadline=2000000,"
      "mix=bfs:40/sssp:20/pr:20/ego:20,seed=5");
  Server server(topo, cfg);
  const ServeReport rep = server.Run();
  EXPECT_TRUE(rep.finished);
  EXPECT_EQ(rep.offered, 40u);
  EXPECT_TRUE(rep.Conserves());
  EXPECT_EQ(rep.busy_ns + rep.idle_ns + rep.recovery_ns, rep.total_ns);
  // The priced-work law: every busy nanosecond is billed to exactly one
  // request — timeouts, hedges, and aborted work included.
  EXPECT_EQ(SumBilled(rep), rep.busy_ns);
  EXPECT_GT(rep.busy_ns, 0u);
  EXPECT_EQ(rep.completed + rep.completed_degraded + rep.shed + rep.failed,
            rep.offered);
  // Answered requests carry nonzero checksums and latencies.
  for (const RequestRecord& rec : rep.records) {
    if (rec.outcome == Outcome::kCompleted ||
        rec.outcome == Outcome::kCompletedDegraded) {
      EXPECT_NE(rec.result_checksum, 0u) << rec.req.id;
      EXPECT_GT(rec.completion_ns, 0u) << rec.req.id;
      EXPECT_EQ(rec.latency_ns, rec.completion_ns - rec.req.arrival_ns);
    }
  }
}

TEST(ServeTest, ReportsAreByteIdenticalAcrossRuns) {
  const graph::CsrTopology topo = ServeGraph();
  const std::string spec =
      "burst:qps=3000,x=5,duty=25,period=4000000,n=48,deadline=1500000,"
      "mix=bfs:30/sssp:20/pr:20/ego:30,seed=21";
  auto run = [&] {
    Server server(topo, BaseConfig(spec));
    const ServeReport rep = server.Run();
    return std::make_pair(rep.ToJson(), server.registry().PrometheusText());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(ServeTest, ShedDecisionsReplayIdentically) {
  const graph::CsrTopology topo = ServeGraph();
  // Tiny queue + heavy burst: shedding is guaranteed.
  auto make = [&] {
    ServeConfig cfg = BaseConfig(
        "burst:qps=20000,x=4,duty=50,period=2000000,n=64,deadline=800000,"
        "mix=bfs:40/sssp:20/pr:20/ego:20,seed=3");
    cfg.admission.queue_capacity = 4;
    return cfg;
  };
  Server sa(topo, make());
  const ServeReport a = sa.Run();
  Server sb(topo, make());
  const ServeReport b = sb.Run();
  ASSERT_GT(a.shed, 0u);
  ASSERT_EQ(a.shed_log.size(), b.shed_log.size());
  for (size_t i = 0; i < a.shed_log.size(); ++i) {
    EXPECT_EQ(a.shed_log[i].request_id, b.shed_log[i].request_id) << i;
    EXPECT_EQ(a.shed_log[i].reason, b.shed_log[i].reason) << i;
    EXPECT_EQ(a.shed_log[i].at_ns, b.shed_log[i].at_ns) << i;
  }
  // Every shed decision is also visible in the per-request records.
  uint64_t shed_records = 0;
  for (const RequestRecord& rec : a.records) {
    shed_records += rec.outcome == Outcome::kShed ? 1 : 0;
  }
  EXPECT_EQ(shed_records, a.shed);
}

TEST(ServeTest, ShedPoliciesPickDifferentVictims) {
  const graph::CsrTopology topo = ServeGraph();
  const std::string spec =
      "burst:qps=20000,x=4,duty=50,period=2000000,n=64,deadline=800000,"
      "mix=bfs:40/sssp:20/pr:20/ego:20,seed=3";
  auto run = [&](ShedPolicy policy) {
    ServeConfig cfg = BaseConfig(spec);
    cfg.admission.queue_capacity = 4;
    cfg.admission.policy = policy;
    Server server(topo, cfg);
    return server.Run();
  };
  const ServeReport reject = run(ShedPolicy::kRejectNewest);
  const ServeReport oldest = run(ShedPolicy::kDropOldest);
  const ServeReport slack = run(ShedPolicy::kDeadlineAware);
  ASSERT_GT(reject.shed, 0u);
  ASSERT_GT(oldest.shed, 0u);
  ASSERT_GT(slack.shed, 0u);
  EXPECT_EQ(reject.shed_by_reason[0], reject.shed);
  EXPECT_EQ(oldest.shed_by_reason[1], oldest.shed);
  EXPECT_EQ(slack.shed_by_reason[2], slack.shed);
}

TEST(ServeTest, HedgesFireAndNeverDoubleBill) {
  const graph::CsrTopology topo = ServeGraph();
  ServeConfig cfg = BaseConfig(
      "poisson:qps=500,n=24,deadline=50000000,"
      "mix=bfs:50/sssp:50/pr:0/ego:0,seed=19");
  // Hedge almost immediately, with a deadline far enough away that the
  // hedge check (not the timeout) fires at the round boundary.
  cfg.hedge.hedge_after_ns = 1'000;
  // Keep queue-overload degradation out of the picture so first attempts
  // stay hedgeable.
  cfg.degrade.queue_high = 1'000'000;
  Server server(topo, cfg);
  const ServeReport rep = server.Run();
  EXPECT_TRUE(rep.finished);
  ASSERT_GT(rep.hedges, 0u);
  // The conservation law IS the no-double-billing check: the abandoned
  // straggler's work and its hedge re-run both land on the same request,
  // and the sum of all bills still equals the busy time exactly.
  EXPECT_EQ(SumBilled(rep), rep.busy_ns);
  EXPECT_TRUE(rep.Conserves());
  // A hedged request is answered (the degraded re-run completes).
  for (const RequestRecord& rec : rep.records) {
    if (rec.hedges > 0) {
      EXPECT_GE(rec.attempts, 2u) << rec.req.id;
      EXPECT_NE(rec.outcome, Outcome::kShed) << rec.req.id;
    }
  }
}

TEST(ServeTest, OverloadTriggersDegradedAnswers) {
  const graph::CsrTopology topo = ServeGraph();
  ServeConfig cfg = BaseConfig(
      "poisson:qps=50000,n=32,deadline=20000000,"
      "mix=bfs:0/sssp:0/pr:50/ego:50,seed=23");
  cfg.degrade.queue_high = 2;
  cfg.degrade.queue_low = 1;
  Server server(topo, cfg);
  const ServeReport rep = server.Run();
  EXPECT_TRUE(rep.finished);
  // The queue backs up instantly at this rate, so pagerank truncates and
  // ego-nets cap their radius: degraded answers must appear.
  EXPECT_GT(rep.completed_degraded, 0u);
  EXPECT_TRUE(rep.Conserves());
  EXPECT_EQ(SumBilled(rep), rep.busy_ns);
}

TEST(ServeTest, CrashRecoveryKeepsConservationAndDeterminism) {
  const graph::CsrTopology topo = ServeGraph();
  auto make = [&] {
    ServeConfig cfg = BaseConfig(
        "poisson:qps=3000,n=32,deadline=5000000,"
        "mix=bfs:40/sssp:20/pr:20/ego:20,seed=11");
    cfg.faults = MustFaults("crash@access:40000;seed=9");
    return cfg;
  };
  Server sa(topo, make());
  const ServeReport a = sa.Run();
  ASSERT_TRUE(a.finished);
  EXPECT_GE(a.crashes, 1u);
  EXPECT_GE(a.recoveries, 1u);
  EXPECT_GT(a.recovery_ns, 0u);
  EXPECT_TRUE(a.Conserves());
  EXPECT_EQ(SumBilled(a), a.busy_ns);
  // The interrupted request is retried, not lost.
  EXPECT_EQ(a.completed + a.completed_degraded + a.shed + a.failed,
            a.offered);
  Server sb(topo, make());
  const ServeReport b = sb.Run();
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

TEST(ServeTest, GivesUpWhenRecoveriesAreExhausted) {
  const graph::CsrTopology topo = ServeGraph();
  ServeConfig cfg = BaseConfig(
      "poisson:qps=3000,n=32,deadline=5000000,"
      "mix=bfs:40/sssp:20/pr:20/ego:20,seed=11");
  // Crashes keep coming faster than the server may rebuild.
  cfg.faults = MustFaults(
      "crash@access:40000;crash@access:41000;crash@access:42000;seed=9");
  cfg.max_recoveries = 1;
  Server server(topo, cfg);
  const ServeReport rep = server.Run();
  EXPECT_FALSE(rep.finished);
  EXPECT_GE(rep.crashes, 2u);
  EXPECT_EQ(rep.recoveries, 1u);
  // Everything unanswered at give-up is failed, and the timeline still
  // conserves (the dead rebuild's time is recovery time).
  EXPECT_EQ(rep.completed + rep.completed_degraded + rep.shed + rep.failed,
            rep.offered);
  EXPECT_GT(rep.failed, 0u);
  EXPECT_TRUE(rep.Conserves());
}

TEST(ServeTest, NaiveBaselineNeverShedsAndNeverTimesOut) {
  const graph::CsrTopology topo = ServeGraph();
  ServeConfig cfg = BaseConfig(
      "burst:qps=20000,x=4,duty=50,period=2000000,n=48,deadline=500000,"
      "mix=bfs:40/sssp:20/pr:20/ego:20,seed=3");
  const ServeConfig naive = NaiveBaseline(cfg);
  EXPECT_EQ(naive.admission.queue_capacity, 0u);
  EXPECT_FALSE(naive.deadline_timeout);
  EXPECT_EQ(naive.retry.max_attempts, 1u);
  EXPECT_FALSE(naive.hedge.enabled);
  EXPECT_FALSE(naive.degrade.enabled);
  Server server(topo, naive);
  const ServeReport rep = server.Run();
  EXPECT_TRUE(rep.finished);
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.timeouts, 0u);
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_EQ(rep.completed + rep.completed_degraded, rep.offered);
  EXPECT_TRUE(rep.Conserves());
}

}  // namespace
}  // namespace pmg::serve
