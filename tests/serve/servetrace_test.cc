#include "pmg/servetrace/servetrace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pmg/faultsim/fault_schedule.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/metrics/registry.h"
#include "pmg/serve/request.h"
#include "pmg/serve/server.h"
#include "pmg/serve/workload.h"
#include "pmg/trace/json.h"

namespace pmg::servetrace {
namespace {

using memsim::MachineConfig;
using memsim::MachineKind;

/// The small 2-socket machine of the serve tests: 4 threads, tiny caches.
MachineConfig TinyConfig() {
  MachineConfig c;
  c.kind = MachineKind::kDramMain;
  c.name = "tiny";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(8);
  c.topology.pmm_bytes_per_socket = 0;
  c.cpu_cache_lines = 64;
  return c;
}

serve::WorkloadSpec MustSpec(const std::string& spec) {
  serve::WorkloadSpec w;
  std::string error;
  EXPECT_TRUE(serve::WorkloadSpec::Parse(spec, &w, &error)) << error;
  return w;
}

faultsim::FaultSchedule MustFaults(const std::string& spec) {
  faultsim::FaultSchedule s;
  std::string error;
  EXPECT_TRUE(faultsim::FaultSchedule::Parse(spec, &s, &error)) << error;
  return s;
}

graph::CsrTopology ServeGraph() {
  graph::CsrTopology topo = graph::Rmat(8, 8, 7);
  graph::AssignRandomWeights(&topo, /*max_weight=*/9, /*seed=*/13);
  return topo;
}

serve::ServeConfig BaseConfig(const std::string& spec) {
  serve::ServeConfig c;
  c.machine = TinyConfig();
  c.threads = 4;
  c.algo.label_policy.placement = memsim::Placement::kInterleaved;
  c.pr_rounds = 5;
  c.workload = MustSpec(spec);
  return c;
}

/// The crash-recovery scenario of serve_test: a mixed poisson trace with
/// one mid-serving crash. Every request lifecycle shows up: answers,
/// sheds, timeouts, retries, and a recovery stall.
serve::ServeConfig CrashConfig() {
  serve::ServeConfig c = BaseConfig(
      "poisson:qps=3000,n=32,deadline=5000000,"
      "mix=bfs:40/sssp:20/pr:20/ego:20,seed=11");
  c.faults = MustFaults("crash@access:40000;seed=9");
  return c;
}

bool Answered(const RequestTimeline& t) {
  return t.terminal && (t.outcome == serve::Outcome::kCompleted ||
                        t.outcome == serve::Outcome::kCompletedDegraded);
}

/// Independently re-derives the conservation law from the raw spans —
/// deliberately NOT through RequestTimeline::LatencyNs/Breakdown, so a
/// bookkeeping bug in the tracer cannot vouch for itself.
void ExpectConservation(const RequestTimeline& t) {
  ASSERT_TRUE(t.terminal) << "request " << t.req.id;
  if (t.spans.empty()) {
    // Unarrived give-up abandons: the request never entered the system,
    // so it terminates at its own arrival (the 0 == 0 law).
    EXPECT_EQ(t.terminal_ns, t.req.arrival_ns) << "request " << t.req.id;
    return;
  }
  EXPECT_EQ(t.spans.front().start_ns, t.req.arrival_ns)
      << "request " << t.req.id;
  SimNs cursor = t.req.arrival_ns;
  SimNs sum = 0;
  for (const Span& s : t.spans) {
    EXPECT_EQ(s.start_ns, cursor) << "gap/overlap in request " << t.req.id;
    EXPECT_GE(s.end_ns, s.start_ns) << "request " << t.req.id;
    sum += s.end_ns - s.start_ns;
    cursor = s.end_ns;
  }
  EXPECT_EQ(cursor, t.terminal_ns) << "request " << t.req.id;
  EXPECT_EQ(sum, t.terminal_ns - t.req.arrival_ns)
      << "request " << t.req.id;
}

// ---------------------------------------------------------------------------
// The conservation law, re-derived independently of the tracer's own
// PMG_CHECK, and cross-checked against the server's terminal records.
// ---------------------------------------------------------------------------

TEST(ServeTracerTest, ConservationLawRederivedIndependently) {
  const graph::CsrTopology topo = ServeGraph();
  serve::ServeConfig cfg = CrashConfig();
  ServeTracer tracer;
  cfg.observer = &tracer;
  serve::Server server(topo, cfg);
  const serve::ServeReport rep = server.Run();

  ASSERT_EQ(tracer.timelines().size(), rep.records.size());
  EXPECT_GT(rep.completed + rep.completed_degraded, 0u);
  EXPECT_GT(rep.crashes, 0u);

  for (const RequestTimeline& t : tracer.timelines()) {
    ExpectConservation(t);
    // The component split partitions the same timeline, so its sum is the
    // same bit-exact latency.
    EXPECT_EQ(t.Breakdown().Sum(), t.LatencyNs()) << t.req.id;
  }

  // The timelines must agree with the server's own terminal accounting —
  // two independent derivations of every request's lifetime.
  for (const serve::RequestRecord& rec : rep.records) {
    const RequestTimeline& t = tracer.timelines()[rec.req.id];
    EXPECT_EQ(t.req.id, rec.req.id);
    EXPECT_EQ(t.outcome, rec.outcome) << rec.req.id;
    EXPECT_EQ(t.missed_deadline, rec.missed_deadline) << rec.req.id;
    EXPECT_EQ(t.attempts, rec.attempts) << rec.req.id;
    EXPECT_EQ(t.hedges, rec.hedges) << rec.req.id;
    EXPECT_EQ(t.timeouts, rec.timeouts) << rec.req.id;
    EXPECT_EQ(t.crashes, rec.crashes) << rec.req.id;
    if (Answered(t)) {
      EXPECT_EQ(t.terminal_ns, rec.completion_ns) << rec.req.id;
      EXPECT_EQ(t.LatencyNs(), rec.latency_ns) << rec.req.id;
    }
    if (rec.outcome == serve::Outcome::kShed) {
      EXPECT_EQ(t.shed_reason, rec.shed_reason) << rec.req.id;
    }
  }
}

// ---------------------------------------------------------------------------
// Crash recovery shows up in the timeline as a crash-ended exec span
// followed by a recovery span, and the whole artifact re-runs to the byte.
// ---------------------------------------------------------------------------

TEST(ServeTracerTest, CrashRecoveryAppearsAsRecoverySpans) {
  const graph::CsrTopology topo = ServeGraph();

  auto run = [&](std::string* trace_json, std::string* tail_json) {
    serve::ServeConfig cfg = CrashConfig();
    ServeTracer tracer;
    cfg.observer = &tracer;
    serve::Server server(topo, cfg);
    const serve::ServeReport rep = server.Run();
    EXPECT_GT(rep.recoveries, 0u);
    *trace_json = tracer.ToJson();
    *tail_json = BuildTailReport(tracer).ToJson();

    bool saw_recovery = false;
    for (const RequestTimeline& t : tracer.timelines()) {
      for (size_t i = 0; i < t.spans.size(); ++i) {
        if (t.spans[i].kind != SpanKind::kRecovery) continue;
        saw_recovery = true;
        EXPECT_GT(t.spans[i].end_ns, t.spans[i].start_ns);
        // The stall is caused by a crash that killed this request's
        // attempt: the preceding span is that crashed execution.
        ASSERT_GT(i, 0u) << t.req.id;
        EXPECT_EQ(t.spans[i - 1].kind, SpanKind::kExec) << t.req.id;
        EXPECT_EQ(t.spans[i - 1].end_why,
                  serve::ServeObserver::ExecEnd::kCrash)
            << t.req.id;
      }
    }
    EXPECT_TRUE(saw_recovery);
  };

  std::string trace_a, tail_a, trace_b, tail_b;
  run(&trace_a, &tail_a);
  run(&trace_b, &tail_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(tail_a, tail_b);
}

// ---------------------------------------------------------------------------
// Observer neutrality: attaching a tracer changes no simulated number.
// ---------------------------------------------------------------------------

TEST(ServeTracerTest, AttachingTheTracerChangesNoSimulatedNumber) {
  const graph::CsrTopology topo = ServeGraph();

  std::string bare_report, bare_prom;
  {
    serve::Server server(topo, CrashConfig());
    bare_report = server.Run().ToJson();
    bare_prom = server.registry().PrometheusText();
  }

  serve::ServeConfig cfg = CrashConfig();
  ServeTracer tracer;
  cfg.observer = &tracer;
  serve::Server server(topo, cfg);
  EXPECT_EQ(server.Run().ToJson(), bare_report);
  EXPECT_EQ(server.registry().PrometheusText(), bare_prom);
}

// ---------------------------------------------------------------------------
// Give-up abandons: when the server exhausts max_recoveries mid-serving,
// every request still terminates and the law still holds.
// ---------------------------------------------------------------------------

TEST(ServeTracerTest, GiveUpAbandonsKeepTheLaw) {
  const graph::CsrTopology topo = ServeGraph();
  serve::ServeConfig cfg = CrashConfig();
  cfg.faults = MustFaults(
      "crash@access:40000;crash@access:41000;crash@access:42000;seed=9");
  cfg.max_recoveries = 1;
  ServeTracer tracer;
  cfg.observer = &tracer;
  serve::Server server(topo, cfg);
  const serve::ServeReport rep = server.Run();
  EXPECT_FALSE(rep.finished);

  uint64_t abandoned = 0;
  for (const RequestTimeline& t : tracer.timelines()) {
    ExpectConservation(t);
    if (t.abandoned) {
      ++abandoned;
      EXPECT_EQ(t.outcome, serve::Outcome::kFailed) << t.req.id;
    }
  }
  EXPECT_GT(abandoned, 0u);
  EXPECT_EQ(abandoned, rep.failed);
}

// ---------------------------------------------------------------------------
// The tail report round-trips through its own JSON bit for bit.
// ---------------------------------------------------------------------------

TEST(ServeTailReportTest, JsonRoundTrips) {
  const graph::CsrTopology topo = ServeGraph();
  serve::ServeConfig cfg = CrashConfig();
  ServeTracer tracer;
  cfg.observer = &tracer;
  serve::Server server(topo, cfg);
  (void)server.Run();

  const ServeTailReport report = BuildTailReport(tracer);
  EXPECT_EQ(report.offered, tracer.timelines().size());
  ASSERT_FALSE(report.rows.empty());
  EXPECT_TRUE(report.rows.front().all);
  const std::string first = report.ToJson();

  trace::JsonValue doc;
  std::string error;
  ASSERT_TRUE(trace::JsonValue::Parse(first, &doc, &error)) << error;
  ServeTailReport reparsed;
  ASSERT_TRUE(ServeTailReport::FromJson(doc, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.ToJson(), first);

  // A wrong schema version is a parse error, not a silent misread.
  trace::JsonValue bad;
  ASSERT_TRUE(trace::JsonValue::Parse(
      "{\"schema_version\": 999, \"offered\": 0}", &bad, &error));
  EXPECT_FALSE(ServeTailReport::FromJson(bad, &reparsed, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Host pricing-pool width is a host-side execution detail: no traced byte
// may depend on it (the determinism contract the differential suite
// sweeps end to end).
// ---------------------------------------------------------------------------

TEST(ServeTracerTest, HostWorkerWidthNeverChangesTraceBytes) {
  const graph::CsrTopology topo = ServeGraph();

  auto run = [&](uint32_t host_workers, std::string* out) {
    serve::ServeConfig cfg = CrashConfig();
    cfg.host_workers = host_workers;
    ServeTracer tracer;
    cfg.observer = &tracer;
    serve::Server server(topo, cfg);
    const serve::ServeReport rep = server.Run();
    *out = rep.ToJson() + "\n" + tracer.ToJson() + "\n" +
           BuildTailReport(tracer).ToJson() + "\n" +
           server.registry().PrometheusText();
  };

  std::string serial, wide;
  run(1, &serial);
  run(4, &wide);
  EXPECT_EQ(serial, wide);
}

// ---------------------------------------------------------------------------
// Exemplars: each latency bucket links to a real answered request whose
// latency actually lands there.
// ---------------------------------------------------------------------------

TEST(ServeTracerTest, LatencyHistogramsCarryRequestExemplars) {
  const graph::CsrTopology topo = ServeGraph();
  serve::ServeConfig cfg = CrashConfig();
  ServeTracer tracer;
  cfg.observer = &tracer;
  serve::Server server(topo, cfg);
  const serve::ServeReport rep = server.Run();
  ASSERT_GT(rep.completed + rep.completed_degraded, 0u);

  const metrics::Registry& reg = server.registry();
  metrics::MetricId latency_id = 0;
  bool found = false;
  for (metrics::MetricId id = 0; id < reg.metric_count(); ++id) {
    if (reg.name(id) == "pmg_serve_latency_ns") {
      latency_id = id;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  const std::vector<metrics::HistogramExemplar> exemplars =
      reg.HistogramExemplars(latency_id);
  ASSERT_FALSE(exemplars.empty());
  size_t prev_bucket = 0;
  for (size_t i = 0; i < exemplars.size(); ++i) {
    const metrics::HistogramExemplar& e = exemplars[i];
    if (i > 0) {
      EXPECT_GT(e.bucket, prev_bucket);
    }
    prev_bucket = e.bucket;
    EXPECT_EQ(metrics::Log2Bucket(e.value), e.bucket);
    // The exemplar id is an answered request, and the exemplar value is
    // exactly that request's end-to-end latency.
    ASSERT_LT(e.exemplar, rep.records.size());
    const serve::RequestRecord& rec = rep.records[e.exemplar];
    EXPECT_TRUE(rec.outcome == serve::Outcome::kCompleted ||
                rec.outcome == serve::Outcome::kCompletedDegraded)
        << e.exemplar;
    EXPECT_EQ(rec.latency_ns, e.value) << e.exemplar;
  }

  // The exposition carries them too, on bucket rows of this family only.
  const std::string prom = reg.PrometheusText();
  EXPECT_NE(prom.find("pmg_serve_latency_ns_bucket"), std::string::npos);
  EXPECT_NE(prom.find("# {exemplar_id="), std::string::npos);
}

}  // namespace
}  // namespace pmg::servetrace
