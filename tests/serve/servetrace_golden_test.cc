// Golden-file tests for the pmg::servetrace output surfaces on the
// canonical burst+crash serving scenario (the bench_serve_p99 scenario:
// `canonical` workload, one mid-serving crash, the tiny 2-socket
// machine): the tail-explainer table and JSON, the selected-request
// timeline JSON, the exemplars section, and the PMM-vs-DRAM contrast
// table pmg_explain --tail/--contrast prints. "Enabled tracing is
// byte-identical" is enforced twice: in-process (two runs compared) and
// against the committed goldens (across builds and machines).
// Regenerate after an intentional format change with
//
//   ./servetrace_golden_test --update-goldens

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "pmg/faultsim/fault_schedule.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/scenarios/report.h"
#include "pmg/serve/server.h"
#include "pmg/serve/workload.h"
#include "pmg/servetrace/servetrace.h"
#include "pmg/trace/json.h"

namespace pmg::servetrace {

bool g_update_goldens = false;

namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(PMG_GOLDEN_DIR) + "/" + name;
}

/// Compares `actual` against goldens/<name>, or rewrites the golden when
/// the binary runs with --update-goldens.
void ExpectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_goldens) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with --update-goldens to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "output drifted from " << path
      << "; rerun with --update-goldens if the change is intentional";
}

template <typename Fn>
std::string Capture(Fn&& fn) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  fn(f);
  std::fflush(f);
  const long size = std::ftell(f);
  std::rewind(f);
  std::string out(static_cast<size_t>(size), '\0');
  const size_t read = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  EXPECT_EQ(read, out.size());
  return out;
}

/// The acceptance machine of tests/serve and bench_serve_p99: a small
/// 2-socket DRAM machine.
memsim::MachineConfig TinyConfig() {
  memsim::MachineConfig c;
  c.kind = memsim::MachineKind::kDramMain;
  c.name = "tiny";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(8);
  c.topology.pmm_bytes_per_socket = 0;
  c.cpu_cache_lines = 64;
  return c;
}

/// The same machine with Optane PMM as main memory and a small DRAM
/// cache (Memory Mode) — the paper's contrast axis, shrunk to test size.
memsim::MachineConfig TinyPmmConfig() {
  memsim::MachineConfig c = TinyConfig();
  c.kind = memsim::MachineKind::kMemoryMode;
  c.name = "tiny-pmm";
  c.topology.dram_bytes_per_socket = MiB(1);
  c.topology.pmm_bytes_per_socket = MiB(8);
  return c;
}

/// The canonical burst+crash serving scenario of bench_serve_p99.
serve::ServeConfig CanonicalConfig(const memsim::MachineConfig& machine) {
  serve::ServeConfig cfg;
  cfg.machine = machine;
  cfg.threads = 4;
  cfg.algo.label_policy.placement = memsim::Placement::kInterleaved;
  cfg.pr_rounds = 10;
  std::string error;
  EXPECT_TRUE(serve::WorkloadSpec::Parse("canonical", &cfg.workload, &error))
      << error;
  EXPECT_TRUE(faultsim::FaultSchedule::Parse("crash@access:300000;seed=42",
                                             &cfg.faults, &error))
      << error;
  return cfg;
}

struct GoldenOutputs {
  std::string tail_table;
  std::string tail_json;
  std::string trace_json;
  std::string exemplars_json;
  ServeTailReport tail;
};

GoldenOutputs RunCanonical(const memsim::MachineConfig& machine) {
  graph::CsrTopology topo = graph::Rmat(8, 8, 7);
  graph::AssignRandomWeights(&topo, /*max_weight=*/9, /*seed=*/13);

  serve::ServeConfig cfg = CanonicalConfig(machine);
  ServeTracer tracer;
  cfg.observer = &tracer;
  serve::Server server(topo, cfg);
  (void)server.Run();

  GoldenOutputs out;
  out.tail = BuildTailReport(tracer);
  out.tail_table =
      Capture([&](std::FILE* f) { scenarios::PrintServeTailReport(out.tail, f); });
  out.tail_json = out.tail.ToJson();
  out.trace_json = tracer.ToJson();
  trace::JsonWriter w;
  AppendRegistryExemplarsJson(server.registry(), &w);
  out.exemplars_json = w.str();
  return out;
}

TEST(ServeTraceGoldenTest, OutputsAreIdenticalAcrossRuns) {
  const GoldenOutputs a = RunCanonical(TinyConfig());
  const GoldenOutputs b = RunCanonical(TinyConfig());
  EXPECT_EQ(a.tail_table, b.tail_table);
  EXPECT_EQ(a.tail_json, b.tail_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.exemplars_json, b.exemplars_json);
}

TEST(ServeTraceGoldenTest, TailTable) {
  ExpectMatchesGolden("serve_tail_table.golden",
                      RunCanonical(TinyConfig()).tail_table);
}

TEST(ServeTraceGoldenTest, TailJson) {
  const std::string doc = RunCanonical(TinyConfig()).tail_json;
  ExpectMatchesGolden("serve_tail.json.golden", doc);
  // Schema contract: versioned, parseable, FromJson round-trips to the
  // same bytes.
  trace::JsonValue v;
  std::string err;
  ASSERT_TRUE(trace::JsonValue::Parse(doc, &v, &err)) << err;
  EXPECT_EQ(v.Find("schema_version")->AsUInt(), kServeTraceSchemaVersion);
  ServeTailReport report;
  ASSERT_TRUE(ServeTailReport::FromJson(v, &report, &err)) << err;
  EXPECT_EQ(report.ToJson(), doc);
}

TEST(ServeTraceGoldenTest, TimelineJson) {
  const std::string doc = RunCanonical(TinyConfig()).trace_json;
  ExpectMatchesGolden("servetrace.json.golden", doc);
  trace::JsonValue v;
  std::string err;
  ASSERT_TRUE(trace::JsonValue::Parse(doc, &v, &err)) << err;
  EXPECT_EQ(v.Find("schema_version")->AsUInt(), kServeTraceSchemaVersion);
  ASSERT_NE(v.Find("selected"), nullptr);
}

TEST(ServeTraceGoldenTest, ExemplarsJson) {
  const std::string doc = RunCanonical(TinyConfig()).exemplars_json;
  ExpectMatchesGolden("serve_exemplars.json.golden", doc);
  trace::JsonValue v;
  std::string err;
  ASSERT_TRUE(trace::JsonValue::Parse(doc, &v, &err)) << err;
}

TEST(ServeTraceGoldenTest, PmmVsDramContrastTable) {
  // The paper's axis: the same canonical scenario served from Optane PMM
  // (Memory Mode) vs DRAM. The contrast table ranks which latency
  // component moved the p999 — the pmg_explain --tail/--contrast path.
  const GoldenOutputs pmm = RunCanonical(TinyPmmConfig());
  const GoldenOutputs dram = RunCanonical(TinyConfig());
  ExpectMatchesGolden(
      "serve_tail_contrast.golden", Capture([&](std::FILE* f) {
        scenarios::PrintServeTailContrast(pmm.tail, dram.tail, f);
      }));
}

}  // namespace
}  // namespace pmg::servetrace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-goldens") {
      pmg::servetrace::g_update_goldens = true;
    }
  }
  return RUN_ALL_TESTS();
}
