#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "pmg/faultsim/fault_schedule.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/serve/server.h"
#include "pmg/serve/workload.h"

/// \file serve_acceptance_test.cc
/// The PR's acceptance scenario: on the canonical burst workload with a
/// crash mid-serving, the robust server meets the deadline-miss budget
/// while the naive baseline (unbounded queue, no timeout/retry/hedge/
/// degrade) blows through it — and two identical-seed runs of either
/// server produce byte-identical reports.

namespace pmg::serve {
namespace {

using memsim::MachineConfig;
using memsim::MachineKind;

/// The canonical scenario's deadline-miss budget, percent. The robust
/// server must shed the burst excess fast enough that the remaining
/// traffic answers in budget; the naive server queues everything and
/// (after the first burst) answers everything late.
constexpr double kCanonicalMissBudgetPct = 35.0;

MachineConfig TinyConfig() {
  MachineConfig c;
  c.kind = MachineKind::kDramMain;
  c.name = "tiny";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(8);
  c.topology.pmm_bytes_per_socket = 0;
  c.cpu_cache_lines = 64;
  return c;
}

/// The canonical acceptance graph: the scale-free 256-vertex serve graph.
graph::CsrTopology AcceptanceGraph() {
  graph::CsrTopology topo = graph::Rmat(8, 8, 7);
  graph::AssignRandomWeights(&topo, /*max_weight=*/9, /*seed=*/13);
  return topo;
}

ServeConfig CanonicalConfig() {
  ServeConfig cfg;
  cfg.machine = TinyConfig();
  cfg.threads = 4;
  cfg.algo.label_policy.placement = memsim::Placement::kInterleaved;
  cfg.pr_rounds = 10;
  std::string error;
  EXPECT_TRUE(WorkloadSpec::Parse("canonical", &cfg.workload, &error))
      << error;
  // The canonical fault: a crash mid-serving (recovery is part of the
  // scenario, for the robust server and the naive baseline alike).
  EXPECT_TRUE(faultsim::FaultSchedule::Parse("crash@access:300000;seed=42",
                                             &cfg.faults, &error))
      << error;
  return cfg;
}

TEST(ServeAcceptanceTest, CanonicalRobustMeetsBudgetNaiveBlowsIt) {
  const graph::CsrTopology topo = AcceptanceGraph();

  Server robust_server(topo, CanonicalConfig());
  const ServeReport robust = robust_server.Run();
  ASSERT_TRUE(robust.finished);

  Server naive_server(topo, NaiveBaseline(CanonicalConfig()));
  const ServeReport naive = naive_server.Run();
  ASSERT_TRUE(naive.finished);

  // Both servers saw the same trace and the same crash.
  ASSERT_EQ(robust.offered, naive.offered);
  EXPECT_GE(robust.crashes, 1u);
  EXPECT_GE(naive.crashes, 1u);

  std::printf("canonical: robust miss %.1f%% (budget %.0f%%), naive miss "
              "%.1f%% | robust p99 %.3f ms, naive p99 %.3f ms\n",
              robust.deadline_miss_pct, kCanonicalMissBudgetPct,
              naive.deadline_miss_pct,
              static_cast<double>(robust.p99_ns) / 1e6,
              static_cast<double>(naive.p99_ns) / 1e6);

  // The acceptance criterion.
  EXPECT_LE(robust.deadline_miss_pct, kCanonicalMissBudgetPct);
  EXPECT_GT(naive.deadline_miss_pct, kCanonicalMissBudgetPct);

  // And the robustness mechanisms actually carried the load: the robust
  // server shed the burst excess and kept its tail in budget.
  EXPECT_GT(robust.shed, 0u);
  EXPECT_EQ(naive.shed, 0u);
  EXPECT_LT(robust.p99_ns, naive.p99_ns);
  EXPECT_TRUE(robust.Conserves());
  EXPECT_TRUE(naive.Conserves());
}

TEST(ServeAcceptanceTest, CanonicalRunsAreByteIdentical) {
  const graph::CsrTopology topo = AcceptanceGraph();
  auto run = [&](bool naive) {
    const ServeConfig cfg = naive ? NaiveBaseline(CanonicalConfig())
                                  : CanonicalConfig();
    Server server(topo, cfg);
    const ServeReport rep = server.Run();
    return server.registry().PrometheusText() + rep.ToJson();
  };
  EXPECT_EQ(run(false), run(false));
  EXPECT_EQ(run(true), run(true));
}

}  // namespace
}  // namespace pmg::serve
