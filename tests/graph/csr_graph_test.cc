#include "pmg/graph/csr_graph.h"

#include <gtest/gtest.h>

#include "pmg/graph/generators.h"
#include "pmg/memsim/machine_configs.h"

namespace pmg::graph {
namespace {

using memsim::DramOnlyConfig;
using memsim::Machine;
using memsim::OptanePmmConfig;

GraphLayout OutOnly() {
  GraphLayout l;
  l.policy.placement = memsim::Placement::kInterleaved;
  return l;
}

TEST(CsrGraphTest, CostedAccessorsMatchTopology) {
  Machine m(DramOnlyConfig());
  CsrTopology topo = Rmat(8, 8, 3);
  AssignRandomWeights(&topo, 64, 1);
  GraphLayout l = OutOnly();
  l.with_weights = true;
  CsrGraph g(&m, topo, l, "g");
  ASSERT_EQ(g.num_vertices(), topo.num_vertices);
  ASSERT_EQ(g.num_edges(), topo.NumEdges());
  for (VertexId v = 0; v < 50; ++v) {
    const auto [first, last] = g.OutRange(0, v);
    EXPECT_EQ(first, topo.index[v]);
    EXPECT_EQ(last, topo.index[v + 1]);
    for (EdgeId e = first; e < last; ++e) {
      EXPECT_EQ(g.OutDst(0, e), topo.dst[e]);
      EXPECT_EQ(g.OutWeight(0, e), topo.weight[e]);
    }
  }
}

TEST(CsrGraphTest, InEdgesAreTranspose) {
  Machine m(DramOnlyConfig());
  CsrTopology topo = Rmat(7, 6, 4);
  GraphLayout l = OutOnly();
  l.load_in_edges = true;
  CsrGraph g(&m, topo, l, "g");
  const CsrTopology t = Transpose(topo);
  for (VertexId v = 0; v < 40; ++v) {
    const auto [first, last] = g.InRange(0, v);
    EXPECT_EQ(last - first, t.OutDegree(v));
    for (EdgeId e = first; e < last; ++e) {
      EXPECT_EQ(g.InSrc(0, e), t.dst[e]);
    }
  }
}

TEST(CsrGraphTest, AccessesAreCosted) {
  Machine m(DramOnlyConfig());
  CsrTopology topo = Rmat(8, 8, 3);
  CsrGraph g(&m, topo, OutOnly(), "g");
  m.CloseEpochIfOpen();
  const uint64_t before = m.stats().accesses;
  int edges = 0;
  g.ForEachOutEdge(0, 1, [&](ThreadId, VertexId, uint32_t) { ++edges; });
  m.CloseEpochIfOpen();
  // 2 index reads + one read per edge.
  EXPECT_EQ(m.stats().accesses - before, 2u + edges);
}

TEST(CsrGraphTest, BothDirectionsDoubleFootprint) {
  Machine out_only_m(OptanePmmConfig());
  Machine both_m(OptanePmmConfig());
  CsrTopology topo = Rmat(10, 8, 5);
  CsrGraph a(&out_only_m, topo, OutOnly(), "a");
  GraphLayout both = OutOnly();
  both.load_in_edges = true;
  CsrGraph b(&both_m, topo, both, "b");
  a.Prefault(8);
  b.Prefault(8);
  const uint64_t bytes_a =
      out_only_m.NodeBytesUsed(0) + out_only_m.NodeBytesUsed(1);
  const uint64_t bytes_b = both_m.NodeBytesUsed(0) + both_m.NodeBytesUsed(1);
  EXPECT_GT(bytes_b, bytes_a * 3 / 2);
}

TEST(CsrGraphTest, WeightsDefaultToOneWhenAbsent) {
  Machine m(DramOnlyConfig());
  CsrTopology topo = Path(10);
  GraphLayout l = OutOnly();
  l.with_weights = true;
  CsrGraph g(&m, topo, l, "g");
  EXPECT_EQ(g.OutWeight(0, 0), 1u);
}

TEST(CsrGraphTest, PrefaultMapsPages) {
  Machine m(OptanePmmConfig());
  CsrTopology topo = Rmat(10, 8, 5);
  CsrGraph g(&m, topo, OutOnly(), "g");
  g.Prefault(4);
  EXPECT_GT(m.NodeBytesUsed(0) + m.NodeBytesUsed(1),
            topo.NumEdges() * sizeof(VertexId));
}

}  // namespace
}  // namespace pmg::graph
