#include "pmg/graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "pmg/graph/generators.h"

namespace pmg::graph {
namespace {

std::string TmpPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, RoundTripUnweighted) {
  CsrTopology g = Rmat(8, 8, 11);
  const std::string path = TmpPath("rt_unweighted.pmgr");
  ASSERT_TRUE(SaveCsr(g, path));
  CsrTopology r;
  ASSERT_TRUE(LoadCsr(path, &r));
  EXPECT_EQ(g.num_vertices, r.num_vertices);
  EXPECT_EQ(g.index, r.index);
  EXPECT_EQ(g.dst, r.dst);
  EXPECT_FALSE(r.HasWeights());
  std::remove(path.c_str());
}

TEST(GraphIoTest, RoundTripWeighted) {
  CsrTopology g = Rmat(7, 4, 2);
  AssignRandomWeights(&g, 255, 9);
  const std::string path = TmpPath("rt_weighted.pmgr");
  ASSERT_TRUE(SaveCsr(g, path));
  CsrTopology r;
  ASSERT_TRUE(LoadCsr(path, &r));
  EXPECT_EQ(g.weight, r.weight);
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadRejectsMissingFile) {
  CsrTopology r;
  EXPECT_FALSE(LoadCsr(TmpPath("does_not_exist.pmgr"), &r));
}

TEST(GraphIoTest, LoadRejectsBadMagic) {
  const std::string path = TmpPath("bad_magic.pmgr");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOPE", 1, 4, f);
  std::fclose(f);
  CsrTopology r;
  EXPECT_FALSE(LoadCsr(path, &r));
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadRejectsTruncated) {
  CsrTopology g = Rmat(6, 4, 2);
  const std::string path = TmpPath("truncated.pmgr");
  ASSERT_TRUE(SaveCsr(g, path));
  // Truncate the file to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  CsrTopology r;
  EXPECT_FALSE(LoadCsr(path, &r));
  std::remove(path.c_str());
}

TEST(GraphIoTest, EdgeListRoundTrip) {
  CsrTopology g = Rmat(6, 6, 5);
  AssignRandomWeights(&g, 50, 2);
  const std::string path = TmpPath("edges.txt");
  ASSERT_TRUE(WriteEdgeList(g, path));
  CsrTopology r;
  ASSERT_TRUE(ReadEdgeList(path, g.num_vertices, &r));
  EXPECT_EQ(g.index, r.index);
  EXPECT_EQ(g.dst, r.dst);
  EXPECT_EQ(g.weight, r.weight);
  std::remove(path.c_str());
}

TEST(GraphIoTest, EdgeListSkipsComments) {
  const std::string path = TmpPath("comments.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "# header\n%% another\n0 1\n1 2\n");
  std::fclose(f);
  CsrTopology r;
  ASSERT_TRUE(ReadEdgeList(path, 0, &r));
  EXPECT_EQ(r.num_vertices, 3u);
  EXPECT_EQ(r.NumEdges(), 2u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, EdgeListRejectsOutOfRangeIds) {
  const std::string path = TmpPath("oor.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "0 5\n");
  std::fclose(f);
  CsrTopology r;
  EXPECT_FALSE(ReadEdgeList(path, 3, &r));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pmg::graph
