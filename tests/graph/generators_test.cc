#include "pmg/graph/generators.h"

#include <gtest/gtest.h>

#include "pmg/graph/properties.h"

namespace pmg::graph {
namespace {

TEST(GeneratorsTest, RmatSizes) {
  CsrTopology g = Rmat(10, 16, 1);
  EXPECT_EQ(g.num_vertices, 1024u);
  EXPECT_EQ(g.NumEdges(), 16u * 1024);
}

TEST(GeneratorsTest, RmatDeterministic) {
  CsrTopology a = Rmat(9, 8, 42);
  CsrTopology b = Rmat(9, 8, 42);
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.dst, b.dst);
  CsrTopology c = Rmat(9, 8, 43);
  EXPECT_NE(a.dst, c.dst);
}

TEST(GeneratorsTest, RmatIsSkewed) {
  // Power-law-ish: the max degree should far exceed the average.
  CsrTopology g = Rmat(12, 16, 1);
  GraphProperties p = ComputeProperties(g);
  EXPECT_GT(p.max_out_degree, 20 * static_cast<uint64_t>(p.avg_degree));
}

TEST(GeneratorsTest, RmatHasSmallDiameter) {
  CsrTopology g = Rmat(12, 16, 1);
  GraphProperties p = ComputeProperties(g);
  EXPECT_LE(p.estimated_diameter, 12u);
}

TEST(GeneratorsTest, KronDiffersFromRmatButSameScale) {
  CsrTopology k = Kron(10, 8, 5);
  CsrTopology r = Rmat(10, 8, 5);
  EXPECT_EQ(k.num_vertices, r.num_vertices);
  EXPECT_EQ(k.NumEdges(), r.NumEdges());
  EXPECT_NE(k.dst, r.dst);
}

TEST(GeneratorsTest, ErdosRenyiSizes) {
  CsrTopology g = ErdosRenyi(1000, 5000, 3);
  EXPECT_EQ(g.num_vertices, 1000u);
  EXPECT_EQ(g.NumEdges(), 5000u);
}

TEST(GeneratorsTest, WebCrawlHasTargetDiameter) {
  WebCrawlParams p;
  p.vertices = 20000;
  p.avg_out_degree = 10;
  p.communities = 50;
  p.tail_length = 500;
  p.seed = 7;
  CsrTopology g = WebCrawl(p);
  GraphProperties props = ComputeProperties(g);
  // The deep chain dominates the diameter: roughly tail_length.
  EXPECT_GT(props.estimated_diameter, 450u);
  EXPECT_LT(props.estimated_diameter, 700u);
}

TEST(GeneratorsTest, WebCrawlDiameterScalesWithTailLength) {
  WebCrawlParams a;
  a.vertices = 10000;
  a.communities = 20;
  a.tail_length = 100;
  a.tail_width = 2;
  WebCrawlParams b = a;
  b.tail_length = 1000;
  const uint64_t da = ComputeProperties(WebCrawl(a)).estimated_diameter;
  const uint64_t db = ComputeProperties(WebCrawl(b)).estimated_diameter;
  EXPECT_GT(db, 3 * da);
}

TEST(GeneratorsTest, WebCrawlHasHeavyInDegreeHubs) {
  WebCrawlParams p;
  p.vertices = 20000;
  p.communities = 50;
  p.hubs = 2;
  p.hub_percent = 5;
  CsrTopology g = WebCrawl(p);
  GraphProperties props = ComputeProperties(g);
  EXPECT_GT(props.max_in_degree, 100 * static_cast<uint64_t>(props.avg_degree));
}

TEST(GeneratorsTest, WebCrawlFullyReachableFromHub) {
  WebCrawlParams p;
  p.vertices = 5000;
  p.communities = 25;
  p.tail_length = 100;
  CsrTopology g = WebCrawl(p);
  // BFS (directed) from vertex 0 (community-0 hub) reaches everything.
  std::vector<bool> seen(g.num_vertices, false);
  std::vector<VertexId> stack = {0};
  seen[0] = true;
  uint64_t count = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) {
      if (!seen[g.dst[e]]) {
        seen[g.dst[e]] = true;
        ++count;
        stack.push_back(g.dst[e]);
      }
    }
  }
  EXPECT_EQ(count, g.num_vertices);
}

TEST(GeneratorsTest, ProteinClusterDenseAndModerateDiameter) {
  CsrTopology g = ProteinCluster(/*clusters=*/30, /*cluster_size=*/100,
                                 /*intra_degree=*/40, /*seed=*/3);
  GraphProperties p = ComputeProperties(g);
  EXPECT_EQ(p.num_vertices, 3000u);
  EXPECT_GT(p.avg_degree, 40.0);
  EXPECT_GT(p.estimated_diameter, 15u);
  EXPECT_LT(p.estimated_diameter, 120u);
}

TEST(GeneratorsTest, PathProperties) {
  CsrTopology g = Path(100);
  GraphProperties p = ComputeProperties(g);
  EXPECT_EQ(p.num_edges, 99u);
  EXPECT_EQ(p.estimated_diameter, 99u);
}

TEST(GeneratorsTest, CycleAllDegreeOne) {
  CsrTopology g = Cycle(10);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(g.OutDegree(v), 1u);
}

TEST(GeneratorsTest, StarShape) {
  CsrTopology g = Star(9);
  EXPECT_EQ(g.num_vertices, 10u);
  EXPECT_EQ(g.OutDegree(0), 9u);
  EXPECT_EQ(MaxOutDegreeVertex(g), 0u);
}

TEST(GeneratorsTest, CompleteGraphEdgeCount) {
  CsrTopology g = Complete(6);
  EXPECT_EQ(g.NumEdges(), 30u);
}

TEST(GeneratorsTest, Grid2dDiameter) {
  CsrTopology g = Grid2d(5, 7);
  GraphProperties p = ComputeProperties(g);
  EXPECT_EQ(p.num_vertices, 35u);
  EXPECT_EQ(p.estimated_diameter, 4u + 6u);
}

}  // namespace
}  // namespace pmg::graph
