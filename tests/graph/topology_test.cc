#include "pmg/graph/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "pmg/graph/generators.h"

namespace pmg::graph {
namespace {

TEST(BuildCsrTest, SimpleTriangle) {
  EdgeList edges = {{0, 1, 5}, {1, 2, 6}, {2, 0, 7}, {0, 2, 8}};
  CsrTopology g = BuildCsr(3, edges, /*keep_weights=*/true);
  EXPECT_EQ(g.num_vertices, 3u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.OutDegree(2), 1u);
  // Edge (1 -> 2) keeps weight 6.
  EXPECT_EQ(g.dst[g.index[1]], 2u);
  EXPECT_EQ(g.weight[g.index[1]], 6u);
}

TEST(BuildCsrTest, EmptyGraph) {
  CsrTopology g = BuildCsr(5, {}, false);
  EXPECT_EQ(g.num_vertices, 5u);
  EXPECT_EQ(g.NumEdges(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.OutDegree(v), 0u);
}

TEST(TransposeTest, ReversesEdges) {
  EdgeList edges = {{0, 1, 3}, {0, 2, 4}, {2, 1, 5}};
  CsrTopology g = BuildCsr(3, edges, true);
  CsrTopology t = Transpose(g);
  EXPECT_EQ(t.NumEdges(), 3u);
  EXPECT_EQ(t.OutDegree(1), 2u);  // in-degree of 1
  EXPECT_EQ(t.OutDegree(0), 0u);
  // Weight travels with the edge.
  bool found = false;
  for (uint64_t e = t.index[1]; e < t.index[2]; ++e) {
    if (t.dst[e] == 2) {
      EXPECT_EQ(t.weight[e], 5u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  CsrTopology g = Rmat(8, 8, /*seed=*/3);
  CsrTopology tt = Transpose(Transpose(g));
  SortAdjacency(&g);
  SortAdjacency(&tt);
  EXPECT_EQ(g.index, tt.index);
  EXPECT_EQ(g.dst, tt.dst);
}

TEST(SymmetrizeTest, MakesUndirectedNoLoopsNoDups) {
  EdgeList edges = {{0, 1, 1}, {1, 0, 1}, {1, 1, 1}, {1, 2, 1}, {1, 2, 1}};
  CsrTopology s = Symmetrize(BuildCsr(3, edges, false));
  // Expected undirected edges: {0,1}, {1,2} -> 4 directed arcs.
  EXPECT_EQ(s.NumEdges(), 4u);
  for (VertexId v = 0; v < 3; ++v) {
    for (uint64_t e = s.index[v]; e < s.index[v + 1]; ++e) {
      EXPECT_NE(s.dst[e], v);  // no self loops
    }
  }
  // Symmetric: u in adj(v) iff v in adj(u).
  CsrTopology t = Transpose(s);
  SortAdjacency(&s);
  SortAdjacency(&t);
  EXPECT_EQ(s.dst, t.dst);
  EXPECT_EQ(s.index, t.index);
}

TEST(SortAdjacencyTest, SortsWithWeights) {
  EdgeList edges = {{0, 3, 30}, {0, 1, 10}, {0, 2, 20}};
  CsrTopology g = BuildCsr(4, edges, true);
  SortAdjacency(&g);
  EXPECT_EQ(g.dst[0], 1u);
  EXPECT_EQ(g.weight[0], 10u);
  EXPECT_EQ(g.dst[1], 2u);
  EXPECT_EQ(g.weight[1], 20u);
  EXPECT_EQ(g.dst[2], 3u);
  EXPECT_EQ(g.weight[2], 30u);
}

TEST(DedupTest, RemovesDuplicatesAndLoops) {
  EdgeList edges = {{0, 1, 9}, {0, 1, 4}, {0, 0, 1}, {1, 0, 2}};
  CsrTopology g = DedupAndDropSelfLoops(BuildCsr(2, edges, true));
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.OutDegree(1), 1u);
}

TEST(WeightsTest, AssignRandomWeightsInRange) {
  CsrTopology g = Rmat(8, 4, 1);
  AssignRandomWeights(&g, 100, /*seed=*/7);
  ASSERT_TRUE(g.HasWeights());
  for (uint32_t w : g.weight) {
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, 100u);
  }
  // Deterministic for a fixed seed.
  CsrTopology g2 = Rmat(8, 4, 1);
  AssignRandomWeights(&g2, 100, 7);
  EXPECT_EQ(g.weight, g2.weight);
}

TEST(CsrBytesTest, CountsAllArrays) {
  CsrTopology g = BuildCsr(3, {{0, 1, 1}, {1, 2, 1}}, false);
  EXPECT_EQ(CsrBytes(g), 4 * 8 + 2 * 8u);
  AssignRandomWeights(&g, 10, 1);
  EXPECT_EQ(CsrBytes(g), 4 * 8 + 2 * 8 + 2 * 4u);
}

TEST(RelabelTest, PreservesDegreeMultiset) {
  CsrTopology g = Rmat(7, 6, 2);
  std::vector<VertexId> perm(g.num_vertices);
  std::iota(perm.begin(), perm.end(), 0);
  // Deterministic shuffle: reverse.
  std::reverse(perm.begin(), perm.end());
  CsrTopology r = Relabel(g, perm);
  std::vector<uint64_t> d1(g.num_vertices);
  std::vector<uint64_t> d2(g.num_vertices);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    d1[v] = g.OutDegree(v);
    d2[v] = r.OutDegree(v);
  }
  std::sort(d1.begin(), d1.end());
  std::sort(d2.begin(), d2.end());
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(g.NumEdges(), r.NumEdges());
}

}  // namespace
}  // namespace pmg::graph
