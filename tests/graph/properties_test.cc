#include "pmg/graph/properties.h"

#include <gtest/gtest.h>

#include "pmg/graph/generators.h"

namespace pmg::graph {
namespace {

TEST(PropertiesTest, PathDiameterExact) {
  const GraphProperties p = ComputeProperties(Path(40));
  EXPECT_EQ(p.estimated_diameter, 39u);
  EXPECT_EQ(p.num_edges, 39u);
  EXPECT_EQ(p.max_out_degree, 1u);
  EXPECT_EQ(p.max_in_degree, 1u);
}

TEST(PropertiesTest, StarDegreesAndDiameter) {
  const GraphProperties p = ComputeProperties(Star(25));
  EXPECT_EQ(p.max_out_degree, 25u);
  EXPECT_EQ(p.max_out_degree_vertex, 0u);
  EXPECT_EQ(p.max_in_degree, 1u);
  // Undirected view: leaf -> center -> leaf.
  EXPECT_EQ(p.estimated_diameter, 2u);
}

TEST(PropertiesTest, CompleteGraphDiameterOne) {
  EXPECT_EQ(ComputeProperties(Complete(8)).estimated_diameter, 1u);
}

TEST(PropertiesTest, CycleDiameterHalf) {
  // Undirected view of a directed 20-cycle: farthest pair is 10 apart.
  EXPECT_EQ(ComputeProperties(Cycle(20)).estimated_diameter, 10u);
}

TEST(PropertiesTest, AvgDegreeMatchesCounts) {
  const CsrTopology g = ErdosRenyi(500, 3000, 4);
  const GraphProperties p = ComputeProperties(g);
  EXPECT_DOUBLE_EQ(p.avg_degree, 6.0);
  EXPECT_EQ(p.csr_bytes, CsrBytes(g));
}

TEST(PropertiesTest, MaxOutDegreeVertexConsistent) {
  const CsrTopology g = Rmat(10, 8, 3);
  const VertexId v = MaxOutDegreeVertex(g);
  for (VertexId u = 0; u < g.num_vertices; ++u) {
    EXPECT_LE(g.OutDegree(u), g.OutDegree(v));
  }
}

TEST(PropertiesTest, DoubleSweepLowerBoundsTrueDiameter) {
  // On a grid the true diameter is rows-1 + cols-1; the double-sweep
  // estimate must reach it exactly (grids are diameter-friendly).
  const GraphProperties p = ComputeProperties(Grid2d(6, 11));
  EXPECT_EQ(p.estimated_diameter, 5u + 10u);
}

TEST(PropertiesTest, FarthestVertexOnPath) {
  const CsrTopology g = Path(30);
  const CsrTopology t = Transpose(g);
  const auto [far, dist] = FarthestVertex(g, t, 0);
  EXPECT_EQ(far, 29u);
  EXPECT_EQ(dist, 29u);
  const auto [far2, dist2] = FarthestVertex(g, t, 15);
  EXPECT_EQ(dist2, 15u);
  (void)far2;
}

TEST(PropertiesTest, DisconnectedGraphDiameterWithinComponent) {
  // Two disjoint paths: the sweep stays within the start component.
  EdgeList edges;
  for (VertexId v = 0; v + 1 < 10; ++v) edges.push_back({v, v + 1, 1});
  for (VertexId v = 10; v + 1 < 40; ++v) edges.push_back({v, v + 1, 1});
  const CsrTopology g = BuildCsr(40, edges, false);
  const GraphProperties p = ComputeProperties(g);
  // Max-out-degree vertex is in one of the components; diameter reported
  // is that component's (29 for the larger path if the sweep starts
  // there, 9 otherwise) — never a mix.
  EXPECT_TRUE(p.estimated_diameter == 29 || p.estimated_diameter == 9);
}

}  // namespace
}  // namespace pmg::graph
