// Tier-2 differential harness for host-parallel pricing: every published
// artifact of a run — machine counters, simulated time, trace reports,
// Chrome traces, Prometheus metrics, whatif journals, sanitizer summaries
// — must be byte-identical whether the host prices the simulation with 1,
// 2, 4 or 8 host threads. Host thread count is an execution-speed knob,
// never an input to a simulated number; this sweep is the law's
// enforcement across every app, machine kind and observer attachment.
//
// Observer-carrying runs exercise the fallback half of the contract
// (instrumented epochs price directly, so width must be invisible);
// observer-free runs exercise the phased engine itself.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "pmg/faultsim/fault_schedule.h"
#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/metrics/metrics_session.h"
#include "pmg/serve/server.h"
#include "pmg/serve/workload.h"
#include "pmg/servetrace/servetrace.h"
#include "pmg/tierscope/tierscope.h"
#include "pmg/trace/json.h"
#include "pmg/trace/trace_session.h"
#include "pmg/whatif/journal.h"

namespace pmg::frameworks {
namespace {

struct MachineCase {
  const char* label;
  memsim::MachineConfig config;
};

// One machine per kind the simulator models: memory-mode PMM, the DRAM
// baseline, app-direct PMM storage, and the second DRAM host ("Entropy").
std::vector<MachineCase> Machines() {
  return {
      {"pmm", memsim::OptanePmmConfig()},
      {"dram", memsim::DramOnlyConfig()},
      {"appdirect", memsim::AppDirectConfig()},
      {"entropy", memsim::EntropyConfig()},
  };
}

enum class Observe { kNone, kSanitize, kTrace, kMetrics, kJournal };

const char* ObserveName(Observe o) {
  switch (o) {
    case Observe::kNone:
      return "none";
    case Observe::kSanitize:
      return "sanitize";
    case Observe::kTrace:
      return "trace";
    case Observe::kMetrics:
      return "metrics";
    case Observe::kJournal:
      return "journal";
  }
  return "?";
}

/// Everything a run publishes, captured as bytes.
struct Artifacts {
  bool supported = false;
  AppRunResult result;
  std::string trace_report;
  std::string chrome_trace;
  std::string metrics_text;
  /// JournalToJson output — the exact bytes SaveJournal writes to a
  /// .pmgj file, compared in memory instead of through the filesystem.
  std::string journal_text;
};

Artifacts RunOnce(App app, const AppInputs& inputs,
                  const memsim::MachineConfig& machine, Observe observe,
                  uint32_t host_threads) {
  RunConfig cfg;
  cfg.machine = machine;
  cfg.threads = 16;
  cfg.pr_max_rounds = 10;
  cfg.host_threads = host_threads;

  trace::TraceSession trace;
  metrics::MetricsSession metrics;
  whatif::JournalRecorder journal;
  switch (observe) {
    case Observe::kNone:
      break;
    case Observe::kSanitize:
      cfg.sanitize = true;
      break;
    case Observe::kTrace:
      cfg.trace = &trace;
      break;
    case Observe::kMetrics:
      cfg.metrics = &metrics;
      break;
    case Observe::kJournal:
      cfg.journal = &journal;
      break;
  }

  Artifacts a;
  a.result = RunApp(FrameworkKind::kGalois, app, inputs, cfg);
  a.supported = a.result.supported;
  if (observe == Observe::kTrace) {
    a.trace_report = trace.report().ToJson();
    a.chrome_trace = trace.ChromeTraceJson();
  }
  if (observe == Observe::kMetrics) a.metrics_text = metrics.PrometheusText();
  if (observe == Observe::kJournal) {
    a.journal_text = whatif::JournalToJson(journal.journal());
  }
  return a;
}

/// Byte-compares two runs' artifacts. MachineStats is all-uint64_t POD,
/// so memcmp is an exact (and padding-free) field-by-field comparison.
void ExpectIdentical(const Artifacts& base, const Artifacts& run) {
  ASSERT_EQ(base.supported, run.supported);
  if (!base.supported) return;
  EXPECT_EQ(base.result.time_ns, run.result.time_ns);
  EXPECT_EQ(base.result.rounds, run.result.rounds);
  EXPECT_EQ(std::memcmp(&base.result.stats, &run.result.stats,
                        sizeof(base.result.stats)),
            0);
  EXPECT_EQ(base.result.sanitized, run.result.sanitized);
  EXPECT_EQ(base.result.sancheck.checked_accesses,
            run.result.sancheck.checked_accesses);
  EXPECT_EQ(base.result.sancheck.checked_epochs,
            run.result.sancheck.checked_epochs);
  EXPECT_EQ(base.result.sancheck.races, run.result.sancheck.races);
  EXPECT_EQ(base.trace_report, run.trace_report);
  EXPECT_EQ(base.chrome_trace, run.chrome_trace);
  EXPECT_EQ(base.metrics_text, run.metrics_text);
  EXPECT_EQ(base.journal_text, run.journal_text);
}

TEST(HostParallelDiffTest, EveryArtifactIsByteIdenticalAcrossHostWidths) {
  const AppInputs inputs = AppInputs::Prepare(graph::Rmat(10, 8, 3));
  for (const MachineCase& mc : Machines()) {
    for (const App app : AllApps()) {
      for (const Observe observe :
           {Observe::kNone, Observe::kSanitize, Observe::kTrace,
            Observe::kMetrics, Observe::kJournal}) {
        SCOPED_TRACE(std::string(mc.label) + "/" + AppName(app) + "/" +
                     ObserveName(observe));
        const Artifacts serial =
            RunOnce(app, inputs, mc.config, observe, /*host_threads=*/1);
        // The phased engine only engages on observer-free runs, so those
        // sweep every width; instrumented runs prove the fallback at one
        // representative width.
        const std::vector<uint32_t> widths =
            observe == Observe::kNone ? std::vector<uint32_t>{2, 4, 8}
                                      : std::vector<uint32_t>{4};
        for (const uint32_t w : widths) {
          SCOPED_TRACE("host_threads=" + std::to_string(w));
          ExpectIdentical(serial, RunOnce(app, inputs, mc.config, observe, w));
        }
      }
    }
  }
}

// The migration daemon is a per-epoch eligibility condition, not a
// machine-construction one: a pool-carrying machine with migration on
// must fall back to direct pricing and still publish identical bytes.
TEST(HostParallelDiffTest, MigrationRunsFallBackAndStayIdentical) {
  const AppInputs inputs = AppInputs::Prepare(graph::Rmat(10, 8, 3));
  memsim::MachineConfig config = memsim::OptanePmmConfig();
  config.migration.enabled = true;
  const Artifacts serial =
      RunOnce(App::kPr, inputs, config, Observe::kNone, /*host_threads=*/1);
  for (const uint32_t w : {2u, 8u}) {
    SCOPED_TRACE("host_threads=" + std::to_string(w));
    ExpectIdentical(serial,
                    RunOnce(App::kPr, inputs, config, Observe::kNone, w));
  }
}

// The serving layer prices its queries through the same host pool, and
// pmg::servetrace layers request timelines, exemplars and the tail
// explainer on top: all of it must be byte-identical across host widths.
// This is the --serve-trace leg of the differential matrix — it covers
// the ServeReport, the tracer's timeline JSON, the tail report, and the
// exemplar-carrying Prometheus exposition in one sweep.
TEST(HostParallelDiffTest, ServeTraceArtifactsAreByteIdenticalAcrossWidths) {
  graph::CsrTopology topo = graph::Rmat(8, 8, 7);
  graph::AssignRandomWeights(&topo, /*max_weight=*/9, /*seed=*/13);

  auto run = [&](uint32_t host_workers) {
    serve::ServeConfig cfg;
    cfg.machine = memsim::OptanePmmConfig();
    cfg.threads = 8;
    cfg.host_workers = host_workers;
    std::string error;
    EXPECT_TRUE(
        serve::WorkloadSpec::Parse("canonical", &cfg.workload, &error))
        << error;
    EXPECT_TRUE(faultsim::FaultSchedule::Parse("crash@access:300000;seed=42",
                                               &cfg.faults, &error))
        << error;
    servetrace::ServeTracer tracer;
    cfg.observer = &tracer;
    serve::Server server(topo, cfg);
    const serve::ServeReport rep = server.Run();
    return rep.ToJson() + "\n" + tracer.ToJson() + "\n" +
           servetrace::BuildTailReport(tracer).ToJson() + "\n" +
           server.registry().PrometheusText();
  };

  const std::string serial = run(1);
  for (const uint32_t w : {4u, 8u}) {
    SCOPED_TRACE("host_workers=" + std::to_string(w));
    EXPECT_EQ(serial, run(w));
  }
}

// The tier scope rides the machine's TierHook seam, which (like the
// other observers) forces direct pricing: the decision audit, its JSON
// report, and the per-node Chrome tracks must be byte-identical across
// host widths — this is the --tierscope leg of the differential matrix.
TEST(HostParallelDiffTest, TierscopeArtifactsAreByteIdenticalAcrossWidths) {
  const AppInputs inputs = AppInputs::Prepare(graph::Rmat(10, 8, 3));
  memsim::MachineConfig config = memsim::OptanePmmConfig();
  config.migration.enabled = true;

  auto run = [&](uint32_t host_threads) {
    RunConfig cfg;
    cfg.machine = config;
    cfg.threads = 16;
    cfg.pr_max_rounds = 10;
    cfg.host_threads = host_threads;
    tierscope::TierScope scope;
    cfg.tierscope = &scope;
    const AppRunResult r =
        RunApp(FrameworkKind::kGalois, App::kPr, inputs, cfg);
    EXPECT_TRUE(r.supported);
    EXPECT_TRUE(scope.report().Conserves());
    trace::JsonWriter w;
    w.BeginArray();
    scope.AppendChromeEvents(&w);
    w.EndArray();
    return std::to_string(r.time_ns) + "\n" + r.stats.ToString() + "\n" +
           scope.report().ToJson() + "\n" + w.str();
  };

  const std::string serial = run(1);
  for (const uint32_t w : {2u, 4u, 8u}) {
    SCOPED_TRACE("host_threads=" + std::to_string(w));
    EXPECT_EQ(serial, run(w));
  }
}

}  // namespace
}  // namespace pmg::frameworks
