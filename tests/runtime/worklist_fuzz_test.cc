#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "pmg/memsim/machine_configs.h"
#include "pmg/runtime/worklist.h"

// Model-based fuzzing of the worklists: long deterministic pseudo-random
// operation sequences are mirrored against simple reference containers;
// any divergence in contents or counts is a bug.

namespace pmg::runtime {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : x_(seed * 2654435761u + 1) {}
  uint64_t Next() {
    x_ ^= x_ << 13;
    x_ ^= x_ >> 7;
    x_ ^= x_ << 17;
    return x_;
  }

 private:
  uint64_t x_;
};

class WorklistFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(WorklistFuzzTest, SparseWorklistMatchesMultisetModel) {
  memsim::Machine m(memsim::DramOnlyConfig());
  constexpr uint32_t kThreads = 4;
  SparseWorklist<uint64_t> wl(&m, kThreads, "fuzz");
  std::multiset<uint64_t> model;
  Rng rng(GetParam());
  for (int step = 0; step < 20000; ++step) {
    const ThreadId t = static_cast<ThreadId>(rng.Next() % kThreads);
    if (rng.Next() % 100 < 60) {
      const uint64_t v = rng.Next() % 1000;
      wl.Push(t, v);
      model.insert(v);
    } else {
      uint64_t got = 0;
      const bool ok = wl.Pop(t, &got);
      ASSERT_EQ(ok, !model.empty()) << "step " << step;
      if (ok) {
        const auto it = model.find(got);
        ASSERT_NE(it, model.end())
            << "popped value " << got << " not in model at step " << step;
        model.erase(it);
      }
    }
    ASSERT_EQ(wl.size(), model.size());
    ASSERT_EQ(wl.Empty(), model.empty());
  }
  // Drain completely; every remaining element must come back exactly once.
  uint64_t v = 0;
  while (wl.Pop(0, &v)) {
    const auto it = model.find(v);
    ASSERT_NE(it, model.end());
    model.erase(it);
  }
  EXPECT_TRUE(model.empty());
}

TEST_P(WorklistFuzzTest, BucketWorklistRespectsPriorityAndContents) {
  memsim::Machine m(memsim::DramOnlyConfig());
  constexpr uint32_t kThreads = 3;
  BucketWorklist<uint64_t> wl(&m, kThreads, "fuzz");
  // model[bucket] = multiset of values.
  std::map<uint32_t, std::multiset<uint64_t>> model;
  uint64_t model_size = 0;
  Rng rng(GetParam() ^ 0xabcdef);
  uint32_t last_popped_bucket = 0;
  for (int step = 0; step < 20000; ++step) {
    const ThreadId t = static_cast<ThreadId>(rng.Next() % kThreads);
    if (rng.Next() % 100 < 55) {
      // Delta-stepping style: pushes go to the current bucket or later.
      const uint32_t bucket =
          last_popped_bucket + static_cast<uint32_t>(rng.Next() % 8);
      const uint64_t v = rng.Next() % 1000;
      wl.Push(t, bucket, v);
      model[bucket].insert(v);
      ++model_size;
    } else {
      uint32_t bucket = 0;
      uint64_t got = 0;
      const bool ok = wl.PopMin(t, &bucket, &got);
      ASSERT_EQ(ok, model_size != 0) << "step " << step;
      if (ok) {
        // Must come from the lowest non-empty model bucket.
        auto it = model.begin();
        while (it != model.end() && it->second.empty()) ++it;
        ASSERT_NE(it, model.end());
        ASSERT_EQ(bucket, it->first) << "step " << step;
        const auto vit = it->second.find(got);
        ASSERT_NE(vit, it->second.end()) << "step " << step;
        it->second.erase(vit);
        if (it->second.empty()) model.erase(it);
        --model_size;
        last_popped_bucket = bucket;
      }
    }
    ASSERT_EQ(wl.size(), model_size);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorklistFuzzTest,
                         testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace pmg::runtime
