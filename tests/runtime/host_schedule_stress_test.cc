// Seeded schedule-perturbation stress for host-parallel pricing: a
// HostPool with a nonzero shuffle seed dispatches settle tasks to its
// workers in a seed-derived random order, so across 50 seeds the phased
// engine's passes run under 50 different host schedules. Every one must
// produce machine counters bit-identical to serial pricing — the settle
// fold must be genuinely order-independent, not accidentally stable.
// On a mismatch the test shrinks the workload by halving until the
// divergence disappears and prints the smallest failing configuration
// with its seed, which replays the exact host schedule.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "pmg/memsim/host_pool.h"
#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/memsim/stats.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"
#include "pmg/runtime/worklist.h"

namespace pmg::runtime {
namespace {

/// A workload touching every recorded operation kind and every scheduler
/// shape: blocked ParallelFor (first touch + faults), round-robin
/// ParallelForDynamic (interleaved turn log), per-thread compute and
/// storage I/O, and an asynchronous worklist drain (fine-grained turns).
memsim::MachineStats RunWorkload(const memsim::MachineConfig& config,
                                 uint64_t n, memsim::HostPool* pool) {
  memsim::Machine machine(config);
  machine.SetHostPool(pool);
  Runtime rt(&machine, 16);
  const memsim::PagePolicy policy;
  NumaArray<uint64_t> a(&machine, n, policy, "stress.a");
  NumaArray<uint64_t> b(&machine, n, policy, "stress.b");

  rt.ParallelFor(0, n, [&](ThreadId t, uint64_t i) {
    a.Set(t, i, i * 2654435761ull % (n + 1));
  });
  rt.ParallelForDynamic(0, n, 37, [&](ThreadId t, uint64_t i) {
    const uint64_t v = a.Get(t, i);
    b.CasMin(t, (i * 7 + v) % n, v);
  });
  rt.ParallelExecute([&](ThreadId t) {
    machine.AddCompute(t, 100 + t);
    machine.StorageRead(t, 4096, t % 2, /*sequential=*/true, t % 3 == 0);
    machine.StorageWrite(t, 1024, (t + 1) % 2, /*sequential=*/false,
                         t % 5 == 0);
  });

  SparseWorklist<uint64_t> wl(&machine, rt.threads(), "stress.wl");
  rt.ParallelExecute([&](ThreadId t) {
    wl.Push(t, (uint64_t{t} * 97 + 3) % n);
  });
  DrainAsync(rt, wl, [&](ThreadId t, uint64_t item) {
    const uint64_t v = a.Get(t, item);
    if (b.CasMin(t, item, v / 2) && item > 1) wl.Push(t, item / 2);
  });

  machine.CloseEpochIfOpen();
  return machine.stats();
}

bool StatsEqual(const memsim::MachineStats& x, const memsim::MachineStats& y) {
  // MachineStats is all-uint64_t POD: memcmp compares every counter and
  // clock with no padding in between.
  return std::memcmp(&x, &y, sizeof(x)) == 0;
}

/// Runs the workload under the exact host schedule `seed` replays and
/// compares against serial pricing. A fresh 4-worker pool per call keeps
/// the shuffle stream a pure function of the seed.
bool SeedMatchesSerial(const memsim::MachineConfig& config, uint64_t n,
                       uint64_t seed) {
  const memsim::MachineStats serial = RunWorkload(config, n, nullptr);
  memsim::HostPool pool(4);
  pool.SetShuffleSeed(seed);
  return StatsEqual(serial, RunWorkload(config, n, &pool));
}

/// Halves the workload while the divergence persists and returns the
/// smallest failing size — the reproducer worth staring at.
uint64_t ShrinkFailure(const memsim::MachineConfig& config, uint64_t n,
                       uint64_t seed) {
  uint64_t smallest = n;
  for (uint64_t cand = n / 2; cand >= 16; cand /= 2) {
    if (SeedMatchesSerial(config, cand, seed)) break;
    smallest = cand;
  }
  return smallest;
}

TEST(HostScheduleStressTest, FiftyShuffledSchedulesMatchSerialBitExactly) {
  const struct {
    const char* label;
    memsim::MachineConfig config;
  } kinds[] = {
      {"pmm", memsim::OptanePmmConfig()},
      {"dram", memsim::DramOnlyConfig()},
  };
  const uint64_t n = 4096;
  for (const auto& kind : kinds) {
    for (uint64_t seed = 1; seed <= 50; ++seed) {
      if (SeedMatchesSerial(kind.config, n, seed)) continue;
      const uint64_t smallest = ShrinkFailure(kind.config, n, seed);
      ADD_FAILURE() << "host schedule perturbation diverged from serial "
                       "pricing: machine="
                    << kind.label << " seed=" << seed
                    << " smallest failing n=" << smallest
                    << " (replay: HostPool(4).SetShuffleSeed(" << seed
                    << ") over RunWorkload with that n)";
      break;  // one shrunk reproducer per machine kind is enough noise
    }
  }
}

// The shuffle knob itself must be inert: natural order (seed 0) through
// a pool prices identically to no pool at all.
TEST(HostScheduleStressTest, UnshuffledPoolMatchesSerial) {
  for (const uint32_t workers : {2u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const memsim::MachineConfig config = memsim::OptanePmmConfig();
    const memsim::MachineStats serial = RunWorkload(config, 2048, nullptr);
    memsim::HostPool pool(workers);
    EXPECT_TRUE(StatsEqual(serial, RunWorkload(config, 2048, &pool)));
  }
}

}  // namespace
}  // namespace pmg::runtime
