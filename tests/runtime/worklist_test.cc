#include "pmg/runtime/worklist.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "pmg/memsim/machine_configs.h"

namespace pmg::runtime {
namespace {

using memsim::Machine;
using memsim::MachineConfig;
using memsim::PagePolicy;

MachineConfig Dram() { return memsim::DramOnlyConfig(); }

TEST(DenseWorklistTest, ActivateAndAdvance) {
  Machine m(Dram());
  Runtime rt(&m, 4);
  PagePolicy pol;
  DenseWorklist wl(&m, 100, pol, "wl");
  EXPECT_TRUE(wl.Empty());
  wl.ActivateCur(0, 5);
  EXPECT_EQ(wl.ActiveCount(), 1u);
  EXPECT_TRUE(wl.IsActive(0, 5));
  wl.Activate(0, 7);
  wl.Activate(0, 7);  // duplicate: counted once
  wl.Advance(rt);
  EXPECT_EQ(wl.ActiveCount(), 1u);
  EXPECT_TRUE(wl.IsActive(0, 7));
  EXPECT_FALSE(wl.IsActive(0, 5));
}

TEST(DenseWorklistTest, ForEachActiveVisitsExactlyActives) {
  Machine m(Dram());
  Runtime rt(&m, 4);
  PagePolicy pol;
  DenseWorklist wl(&m, 256, pol, "wl");
  for (uint64_t v : {3u, 99u, 255u}) wl.ActivateCur(0, v);
  std::set<uint64_t> seen;
  wl.ForEachActive(rt, [&](ThreadId, uint64_t v) { seen.insert(v); });
  EXPECT_EQ(seen, (std::set<uint64_t>{3, 99, 255}));
}

TEST(DenseWorklistTest, AdvanceCostsFullSweep) {
  // The dense worklist's per-round O(|V|) traffic must be visible.
  Machine m(Dram());
  Runtime rt(&m, 4);
  PagePolicy pol;
  DenseWorklist wl(&m, 1 << 14, pol, "wl");
  m.CloseEpochIfOpen();
  const uint64_t before = m.stats().accesses;
  wl.Advance(rt);
  EXPECT_GE(m.stats().accesses - before, uint64_t{1} << 14);
}

TEST(SparseWorklistTest, PushPopLifo) {
  Machine m(Dram());
  SparseWorklist<uint64_t> wl(&m, 4, "wl");
  wl.Push(0, 10);
  wl.Push(0, 20);
  uint64_t x = 0;
  EXPECT_TRUE(wl.Pop(0, &x));
  EXPECT_EQ(x, 20u);
  EXPECT_TRUE(wl.Pop(0, &x));
  EXPECT_EQ(x, 10u);
  EXPECT_FALSE(wl.Pop(0, &x));
}

TEST(SparseWorklistTest, StealingDrainsOtherBags) {
  Machine m(Dram());
  SparseWorklist<uint64_t> wl(&m, 4, "wl");
  wl.Push(2, 77);
  uint64_t x = 0;
  EXPECT_TRUE(wl.Pop(0, &x));  // thread 0 steals from thread 2
  EXPECT_EQ(x, 77u);
  EXPECT_TRUE(wl.Empty());
}

TEST(SparseWorklistTest, TrafficProportionalToItems) {
  Machine m1(Dram());
  Machine m2(Dram());
  SparseWorklist<uint64_t> small(&m1, 2, "s");
  SparseWorklist<uint64_t> big(&m2, 2, "b");
  m1.CloseEpochIfOpen();
  m2.CloseEpochIfOpen();
  const uint64_t a1 = m1.stats().accesses;
  const uint64_t a2 = m2.stats().accesses;
  for (int i = 0; i < 10; ++i) small.Push(0, i);
  for (int i = 0; i < 1000; ++i) big.Push(0, i);
  const uint64_t small_traffic = m1.stats().accesses - a1;
  const uint64_t big_traffic = m2.stats().accesses - a2;
  EXPECT_GT(big_traffic, 50 * small_traffic);
}

TEST(DrainAsyncTest, ProcessesAllIncludingGenerated) {
  Machine m(Dram());
  Runtime rt(&m, 4);
  SparseWorklist<uint64_t> wl(&m, 4, "wl");
  for (uint64_t i = 0; i < 10; ++i) wl.Push(0, i);
  std::vector<int> hits(20, 0);
  DrainAsync(rt, wl, [&](ThreadId t, uint64_t v) {
    ++hits[v];
    if (v < 10) wl.Push(t, v + 10);  // generate follow-up work
  });
  for (int i = 0; i < 20; ++i) EXPECT_EQ(hits[i], 1) << i;
  EXPECT_TRUE(wl.Empty());
}

TEST(DrainAsyncTest, SingleEpoch) {
  Machine m(Dram());
  Runtime rt(&m, 2);
  SparseWorklist<uint32_t> wl(&m, 2, "wl");
  for (uint32_t i = 0; i < 100; ++i) wl.Push(0, i);
  m.CloseEpochIfOpen();
  const uint64_t epochs = m.stats().epochs;
  DrainAsync(rt, wl, [](ThreadId, uint32_t) {});
  EXPECT_EQ(m.stats().epochs, epochs + 1);
}

TEST(BucketWorklistTest, PopsInPriorityOrder) {
  Machine m(Dram());
  BucketWorklist<uint64_t> wl(&m, 2, "wl");
  wl.Push(0, 3, 30);
  wl.Push(0, 1, 10);
  wl.Push(0, 2, 20);
  uint32_t b = 0;
  uint64_t x = 0;
  EXPECT_TRUE(wl.PopMin(0, &b, &x));
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(x, 10u);
  EXPECT_TRUE(wl.PopMin(0, &b, &x));
  EXPECT_EQ(b, 2u);
  EXPECT_TRUE(wl.PopMin(0, &b, &x));
  EXPECT_EQ(b, 3u);
  EXPECT_FALSE(wl.PopMin(0, &b, &x));
}

TEST(BucketWorklistTest, ReinsertionIntoCurrentBucket) {
  // Delta-stepping reinserts relaxed vertices into the active bucket.
  Machine m(Dram());
  BucketWorklist<uint64_t> wl(&m, 2, "wl");
  wl.Push(0, 0, 1);
  uint32_t b = 0;
  uint64_t x = 0;
  ASSERT_TRUE(wl.PopMin(0, &b, &x));
  wl.Push(0, 0, 2);  // back into bucket 0 after it was drained
  ASSERT_TRUE(wl.PopMin(0, &b, &x));
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(x, 2u);
}

TEST(BucketWorklistTest, SizeTracksPushPop) {
  Machine m(Dram());
  BucketWorklist<uint32_t> wl(&m, 2, "wl");
  EXPECT_TRUE(wl.Empty());
  wl.Push(0, 5, 1);
  wl.Push(1, 5, 2);
  EXPECT_EQ(wl.size(), 2u);
  uint32_t b;
  uint32_t x;
  wl.PopMin(0, &b, &x);
  wl.PopMin(0, &b, &x);
  EXPECT_TRUE(wl.Empty());
}

}  // namespace
}  // namespace pmg::runtime
