#include "pmg/runtime/runtime.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "pmg/memsim/machine_configs.h"
#include "pmg/runtime/numa_array.h"

namespace pmg::runtime {
namespace {

using memsim::Machine;
using memsim::MachineConfig;
using memsim::PagePolicy;
using memsim::Placement;

MachineConfig SmallDram() {
  MachineConfig c = memsim::DramOnlyConfig();
  return c;
}

TEST(RuntimeTest, ParallelForVisitsEveryIndexOnce) {
  Machine m(SmallDram());
  Runtime rt(&m, 8);
  std::vector<int> seen(1000, 0);
  rt.ParallelFor(0, 1000, [&](ThreadId, uint64_t i) { ++seen[i]; });
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(RuntimeTest, ParallelForBlockedPartitionIsContiguous) {
  Machine m(SmallDram());
  Runtime rt(&m, 4);
  std::vector<ThreadId> owner(100);
  rt.ParallelFor(0, 100, [&](ThreadId t, uint64_t i) { owner[i] = t; });
  // Owners must be non-decreasing for a contiguous block partition.
  for (size_t i = 1; i < owner.size(); ++i) EXPECT_GE(owner[i], owner[i - 1]);
  EXPECT_EQ(owner.front(), 0u);
  EXPECT_EQ(owner.back(), 3u);
}

TEST(RuntimeTest, ParallelForDynamicRoundRobinsChunks) {
  Machine m(SmallDram());
  Runtime rt(&m, 2);
  std::vector<ThreadId> owner(64);
  rt.ParallelForDynamic(0, 64, 16, [&](ThreadId t, uint64_t i) {
    owner[i] = t;
  });
  EXPECT_EQ(owner[0], 0u);
  EXPECT_EQ(owner[16], 1u);
  EXPECT_EQ(owner[32], 0u);
  EXPECT_EQ(owner[48], 1u);
}

TEST(RuntimeTest, EachParallelForIsOneEpoch) {
  Machine m(SmallDram());
  Runtime rt(&m, 4);
  const uint64_t before = m.stats().epochs;
  rt.ParallelFor(0, 10, [](ThreadId, uint64_t) {});
  rt.ParallelFor(0, 10, [](ThreadId, uint64_t) {});
  EXPECT_EQ(m.stats().epochs, before + 2);
}

TEST(RuntimeTest, MoreThreadsShortenLatencyBoundWork) {
  // The same total work split over more virtual threads has a shorter
  // critical path (strong scaling, Figure 10's mechanism).
  Machine m1(SmallDram());
  Machine m2(SmallDram());
  PagePolicy pol;
  pol.placement = Placement::kInterleaved;
  NumaArray<uint64_t> a1(&m1, 1 << 17, pol, "a1");
  NumaArray<uint64_t> a2(&m2, 1 << 17, pol, "a2");
  Runtime rt1(&m1, 1);
  Runtime rt96(&m2, 96);
  // Pointer-chase-like strided reads (defeat line amortization).
  auto body1 = [&](ThreadId t, uint64_t i) {
    a1.Get(t, (i * 129) % a1.size());
  };
  auto body96 = [&](ThreadId t, uint64_t i) {
    a2.Get(t, (i * 129) % a2.size());
  };
  const SimNs t1 = rt1.Timed([&] { rt1.ParallelFor(0, 1 << 17, body1); });
  const SimNs t96 = rt96.Timed([&] { rt96.ParallelFor(0, 1 << 17, body96); });
  EXPECT_GT(t1, 10 * t96);
}

TEST(RuntimeTest, TimedClosesStrayEpochs) {
  Machine m(SmallDram());
  Runtime rt(&m, 2);
  PagePolicy pol;
  NumaArray<uint32_t> a(&m, 64, pol, "a");
  const SimNs dt = rt.Timed([&] {
    a.Set(0, 5, 7);  // stray access auto-opens an epoch
  });
  EXPECT_GT(dt, 0u);
  EXPECT_FALSE(m.in_epoch());
}

TEST(NumaArrayTest, ReadBackWrites) {
  Machine m(SmallDram());
  PagePolicy pol;
  NumaArray<uint32_t> a(&m, 100, pol, "a");
  a.Set(0, 42, 1234);
  EXPECT_EQ(a.Get(0, 42), 1234u);
  EXPECT_EQ(a[42], 1234u);
}

TEST(NumaArrayTest, CasMinOnlyWritesWhenSmaller) {
  Machine m(SmallDram());
  PagePolicy pol;
  NumaArray<uint32_t> a(&m, 4, pol, "a");
  a.Set(0, 0, 10);
  m.CloseEpochIfOpen();
  const uint64_t writes_before = m.stats().writes;
  EXPECT_FALSE(a.CasMin(0, 0, 20));
  EXPECT_EQ(m.stats().writes, writes_before);
  EXPECT_TRUE(a.CasMin(0, 0, 5));
  EXPECT_EQ(m.stats().writes, writes_before + 1);
  EXPECT_EQ(a[0], 5u);
}

TEST(NumaArrayTest, FetchAddAccumulates) {
  Machine m(SmallDram());
  PagePolicy pol;
  NumaArray<uint64_t> a(&m, 2, pol, "a");
  a.Set(0, 1, 100);
  EXPECT_EQ(a.FetchAdd(0, 1, 5), 100u);
  EXPECT_EQ(a.FetchAdd(0, 1, 5), 105u);
  EXPECT_EQ(a[1], 110u);
}

TEST(NumaArrayTest, UpdateChargesReadAndWrite) {
  Machine m(SmallDram());
  PagePolicy pol;
  NumaArray<uint32_t> a(&m, 4, pol, "a");
  a.Set(0, 2, 1);
  m.CloseEpochIfOpen();
  const uint64_t r0 = m.stats().reads;
  const uint64_t w0 = m.stats().writes;
  a.Update(0, 2, [](uint32_t& v) { v *= 3; });
  EXPECT_EQ(m.stats().reads, r0 + 1);
  EXPECT_EQ(m.stats().writes, w0 + 1);
  EXPECT_EQ(a[2], 3u);
}

TEST(NumaArrayTest, MoveTransfersOwnership) {
  Machine m(SmallDram());
  PagePolicy pol;
  NumaArray<uint32_t> a(&m, 16, pol, "a");
  a.Set(0, 3, 9);
  NumaArray<uint32_t> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b[3], 9u);
}

TEST(RuntimeTest, EmptyParallelForStillCostsAnEpoch) {
  Machine m(SmallDram());
  Runtime rt(&m, 4);
  const uint64_t before = m.stats().epochs;
  int visits = 0;
  // begin == end is a legal empty round; it must still open and close a
  // machine epoch (bulk-synchronous loops count rounds by epochs).
  // pmg-lint: allow(pmg-atomic-shared-write) empty range, body never runs
  rt.ParallelFor(10, 10, [&](ThreadId, uint64_t) { ++visits; });
  // pmg-lint: allow(pmg-atomic-shared-write) empty range, body never runs
  rt.ParallelForDynamic(10, 10, 4, [&](ThreadId, uint64_t) { ++visits; });
  EXPECT_EQ(visits, 0);
  EXPECT_EQ(m.stats().epochs, before + 2);
}

using RuntimeDeathTest = ::testing::Test;

TEST(RuntimeDeathTest, InvertedParallelForRangeAborts) {
  Machine m(SmallDram());
  Runtime rt(&m, 4);
  // end < begin would underflow n = end - begin into ~2^64 iterations.
  EXPECT_DEATH(rt.ParallelFor(10, 9, [&](ThreadId, uint64_t) {}),
               "inverted");
}

TEST(RuntimeDeathTest, InvertedParallelForDynamicRangeAborts) {
  Machine m(SmallDram());
  Runtime rt(&m, 4);
  EXPECT_DEATH(rt.ParallelForDynamic(10, 9, 4, [&](ThreadId, uint64_t) {}),
               "inverted");
}

TEST(RuntimeDeathTest, ZeroChunkParallelForDynamicAborts) {
  Machine m(SmallDram());
  Runtime rt(&m, 4);
  // chunk == 0 would spin on `c += chunk` forever; the guard must name
  // the mistake instead of printing a bare condition.
  EXPECT_DEATH(rt.ParallelForDynamic(0, 10, 0, [&](ThreadId, uint64_t) {}),
               "chunk must be positive");
}

TEST(RuntimeDeathTest, SmallestLegalChunkDoesNotFire) {
  Machine m(SmallDram());
  Runtime rt(&m, 4);
  // chunk == 1 sits right at the guard's boundary and must pass through.
  uint64_t visits = 0;
  // pmg-lint: allow(pmg-atomic-shared-write) chunk=1 round-robin, one
  // iteration per turn
  rt.ParallelForDynamic(0, 8, 1, [&](ThreadId, uint64_t) { ++visits; });
  EXPECT_EQ(visits, 8u);
}

TEST(NumaArrayTest, DistinctPoliciesAffectPlacement) {
  Machine m(SmallDram());
  PagePolicy local;
  local.placement = Placement::kLocal;
  local.preferred_node = 1;
  NumaArray<uint8_t> a(&m, 4 * memsim::kSmallPageBytes, local, "a");
  Runtime rt(&m, 1);
  rt.ParallelFor(0, a.size(), [&](ThreadId t, uint64_t i) {
    a.Set(t, i, 1);
  });
  EXPECT_GT(m.NodeBytesUsed(1), 0u);
  EXPECT_EQ(m.NodeBytesUsed(0), 0u);
}

}  // namespace
}  // namespace pmg::runtime
