// Ablation: page-walk cost sensitivity (the mechanism behind Section
// 4.3's huge-page findings). Sweeps the per-level walk cost charged when
// translation structures sit behind PMM, and reports the resulting 4KB
// vs 2MB gap for pagerank on clueweb12 (whose full-graph scans keep
// translation on the critical path) — showing the huge-page advantage
// grows with translation latency, which is why it is larger on Optane
// PMM than on DRAM.

#include <cstdio>

#include "pmg/frameworks/framework.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"
#include "pmg/trace/bench_report.h"

int main() {
  using namespace pmg;
  using frameworks::App;
  using frameworks::FrameworkKind;
  using memsim::PageSizeClass;

  std::printf(
      "Ablation: page-walk step cost vs huge-page benefit\n"
      "(pagerank, Galois profile, Optane PMM, clueweb12, 96 threads)\n\n");
  const scenarios::Scenario s = scenarios::MakeScenario("clueweb12");
  const frameworks::AppInputs inputs =
      frameworks::AppInputs::Prepare(s.topo, s.represented_vertices);
  scenarios::Table table({"walk step (ns)", "4KB time (s)", "2MB time (s)",
                          "huge-page speedup", "4KB TLB miss rate"});
  trace::BenchJson json("ablation_pagewalk");
  for (const SimNs step : {10u, 20u, 38u, 60u, 100u}) {
    SimNs t4k = 0;
    SimNs t2m = 0;
    double miss_rate = 0;
    for (PageSizeClass ps : {PageSizeClass::k4K, PageSizeClass::k2M}) {
      frameworks::RunConfig cfg;
      cfg.machine = memsim::OptanePmmConfig();
      cfg.machine.timings.walk_step_pmm_ns = step;
      cfg.threads = 96;
      cfg.pr_max_rounds = 10;
      cfg.page_size = ps;
      const frameworks::AppRunResult r =
          RunApp(FrameworkKind::kGalois, App::kPr, inputs, cfg);
      if (ps == PageSizeClass::k4K) {
        t4k = r.time_ns;
        miss_rate = r.stats.TlbMissRate();
      } else {
        t2m = r.time_ns;
      }
    }
    table.AddRow({std::to_string(step), scenarios::FormatSeconds(t4k),
                  scenarios::FormatSeconds(t2m),
                  scenarios::FormatRatio(static_cast<double>(t4k) /
                                         static_cast<double>(t2m)),
                  scenarios::FormatDouble(100.0 * miss_rate, 2) + "%"});
    json.BeginRow();
    json.writer().Key("walk_step").String(std::to_string(step));
    json.writer().Key("time_4k_ns").UInt(t4k);
    json.writer().Key("time_2m_ns").UInt(t2m);
    json.writer().Key("huge_page_speedup").Fixed(
        static_cast<double>(t4k) / static_cast<double>(t2m), 3);
    json.writer().Key("tlb_miss_pct_4k").Fixed(100.0 * miss_rate, 2);
    json.EndRow();
  }
  table.Print();
  const std::string path = json.Write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
