// Reproduces Figure 4: the NUMA-allocation microbenchmark of Section 4.1.
// (a) Time to write an allocation once, NUMA-local policy, 96 threads,
//     for growing sizes, on DDR4 DRAM vs Optane PMM. The paper's 80 /
//     160 / 320 GB points map to 5 / 10 / 20 MB at 1/16384 scale (socket
//     DRAM 192GB -> 12MB).
// (b) NUMA interleaved vs blocked (first touch) for the largest size at
//     24 and 48 threads. Expected shapes: DRAM flattens when the
//     allocation spills to the second socket; PMM-local degrades
//     super-linearly past near-memory capacity; blocked at t<=24
//     collapses on PMM because everything lands on one socket.

#include <cstdio>
#include <vector>

#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"
#include "pmg/scenarios/report.h"

namespace {

using pmg::AccessType;
using pmg::SimNs;
using pmg::ThreadId;
using pmg::memsim::Machine;
using pmg::memsim::MachineConfig;
using pmg::memsim::PagePolicy;
using pmg::memsim::Placement;

/// Writes `bytes` once with `threads` threads under `placement`; returns
/// simulated time. Each thread writes a contiguous block sequentially
/// (the paper's microbenchmark).
SimNs WriteOnce(const MachineConfig& cfg, uint64_t bytes, uint32_t threads,
                Placement placement) {
  Machine m(cfg);
  PagePolicy policy;
  policy.placement = placement;
  policy.preferred_node = 0;
  policy.page_size = pmg::memsim::PageSizeClass::k2M;
  const pmg::VirtAddr base = m.BaseOf(m.Alloc(bytes, policy, "buf"));
  m.BeginEpoch(threads);
  const uint64_t per = bytes / threads;
  for (ThreadId t = 0; t < threads; ++t) {
    m.AccessRange(t, base + uint64_t{t} * per, per, AccessType::kWrite);
  }
  return m.EndEpoch().total_ns;
}

}  // namespace

int main() {
  using pmg::scenarios::FormatMillis;
  const MachineConfig dram = pmg::memsim::DramOnlyConfig();
  const MachineConfig pmm = pmg::memsim::OptanePmmConfig();
  const uint64_t mb = 1024 * 1024;

  std::printf(
      "Figure 4(a): NUMA-local write time vs allocation size, 96 threads\n"
      "(paper: DRAM flattens at 320GB via 2nd-socket spill; PMM degrades\n"
      " 5.6x from 160GB to 320GB via near-memory conflict misses)\n\n");
  pmg::scenarios::Table a({"Allocation", "DDR4 DRAM (ms)", "Optane PMM (ms)",
                           "PMM/DRAM"});
  std::vector<std::pair<const char*, uint64_t>> sizes = {
      {"5MB  (~80GB)", 5 * mb},
      {"10MB (~160GB)", 10 * mb},
      {"20MB (~320GB)", 20 * mb},
  };
  SimNs prev_pmm = 0;
  for (const auto& [label, bytes] : sizes) {
    const SimNs td = WriteOnce(dram, bytes, 96, Placement::kLocal);
    const SimNs tp = WriteOnce(pmm, bytes, 96, Placement::kLocal);
    a.AddRow({label, FormatMillis(td), FormatMillis(tp),
              pmg::scenarios::FormatRatio(static_cast<double>(tp) /
                                          static_cast<double>(td))});
    if (prev_pmm != 0) {
      std::printf("  PMM step-up %s -> %s: %.2fx\n", label, label,
                  static_cast<double>(tp) / static_cast<double>(prev_pmm));
    }
    prev_pmm = tp;
  }
  a.Print();

  std::printf(
      "\nFigure 4(b): interleaved vs blocked (first touch), 20MB "
      "allocation\n(paper: blocked at 24 threads lands everything on one "
      "socket -> PMM\n collapses; interleaved uses both near-memories)\n\n");
  pmg::scenarios::Table b({"Machine", "Threads", "Blocked (ms)",
                           "Interleaved (ms)", "Blocked/Interleaved"});
  for (const MachineConfig* cfg : {&dram, &pmm}) {
    for (uint32_t threads : {24u, 48u}) {
      const SimNs tb = WriteOnce(*cfg, 20 * mb, threads, Placement::kBlocked);
      const SimNs ti =
          WriteOnce(*cfg, 20 * mb, threads, Placement::kInterleaved);
      b.AddRow({cfg->name, std::to_string(threads), FormatMillis(tb),
                FormatMillis(ti),
                pmg::scenarios::FormatRatio(static_cast<double>(tb) /
                                            static_cast<double>(ti))});
    }
  }
  b.Print();
  return 0;
}
