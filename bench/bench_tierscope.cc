// Tierscope overhead benchmark: a migration-heavy Galois pagerank run
// priced bare, and again with a pmg::tierscope::TierScope attached as
// the machine's tier hook.
//
// The contract this enforces (loudly — a violation is exit 1, not a
// perf-gate delta): the tier audit is host-side bookkeeping of
// already-priced decisions, so
//
//   - detached auditing costs zero: a run with no hook produces the same
//     bytes it did before the TierHook seam existed, and
//   - attached auditing changes no simulated number: the machine
//     counters and the trace report are byte-identical with and without
//     the scope, even though attaching it forces inline (non-host-
//     parallel) pricing.
//
// Emits BENCH_tierscope.json for the CI perf-regression gate: the *_ns
// columns are simulated time and therefore exactly reproducible; the
// scoped row must stay bit-equal to the detached row forever.

#include <cstdio>
#include <string>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/tierscope/tierscope.h"
#include "pmg/trace/bench_report.h"
#include "pmg/trace/json.h"
#include "pmg/trace/trace_session.h"

namespace {

using pmg::MiB;
using pmg::frameworks::App;
using pmg::frameworks::AppInputs;
using pmg::frameworks::AppRunResult;
using pmg::frameworks::FrameworkKind;
using pmg::frameworks::RunApp;
using pmg::frameworks::RunConfig;

/// The acceptance machine of tests/serve and bench_serve_trace: two
/// sockets, small enough that interleaved pagerank keeps the migration
/// daemon busy.
pmg::memsim::MachineConfig TinyConfig() {
  pmg::memsim::MachineConfig c;
  c.kind = pmg::memsim::MachineKind::kDramMain;
  c.name = "tiny";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(8);
  c.topology.pmm_bytes_per_socket = 0;
  c.cpu_cache_lines = 64;
  return c;
}

/// One pr run; fills `*out` and returns the trace report's JSON.
std::string RunOnce(const pmg::graph::CsrTopology& topo,
                    pmg::tierscope::TierScope* scope, AppRunResult* out) {
  RunConfig cfg;
  cfg.machine = TinyConfig();
  cfg.machine.migration.enabled = true;
  // The tiny run simulates well under AutoNUMA's default scan period;
  // tighten it so every epoch can scan and the daemon actually decides.
  cfg.machine.migration.scan_interval_ns = 20000;
  cfg.threads = 4;
  cfg.placement = pmg::memsim::Placement::kInterleaved;
  cfg.pr_max_rounds = 10;
  pmg::trace::TraceSession session;
  cfg.trace = &session;
  cfg.tierscope = scope;
  const AppInputs inputs = AppInputs::Prepare(topo, 0);
  *out = RunApp(FrameworkKind::kGalois, App::kPr, inputs, cfg);
  pmg::trace::JsonWriter w;
  session.report().AppendJson(&w);
  return w.str();
}

}  // namespace

int main() {
  std::printf(
      "Tierscope overhead on interleaved pagerank with the migration "
      "daemon on\n(attaching the scope must change no simulated number; "
      "a byte\n difference is a bug, not a regression)\n\n");

  pmg::graph::CsrTopology topo = pmg::graph::Rmat(8, 8, 7);
  pmg::graph::AssignRandomWeights(&topo, /*max_weight=*/9, /*seed=*/13);

  AppRunResult bare;
  const std::string bare_trace = RunOnce(topo, nullptr, &bare);
  const std::string bare_stats = bare.stats.ToString();

  pmg::tierscope::TierScope scope;
  AppRunResult scoped;
  const std::string scoped_trace = RunOnce(topo, &scope, &scoped);

  if (scoped.time_ns != bare.time_ns ||
      scoped.stats.ToString() != bare_stats || scoped_trace != bare_trace) {
    std::fprintf(stderr,
                 "FAIL: attaching the tier scope changed the simulated "
                 "time, counters, or trace report\n");
    return 1;
  }
  const pmg::tierscope::TierReport& tier = scope.report();
  if (!tier.Conserves()) {
    std::fprintf(stderr,
                 "FAIL: tier decision audit does not reconcile with the "
                 "machine counters\n");
    return 1;
  }
  if (tier.scans == 0 || tier.migrated_pages == 0) {
    std::fprintf(stderr,
                 "FAIL: the scenario exercised no migration decisions "
                 "(scans=%llu migrated=%llu)\n",
                 static_cast<unsigned long long>(tier.scans),
                 static_cast<unsigned long long>(tier.migrated_pages));
    return 1;
  }

  std::printf(
      "detached == scoped: %.3f ms simulated, byte-identical counters + "
      "trace report\nscoped extras: %llu scan(s), %llu candidate(s) -> "
      "%llu migrated, conservation OK\n",
      static_cast<double>(bare.time_ns) / 1e6,
      static_cast<unsigned long long>(tier.scans),
      static_cast<unsigned long long>(tier.candidates),
      static_cast<unsigned long long>(tier.migrated_pages));

  pmg::trace::BenchJson json("tierscope");
  json.BeginRow();
  json.writer().Key("config").String("detached");
  json.writer().Key("time_ns").UInt(bare.time_ns);
  json.writer().Key("total_ns").UInt(bare.stats.total_ns);
  json.writer().Key("kernel_ns").UInt(bare.stats.kernel_ns);
  json.EndRow();
  json.BeginRow();
  json.writer().Key("config").String("scoped");
  json.writer().Key("time_ns").UInt(scoped.time_ns);
  json.writer().Key("total_ns").UInt(scoped.stats.total_ns);
  json.writer().Key("kernel_ns").UInt(scoped.stats.kernel_ns);
  json.writer().Key("daemon_scan_ns").UInt(tier.daemon_scan_ns);
  json.writer().Key("daemon_move_ns").UInt(tier.daemon_move_ns);
  json.writer().Key("daemon_remap_ns").UInt(tier.daemon_remap_ns);
  json.writer().Key("daemon_shootdown_ns").UInt(tier.daemon_shootdown_ns);
  json.writer().Key("migrated_pages").UInt(tier.migrated_pages);
  json.writer().Key("candidates").UInt(tier.candidates);
  json.EndRow();
  const std::string path = json.Write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
