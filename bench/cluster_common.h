#ifndef PMG_BENCH_CLUSTER_COMMON_H_
#define PMG_BENCH_CLUSTER_COMMON_H_

// Shared driver for Table 4 and Figure 11: runs one app either on the
// simulated Stampede2 cluster (D-Galois-like BSP vertex programs) or on
// the Optane PMM machine (Galois profile), against one scenario.

#include <memory>
#include <string>

#include "pmg/distsim/dist_engine.h"
#include "pmg/frameworks/framework.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/scenarios.h"

namespace pmg::benchcluster {

/// Hosts needed to hold each graph in cluster memory, following the
/// paper (5 for clueweb12 and uk14, 20 for wdc12; iso_m100 by the same
/// 192GB-per-host rule).
inline uint32_t MinHosts(const std::string& name) {
  if (name == "wdc12") return 20;
  if (name == "iso_m100") return 6;
  return 5;
}

/// Per-app graph variants prepared once per scenario.
struct ClusterInputs {
  graph::CsrTopology base;
  graph::CsrTopology weighted;
  graph::CsrTopology sym;
  VertexId source = 0;

  static ClusterInputs Prepare(const scenarios::Scenario& s) {
    ClusterInputs in;
    in.base = s.topo;
    in.weighted = s.topo;
    graph::AssignRandomWeights(&in.weighted, 100, 12345);
    in.sym = graph::Symmetrize(s.topo);
    in.source = graph::MaxOutDegreeVertex(s.topo);
    return in;
  }
};

/// Cached engines: one DistEngine per topology variant per configuration.
struct ClusterEngines {
  std::unique_ptr<distsim::DistEngine> base;
  std::unique_ptr<distsim::DistEngine> weighted;
  std::unique_ptr<distsim::DistEngine> sym;

  static ClusterEngines Build(const ClusterInputs& in,
                              const distsim::DistConfig& cfg) {
    ClusterEngines e;
    e.base = std::make_unique<distsim::DistEngine>(in.base, cfg);
    e.weighted = std::make_unique<distsim::DistEngine>(in.weighted, cfg);
    e.sym = std::make_unique<distsim::DistEngine>(in.sym, cfg);
    return e;
  }
};

inline distsim::DistRunResult RunCluster(ClusterEngines& engines,
                                         frameworks::App app,
                                         const ClusterInputs& in,
                                         uint32_t pr_rounds) {
  using frameworks::App;
  switch (app) {
    case App::kBc:
      return engines.base->Bc(in.source);
    case App::kBfs:
      return engines.base->Bfs(in.source);
    case App::kCc:
      return engines.sym->Cc();
    case App::kKcore:
      return engines.sym->Kcore(100);
    case App::kPr:
      return engines.base->Pr(pr_rounds, 1e-6);
    case App::kSssp:
      return engines.weighted->Sssp(in.source);
    default:  // kTc is not part of the cluster-scaling benchmark
      return {};
  }
}

}  // namespace pmg::benchcluster

#endif  // PMG_BENCH_CLUSTER_COMMON_H_
