// Reproduces Table 3: the input graphs and their key properties. Prints
// the mini stand-in's measured structure next to the paper-scale figures
// it represents, so the structural correspondences (degree, diameter,
// which machine tier the graph fits in) are auditable.

#include <cstdio>

#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"

int main() {
  using pmg::scenarios::FormatDouble;
  const pmg::memsim::MachineConfig pmm = pmg::memsim::OptanePmmConfig();
  const double dram_mb = static_cast<double>(pmm.topology.sockets *
                                             pmm.topology.dram_bytes_per_socket) /
                         1e6;
  std::printf(
      "Table 3: Inputs and key properties (mini stand-ins; capacity scale "
      "1/%llu, total near-memory %.1fMB)\n\n",
      static_cast<unsigned long long>(pmg::memsim::kDefaultCapacityScale),
      dram_mb);
  pmg::scenarios::Table table(
      {"graph", "|V|", "|E|", "|E|/|V|", "maxDout", "maxDin", "est.diam",
       "size(MB)", "paper diam", "paper size(GB)", "fits DRAM"});
  for (const std::string& name : pmg::scenarios::AllScenarioNames()) {
    const pmg::scenarios::Scenario s = pmg::scenarios::MakeScenario(name);
    const pmg::graph::GraphProperties p =
        pmg::graph::ComputeProperties(s.topo);
    table.AddRow({name, std::to_string(p.num_vertices),
                  std::to_string(p.num_edges), FormatDouble(p.avg_degree, 1),
                  std::to_string(p.max_out_degree),
                  std::to_string(p.max_in_degree),
                  std::to_string(p.estimated_diameter),
                  FormatDouble(p.csr_bytes / 1e6, 1),
                  std::to_string(s.paper_diameter),
                  FormatDouble(s.paper_size_gb, 0),
                  p.csr_bytes < dram_mb * 1e6 ? "yes" : "no"});
  }
  table.Print();
  return 0;
}
