// Reproduces Figure 5: bfs (Galois) with small vs huge pages, NUMA
// migration ON vs OFF, on the Optane PMM machine (all four graphs) and
// the DRAM machine (kron30, clueweb12). The annotation on each pair is
// the % improvement from turning migration off — positive almost
// everywhere, larger for 4KB pages and larger on PMM.

#include <cstdio>
#include <vector>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"
#include "pmg/tierscope/tierscope.h"
#include "pmg/trace/bench_report.h"

namespace {

using pmg::SimNs;
using pmg::frameworks::App;
using pmg::frameworks::AppInputs;
using pmg::frameworks::FrameworkKind;
using pmg::frameworks::RunApp;
using pmg::frameworks::RunConfig;
using pmg::memsim::MachineConfig;
using pmg::memsim::PageSizeClass;

struct Fig5Cell {
  SimNs time_ns = 0;
  /// Decision audit of the migration-on run (empty when migration off).
  pmg::tierscope::TierReport tier;
};

Fig5Cell AppTime(App app, const AppInputs& inputs,
                 const MachineConfig& machine, PageSizeClass page_size,
                 bool migration) {
  RunConfig cfg;
  cfg.machine = machine;
  cfg.machine.migration.enabled = migration;
  cfg.threads = 96;
  cfg.page_size = page_size;
  cfg.pr_max_rounds = 10;
  // The tier audit (attached only when the daemon runs) exports the
  // daemon's scan/move/remap/shootdown cost split into the perf gate, so
  // daemon cost drift fails the gate even when total time stays put.
  pmg::tierscope::TierScope scope;
  if (migration) cfg.tierscope = &scope;
  Fig5Cell cell;
  cell.time_ns = RunApp(FrameworkKind::kGalois, app, inputs, cfg).time_ns;
  if (migration) cell.tier = scope.report();
  return cell;
}

void RunMachine(const char* title, const MachineConfig& machine,
                const std::vector<std::string>& graphs,
                pmg::trace::BenchJson* json) {
  std::printf("%s\n\n", title);
  pmg::scenarios::Table t({"graph", "app", "pages", "migration ON (s)",
                           "migration OFF (s)", "OFF improves by"});
  for (const std::string& name : graphs) {
    const pmg::scenarios::Scenario s = pmg::scenarios::MakeScenario(name);
    const AppInputs inputs =
        AppInputs::Prepare(s.topo, s.represented_vertices);
    for (App app : {App::kBfs, App::kPr}) {
      // Pull-pr materializes both edge directions; skip cells that do not
      // fit the machine (pr on the big crawls only runs in memory mode,
      // as at paper scale).
      const uint64_t footprint =
          app == App::kPr
              ? 2 * pmg::graph::CsrBytes(s.topo) + s.topo.num_vertices * 24
              : pmg::graph::CsrBytes(s.topo) + s.topo.num_vertices * 16;
      const uint64_t capacity =
          machine.MainBytesPerSocket() * machine.topology.sockets;
      if (footprint * 10 > capacity * 9) {
        t.AddRow({name, pmg::frameworks::AppName(app), "-", "-", "-", "-"});
        continue;
      }
      for (PageSizeClass ps : {PageSizeClass::k4K, PageSizeClass::k2M}) {
        const Fig5Cell on = AppTime(app, inputs, machine, ps, true);
        const Fig5Cell off = AppTime(app, inputs, machine, ps, false);
        const double pct = 100.0 *
                           (static_cast<double>(on.time_ns) - off.time_ns) /
                           static_cast<double>(on.time_ns);
        t.AddRow({name, pmg::frameworks::AppName(app),
                  ps == PageSizeClass::k4K ? "4KB" : "2MB",
                  pmg::scenarios::FormatSeconds(on.time_ns),
                  pmg::scenarios::FormatSeconds(off.time_ns),
                  pmg::scenarios::FormatDouble(pct, 1) + "%"});
        json->BeginRow();
        json->writer().Key("machine").String(title);
        json->writer().Key("graph").String(name);
        json->writer().Key("app").String(pmg::frameworks::AppName(app));
        json->writer().Key("pages").String(
            ps == PageSizeClass::k4K ? "4KB" : "2MB");
        json->writer().Key("migration_on_ns").UInt(on.time_ns);
        json->writer().Key("migration_off_ns").UInt(off.time_ns);
        json->writer().Key("off_improvement_pct").Fixed(pct, 2);
        json->writer().Key("daemon_scan_ns").UInt(on.tier.daemon_scan_ns);
        json->writer().Key("daemon_move_ns").UInt(on.tier.daemon_move_ns);
        json->writer().Key("daemon_remap_ns").UInt(on.tier.daemon_remap_ns);
        json->writer().Key("daemon_shootdown_ns").UInt(
            on.tier.daemon_shootdown_ns);
        json->writer().Key("migrated_pages").UInt(on.tier.migrated_pages);
        json->EndRow();
      }
    }
  }
  t.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Figure 5: bfs in Galois, page size x NUMA migration\n"
      "(paper: turning migration OFF improves 4KB runs by 29-53%% on PMM\n"
      " and helps less with 2MB pages; effects are larger on PMM than "
      "DRAM)\n\n");
  pmg::trace::BenchJson json("fig5");
  RunMachine("(a) Optane PMM", pmg::memsim::OptanePmmConfig(),
             {"kron30", "clueweb12", "uk14", "wdc12"}, &json);
  RunMachine("(b) DDR4 DRAM", pmg::memsim::DramOnlyConfig(),
             {"kron30", "clueweb12"}, &json);
  const std::string path = json.Write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
