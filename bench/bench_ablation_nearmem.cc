// Ablation (Section 6.5 / future work): sensitivity of memory-mode
// performance to near-memory capacity. The paper identifies improving the
// near-memory hit rate as the main avenue for future work; this sweep
// quantifies how bfs time and the near-memory hit rate respond as the
// per-socket DRAM cache shrinks or grows around the default (12MB at
// 1/16384 scale), for a graph that nearly fills it (clueweb12) and one
// that fits easily (kron30).

#include <cstdio>

#include "pmg/frameworks/framework.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"
#include "pmg/trace/bench_report.h"

int main() {
  using namespace pmg;
  using frameworks::App;
  using frameworks::FrameworkKind;

  std::printf(
      "Ablation: near-memory (per-socket DRAM cache) capacity sweep,\n"
      "bfs in the Galois profile on Optane PMM, 96 threads\n\n");
  trace::BenchJson json("ablation_nearmem");
  scenarios::Table table({"graph", "near-mem/socket", "time (s)",
                          "near-mem hit rate", "pmm read MB"});
  for (const char* name : {"kron30", "clueweb12"}) {
    const scenarios::Scenario s = scenarios::MakeScenario(name);
    const frameworks::AppInputs inputs =
        frameworks::AppInputs::Prepare(s.topo, s.represented_vertices);
    for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      frameworks::RunConfig cfg;
      cfg.machine = memsim::OptanePmmConfig();
      cfg.machine.topology.dram_bytes_per_socket = static_cast<uint64_t>(
          static_cast<double>(cfg.machine.topology.dram_bytes_per_socket) *
          factor);
      cfg.threads = 96;
      const frameworks::AppRunResult r =
          RunApp(FrameworkKind::kGalois, App::kBfs, inputs, cfg);
      char label[32];
      std::snprintf(label, sizeof(label), "%.1fMB (x%.2f)",
                    cfg.machine.topology.dram_bytes_per_socket / 1e6,
                    factor);
      table.AddRow({name, label, scenarios::FormatSeconds(r.time_ns),
                    scenarios::FormatDouble(100.0 * r.stats.NearMemHitRate(),
                                            2) +
                        "%",
                    scenarios::FormatDouble(r.stats.pmm_read_bytes / 1e6,
                                            1)});
      char factor_label[16];
      std::snprintf(factor_label, sizeof(factor_label), "x%.2f", factor);
      json.BeginRow();
      json.writer().Key("sweep").String("capacity");
      json.writer().Key("graph").String(name);
      json.writer().Key("near_mem").String(factor_label);
      json.writer().Key("time_ns").UInt(r.time_ns);
      json.writer().Key("near_mem_hit_pct").Fixed(
          100.0 * r.stats.NearMemHitRate(), 2);
      json.writer().Key("pmm_read_mb").Fixed(r.stats.pmm_read_bytes / 1e6,
                                             1);
      json.EndRow();
    }
  }
  table.Print();

  std::printf(
      "\nAblation: near-memory associativity (Section 6.5 future work:\n"
      "improving the near-memory hit rate), bfs on clueweb12:\n\n");
  scenarios::Table assoc({"ways", "time (s)", "near-mem hit rate",
                          "pmm read MB"});
  {
    const scenarios::Scenario s = scenarios::MakeScenario("clueweb12");
    const frameworks::AppInputs inputs =
        frameworks::AppInputs::Prepare(s.topo, s.represented_vertices);
    for (const uint32_t ways : {1u, 2u, 4u, 8u}) {
      frameworks::RunConfig cfg;
      cfg.machine = memsim::OptanePmmConfig();
      cfg.machine.near_mem_ways = ways;
      cfg.threads = 96;
      const frameworks::AppRunResult r =
          RunApp(FrameworkKind::kGalois, App::kBfs, inputs, cfg);
      assoc.AddRow({std::to_string(ways),
                    scenarios::FormatSeconds(r.time_ns),
                    scenarios::FormatDouble(100.0 * r.stats.NearMemHitRate(),
                                            2) +
                        "%",
                    scenarios::FormatDouble(r.stats.pmm_read_bytes / 1e6,
                                            1)});
      json.BeginRow();
      json.writer().Key("sweep").String("associativity");
      json.writer().Key("graph").String("clueweb12");
      json.writer().Key("ways").String(std::to_string(ways));
      json.writer().Key("time_ns").UInt(r.time_ns);
      json.writer().Key("near_mem_hit_pct").Fixed(
          100.0 * r.stats.NearMemHitRate(), 2);
      json.writer().Key("pmm_read_mb").Fixed(r.stats.pmm_read_bytes / 1e6,
                                             1);
      json.EndRow();
    }
  }
  assoc.Print();
  const std::string path = json.Write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
