#ifndef PMG_BENCH_VARIANTS_COMMON_H_
#define PMG_BENCH_VARIANTS_COMMON_H_

// Shared driver for Figures 7 and 8: runs the paper's algorithm-variant
// comparison (bfs: Dense-WL / Direction-Opt / Sparse-WL; cc: Dense-WL /
// LabelProp-SC; sssp: Dense-WL / Delta-Step) for one machine
// configuration over rmat32, clueweb12 and wdc12.

#include <cstdio>
#include <memory>
#include <string>

#include "pmg/analytics/bfs.h"
#include "pmg/analytics/cc.h"
#include "pmg/analytics/sssp.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine.h"
#include "pmg/runtime/runtime.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"
#include "pmg/trace/bench_report.h"

namespace pmg::benchvariants {

inline analytics::AlgoOptions Options() {
  analytics::AlgoOptions opt;
  opt.label_policy.placement = memsim::Placement::kInterleaved;
  opt.label_policy.page_size = memsim::PageSizeClass::k2M;
  return opt;
}

struct Cell {
  std::string variant;
  SimNs time_ns = 0;
};

/// Runs all variants of one problem on one graph with a fresh machine per
/// run (cold caches, as in the paper's independent executions). When
/// `json` is given, every cell also lands as a machine-readable row.
inline void RunVariantStudy(const memsim::MachineConfig& machine_config,
                            uint32_t threads,
                            trace::BenchJson* json = nullptr) {
  using graph::CsrGraph;
  using graph::GraphLayout;
  for (const char* problem : {"bfs", "cc", "sssp"}) {
    scenarios::Table table({"graph", "variant", "time (s)", "vs best"});
    for (const char* name : {"rmat32", "clueweb12", "wdc12"}) {
      const scenarios::Scenario s = scenarios::MakeScenario(name);
      std::vector<Cell> cells;
      auto run = [&](const std::string& variant, auto&& fn,
                     const graph::CsrTopology& topo, bool in_edges,
                     bool weights) {
        memsim::Machine m(machine_config);
        runtime::Runtime rt(&m, threads);
        GraphLayout layout;
        layout.policy = Options().label_policy;
        layout.load_in_edges = in_edges;
        layout.with_weights = weights;
        CsrGraph g(&m, topo, layout, "g");
        g.Prefault(threads);
        cells.push_back({variant, fn(rt, g)});
      };
      const VertexId src = graph::MaxOutDegreeVertex(s.topo);
      if (std::string(problem) == "bfs") {
        auto opt = Options();
        run("Dense-WL",
            [&](runtime::Runtime& rt, const CsrGraph& g) {
              return analytics::BfsDenseWl(rt, g, src, opt).time_ns;
            },
            s.topo, false, false);
        run("Direction-Opt",
            [&](runtime::Runtime& rt, const CsrGraph& g) {
              return analytics::BfsDirectionOpt(rt, g, src, opt).time_ns;
            },
            s.topo, true, false);
        run("Sparse-WL",
            [&](runtime::Runtime& rt, const CsrGraph& g) {
              return analytics::BfsSparseWl(rt, g, src, opt).time_ns;
            },
            s.topo, false, false);
      } else if (std::string(problem) == "cc") {
        const graph::CsrTopology sym = graph::Symmetrize(s.topo);
        auto opt = Options();
        run("Dense-WL",
            [&](runtime::Runtime& rt, const CsrGraph& g) {
              return analytics::CcLabelProp(rt, g, opt).time_ns;
            },
            sym, false, false);
        run("LabelProp-SC",
            [&](runtime::Runtime& rt, const CsrGraph& g) {
              return analytics::CcLabelPropSC(rt, g, opt).time_ns;
            },
            sym, false, false);
      } else {
        graph::CsrTopology weighted = s.topo;
        graph::AssignRandomWeights(&weighted, 100, 7);
        auto opt = Options();
        run("Dense-WL",
            [&](runtime::Runtime& rt, const CsrGraph& g) {
              return analytics::SsspDenseWl(rt, g, src, opt).time_ns;
            },
            weighted, false, true);
        run("Delta-Step",
            [&](runtime::Runtime& rt, const CsrGraph& g) {
              return analytics::SsspDeltaStep(rt, g, src, opt).time_ns;
            },
            weighted, false, true);
      }
      SimNs best = cells[0].time_ns;
      for (const Cell& c : cells) best = std::min(best, c.time_ns);
      for (const Cell& c : cells) {
        const double vs_best = static_cast<double>(c.time_ns) /
                               static_cast<double>(best);
        table.AddRow({name, c.variant, scenarios::FormatSeconds(c.time_ns),
                      scenarios::FormatRatio(vs_best)});
        if (json != nullptr) {
          json->BeginRow();
          json->writer().Key("problem").String(problem);
          json->writer().Key("graph").String(name);
          json->writer().Key("variant").String(c.variant);
          json->writer().Key("time_ns").UInt(c.time_ns);
          json->writer().Key("vs_best").Fixed(vs_best, 4);
          json->EndRow();
        }
      }
    }
    std::printf("\n(%s)\n", problem);
    table.Print();
  }
}

}  // namespace pmg::benchvariants

#endif  // PMG_BENCH_VARIANTS_COMMON_H_
