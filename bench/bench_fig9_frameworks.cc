// Reproduces Figure 9: execution time of {bc, bfs, cc, pr, sssp, tc} in
// the GraphIt-, GAP-, GBBS- and Galois-like framework profiles on the
// Optane PMM machine with 96 threads, over clueweb12, uk14, iso_m100 and
// wdc12. GAP and GraphIt cannot run wdc12 (32-bit node ids); GraphIt has
// no bc. Ends with the paper's headline: Galois's average speedup over
// each framework (paper: 3.8x over GraphIt, 1.9x over GAP, 1.6x over
// GBBS).

#include <cstdio>
#include <map>
#include <vector>

#include "pmg/frameworks/framework.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"

int main() {
  using namespace pmg;
  using frameworks::App;
  using frameworks::AppInputs;
  using frameworks::AppRunResult;
  using frameworks::FrameworkKind;

  std::printf(
      "Figure 9: frameworks on Optane PMM (96 threads). '-' = the "
      "framework\ncannot run the cell (feature or 32-bit node-id "
      "limit)\n\n");

  const std::vector<App> apps = {App::kBc, App::kBfs,  App::kCc,
                                 App::kPr, App::kSssp, App::kTc};
  std::map<FrameworkKind, std::vector<double>> speedups;

  for (const char* name : {"clueweb12", "uk14", "iso_m100", "wdc12"}) {
    const scenarios::Scenario s = scenarios::MakeScenario(name);
    const AppInputs inputs =
        AppInputs::Prepare(s.topo, s.represented_vertices);
    scenarios::Table table({"app", "GraphIt (s)", "GAP (s)", "GBBS (s)",
                            "Galois (s)", "Galois speedup (best other)"});
    for (App app : apps) {
      std::map<FrameworkKind, AppRunResult> results;
      for (FrameworkKind fw : frameworks::AllFrameworks()) {
        frameworks::RunConfig cfg;
        cfg.machine = memsim::OptanePmmConfig();
        cfg.threads = 96;
        cfg.pr_max_rounds = 50;
        results[fw] = RunApp(fw, app, inputs, cfg);
      }
      auto cell = [&](FrameworkKind fw) {
        return results[fw].supported
                   ? scenarios::FormatSeconds(results[fw].time_ns)
                   : std::string("-");
      };
      const SimNs galois = results[FrameworkKind::kGalois].time_ns;
      double best_other = 0;
      for (FrameworkKind fw :
           {FrameworkKind::kGraphIt, FrameworkKind::kGap,
            FrameworkKind::kGbbs}) {
        if (!results[fw].supported) continue;
        const double t = static_cast<double>(results[fw].time_ns);
        if (best_other == 0 || t < best_other) best_other = t;
        speedups[fw].push_back(t / static_cast<double>(galois));
      }
      table.AddRow({frameworks::AppName(app), cell(FrameworkKind::kGraphIt),
                    cell(FrameworkKind::kGap), cell(FrameworkKind::kGbbs),
                    cell(FrameworkKind::kGalois),
                    best_other == 0
                        ? std::string("-")
                        : scenarios::FormatRatio(
                              best_other / static_cast<double>(galois))});
    }
    std::printf("(%s)\n", name);
    table.Print();
    std::printf("\n");
  }

  std::printf("Average (geomean) Galois speedup per framework "
              "(paper: GraphIt 3.8x, GAP 1.9x, GBBS 1.6x):\n");
  for (const auto& [fw, v] : speedups) {
    std::printf("  vs %-8s %s\n",
                frameworks::GetProfile(fw).name.c_str(),
                scenarios::FormatRatio(scenarios::Geomean(v)).c_str());
  }
  return 0;
}
