// Reproduces Table 1: bandwidth (GB/s) of the simulated Optane PMM by mode
// (memory / app-direct), access pattern (random / sequential), locality and
// direction. Memory-mode rows are *measured* end to end: 24 threads per
// socket stream or stride through a near-memory-resident buffer and the
// bandwidth emerges from the epoch roofline. App-direct rows are measured
// through the storage interface.

#include <cstdio>
#include <string>

#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"

namespace {

using pmg::AccessType;
using pmg::SimNs;
using pmg::ThreadId;
using pmg::VirtAddr;
using pmg::memsim::Machine;
using pmg::memsim::MachineConfig;
using pmg::memsim::PagePolicy;
using pmg::memsim::Placement;

constexpr uint64_t kBufferBytes = 4ull * 1024 * 1024;
constexpr uint32_t kThreads = 48;  // both hardware threads of one socket

/// Hardware-thread ids of one socket (block mapping: cores then their
/// SMT siblings).
ThreadId SocketThread(uint32_t i, bool remote) {
  const uint32_t base = remote ? 24 : 0;
  return i < 24 ? base + i : base + 24 + i;  // 0..23 and 48..71 (socket 0)
}

/// Measured GB/s for one memory-mode configuration.
double MemoryModeGbs(bool sequential, bool write, bool remote) {
  MachineConfig cfg = pmg::memsim::OptanePmmConfig();
  Machine m(cfg);
  PagePolicy policy;
  policy.placement = Placement::kLocal;
  policy.preferred_node = 0;
  policy.page_size = pmg::memsim::PageSizeClass::k2M;
  const VirtAddr base = m.BaseOf(m.Alloc(kBufferBytes, policy, "buf"));
  // Warm: fault pages and fill near-memory (the paper measures steady
  // state; the buffer stays resident in the DRAM cache).
  m.BeginEpoch(1);
  m.AccessRange(0, base, kBufferBytes, AccessType::kWrite);
  m.AccessRange(0, base, kBufferBytes, AccessType::kRead);
  m.EndEpoch();

  // Remote runs use socket-1 threads against socket-0 memory.
  m.BeginEpoch(96);
  const uint64_t lines = kBufferBytes / 64;
  const uint64_t per_thread = lines / kThreads;
  for (uint32_t i = 0; i < kThreads; ++i) {
    const ThreadId t = SocketThread(i, remote);
    const uint64_t begin = uint64_t{i} * per_thread;
    for (uint64_t k = 0; k < per_thread; ++k) {
      // Sequential: consecutive lines. Random: a large co-prime stride.
      const uint64_t line =
          sequential ? begin + k : (begin + k * 1048583ull) % lines;
      m.Access(t, base + line * 64, 64,
               write ? AccessType::kWrite : AccessType::kRead);
    }
  }
  const SimNs ns = m.EndEpoch().total_ns;
  return static_cast<double>(kBufferBytes) / static_cast<double>(ns);
}

/// Measured GB/s through the app-direct storage interface.
double AppDirectGbs(bool sequential, bool write, bool remote) {
  Machine m(pmg::memsim::AppDirectConfig());
  m.BeginEpoch(kThreads);
  constexpr uint64_t kIoBytes = 64ull * 1024 * 1024;
  constexpr uint64_t kChunk = 256 * 1024;
  for (uint64_t off = 0; off < kIoBytes; off += kChunk) {
    const ThreadId t = static_cast<ThreadId>((off / kChunk) % kThreads);
    if (write) {
      m.StorageWrite(t, kChunk, 0, sequential, remote);
    } else {
      m.StorageRead(t, kChunk, 0, sequential, remote);
    }
  }
  const SimNs ns = m.EndEpoch().total_ns;
  return static_cast<double>(kIoBytes) / static_cast<double>(ns);
}

std::string Cell(double gbs) { return pmg::scenarios::FormatDouble(gbs, 1); }

}  // namespace

int main() {
  std::printf(
      "Table 1: Bandwidth (GB/s) of simulated Intel Optane PMM\n"
      "(paper values: Memory rows 90/34/50/29.5 random, 106/100/54/29.5\n"
      " sequential; App-direct rows 8.2/5.5/3.6/2.3 random,\n"
      " 31/21/10.5/7.5 sequential)\n\n");
  pmg::scenarios::Table table({"Mode", "Pattern", "Read local", "Read remote",
                               "Write local", "Write remote"});
  table.AddRow({"Memory", "Random", Cell(MemoryModeGbs(false, false, false)),
                Cell(MemoryModeGbs(false, false, true)),
                Cell(MemoryModeGbs(false, true, false)),
                Cell(MemoryModeGbs(false, true, true))});
  table.AddRow({"Memory", "Sequential",
                Cell(MemoryModeGbs(true, false, false)),
                Cell(MemoryModeGbs(true, false, true)),
                Cell(MemoryModeGbs(true, true, false)),
                Cell(MemoryModeGbs(true, true, true))});
  table.AddRow({"App-direct", "Random", Cell(AppDirectGbs(false, false, false)),
                Cell(AppDirectGbs(false, false, true)),
                Cell(AppDirectGbs(false, true, false)),
                Cell(AppDirectGbs(false, true, true))});
  table.AddRow({"App-direct", "Sequential",
                Cell(AppDirectGbs(true, false, false)),
                Cell(AppDirectGbs(true, false, true)),
                Cell(AppDirectGbs(true, true, false)),
                Cell(AppDirectGbs(true, true, true))});
  table.Print();
  return 0;
}
