// Google-benchmark microbenchmarks of the simulator's host-side
// performance (wall-clock cost of the modelling itself, not simulated
// time). These bound how large a scenario the harness can drive.

#include <benchmark/benchmark.h>

#include <cstring>

#include "pmg/analytics/bfs.h"
#include "pmg/common/check.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/graph/generators.h"
#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/metrics/hooks.h"
#include "pmg/metrics/metrics_session.h"
#include "pmg/runtime/runtime.h"
#include "pmg/whatif/journal.h"
#include "pmg/whatif/reprice.h"

namespace {

using namespace pmg;

void BM_AccessCpuCacheHit(benchmark::State& state) {
  memsim::Machine m(memsim::DramOnlyConfig());
  memsim::PagePolicy policy;
  const VirtAddr base = m.BaseOf(m.Alloc(4096, policy, "b"));
  m.BeginEpoch(1);
  m.Access(0, base, 8, AccessType::kRead);
  for (auto _ : state) {
    m.Access(0, base, 8, AccessType::kRead);
  }
  m.EndEpoch();
}
BENCHMARK(BM_AccessCpuCacheHit);

void BM_AccessCacheMissDram(benchmark::State& state) {
  memsim::Machine m(memsim::DramOnlyConfig());
  memsim::PagePolicy policy;
  const uint64_t bytes = 8ull * 1024 * 1024;
  const VirtAddr base = m.BaseOf(m.Alloc(bytes, policy, "b"));
  m.BeginEpoch(1);
  uint64_t line = 0;
  const uint64_t lines = bytes / 64;
  for (auto _ : state) {
    m.Access(0, base + line * 64, 8, AccessType::kRead);
    line = (line + 1048583ull) % lines;
  }
  m.EndEpoch();
}
BENCHMARK(BM_AccessCacheMissDram);

void BM_AccessCacheMissMemoryMode(benchmark::State& state) {
  memsim::Machine m(memsim::OptanePmmConfig());
  memsim::PagePolicy policy;
  const uint64_t bytes = 8ull * 1024 * 1024;
  const VirtAddr base = m.BaseOf(m.Alloc(bytes, policy, "b"));
  m.BeginEpoch(1);
  uint64_t line = 0;
  const uint64_t lines = bytes / 64;
  for (auto _ : state) {
    m.Access(0, base + line * 64, 8, AccessType::kRead);
    line = (line + 1048583ull) % lines;
  }
  m.EndEpoch();
}
BENCHMARK(BM_AccessCacheMissMemoryMode);

void BM_EndToEndBfsSparse(benchmark::State& state) {
  const graph::CsrTopology topo =
      graph::Rmat(static_cast<uint32_t>(state.range(0)), 8, 3);
  for (auto _ : state) {
    memsim::Machine m(memsim::OptanePmmConfig());
    runtime::Runtime rt(&m, 96);
    graph::GraphLayout layout;
    layout.policy.placement = memsim::Placement::kInterleaved;
    graph::CsrGraph g(&m, topo, layout, "g");
    analytics::AlgoOptions opt;
    opt.label_policy = layout.policy;
    benchmark::DoNotOptimize(
        analytics::BfsSparseWl(rt, g, 0, opt).time_ns);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(topo.NumEdges()));
}
BENCHMARK(BM_EndToEndBfsSparse)->Arg(12)->Arg(14);

/// The disabled-instrumentation hot path: with no MetricsSession
/// installed, a worklist hook call must be one predictable
/// null-check — nothing a kernel inner loop would notice.
void BM_WorklistHookDisabled(benchmark::State& state) {
  PMG_CHECK_MSG(!metrics::HooksActive(),
                "hook table unexpectedly installed in a plain benchmark");
  for (auto _ : state) {
    metrics::CountWorklistPush(0);
    metrics::CountWorklistPop(0, false);
  }
}
BENCHMARK(BM_WorklistHookDisabled);

/// A metered run against its unmetered twin. The benchmark measures the
/// wall-clock cost of full metering (registry + heatmap + profiler); the
/// PMG_CHECK asserts the observability acceptance bar — attaching a
/// MetricsSession must not change pricing, so the two runs' MachineStats
/// are bit-identical.
void BM_EndToEndBfsMetered(benchmark::State& state) {
  const graph::CsrTopology topo = graph::Rmat(12, 8, 3);
  auto run = [&](metrics::MetricsSession* session) {
    memsim::Machine m(memsim::OptanePmmConfig());
    if (session != nullptr) session->Attach(&m);
    runtime::Runtime rt(&m, 96);
    graph::GraphLayout layout;
    layout.policy.placement = memsim::Placement::kInterleaved;
    graph::CsrGraph g(&m, topo, layout, "g");
    analytics::AlgoOptions opt;
    opt.label_policy = layout.policy;
    analytics::BfsSparseWl(rt, g, 0, opt);
    // Detach while the graph is still mapped (heat folds need the pages).
    if (session != nullptr) session->Detach();
    return m.stats();
  };
  const memsim::MachineStats plain = run(nullptr);
  for (auto _ : state) {
    metrics::MetricsOptions mopts;
    mopts.profile = true;
    metrics::MetricsSession session(mopts);
    const memsim::MachineStats metered = run(&session);
    PMG_CHECK_MSG(std::memcmp(&plain, &metered, sizeof(plain)) == 0,
                  "metered run diverged from its unmetered twin: attaching "
                  "a MetricsSession must not change pricing");
    benchmark::DoNotOptimize(session.registry().metric_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(topo.NumEdges()));
}
BENCHMARK(BM_EndToEndBfsMetered);

/// A journaled run against its unjournaled twin. The benchmark measures
/// the wall-clock cost of cost-journal capture (per-class event counts +
/// per-epoch snapshots); the PMG_CHECKs assert the whatif acceptance
/// bar — recording must not change pricing (bit-identical MachineStats),
/// and the journal must re-price its own run bit-exactly.
void BM_EndToEndBfsJournaled(benchmark::State& state) {
  const graph::CsrTopology topo = graph::Rmat(12, 8, 3);
  auto run = [&](whatif::JournalRecorder* recorder) {
    memsim::Machine m(memsim::OptanePmmConfig());
    if (recorder != nullptr) recorder->Attach(&m);
    runtime::Runtime rt(&m, 96);
    graph::GraphLayout layout;
    layout.policy.placement = memsim::Placement::kInterleaved;
    graph::CsrGraph g(&m, topo, layout, "g");
    analytics::AlgoOptions opt;
    opt.label_policy = layout.policy;
    analytics::BfsSparseWl(rt, g, 0, opt);
    if (recorder != nullptr) recorder->Detach();
    return m.stats();
  };
  const memsim::MachineStats plain = run(nullptr);
  for (auto _ : state) {
    whatif::JournalRecorder recorder;
    memsim::MachineStats journaled = run(&recorder);
    // Any attached sink updates the trace bookkeeping counters; pricing
    // invisibility is about everything else.
    journaled.trace_attributed_ns = plain.trace_attributed_ns;
    journaled.traced_epochs = plain.traced_epochs;
    PMG_CHECK_MSG(std::memcmp(&plain, &journaled, sizeof(plain)) == 0,
                  "journaled run diverged from its unjournaled twin: "
                  "attaching a JournalRecorder must not change pricing");
    whatif::VerifyIdentity(recorder.journal());
    benchmark::DoNotOptimize(recorder.journal().epochs.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(topo.NumEdges()));
}
BENCHMARK(BM_EndToEndBfsJournaled);

void BM_MachineConstruction(benchmark::State& state) {
  for (auto _ : state) {
    memsim::Machine m(memsim::OptanePmmConfig());
    benchmark::DoNotOptimize(m.MaxThreads());
  }
}
BENCHMARK(BM_MachineConstruction);

}  // namespace
