// Host-throughput scale ladder: how fast the *host* prices a run, and
// what the phased pricing engine (docs/determinism.md) buys over serial
// pricing. Walks kron scale 22..27 (represented scale; actual topologies
// follow the scenarios.cc convention of scale-14 minis so the ladder
// stays CI-sized), runs PageRank under the Galois profile on the DRAM
// and Optane machines with 1 vs 8 host threads, and reports edges per
// host-second plus the 8-thread speedup.
//
// Field contract (pmg/metrics/perf_diff.h): `time_ns` is the simulated
// time — deterministic, identical across host widths, and gated at 5% by
// pmg_perf, so this baseline doubles as a byte-identity check on the
// phased engine. `edges_per_sec`, `wall_ms` and `speedup_x` are host
// wall-clock measurements: machine-dependent by nature (a single-core CI
// runner shows speedup_x ~1), published as informational non-`_ns`
// fields the gate never thresholds. The bench exits nonzero if any
// simulated number moves with host width — that part is not advisory.

#include <cstdio>
#include <string>
#include <vector>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/generators.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"
#include "pmg/trace/bench_report.h"
#include "tools/hostperf/wallclock.h"

namespace {

struct Measurement {
  pmg::SimNs sim_ns = 0;
  double wall_s = 0;
  uint64_t edges_priced = 0;
};

/// Best-of-`reps` wall-clock for one (inputs, machine, width) cell.
Measurement Measure(const pmg::frameworks::AppInputs& inputs,
                    const pmg::memsim::MachineConfig& machine,
                    uint32_t host_threads, uint64_t edges, int reps) {
  using namespace pmg;
  Measurement m;
  for (int r = 0; r < reps; ++r) {
    frameworks::RunConfig cfg;
    cfg.machine = machine;
    cfg.threads = 16;
    cfg.pr_max_rounds = 10;
    cfg.host_threads = host_threads;
    hostperf::WallTimer timer;
    const frameworks::AppRunResult res = RunApp(
        frameworks::FrameworkKind::kGalois, frameworks::App::kPr, inputs, cfg);
    const double wall = timer.Seconds();
    m.sim_ns = res.time_ns;
    m.edges_priced = edges * res.rounds;
    if (r == 0 || wall < m.wall_s) m.wall_s = wall;
  }
  return m;
}

}  // namespace

int main() {
  using namespace pmg;

  std::printf(
      "Host pricing throughput, kron scale ladder 22..27 (PageRank,\n"
      "Galois profile, 16 virtual threads; host wall-clock, best of 3)\n\n");

  trace::BenchJson json("host_throughput");
  scenarios::Table table({"graph", "machine", "edges", "1t Medge/s",
                          "8t Medge/s", "speedup", "sim time identical"});
  bool deterministic = true;

  for (uint32_t scale = 22; scale <= 27; ++scale) {
    // scenarios.cc convention: a paper-scale kron is stood in for by a
    // scale-14 mini on a capacity-scaled machine (kron30 -> Kron(16)).
    const graph::CsrTopology topo =
        graph::Kron(scale - 14, /*edge_factor=*/16, /*seed=*/scale);
    const uint64_t edges = topo.NumEdges();
    const frameworks::AppInputs inputs =
        frameworks::AppInputs::Prepare(topo, /*represented=*/uint64_t{1}
                                                 << scale);
    const std::string name = "kron" + std::to_string(scale);
    const struct {
      const char* label;
      memsim::MachineConfig config;
    } machines[] = {
        {"dram", memsim::DramOnlyConfig()},
        {"pmm", memsim::OptanePmmConfig()},
    };
    for (const auto& mc : machines) {
      const Measurement serial =
          Measure(inputs, mc.config, /*host_threads=*/1, edges, /*reps=*/3);
      const Measurement pool =
          Measure(inputs, mc.config, /*host_threads=*/8, edges, /*reps=*/3);
      const bool same = serial.sim_ns == pool.sim_ns;
      deterministic = deterministic && same;
      const double speedup = serial.wall_s / pool.wall_s;
      for (const auto* m : {&serial, &pool}) {
        json.BeginRow();
        json.writer().Key("graph").String(name);
        json.writer().Key("machine").String(mc.label);
        json.writer().Key("host").String(m == &serial ? "w1" : "w8");
        json.writer().Key("time_ns").UInt(m->sim_ns);
        json.writer().Key("edges_per_sec").Double(
            static_cast<double>(m->edges_priced) / m->wall_s);
        json.writer().Key("wall_ms").Double(m->wall_s * 1e3);
        json.EndRow();
      }
      json.BeginRow();
      json.writer().Key("graph").String(name);
      json.writer().Key("machine").String(mc.label);
      json.writer().Key("host").String("speedup");
      json.writer().Key("speedup_x").Double(speedup);
      json.EndRow();
      char s1[32], s8[32], sx[32];
      std::snprintf(s1, sizeof(s1), "%.1f",
                    static_cast<double>(serial.edges_priced) /
                        serial.wall_s * 1e-6);
      std::snprintf(s8, sizeof(s8), "%.1f",
                    static_cast<double>(pool.edges_priced) / pool.wall_s *
                        1e-6);
      std::snprintf(sx, sizeof(sx), "%.2fx", speedup);
      table.AddRow({name, mc.label, std::to_string(edges), s1, s8, sx,
                    same ? "yes" : "NO"});
    }
  }

  table.Print();
  const std::string path = json.Write();
  std::printf("\nwrote %s\n", path.c_str());
  if (!deterministic) {
    std::fprintf(stderr,
                 "FATAL: simulated time moved with host thread count — the "
                 "phased engine broke byte identity\n");
    return 1;
  }
  return 0;
}
