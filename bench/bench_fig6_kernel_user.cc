// Reproduces Figure 6: kernel/user time breakdown of the Figure 5 runs
// (bfs in Galois) for kron30 and clueweb12 on both machines. The paper's
// point: migrations add kernel time without reducing user time, and the
// kernel share is larger on Optane PMM (kernel data structures live in
// slower memory) and with 4KB pages (512x the pages to manage).

#include <cstdio>

#include "pmg/frameworks/framework.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"

namespace {

using pmg::frameworks::App;
using pmg::frameworks::AppInputs;
using pmg::frameworks::AppRunResult;
using pmg::frameworks::FrameworkKind;
using pmg::frameworks::RunApp;
using pmg::frameworks::RunConfig;
using pmg::memsim::MachineConfig;
using pmg::memsim::PageSizeClass;

AppRunResult Run(const AppInputs& inputs, const MachineConfig& machine,
                 PageSizeClass page_size, bool migration) {
  RunConfig cfg;
  cfg.machine = machine;
  cfg.machine.migration.enabled = migration;
  cfg.threads = 96;
  cfg.page_size = page_size;
  return RunApp(FrameworkKind::kGalois, App::kBfs, inputs, cfg);
}

}  // namespace

int main() {
  std::printf(
      "Figure 6: kernel vs user time of bfs (Galois) under page-size and\n"
      "migration settings (paper: migration inflates kernel time, more so\n"
      "for 4KB pages and more on Optane PMM)\n\n");
  pmg::scenarios::Table t({"graph", "machine", "pages", "migration",
                           "user (s)", "kernel (s)", "kernel share"});
  for (const char* name : {"kron30", "clueweb12"}) {
    const pmg::scenarios::Scenario s = pmg::scenarios::MakeScenario(name);
    const AppInputs inputs =
        AppInputs::Prepare(s.topo, s.represented_vertices);
    for (const MachineConfig& machine :
         {pmg::memsim::OptanePmmConfig(), pmg::memsim::DramOnlyConfig()}) {
      for (PageSizeClass ps : {PageSizeClass::k4K, PageSizeClass::k2M}) {
        for (bool migration : {true, false}) {
          const AppRunResult r = Run(inputs, machine, ps, migration);
          const double total = static_cast<double>(r.stats.user_ns) +
                               static_cast<double>(r.stats.kernel_ns);
          t.AddRow({name, machine.name,
                    ps == PageSizeClass::k4K ? "4KB" : "2MB",
                    migration ? "ON" : "OFF",
                    pmg::scenarios::FormatSeconds(r.stats.user_ns),
                    pmg::scenarios::FormatSeconds(r.stats.kernel_ns),
                    pmg::scenarios::FormatDouble(
                        total == 0 ? 0 : 100.0 * r.stats.kernel_ns / total,
                        1) +
                        "%"});
        }
      }
    }
  }
  t.Print();
  return 0;
}
