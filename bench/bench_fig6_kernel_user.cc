// Reproduces Figure 6: kernel/user time breakdown of the Figure 5 runs
// (bfs in Galois) for kron30 and clueweb12 on both machines. The paper's
// point: migrations add kernel time without reducing user time, and the
// kernel share is larger on Optane PMM (kernel data structures live in
// slower memory) and with 4KB pages (512x the pages to manage).
//
// The breakdown is read off the pmg::trace attribution stream, which
// splits kernel time further into its causes (fault handling, migration
// scan/move/remap, TLB shootdowns) — the detail VTune gave the paper's
// authors and MachineStats alone cannot.

#include <cstdio>

#include "pmg/frameworks/framework.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/memsim/trace_sink.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"
#include "pmg/trace/bench_report.h"
#include "pmg/trace/trace_session.h"

namespace {

using pmg::SimNs;
using pmg::frameworks::App;
using pmg::frameworks::AppInputs;
using pmg::frameworks::AppRunResult;
using pmg::frameworks::FrameworkKind;
using pmg::frameworks::RunApp;
using pmg::frameworks::RunConfig;
using pmg::memsim::MachineConfig;
using pmg::memsim::PageSizeClass;
using pmg::memsim::TraceBucket;

AppRunResult Run(const AppInputs& inputs, const MachineConfig& machine,
                 PageSizeClass page_size, bool migration,
                 pmg::trace::TraceSession* session) {
  RunConfig cfg;
  cfg.machine = machine;
  cfg.machine.migration.enabled = migration;
  cfg.threads = 96;
  cfg.page_size = page_size;
  cfg.trace = session;
  return RunApp(FrameworkKind::kGalois, App::kBfs, inputs, cfg);
}

SimNs Bucket(const pmg::trace::TraceReport& r, TraceBucket b) {
  return r.buckets[static_cast<size_t>(b)];
}

}  // namespace

int main() {
  std::printf(
      "Figure 6: kernel vs user time of bfs (Galois) under page-size and\n"
      "migration settings (paper: migration inflates kernel time, more so\n"
      "for 4KB pages and more on Optane PMM)\n\n");
  pmg::scenarios::Table t({"graph", "machine", "pages", "migration",
                           "user (s)", "kernel (s)", "kernel share",
                           "faults", "migration", "shootdown"});
  pmg::trace::BenchJson json("fig6");
  for (const char* name : {"kron30", "clueweb12"}) {
    const pmg::scenarios::Scenario s = pmg::scenarios::MakeScenario(name);
    const AppInputs inputs =
        AppInputs::Prepare(s.topo, s.represented_vertices);
    for (const MachineConfig& machine :
         {pmg::memsim::OptanePmmConfig(), pmg::memsim::DramOnlyConfig()}) {
      for (PageSizeClass ps : {PageSizeClass::k4K, PageSizeClass::k2M}) {
        for (bool migration : {true, false}) {
          // A fresh session per cell: its report covers exactly one run.
          pmg::trace::TraceSession session;
          const AppRunResult r = Run(inputs, machine, ps, migration,
                                     &session);
          const pmg::trace::TraceReport& tr = session.report();
          // Figure 6 reads the split off the attribution stream; the
          // conservation law guarantees it matches the machine's clocks.
          const SimNs fault_ns = Bucket(tr, TraceBucket::kMinorFault) +
                                 Bucket(tr, TraceBucket::kHintFault);
          const SimNs migration_ns =
              Bucket(tr, TraceBucket::kMigrationScan) +
              Bucket(tr, TraceBucket::kMigrationMove) +
              Bucket(tr, TraceBucket::kMigrationRemap);
          const SimNs shootdown_ns = Bucket(tr, TraceBucket::kTlbShootdown);
          const SimNs user = tr.UserBucketNs();
          const SimNs kernel = tr.KernelBucketNs();
          const double total = static_cast<double>(user + kernel);
          t.AddRow({name, machine.name,
                    ps == PageSizeClass::k4K ? "4KB" : "2MB",
                    migration ? "ON" : "OFF",
                    pmg::scenarios::FormatSeconds(user),
                    pmg::scenarios::FormatSeconds(kernel),
                    pmg::scenarios::FormatDouble(
                        total == 0 ? 0 : 100.0 * kernel / total, 1) +
                        "%",
                    pmg::scenarios::FormatSeconds(fault_ns),
                    pmg::scenarios::FormatSeconds(migration_ns),
                    pmg::scenarios::FormatSeconds(shootdown_ns)});
          json.BeginRow();
          json.writer().Key("graph").String(name);
          json.writer().Key("machine").String(machine.name);
          json.writer().Key("pages").String(
              ps == PageSizeClass::k4K ? "4KB" : "2MB");
          json.writer().Key("migration").Bool(migration);
          json.writer().Key("user_ns").UInt(user);
          json.writer().Key("kernel_ns").UInt(kernel);
          json.writer().Key("fault_ns").UInt(fault_ns);
          json.writer().Key("migration_ns").UInt(migration_ns);
          json.writer().Key("shootdown_ns").UInt(shootdown_ns);
          json.writer().Key("conserves").Bool(tr.Conserves());
          json.EndRow();
        }
      }
    }
  }
  t.Print();
  const std::string path = json.Write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
