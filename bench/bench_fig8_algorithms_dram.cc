// Reproduces Figure 8: the Figure 7 study repeated on "Entropy", the
// large DRAM machine, with 56 threads — demonstrating that the
// algorithmic findings (sparse worklists and asynchronous execution win
// on high-diameter graphs) are independent of the memory technology.

#include <cstdio>

#include "bench/variants_common.h"
#include "pmg/memsim/machine_configs.h"

int main() {
  std::printf(
      "Figure 8: data-driven algorithm variants on Entropy (DDR4 DRAM, 56 "
      "threads)\n");
  pmg::benchvariants::RunVariantStudy(pmg::memsim::EntropyConfig(), 56);
  return 0;
}
