// Reproduces Table 2: idle access latency (ns) of the simulated memory
// system by mode and locality. Memory-mode rows are measured with a
// single-thread dependent pointer chase over a near-memory-resident
// buffer; near-memory-miss latency is measured with a working set larger
// than the socket's DRAM. App-direct rows report the calibrated media
// latencies the model charges through the storage path.

#include <cstdio>

#include "pmg/memsim/machine.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"

namespace {

using pmg::AccessType;
using pmg::SimNs;
using pmg::ThreadId;
using pmg::VirtAddr;
using pmg::memsim::Machine;
using pmg::memsim::MachineConfig;
using pmg::memsim::PagePolicy;
using pmg::memsim::Placement;

/// Average per-access ns of a strided chase by one thread.
double ChaseNs(Machine& m, VirtAddr base, uint64_t bytes, ThreadId t) {
  const uint64_t lines = bytes / 64;
  constexpr uint64_t kAccesses = 100000;
  m.CloseEpochIfOpen();
  const SimNs before = m.now();
  m.BeginEpoch(t + 1);
  uint64_t line = 0;
  for (uint64_t i = 0; i < kAccesses; ++i) {
    m.Access(t, base + line * 64, 8, AccessType::kRead);
    line = (line + 1048583ull) % lines;  // defeat the CPU line cache
  }
  m.EndEpoch();
  return static_cast<double>(m.now() - before) / kAccesses;
}

/// Memory-mode latency with a buffer that fits (hit) or thrashes (miss)
/// near-memory, accessed locally or remotely.
double MemoryModeNs(bool remote, bool force_miss) {
  MachineConfig cfg = pmg::memsim::OptanePmmConfig();
  cfg.timings.mem_parallelism = 1.0;  // dependent pointer chase
  Machine m(cfg);
  const uint64_t near_mem = cfg.topology.dram_bytes_per_socket;
  const uint64_t bytes = force_miss ? near_mem * 2 : near_mem / 4;
  PagePolicy policy;
  policy.placement = Placement::kLocal;
  policy.preferred_node = 0;
  policy.page_size = pmg::memsim::PageSizeClass::k2M;
  const VirtAddr base = m.BaseOf(m.Alloc(bytes, policy, "buf"));
  m.BeginEpoch(1);
  m.AccessRange(0, base, bytes, AccessType::kRead);  // warm / fault
  m.EndEpoch();
  m.FlushVolatileState();
  if (!force_miss) {
    // Re-warm near-memory after the flush so the chase hits.
    m.BeginEpoch(1);
    m.AccessRange(0, base, bytes, AccessType::kRead);
    m.EndEpoch();
  }
  return ChaseNs(m, base, bytes, remote ? 24 : 0);
}

double DramNs(bool remote) {
  MachineConfig cfg = pmg::memsim::DramOnlyConfig();
  cfg.timings.mem_parallelism = 1.0;  // dependent pointer chase
  Machine m(cfg);
  PagePolicy policy;
  policy.placement = Placement::kLocal;
  policy.preferred_node = 0;
  policy.page_size = pmg::memsim::PageSizeClass::k2M;
  const uint64_t bytes = 4ull * 1024 * 1024;
  const VirtAddr base = m.BaseOf(m.Alloc(bytes, policy, "buf"));
  m.BeginEpoch(1);
  m.AccessRange(0, base, bytes, AccessType::kRead);
  m.EndEpoch();
  return ChaseNs(m, base, bytes, remote ? 24 : 0);
}

}  // namespace

int main() {
  const pmg::memsim::MemoryTimings tm = pmg::memsim::DefaultTimings();
  std::printf(
      "Table 2: Latency (ns) of simulated Intel Optane PMM\n"
      "(paper values: Memory 95 local / 150 remote;\n"
      " App-direct 164 local / 232 remote)\n\n");
  pmg::scenarios::Table table({"Mode", "Local", "Remote"});
  table.AddRow({"Memory (near-mem hit)",
                pmg::scenarios::FormatDouble(MemoryModeNs(false, false), 1),
                pmg::scenarios::FormatDouble(MemoryModeNs(true, false), 1)});
  table.AddRow({"Memory (near-mem miss)",
                pmg::scenarios::FormatDouble(MemoryModeNs(false, true), 1),
                pmg::scenarios::FormatDouble(MemoryModeNs(true, true), 1)});
  table.AddRow({"App-direct (calibrated)",
                pmg::scenarios::FormatDouble(
                    static_cast<double>(tm.appdirect_local_ns), 1),
                pmg::scenarios::FormatDouble(
                    static_cast<double>(tm.appdirect_remote_ns), 1)});
  table.AddRow({"DDR4 DRAM (reference)",
                pmg::scenarios::FormatDouble(DramNs(false), 1),
                pmg::scenarios::FormatDouble(DramNs(true), 1)});
  table.Print();
  return 0;
}
