// Crash-point sweep: what does surviving media failure cost?
//
// On the Optane PMM machine running kron30, bfs and pagerank are run with
// epoch-granular checkpointing to the app-direct namespace at intervals of
// {1, 2, 4, 8} rounds, then re-run with a crash injected roughly halfway
// through. The table reports the checkpoint tax of the fault-free run and
// the end-to-end overhead of crashing and recovering, against restarting
// from scratch (interval 0). A final section shows graceful degradation:
// uncorrectable errors, transient latency faults and a degraded link
// delivered into an uncheckpointed run that still completes.

#include <cstdio>
#include <string>
#include <vector>

#include "pmg/faultsim/fault_schedule.h"
#include "pmg/faultsim/recovery.h"
#include "pmg/frameworks/framework.h"
#include "pmg/graph/properties.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"

namespace {

using pmg::SimNs;
using pmg::VertexId;
using pmg::faultsim::FaultSchedule;
using pmg::faultsim::RecoveryConfig;
using pmg::faultsim::RecoveryResult;
using pmg::faultsim::RunBfsWithRecovery;
using pmg::faultsim::RunPrWithRecovery;
using pmg::graph::CsrTopology;

FaultSchedule Parse(const std::string& spec) {
  FaultSchedule s;
  std::string error;
  if (!FaultSchedule::Parse(spec, &s, &error)) {
    std::fprintf(stderr, "bad spec %s: %s\n", spec.c_str(), error.c_str());
    std::abort();
  }
  return s;
}

RecoveryConfig BaseConfig() {
  RecoveryConfig cfg;
  cfg.machine = pmg::memsim::OptanePmmConfig();
  cfg.threads = 96;
  cfg.algo.pr_max_rounds = 10;
  return cfg;
}

RecoveryResult Run(bool pr, const CsrTopology& topo, VertexId source,
                   const RecoveryConfig& cfg) {
  return pr ? RunPrWithRecovery(topo, cfg)
            : RunBfsWithRecovery(topo, source, cfg);
}

void Sweep(bool pr, const CsrTopology& topo, VertexId source) {
  std::printf("%s on kron30 (Optane PMM, 96 threads)\n\n",
              pr ? "pagerank" : "bfs");

  // Fault-free, checkpoint-free baseline; its epoch count aims the crash.
  RecoveryConfig base = BaseConfig();
  const RecoveryResult clean = Run(pr, topo, source, base);
  const uint64_t crash_epoch = clean.stats.epochs / 2;
  char crash_spec[64];
  std::snprintf(crash_spec, sizeof(crash_spec), "crash@epoch:%llu",
                static_cast<unsigned long long>(crash_epoch));

  pmg::scenarios::Table t({"ckpt interval", "clean (s)", "ckpt tax",
                           "crashed+recovered (s)", "crash overhead",
                           "restored from"});
  for (uint32_t every : {0u, 1u, 2u, 4u, 8u}) {
    RecoveryConfig cfg = BaseConfig();
    cfg.checkpoint_every = every;
    const RecoveryResult quiet =
        every == 0 ? clean : Run(pr, topo, source, cfg);

    cfg.faults = Parse(crash_spec);
    const RecoveryResult crashed = Run(pr, topo, source, cfg);

    const double tax = 100.0 *
                       (static_cast<double>(quiet.total_ns) -
                        static_cast<double>(clean.total_ns)) /
                       static_cast<double>(clean.total_ns);
    const double overhead = 100.0 *
                            (static_cast<double>(crashed.total_ns) -
                             static_cast<double>(clean.total_ns)) /
                            static_cast<double>(clean.total_ns);
    t.AddRow({every == 0 ? "none" : std::to_string(every),
              pmg::scenarios::FormatSeconds(quiet.total_ns),
              every == 0 ? "-" : pmg::scenarios::FormatDouble(tax, 1) + "%",
              pmg::scenarios::FormatSeconds(crashed.total_ns),
              pmg::scenarios::FormatDouble(overhead, 1) + "%",
              crashed.restarts_from_checkpoint > 0 ? "checkpoint"
                                                   : "scratch"});
  }
  t.Print();
  std::printf("\n");

  // One representative recovery, in full.
  RecoveryConfig cfg = BaseConfig();
  cfg.checkpoint_every = 2;
  cfg.faults = Parse(crash_spec);
  const RecoveryResult r = Run(pr, topo, source, cfg);
  pmg::scenarios::PrintRecoveryReport(r);
  std::printf("\n");
}

void Degradation(const CsrTopology& topo) {
  std::printf(
      "graceful degradation: bfs (GBBS) with UEs, transient faults and a\n"
      "degraded link — the run completes, paying the machine-check and\n"
      "retry bills\n\n");
  const pmg::frameworks::AppInputs inputs =
      pmg::frameworks::AppInputs::Prepare(topo);
  pmg::frameworks::RunConfig cfg;
  cfg.machine = pmg::memsim::OptanePmmConfig();
  cfg.threads = 96;
  // Probe with a never-firing fault to learn the run's media-op count,
  // then aim the errors late so they land in the solve phase (ordinals
  // start at graph construction, which dominates the op count).
  cfg.faults = Parse("lat@access:0xffffffffff,ns=1,count=1");
  const uint64_t ops =
      RunApp(pmg::frameworks::FrameworkKind::kGbbs,
             pmg::frameworks::App::kBfs, inputs, cfg)
          .fault.media_ops;
  char spec[192];
  std::snprintf(spec, sizeof(spec),
                "ue@access:%llu;ue@access:%llu;"
                "lat@access:%llu,ns=2000,count=5000,retries=4;"
                "link@epoch:2,x=0.5,epochs=4;seed=9",
                static_cast<unsigned long long>(ops * 9 / 10),
                static_cast<unsigned long long>(ops * 19 / 20),
                static_cast<unsigned long long>(ops * 4 / 5));
  cfg.faults = Parse(spec);
  const pmg::frameworks::AppRunResult r =
      RunApp(pmg::frameworks::FrameworkKind::kGbbs,
             pmg::frameworks::App::kBfs, inputs, cfg);
  std::printf("time: %s (crashed: %s)\n",
              pmg::scenarios::FormatSeconds(r.time_ns).c_str(),
              r.crashed ? "yes" : "no");
  pmg::scenarios::PrintFaultReport(r.fault, r.stats);
}

}  // namespace

int main() {
  std::printf(
      "Fault sweep: checkpoint tax and crash-recovery overhead vs\n"
      "checkpoint interval (crash injected ~50%% through the clean run)\n\n");
  const pmg::scenarios::Scenario s = pmg::scenarios::MakeScenario("kron30");
  const VertexId source = pmg::graph::MaxOutDegreeVertex(s.topo);
  Sweep(/*pr=*/false, s.topo, source);
  Sweep(/*pr=*/true, s.topo, source);
  Degradation(s.topo);
  return 0;
}
