// Reproduces Figure 10: strong scaling of the seven benchmarks in the
// Galois-like profile on kron30 and clueweb12, on DDR4 DRAM vs Optane
// PMM, for 6..96 threads. Ends with the Section 6.2 summaries: average
// PMM-over-DRAM overhead at 96 threads (paper: 7.3% average, up to 65%
// for clueweb12 because it nearly fills near-memory) and the 8->96-thread
// speedup.

#include <cstdio>
#include <vector>

#include "pmg/frameworks/framework.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"
#include "pmg/trace/bench_report.h"

namespace {

/// Rough bytes the app materializes under the Galois profile, to skip
/// cells that genuinely do not fit the machine (the paper's own premise).
uint64_t Footprint(pmg::frameworks::App app,
                   const pmg::frameworks::AppInputs& in) {
  using pmg::frameworks::App;
  using pmg::graph::CsrBytes;
  switch (app) {
    case App::kKcore:
      return CsrBytes(in.sym) + in.sym.num_vertices * 8;
    case App::kTc:
      return CsrBytes(in.tc_fwd);
    case App::kSssp:
      return CsrBytes(in.weighted) + in.weighted.num_vertices * 16;
    case App::kPr:
      return 2 * CsrBytes(in.base) + in.base.num_vertices * 24;
    default:  // Bfs/Bc/Cc: base topology plus level/score arrays
      return CsrBytes(in.base) + in.base.num_vertices * 16;
  }
}

}  // namespace

int main() {
  using namespace pmg;
  using frameworks::App;
  using frameworks::AppInputs;
  using frameworks::FrameworkKind;

  std::printf(
      "Figure 10: strong scaling of Galois on DDR4 DRAM vs Optane PMM\n"
      "(kron30 fits in near-memory -> PMM tracks DRAM; clueweb12 nearly\n"
      " fills it -> PMM pays conflict misses; below 24 threads all memory\n"
      " is allocated on one socket, hurting PMM most)\n\n");

  const std::vector<uint32_t> threads = {6, 12, 24, 48, 96};
  const std::vector<App> apps = frameworks::AllApps();
  std::vector<double> overhead_96;
  std::vector<double> speedup_8_96_pmm;
  trace::BenchJson json("fig10");

  for (const char* name : {"kron30", "clueweb12"}) {
    const scenarios::Scenario s = scenarios::MakeScenario(name);
    const AppInputs inputs =
        AppInputs::Prepare(s.topo, s.represented_vertices);
    std::printf("(%s)\n", name);
    std::vector<std::string> headers = {"app", "machine"};
    for (uint32_t t : threads) headers.push_back(std::to_string(t) + "t (s)");
    scenarios::Table table(headers);
    for (App app : apps) {
      SimNs pmm96 = 0;
      SimNs dram96 = 0;
      SimNs pmm8 = 0;
      for (const bool pmm : {false, true}) {
        std::vector<std::string> row = {frameworks::AppName(app),
                                        pmm ? "PMM" : "DRAM"};
        frameworks::RunConfig probe;
        probe.machine =
            pmm ? memsim::OptanePmmConfig() : memsim::DramOnlyConfig();
        const uint64_t capacity = probe.machine.MainBytesPerSocket() *
                                  probe.machine.topology.sockets;
        if (Footprint(app, inputs) * 10 > capacity * 9) {
          // Does not fit this machine's main memory — the situation the
          // paper's Optane machine exists to avoid.
          for (size_t k = 0; k < threads.size(); ++k) row.push_back("-");
          table.AddRow(row);
          continue;
        }
        for (uint32_t t : threads) {
          frameworks::RunConfig cfg;
          cfg.machine = pmm ? memsim::OptanePmmConfig()
                            : memsim::DramOnlyConfig();
          cfg.threads = t;
          cfg.pr_max_rounds = 20;
          const SimNs ns =
              RunApp(FrameworkKind::kGalois, app, inputs, cfg).time_ns;
          row.push_back(scenarios::FormatSeconds(ns));
          json.BeginRow();
          json.writer().Key("graph").String(name);
          json.writer().Key("app").String(frameworks::AppName(app));
          json.writer().Key("machine").String(pmm ? "pmm" : "dram");
          json.writer().Key("threads").UInt(t);
          json.writer().Key("time_ns").UInt(ns);
          json.EndRow();
          if (t == 96) (pmm ? pmm96 : dram96) = ns;
          if (t == 6 && pmm) pmm8 = ns;
        }
        table.AddRow(row);
      }
      if (dram96 > 0) {
        overhead_96.push_back(static_cast<double>(pmm96) / dram96);
      }
      if (pmm96 > 0) {
        speedup_8_96_pmm.push_back(static_cast<double>(pmm8) / pmm96);
      }
    }
    table.Print();
    std::printf("\n");
  }

  std::printf(
      "Section 6.2 summaries:\n"
      "  geomean PMM/DRAM time at 96 threads: %s (paper avg: 1.07x)\n"
      "  geomean PMM speedup 6 -> 96 threads: %s (paper 8->96: ~4.2-4.7x)\n",
      scenarios::FormatRatio(scenarios::Geomean(overhead_96)).c_str(),
      scenarios::FormatRatio(scenarios::Geomean(speedup_8_96_pmm)).c_str());
  const std::string path = json.Write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
