// Reproduces Table 4: Galois on the Optane PMM machine (OB: best
// algorithms, 96 threads) vs D-Galois vertex programs on the Stampede2
// cluster with the minimum number of hosts that hold each graph (DM).
// Expected shape: the single machine wins most cells — dramatically for
// bc and kcore on high-diameter graphs — while pr goes the other way
// (every vertex updates every round, so the cluster's partitioned
// bandwidth wins), for an overall geomean speedup near the paper's 1.7x.

#include <cstdio>
#include <vector>

#include "bench/cluster_common.h"
#include "pmg/scenarios/report.h"

int main() {
  using namespace pmg;
  using benchcluster::ClusterEngines;
  using benchcluster::ClusterInputs;
  using frameworks::App;
  using frameworks::FrameworkKind;

  constexpr uint32_t kPrRounds = 20;  // scaled from the paper's 100

  std::printf(
      "Table 4: D-Galois on Stampede2 (DM: min hosts holding the graph)\n"
      "vs Galois on Optane PMM (OB: best algorithm, 96 threads)\n\n");
  scenarios::Table table({"graph", "app", "Stampede DM (s)",
                          "Optane OB (s)", "speedup DM/OB"});
  std::vector<double> speedups;
  for (const char* name : {"clueweb12", "uk14", "iso_m100", "wdc12"}) {
    const scenarios::Scenario s = scenarios::MakeScenario(name);
    const ClusterInputs cin = ClusterInputs::Prepare(s);
    const frameworks::AppInputs fin =
        frameworks::AppInputs::Prepare(s.topo, s.represented_vertices);

    distsim::DistConfig dcfg;
    dcfg.hosts = benchcluster::MinHosts(name);
    dcfg.threads_per_host = 48;
    dcfg.host_machine = memsim::StampedeHostConfig();
    ClusterEngines engines = ClusterEngines::Build(cin, dcfg);

    for (App app : {App::kBc, App::kBfs, App::kCc, App::kKcore, App::kPr,
                    App::kSssp}) {
      const distsim::DistRunResult dm =
          RunCluster(engines, app, cin, kPrRounds);
      frameworks::RunConfig ocfg;
      ocfg.machine = memsim::OptanePmmConfig();
      ocfg.threads = 96;
      ocfg.pr_max_rounds = kPrRounds;
      const frameworks::AppRunResult ob =
          RunApp(FrameworkKind::kGalois, app, fin, ocfg);
      const double speedup = static_cast<double>(dm.time_ns) /
                             static_cast<double>(ob.time_ns);
      speedups.push_back(speedup);
      table.AddRow({name, frameworks::AppName(app),
                    scenarios::FormatSeconds(dm.time_ns),
                    scenarios::FormatSeconds(ob.time_ns),
                    scenarios::FormatRatio(speedup)});
    }
  }
  table.Print();
  std::printf("\ngeomean speedup (Optane over cluster): %s (paper: 1.7x)\n",
              scenarios::FormatRatio(
                  scenarios::Geomean(speedups)).c_str());
  return 0;
}
