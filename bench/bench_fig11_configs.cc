// Reproduces Figure 11: six configurations per (graph, app):
//   DB: D-Galois, 256 hosts (CVC partitioning), all threads
//   DM: D-Galois, minimum hosts holding the graph (OEC), all threads
//   DS: D-Galois, minimum hosts, 80 threads total
//   OS: Optane PMM, same vertex-program algorithm as DS, 80 threads
//   OA: Optane PMM, vertex programs, 96 threads
//   OB: Optane PMM, best (non-vertex / asynchronous) algorithm, 96 threads
// Expected shapes: OS >= DS almost everywhere (same algorithm and
// resources, no communication); OB matches or beats even DB for bc, bfs,
// kcore and sssp; pr remains the cluster's win.

#include <cstdio>

#include "bench/cluster_common.h"
#include "pmg/scenarios/report.h"

namespace {

using namespace pmg;
using benchcluster::ClusterEngines;
using benchcluster::ClusterInputs;
using frameworks::App;
using frameworks::FrameworkKind;

constexpr uint32_t kPrRounds = 20;

SimNs OptaneRun(const frameworks::AppInputs& fin, App app, uint32_t threads,
                bool vertex_programs) {
  frameworks::RunConfig cfg;
  cfg.machine = memsim::OptanePmmConfig();
  cfg.threads = threads;
  cfg.pr_max_rounds = kPrRounds;
  cfg.force_vertex_programs = vertex_programs;
  return RunApp(FrameworkKind::kGalois, app, fin, cfg).time_ns;
}

}  // namespace

int main() {
  std::printf(
      "Figure 11: cluster configurations (DB/DM/DS) vs Optane PMM\n"
      "configurations (OS/OA/OB); times in seconds\n\n");
  for (const char* name : {"clueweb12", "uk14", "wdc12"}) {
    const scenarios::Scenario s = scenarios::MakeScenario(name);
    const ClusterInputs cin = ClusterInputs::Prepare(s);
    const frameworks::AppInputs fin =
        frameworks::AppInputs::Prepare(s.topo, s.represented_vertices);
    const uint32_t min_hosts = benchcluster::MinHosts(name);

    distsim::DistConfig db_cfg;
    db_cfg.hosts = 256;
    db_cfg.threads_per_host = 48;
    db_cfg.policy = distsim::PartitionPolicy::kCvc;
    db_cfg.host_machine = memsim::StampedeHostConfig();
    ClusterEngines db = ClusterEngines::Build(cin, db_cfg);

    distsim::DistConfig dm_cfg = db_cfg;
    dm_cfg.hosts = min_hosts;
    dm_cfg.policy = distsim::PartitionPolicy::kOec;
    ClusterEngines dm = ClusterEngines::Build(cin, dm_cfg);

    distsim::DistConfig ds_cfg = dm_cfg;
    ds_cfg.threads_per_host = std::max(1u, 80 / min_hosts);
    ClusterEngines ds = ClusterEngines::Build(cin, ds_cfg);

    scenarios::Table table(
        {"app", "DB", "DM", "DS", "OS", "OA", "OB"});
    for (App app : {App::kBc, App::kBfs, App::kCc, App::kKcore, App::kPr,
                    App::kSssp}) {
      table.AddRow(
          {frameworks::AppName(app),
           scenarios::FormatSeconds(
               RunCluster(db, app, cin, kPrRounds).time_ns),
           scenarios::FormatSeconds(
               RunCluster(dm, app, cin, kPrRounds).time_ns),
           scenarios::FormatSeconds(
               RunCluster(ds, app, cin, kPrRounds).time_ns),
           scenarios::FormatSeconds(OptaneRun(fin, app, 80, true)),
           scenarios::FormatSeconds(OptaneRun(fin, app, 96, true)),
           scenarios::FormatSeconds(OptaneRun(fin, app, 96, false))});
    }
    std::printf("(%s; DM/DS hosts = %u)\n", name, min_hosts);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
