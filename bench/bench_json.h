#ifndef PMG_BENCH_BENCH_JSON_H_
#define PMG_BENCH_BENCH_JSON_H_

// Shared BENCH_*.json emitter. A figure/table binary adds one row per
// measured cell and writes a schema-versioned document into the working
// directory (CI archives them as artifacts), so the paper numbers are
// machine-readable, not just table text.
//
//   pmg::bench::BenchJson out("fig5");
//   out.BeginRow();
//   out.writer().Key("graph").String("kron30");
//   ...
//   out.EndRow();
//   out.Write();  // -> BENCH_fig5.json

#include <cstdio>
#include <string>
#include <utility>

#include "pmg/trace/json.h"
#include "pmg/trace/trace_session.h"

namespace pmg::bench {

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    w_.BeginObject();
    w_.Key("schema_version").UInt(trace::kTraceSchemaVersion);
    w_.Key("bench").String(name_);
    w_.Key("rows").BeginArray();
  }

  void BeginRow() { w_.BeginObject(); }
  void EndRow() { w_.EndObject(); }
  /// The row under construction; add fields with Key(...).<value>().
  trace::JsonWriter& writer() { return w_; }

  /// Closes the document and writes BENCH_<name>.json. Returns the path
  /// (empty on I/O failure).
  std::string Write() {
    w_.EndArray();
    w_.EndObject();
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return "";
    const std::string& body = w_.str();
    const size_t n = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = n == body.size() && std::fputc('\n', f) != EOF &&
                    std::fclose(f) == 0;
    return ok ? path : "";
  }

 private:
  std::string name_;
  trace::JsonWriter w_;
};

}  // namespace pmg::bench

#endif  // PMG_BENCH_BENCH_JSON_H_
