// Servetrace overhead benchmark: the canonical burst+crash scenario run
// bare, and again with a pmg::servetrace::ServeTracer attached.
//
// The contract this enforces (loudly — a violation is exit 1, not a
// perf-gate delta): request tracing is host-side bookkeeping of
// already-priced events, so
//
//   - detached tracing costs zero: a run with no observer produces the
//     same bytes it did before the observer seam existed, and
//   - attached tracing changes no simulated number: the ServeReport and
//     Prometheus exposition are byte-identical with and without the
//     tracer.
//
// Emits BENCH_serve_trace.json for the CI perf-regression gate: the *_ns
// columns are simulated time and therefore exactly reproducible; the
// traced row must stay bit-equal to the detached row forever.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "pmg/faultsim/fault_schedule.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/serve/server.h"
#include "pmg/serve/workload.h"
#include "pmg/servetrace/servetrace.h"
#include "pmg/trace/bench_report.h"

namespace {

using pmg::MiB;
using pmg::serve::ServeConfig;
using pmg::serve::ServeReport;
using pmg::serve::Server;

/// The acceptance machine/graph pair of tests/serve and bench_serve_p99.
pmg::memsim::MachineConfig TinyConfig() {
  pmg::memsim::MachineConfig c;
  c.kind = pmg::memsim::MachineKind::kDramMain;
  c.name = "tiny";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(8);
  c.topology.pmm_bytes_per_socket = 0;
  c.cpu_cache_lines = 64;
  return c;
}

ServeConfig CanonicalConfig() {
  ServeConfig cfg;
  cfg.machine = TinyConfig();
  cfg.threads = 4;
  cfg.algo.label_policy.placement = pmg::memsim::Placement::kInterleaved;
  cfg.pr_rounds = 10;
  std::string error;
  if (!pmg::serve::WorkloadSpec::Parse("canonical", &cfg.workload, &error) ||
      !pmg::faultsim::FaultSchedule::Parse("crash@access:300000;seed=42",
                                           &cfg.faults, &error)) {
    std::fprintf(stderr, "bad canonical config: %s\n", error.c_str());
    std::abort();
  }
  return cfg;
}

void AddRow(pmg::trace::BenchJson* json, const char* config,
            const ServeReport& rep) {
  json->BeginRow();
  json->writer().Key("config").String(config);
  json->writer().Key("offered").UInt(rep.offered);
  json->writer().Key("answered").UInt(rep.completed + rep.completed_degraded);
  json->writer().Key("busy_ns").UInt(rep.busy_ns);
  json->writer().Key("total_ns").UInt(rep.total_ns);
  json->writer().Key("p50_ns").UInt(rep.p50_ns);
  json->writer().Key("p99_ns").UInt(rep.p99_ns);
  json->writer().Key("p999_ns").UInt(rep.p999_ns);
  json->EndRow();
}

}  // namespace

int main() {
  std::printf(
      "Servetrace overhead on the canonical burst+crash scenario\n"
      "(attaching the tracer must change no simulated number; a byte\n"
      " difference is a bug, not a regression)\n\n");

  pmg::graph::CsrTopology topo = pmg::graph::Rmat(8, 8, 7);
  pmg::graph::AssignRandomWeights(&topo, /*max_weight=*/9, /*seed=*/13);

  Server bare_server(topo, CanonicalConfig());
  const ServeReport bare = bare_server.Run();
  const std::string bare_json = bare.ToJson();
  const std::string bare_prom = bare_server.registry().PrometheusText();

  ServeConfig traced_cfg = CanonicalConfig();
  pmg::servetrace::ServeTracer tracer;
  traced_cfg.observer = &tracer;
  Server traced_server(topo, traced_cfg);
  const ServeReport traced = traced_server.Run();

  if (traced.ToJson() != bare_json ||
      traced_server.registry().PrometheusText() != bare_prom) {
    std::fprintf(stderr,
                 "FAIL: attaching the tracer changed the serve report or "
                 "metrics exposition\n");
    return 1;
  }

  const pmg::servetrace::ServeTailReport tail =
      pmg::servetrace::BuildTailReport(tracer);
  size_t spans = 0;
  for (const pmg::servetrace::RequestTimeline& t : tracer.timelines()) {
    spans += t.spans.size();
  }
  std::printf(
      "detached == traced: %llu requests, byte-identical report + metrics\n"
      "traced extras: %zu spans across %zu timelines, %zu selected for "
      "export, %zu tail rows\n",
      static_cast<unsigned long long>(bare.offered), spans,
      tracer.timelines().size(), tracer.SelectedRequests().size(),
      tail.rows.size());

  pmg::trace::BenchJson json("serve_trace");
  AddRow(&json, "detached", bare);
  AddRow(&json, "traced", traced);
  const std::string path = json.Write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
