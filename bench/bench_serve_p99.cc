// Serving-tail benchmark: the canonical burst+crash scenario, robust
// server vs naive baseline.
//
// The canonical workload (see pmg/serve/workload.cc) bursts to 6x a
// sustainable base rate for a quarter of each period and a crash lands
// mid-serving. The robust server — bounded deadline-aware queue, priced
// timeouts with backoff retries, hedged stragglers, graceful degradation —
// keeps its answered-latency tail and deadline-miss rate bounded; the
// naive baseline (unbounded FIFO, no timeout/retry/hedge/degrade) lets
// the burst backlog poison every later request.
//
// Emits BENCH_serve_p99.json for the CI perf-regression gate: the *_ns
// quantiles are simulated time and therefore exactly reproducible.

#include <cstdio>
#include <string>

#include "pmg/faultsim/fault_schedule.h"
#include "pmg/graph/generators.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/scenarios/report.h"
#include "pmg/serve/server.h"
#include "pmg/serve/workload.h"
#include "pmg/trace/bench_report.h"

namespace {

using pmg::MiB;
using pmg::serve::NaiveBaseline;
using pmg::serve::ServeConfig;
using pmg::serve::ServeKindRow;
using pmg::serve::ServeReport;
using pmg::serve::Server;

/// The acceptance machine/graph pair of tests/serve: a small 2-socket
/// DRAM machine serving the scale-free 256-vertex weighted graph.
pmg::memsim::MachineConfig TinyConfig() {
  pmg::memsim::MachineConfig c;
  c.kind = pmg::memsim::MachineKind::kDramMain;
  c.name = "tiny";
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 2;
  c.topology.smt = 1;
  c.topology.dram_bytes_per_socket = MiB(8);
  c.topology.pmm_bytes_per_socket = 0;
  c.cpu_cache_lines = 64;
  return c;
}

ServeConfig CanonicalConfig() {
  ServeConfig cfg;
  cfg.machine = TinyConfig();
  cfg.threads = 4;
  cfg.algo.label_policy.placement = pmg::memsim::Placement::kInterleaved;
  cfg.pr_rounds = 10;
  std::string error;
  if (!pmg::serve::WorkloadSpec::Parse("canonical", &cfg.workload, &error) ||
      !pmg::faultsim::FaultSchedule::Parse("crash@access:300000;seed=42",
                                           &cfg.faults, &error)) {
    std::fprintf(stderr, "bad canonical config: %s\n", error.c_str());
    std::abort();
  }
  return cfg;
}

void AddRow(pmg::trace::BenchJson* json, const char* server,
            const ServeReport& rep) {
  auto row = [&](const char* kind, uint64_t offered, uint64_t answered,
                 uint64_t shed, uint64_t failed, uint64_t missed,
                 pmg::SimNs p50, pmg::SimNs p99, pmg::SimNs p999) {
    json->BeginRow();
    json->writer().Key("server").String(server);
    json->writer().Key("kind").String(kind);
    json->writer().Key("offered").UInt(offered);
    json->writer().Key("answered").UInt(answered);
    json->writer().Key("shed").UInt(shed);
    json->writer().Key("failed").UInt(failed);
    json->writer().Key("deadline_missed").UInt(missed);
    json->writer().Key("p50_ns").UInt(p50);
    json->writer().Key("p99_ns").UInt(p99);
    json->writer().Key("p999_ns").UInt(p999);
    json->EndRow();
  };
  row("all", rep.offered, rep.completed + rep.completed_degraded, rep.shed,
      rep.failed, rep.deadline_missed, rep.p50_ns, rep.p99_ns, rep.p999_ns);
  for (const ServeKindRow& k : rep.kinds) {
    if (k.offered == 0) continue;
    row(pmg::serve::QueryKindName(k.kind), k.offered,
        k.completed + k.degraded, k.shed, k.failed, k.deadline_missed,
        k.p50_ns, k.p99_ns, k.p999_ns);
  }
}

}  // namespace

int main() {
  std::printf(
      "Serving tail latency under burst + crash: robust vs naive\n"
      "(canonical workload; the robust server must meet the deadline-miss\n"
      " budget the naive unbounded-queue baseline blows through)\n\n");

  pmg::graph::CsrTopology topo = pmg::graph::Rmat(8, 8, 7);
  pmg::graph::AssignRandomWeights(&topo, /*max_weight=*/9, /*seed=*/13);

  pmg::trace::BenchJson json("serve_p99");

  Server robust_server(topo, CanonicalConfig());
  const ServeReport robust = robust_server.Run();
  std::printf("robust server:\n");
  pmg::scenarios::PrintServeReport(robust);
  AddRow(&json, "robust", robust);

  Server naive_server(topo, NaiveBaseline(CanonicalConfig()));
  const ServeReport naive = naive_server.Run();
  std::printf("\nnaive baseline:\n");
  pmg::scenarios::PrintServeReport(naive);
  AddRow(&json, "naive", naive);

  std::printf("\nrobust p99 %.3f ms vs naive p99 %.3f ms (%.1fx), "
              "miss %.1f%% vs %.1f%%\n",
              static_cast<double>(robust.p99_ns) / 1e6,
              static_cast<double>(naive.p99_ns) / 1e6,
              robust.p99_ns > 0
                  ? static_cast<double>(naive.p99_ns) /
                        static_cast<double>(robust.p99_ns)
                  : 0.0,
              robust.deadline_miss_pct, naive.deadline_miss_pct);

  const std::string path = json.Write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
