// Reproduces Table 5: GridGraph-like out-of-core execution with Optane
// PMM as app-direct storage (AD) vs Galois with PMM as memory-mode main
// memory (MM), for bfs and cc on clueweb12 and uk14. Both systems see the
// same id-scattered graphs (real crawls do not have conveniently
// clustered ids). Expected shape: MM is orders of magnitude faster — the
// out-of-core engine re-streams edge blocks every round of a
// high-diameter computation and supports only vertex programs.

#include <cstdio>

#include "pmg/frameworks/framework.h"
#include "pmg/memsim/machine_configs.h"
#include "pmg/outofcore/grid_engine.h"
#include "pmg/scenarios/report.h"
#include "pmg/scenarios/scenarios.h"

int main() {
  using namespace pmg;
  using frameworks::App;
  using frameworks::FrameworkKind;

  std::printf(
      "Table 5: GridGraph on app-direct PMM (AD) vs Galois in memory mode "
      "(MM)\n(paper: 890x for bfs and 488x for cc on clueweb12; 268x for "
      "cc on uk14;\n bfs on uk14 did not finish in 2 hours)\n\n");
  scenarios::Table table({"graph", "app", "GridGraph AD (s)",
                          "Galois MM (s)", "AD/MM"});
  for (const char* name : {"clueweb12", "uk14"}) {
    const scenarios::Scenario s = scenarios::MakeScenario(name);
    const graph::CsrTopology scattered = scenarios::ScatterIds(s.topo, 99);
    const frameworks::AppInputs inputs =
        frameworks::AppInputs::Prepare(scattered, s.represented_vertices);
    for (App app : {App::kBfs, App::kCc}) {
      // Out-of-core run.
      memsim::Machine ad_machine(memsim::AppDirectConfig());
      outofcore::GridConfig grid;
      grid.grid_p = 64;
      grid.threads = 96;
      SimNs ad_ns = 0;
      if (app == App::kBfs) {
        outofcore::GridEngine engine(&ad_machine, scattered, grid);
        ad_ns = engine.Bfs(inputs.source, nullptr).time_ns;
      } else {
        outofcore::GridEngine engine(&ad_machine, inputs.sym, grid);
        ad_ns = engine.Cc(nullptr).time_ns;
      }
      // Memory-mode run.
      frameworks::RunConfig cfg;
      cfg.machine = memsim::OptanePmmConfig();
      cfg.threads = 96;
      const SimNs mm_ns =
          RunApp(FrameworkKind::kGalois, app, inputs, cfg).time_ns;
      table.AddRow({name, frameworks::AppName(app),
                    scenarios::FormatSeconds(ad_ns),
                    scenarios::FormatSeconds(mm_ns),
                    scenarios::FormatRatio(static_cast<double>(ad_ns) /
                                           static_cast<double>(mm_ns))});
    }
  }
  table.Print();
  std::printf(
      "\nwdc12 is omitted: GridGraph's signed 32-bit node ids cannot\n"
      "represent its %llu vertices (paper Section 6.4).\n",
      3563000000ull);
  return 0;
}
