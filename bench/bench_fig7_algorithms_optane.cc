// Reproduces Figure 7: execution time of different data-driven algorithms
// in the Galois-like runtime on the Optane PMM machine, 96 threads.
// Expected shapes: Direction-Opt wins bfs on low-diameter rmat32 but
// Sparse-WL wins on the high-diameter web crawls; LabelProp-SC beats the
// dense vertex program for cc; asynchronous Delta-Step beats the dense
// data-driven sssp everywhere, most dramatically on high diameters.

#include <cstdio>

#include "bench/variants_common.h"
#include "pmg/memsim/machine_configs.h"

int main() {
  std::printf(
      "Figure 7: data-driven algorithm variants on Optane PMM (96 "
      "threads)\n");
  pmg::trace::BenchJson json("fig7");
  pmg::benchvariants::RunVariantStudy(pmg::memsim::OptanePmmConfig(), 96,
                                      &json);
  const std::string path = json.Write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
