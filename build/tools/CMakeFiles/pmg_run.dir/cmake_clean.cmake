file(REMOVE_RECURSE
  "CMakeFiles/pmg_run.dir/pmg_run.cc.o"
  "CMakeFiles/pmg_run.dir/pmg_run.cc.o.d"
  "pmg_run"
  "pmg_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmg_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
