# Empty dependencies file for pmg_run.
# This may be replaced when dependencies are built.
