file(REMOVE_RECURSE
  "CMakeFiles/memsim_test.dir/memsim/machine_test.cc.o"
  "CMakeFiles/memsim_test.dir/memsim/machine_test.cc.o.d"
  "CMakeFiles/memsim_test.dir/memsim/migration_test.cc.o"
  "CMakeFiles/memsim_test.dir/memsim/migration_test.cc.o.d"
  "CMakeFiles/memsim_test.dir/memsim/near_memory_test.cc.o"
  "CMakeFiles/memsim_test.dir/memsim/near_memory_test.cc.o.d"
  "CMakeFiles/memsim_test.dir/memsim/page_table_test.cc.o"
  "CMakeFiles/memsim_test.dir/memsim/page_table_test.cc.o.d"
  "CMakeFiles/memsim_test.dir/memsim/tlb_test.cc.o"
  "CMakeFiles/memsim_test.dir/memsim/tlb_test.cc.o.d"
  "memsim_test"
  "memsim_test.pdb"
  "memsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
