file(REMOVE_RECURSE
  "CMakeFiles/outofcore_test.dir/outofcore/grid_engine_test.cc.o"
  "CMakeFiles/outofcore_test.dir/outofcore/grid_engine_test.cc.o.d"
  "outofcore_test"
  "outofcore_test.pdb"
  "outofcore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outofcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
