file(REMOVE_RECURSE
  "CMakeFiles/distsim_test.dir/distsim/dist_corpus_test.cc.o"
  "CMakeFiles/distsim_test.dir/distsim/dist_corpus_test.cc.o.d"
  "CMakeFiles/distsim_test.dir/distsim/dist_engine_test.cc.o"
  "CMakeFiles/distsim_test.dir/distsim/dist_engine_test.cc.o.d"
  "distsim_test"
  "distsim_test.pdb"
  "distsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
