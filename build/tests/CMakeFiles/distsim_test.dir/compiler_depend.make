# Empty compiler generated dependencies file for distsim_test.
# This may be replaced when dependencies are built.
