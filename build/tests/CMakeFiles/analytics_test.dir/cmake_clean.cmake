file(REMOVE_RECURSE
  "CMakeFiles/analytics_test.dir/analytics/bfs_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/bfs_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/cc_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/cc_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/kcore_tc_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/kcore_tc_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/metamorphic_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/metamorphic_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/pr_bc_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/pr_bc_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/sssp_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/sssp_test.cc.o.d"
  "analytics_test"
  "analytics_test.pdb"
  "analytics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
