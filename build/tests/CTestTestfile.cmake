# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/memsim_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/frameworks_test[1]_include.cmake")
include("/root/repo/build/tests/outofcore_test[1]_include.cmake")
include("/root/repo/build/tests/distsim_test[1]_include.cmake")
include("/root/repo/build/tests/scenarios_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
