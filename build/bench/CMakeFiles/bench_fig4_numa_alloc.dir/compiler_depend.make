# Empty compiler generated dependencies file for bench_fig4_numa_alloc.
# This may be replaced when dependencies are built.
