file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_numa_alloc.dir/bench_fig4_numa_alloc.cc.o"
  "CMakeFiles/bench_fig4_numa_alloc.dir/bench_fig4_numa_alloc.cc.o.d"
  "bench_fig4_numa_alloc"
  "bench_fig4_numa_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_numa_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
