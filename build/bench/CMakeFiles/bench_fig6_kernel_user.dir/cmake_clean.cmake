file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_kernel_user.dir/bench_fig6_kernel_user.cc.o"
  "CMakeFiles/bench_fig6_kernel_user.dir/bench_fig6_kernel_user.cc.o.d"
  "bench_fig6_kernel_user"
  "bench_fig6_kernel_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_kernel_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
