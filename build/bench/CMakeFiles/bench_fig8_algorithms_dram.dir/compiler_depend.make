# Empty compiler generated dependencies file for bench_fig8_algorithms_dram.
# This may be replaced when dependencies are built.
