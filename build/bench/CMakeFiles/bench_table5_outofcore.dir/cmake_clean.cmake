file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_outofcore.dir/bench_table5_outofcore.cc.o"
  "CMakeFiles/bench_table5_outofcore.dir/bench_table5_outofcore.cc.o.d"
  "bench_table5_outofcore"
  "bench_table5_outofcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_outofcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
