
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_outofcore.cc" "bench/CMakeFiles/bench_table5_outofcore.dir/bench_table5_outofcore.cc.o" "gcc" "bench/CMakeFiles/bench_table5_outofcore.dir/bench_table5_outofcore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmg/scenarios/CMakeFiles/pmg_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/pmg/frameworks/CMakeFiles/pmg_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/pmg/analytics/CMakeFiles/pmg_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/pmg/distsim/CMakeFiles/pmg_distsim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmg/outofcore/CMakeFiles/pmg_outofcore.dir/DependInfo.cmake"
  "/root/repo/build/src/pmg/graph/CMakeFiles/pmg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pmg/memsim/CMakeFiles/pmg_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
