# Empty dependencies file for bench_table5_outofcore.
# This may be replaced when dependencies are built.
