file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_frameworks.dir/bench_fig9_frameworks.cc.o"
  "CMakeFiles/bench_fig9_frameworks.dir/bench_fig9_frameworks.cc.o.d"
  "bench_fig9_frameworks"
  "bench_fig9_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
