file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cluster.dir/bench_table4_cluster.cc.o"
  "CMakeFiles/bench_table4_cluster.dir/bench_table4_cluster.cc.o.d"
  "bench_table4_cluster"
  "bench_table4_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
