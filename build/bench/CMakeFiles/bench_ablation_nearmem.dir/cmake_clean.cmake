file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nearmem.dir/bench_ablation_nearmem.cc.o"
  "CMakeFiles/bench_ablation_nearmem.dir/bench_ablation_nearmem.cc.o.d"
  "bench_ablation_nearmem"
  "bench_ablation_nearmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nearmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
