# Empty compiler generated dependencies file for bench_ablation_nearmem.
# This may be replaced when dependencies are built.
