file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_bandwidth.dir/bench_table1_bandwidth.cc.o"
  "CMakeFiles/bench_table1_bandwidth.dir/bench_table1_bandwidth.cc.o.d"
  "bench_table1_bandwidth"
  "bench_table1_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
