# Empty dependencies file for bench_table3_inputs.
# This may be replaced when dependencies are built.
