file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_configs.dir/bench_fig11_configs.cc.o"
  "CMakeFiles/bench_fig11_configs.dir/bench_fig11_configs.cc.o.d"
  "bench_fig11_configs"
  "bench_fig11_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
