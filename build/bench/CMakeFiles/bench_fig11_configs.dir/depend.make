# Empty dependencies file for bench_fig11_configs.
# This may be replaced when dependencies are built.
