# Empty compiler generated dependencies file for bench_fig7_algorithms_optane.
# This may be replaced when dependencies are built.
