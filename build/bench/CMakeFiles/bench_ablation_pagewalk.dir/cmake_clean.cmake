file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pagewalk.dir/bench_ablation_pagewalk.cc.o"
  "CMakeFiles/bench_ablation_pagewalk.dir/bench_ablation_pagewalk.cc.o.d"
  "bench_ablation_pagewalk"
  "bench_ablation_pagewalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pagewalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
