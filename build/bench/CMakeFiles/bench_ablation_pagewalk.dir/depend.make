# Empty dependencies file for bench_ablation_pagewalk.
# This may be replaced when dependencies are built.
