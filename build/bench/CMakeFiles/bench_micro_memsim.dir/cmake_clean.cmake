file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_memsim.dir/bench_micro_memsim.cc.o"
  "CMakeFiles/bench_micro_memsim.dir/bench_micro_memsim.cc.o.d"
  "bench_micro_memsim"
  "bench_micro_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
