file(REMOVE_RECURSE
  "CMakeFiles/memory_tuning.dir/memory_tuning.cpp.o"
  "CMakeFiles/memory_tuning.dir/memory_tuning.cpp.o.d"
  "memory_tuning"
  "memory_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
