# Empty dependencies file for outofcore_vs_memory.
# This may be replaced when dependencies are built.
