file(REMOVE_RECURSE
  "CMakeFiles/outofcore_vs_memory.dir/outofcore_vs_memory.cpp.o"
  "CMakeFiles/outofcore_vs_memory.dir/outofcore_vs_memory.cpp.o.d"
  "outofcore_vs_memory"
  "outofcore_vs_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outofcore_vs_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
