file(REMOVE_RECURSE
  "CMakeFiles/web_crawl_study.dir/web_crawl_study.cpp.o"
  "CMakeFiles/web_crawl_study.dir/web_crawl_study.cpp.o.d"
  "web_crawl_study"
  "web_crawl_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_crawl_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
