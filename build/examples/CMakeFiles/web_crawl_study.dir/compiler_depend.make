# Empty compiler generated dependencies file for web_crawl_study.
# This may be replaced when dependencies are built.
