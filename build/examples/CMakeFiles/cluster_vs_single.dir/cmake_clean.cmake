file(REMOVE_RECURSE
  "CMakeFiles/cluster_vs_single.dir/cluster_vs_single.cpp.o"
  "CMakeFiles/cluster_vs_single.dir/cluster_vs_single.cpp.o.d"
  "cluster_vs_single"
  "cluster_vs_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_vs_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
