# Empty dependencies file for cluster_vs_single.
# This may be replaced when dependencies are built.
