# Empty compiler generated dependencies file for pmg_scenarios.
# This may be replaced when dependencies are built.
