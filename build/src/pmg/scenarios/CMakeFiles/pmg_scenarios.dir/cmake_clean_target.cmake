file(REMOVE_RECURSE
  "libpmg_scenarios.a"
)
