file(REMOVE_RECURSE
  "CMakeFiles/pmg_scenarios.dir/report.cc.o"
  "CMakeFiles/pmg_scenarios.dir/report.cc.o.d"
  "CMakeFiles/pmg_scenarios.dir/scenarios.cc.o"
  "CMakeFiles/pmg_scenarios.dir/scenarios.cc.o.d"
  "libpmg_scenarios.a"
  "libpmg_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmg_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
