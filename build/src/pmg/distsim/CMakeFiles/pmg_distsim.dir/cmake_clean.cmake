file(REMOVE_RECURSE
  "CMakeFiles/pmg_distsim.dir/dist_apps.cc.o"
  "CMakeFiles/pmg_distsim.dir/dist_apps.cc.o.d"
  "CMakeFiles/pmg_distsim.dir/dist_engine.cc.o"
  "CMakeFiles/pmg_distsim.dir/dist_engine.cc.o.d"
  "libpmg_distsim.a"
  "libpmg_distsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmg_distsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
