# Empty dependencies file for pmg_distsim.
# This may be replaced when dependencies are built.
