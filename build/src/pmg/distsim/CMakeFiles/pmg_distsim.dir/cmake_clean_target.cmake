file(REMOVE_RECURSE
  "libpmg_distsim.a"
)
