# Empty compiler generated dependencies file for pmg_graph.
# This may be replaced when dependencies are built.
