file(REMOVE_RECURSE
  "libpmg_graph.a"
)
