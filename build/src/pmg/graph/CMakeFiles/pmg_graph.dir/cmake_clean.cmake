file(REMOVE_RECURSE
  "CMakeFiles/pmg_graph.dir/csr_graph.cc.o"
  "CMakeFiles/pmg_graph.dir/csr_graph.cc.o.d"
  "CMakeFiles/pmg_graph.dir/generators.cc.o"
  "CMakeFiles/pmg_graph.dir/generators.cc.o.d"
  "CMakeFiles/pmg_graph.dir/graph_io.cc.o"
  "CMakeFiles/pmg_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/pmg_graph.dir/properties.cc.o"
  "CMakeFiles/pmg_graph.dir/properties.cc.o.d"
  "CMakeFiles/pmg_graph.dir/topology.cc.o"
  "CMakeFiles/pmg_graph.dir/topology.cc.o.d"
  "libpmg_graph.a"
  "libpmg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
