
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmg/graph/csr_graph.cc" "src/pmg/graph/CMakeFiles/pmg_graph.dir/csr_graph.cc.o" "gcc" "src/pmg/graph/CMakeFiles/pmg_graph.dir/csr_graph.cc.o.d"
  "/root/repo/src/pmg/graph/generators.cc" "src/pmg/graph/CMakeFiles/pmg_graph.dir/generators.cc.o" "gcc" "src/pmg/graph/CMakeFiles/pmg_graph.dir/generators.cc.o.d"
  "/root/repo/src/pmg/graph/graph_io.cc" "src/pmg/graph/CMakeFiles/pmg_graph.dir/graph_io.cc.o" "gcc" "src/pmg/graph/CMakeFiles/pmg_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/pmg/graph/properties.cc" "src/pmg/graph/CMakeFiles/pmg_graph.dir/properties.cc.o" "gcc" "src/pmg/graph/CMakeFiles/pmg_graph.dir/properties.cc.o.d"
  "/root/repo/src/pmg/graph/topology.cc" "src/pmg/graph/CMakeFiles/pmg_graph.dir/topology.cc.o" "gcc" "src/pmg/graph/CMakeFiles/pmg_graph.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmg/memsim/CMakeFiles/pmg_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
