file(REMOVE_RECURSE
  "libpmg_outofcore.a"
)
