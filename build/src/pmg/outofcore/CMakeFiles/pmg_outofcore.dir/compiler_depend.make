# Empty compiler generated dependencies file for pmg_outofcore.
# This may be replaced when dependencies are built.
