file(REMOVE_RECURSE
  "CMakeFiles/pmg_outofcore.dir/grid_engine.cc.o"
  "CMakeFiles/pmg_outofcore.dir/grid_engine.cc.o.d"
  "libpmg_outofcore.a"
  "libpmg_outofcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmg_outofcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
