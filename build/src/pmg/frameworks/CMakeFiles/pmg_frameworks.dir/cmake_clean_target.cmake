file(REMOVE_RECURSE
  "libpmg_frameworks.a"
)
