# Empty compiler generated dependencies file for pmg_frameworks.
# This may be replaced when dependencies are built.
