file(REMOVE_RECURSE
  "CMakeFiles/pmg_frameworks.dir/framework.cc.o"
  "CMakeFiles/pmg_frameworks.dir/framework.cc.o.d"
  "libpmg_frameworks.a"
  "libpmg_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmg_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
