
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmg/analytics/bc.cc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/bc.cc.o" "gcc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/bc.cc.o.d"
  "/root/repo/src/pmg/analytics/bfs.cc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/bfs.cc.o" "gcc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/bfs.cc.o.d"
  "/root/repo/src/pmg/analytics/cc.cc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/cc.cc.o" "gcc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/cc.cc.o.d"
  "/root/repo/src/pmg/analytics/kcore.cc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/kcore.cc.o" "gcc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/kcore.cc.o.d"
  "/root/repo/src/pmg/analytics/pagerank.cc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/pagerank.cc.o" "gcc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/pagerank.cc.o.d"
  "/root/repo/src/pmg/analytics/reference.cc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/reference.cc.o" "gcc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/reference.cc.o.d"
  "/root/repo/src/pmg/analytics/sssp.cc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/sssp.cc.o" "gcc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/sssp.cc.o.d"
  "/root/repo/src/pmg/analytics/tc.cc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/tc.cc.o" "gcc" "src/pmg/analytics/CMakeFiles/pmg_analytics.dir/tc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmg/graph/CMakeFiles/pmg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pmg/memsim/CMakeFiles/pmg_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
