file(REMOVE_RECURSE
  "CMakeFiles/pmg_analytics.dir/bc.cc.o"
  "CMakeFiles/pmg_analytics.dir/bc.cc.o.d"
  "CMakeFiles/pmg_analytics.dir/bfs.cc.o"
  "CMakeFiles/pmg_analytics.dir/bfs.cc.o.d"
  "CMakeFiles/pmg_analytics.dir/cc.cc.o"
  "CMakeFiles/pmg_analytics.dir/cc.cc.o.d"
  "CMakeFiles/pmg_analytics.dir/kcore.cc.o"
  "CMakeFiles/pmg_analytics.dir/kcore.cc.o.d"
  "CMakeFiles/pmg_analytics.dir/pagerank.cc.o"
  "CMakeFiles/pmg_analytics.dir/pagerank.cc.o.d"
  "CMakeFiles/pmg_analytics.dir/reference.cc.o"
  "CMakeFiles/pmg_analytics.dir/reference.cc.o.d"
  "CMakeFiles/pmg_analytics.dir/sssp.cc.o"
  "CMakeFiles/pmg_analytics.dir/sssp.cc.o.d"
  "CMakeFiles/pmg_analytics.dir/tc.cc.o"
  "CMakeFiles/pmg_analytics.dir/tc.cc.o.d"
  "libpmg_analytics.a"
  "libpmg_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmg_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
