# Empty dependencies file for pmg_analytics.
# This may be replaced when dependencies are built.
