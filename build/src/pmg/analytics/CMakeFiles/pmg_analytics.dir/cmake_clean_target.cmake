file(REMOVE_RECURSE
  "libpmg_analytics.a"
)
