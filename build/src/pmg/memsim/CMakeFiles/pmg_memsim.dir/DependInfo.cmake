
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmg/memsim/cpu_cache.cc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/cpu_cache.cc.o" "gcc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/cpu_cache.cc.o.d"
  "/root/repo/src/pmg/memsim/machine.cc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/machine.cc.o" "gcc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/machine.cc.o.d"
  "/root/repo/src/pmg/memsim/machine_configs.cc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/machine_configs.cc.o" "gcc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/machine_configs.cc.o.d"
  "/root/repo/src/pmg/memsim/near_memory.cc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/near_memory.cc.o" "gcc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/near_memory.cc.o.d"
  "/root/repo/src/pmg/memsim/page_table.cc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/page_table.cc.o" "gcc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/page_table.cc.o.d"
  "/root/repo/src/pmg/memsim/stats.cc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/stats.cc.o" "gcc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/stats.cc.o.d"
  "/root/repo/src/pmg/memsim/timings.cc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/timings.cc.o" "gcc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/timings.cc.o.d"
  "/root/repo/src/pmg/memsim/tlb.cc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/tlb.cc.o" "gcc" "src/pmg/memsim/CMakeFiles/pmg_memsim.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
