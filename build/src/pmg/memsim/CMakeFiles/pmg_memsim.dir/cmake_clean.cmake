file(REMOVE_RECURSE
  "CMakeFiles/pmg_memsim.dir/cpu_cache.cc.o"
  "CMakeFiles/pmg_memsim.dir/cpu_cache.cc.o.d"
  "CMakeFiles/pmg_memsim.dir/machine.cc.o"
  "CMakeFiles/pmg_memsim.dir/machine.cc.o.d"
  "CMakeFiles/pmg_memsim.dir/machine_configs.cc.o"
  "CMakeFiles/pmg_memsim.dir/machine_configs.cc.o.d"
  "CMakeFiles/pmg_memsim.dir/near_memory.cc.o"
  "CMakeFiles/pmg_memsim.dir/near_memory.cc.o.d"
  "CMakeFiles/pmg_memsim.dir/page_table.cc.o"
  "CMakeFiles/pmg_memsim.dir/page_table.cc.o.d"
  "CMakeFiles/pmg_memsim.dir/stats.cc.o"
  "CMakeFiles/pmg_memsim.dir/stats.cc.o.d"
  "CMakeFiles/pmg_memsim.dir/timings.cc.o"
  "CMakeFiles/pmg_memsim.dir/timings.cc.o.d"
  "CMakeFiles/pmg_memsim.dir/tlb.cc.o"
  "CMakeFiles/pmg_memsim.dir/tlb.cc.o.d"
  "libpmg_memsim.a"
  "libpmg_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmg_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
