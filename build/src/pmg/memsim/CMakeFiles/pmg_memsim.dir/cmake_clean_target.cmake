file(REMOVE_RECURSE
  "libpmg_memsim.a"
)
