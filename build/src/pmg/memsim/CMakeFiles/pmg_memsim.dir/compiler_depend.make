# Empty compiler generated dependencies file for pmg_memsim.
# This may be replaced when dependencies are built.
