# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("pmg/memsim")
subdirs("pmg/runtime")
subdirs("pmg/graph")
subdirs("pmg/analytics")
subdirs("pmg/frameworks")
subdirs("pmg/outofcore")
subdirs("pmg/distsim")
subdirs("pmg/scenarios")
