#ifndef PMG_RUNTIME_PER_THREAD_H_
#define PMG_RUNTIME_PER_THREAD_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pmg/common/types.h"

/// \file per_thread.h
/// Per-virtual-thread accumulators for parallel bodies. Bulk-synchronous
/// kernels often need a host-side "did anything change" flag or a total
/// counter; writing one shared variable from every virtual thread is
/// benign while bodies execute sequentially, and bodies *stay*
/// sequential — host parallelism lives in the machine's phased pricing
/// engine, not in body dispatch (docs/determinism.md). These helpers
/// still give each virtual thread its own slot and reduce in
/// thread-index order, so results are bit-exact regardless of execution
/// order — which also keeps pmg_lint's pmg-atomic-shared-write check
/// clean and the door open for parallel body experiments.

namespace pmg::runtime {

/// A monotone convergence flag: any virtual thread can set it during a
/// parallel region; the host reads the OR after the region completes.
class PerThreadFlag {
 public:
  explicit PerThreadFlag(uint32_t threads) : set_(threads, 0) {}

  void Mark(ThreadId t) { set_[t] = 1; }
  void Reset() { std::fill(set_.begin(), set_.end(), 0); }
  bool Any() const {
    return std::find(set_.begin(), set_.end(), uint8_t{1}) != set_.end();
  }

 private:
  std::vector<uint8_t> set_;
};

/// A per-thread partial sum, reduced in thread-index order. Exact for
/// integral T; for floating point the reduction order differs from a
/// single shared accumulator, so switching an existing kernel changes
/// low bits — use only where that is acceptable.
template <typename T>
class PerThreadSum {
 public:
  explicit PerThreadSum(uint32_t threads) : parts_(threads, T{}) {}

  void Add(ThreadId t, T delta) { parts_[t] += delta; }
  T Total() const {
    T sum{};
    for (const T& p : parts_) sum += p;
    return sum;
  }

 private:
  std::vector<T> parts_;
};

}  // namespace pmg::runtime

#endif  // PMG_RUNTIME_PER_THREAD_H_
