#ifndef PMG_RUNTIME_WORKLIST_H_
#define PMG_RUNTIME_WORKLIST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pmg/common/check.h"
#include "pmg/common/types.h"
#include "pmg/memsim/machine.h"
#include "pmg/metrics/hooks.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"

/// \file worklist.h
/// Worklists for data-driven graph algorithms (Section 5.1).
///
///   - DenseWorklist: a |V|-sized byte-vector frontier (what Ligra/GBBS,
///     GAP and GraphIt use). Cheap membership, but every round costs O(|V|)
///     memory traffic to scan and clear — ruinous on high-diameter graphs
///     with sparse frontiers.
///   - SparseWorklist: per-thread chunked bags with stealing (Galois).
///     Traffic proportional to the number of *active* vertices.
///   - BucketWorklist: priority buckets over sparse bags (Galois OBIM),
///     enabling asynchronous delta-stepping.
///
/// Worklist memory itself is costed through a NUMA-local scratch ring, so
/// the footprint difference between dense and sparse scheduling shows up
/// in simulated time, exactly as the paper argues.

namespace pmg::runtime {

/// Charges worklist push/pop traffic to the machine: each thread owns a
/// slice of a first-touch (NUMA-local) scratch region and cycles through
/// it sequentially, modelling chunked bag storage.
class CostRing {
 public:
  /// Default scratch policy: NUMA-local (first touch) huge pages, the
  /// allocation Galois's runtime makes for its chunked bags.
  static memsim::PagePolicy DefaultPolicy() {
    memsim::PagePolicy policy;
    policy.placement = memsim::Placement::kBlocked;
    policy.page_size = memsim::PageSizeClass::k2M;
    return policy;
  }

  // Each thread gets its own scratch region (chunk pools are per-thread
  // allocations in real runtimes, so first-touch keeps them NUMA-local
  // under any page size). The slice is sized for the 1/16384-scaled
  // machines: big enough to defeat line reuse, small enough that worklist
  // scratch stays a sliver of the scaled DRAM capacity.
  CostRing(memsim::Machine* machine, uint32_t threads, std::string_view name,
           const memsim::PagePolicy& policy = DefaultPolicy(),
           uint64_t slice_bytes = 16 * 1024)
      : machine_(machine), slice_bytes_(slice_bytes), cursors_(threads, 0) {
    regions_.reserve(threads);
    bases_.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      regions_.push_back(machine_->Alloc(slice_bytes_, policy, name));
      bases_.push_back(machine_->BaseOf(regions_.back()));
    }
  }

  ~CostRing() {
    for (memsim::RegionId r : regions_) machine_->Free(r);
  }

  CostRing(const CostRing&) = delete;
  CostRing& operator=(const CostRing&) = delete;

  void Charge(ThreadId t, uint32_t bytes, AccessType type) {
    PMG_CHECK_MSG(bytes <= slice_bytes_,
                  "worklist item (%u bytes) larger than its scratch slice "
                  "(%llu bytes)",
                  bytes, static_cast<unsigned long long>(slice_bytes_));
    uint64_t& cur = cursors_[t];
    // Wrap before charging so the access always stays inside the slice
    // (charging first and wrapping after can run past the region end).
    if (cur + bytes > slice_bytes_) cur = 0;
    machine_->Access(t, bases_[t] + cur, bytes, type);
    cur += bytes;
  }

 private:
  memsim::Machine* machine_;
  std::vector<memsim::RegionId> regions_;
  std::vector<VirtAddr> bases_;
  uint64_t slice_bytes_;
  std::vector<uint64_t> cursors_;
};

/// Bit-vector frontier of the bulk-synchronous vertex-program systems.
class DenseWorklist {
 public:
  DenseWorklist(memsim::Machine* machine, uint64_t vertices,
                const memsim::PagePolicy& policy, std::string_view name)
      : cur_(machine, vertices, policy, std::string(name) + ".cur"),
        next_(machine, vertices, policy, std::string(name) + ".next") {
    // Frontier flags start clear; initialization is part of the measured
    // footprint (two |V| byte arrays).
    for (uint64_t v = 0; v < vertices; ++v) {
      cur_.raw()[v] = 0;
      next_.raw()[v] = 0;
    }
  }

  uint64_t size() const { return cur_.size(); }
  uint64_t ActiveCount() const { return cur_count_; }
  bool Empty() const { return cur_count_ == 0; }

  /// Marks `v` active for the *next* round. Any thread may activate any
  /// vertex, so the flag test-and-set is atomic (real frontiers use a CAS
  /// or an idempotent atomic store on the byte).
  void Activate(ThreadId t, uint64_t v) {
    if (next_.GetAtomic(t, v) == 0) {
      next_.SetAtomic(t, v, 1);
      ++next_count_;
      metrics::CountWorklistPush(t);
    }
  }

  /// Marks `v` active in the *current* round (initial frontier).
  void ActivateCur(ThreadId t, uint64_t v) {
    if (cur_.GetAtomic(t, v) == 0) {
      cur_.SetAtomic(t, v, 1);
      ++cur_count_;
      metrics::CountWorklistPush(t);
    }
  }

  bool IsActive(ThreadId t, uint64_t v) const { return cur_.Get(t, v) != 0; }

  /// Ends a round: next becomes current; the stale frontier is cleared
  /// with a full costed sweep — the O(|V|)-per-round tax of dense
  /// worklists.
  void Advance(Runtime& rt) {
    std::swap(cur_, next_);
    cur_count_ = next_count_;
    next_count_ = 0;
    metrics::ObserveWorklistOccupancy(cur_count_);
    rt.ParallelFor(0, next_.size(), [&](ThreadId t, uint64_t v) {
      next_.Set(t, v, 0);
    });
  }

  /// Applies `body(t, v)` to every *active* vertex by scanning all |V|
  /// flags (dense scheduling always pays the scan). One epoch.
  template <typename Body>
  void ForEachActive(Runtime& rt, Body&& body) {
    rt.ParallelFor(0, cur_.size(), [&](ThreadId t, uint64_t v) {
      if (cur_.Get(t, v) != 0) {
        metrics::CountWorklistPop(t, /*stolen=*/false);
        body(t, v);
      }
    });
  }

  /// Uncosted view of the current-round flag array, for checkpointing the
  /// frontier outside the measured loop body.
  const NumaArray<uint8_t>& cur_flags() const { return cur_; }

  /// Rebuilds the frontier from a checkpointed flag array with a costed
  /// sweep (crash recovery); `active` is the stored ActiveCount. One epoch.
  void RestoreCur(Runtime& rt, const uint8_t* flags, uint64_t active) {
    rt.ParallelFor(0, cur_.size(), [&](ThreadId t, uint64_t v) {
      cur_.Set(t, v, flags[v]);
      next_.Set(t, v, 0);
    });
    cur_count_ = active;
    next_count_ = 0;
  }

 private:
  NumaArray<uint8_t> cur_;
  NumaArray<uint8_t> next_;
  uint64_t cur_count_ = 0;
  uint64_t next_count_ = 0;
};

/// Galois-style chunked bags: per-thread LIFO with stealing. Memory
/// traffic is proportional to pushes/pops, not |V|.
template <typename T>
class SparseWorklist {
 public:
  SparseWorklist(memsim::Machine* machine, uint32_t threads,
                 std::string_view name,
                 const memsim::PagePolicy& policy = CostRing::DefaultPolicy())
      : ring_(machine, threads, name, policy), local_(threads) {}

  void Push(ThreadId t, const T& item) {
    ring_.Charge(t, sizeof(T), AccessType::kWrite);
    local_[t].push_back(item);
    ++size_;
    metrics::CountWorklistPush(t);
  }

  /// Pops from `t`'s bag, stealing from the next non-empty bag when it is
  /// empty. Returns false when the whole worklist is drained.
  bool Pop(ThreadId t, T* out) {
    if (size_ == 0) return false;
    const uint32_t n = static_cast<uint32_t>(local_.size());
    for (uint32_t k = 0; k < n; ++k) {
      std::vector<T>& bag = local_[(t + k) % n];
      if (!bag.empty()) {
        ring_.Charge(t, sizeof(T), AccessType::kRead);
        *out = bag.back();
        bag.pop_back();
        --size_;
        metrics::CountWorklistPop(t, /*stolen=*/k != 0);
        return true;
      }
    }
    return false;
  }

  uint64_t size() const { return size_; }
  bool Empty() const { return size_ == 0; }

 private:
  CostRing ring_;
  std::vector<std::vector<T>> local_;
  uint64_t size_ = 0;
};

/// Asynchronously drains `wl` in one machine epoch: virtual threads take
/// turns processing chunks, and `body` may push new work. This is the
/// execution mode unavailable in round-based systems (Section 5.1's
/// "asynchronous data-driven" class).
template <typename T, typename Body>
void DrainAsync(Runtime& rt, SparseWorklist<T>& wl, Body&& body,
                uint32_t chunk = 64) {
  memsim::Machine& m = rt.machine();
  metrics::ObserveWorklistOccupancy(wl.size());
  m.CloseEpochIfOpen();
  m.BeginEpoch(rt.threads());
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (ThreadId t = 0; t < rt.threads(); ++t) {
      for (uint32_t k = 0; k < chunk; ++k) {
        T item;
        if (!wl.Pop(t, &item)) break;
        body(t, item);
        progressed = true;
      }
    }
  }
  m.EndEpoch();
}

/// Priority buckets over sparse bags (the OBIM scheduler shape), used by
/// asynchronous delta-stepping sssp.
template <typename T>
class BucketWorklist {
 public:
  BucketWorklist(memsim::Machine* machine, uint32_t threads,
                 std::string_view name,
                 const memsim::PagePolicy& policy = CostRing::DefaultPolicy())
      : ring_(machine, threads, name, policy), threads_(threads) {}

  void Push(ThreadId t, uint32_t bucket, const T& item) {
    if (bucket >= buckets_.size()) buckets_.resize(bucket + 1);
    if (buckets_[bucket].empty()) buckets_[bucket].resize(threads_);
    ring_.Charge(t, sizeof(T), AccessType::kWrite);
    buckets_[bucket][t].push_back(item);
    ++size_;
    metrics::CountWorklistPush(t);
    if (bucket < min_bucket_) min_bucket_ = bucket;
  }

  /// Pops an item from the lowest non-empty bucket (stealing across
  /// threads within the bucket). Returns false when empty.
  bool PopMin(ThreadId t, uint32_t* bucket, T* out) {
    if (size_ == 0) return false;
    for (uint32_t b = min_bucket_; b < buckets_.size(); ++b) {
      if (buckets_[b].empty()) continue;
      for (uint32_t k = 0; k < threads_; ++k) {
        std::vector<T>& bag = buckets_[b][(t + k) % threads_];
        if (!bag.empty()) {
          ring_.Charge(t, sizeof(T), AccessType::kRead);
          *out = bag.back();
          bag.pop_back();
          --size_;
          metrics::CountWorklistPop(t, /*stolen=*/k != 0);
          *bucket = b;
          min_bucket_ = b;
          return true;
        }
      }
    }
    min_bucket_ = static_cast<uint32_t>(buckets_.size());
    return false;
  }

  uint64_t size() const { return size_; }
  bool Empty() const { return size_ == 0; }

 private:
  CostRing ring_;
  uint32_t threads_;
  std::vector<std::vector<std::vector<T>>> buckets_;  // [bucket][thread]
  uint64_t size_ = 0;
  uint32_t min_bucket_ = 0;
};

}  // namespace pmg::runtime

#endif  // PMG_RUNTIME_WORKLIST_H_
