#ifndef PMG_RUNTIME_RUNTIME_H_
#define PMG_RUNTIME_RUNTIME_H_

#include <cstdint>
#include <utility>

#include "pmg/common/check.h"
#include "pmg/common/types.h"
#include "pmg/memsim/machine.h"

/// \file runtime.h
/// The Galois-like parallel runtime over the simulated machine.
///
/// Parallelism is *virtual*: a loop over T virtual threads is executed
/// deterministically on the host, each virtual thread accumulating its own
/// simulated clock inside one machine epoch; the epoch's duration is the
/// critical path (max over threads) bounded below by the per-socket
/// bandwidth roofline. This reproduces thread-count scaling effects
/// (Figures 4 and 10) without host-machine nondeterminism.
///
/// Bodies always run in this fixed serial schedule — app semantics
/// (CasMin races, worklist stealing) depend on it. What the machine may
/// parallelize across host workers is the *pricing* of the recorded
/// accesses, through a phased engine whose output is byte-identical to
/// inline pricing (docs/determinism.md); host thread count is therefore
/// a speed knob, never a model input.

namespace pmg::runtime {

/// Execution context binding a machine to a thread count.
class Runtime {
 public:
  /// `threads` <= machine->MaxThreads(). The runtime does not own the
  /// machine.
  Runtime(memsim::Machine* machine, uint32_t threads)
      : machine_(machine), threads_(threads) {
    PMG_CHECK(machine != nullptr);
    PMG_CHECK(threads >= 1 && threads <= machine->MaxThreads());
  }

  memsim::Machine& machine() { return *machine_; }
  const memsim::Machine& machine() const { return *machine_; }
  uint32_t threads() const { return threads_; }

  /// Bulk-synchronous loop over [begin, end): contiguous block per thread
  /// (the partitioning Galois's do_all uses, and what makes first-touch
  /// "NUMA blocked" placement work). One machine epoch.
  template <typename Body>  // void(ThreadId, uint64_t index)
  void ParallelFor(uint64_t begin, uint64_t end, Body&& body) {
    // An inverted range would underflow n below; an *empty* range is fine
    // and still costs an (empty) epoch like any other round.
    PMG_CHECK_MSG(end >= begin,
                  "ParallelFor range is inverted: [%llu, %llu)",
                  static_cast<unsigned long long>(begin),
                  static_cast<unsigned long long>(end));
    machine_->CloseEpochIfOpen();
    machine_->BeginEpoch(threads_);
    const uint64_t n = end - begin;
    const uint64_t per = n / threads_;
    const uint64_t extra = n % threads_;
    uint64_t cursor = begin;
    for (ThreadId t = 0; t < threads_; ++t) {
      const uint64_t len = per + (t < extra ? 1 : 0);
      for (uint64_t i = cursor; i < cursor + len; ++i) body(t, i);
      cursor += len;
    }
    machine_->EndEpoch();
  }

  /// Bulk-synchronous loop with dynamic (round-robin chunk) scheduling:
  /// models a work-stealing do_all where load balance is good but
  /// contiguity is not guaranteed. One machine epoch.
  template <typename Body>
  void ParallelForDynamic(uint64_t begin, uint64_t end, uint64_t chunk,
                          Body&& body) {
    PMG_CHECK_MSG(chunk > 0,
                  "ParallelForDynamic chunk must be positive: a chunk of 0 "
                  "would loop forever without dispatching any iteration");
    PMG_CHECK_MSG(end >= begin,
                  "ParallelForDynamic range is inverted: [%llu, %llu)",
                  static_cast<unsigned long long>(begin),
                  static_cast<unsigned long long>(end));
    machine_->CloseEpochIfOpen();
    machine_->BeginEpoch(threads_);
    uint64_t chunk_index = 0;
    for (uint64_t c = begin; c < end; c += chunk, ++chunk_index) {
      const ThreadId t = static_cast<ThreadId>(chunk_index % threads_);
      const uint64_t hi = c + chunk < end ? c + chunk : end;
      for (uint64_t i = c; i < hi; ++i) body(t, i);
    }
    machine_->EndEpoch();
  }

  /// Runs `body(t)` once per virtual thread in one epoch (for per-thread
  /// setup such as first-touch initialization).
  template <typename Body>
  void ParallelExecute(Body&& body) {
    machine_->CloseEpochIfOpen();
    machine_->BeginEpoch(threads_);
    for (ThreadId t = 0; t < threads_; ++t) body(t);
    machine_->EndEpoch();
  }

  /// Measures simulated time across a callable (closing stray epochs).
  template <typename Fn>
  SimNs Timed(Fn&& fn) {
    machine_->CloseEpochIfOpen();
    const SimNs before = machine_->now();
    std::forward<Fn>(fn)();
    machine_->CloseEpochIfOpen();
    return machine_->now() - before;
  }

 private:
  memsim::Machine* machine_;
  uint32_t threads_;
};

}  // namespace pmg::runtime

#endif  // PMG_RUNTIME_RUNTIME_H_
