#ifndef PMG_RUNTIME_NUMA_ARRAY_H_
#define PMG_RUNTIME_NUMA_ARRAY_H_

#include <cstddef>
#include <string_view>
#include <utility>
#include <vector>

#include "pmg/common/check.h"
#include "pmg/common/types.h"
#include "pmg/memsim/machine.h"

/// \file numa_array.h
/// A typed array whose storage lives in the simulated machine: every
/// element access is priced through the memory model. This is the only way
/// application code (graphs, labels, worklists) touches memory, which is
/// what makes per-allocation NUMA policy and page-size choices — the
/// paper's Section 4 levers — visible in measured time.

namespace pmg::runtime {

/// Move-only costed array. The `raw()` accessors bypass cost accounting
/// and exist for result verification and (re)initialization outside the
/// measured window.
template <typename T>
class NumaArray {
 public:
  NumaArray() = default;

  NumaArray(memsim::Machine* machine, size_t size,
            const memsim::PagePolicy& policy, std::string_view name)
      : machine_(machine), data_(size) {
    PMG_CHECK(machine != nullptr);
    PMG_CHECK(size > 0);
    region_ = machine_->Alloc(size * sizeof(T), policy, name);
    base_ = machine_->BaseOf(region_);
  }

  ~NumaArray() { Reset(); }

  NumaArray(const NumaArray&) = delete;
  NumaArray& operator=(const NumaArray&) = delete;

  NumaArray(NumaArray&& other) noexcept { *this = std::move(other); }
  NumaArray& operator=(NumaArray&& other) noexcept {
    if (this != &other) {
      Reset();
      machine_ = other.machine_;
      region_ = other.region_;
      base_ = other.base_;
      data_ = std::move(other.data_);
      other.machine_ = nullptr;
    }
    return *this;
  }

  bool valid() const { return machine_ != nullptr; }
  size_t size() const { return data_.size(); }
  VirtAddr AddrOf(size_t i) const { return base_ + i * sizeof(T); }

  /// Costed read by virtual thread `t`.
  T Get(ThreadId t, size_t i) const {
    machine_->Access(t, AddrOf(i), sizeof(T), AccessType::kRead);
    return data_[i];
  }

  /// Costed write.
  void Set(ThreadId t, size_t i, const T& v) {
    machine_->Access(t, AddrOf(i), sizeof(T), AccessType::kWrite);
    data_[i] = v;
  }

  /// Costed atomic load: same price as Get, but annotated as
  /// synchronization. Use for any element a concurrent virtual thread may
  /// write in the same epoch (see DESIGN.md, "Atomicity contract").
  T GetAtomic(ThreadId t, size_t i) const {
    machine_->Access(t, AddrOf(i), sizeof(T), AccessType::kAtomicRead);
    return data_[i];
  }

  /// Costed atomic store: same price as Set, annotated as synchronization.
  void SetAtomic(ThreadId t, size_t i, const T& v) {
    machine_->Access(t, AddrOf(i), sizeof(T), AccessType::kAtomicWrite);
    data_[i] = v;
  }

  /// Costed read-modify-write: `fn(T&)` mutates in place.
  template <typename Fn>
  void Update(ThreadId t, size_t i, Fn&& fn) {
    machine_->Access(t, AddrOf(i), sizeof(T), AccessType::kRead);
    fn(data_[i]);
    machine_->Access(t, AddrOf(i), sizeof(T), AccessType::kWrite);
  }

  /// Update with atomic semantics (a real implementation would use a CAS
  /// loop or hardware RMW). Costed identically to Update: one read leg and
  /// one write leg, both marked atomic.
  template <typename Fn>
  void UpdateAtomic(ThreadId t, size_t i, Fn&& fn) {
    machine_->Access(t, AddrOf(i), sizeof(T), AccessType::kAtomicRead);
    fn(data_[i]);
    machine_->Access(t, AddrOf(i), sizeof(T), AccessType::kAtomicWrite);
  }

  /// Atomic-min idiom (the CAS loop of label-update operators): writes `v`
  /// if it is smaller than the current value. Returns true on update.
  /// Costed as a read plus, when it succeeds, a write — both atomic.
  bool CasMin(ThreadId t, size_t i, const T& v) {
    machine_->Access(t, AddrOf(i), sizeof(T), AccessType::kAtomicRead);
    if (v < data_[i]) {
      machine_->Access(t, AddrOf(i), sizeof(T), AccessType::kAtomicWrite);
      data_[i] = v;
      return true;
    }
    return false;
  }

  /// Atomic fetch-add idiom. Returns the previous value.
  T FetchAdd(ThreadId t, size_t i, const T& delta) {
    machine_->Access(t, AddrOf(i), sizeof(T), AccessType::kAtomicRead);
    machine_->Access(t, AddrOf(i), sizeof(T), AccessType::kAtomicWrite);
    const T old = data_[i];
    data_[i] = old + delta;
    return old;
  }

  /// Costed sequential fill using thread-blocked partitioning (first
  /// touch). Runs inside the caller's epoch if one is open.
  void FillBlocked(memsim::Machine* m, uint32_t threads, const T& v) {
    const size_t n = data_.size();
    const size_t per = n / threads;
    const size_t extra = n % threads;
    size_t cursor = 0;
    for (ThreadId t = 0; t < threads; ++t) {
      const size_t len = per + (t < extra ? 1 : 0);
      if (len > 0) {
        m->AccessRange(t, AddrOf(cursor), len * sizeof(T),
                       AccessType::kWrite);
      }
      for (size_t i = cursor; i < cursor + len; ++i) data_[i] = v;
      cursor += len;
    }
  }

  /// Uncosted access for verification / setup outside measurement.
  const T* raw() const { return data_.data(); }
  T* raw() { return data_.data(); }
  const T& operator[](size_t i) const { return data_[i]; }
  T& operator[](size_t i) { return data_[i]; }

 private:
  void Reset() {
    if (machine_ != nullptr) {
      machine_->Free(region_);
      machine_ = nullptr;
    }
  }

  memsim::Machine* machine_ = nullptr;
  memsim::RegionId region_ = 0;
  VirtAddr base_ = 0;
  std::vector<T> data_;
};

}  // namespace pmg::runtime

#endif  // PMG_RUNTIME_NUMA_ARRAY_H_
