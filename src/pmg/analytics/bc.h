#ifndef PMG_ANALYTICS_BC_H_
#define PMG_ANALYTICS_BC_H_

#include "pmg/analytics/common.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"

/// \file bc.h
/// Single-source betweenness centrality (Brandes): a forward BFS
/// accumulating shortest-path counts, then a level-by-level backward
/// dependency sweep.
///   - BcSparse keeps explicit per-level vertex lists (Galois).
///   - BcDense re-scans all |V| vertices per level in both sweeps — the
///     vertex-program formulation, which collapses on high-diameter
///     graphs (the paper's largest Optane-vs-cluster win, 13.7x on wdc12).

namespace pmg::analytics {

struct BcResult {
  runtime::NumaArray<double> centrality;
  runtime::NumaArray<uint32_t> level;
  uint64_t rounds = 0;
  SimNs time_ns = 0;
};

BcResult BcSparse(runtime::Runtime& rt, const graph::CsrGraph& g,
                  VertexId source, const AlgoOptions& opt);

BcResult BcDense(runtime::Runtime& rt, const graph::CsrGraph& g,
                 VertexId source, const AlgoOptions& opt);

}  // namespace pmg::analytics

#endif  // PMG_ANALYTICS_BC_H_
