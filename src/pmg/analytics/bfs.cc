#include "pmg/analytics/bfs.h"

#include <memory>
#include <utility>

#include "pmg/common/check.h"
#include "pmg/metrics/profiler.h"
#include "pmg/runtime/worklist.h"

namespace pmg::analytics {

namespace {

runtime::NumaArray<uint32_t> InitLevels(runtime::Runtime& rt,
                                        const graph::CsrGraph& g,
                                        const AlgoOptions& opt) {
  runtime::NumaArray<uint32_t> level(&g.machine(), g.num_vertices(),
                                     opt.label_policy, "bfs.level");
  rt.ParallelFor(0, g.num_vertices(), [&](ThreadId t, uint64_t v) {
    level.Set(t, v, kInfLevel);
  });
  return level;
}

}  // namespace

BfsResult BfsDenseWl(runtime::Runtime& rt, const graph::CsrGraph& g,
                     VertexId source, const AlgoOptions& opt) {
  PMG_PROF_SCOPE("bfs.dense_wl");
  BfsResult out;
  out.time_ns = rt.Timed([&] {
    out.level = InitLevels(rt, g, opt);
    runtime::DenseWorklist wl(&g.machine(), g.num_vertices(),
                              opt.label_policy, "bfs.wl");
    out.level.Set(0, source, 0);
    wl.ActivateCur(0, source);
    uint32_t round = 0;
    while (!wl.Empty()) {
      wl.ForEachActive(rt, [&](ThreadId t, uint64_t v) {
        const uint32_t next_level = round + 1;
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
          if (out.level.CasMin(tt, u, next_level)) wl.Activate(tt, u);
        });
      });
      wl.Advance(rt);
      ++round;
    }
    out.rounds = round;
  });
  return out;
}

BfsResult BfsDirectionOpt(runtime::Runtime& rt, const graph::CsrGraph& g,
                          VertexId source, const AlgoOptions& opt) {
  PMG_PROF_SCOPE("bfs.direction_opt");
  PMG_CHECK_MSG(g.has_in_edges(),
                "direction-optimizing bfs needs in-edges loaded");
  BfsResult out;
  out.time_ns = rt.Timed([&] {
    out.level = InitLevels(rt, g, opt);
    runtime::DenseWorklist wl(&g.machine(), g.num_vertices(),
                              opt.label_policy, "bfs.wl");
    out.level.Set(0, source, 0);
    wl.ActivateCur(0, source);
    uint32_t round = 0;
    const uint64_t pull_threshold =
        g.num_vertices() / opt.dir_opt_denominator;
    while (!wl.Empty()) {
      const uint32_t next_level = round + 1;
      if (wl.ActiveCount() <= pull_threshold) {
        // Push phase.
        wl.ForEachActive(rt, [&](ThreadId t, uint64_t v) {
          g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
            if (out.level.CasMin(tt, u, next_level)) wl.Activate(tt, u);
          });
        });
      } else {
        // Pull phase: every unreached vertex scans its in-edges for a
        // parent on the current frontier.
        // level[v] is written only by v's owner in this pass, so the
        // unreached check stays plain; the parent read targets a vertex
        // another thread may be setting right now, and the store is read
        // as a parent by other threads — both atomic.
        rt.ParallelFor(0, g.num_vertices(), [&](ThreadId t, uint64_t v) {
          if (out.level.Get(t, v) != kInfLevel) return;
          const auto [first, last] = g.InRange(t, v);
          for (EdgeId e = first; e < last; ++e) {
            const VertexId u = g.InSrc(t, e);
            if (out.level.GetAtomic(t, u) == round) {
              out.level.SetAtomic(t, v, next_level);
              wl.Activate(t, v);
              break;
            }
          }
        });
      }
      wl.Advance(rt);
      ++round;
    }
    out.rounds = round;
  });
  return out;
}

BfsResult BfsSparseWl(runtime::Runtime& rt, const graph::CsrGraph& g,
                      VertexId source, const AlgoOptions& opt) {
  PMG_PROF_SCOPE("bfs.sparse_wl");
  BfsResult out;
  out.time_ns = rt.Timed([&] {
    out.level = InitLevels(rt, g, opt);
    memsim::Machine& m = g.machine();
    runtime::SparseWorklist<VertexId> a(&m, rt.threads(),
        "bfs.cur", WorklistPolicy(opt));
    runtime::SparseWorklist<VertexId> b(&m, rt.threads(),
        "bfs.next", WorklistPolicy(opt));
    runtime::SparseWorklist<VertexId>* cur = &a;
    runtime::SparseWorklist<VertexId>* next = &b;
    out.level.Set(0, source, 0);
    cur->Push(0, source);
    uint32_t round = 0;
    while (!cur->Empty()) {
      const uint32_t next_level = round + 1;
      // One bulk-synchronous round: drain `cur`, activations go to `next`.
      m.CloseEpochIfOpen();
      m.BeginEpoch(rt.threads());
      VertexId v;
      ThreadId t = 0;
      while (cur->Pop(t, &v)) {
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
          if (out.level.CasMin(tt, u, next_level)) next->Push(tt, u);
        });
        t = (t + 1) % rt.threads();
      }
      m.EndEpoch();
      std::swap(cur, next);
      ++round;
    }
    out.rounds = round;
  });
  return out;
}

BfsResult BfsAsync(runtime::Runtime& rt, const graph::CsrGraph& g,
                   VertexId source, const AlgoOptions& opt) {
  PMG_PROF_SCOPE("bfs.async");
  BfsResult out;
  out.time_ns = rt.Timed([&] {
    out.level = InitLevels(rt, g, opt);
    runtime::SparseWorklist<VertexId> wl(&g.machine(), rt.threads(),
        "bfs.async", WorklistPolicy(opt));
    out.level.Set(0, source, 0);
    wl.Push(0, source);
    // Label-correcting: no rounds; a vertex may be processed again if a
    // shorter level arrives later.
    runtime::DrainAsync(rt, wl, [&](ThreadId t, VertexId v) {
      // The whole drain is one epoch; any thread may CasMin this level
      // concurrently, so read it atomically.
      const uint32_t lv = out.level.GetAtomic(t, v);
      if (lv == kInfLevel) return;
      g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
        if (out.level.CasMin(tt, u, lv + 1)) wl.Push(tt, u);
      });
    });
    out.rounds = 1;
  });
  return out;
}

}  // namespace pmg::analytics
