#include "pmg/analytics/pagerank.h"

#include <cmath>

#include "pmg/common/check.h"
#include "pmg/metrics/profiler.h"
#include "pmg/runtime/worklist.h"

namespace pmg::analytics {

PrResult PrPull(runtime::Runtime& rt, const graph::CsrGraph& g,
                const AlgoOptions& opt) {
  PMG_PROF_SCOPE("pagerank.pull");
  PMG_CHECK_MSG(g.has_in_edges(), "pull pagerank needs in-edges loaded");
  PrResult out;
  out.time_ns = rt.Timed([&] {
    memsim::Machine& m = g.machine();
    const uint64_t n = g.num_vertices();
    const double base = 1.0 - opt.pr_damping;
    out.rank = runtime::NumaArray<double>(&m, n, opt.label_policy, "pr.rank");
    runtime::NumaArray<double> contrib(&m, n, opt.label_policy, "pr.contrib");
    rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
      out.rank.Set(t, v, base);
    });
    uint64_t round = 0;
    double mean_delta = opt.pr_tolerance + 1;
    while (round < opt.pr_max_rounds && mean_delta > opt.pr_tolerance) {
      // Phase 1: contrib[u] = rank[u] / outdeg[u].
      rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
        const auto [first, last] = g.OutRange(t, v);
        const uint64_t deg = last - first;
        contrib.Set(t, v,
                    deg == 0 ? 0.0 : out.rank.Get(t, v) / static_cast<double>(deg));
      });
      // Phase 2: pull contributions along in-edges.
      double total_delta = 0;
      rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
        double sum = 0;
        const auto [first, last] = g.InRange(t, v);
        for (EdgeId e = first; e < last; ++e) {
          sum += contrib.Get(t, g.InSrc(t, e));
        }
        const double next = base + opt.pr_damping * sum;
        // pmg-lint: allow(pmg-atomic-shared-write) fp sum in vertex order
        // is golden-locked; a per-thread reduction would change low bits
        total_delta += std::fabs(next - out.rank.Get(t, v));
        out.rank.Set(t, v, next);
      });
      mean_delta = total_delta / static_cast<double>(n);
      ++round;
    }
    out.rounds = round;
  });
  return out;
}

PrResult PrPushResidual(runtime::Runtime& rt, const graph::CsrGraph& g,
                        const AlgoOptions& opt) {
  PMG_PROF_SCOPE("pagerank.push_residual");
  PrResult out;
  out.time_ns = rt.Timed([&] {
    memsim::Machine& m = g.machine();
    const uint64_t n = g.num_vertices();
    const double base = 1.0 - opt.pr_damping;
    out.rank = runtime::NumaArray<double>(&m, n, opt.label_policy, "pr.rank");
    runtime::NumaArray<double> residual(&m, n, opt.label_policy, "pr.res");
    runtime::SparseWorklist<VertexId> wl(&m, rt.threads(),
        "pr.wl", WorklistPolicy(opt));
    rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
      out.rank.Set(t, v, base);
      residual.Set(t, v, 0.0);
    });
    // Seed residuals as if one synchronous round had run.
    rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
      const auto [first, last] = g.OutRange(t, v);
      const uint64_t deg = last - first;
      if (deg == 0) return;
      const double share = opt.pr_damping * base / static_cast<double>(deg);
      for (EdgeId e = first; e < last; ++e) {
        const VertexId u = g.OutDst(t, e);
        // Any thread may push into u's residual concurrently: atomic add.
        residual.UpdateAtomic(t, u, [&](double& r) { r += share; });
      }
    });
    const double eps = opt.pr_tolerance;
    m.CloseEpochIfOpen();
    m.BeginEpoch(rt.threads());
    for (VertexId v = 0; v < n; ++v) {
      if (residual[v] > eps) {
        wl.Push(static_cast<ThreadId>(v % rt.threads()), v);
      }
    }
    m.EndEpoch();
    // The whole drain is one epoch: residuals and ranks of any vertex can
    // be touched by any thread, so every access below is atomic (a real
    // implementation reads, exchanges and accumulates with atomics).
    runtime::DrainAsync(rt, wl, [&](ThreadId t, VertexId v) {
      const double res = residual.GetAtomic(t, v);
      if (res <= eps) return;
      residual.SetAtomic(t, v, 0.0);
      out.rank.UpdateAtomic(t, v, [&](double& r) { r += res; });
      const auto [first, last] = g.OutRange(t, v);
      const uint64_t deg = last - first;
      if (deg == 0) return;
      const double share = opt.pr_damping * res / static_cast<double>(deg);
      for (EdgeId e = first; e < last; ++e) {
        const VertexId u = g.OutDst(t, e);
        double before = 0;
        residual.UpdateAtomic(t, u, [&](double& r) {
          before = r;
          r += share;
        });
        if (before <= eps && before + share > eps) wl.Push(t, u);
      }
    });
    out.rounds = 1;
  });
  return out;
}

}  // namespace pmg::analytics
