#ifndef PMG_ANALYTICS_REFERENCE_H_
#define PMG_ANALYTICS_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "pmg/analytics/common.h"
#include "pmg/graph/topology.h"

/// \file reference.h
/// Serial, host-side oracle implementations used to verify every measured
/// kernel. They use textbook algorithms structurally different from the
/// parallel variants (e.g., Dijkstra with a binary heap against
/// delta-stepping), so agreement is meaningful.

namespace pmg::analytics {

/// BFS levels from `source` over out-edges; kInfLevel if unreachable.
std::vector<uint32_t> RefBfs(const graph::CsrTopology& g, VertexId source);

/// Dijkstra distances from `source`; kInfDist if unreachable.
std::vector<uint64_t> RefSssp(const graph::CsrTopology& g, VertexId source);

/// Connected components of the undirected view; label = min vertex id of
/// the component.
std::vector<uint64_t> RefCc(const graph::CsrTopology& g);

/// Pull PageRank with identical parameters to PrPull.
std::vector<double> RefPagerank(const graph::CsrTopology& g, double damping,
                                double tolerance, uint32_t max_rounds);

/// Single-source Brandes betweenness (unweighted, out-edges).
std::vector<double> RefBc(const graph::CsrTopology& g, VertexId source);

/// k-core membership of a symmetrized graph.
std::vector<uint8_t> RefKcore(const graph::CsrTopology& sym, uint32_t k);

/// Exact triangle count of the undirected view.
uint64_t RefTc(const graph::CsrTopology& g);

}  // namespace pmg::analytics

#endif  // PMG_ANALYTICS_REFERENCE_H_
