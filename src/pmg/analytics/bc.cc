#include "pmg/analytics/bc.h"

#include <vector>

#include "pmg/metrics/profiler.h"
#include "pmg/runtime/per_thread.h"
#include "pmg/runtime/worklist.h"

namespace pmg::analytics {

namespace {

struct BcState {
  runtime::NumaArray<double> sigma;  // shortest-path counts
  runtime::NumaArray<double> delta;  // dependency accumulators
};

BcState InitState(runtime::Runtime& rt, const graph::CsrGraph& g,
                  const AlgoOptions& opt, BcResult* out) {
  memsim::Machine& m = g.machine();
  const uint64_t n = g.num_vertices();
  out->centrality =
      runtime::NumaArray<double>(&m, n, opt.label_policy, "bc.cent");
  out->level =
      runtime::NumaArray<uint32_t>(&m, n, opt.label_policy, "bc.level");
  BcState st;
  st.sigma = runtime::NumaArray<double>(&m, n, opt.label_policy, "bc.sigma");
  st.delta = runtime::NumaArray<double>(&m, n, opt.label_policy, "bc.delta");
  rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
    out->centrality.Set(t, v, 0.0);
    out->level.Set(t, v, kInfLevel);
    st.sigma.Set(t, v, 0.0);
    st.delta.Set(t, v, 0.0);
  });
  return st;
}

}  // namespace

BcResult BcSparse(runtime::Runtime& rt, const graph::CsrGraph& g,
                  VertexId source, const AlgoOptions& opt) {
  PMG_PROF_SCOPE("bc.sparse");
  BcResult out;
  out.time_ns = rt.Timed([&] {
    memsim::Machine& m = g.machine();
    BcState st = InitState(rt, g, opt, &out);
    // Per-level frontier lists; their push/pop traffic is charged to a
    // NUMA-local scratch ring like any sparse worklist.
    runtime::CostRing ring(&m, rt.threads(), "bc.levels",
                           WorklistPolicy(opt));
    std::vector<std::vector<VertexId>> levels;

    out.level.Set(0, source, 0);
    st.sigma.Set(0, source, 1.0);
    levels.push_back({source});
    ring.Charge(0, sizeof(VertexId), AccessType::kWrite);

    // Forward sweep: level-synchronous BFS accumulating sigma.
    while (!levels.back().empty()) {
      const uint32_t cur = static_cast<uint32_t>(levels.size() - 1);
      std::vector<VertexId> next;
      m.CloseEpochIfOpen();
      m.BeginEpoch(rt.threads());
      ThreadId t = 0;
      for (VertexId v : levels[cur]) {
        ring.Charge(t, sizeof(VertexId), AccessType::kRead);
        // sigma of a current-level vertex is not written this epoch (all
        // writes target level cur+1), so the own read stays plain; the
        // next level's level/sigma entries are claimed and accumulated by
        // any thread, so those accesses are atomic (a real implementation
        // claims with CAS and accumulates with atomic adds).
        const double sv = st.sigma.Get(t, v);
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
          const uint32_t lu = out.level.GetAtomic(tt, u);
          if (lu == kInfLevel) {
            out.level.SetAtomic(tt, u, cur + 1);
            st.sigma.SetAtomic(tt, u, sv);
            next.push_back(u);
            ring.Charge(tt, sizeof(VertexId), AccessType::kWrite);
          } else if (lu == cur + 1) {
            st.sigma.UpdateAtomic(tt, u, [&](double& s) { s += sv; });
          }
        });
        t = (t + 1) % rt.threads();
      }
      m.EndEpoch();
      levels.push_back(std::move(next));
    }
    levels.pop_back();  // drop the empty terminator

    // Backward sweep: accumulate dependencies level by level. Each epoch
    // reads level/sigma/delta of the next deeper level and writes only
    // its own level's delta/centrality — disjoint vertex sets, so all
    // accesses stay plain.
    for (size_t li = levels.size(); li-- > 1;) {
      m.CloseEpochIfOpen();
      m.BeginEpoch(rt.threads());
      ThreadId t = 0;
      for (VertexId v : levels[li - 1]) {
        ring.Charge(t, sizeof(VertexId), AccessType::kRead);
        const double sv = st.sigma.Get(t, v);
        double acc = 0;
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
          if (out.level.Get(tt, u) == static_cast<uint32_t>(li)) {
            acc += sv / st.sigma.Get(tt, u) * (1.0 + st.delta.Get(tt, u));
          }
        });
        st.delta.Update(t, v, [&](double& d) { d += acc; });
        if (v != source) {
          out.centrality.Update(t, v, [&](double& cnt) {
            cnt += st.delta.Get(t, v);
          });
        }
        t = (t + 1) % rt.threads();
      }
      m.EndEpoch();
    }
    // Leaves (deepest level) contribute their delta too.
    if (!levels.empty()) {
      m.CloseEpochIfOpen();
      m.BeginEpoch(rt.threads());
      ThreadId t = 0;
      for (VertexId v : levels.back()) {
        if (v != source && levels.size() > 1) {
          out.centrality.Update(t, v, [&](double& cnt) {
            cnt += st.delta.Get(t, v);
          });
        }
        t = (t + 1) % rt.threads();
      }
      m.EndEpoch();
    }
    out.rounds = levels.size();
  });
  return out;
}

BcResult BcDense(runtime::Runtime& rt, const graph::CsrGraph& g,
                 VertexId source, const AlgoOptions& opt) {
  PMG_PROF_SCOPE("bc.dense");
  BcResult out;
  out.time_ns = rt.Timed([&] {
    BcState st = InitState(rt, g, opt, &out);
    const uint64_t n = g.num_vertices();
    out.level.Set(0, source, 0);
    st.sigma.Set(0, source, 1.0);

    // Forward: scan all vertices each round (vertex-program style).
    uint32_t cur = 0;
    runtime::PerThreadFlag adv(rt.threads());
    bool advanced = true;
    while (advanced) {
      adv.Reset();
      // The frontier check reads a level another thread may be claiming
      // (an unreached vertex becomes cur+1 mid-round), so it is atomic;
      // same annotations on the edge side as the sparse variant.
      rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
        if (out.level.GetAtomic(t, v) != cur) return;
        const double sv = st.sigma.Get(t, v);
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
          const uint32_t lu = out.level.GetAtomic(tt, u);
          if (lu == kInfLevel) {
            out.level.SetAtomic(tt, u, cur + 1);
            st.sigma.SetAtomic(tt, u, sv);
            adv.Mark(tt);
          } else if (lu == cur + 1) {
            st.sigma.UpdateAtomic(tt, u, [&](double& s) { s += sv; });
          }
        });
      });
      advanced = adv.Any();
      ++cur;
    }

    // Backward: same dense scans, one per level.
    for (uint32_t li = cur; li-- > 0;) {
      rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
        if (out.level.Get(t, v) != li) return;
        const double sv = st.sigma.Get(t, v);
        double acc = 0;
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
          if (out.level.Get(tt, u) == li + 1) {
            acc += sv / st.sigma.Get(tt, u) * (1.0 + st.delta.Get(tt, u));
          }
        });
        st.delta.Update(t, v, [&](double& d) { d += acc; });
        if (v != source && out.level.Get(t, v) != kInfLevel) {
          out.centrality.Set(t, v, st.delta.Get(t, v));
        }
      });
    }
    out.rounds = cur;
  });
  return out;
}

}  // namespace pmg::analytics
