#ifndef PMG_ANALYTICS_PAGERANK_H_
#define PMG_ANALYTICS_PAGERANK_H_

#include "pmg/analytics/common.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"

/// \file pagerank.h
/// PageRank. The paper's systems all run the same pull-style
/// topology-driven algorithm (Section 6.1), provided here as PrPull
/// (requires in-edges). PrPushResidual is the data-driven push variant
/// with a sparse worklist, used in ablations.
/// Scores follow the GAP convention: init 1-d, base (1-d), so the scores
/// sum to ~|V|; convergence when mean |delta| < pr_tolerance.

namespace pmg::analytics {

struct PrResult {
  runtime::NumaArray<double> rank;
  uint64_t rounds = 0;
  SimNs time_ns = 0;
};

/// Requires g.has_in_edges().
PrResult PrPull(runtime::Runtime& rt, const graph::CsrGraph& g,
                const AlgoOptions& opt);

PrResult PrPushResidual(runtime::Runtime& rt, const graph::CsrGraph& g,
                        const AlgoOptions& opt);

}  // namespace pmg::analytics

#endif  // PMG_ANALYTICS_PAGERANK_H_
