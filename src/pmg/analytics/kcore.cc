#include "pmg/analytics/kcore.h"

#include "pmg/metrics/profiler.h"
#include "pmg/runtime/per_thread.h"
#include "pmg/runtime/worklist.h"

namespace pmg::analytics {

namespace {

runtime::NumaArray<uint32_t> InitDegrees(runtime::Runtime& rt,
                                         const graph::CsrGraph& g,
                                         const AlgoOptions& opt) {
  runtime::NumaArray<uint32_t> deg(&g.machine(), g.num_vertices(),
                                   opt.label_policy, "kcore.deg");
  rt.ParallelFor(0, g.num_vertices(), [&](ThreadId t, uint64_t v) {
    const auto [first, last] = g.OutRange(t, v);
    deg.Set(t, v, static_cast<uint32_t>(last - first));
  });
  return deg;
}

uint64_t CountAlive(const runtime::NumaArray<uint8_t>& alive) {
  uint64_t n = 0;
  for (size_t v = 0; v < alive.size(); ++v) n += alive[v];
  return n;
}

}  // namespace

KcoreResult KcoreAsync(runtime::Runtime& rt, const graph::CsrGraph& g,
                       const AlgoOptions& opt) {
  PMG_PROF_SCOPE("kcore.async");
  KcoreResult out;
  const uint32_t k = opt.kcore_k;
  out.time_ns = rt.Timed([&] {
    memsim::Machine& m = g.machine();
    const uint64_t n = g.num_vertices();
    runtime::NumaArray<uint32_t> deg = InitDegrees(rt, g, opt);
    out.alive = runtime::NumaArray<uint8_t>(&m, n, opt.label_policy,
                                            "kcore.alive");
    rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
      out.alive.Set(t, v, 1);
    });
    runtime::SparseWorklist<VertexId> wl(&m, rt.threads(),
        "kcore.wl", WorklistPolicy(opt));
    rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
      if (deg.Get(t, v) < k) wl.Push(t, v);
    });
    // Asynchronous peeling: removing a vertex may push its neighbours.
    // The whole drain is one epoch, and alive/deg of any vertex may be
    // touched by any thread in it, so every access is atomic (real
    // peeling uses a CAS on alive and fetch-sub on deg).
    runtime::DrainAsync(rt, wl, [&](ThreadId t, VertexId v) {
      if (out.alive.GetAtomic(t, v) == 0) return;
      out.alive.SetAtomic(t, v, 0);
      g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
        if (out.alive.GetAtomic(tt, u) == 0) return;
        uint32_t before = 0;
        deg.UpdateAtomic(tt, u, [&](uint32_t& d) {
          before = d;
          if (d > 0) --d;
        });
        if (before == k) wl.Push(tt, u);
      });
    });
    out.rounds = 1;
  });
  out.in_core = CountAlive(out.alive);
  return out;
}

KcoreResult KcoreDense(runtime::Runtime& rt, const graph::CsrGraph& g,
                       const AlgoOptions& opt) {
  PMG_PROF_SCOPE("kcore.dense");
  KcoreResult out;
  const uint32_t k = opt.kcore_k;
  out.time_ns = rt.Timed([&] {
    memsim::Machine& m = g.machine();
    const uint64_t n = g.num_vertices();
    runtime::NumaArray<uint32_t> deg = InitDegrees(rt, g, opt);
    out.alive = runtime::NumaArray<uint8_t>(&m, n, opt.label_policy,
                                            "kcore.alive");
    rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
      out.alive.Set(t, v, 1);
    });
    // Bulk-synchronous peeling: every round scans all vertices.
    runtime::PerThreadFlag peeled(rt.threads());
    bool removed = true;
    uint64_t round = 0;
    while (removed) {
      peeled.Reset();
      // alive[v] is written only by v's owner this round, so the own
      // checks stay plain; deg[v] and the neighbours' alive/deg are
      // concurrently decremented/read by other threads, so those are
      // atomic.
      rt.ParallelFor(0, n, [&](ThreadId t, uint64_t v) {
        if (out.alive.Get(t, v) == 0 || deg.GetAtomic(t, v) >= k) return;
        out.alive.SetAtomic(t, v, 0);
        peeled.Mark(t);
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
          if (out.alive.GetAtomic(tt, u) != 0) {
            deg.UpdateAtomic(tt, u, [](uint32_t& d) {
              if (d > 0) --d;
            });
          }
        });
      });
      removed = peeled.Any();
      ++round;
    }
    out.rounds = round;
  });
  out.in_core = CountAlive(out.alive);
  return out;
}

}  // namespace pmg::analytics
