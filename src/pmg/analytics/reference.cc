#include "pmg/analytics/reference.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

namespace pmg::analytics {

std::vector<uint32_t> RefBfs(const graph::CsrTopology& g, VertexId source) {
  std::vector<uint32_t> level(g.num_vertices, kInfLevel);
  std::queue<VertexId> q;
  level[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) {
      const VertexId u = g.dst[e];
      if (level[u] == kInfLevel) {
        level[u] = level[v] + 1;
        q.push(u);
      }
    }
  }
  return level;
}

std::vector<uint64_t> RefSssp(const graph::CsrTopology& g, VertexId source) {
  std::vector<uint64_t> dist(g.num_vertices, kInfDist);
  using Entry = std::pair<uint64_t, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  dist[source] = 0;
  pq.push({0, source});
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) {
      const VertexId u = g.dst[e];
      const uint32_t w = g.HasWeights() ? g.weight[e] : 1;
      if (d + w < dist[u]) {
        dist[u] = d + w;
        pq.push({dist[u], u});
      }
    }
  }
  return dist;
}

std::vector<uint64_t> RefCc(const graph::CsrTopology& g) {
  // Union-find with path halving, then canonicalize to min id.
  std::vector<uint64_t> parent(g.num_vertices);
  for (uint64_t v = 0; v < g.num_vertices; ++v) parent[v] = v;
  auto find = [&](uint64_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (uint64_t v = 0; v < g.num_vertices; ++v) {
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) {
      const uint64_t a = find(v);
      const uint64_t b = find(g.dst[e]);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::vector<uint64_t> label(g.num_vertices);
  for (uint64_t v = 0; v < g.num_vertices; ++v) label[v] = find(v);
  return label;
}

std::vector<double> RefPagerank(const graph::CsrTopology& g, double damping,
                                double tolerance, uint32_t max_rounds) {
  const uint64_t n = g.num_vertices;
  const double base = 1.0 - damping;
  const graph::CsrTopology t = graph::Transpose(g);
  std::vector<double> rank(n, base);
  std::vector<double> contrib(n, 0.0);
  for (uint32_t round = 0; round < max_rounds; ++round) {
    for (uint64_t v = 0; v < n; ++v) {
      const uint64_t deg = g.OutDegree(v);
      contrib[v] = deg == 0 ? 0.0 : rank[v] / static_cast<double>(deg);
    }
    double total_delta = 0;
    for (uint64_t v = 0; v < n; ++v) {
      double sum = 0;
      for (uint64_t e = t.index[v]; e < t.index[v + 1]; ++e) {
        sum += contrib[t.dst[e]];
      }
      const double next = base + damping * sum;
      total_delta += std::fabs(next - rank[v]);
      rank[v] = next;
    }
    if (total_delta / static_cast<double>(n) <= tolerance) break;
  }
  return rank;
}

std::vector<double> RefBc(const graph::CsrTopology& g, VertexId source) {
  const uint64_t n = g.num_vertices;
  std::vector<double> bc(n, 0.0);
  std::vector<double> sigma(n, 0.0);
  std::vector<double> delta(n, 0.0);
  std::vector<int64_t> dist(n, -1);
  std::vector<VertexId> order;  // vertices in visit order
  order.reserve(n);
  std::queue<VertexId> q;
  sigma[source] = 1;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    order.push_back(v);
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) {
      const VertexId u = g.dst[e];
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
      if (dist[u] == dist[v] + 1) sigma[u] += sigma[v];
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId v = *it;
    for (uint64_t e = g.index[v]; e < g.index[v + 1]; ++e) {
      const VertexId u = g.dst[e];
      if (dist[u] == dist[v] + 1) {
        delta[v] += sigma[v] / sigma[u] * (1.0 + delta[u]);
      }
    }
    if (v != source) bc[v] += delta[v];
  }
  return bc;
}

std::vector<uint8_t> RefKcore(const graph::CsrTopology& sym, uint32_t k) {
  const uint64_t n = sym.num_vertices;
  std::vector<uint64_t> deg(n);
  std::vector<uint8_t> alive(n, 1);
  std::vector<VertexId> stack;
  for (uint64_t v = 0; v < n; ++v) {
    deg[v] = sym.OutDegree(v);
    if (deg[v] < k) stack.push_back(v);
  }
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    if (alive[v] == 0) continue;
    alive[v] = 0;
    for (uint64_t e = sym.index[v]; e < sym.index[v + 1]; ++e) {
      const VertexId u = sym.dst[e];
      if (alive[u] != 0 && deg[u]-- == k) stack.push_back(u);
    }
  }
  return alive;
}

uint64_t RefTc(const graph::CsrTopology& g) {
  graph::CsrTopology sym = graph::Symmetrize(g);
  graph::SortAdjacency(&sym);
  uint64_t total = 0;
  // For each edge v < u, count common neighbours w > u (each triangle
  // counted once with v < u < w).
  for (VertexId v = 0; v < sym.num_vertices; ++v) {
    for (uint64_t e = sym.index[v]; e < sym.index[v + 1]; ++e) {
      const VertexId u = sym.dst[e];
      if (u <= v) continue;
      uint64_t a = sym.index[v];
      uint64_t b = sym.index[u];
      while (a < sym.index[v + 1] && b < sym.index[u + 1]) {
        const VertexId wa = sym.dst[a];
        const VertexId wb = sym.dst[b];
        if (wa == wb) {
          if (wa > u) ++total;
          ++a;
          ++b;
        } else if (wa < wb) {
          ++a;
        } else {
          ++b;
        }
      }
    }
  }
  return total;
}

}  // namespace pmg::analytics
