#ifndef PMG_ANALYTICS_COMMON_H_
#define PMG_ANALYTICS_COMMON_H_

#include <cstdint>

#include "pmg/common/types.h"
#include "pmg/memsim/page_table.h"

/// \file common.h
/// Shared options and constants of the analytics kernels.

namespace pmg::analytics {

/// "Unreached" marker for level/distance labels.
inline constexpr uint32_t kInfLevel = ~0u;
inline constexpr uint64_t kInfDist = ~0ull;

/// Options shared by the kernels. Which variant runs is chosen by calling
/// the variant's function; these knobs configure a chosen variant.
struct AlgoOptions {
  /// Placement of node-data (label) arrays. The paper's Galois picks
  /// interleaved for bfs/cc/sssp and blocked for bc/pr (Section 6.1).
  memsim::PagePolicy label_policy;
  /// Delta-stepping bucket width.
  uint32_t delta = 8;
  /// PageRank: damping, tolerance and round cap (paper: 0.85, 1e-6, 100).
  double pr_damping = 0.85;
  double pr_tolerance = 1e-6;
  uint32_t pr_max_rounds = 100;
  /// k-core threshold (paper: k = 100).
  uint32_t kcore_k = 100;
  /// Direction-optimizing BFS: switch to pull when the frontier exceeds
  /// |V| / denominator.
  uint32_t dir_opt_denominator = 20;
};

/// Scratch-worklist policy: NUMA-local first-touch placement with the
/// page size the run is configured for (so page-size studies cover the
/// whole footprint).
inline memsim::PagePolicy WorklistPolicy(const AlgoOptions& opt) {
  memsim::PagePolicy p = opt.label_policy;
  p.placement = memsim::Placement::kBlocked;
  return p;
}

}  // namespace pmg::analytics

#endif  // PMG_ANALYTICS_COMMON_H_
