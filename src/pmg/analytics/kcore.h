#ifndef PMG_ANALYTICS_KCORE_H_
#define PMG_ANALYTICS_KCORE_H_

#include "pmg/analytics/common.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"

/// \file kcore.h
/// k-core decomposition by peeling (paper: k = 100) on a symmetrized
/// graph. KcoreAsync peels with a sparse worklist (Galois); KcoreDense
/// re-scans all vertices per peeling round (vertex-program style).
/// Result: alive[v] != 0 iff v is in the k-core.

namespace pmg::analytics {

struct KcoreResult {
  runtime::NumaArray<uint8_t> alive;
  uint64_t in_core = 0;
  uint64_t rounds = 0;
  SimNs time_ns = 0;
};

KcoreResult KcoreAsync(runtime::Runtime& rt, const graph::CsrGraph& g,
                       const AlgoOptions& opt);

KcoreResult KcoreDense(runtime::Runtime& rt, const graph::CsrGraph& g,
                       const AlgoOptions& opt);

}  // namespace pmg::analytics

#endif  // PMG_ANALYTICS_KCORE_H_
