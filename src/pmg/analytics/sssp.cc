#include "pmg/analytics/sssp.h"

#include <utility>

#include "pmg/common/check.h"
#include "pmg/metrics/profiler.h"
#include "pmg/runtime/per_thread.h"
#include "pmg/runtime/worklist.h"

namespace pmg::analytics {

namespace {

runtime::NumaArray<uint64_t> InitDist(runtime::Runtime& rt,
                                      const graph::CsrGraph& g,
                                      const AlgoOptions& opt) {
  runtime::NumaArray<uint64_t> dist(&g.machine(), g.num_vertices(),
                                    opt.label_policy, "sssp.dist");
  rt.ParallelFor(0, g.num_vertices(), [&](ThreadId t, uint64_t v) {
    dist.Set(t, v, kInfDist);
  });
  return dist;
}

}  // namespace

SsspResult SsspBellmanFord(runtime::Runtime& rt, const graph::CsrGraph& g,
                           VertexId source, const AlgoOptions& opt) {
  PMG_PROF_SCOPE("sssp.bellman_ford");
  PMG_CHECK(g.has_weights());
  SsspResult out;
  out.time_ns = rt.Timed([&] {
    out.dist = InitDist(rt, g, opt);
    out.dist.Set(0, source, 0);
    runtime::PerThreadFlag relaxed(rt.threads());
    bool changed = true;
    uint64_t round = 0;
    while (changed && round < g.num_vertices()) {
      relaxed.Reset();
      // Topology-driven: every vertex relaxes its edges every round.
      rt.ParallelFor(0, g.num_vertices(), [&](ThreadId t, uint64_t v) {
        // dist[v] may be concurrently relaxed (CasMin) by any thread in
        // this same round, so the read is an atomic load.
        const uint64_t dv = out.dist.GetAtomic(t, v);
        if (dv == kInfDist) return;
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t w) {
          if (out.dist.CasMin(tt, u, dv + w)) relaxed.Mark(tt);
        });
      });
      changed = relaxed.Any();
      ++round;
    }
    out.rounds = round;
  });
  return out;
}

SsspResult SsspDenseWl(runtime::Runtime& rt, const graph::CsrGraph& g,
                       VertexId source, const AlgoOptions& opt) {
  PMG_PROF_SCOPE("sssp.dense_wl");
  PMG_CHECK(g.has_weights());
  SsspResult out;
  out.time_ns = rt.Timed([&] {
    out.dist = InitDist(rt, g, opt);
    runtime::DenseWorklist wl(&g.machine(), g.num_vertices(),
                              opt.label_policy, "sssp.wl");
    out.dist.Set(0, source, 0);
    wl.ActivateCur(0, source);
    uint64_t round = 0;
    while (!wl.Empty()) {
      wl.ForEachActive(rt, [&](ThreadId t, uint64_t v) {
        // An active vertex's distance can still improve in this round
        // (another active vertex may relax an edge into it), so read it
        // atomically.
        const uint64_t dv = out.dist.GetAtomic(t, v);
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t w) {
          if (out.dist.CasMin(tt, u, dv + w)) wl.Activate(tt, u);
        });
      });
      wl.Advance(rt);
      ++round;
    }
    out.rounds = round;
  });
  return out;
}

SsspResult SsspDeltaStep(runtime::Runtime& rt, const graph::CsrGraph& g,
                         VertexId source, const AlgoOptions& opt) {
  PMG_PROF_SCOPE("sssp.delta_step");
  PMG_CHECK(g.has_weights());
  PMG_CHECK(opt.delta >= 1);
  SsspResult out;
  out.time_ns = rt.Timed([&] {
    out.dist = InitDist(rt, g, opt);
    memsim::Machine& m = g.machine();
    // Work items carry the distance at push time; stale items are skipped
    // on pop (lazy deletion).
    struct Item {
      VertexId v;
      uint64_t d;
    };
    runtime::BucketWorklist<Item> wl(&m, rt.threads(), "sssp.obim",
                                     WorklistPolicy(opt));
    out.dist.Set(0, source, 0);
    wl.Push(0, 0, {source, 0});
    m.CloseEpochIfOpen();
    m.BeginEpoch(rt.threads());
    ThreadId t = 0;
    uint32_t bucket = 0;
    Item item;
    while (wl.PopMin(t, &bucket, &item)) {
      t = (t + 1) % rt.threads();
      // The whole delta-stepping drain is one epoch; the staleness check
      // reads a distance any thread may CasMin concurrently.
      const uint64_t dv = out.dist.GetAtomic(t, item.v);
      if (item.d != dv) continue;  // stale entry
      g.ForEachOutEdge(t, item.v, [&](ThreadId tt, VertexId u, uint32_t w) {
        const uint64_t nd = dv + w;
        if (out.dist.CasMin(tt, u, nd)) {
          wl.Push(tt, static_cast<uint32_t>(nd / opt.delta), {u, nd});
        }
      });
    }
    m.EndEpoch();
    out.rounds = 1;
  });
  return out;
}

}  // namespace pmg::analytics
