#ifndef PMG_ANALYTICS_TC_H_
#define PMG_ANALYTICS_TC_H_

#include "pmg/analytics/common.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/graph/topology.h"
#include "pmg/runtime/runtime.h"

/// \file tc.h
/// Triangle counting by ordered adjacency intersection. The input is
/// preprocessed (host-side, as all the evaluated frameworks do and the
/// paper excludes from timing) into a degree-ordered "forward" orientation
/// where each undirected edge appears once, low rank -> high rank, with
/// sorted adjacency. Counting itself is fully costed.

namespace pmg::analytics {

struct TcResult {
  uint64_t triangles = 0;
  SimNs time_ns = 0;
};

/// Preprocesses an arbitrary directed graph into the forward orientation
/// expected by Tc (symmetrize, rank by degree, orient, sort).
graph::CsrTopology TcPrepare(const graph::CsrTopology& g);

/// Counts triangles of a graph built from TcPrepare() output.
TcResult Tc(runtime::Runtime& rt, const graph::CsrGraph& g);

}  // namespace pmg::analytics

#endif  // PMG_ANALYTICS_TC_H_
