#ifndef PMG_ANALYTICS_CC_H_
#define PMG_ANALYTICS_CC_H_

#include "pmg/analytics/common.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"

/// \file cc.h
/// Connected components variants (Figure 7b/8b). All expect a symmetrized
/// graph (components of the undirected view); callers symmetrize the
/// topology before building the CsrGraph, mirroring how the evaluated
/// frameworks treat cc inputs.
///   - CcLabelProp: bulk-synchronous label propagation, vertex program
///     with a dense worklist (GraphIt's only expressible choice).
///   - CcLabelPropSC: label propagation + shortcutting — a *non-vertex*
///     operator (reads labels of arbitrary vertices), Galois's algorithm.
///   - CcUnionFind: Shiloach-Vishkin-style hook + pointer-jump compress
///     (GAP/GBBS's algorithm).
///   - CcAsync: asynchronous data-driven label propagation on a sparse
///     worklist.
/// Labels converge to the minimum vertex id of each component.

namespace pmg::analytics {

struct CcResult {
  runtime::NumaArray<uint64_t> label;
  uint64_t rounds = 0;
  SimNs time_ns = 0;
};

CcResult CcLabelProp(runtime::Runtime& rt, const graph::CsrGraph& g,
                     const AlgoOptions& opt);

CcResult CcLabelPropSC(runtime::Runtime& rt, const graph::CsrGraph& g,
                       const AlgoOptions& opt);

/// Directed-input WCC: like CcLabelPropSC but the operator hooks *both*
/// endpoints of every out-edge (min flows against edge direction too), so
/// weak components emerge without materializing the transpose — this is
/// how Galois runs cc on crawls whose symmetrized form would not fit
/// (another non-vertex operator: it updates the active vertex *and* its
/// neighbourhood).
CcResult CcLabelPropSCDir(runtime::Runtime& rt, const graph::CsrGraph& g,
                          const AlgoOptions& opt);

CcResult CcUnionFind(runtime::Runtime& rt, const graph::CsrGraph& g,
                     const AlgoOptions& opt);

CcResult CcAsync(runtime::Runtime& rt, const graph::CsrGraph& g,
                 const AlgoOptions& opt);

}  // namespace pmg::analytics

#endif  // PMG_ANALYTICS_CC_H_
