#include "pmg/analytics/cc.h"

#include <utility>

#include "pmg/metrics/profiler.h"
#include "pmg/runtime/per_thread.h"
#include "pmg/runtime/worklist.h"

namespace pmg::analytics {

namespace {

runtime::NumaArray<uint64_t> InitLabels(runtime::Runtime& rt,
                                        const graph::CsrGraph& g,
                                        const AlgoOptions& opt) {
  runtime::NumaArray<uint64_t> label(&g.machine(), g.num_vertices(),
                                     opt.label_policy, "cc.label");
  rt.ParallelFor(0, g.num_vertices(), [&](ThreadId t, uint64_t v) {
    label.Set(t, v, v);
  });
  return label;
}

}  // namespace

CcResult CcLabelProp(runtime::Runtime& rt, const graph::CsrGraph& g,
                     const AlgoOptions& opt) {
  PMG_PROF_SCOPE("cc.label_prop");
  // Double-buffered (Jacobi) label propagation: each round reads the
  // previous round's labels and writes the next — the semantics a
  // Pregel-style vertex program compiles to. Information travels one hop
  // per round, so rounds scale with the component diameter; each round
  // additionally pays an O(|V|) copy, the vertex-program tax the paper's
  // Figure 7b measures against LabelProp-SC.
  CcResult out;
  out.time_ns = rt.Timed([&] {
    out.label = InitLabels(rt, g, opt);
    runtime::NumaArray<uint64_t> next(&g.machine(), g.num_vertices(),
                                      opt.label_policy, "cc.next");
    runtime::DenseWorklist wl(&g.machine(), g.num_vertices(),
                              opt.label_policy, "cc.wl");
    rt.ParallelFor(0, g.num_vertices(), [&](ThreadId t, uint64_t v) {
      wl.ActivateCur(t, v);
    });
    uint64_t round = 0;
    while (!wl.Empty()) {
      rt.ParallelFor(0, g.num_vertices(), [&](ThreadId t, uint64_t v) {
        next.Set(t, v, out.label.Get(t, v));
      });
      wl.ForEachActive(rt, [&](ThreadId t, uint64_t v) {
        const uint64_t lv = out.label.Get(t, v);
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
          if (next.CasMin(tt, u, lv)) wl.Activate(tt, u);
        });
      });
      std::swap(out.label, next);
      wl.Advance(rt);
      ++round;
    }
    out.rounds = round;
  });
  return out;
}

CcResult CcLabelPropSC(runtime::Runtime& rt, const graph::CsrGraph& g,
                       const AlgoOptions& opt) {
  PMG_PROF_SCOPE("cc.label_prop_sc");
  // Work items carry the label at push time; entries whose vertex has
  // since improved are stale and skipped without touching edges (lazy
  // deduplication, as in Galois's label-correcting operators).
  struct Item {
    VertexId v;
    uint64_t label;
  };
  CcResult out;
  out.time_ns = rt.Timed([&] {
    out.label = InitLabels(rt, g, opt);
    memsim::Machine& m = g.machine();
    runtime::SparseWorklist<Item> a(&m, rt.threads(),
        "cc.cur", WorklistPolicy(opt));
    runtime::SparseWorklist<Item> b(&m, rt.threads(),
        "cc.next", WorklistPolicy(opt));
    runtime::SparseWorklist<Item>* cur = &a;
    runtime::SparseWorklist<Item>* next = &b;
    {
      m.CloseEpochIfOpen();
      m.BeginEpoch(rt.threads());
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        cur->Push(static_cast<ThreadId>(v % rt.threads()), {v, v});
      }
      m.EndEpoch();
    }
    uint64_t round = 0;
    while (!cur->Empty()) {
      // One propagation round over the active set.
      m.CloseEpochIfOpen();
      m.BeginEpoch(rt.threads());
      Item item;
      ThreadId t = 0;
      while (cur->Pop(t, &item)) {
        // Any thread may CasMin this vertex's label in the same epoch, so
        // the staleness check reads it atomically.
        const uint64_t lv = out.label.GetAtomic(t, item.v);
        if (lv == item.label) {
          g.ForEachOutEdge(t, item.v,
                           [&](ThreadId tt, VertexId u, uint32_t) {
            if (out.label.CasMin(tt, u, lv)) next->Push(tt, {u, lv});
          });
        }
        t = (t + 1) % rt.threads();
      }
      m.EndEpoch();
      // Shortcut: one pointer-jump level — label[v] <- label[label[v]].
      // This operator reads an arbitrary vertex's label: a non-vertex
      // program, inexpressible in vertex-program-only systems. label[lv2]
      // belongs to another thread's partition and may be written by its
      // owner in this very pass, so the jump read and the store are
      // atomic; the read of the thread's own label[v2] stays plain (only
      // its owner writes it here).
      rt.ParallelFor(0, g.num_vertices(), [&](ThreadId t2, uint64_t v2) {
        const uint64_t lv2 = out.label.Get(t2, v2);
        const uint64_t ll = out.label.GetAtomic(t2, lv2);
        if (ll < lv2) {
          out.label.SetAtomic(t2, v2, ll);
          // The improved label must still be propagated: re-queue.
          next->Push(t2, {static_cast<VertexId>(v2), ll});
        }
      });
      std::swap(cur, next);
      ++round;
    }
    out.rounds = round;
  });
  return out;
}

CcResult CcLabelPropSCDir(runtime::Runtime& rt, const graph::CsrGraph& g,
                          const AlgoOptions& opt) {
  PMG_PROF_SCOPE("cc.label_prop_sc_dir");
  struct Item {
    VertexId v;
    uint64_t label;
  };
  CcResult out;
  out.time_ns = rt.Timed([&] {
    out.label = InitLabels(rt, g, opt);
    memsim::Machine& m = g.machine();
    runtime::SparseWorklist<Item> a(&m, rt.threads(),
        "cc.cur", WorklistPolicy(opt));
    runtime::SparseWorklist<Item> b(&m, rt.threads(),
        "cc.next", WorklistPolicy(opt));
    runtime::SparseWorklist<Item>* cur = &a;
    runtime::SparseWorklist<Item>* next = &b;
    {
      m.CloseEpochIfOpen();
      m.BeginEpoch(rt.threads());
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        cur->Push(static_cast<ThreadId>(v % rt.threads()), {v, v});
      }
      m.EndEpoch();
    }
    uint64_t round = 0;
    while (!cur->Empty()) {
      m.CloseEpochIfOpen();
      m.BeginEpoch(rt.threads());
      Item item;
      ThreadId t = 0;
      while (cur->Pop(t, &item)) {
        uint64_t lv = out.label.GetAtomic(t, item.v);
        if (lv == item.label) {
          // Phase 1: gather the minimum over the neighbourhood. Neighbour
          // labels are concurrently hooked (CasMin) by other threads, so
          // the gather reads are atomic loads.
          const auto [first, last] = g.OutRange(t, item.v);
          uint64_t mn = lv;
          for (EdgeId e = first; e < last; ++e) {
            const uint64_t lu = out.label.GetAtomic(t, g.OutDst(t, e));
            if (lu < mn) mn = lu;
          }
          // Phase 2: hook every endpoint (and the vertex) to the minimum.
          if (out.label.CasMin(t, item.v, mn)) {
            next->Push(t, {item.v, mn});
          }
          for (EdgeId e = first; e < last; ++e) {
            const VertexId u = g.OutDst(t, e);
            if (out.label.CasMin(t, u, mn)) next->Push(t, {u, mn});
          }
        }
        t = (t + 1) % rt.threads();
      }
      m.EndEpoch();
      // Shortcut pass, re-queueing improved vertices (same annotation as
      // the LabelProp-SC shortcut: the pointer-jump read and the store
      // are atomic, the own-label read is private to its owner).
      rt.ParallelFor(0, g.num_vertices(), [&](ThreadId t2, uint64_t v2) {
        const uint64_t lv2 = out.label.Get(t2, v2);
        const uint64_t ll = out.label.GetAtomic(t2, lv2);
        if (ll < lv2) {
          out.label.SetAtomic(t2, v2, ll);
          next->Push(t2, {static_cast<VertexId>(v2), ll});
        }
      });
      std::swap(cur, next);
      ++round;
    }
    out.rounds = round;
  });
  return out;
}

CcResult CcUnionFind(runtime::Runtime& rt, const graph::CsrGraph& g,
                     const AlgoOptions& opt) {
  PMG_PROF_SCOPE("cc.union_find");
  CcResult out;
  out.time_ns = rt.Timed([&] {
    out.label = InitLabels(rt, g, opt);  // parent pointers
    runtime::PerThreadFlag hooked(rt.threads());
    bool changed = true;
    uint64_t round = 0;
    while (changed) {
      hooked.Reset();
      // Hook: point the larger root at the smaller endpoint's root. Every
      // parent pointer here can be read and written by any thread (the
      // root pu of an edge is an arbitrary vertex), so all accesses are
      // atomic — the real algorithm hooks with a CAS on the root.
      rt.ParallelFor(0, g.num_vertices(), [&](ThreadId t, uint64_t v) {
        const uint64_t pv = out.label.GetAtomic(t, v);
        g.ForEachOutEdge(t, v, [&](ThreadId tt, VertexId u, uint32_t) {
          const uint64_t pu = out.label.GetAtomic(tt, u);
          if (pv < pu && out.label.GetAtomic(tt, pu) == pu) {
            out.label.SetAtomic(tt, pu, pv);
            hooked.Mark(tt);
          }
        });
      });
      // Compress: one pointer-jump pass per round (Shiloach-Vishkin
      // halves chain depth each round, giving the O(log) round count of
      // the real parallel algorithm). Writes target only the thread's own
      // v, but label[p] belongs to an arbitrary owner, so the jump read
      // and the store are atomic.
      rt.ParallelFor(0, g.num_vertices(), [&](ThreadId t, uint64_t v) {
        const uint64_t p = out.label.Get(t, v);
        const uint64_t pp = out.label.GetAtomic(t, p);
        if (pp != p) {
          out.label.SetAtomic(t, v, pp);
          hooked.Mark(t);
        }
      });
      changed = hooked.Any();
      ++round;
    }
    out.rounds = round;
  });
  return out;
}

CcResult CcAsync(runtime::Runtime& rt, const graph::CsrGraph& g,
                 const AlgoOptions& opt) {
  PMG_PROF_SCOPE("cc.async");
  struct Item {
    VertexId v;
    uint64_t label;
  };
  CcResult out;
  out.time_ns = rt.Timed([&] {
    out.label = InitLabels(rt, g, opt);
    runtime::SparseWorklist<Item> wl(&g.machine(), rt.threads(),
        "cc.async", WorklistPolicy(opt));
    g.machine().CloseEpochIfOpen();
    g.machine().BeginEpoch(rt.threads());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      wl.Push(static_cast<ThreadId>(v % rt.threads()), {v, v});
    }
    g.machine().EndEpoch();
    runtime::DrainAsync(rt, wl, [&](ThreadId t, Item item) {
      // The whole drain is one epoch; any thread may CasMin this label
      // concurrently, so the staleness check is an atomic load.
      const uint64_t lv = out.label.GetAtomic(t, item.v);
      if (lv != item.label) return;  // stale entry
      g.ForEachOutEdge(t, item.v, [&](ThreadId tt, VertexId u, uint32_t) {
        if (out.label.CasMin(tt, u, lv)) wl.Push(tt, {u, lv});
      });
    });
    out.rounds = 1;
  });
  return out;
}

}  // namespace pmg::analytics
