#ifndef PMG_ANALYTICS_SSSP_H_
#define PMG_ANALYTICS_SSSP_H_

#include "pmg/analytics/common.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"

/// \file sssp.h
/// Single-source shortest paths variants (Figure 7c/8c):
///   - SsspBellmanFord: topology-driven rounds over every vertex.
///   - SsspDenseWl: bulk-synchronous data-driven with a dense frontier.
///   - SsspDeltaStep: asynchronous delta-stepping over priority buckets —
///     the sparse-worklist algorithm only Galois supports (Section 5.2).
/// Requires a graph built with weights.

namespace pmg::analytics {

struct SsspResult {
  runtime::NumaArray<uint64_t> dist;  // kInfDist when unreached
  uint64_t rounds = 0;
  SimNs time_ns = 0;
};

SsspResult SsspBellmanFord(runtime::Runtime& rt, const graph::CsrGraph& g,
                           VertexId source, const AlgoOptions& opt);

SsspResult SsspDenseWl(runtime::Runtime& rt, const graph::CsrGraph& g,
                       VertexId source, const AlgoOptions& opt);

SsspResult SsspDeltaStep(runtime::Runtime& rt, const graph::CsrGraph& g,
                         VertexId source, const AlgoOptions& opt);

}  // namespace pmg::analytics

#endif  // PMG_ANALYTICS_SSSP_H_
