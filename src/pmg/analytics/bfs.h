#ifndef PMG_ANALYTICS_BFS_H_
#define PMG_ANALYTICS_BFS_H_

#include "pmg/analytics/common.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/runtime/numa_array.h"
#include "pmg/runtime/runtime.h"

/// \file bfs.h
/// Breadth-first search variants (Figure 7a/8a):
///   - BfsDenseWl: bulk-synchronous push with a dense (bit-vector)
///     frontier — the vertex-program baseline of GAP/GraphIt/GBBS.
///   - BfsDirectionOpt: Beamer push/pull switching; needs in-edges and
///     touches both edge directions.
///   - BfsSparseWl: bulk-synchronous push over sparse per-round bags —
///     memory traffic proportional to the frontier (Galois).
///   - BfsAsync: asynchronous label-correcting on one sparse worklist.

namespace pmg::analytics {

struct BfsResult {
  runtime::NumaArray<uint32_t> level;  // kInfLevel when unreached
  uint64_t rounds = 0;
  SimNs time_ns = 0;
};

BfsResult BfsDenseWl(runtime::Runtime& rt, const graph::CsrGraph& g,
                     VertexId source, const AlgoOptions& opt);

/// Requires g.has_in_edges().
BfsResult BfsDirectionOpt(runtime::Runtime& rt, const graph::CsrGraph& g,
                          VertexId source, const AlgoOptions& opt);

BfsResult BfsSparseWl(runtime::Runtime& rt, const graph::CsrGraph& g,
                      VertexId source, const AlgoOptions& opt);

BfsResult BfsAsync(runtime::Runtime& rt, const graph::CsrGraph& g,
                   VertexId source, const AlgoOptions& opt);

}  // namespace pmg::analytics

#endif  // PMG_ANALYTICS_BFS_H_
