#include "pmg/analytics/tc.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "pmg/metrics/profiler.h"
#include "pmg/runtime/per_thread.h"

namespace pmg::analytics {

graph::CsrTopology TcPrepare(const graph::CsrTopology& g) {
  const graph::CsrTopology sym = graph::Symmetrize(g);
  // Rank vertices by (degree, id); relabeling by rank makes "higher rank"
  // simply "larger id", so orientation and sorted intersection agree.
  std::vector<VertexId> order(sym.num_vertices);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const uint64_t da = sym.OutDegree(a);
    const uint64_t db = sym.OutDegree(b);
    return da != db ? da < db : a < b;
  });
  std::vector<VertexId> rank(sym.num_vertices);
  for (uint64_t i = 0; i < order.size(); ++i) rank[order[i]] = i;

  graph::EdgeList forward;
  forward.reserve(sym.NumEdges() / 2);
  for (VertexId v = 0; v < sym.num_vertices; ++v) {
    for (uint64_t e = sym.index[v]; e < sym.index[v + 1]; ++e) {
      const VertexId u = sym.dst[e];
      if (rank[v] < rank[u]) forward.push_back({rank[v], rank[u], 1});
    }
  }
  graph::CsrTopology fwd =
      graph::BuildCsr(sym.num_vertices, forward, /*keep_weights=*/false);
  graph::SortAdjacency(&fwd);
  return fwd;
}

TcResult Tc(runtime::Runtime& rt, const graph::CsrGraph& g) {
  PMG_PROF_SCOPE("tc");
  TcResult out;
  out.time_ns = rt.Timed([&] {
    runtime::PerThreadSum<uint64_t> total(rt.threads());
    // Node iterator: for each edge (v, u), count |adj+(v) n adj+(u)| via
    // a sorted two-pointer merge with costed reads. Race audit: the
    // kernel only reads the (immutable) oriented graph, and the triangle
    // count accumulates per thread (an integral sum, so the reduction
    // order cannot change the result) — no atomic annotations needed.
    rt.ParallelForDynamic(0, g.num_vertices(), /*chunk=*/64,
                          [&](ThreadId t, uint64_t v) {
      const auto [v_first, v_last] = g.OutRange(t, v);
      for (EdgeId ev = v_first; ev < v_last; ++ev) {
        const VertexId u = g.OutDst(t, ev);
        const auto [u_first, u_last] = g.OutRange(t, u);
        EdgeId a = v_first;
        EdgeId b = u_first;
        while (a < v_last && b < u_last) {
          const VertexId da = g.OutDst(t, a);
          const VertexId db = g.OutDst(t, b);
          if (da == db) {
            total.Add(t, 1);
            ++a;
            ++b;
          } else if (da < db) {
            ++a;
          } else {
            ++b;
          }
        }
      }
    });
    out.triangles = total.Total();
  });
  return out;
}

}  // namespace pmg::analytics
