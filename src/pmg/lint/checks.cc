#include "pmg/lint/checks.h"

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>

namespace pmg::lint::internal {

namespace {

using Tokens = std::vector<Token>;

/// Index of the token matching the opener at `i` (e.g. '(' -> its ')').
/// Returns tokens.size() when unbalanced. `open`/`close` are punct texts.
size_t MatchForward(const Tokens& t, size_t i, std::string_view open,
                    std::string_view close) {
  int depth = 0;
  for (size_t k = i; k < t.size(); ++k) {
    if (t[k].kind != TokKind::kPunct) continue;
    if (t[k].text == open) {
      ++depth;
    } else if (t[k].text == close) {
      if (--depth == 0) return k;
    }
  }
  return t.size();
}

/// Splits the argument list of a call whose '(' is at `open_idx` into
/// top-level [begin, end) token ranges. Returns the index of the ')'.
size_t SplitArgs(const Tokens& t, size_t open_idx,
                 std::vector<std::pair<size_t, size_t>>* args) {
  const size_t close = MatchForward(t, open_idx, "(", ")");
  size_t begin = open_idx + 1;
  int depth = 0;
  for (size_t k = open_idx + 1; k < close; ++k) {
    if (t[k].kind != TokKind::kPunct) continue;
    const std::string_view p = t[k].text;
    if (p == "(" || p == "[" || p == "{") ++depth;
    if (p == ")" || p == "]" || p == "}") --depth;
    if (p == "," && depth == 0) {
      args->push_back({begin, k});
      begin = k + 1;
    }
  }
  if (close > begin || close == begin) args->push_back({begin, close});
  return close;
}

bool RangeContainsIdent(const Tokens& t, size_t begin, size_t end,
                        std::string_view ident) {
  for (size_t k = begin; k < end && k < t.size(); ++k) {
    if (t[k].IsIdent(ident)) return true;
  }
  return false;
}

void Add(std::vector<Finding>* out, const SourceFile& file, uint32_t line,
         const char* check, std::string message) {
  out->push_back({file.path, line, check, std::move(message)});
}

}  // namespace

// --- pmg-no-host-clock -----------------------------------------------------

void CheckNoHostClock(const SourceFile& file, const TokenStream& ts,
                      const LintOptions& options, std::vector<Finding>* out) {
  for (const std::string& prefix : options.host_dirs) {
    if (file.path.rfind(prefix, 0) == 0) return;  // host-only code
  }
  static const std::set<std::string_view> kBannedCalls = {
      "time",          "clock",      "rand",         "srand",
      "gettimeofday",  "localtime",  "gmtime",       "mktime",
      "clock_gettime", "timespec_get"};
  static const std::set<std::string_view> kBannedIdents = {
      "random_device", "steady_clock", "system_clock",
      "high_resolution_clock"};
  static const std::set<std::string_view> kBannedIncludes = {
      "chrono", "ctime", "time.h", "sys/time.h"};
  const Tokens& t = ts.code;
  for (size_t i = 0; i < t.size(); ++i) {
    // #include <chrono> and friends.
    if (t[i].Is("#") && i + 2 < t.size() && t[i + 1].IsIdent("include") &&
        t[i + 2].Is("<")) {
      std::string header;
      size_t k = i + 3;
      while (k < t.size() && !t[k].Is(">") && t[k].line == t[i].line) {
        header += t[k].text;
        ++k;
      }
      if (kBannedIncludes.count(header) > 0) {
        Add(out, file, t[i].line, kNoHostClock,
            "#include <" + header +
                "> in simulated code: all time must come from the "
                "machine's SimNs clock");
      }
      continue;
    }
    if (t[i].kind != TokKind::kIdent) continue;
    const bool member = i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->"));
    // std::chrono::* anywhere.
    if (t[i].Is("chrono") && i >= 2 && t[i - 1].Is("::") &&
        t[i - 2].IsIdent("std")) {
      Add(out, file, t[i].line, kNoHostClock,
          "std::chrono in simulated code: use the machine's SimNs clock");
      continue;
    }
    if (!member && kBannedIdents.count(t[i].text) > 0) {
      Add(out, file, t[i].line, kNoHostClock,
          "host entropy/clock type '" + std::string(t[i].text) +
              "': simulated code must be deterministic (seed a PRNG "
              "explicitly)");
      continue;
    }
    if (kBannedCalls.count(t[i].text) > 0 && i + 1 < t.size() &&
        t[i + 1].Is("(")) {
      if (member) continue;  // foo.time(...) is not the libc call
      if (i > 0 && t[i - 1].Is("::") &&
          !(i >= 2 && t[i - 2].IsIdent("std"))) {
        continue;  // somelib::time(...) is not the libc call
      }
      if (i > 0 && t[i - 1].kind == TokKind::kIdent &&
          !t[i - 1].IsIdent("return")) {
        continue;  // `uint64_t time(...)` declares a member, calls nothing
      }
      Add(out, file, t[i].line, kNoHostClock,
          "host clock/randomness call '" + std::string(t[i].text) +
              "()' in simulated code: priced paths must not read host "
              "state");
    }
  }
}

// --- pmg-unordered-iteration -----------------------------------------------

void CheckUnorderedIteration(const SourceFile& file, const TokenStream& ts,
                             const ProjectIndex& index,
                             std::vector<Finding>* out) {
  const Tokens& t = ts.code;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].IsIdent("for") || !t[i + 1].Is("(")) continue;
    const size_t close = MatchForward(t, i + 1, "(", ")");
    if (close == t.size()) continue;
    // A range-for has a top-level ':' inside the parens ("::" is a single
    // token, so this cannot misfire on qualified names).
    size_t colon = t.size();
    int depth = 0;
    for (size_t k = i + 2; k < close; ++k) {
      if (t[k].kind != TokKind::kPunct) continue;
      if (t[k].Is("(") || t[k].Is("[") || t[k].Is("{")) ++depth;
      if (t[k].Is(")") || t[k].Is("]") || t[k].Is("}")) --depth;
      if (t[k].Is(":") && depth == 0) {
        colon = k;
        break;
      }
    }
    if (colon == t.size()) continue;
    // The iterated expression: flag a literal unordered type, or a name
    // the project index knows is an unordered container.
    std::string_view iterated;
    bool unordered = false;
    for (size_t k = colon + 1; k < close; ++k) {
      if (t[k].kind != TokKind::kIdent) continue;
      if (t[k].Is("unordered_map") || t[k].Is("unordered_set")) {
        unordered = true;
        iterated = t[k].text;
      }
      if (index.unordered_names.count(std::string(t[k].text)) > 0) {
        unordered = true;
        iterated = t[k].text;
      }
    }
    if (unordered) {
      Add(out, file, t[i].line, kUnorderedIteration,
          "range-for over unordered container '" + std::string(iterated) +
              "': iteration order is nondeterministic — sort keys first "
              "(reports, goldens, cost accounting and serialization are "
              "all byte-stable surfaces)");
    }
  }
}

// --- pmg-check-side-effects ------------------------------------------------

void CheckCheckSideEffects(const SourceFile& file, const TokenStream& ts,
                           std::vector<Finding>* out) {
  static const std::set<std::string_view> kCheckMacros = {
      "PMG_CHECK", "PMG_CHECK_MSG", "PMG_ASSERT", "PMG_ASSERT_MSG"};
  static const std::set<std::string_view> kAssignOps = {
      "=",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  // Methods of the costed/runtime vocabulary that mutate their receiver.
  static const std::set<std::string_view> kMutating = {
      "Pop",        "PopMin",      "Push",       "Advance",  "Activate",
      "ActivateCur","Set",         "SetAtomic",  "Update",   "UpdateAtomic",
      "FetchAdd",   "CasMin",      "Charge",     "Alloc",    "Free",
      "BeginEpoch", "EndEpoch",    "CloseEpochIfOpen",       "erase",
      "insert",     "emplace",     "emplace_back", "push_back",
      "pop_back",   "clear",       "resize",     "Attach",   "Detach"};
  const Tokens& t = ts.code;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || kCheckMacros.count(t[i].text) == 0 ||
        !t[i + 1].Is("(")) {
      continue;
    }
    // Skip the macro's own definition (check.h): '#define PMG_CHECK(...)'.
    if (i >= 2 && t[i - 1].IsIdent("define") && t[i - 2].Is("#")) continue;
    std::vector<std::pair<size_t, size_t>> args;
    SplitArgs(t, i + 1, &args);
    if (args.empty()) continue;
    // Only the condition (first argument) must be pure; _MSG text args are
    // diagnostics printed on the way to abort.
    const auto [begin, end] = args[0];
    for (size_t k = begin; k < end && k < t.size(); ++k) {
      std::string offender;
      if (t[k].kind == TokKind::kPunct &&
          (t[k].Is("++") || t[k].Is("--") ||
           kAssignOps.count(t[k].text) > 0)) {
        offender = std::string(t[k].text);
      } else if (t[k].kind == TokKind::kIdent &&
                 kMutating.count(t[k].text) > 0 && k + 1 < end &&
                 t[k + 1].Is("(")) {
        offender = std::string(t[k].text) + "()";
      }
      if (!offender.empty()) {
        Add(out, file, t[i].line, kCheckSideEffects,
            std::string(t[i].text) + " condition contains '" + offender +
                "': checks must be side-effect free (the machine's "
                "invariants may never depend on a diagnostic running)");
        break;
      }
    }
  }
}

// --- pmg-hook-guard ----------------------------------------------------------

namespace {

/// Reconstructs the postfix base expression of a call `BASE->Method(...)`
/// ending at token `arrow_idx` (the '->' or '.'). Returns the index of
/// the base's first token, or arrow_idx when none was found.
size_t BaseBegin(const Tokens& t, size_t arrow_idx) {
  size_t j = arrow_idx;  // exclusive end; walk left
  while (j > 0) {
    const Token& p = t[j - 1];
    if (p.kind == TokKind::kIdent) {
      --j;
      if (j > 0 && (t[j - 1].Is(".") || t[j - 1].Is("->") ||
                    t[j - 1].Is("::"))) {
        --j;
        continue;
      }
      return j;
    }
    if (p.Is(")") || p.Is("]")) {
      const std::string_view close = p.text;
      const std::string_view open = p.Is(")") ? "(" : "[";
      int depth = 0;
      size_t k = j;
      while (k > 0) {
        --k;
        if (t[k].kind != TokKind::kPunct) continue;
        if (t[k].text == close) ++depth;
        if (t[k].text == open && --depth == 0) break;
      }
      if (depth != 0) return j;
      j = k;
      continue;  // the '(' may follow a callee identifier
    }
    return j;
  }
  return j;
}

bool SameTokenText(const Tokens& t, size_t at, const Tokens& base,
                   size_t base_begin, size_t base_end) {
  const size_t len = base_end - base_begin;
  if (at + len > t.size()) return false;
  for (size_t k = 0; k < len; ++k) {
    if (t[at + k].text != base[base_begin + k].text) return false;
  }
  return true;
}

}  // namespace

void CheckHookGuard(const SourceFile& file, const TokenStream& ts,
                    std::vector<Finding>* out) {
  static const std::set<std::string_view> kHookMethods = {
      "OnEpochTrace", "OnInstant",     "OnMediaAccess", "OnStorageOp",
      "OnQuarantined","RemoteBandwidthFactor",          "OnEpochBegin",
      "OnEpochEnd",   "OnAccess",      "OnAlloc",       "OnFree",
      "WantsCostModel",
      // The TierHook seam: the migration daemon's decision events.
      "OnTierAlloc",  "OnTierFree",    "OnTierPagePlaced",
      "OnTierCandidate", "OnTierMigrated", "OnTierSkipped",
      "OnTierScan",   "OnTierQuarantine", "OnTierEpoch"};
  // How far back (in tokens) a guard may sit. Wide enough that a
  // PMG_CHECK(ptr != nullptr) precondition at the top of a long emitter
  // function still counts; crossing into the previous function only
  // risks a false negative, which this analyzer accepts by design.
  constexpr size_t kGuardWindow = 2500;
  const Tokens& t = ts.code;
  for (size_t i = 2; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || kHookMethods.count(t[i].text) == 0 ||
        !t[i + 1].Is("(")) {
      continue;
    }
    // Only calls through a pointer can hit a detached (null) hook; a
    // hook method invoked on a by-value member or local via '.' has
    // nothing to guard.
    if (!t[i - 1].Is("->")) continue;
    const size_t base_begin = BaseBegin(t, i - 1);
    const size_t base_end = i - 1;
    if (base_begin >= base_end) continue;
    bool guarded = false;
    const size_t stop = base_begin > kGuardWindow ? base_begin - kGuardWindow
                                                  : 0;
    for (size_t k = base_begin; k-- > stop;) {
      if (!SameTokenText(t, k, t, base_begin, base_end)) continue;
      const size_t after = k + (base_end - base_begin);
      if (after >= base_begin) continue;  // overlaps the call itself
      // `base != nullptr` / `base == nullptr` (early-return style).
      if (after + 1 < t.size() &&
          (t[after].Is("!=") || t[after].Is("==")) &&
          t[after + 1].IsIdent("nullptr")) {
        guarded = true;
        break;
      }
      // `if (base)` / `while (base)` — the bare truth test.
      if (k >= 2 && t[k - 1].Is("(") &&
          (t[k - 2].IsIdent("if") || t[k - 2].IsIdent("while")) &&
          after < t.size() && t[after].Is(")")) {
        guarded = true;
        break;
      }
      // `if (!base.empty())`-style emptiness guard on a container of hooks.
      if (after + 2 < t.size() && t[after].Is(".") &&
          t[after + 1].IsIdent("empty") && t[after + 2].Is("(")) {
        guarded = true;
        break;
      }
      // Range-for binding: `for (Type* base : hooks_)` — iterating an
      // empty chain is already free, the loop is its own guard.
      if (base_end - base_begin == 1 && after < t.size() &&
          t[after].Is(":")) {
        guarded = true;
        break;
      }
    }
    if (!guarded) {
      std::string base;
      for (size_t k = base_begin; k < base_end; ++k) base += t[k].text;
      Add(out, file, t[i].line, kHookGuard,
          "call through observer seam '" + base +
              std::string(t[i - 1].text) + std::string(t[i].text) +
              "' without a null/empty guard: detached hooks must stay "
              "zero-cost (guard with 'if (" + base + " != nullptr)')");
    }
  }
}

// --- pmg-atomic-shared-write -------------------------------------------------

namespace {

/// Collects the parameter names of a lambda/function parameter list whose
/// '(' is at `open_idx`: the last identifier of each top-level argument.
void ParamNames(const Tokens& t, size_t open_idx,
                std::set<std::string>* names) {
  std::vector<std::pair<size_t, size_t>> args;
  SplitArgs(t, open_idx, &args);
  for (const auto& [begin, end] : args) {
    for (size_t k = end; k-- > begin;) {
      if (t[k].kind == TokKind::kIdent) {
        names->insert(std::string(t[k].text));
        break;
      }
    }
  }
}

}  // namespace

void CheckAtomicSharedWrite(const SourceFile& file, const TokenStream& ts,
                            std::vector<Finding>* out) {
  static const std::set<std::string_view> kParallelCalls = {
      "ParallelFor", "ParallelForDynamic", "ParallelExecute",
      "ForEachActive", "DrainAsync"};
  static const std::set<std::string_view> kPlainWrites = {"Set", "Update"};
  static const std::set<std::string_view> kAssignOps = {
      "=",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  const Tokens& t = ts.code;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent ||
        kParallelCalls.count(t[i].text) == 0 || !t[i + 1].Is("(")) {
      continue;
    }
    const size_t call_close = MatchForward(t, i + 1, "(", ")");
    if (call_close == t.size()) continue;
    // Find the body lambda: a '[' capture whose ']' is followed by '(' or
    // '{' inside the call's argument list.
    size_t lam = t.size();
    for (size_t k = i + 2; k < call_close; ++k) {
      if (!t[k].Is("[")) continue;
      const size_t cap_close = MatchForward(t, k, "[", "]");
      if (cap_close < call_close && cap_close + 1 < t.size() &&
          (t[cap_close + 1].Is("(") || t[cap_close + 1].Is("{"))) {
        lam = k;
        break;
      }
    }
    if (lam == t.size()) continue;  // no inline lambda (named functor)
    const size_t cap_close = MatchForward(t, lam, "[", "]");
    // Owner index: the last parameter of the body lambda (`v` in
    // `[&](ThreadId t, uint64_t v)`). Writes indexed by it touch state the
    // partitioning made thread-private; anything else is shared.
    std::set<std::string> params;
    std::string induction;
    size_t body_open = cap_close + 1;
    if (t[body_open].Is("(")) {
      std::vector<std::pair<size_t, size_t>> ps;
      const size_t pc = SplitArgs(t, body_open, &ps);
      ParamNames(t, body_open, &params);
      for (const auto& [begin, end] : ps) {
        for (size_t k = end; k-- > begin;) {
          if (t[k].kind == TokKind::kIdent) {
            induction = std::string(t[k].text);
            break;
          }
        }
      }
      body_open = pc + 1;
    }
    if (body_open >= t.size() || !t[body_open].Is("{")) continue;
    const size_t body_close = MatchForward(t, body_open, "{", "}");
    if (body_close == t.size()) continue;

    // Names declared inside the body (locals, structured bindings and
    // nested-lambda parameters): private to one virtual thread's turn.
    std::set<std::string> declared = params;
    for (size_t k = body_open + 1; k < body_close; ++k) {
      if (t[k].IsIdent("auto") && k + 1 < body_close && t[k + 1].Is("[")) {
        const size_t bc = MatchForward(t, k + 1, "[", "]");
        for (size_t m = k + 2; m < bc && m < body_close; ++m) {
          if (t[m].kind == TokKind::kIdent) {
            declared.insert(std::string(t[m].text));
          }
        }
        continue;
      }
      if (t[k].Is("[") && k + 1 < t.size()) {
        const size_t bc = MatchForward(t, k, "[", "]");
        if (bc + 1 < body_close && t[bc + 1].Is("(")) {
          // Nested lambda parameters: private, and (like the outer
          // params) valid private-slot subscripts — edge visitors forward
          // the runtime's thread id as `tt`.
          ParamNames(t, bc + 1, &declared);
          ParamNames(t, bc + 1, &params);
        }
        continue;
      }
      if (t[k].kind != TokKind::kIdent || k == body_open + 1) continue;
      const Token& prev = t[k - 1];
      const bool decl_shaped =
          prev.kind == TokKind::kIdent || prev.Is(">") || prev.Is("*") ||
          prev.Is("&") || prev.Is("&&");
      const bool terminated =
          k + 1 < body_close &&
          (t[k + 1].Is("=") || t[k + 1].Is(";") || t[k + 1].Is("{"));
      if (decl_shaped && terminated && !prev.IsIdent("return")) {
        declared.insert(std::string(t[k].text));
      }
    }

    // Pass 1: plain costed writes (.Set / .Update) whose element index
    // does not involve the induction variable — a write to another
    // thread's element must use the atomic variants.
    for (size_t k = body_open + 1; k < body_close; ++k) {
      if (t[k].kind == TokKind::kIdent && kPlainWrites.count(t[k].text) > 0 &&
          k > 0 && (t[k - 1].Is(".") || t[k - 1].Is("->")) &&
          k + 1 < body_close && t[k + 1].Is("(")) {
        std::vector<std::pair<size_t, size_t>> args;
        SplitArgs(t, k + 1, &args);
        if (args.size() < 2) continue;
        if (!induction.empty() &&
            RangeContainsIdent(t, args[1].first, args[1].second, induction)) {
          continue;  // owner write: index derives from the loop variable
        }
        Add(out, file, t[k].line, kAtomicSharedWrite,
            "plain ." + std::string(t[k].text) +
                "() on an element not indexed by the parallel loop "
                "variable: another virtual thread may touch it this epoch "
                "— use SetAtomic/UpdateAtomic/CasMin/FetchAdd (see "
                "DESIGN.md, atomicity contract)");
      }
      // Pass 2 (same walk): mutation of captured names. Anything written
      // through ++/--/assignment that is neither a parameter nor declared
      // in the body is shared across virtual threads.
      if (t[k].kind == TokKind::kIdent && k > 0 && !t[k - 1].Is(".") &&
          !t[k - 1].Is("->") && !t[k - 1].Is("::") &&
          declared.count(std::string(t[k].text)) == 0) {
        bool pre_incr = (t[k - 1].Is("++") || t[k - 1].Is("--"));
        if (pre_incr && k + 1 < body_close && t[k + 1].Is("[")) {
          // `++arr[t]`: same private-slot exemption as the postfix walk.
          const size_t sub = MatchForward(t, k + 1, "[", "]");
          for (const std::string& p : params) {
            if (RangeContainsIdent(t, k + 2, sub, p)) {
              pre_incr = false;
              break;
            }
          }
        }
        bool mutated = pre_incr;
        std::string op = pre_incr ? std::string(t[k - 1].text) : "";
        if (!mutated && k + 1 < body_close) {
          size_t after = k + 1;
          if (t[after].Is("[")) {
            const size_t sub = MatchForward(t, after, "[", "]");
            // A write whose subscript uses a lambda parameter (the loop
            // variable or the thread id) lands in a slot private to this
            // virtual thread — the per-thread-accumulator pattern.
            bool private_slot = false;
            for (const std::string& p : params) {
              if (RangeContainsIdent(t, after + 1, sub, p)) {
                private_slot = true;
                break;
              }
            }
            if (private_slot) continue;
            after = sub + 1;
          }
          if (after < body_close && t[after].kind == TokKind::kPunct &&
              (t[after].Is("++") || t[after].Is("--") ||
               kAssignOps.count(t[after].text) > 0)) {
            // Exclude declarations of the form `Type name = ...` (handled
            // above) and comparisons (== etc. are distinct tokens).
            const bool decl_shaped = t[k - 1].kind == TokKind::kIdent ||
                                     t[k - 1].Is(">") || t[k - 1].Is("*") ||
                                     t[k - 1].Is("&") || t[k - 1].Is("&&");
            if (!decl_shaped) {
              mutated = true;
              op = std::string(t[after].text);
            }
          }
        }
        if (mutated) {
          std::string msg("'");
          msg.append(t[k].text);
          msg.append(" ");
          msg.append(op);
          msg.append(
              "' mutates state captured by reference inside a parallel "
              "body: hoist it into a per-thread accumulator or an "
              "atomic-annotated array (host-parallel execution will race "
              "here)");
          Add(out, file, t[k].line, kAtomicSharedWrite, msg);
        }
      }
    }
  }
}

// --- pmg-enum-switch ---------------------------------------------------------

void CheckEnumSwitch(const SourceFile& file, const TokenStream& ts,
                     const ProjectIndex& index, std::vector<Finding>* out) {
  const Tokens& t = ts.code;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].IsIdent("switch") || !t[i + 1].Is("(")) continue;
    const size_t cond_close = MatchForward(t, i + 1, "(", ")");
    if (cond_close + 1 >= t.size() || !t[cond_close + 1].Is("{")) continue;
    const size_t body_open = cond_close + 1;
    const size_t body_close = MatchForward(t, body_open, "{", "}");
    if (body_close == t.size()) continue;

    std::string enum_name;
    std::set<std::string> covered;
    bool non_enum_case = false;
    bool mixed = false;
    size_t default_line = 0;
    for (size_t k = body_open + 1; k < body_close; ++k) {
      // Skip nested switches; they are visited by the outer loop anyway.
      if (t[k].IsIdent("switch") && k + 1 < body_close && t[k + 1].Is("(")) {
        const size_t nc = MatchForward(t, k + 1, "(", ")");
        if (nc + 1 < body_close && t[nc + 1].Is("{")) {
          k = MatchForward(t, nc + 1, "{", "}");
          continue;
        }
      }
      if (t[k].IsIdent("default") && k + 1 < body_close &&
          t[k + 1].Is(":")) {
        default_line = t[k].line;
        continue;
      }
      if (!t[k].IsIdent("case")) continue;
      // Tokens between `case` and its ':' — the last ident is the
      // enumerator, the one before the final '::' the enum type.
      std::vector<std::string_view> idents;
      size_t m = k + 1;
      while (m < body_close && !t[m].Is(":")) {
        if (t[m].kind == TokKind::kIdent) idents.push_back(t[m].text);
        ++m;
      }
      if (idents.size() < 2) {
        non_enum_case = true;  // `case 3:` or an unscoped constant
        continue;
      }
      const std::string name(idents[idents.size() - 2]);
      if (index.enums.count(name) == 0) {
        non_enum_case = true;  // switch over a library enum: out of scope
        continue;
      }
      if (!enum_name.empty() && enum_name != name) mixed = true;
      enum_name = name;
      covered.insert(std::string(idents.back()));
    }
    if (enum_name.empty() || mixed || non_enum_case) continue;

    if (default_line != 0) {
      // A default is allowed, but only with a justification comment on
      // its own line or the line above — an explicit sign-off that new
      // enumerators are meant to fall through.
      bool justified = ts.comments.count(default_line) > 0 ||
                       ts.comments.count(default_line - 1) > 0;
      if (!justified) {
        Add(out, file, default_line, kEnumSwitch,
            "default in switch over '" + enum_name +
                "' has no justification comment: either cover every "
                "enumerator or say why falling through is safe");
      }
      continue;
    }
    const auto& all = index.enums.at(enum_name);
    std::string missing;
    int missing_count = 0;
    for (const std::string& e : all) {
      if (covered.count(e) > 0) continue;
      if (++missing_count <= 4) {
        if (!missing.empty()) missing += ", ";
        missing += e;
      }
    }
    if (missing_count > 4) missing += ", ...";
    if (missing_count > 0) {
      Add(out, file, t[i].line, kEnumSwitch,
          "switch over '" + enum_name + "' is not exhaustive: missing " +
              missing + " (a new cost class must not silently take some "
              "other class's price)");
    }
  }
}

// --- pmg-test-tier-label (cmake) --------------------------------------------

namespace {

struct CmakeTok {
  std::string text;
  uint32_t line;
};

/// CMake needs only words, parens and '#' comments; quoted strings are
/// one word (quotes kept so "LABELS" the string differs from the keyword).
void TokenizeCmake(const std::string& src, std::vector<CmakeTok>* toks,
                   std::multimap<uint32_t, std::string>* comments) {
  uint32_t line = 1;
  size_t i = 0;
  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {
      const size_t start = i;
      while (i < src.size() && src[i] != '\n') ++i;
      comments->emplace(line, src.substr(start, i - start));
      continue;
    }
    if (c == '(' || c == ')') {
      toks->push_back({std::string(1, c), line});
      ++i;
      continue;
    }
    if (c == '"') {
      const size_t start = i++;
      while (i < src.size() && src[i] != '"') {
        i += src[i] == '\\' && i + 1 < src.size() ? 2 : 1;
      }
      if (i < src.size()) ++i;
      toks->push_back({src.substr(start, i - start), line});
      continue;
    }
    const size_t start = i;
    while (i < src.size() && src[i] != ' ' && src[i] != '\t' &&
           src[i] != '\n' && src[i] != '\r' && src[i] != '(' &&
           src[i] != ')' && src[i] != '#') {
      ++i;
    }
    toks->push_back({src.substr(start, i - start), line});
  }
}

/// Collects the arguments of the call whose '(' is at `open`; returns the
/// index after the matching ')'.
size_t CmakeArgs(const std::vector<CmakeTok>& t, size_t open,
                 std::vector<CmakeTok>* args) {
  int depth = 0;
  size_t k = open;
  for (; k < t.size(); ++k) {
    if (t[k].text == "(") {
      ++depth;
      if (depth == 1) continue;
    }
    if (t[k].text == ")" && --depth == 0) return k + 1;
    if (depth >= 1) args->push_back(t[k]);
  }
  return k;
}

}  // namespace

void CheckTestTierLabel(const SourceFile& file,
                        std::multimap<uint32_t, std::string>* comment_lines,
                        std::vector<Finding>* out) {
  std::vector<CmakeTok> t;
  TokenizeCmake(file.text, &t, comment_lines);

  struct Registered {
    std::string name;
    uint32_t line;
  };
  std::vector<Registered> tests;
  std::set<std::string> labelled;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i + 1].text != "(") continue;
    if (t[i].text == "add_test") {
      std::vector<CmakeTok> args;
      CmakeArgs(t, i + 1, &args);
      std::string name;
      for (size_t k = 0; k < args.size(); ++k) {
        if (args[k].text == "NAME" && k + 1 < args.size()) {
          name = args[k + 1].text;
          break;
        }
      }
      if (name.empty() && !args.empty()) name = args[0].text;
      if (!name.empty()) tests.push_back({name, t[i].line});
    } else if (t[i].text == "set_tests_properties") {
      std::vector<CmakeTok> args;
      CmakeArgs(t, i + 1, &args);
      bool labels = false;
      bool timeout = false;
      size_t props = args.size();
      for (size_t k = 0; k < args.size(); ++k) {
        if (args[k].text == "PROPERTIES" && props == args.size()) props = k;
        if (args[k].text == "LABELS") labels = true;
        if (args[k].text == "TIMEOUT") timeout = true;
      }
      if (labels && timeout) {
        for (size_t k = 0; k < props; ++k) labelled.insert(args[k].text);
      }
    } else if (t[i].text == "gtest_discover_tests") {
      std::vector<CmakeTok> args;
      CmakeArgs(t, i + 1, &args);
      bool labels = false;
      bool timeout = false;
      for (const CmakeTok& a : args) {
        if (a.text == "LABELS") labels = true;
        if (a.text == "TIMEOUT") timeout = true;
      }
      if (!labels || !timeout) {
        Add(out, file, t[i].line, kTestTierLabel,
            "gtest_discover_tests without LABELS tier1/tier2 and TIMEOUT "
            "properties: untiered tests dodge both the merge gate and the "
            "hang timeout");
      }
    }
  }
  for (const Registered& reg : tests) {
    if (labelled.count(reg.name) > 0) continue;
    Add(out, file, reg.line, kTestTierLabel,
        "test '" + reg.name +
            "' is registered without LABELS (tier1/tier2) and TIMEOUT "
            "set_tests_properties: every ctest must pick a tier and a "
            "hang bound");
  }
}

}  // namespace pmg::lint::internal
