#include "pmg/lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "pmg/lint/checks.h"

namespace pmg::lint {

namespace fs = std::filesystem;

std::string Finding::Format() const {
  std::ostringstream os;
  os << file << ":" << line << ": " << check << ": " << message;
  return os.str();
}

std::string Finding::Key() const {
  std::ostringstream os;
  os << file << ": " << check << ": " << message;
  return os.str();
}

bool Finding::operator<(const Finding& o) const {
  if (file != o.file) return file < o.file;
  if (line != o.line) return line < o.line;
  if (check != o.check) return check < o.check;
  return message < o.message;
}

bool Finding::operator==(const Finding& o) const {
  return file == o.file && line == o.line && check == o.check &&
         message == o.message;
}

const std::vector<std::string>& AllCheckIds() {
  static const std::vector<std::string> kIds = [] {
    std::vector<std::string> ids = {
        internal::kNoHostClock,   internal::kUnorderedIteration,
        internal::kCheckSideEffects, internal::kHookGuard,
        internal::kAtomicSharedWrite, internal::kEnumSwitch,
        internal::kTestTierLabel, internal::kSuppression,
    };
    std::sort(ids.begin(), ids.end());
    return ids;
  }();
  return kIds;
}

bool IsKnownCheckId(const std::string& id) {
  const std::vector<std::string>& ids = AllCheckIds();
  return std::binary_search(ids.begin(), ids.end(), id);
}

// ---------------------------------------------------------------------------
// Project index
// ---------------------------------------------------------------------------

namespace {

/// Collects `enum [class|struct] Name [: base] { A, B = 1, C };`
/// definitions. Anonymous enums and forward declarations are skipped.
void IndexEnums(const std::vector<Token>& t, ProjectIndex* index) {
  const size_t n = t.size();
  for (size_t i = 0; i < n; ++i) {
    if (!t[i].IsIdent("enum")) continue;
    size_t j = i + 1;
    if (j < n && (t[j].IsIdent("class") || t[j].IsIdent("struct"))) ++j;
    if (j >= n || t[j].kind != TokKind::kIdent) continue;  // anonymous
    const std::string name(t[j].text);
    ++j;
    // Skip an optional underlying type up to '{'; a ';' first means this
    // was only a forward declaration.
    while (j < n && !t[j].Is("{") && !t[j].Is(";")) ++j;
    if (j >= n || !t[j].Is("{")) continue;
    std::vector<std::string> enumerators;
    ++j;
    while (j < n && !t[j].Is("}")) {
      if (t[j].kind != TokKind::kIdent) break;  // malformed; bail out
      enumerators.emplace_back(t[j].text);
      ++j;
      // Skip an optional `= expr` (which may contain parens/casts) up to
      // the next top-level ',' or the closing '}'.
      int depth = 0;
      while (j < n) {
        if (t[j].Is("(") || t[j].Is("{") || t[j].Is("[")) ++depth;
        if (t[j].Is(")") || t[j].Is("}") || t[j].Is("]")) {
          if (depth == 0) break;  // the enum's own '}'
          --depth;
        }
        if (depth == 0 && t[j].Is(",")) {
          ++j;
          break;
        }
        ++j;
      }
    }
    if (!enumerators.empty()) index->enums[name] = enumerators;
  }
}

/// Collects identifiers declared with an unordered container type:
/// `std::unordered_map<K, V> name;` (members, locals, parameters). The
/// template argument list is skipped with a depth walk that treats ">>"
/// as closing two levels.
void IndexUnorderedNames(const std::vector<Token>& t, ProjectIndex* index) {
  const size_t n = t.size();
  for (size_t i = 0; i + 1 < n; ++i) {
    if (!(t[i].IsIdent("unordered_map") || t[i].IsIdent("unordered_set")))
      continue;
    if (!t[i + 1].Is("<")) continue;
    int depth = 0;
    size_t j = i + 1;
    for (; j < n; ++j) {
      if (t[j].Is("<")) ++depth;
      if (t[j].Is(">")) --depth;
      if (t[j].Is(">>")) depth -= 2;
      if (depth <= 0 && j > i + 1) break;
    }
    ++j;  // past the closing '>'
    while (j < n && (t[j].Is("&") || t[j].Is("*") || t[j].IsIdent("const")))
      ++j;
    if (j < n && t[j].kind == TokKind::kIdent &&
        !(j + 1 < n && t[j + 1].Is("("))) {
      index->unordered_names.insert(std::string(t[j].text));
    }
  }
}

}  // namespace

void IndexSource(const SourceFile& file, ProjectIndex* index) {
  if (file.is_cmake) return;
  const TokenStream ts = TokenStream::Of(file.text);
  IndexEnums(ts.code, index);
  IndexUnorderedNames(ts.code, index);
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

namespace {

struct Suppression {
  uint32_t line;       ///< Line of the directive comment.
  std::string check;
  uint32_t last_line;  ///< Last line of the contiguous comment block.
};

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '/' ||
                   s[e - 1] == '*'))
    --e;
  return std::string(s.substr(b, e - b));
}

/// Parses `pmg-lint: allow(<check-id>) <reason>` directives out of one
/// comment. Malformed directives (unknown id, missing reason, missing
/// allow clause) become pmg-suppression findings.
void ParseSuppressionComment(const SourceFile& file, uint32_t line,
                             std::string_view text,
                             std::vector<Suppression>* sups,
                             std::vector<Finding>* findings) {
  // Only comments that *begin* with the tag (after the comment markers,
  // '#' for cmake) are directives; prose that merely mentions the syntax
  // is not.
  size_t tag = 0;
  while (tag < text.size() &&
         (text[tag] == '/' || text[tag] == '*' || text[tag] == '#' ||
          text[tag] == ' ' || text[tag] == '\t'))
    ++tag;
  if (text.substr(tag, 9) != "pmg-lint:") return;
  size_t pos = tag;
  bool any_allow = false;
  while (true) {
    const size_t a = text.find("allow(", pos);
    if (a == std::string_view::npos) break;
    const size_t close = text.find(')', a + 6);
    if (close == std::string_view::npos) break;
    any_allow = true;
    const std::string id = Trim(text.substr(a + 6, close - (a + 6)));
    const std::string reason = Trim(text.substr(close + 1));
    if (!IsKnownCheckId(id)) {
      findings->push_back({file.path, line, internal::kSuppression,
                           "unknown check id '" + id +
                               "' in suppression; see --list-checks"});
    } else if (reason.empty()) {
      findings->push_back({file.path, line, internal::kSuppression,
                           "suppression of " + id +
                               " needs a reason after the ')'"});
    } else {
      sups->push_back({line, id, line});
    }
    pos = close + 1;
  }
  if (!any_allow) {
    findings->push_back({file.path, line, internal::kSuppression,
                         "pmg-lint comment without an allow(<check-id>) "
                         "clause"});
  }
}

/// A suppression covers findings from its own line (trailing-comment
/// form) through the line after its comment block ends — so a directive
/// whose reason wraps onto further comment lines still reaches the
/// statement below the block.
bool Covers(const std::vector<Suppression>& sups, const Finding& f) {
  for (const Suppression& s : sups) {
    if (s.check != f.check) continue;
    if (f.line >= s.line && f.line <= s.last_line + 1) return true;
  }
  return false;
}

/// Extends each suppression through the contiguous run of comment lines
/// that follows it.
void ExtendThroughCommentBlocks(const std::set<uint32_t>& comment_lines,
                                std::vector<Suppression>* sups) {
  for (Suppression& s : *sups) {
    while (comment_lines.count(s.last_line + 1) > 0) ++s.last_line;
  }
}

}  // namespace

std::vector<Finding> LintSource(const SourceFile& file,
                                const ProjectIndex& index,
                                const LintOptions& options) {
  std::vector<Finding> raw;
  std::vector<Suppression> sups;
  std::vector<Finding> meta;  // malformed-suppression findings (never
                              // suppressible themselves)
  std::set<uint32_t> comment_lines;
  if (file.is_cmake) {
    std::multimap<uint32_t, std::string> comments;
    internal::CheckTestTierLabel(file, &comments, &raw);
    for (const auto& [line, text] : comments) {
      comment_lines.insert(line);
      ParseSuppressionComment(file, line, text, &sups, &meta);
    }
  } else {
    const TokenStream ts = TokenStream::Of(file.text);
    internal::CheckNoHostClock(file, ts, options, &raw);
    internal::CheckUnorderedIteration(file, ts, index, &raw);
    internal::CheckCheckSideEffects(file, ts, &raw);
    internal::CheckHookGuard(file, ts, &raw);
    internal::CheckAtomicSharedWrite(file, ts, &raw);
    internal::CheckEnumSwitch(file, ts, index, &raw);
    for (const auto& [line, text] : ts.comments) {
      comment_lines.insert(line);
      ParseSuppressionComment(file, line, text, &sups, &meta);
    }
  }
  ExtendThroughCommentBlocks(comment_lines, &sups);
  std::vector<Finding> out;
  for (Finding& f : raw) {
    if (!Covers(sups, f)) out.push_back(std::move(f));
  }
  for (Finding& f : meta) out.push_back(std::move(f));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// File collection
// ---------------------------------------------------------------------------

namespace {

bool SkippedDir(const std::string& name) {
  return name == "fixtures" || name == "goldens" || name == "baselines" ||
         name == "third_party" || name == ".git" ||
         name.rfind("build", 0) == 0;
}

bool LintableCpp(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cxx" || ext == ".hxx";
}

bool LintableCmake(const fs::path& p) {
  return p.filename() == "CMakeLists.txt" || p.extension() == ".cmake";
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  *out = os.str();
  return true;
}

void Walk(const fs::path& root, const fs::path& dir,
          std::vector<SourceFile>* out) {
  std::vector<fs::path> entries;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    entries.push_back(e.path());
  }
  std::sort(entries.begin(), entries.end());
  for (const fs::path& p : entries) {
    if (fs::is_directory(p)) {
      if (SkippedDir(p.filename().string())) continue;
      Walk(root, p, out);
      continue;
    }
    const bool cpp = LintableCpp(p);
    const bool cmake = LintableCmake(p);
    if (!cpp && !cmake) continue;
    SourceFile f;
    f.path = fs::relative(p, root).generic_string();
    f.is_cmake = cmake;
    if (ReadFile(p, &f.text)) out->push_back(std::move(f));
  }
}

}  // namespace

bool CollectFiles(const std::string& root, const std::vector<std::string>& dirs,
                  std::vector<SourceFile>* out, std::string* error) {
  const fs::path rp(root);
  std::error_code ec;
  if (!fs::is_directory(rp, ec)) {
    *error = "root is not a directory: " + root;
    return false;
  }
  for (const std::string& d : dirs) {
    const fs::path sub = rp / d;
    if (!fs::is_directory(sub, ec)) continue;  // missing dirs are skipped
    Walk(rp, sub, out);
  }
  std::sort(out->begin(), out->end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return true;
}

std::vector<Finding> LintTree(const std::vector<SourceFile>& files,
                              const LintOptions& options) {
  ProjectIndex index;
  for (const SourceFile& f : files) IndexSource(f, &index);
  std::vector<Finding> out;
  for (const SourceFile& f : files) {
    std::vector<Finding> fs = LintSource(f, index, options);
    out.insert(out.end(), std::make_move_iterator(fs.begin()),
               std::make_move_iterator(fs.end()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) os << f.Format() << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

std::vector<std::string> ParseBaseline(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    size_t b = 0;
    while (b < line.size() && (line[b] == ' ' || line[b] == '\t')) ++b;
    if (b == line.size() || line[b] == '#') continue;
    out.push_back(line.substr(b));
  }
  return out;
}

BaselineDiff DiffAgainstBaseline(const std::vector<Finding>& findings,
                                 const std::vector<std::string>& baseline) {
  std::map<std::string, uint64_t> pool;
  for (const std::string& k : baseline) ++pool[k];
  BaselineDiff diff;
  for (const Finding& f : findings) {
    auto it = pool.find(f.Key());
    if (it != pool.end() && it->second > 0) {
      --it->second;
      ++diff.matched;
    } else {
      diff.fresh.push_back(f);
    }
  }
  for (const auto& [key, count] : pool) {
    for (uint64_t i = 0; i < count; ++i) diff.stale.push_back(key);
  }
  return diff;
}

std::string WriteBaseline(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(f.Key());
  std::sort(keys.begin(), keys.end());
  std::ostringstream os;
  os << "# pmg_lint baseline: grandfathered findings, one Finding::Key per\n"
     << "# line. This file only shrinks: fix a finding, delete its line.\n"
     << "# Regenerate with: pmg_lint --root . --write-baseline <file>\n";
  for (const std::string& k : keys) os << k << "\n";
  return os.str();
}

}  // namespace pmg::lint
