#ifndef PMG_LINT_LINT_H_
#define PMG_LINT_LINT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "pmg/lint/lexer.h"

/// \file lint.h
/// pmg_lint: the project-invariant static analyzer. Where clang-tidy
/// enforces generic C++ hygiene, this pass enforces *pmg's own* contracts
/// — the ones whose violation silently corrupts measured results rather
/// than crashing:
///
///   pmg-no-host-clock       host time/randomness inside simulated code
///   pmg-unordered-iteration range-for over unordered containers
///   pmg-check-side-effects  PMG_CHECK arguments that mutate state
///   pmg-hook-guard          observer-seam calls without a null guard
///   pmg-atomic-shared-write plain writes to shared state in ParallelFor
///   pmg-enum-switch         non-exhaustive switches over taxonomy enums
///   pmg-test-tier-label     ctests registered without tier label/timeout
///
/// The analyzer is a tokenizer/scoper over the repo's conventions, not a
/// compiler: findings are deterministic `file:line: check: message` lines
/// (byte-stable across runs, golden-tested like every other pmg surface).
/// False negatives are acceptable; false positives are suppressed inline
/// with `// pmg-lint: allow(<check-id>) <reason>` — the reason is
/// mandatory — or grandfathered in a committed baseline that only shrinks.

namespace pmg::lint {

/// One diagnostic. `file` is the path as given to the linter (the driver
/// passes repo-relative, forward-slash paths so output never depends on
/// the checkout location).
struct Finding {
  std::string file;
  uint32_t line = 0;
  std::string check;
  std::string message;

  /// "file:line: check: message" — the printed form.
  std::string Format() const;
  /// "file: check: message" — the line-number-free form baselines store,
  /// so grandfathered findings survive unrelated edits above them.
  std::string Key() const;

  bool operator<(const Finding& o) const;
  bool operator==(const Finding& o) const;
};

/// Every check-id the analyzer knows, sorted, plus the meta check id used
/// for malformed suppression comments ("pmg-suppression").
const std::vector<std::string>& AllCheckIds();
bool IsKnownCheckId(const std::string& id);

struct LintOptions {
  /// Path prefixes (repo-relative, e.g. "tools/hostperf/") where
  /// pmg-no-host-clock does not apply: code that deliberately measures
  /// the host, not the simulated machine.
  std::vector<std::string> host_dirs;
};

/// One file handed to the analyzer.
struct SourceFile {
  std::string path;  ///< Repo-relative, forward slashes.
  std::string text;
  bool is_cmake = false;  ///< CMakeLists.txt / *.cmake: only check 7 runs.
};

/// Cross-file knowledge gathered in a first pass over the whole tree:
/// enum definitions (for exhaustiveness) and the names of variables and
/// members declared with unordered container types (for iteration-order
/// checks — an unordered member is usually iterated far from its
/// declaration).
struct ProjectIndex {
  /// enum name -> enumerator names, in declaration order.
  std::map<std::string, std::vector<std::string>> enums;
  /// Identifiers declared as std::unordered_map / std::unordered_set.
  std::set<std::string> unordered_names;
};

void IndexSource(const SourceFile& file, ProjectIndex* index);

/// Runs every applicable check on one file, applies inline suppressions,
/// and returns the surviving findings (sorted).
std::vector<Finding> LintSource(const SourceFile& file,
                                const ProjectIndex& index,
                                const LintOptions& options);

/// Reads the lintable files under `root`, restricted to `dirs` (each a
/// path relative to root; missing ones are skipped). Scans *.cc, *.h,
/// *.cxx, *.hxx, CMakeLists.txt and *.cmake; skips fixture/golden/
/// baseline/build directories. Paths come back sorted. Returns false
/// with `error` set when root is unusable.
bool CollectFiles(const std::string& root, const std::vector<std::string>& dirs,
                  std::vector<SourceFile>* out, std::string* error);

/// Index + lint every file; findings sorted (file, line, check, message).
std::vector<Finding> LintTree(const std::vector<SourceFile>& files,
                              const LintOptions& options);

/// Renders findings one per line, Finding::Format form.
std::string FormatFindings(const std::vector<Finding>& findings);

/// Baseline: a committed multiset of Finding::Key() lines ('#' comments
/// and blank lines ignored). The gate is "no new findings, no stale
/// entries": a baseline entry that no longer fires must be deleted, so
/// the file can only shrink.
std::vector<std::string> ParseBaseline(const std::string& text);

struct BaselineDiff {
  std::vector<Finding> fresh;       ///< Findings not covered by baseline.
  std::vector<std::string> stale;   ///< Baseline keys that no longer fire.
  uint64_t matched = 0;             ///< Findings absorbed by the baseline.
};

BaselineDiff DiffAgainstBaseline(const std::vector<Finding>& findings,
                                 const std::vector<std::string>& baseline);

/// Serializes findings as baseline keys (sorted, with a header comment).
std::string WriteBaseline(const std::vector<Finding>& findings);

}  // namespace pmg::lint

#endif  // PMG_LINT_LINT_H_
