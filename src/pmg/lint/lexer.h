#ifndef PMG_LINT_LEXER_H_
#define PMG_LINT_LEXER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

/// \file lexer.h
/// A lightweight C++ tokenizer for pmg_lint. It is not a compiler front
/// end: it recognizes exactly what the project-invariant checks need —
/// identifiers, literals, comments and multi-character punctuation, each
/// stamped with its source line — and nothing more. Keeping the analyzer
/// at token level (no libclang, no preprocessor) is what lets it build in
/// every container CI builds in.

namespace pmg::lint {

enum class TokKind : uint8_t {
  kIdent,    ///< Identifier or keyword.
  kNumber,   ///< Numeric literal (integer or floating, any base).
  kString,   ///< String literal, including raw strings; text keeps quotes.
  kChar,     ///< Character literal.
  kPunct,    ///< Operator / punctuation, longest-match (e.g. "->", "<<=").
  kComment,  ///< // or /* */ comment; text keeps the comment markers.
};

struct Token {
  TokKind kind;
  std::string_view text;  ///< View into the tokenized source buffer.
  uint32_t line;          ///< 1-based line of the token's first character.

  bool Is(std::string_view s) const { return text == s; }
  bool IsIdent(std::string_view s) const {
    return kind == TokKind::kIdent && text == s;
  }
};

/// Tokenizes `src` (which must outlive the returned tokens). Unterminated
/// literals/comments are tolerated: the malformed tail becomes one token,
/// so the linter degrades gracefully instead of aborting mid-file.
std::vector<Token> Tokenize(std::string_view src);

/// A tokenized file split into the two views every check wants: code
/// tokens in order, and comment text grouped by line.
struct TokenStream {
  std::vector<Token> code;                       ///< Comments filtered out.
  std::multimap<uint32_t, std::string_view> comments;  ///< line -> text.

  static TokenStream Of(std::string_view src);
};

}  // namespace pmg::lint

#endif  // PMG_LINT_LEXER_H_
