#include "pmg/lint/lexer.h"

namespace pmg::lint {

namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Multi-character operators, longest first so "<<=" wins over "<<".
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  ".*",
};

}  // namespace

std::vector<Token> Tokenize(std::string_view src) {
  std::vector<Token> out;
  uint32_t line = 1;
  size_t i = 0;
  const size_t n = src.size();
  auto count_lines = [&](std::string_view text) {
    for (char c : text) {
      if (c == '\n') ++line;
    }
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    const size_t start = i;
    const uint32_t start_line = line;
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      out.push_back({TokKind::kComment, src.substr(start, i - start),
                     start_line});
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) ++i;
      i = i + 1 < n ? i + 2 : n;
      const std::string_view text = src.substr(start, i - start);
      out.push_back({TokKind::kComment, text, start_line});
      count_lines(text);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t d = i + 2;
      while (d < n && src[d] != '(' && src[d] != '"' && src[d] != '\n') ++d;
      if (d < n && src[d] == '(') {
        const std::string_view delim = src.substr(i + 2, d - (i + 2));
        std::string closer(")");
        closer.append(delim);
        closer.push_back('"');
        const size_t end = src.find(closer, d + 1);
        i = end == std::string_view::npos ? n : end + closer.size();
        const std::string_view text = src.substr(start, i - start);
        out.push_back({TokKind::kString, text, start_line});
        count_lines(text);
        continue;
      }
    }
    // String / char literal (escapes honoured; unterminated -> rest of line).
    if (c == '"' || c == '\'') {
      ++i;
      while (i < n && src[i] != c && src[i] != '\n') {
        i += src[i] == '\\' && i + 1 < n ? 2 : 1;
      }
      if (i < n && src[i] == c) ++i;
      out.push_back({c == '"' ? TokKind::kString : TokKind::kChar,
                     src.substr(start, i - start), start_line});
      continue;
    }
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(src[i])) ++i;
      out.push_back({TokKind::kIdent, src.substr(start, i - start),
                     start_line});
      continue;
    }
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(src[i + 1]))) {
      // Good-enough C++ number: digits, dots, exponents, hex, suffixes,
      // and digit separators.
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' ||
                       src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.push_back({TokKind::kNumber, src.substr(start, i - start),
                     start_line});
      continue;
    }
    // Punctuation, longest match first.
    std::string_view matched;
    for (std::string_view p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        matched = p;
        break;
      }
    }
    const size_t len = matched.empty() ? 1 : matched.size();
    out.push_back({TokKind::kPunct, src.substr(i, len), start_line});
    i += len;
  }
  return out;
}

TokenStream TokenStream::Of(std::string_view src) {
  TokenStream s;
  for (const Token& t : Tokenize(src)) {
    if (t.kind == TokKind::kComment) {
      s.comments.emplace(t.line, t.text);
    } else {
      s.code.push_back(t);
    }
  }
  return s;
}

}  // namespace pmg::lint
