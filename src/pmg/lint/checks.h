#ifndef PMG_LINT_CHECKS_H_
#define PMG_LINT_CHECKS_H_

#include <vector>

#include "pmg/lint/lexer.h"
#include "pmg/lint/lint.h"

/// \file checks.h
/// Internal entry points of the individual pmg_lint checks. Each check
/// appends raw findings (suppressions are applied later by LintSource).

namespace pmg::lint::internal {

/// Check ids, shared between the checks, the suppression validator and
/// the docs.
inline constexpr const char* kNoHostClock = "pmg-no-host-clock";
inline constexpr const char* kUnorderedIteration = "pmg-unordered-iteration";
inline constexpr const char* kCheckSideEffects = "pmg-check-side-effects";
inline constexpr const char* kHookGuard = "pmg-hook-guard";
inline constexpr const char* kAtomicSharedWrite = "pmg-atomic-shared-write";
inline constexpr const char* kEnumSwitch = "pmg-enum-switch";
inline constexpr const char* kTestTierLabel = "pmg-test-tier-label";
/// Meta check: malformed `// pmg-lint: allow(...)` comments.
inline constexpr const char* kSuppression = "pmg-suppression";

void CheckNoHostClock(const SourceFile& file, const TokenStream& ts,
                      const LintOptions& options, std::vector<Finding>* out);
void CheckUnorderedIteration(const SourceFile& file, const TokenStream& ts,
                             const ProjectIndex& index,
                             std::vector<Finding>* out);
void CheckCheckSideEffects(const SourceFile& file, const TokenStream& ts,
                           std::vector<Finding>* out);
void CheckHookGuard(const SourceFile& file, const TokenStream& ts,
                    std::vector<Finding>* out);
void CheckAtomicSharedWrite(const SourceFile& file, const TokenStream& ts,
                            std::vector<Finding>* out);
void CheckEnumSwitch(const SourceFile& file, const TokenStream& ts,
                     const ProjectIndex& index, std::vector<Finding>* out);

/// CMake-side check: every registered ctest carries a tier label and a
/// timeout. Also fills `comment_lines` with the file's '#' comments so
/// LintSource can apply suppressions with the same rules as C++.
void CheckTestTierLabel(const SourceFile& file,
                        std::multimap<uint32_t, std::string>* comment_lines,
                        std::vector<Finding>* out);

}  // namespace pmg::lint::internal

#endif  // PMG_LINT_CHECKS_H_
