#include "pmg/metrics/perf_diff.h"

#include <cerrno>
#include <cstdlib>
#include <map>

namespace pmg::metrics {

namespace {

bool EndsWithNs(const std::string& field) {
  return field.size() >= 3 &&
         field.compare(field.size() - 3, 3, "_ns") == 0;
}

std::string DocBenchName(const trace::JsonValue& doc) {
  const trace::JsonValue* name = doc.Find("bench");
  if (name == nullptr || name->kind != trace::JsonValue::Kind::kString) {
    return std::string();
  }
  return name->string_value;
}

/// Rows keyed by identity; duplicate identities get a "#n" suffix so no
/// measurement is silently shadowed.
std::map<std::string, const trace::JsonValue*> RowsById(
    const trace::JsonValue& doc) {
  std::map<std::string, const trace::JsonValue*> rows;
  const trace::JsonValue* array = doc.Find("rows");
  if (array == nullptr || array->kind != trace::JsonValue::Kind::kArray) {
    return rows;
  }
  for (const trace::JsonValue& row : array->array) {
    std::string id = RowIdentity(row);
    if (rows.count(id) != 0) {
      int n = 2;
      std::string candidate;
      do {
        candidate = id;
        candidate += '#';
        candidate += std::to_string(n++);
      } while (rows.count(candidate) != 0);
      id = std::move(candidate);
    }
    rows[id] = &row;
  }
  return rows;
}

}  // namespace

bool ParseThreshold(const std::string& text, double* out) {
  if (text.empty()) return false;
  std::string body = text;
  bool percent = false;
  if (body.back() == '%') {
    percent = true;
    body.pop_back();
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(body.c_str(), &end);
  if (errno != 0 || end == body.c_str() || *end != '\0') return false;
  if (v < 0.0) return false;
  *out = percent ? v / 100.0 : v;
  return true;
}

std::string RowIdentity(const trace::JsonValue& row) {
  std::string id;
  for (const auto& [key, value] : row.object) {
    std::string text;
    if (value.kind == trace::JsonValue::Kind::kString) {
      text = value.string_value;
    } else if (value.kind == trace::JsonValue::Kind::kBool) {
      text = value.bool_value ? "true" : "false";
    } else {
      continue;
    }
    if (!id.empty()) id += ' ';
    id += key + "=" + text;
  }
  if (id.empty()) id = "(row)";
  return id;
}

void DiffBenchDocs(const trace::JsonValue& baseline,
                   const trace::JsonValue& current, double threshold,
                   PerfDiffResult* out) {
  const std::string bench = DocBenchName(baseline);
  if (bench.empty()) {
    out->failures.push_back("baseline document has no bench name");
    return;
  }
  if (DocBenchName(current) != bench) {
    out->failures.push_back("bench '" + bench +
                            "': current document is for bench '" +
                            DocBenchName(current) + "'");
    return;
  }

  const auto base_rows = RowsById(baseline);
  const auto cur_rows = RowsById(current);

  for (const auto& [id, base_row] : base_rows) {
    const auto cur_it = cur_rows.find(id);
    if (cur_it == cur_rows.end()) {
      out->failures.push_back("bench '" + bench + "': row [" + id +
                              "] missing from current report");
      continue;
    }
    const trace::JsonValue& cur_row = *cur_it->second;
    for (const auto& [field, base_value] : base_row->object) {
      if (!base_value.IsNumber()) continue;
      const trace::JsonValue* cur_value = cur_row.Find(field);
      if (cur_value == nullptr || !cur_value->IsNumber()) {
        out->failures.push_back("bench '" + bench + "': row [" + id +
                                "] lost numeric field '" + field + "'");
        continue;
      }
      PerfDelta d;
      d.bench = bench;
      d.row = id;
      d.field = field;
      d.baseline = base_value.number;
      d.current = cur_value->number;
      if (d.baseline == 0.0) {
        d.ratio = d.current == 0.0 ? 1.0 : 2.0 + threshold;
      } else {
        d.ratio = d.current / d.baseline;
      }
      d.gated = EndsWithNs(field);
      d.regression = d.gated && d.ratio > 1.0 + threshold;
      if (d.regression) ++out->regressions;
      out->deltas.push_back(std::move(d));
    }
    for (const auto& [field, cur_value] : cur_row.object) {
      if (!cur_value.IsNumber()) continue;
      if (base_row->Find(field) == nullptr) {
        out->notes.push_back("bench '" + bench + "': row [" + id +
                             "] has new field '" + field +
                             "' (no baseline)");
      }
    }
  }
  for (const auto& [id, row] : cur_rows) {
    (void)row;
    if (base_rows.count(id) == 0) {
      out->notes.push_back("bench '" + bench + "': new row [" + id +
                           "] (no baseline)");
    }
  }

  // Top-level sections this differ does not know (e.g. a newer tool's
  // "whatif" block) are surfaced as notes, never failures: reports may
  // grow sections without invalidating committed baselines.
  for (const auto& [key, value] : current.object) {
    (void)value;
    if (key == "bench" || key == "rows" || key == "schema_version") continue;
    if (baseline.Find(key) == nullptr) {
      out->notes.push_back("bench '" + bench + "': unknown section '" + key +
                           "' in current report (ignored)");
    }
  }
  for (const auto& [key, value] : baseline.object) {
    (void)value;
    if (key == "bench" || key == "rows" || key == "schema_version") continue;
    if (current.Find(key) == nullptr) {
      out->notes.push_back("bench '" + bench + "': section '" + key +
                           "' from baseline absent in current report "
                           "(ignored)");
    }
  }
}

void DiffBenchText(const std::string& baseline_text,
                   const std::string& current_text, const std::string& label,
                   double threshold, PerfDiffResult* out) {
  trace::JsonValue baseline;
  trace::JsonValue current;
  std::string error;
  if (!trace::JsonValue::Parse(baseline_text, &baseline, &error)) {
    out->failures.push_back(label + ": baseline parse error: " + error);
    return;
  }
  if (!trace::JsonValue::Parse(current_text, &current, &error)) {
    out->failures.push_back(label + ": current parse error: " + error);
    return;
  }
  DiffBenchDocs(baseline, current, threshold, out);
}

}  // namespace pmg::metrics
