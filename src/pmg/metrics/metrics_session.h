#ifndef PMG_METRICS_METRICS_SESSION_H_
#define PMG_METRICS_METRICS_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/memsim/access_observer.h"
#include "pmg/memsim/machine.h"
#include "pmg/metrics/heatmap.h"
#include "pmg/metrics/hooks.h"
#include "pmg/metrics/profiler.h"
#include "pmg/metrics/registry.h"

/// \file metrics_session.h
/// pmg::metrics — the live-metrics layer of the simulated machine. A
/// MetricsSession attaches to a memsim::Machine as an AccessObserver and
/// coordinates the three observability axes this subsystem adds:
///
///   1. A lock-free Registry into which memsim hardware counters are
///      mirrored per epoch (bit-matching MachineStats — conservation-
///      checked), the runtime's worklists count pushes/pops/steals and
///      occupancy through the hook seam, and faultsim's retry/quarantine
///      counters flow via the same stats mirror. Exposed as deterministic
///      Prometheus text and a versioned JSON report.
///   2. Spatial attribution: a HeatTable fed from OnAlloc/OnAccess/OnFree
///      producing per-structure / per-node / per-page-size heatmaps.
///   3. A simulated-time sampling Profiler driven from the machine's
///      epoch clock, snapshotting PMG_PROF_SCOPE stacks.
///
/// Per-epoch counter snapshots are recorded on the same continuous
/// session timeline the trace layer uses (monotonic across recovery
/// re-attachments), so metrics rows line up with pmg::trace epochs.
///
/// Attaching a session never changes pricing: a metered run is
/// bit-identical to an unmetered one (asserted by bench_micro_memsim).

namespace pmg::trace {
class JsonWriter;
}  // namespace pmg::trace

namespace pmg::metrics {

/// Version stamp of the metrics JSON documents.
inline constexpr uint32_t kMetricsSchemaVersion = 1;

struct MetricsOptions {
  /// Hot-page rows retained by the heatmap (what falls off the table is
  /// reported as dropped, never silently discarded).
  size_t heat_top_k = 32;
  /// Enable the sampling profiler.
  bool profile = false;
  /// Simulated time between profiler samples.
  SimNs profile_interval_ns = 100 * 1000;
  /// Cap on retained per-epoch snapshot rows; beyond it counters still
  /// aggregate but rows are dropped (and counted).
  uint64_t max_snapshots = 1ull << 16;
};

/// Cumulative counter values at one epoch boundary.
struct EpochSnapshot {
  uint64_t epoch = 0;
  /// End of the epoch on the continuous session timeline.
  SimNs end_ns = 0;
  uint64_t accesses = 0;
  uint64_t tlb_misses = 0;
  uint64_t near_mem_misses = 0;
  uint64_t migrated_pages = 0;
  uint64_t worklist_pushes = 0;
  uint64_t worklist_pops = 0;
  uint64_t worklist_steals = 0;
};

class MetricsSession : public memsim::AccessObserver {
 public:
  explicit MetricsSession(const MetricsOptions& options = MetricsOptions());
  ~MetricsSession() override;

  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

  /// Registers as `machine`'s observer, snapshots its stats, installs the
  /// worklist hook table, and (when profiling) activates the profiler.
  /// Like a TraceSession, a session may be re-attached across machines
  /// (the recovery drivers rebuild the machine per crash attempt) and its
  /// timeline continues monotonically.
  void Attach(memsim::Machine* machine);
  /// Final stats sync, folds still-live regions' heat, unregisters.
  void Detach();
  bool attached() const { return machine_ != nullptr; }

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  bool profiling() const { return profiler_ != nullptr; }

  // --- AccessObserver ---
  void OnAlloc(memsim::RegionId id, VirtAddr base, uint64_t bytes,
               std::string_view name) override;
  void OnFree(memsim::RegionId id) override;
  void OnAccess(ThreadId t, VirtAddr addr, uint32_t bytes,
                AccessType type) override;
  void OnEpochBegin(uint32_t active_threads) override;
  uint64_t OnEpochEnd() override;

  // --- Outputs (each syncs live machine deltas and conservation-checks
  // the registry against MachineStats first) ---

  /// Deterministic Prometheus text exposition of the registry.
  std::string PrometheusText();
  /// Versioned JSON document: registry + heatmap + snapshots + profile.
  std::string ReportJson();
  /// The same document written as one object into an in-flight writer, so
  /// callers can embed it as a section of a larger report.
  void AppendReportJson(trace::JsonWriter* w);
  /// The spatial report alone.
  HeatReport BuildHeatReport();
  /// Folded-stack profile text ("" when not profiling).
  std::string ProfileFoldedText() const;

  const std::vector<EpochSnapshot>& snapshots() const { return snapshots_; }
  uint64_t dropped_snapshots() const { return dropped_snapshots_; }

 private:
  struct Ids {
    MetricId accesses = 0;
    MetricId tlb_misses = 0;
    MetricId tlb_shootdowns = 0;
    MetricId near_mem_hits = 0;
    MetricId near_mem_misses = 0;
    MetricId migrated_pages = 0;
    MetricId minor_faults = 0;
    MetricId hint_faults = 0;
    MetricId fault_retries = 0;
    MetricId pages_quarantined = 0;
    MetricId epochs = 0;
    MetricId mapped_pages = 0;
    MetricId epoch_ns = 0;
  };
  /// The independently-accounted totals the registry must bit-match.
  struct Expected {
    uint64_t accesses = 0;
    uint64_t tlb_misses = 0;
    uint64_t near_mem_misses = 0;
    uint64_t migrated_pages = 0;
  };

  /// Folds the machine stats delta since the last sync into the mirror
  /// counters.
  void SyncMachineDeltas();
  /// Expected totals across all attachments, including the live machine.
  Expected ExpectedTotals() const;
  /// PMG_CHECKs registry mirrors and heatmap traffic against MachineStats.
  void CheckConservation() const;
  SimNs SessionNow() const;

  MetricsOptions options_;
  Registry registry_;
  Ids ids_;
  HookTable hooks_;
  HeatTable heat_;
  std::unique_ptr<Profiler> profiler_;

  memsim::Machine* machine_ = nullptr;
  memsim::MachineStats attach_base_;
  memsim::MachineStats last_stats_;
  /// Maps this attachment's machine clock into the session's continuous
  /// simulated timeline.
  SimNs clock_offset_ = 0;
  SimNs attach_now_ = 0;
  Expected accum_;

  uint64_t epoch_counter_ = 0;
  std::vector<EpochSnapshot> snapshots_;
  uint64_t dropped_snapshots_ = 0;
};

}  // namespace pmg::metrics

#endif  // PMG_METRICS_METRICS_SESSION_H_
