#include "pmg/metrics/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "pmg/common/check.h"

namespace pmg::metrics {

size_t Log2Bucket(uint64_t value) {
  if (value == 0) return 0;
  size_t b = 0;
  while (value != 0) {
    value >>= 1;
    ++b;
  }
  // Astronomically large values saturate in the last bucket instead of
  // indexing out of range.
  return std::min(b, kHistogramBuckets - 1);
}

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out->append(buf);
}

}  // namespace

double HistogramSnapshot::BucketLower(size_t b) {
  if (b == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(b) - 1);  // 2^(b-1)
}

double HistogramSnapshot::BucketUpper(size_t b) {
  if (b == 0) return 0.0;
  if (b >= kHistogramBuckets - 1) return 1.8446744073709552e19;  // ~2^64
  return std::ldexp(1.0, static_cast<int>(b)) - 1.0;  // 2^b - 1
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank in [0, count - 1]; linear interpolation within the bucket that
  // contains the rank, so a rank landing exactly on a bucket's edge
  // returns that edge.
  const double rank = q * static_cast<double>(count - 1);
  uint64_t cum = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double lo_rank = static_cast<double>(cum);
    cum += buckets[b];
    const double hi_rank = static_cast<double>(cum - 1);
    if (rank > hi_rank) continue;
    const double lo = BucketLower(b);
    const double hi = BucketUpper(b);
    if (buckets[b] == 1 || hi_rank == lo_rank) return lo;
    const double frac = (rank - lo_rank) / (hi_rank - lo_rank);
    return lo + frac * (hi - lo);
  }
  return BucketUpper(kHistogramBuckets - 1);
}

Registry::Registry() = default;

void Registry::EnsureSlots(size_t slots) {
  if (slots <= slot_capacity_) {
    slot_count_ = slots;
    return;
  }
  size_t cap = slot_capacity_ == 0 ? 64 : slot_capacity_;
  while (cap < slots) cap *= 2;
  for (size_t s = 0; s < kShards; ++s) {
    auto grown = std::make_unique<std::atomic<uint64_t>[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      const uint64_t old =
          i < slot_count_ && shards_[s] != nullptr
              ? shards_[s][i].load(std::memory_order_relaxed)
              : 0;
      grown[i].store(old, std::memory_order_relaxed);
    }
    shards_[s] = std::move(grown);
  }
  slot_capacity_ = cap;
  slot_count_ = slots;
}

MetricId Registry::AddCounter(std::string name, std::string help) {
  Metric m;
  m.name = std::move(name);
  m.help = std::move(help);
  m.kind = MetricKind::kCounter;
  m.slot = static_cast<uint32_t>(slot_count_);
  EnsureSlots(slot_count_ + 1);
  metrics_.push_back(std::move(m));
  return static_cast<MetricId>(metrics_.size() - 1);
}

MetricId Registry::AddGauge(std::string name, std::string help) {
  Metric m;
  m.name = std::move(name);
  m.help = std::move(help);
  m.kind = MetricKind::kGauge;
  m.slot = static_cast<uint32_t>(gauges_.size());
  gauges_.emplace_back(0);
  metrics_.push_back(std::move(m));
  return static_cast<MetricId>(metrics_.size() - 1);
}

MetricId Registry::AddHistogram(std::string name, std::string help) {
  Metric m;
  m.name = std::move(name);
  m.help = std::move(help);
  m.kind = MetricKind::kHistogram;
  m.slot = static_cast<uint32_t>(slot_count_);
  EnsureSlots(slot_count_ + kHistogramSlots);
  metrics_.push_back(std::move(m));
  return static_cast<MetricId>(metrics_.size() - 1);
}

MetricId Registry::AddHistogramWithExemplars(std::string name,
                                             std::string help) {
  const MetricId id = AddHistogram(std::move(name), std::move(help));
  metrics_[id].exemplar_slot = static_cast<int32_t>(exemplars_.size());
  exemplars_.push_back({});
  return id;
}

const Registry::Metric& Registry::Get(MetricId id, MetricKind kind) const {
  PMG_CHECK_MSG(id < metrics_.size(), "unknown metric id %u", id);
  const Metric& m = metrics_[id];
  PMG_CHECK_MSG(m.kind == kind, "metric '%s' used with the wrong type",
                m.name.c_str());
  return m;
}

void Registry::AddShard(MetricId id, ThreadId t, uint64_t delta) {
  const Metric& m = Get(id, MetricKind::kCounter);
  shards_[t % kShards][m.slot].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::GaugeSet(MetricId id, int64_t value) {
  const Metric& m = Get(id, MetricKind::kGauge);
  gauges_[m.slot].store(value, std::memory_order_relaxed);
}

void Registry::ObserveShard(MetricId id, ThreadId t, uint64_t value) {
  const Metric& m = Get(id, MetricKind::kHistogram);
  std::atomic<uint64_t>* base = &shards_[t % kShards][m.slot];
  base[Log2Bucket(value)].fetch_add(1, std::memory_order_relaxed);
  base[kHistogramBuckets].fetch_add(value, std::memory_order_relaxed);
}

void Registry::ObserveExemplar(MetricId id, uint64_t value,
                               uint64_t exemplar) {
  const Metric& m = Get(id, MetricKind::kHistogram);
  PMG_CHECK_MSG(m.exemplar_slot >= 0,
                "metric '%s' was not registered with exemplars",
                m.name.c_str());
  ObserveShard(id, 0, value);
  ExemplarCell& cell =
      exemplars_[static_cast<size_t>(m.exemplar_slot)][Log2Bucket(value)];
  // Order-independent replacement: the bucket's representative is the
  // largest observation, ties to the lowest exemplar id — any observation
  // order retains the same cell.
  if (!cell.set || value > cell.value ||
      (value == cell.value && exemplar < cell.exemplar)) {
    cell.set = true;
    cell.value = value;
    cell.exemplar = exemplar;
  }
}

uint64_t Registry::MergedSlot(size_t slot) const {
  uint64_t sum = 0;
  for (size_t s = 0; s < kShards; ++s) {
    sum += shards_[s][slot].load(std::memory_order_relaxed);
  }
  return sum;
}

const std::string& Registry::name(MetricId id) const {
  PMG_CHECK_MSG(id < metrics_.size(), "unknown metric id %u", id);
  return metrics_[id].name;
}

MetricKind Registry::kind(MetricId id) const {
  PMG_CHECK_MSG(id < metrics_.size(), "unknown metric id %u", id);
  return metrics_[id].kind;
}

uint64_t Registry::CounterValue(MetricId id) const {
  return MergedSlot(Get(id, MetricKind::kCounter).slot);
}

int64_t Registry::GaugeValue(MetricId id) const {
  return gauges_[Get(id, MetricKind::kGauge).slot].load(
      std::memory_order_relaxed);
}

HistogramSnapshot Registry::HistogramValue(MetricId id) const {
  const Metric& m = Get(id, MetricKind::kHistogram);
  HistogramSnapshot snap;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    snap.buckets[b] = MergedSlot(m.slot + b);
    snap.count += snap.buckets[b];
  }
  snap.sum = MergedSlot(m.slot + kHistogramBuckets);
  return snap;
}

std::vector<HistogramExemplar> Registry::HistogramExemplars(
    MetricId id) const {
  const Metric& m = Get(id, MetricKind::kHistogram);
  std::vector<HistogramExemplar> out;
  if (m.exemplar_slot < 0) return out;
  const auto& cells = exemplars_[static_cast<size_t>(m.exemplar_slot)];
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (cells[b].set) out.push_back({b, cells[b].value, cells[b].exemplar});
  }
  return out;
}

std::string Registry::PrometheusText() const {
  std::vector<size_t> order(metrics_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return metrics_[a].name < metrics_[b].name;
  });

  std::string out;
  for (const size_t i : order) {
    const Metric& m = metrics_[i];
    out += "# HELP " + m.name + " " + m.help + "\n";
    switch (m.kind) {
      case MetricKind::kCounter: {
        out += "# TYPE " + m.name + " counter\n";
        out += m.name + " ";
        AppendU64(&out, MergedSlot(m.slot));
        out += "\n";
        break;
      }
      case MetricKind::kGauge: {
        out += "# TYPE " + m.name + " gauge\n";
        out += m.name + " ";
        AppendI64(&out, gauges_[m.slot].load(std::memory_order_relaxed));
        out += "\n";
        break;
      }
      case MetricKind::kHistogram: {
        out += "# TYPE " + m.name + " histogram\n";
        const HistogramSnapshot snap =
            HistogramValue(static_cast<MetricId>(i));
        uint64_t cum = 0;
        for (size_t b = 0; b < kHistogramBuckets; ++b) {
          if (snap.buckets[b] == 0) continue;
          cum += snap.buckets[b];
          out += m.name + "_bucket{le=\"";
          if (b == kHistogramBuckets - 1) {
            out += "+Inf";
          } else if (b == 0) {
            out += "0";
          } else {
            AppendU64(&out, (uint64_t{1} << b) - 1);
          }
          out += "\"} ";
          AppendU64(&out, cum);
          if (m.exemplar_slot >= 0) {
            const ExemplarCell& cell =
                exemplars_[static_cast<size_t>(m.exemplar_slot)][b];
            if (cell.set) {
              out += " # {exemplar_id=\"";
              AppendU64(&out, cell.exemplar);
              out += "\"} ";
              AppendU64(&out, cell.value);
            }
          }
          out += "\n";
        }
        out += m.name + "_sum ";
        AppendU64(&out, snap.sum);
        out += "\n" + m.name + "_count ";
        AppendU64(&out, snap.count);
        out += "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace pmg::metrics
