#include "pmg/metrics/heatmap.h"

#include <algorithm>

#include "pmg/common/check.h"

namespace pmg::metrics {

namespace {

constexpr uint64_t kSlotsPerChunk =
    memsim::kHugePageBytes / memsim::kSmallPageBytes;  // 512

/// The total order of hot-page rows. Region ids and addresses are
/// deliberately excluded so ties break the same way across runs, fold
/// orders, and thread counts.
bool HotterThan(const HotPageRow& a, const HotPageRow& b) {
  if (a.accesses != b.accesses) return a.accesses > b.accesses;
  if (a.structure != b.structure) return a.structure < b.structure;
  if (a.page_index != b.page_index) return a.page_index < b.page_index;
  return a.page_bytes < b.page_bytes;
}

}  // namespace

HeatTable::HeatTable(size_t top_k) : top_k_(top_k) {}

void HeatTable::OnAlloc(memsim::RegionId id, VirtAddr base, uint64_t bytes,
                        std::string_view name) {
  Tracked r;
  r.id = id;
  r.base = base;
  r.bytes = bytes;
  r.name = std::string(name);
  r.slots.assign((bytes + memsim::kSmallPageBytes - 1) /
                     memsim::kSmallPageBytes,
                 0);
  auto it = std::lower_bound(
      live_.begin(), live_.end(), base,
      [](const Tracked& t, VirtAddr b) { return t.base < b; });
  live_.insert(it, std::move(r));
  last_hit_ = static_cast<size_t>(-1);
}

size_t HeatTable::Find(VirtAddr addr) {
  if (last_hit_ < live_.size()) {
    const Tracked& t = live_[last_hit_];
    if (addr >= t.base && addr < t.base + t.bytes) return last_hit_;
  }
  auto it = std::upper_bound(
      live_.begin(), live_.end(), addr,
      [](VirtAddr a, const Tracked& t) { return a < t.base; });
  if (it == live_.begin()) return static_cast<size_t>(-1);
  --it;
  if (addr >= it->base + it->bytes) return static_cast<size_t>(-1);
  last_hit_ = static_cast<size_t>(it - live_.begin());
  return last_hit_;
}

void HeatTable::RecordAccess(VirtAddr addr) {
  const size_t i = Find(addr);
  if (i == static_cast<size_t>(-1)) {
    ++unattributed_;
    return;
  }
  Tracked& t = live_[i];
  ++t.slots[(addr - t.base) / memsim::kSmallPageBytes];
  ++attributed_;
}

void HeatTable::Fold(const Tracked& r, const memsim::PageTable& pt) {
  PMG_CHECK_MSG(pt.IsLive(r.id),
                "heat table folding region %u after page-table destruction",
                r.id);
  const memsim::Region& region = pt.region(r.id);
  const size_t num_slots = r.slots.size();
  const size_t num_chunks = region.chunk_first_page.size();

  uint64_t region_total = 0;
  auto fold_page = [&](uint64_t page_index, uint64_t page_bytes, NodeId node,
                       uint64_t count) {
    if (count == 0) return;
    region_total += count;
    node_accesses_[node] += count;
    page_size_accesses_[page_bytes] += count;
    ++heat_bins_[Log2Bucket(count)];
    ++touched_pages_;
    HotPageRow row;
    row.structure = r.name;
    row.page_index = page_index;
    row.page_bytes = page_bytes;
    row.node = node;
    row.accesses = count;
    candidates_.push_back(std::move(row));
  };

  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t slot_begin = c * kSlotsPerChunk;
    const size_t slot_end = std::min(slot_begin + kSlotsPerChunk, num_slots);
    const uint32_t first_page = region.chunk_first_page[c];
    if (region.chunk_is_huge[c]) {
      uint64_t count = 0;
      for (size_t s = slot_begin; s < slot_end; ++s) count += r.slots[s];
      fold_page(c, memsim::kHugePageBytes, region.pages[first_page].node,
                count);
    } else {
      for (size_t s = slot_begin; s < slot_end; ++s) {
        fold_page(s, memsim::kSmallPageBytes,
                  region.pages[first_page + (s - slot_begin)].node,
                  r.slots[s]);
      }
    }
  }

  HeatStructureRow& structure = structures_[r.name];
  structure.name = r.name;
  structure.accesses += region_total;
  structure.bytes += r.bytes;
  folded_accesses_ += region_total;
  PruneCandidates();
}

void HeatTable::PruneCandidates() {
  if (candidates_.size() <= top_k_) return;
  std::sort(candidates_.begin(), candidates_.end(), HotterThan);
  candidates_.resize(top_k_);
}

void HeatTable::OnFree(memsim::RegionId id, const memsim::PageTable& pt) {
  for (size_t i = 0; i < live_.size(); ++i) {
    if (live_[i].id != id) continue;
    Fold(live_[i], pt);
    live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
    last_hit_ = static_cast<size_t>(-1);
    return;
  }
  // Regions allocated before the session attached are not tracked.
}

void HeatTable::Finalize(const memsim::PageTable& pt) {
  for (const Tracked& r : live_) Fold(r, pt);
  live_.clear();
  last_hit_ = static_cast<size_t>(-1);
}

HeatReport HeatTable::BuildReport() const {
  uint64_t live_remainder = 0;
  for (const Tracked& r : live_) {
    for (const uint64_t c : r.slots) live_remainder += c;
  }
  PMG_CHECK_MSG(
      folded_accesses_ + live_remainder == attributed_,
      "heatmap conservation violated: folded %llu + live %llu != attributed "
      "%llu",
      static_cast<unsigned long long>(folded_accesses_),
      static_cast<unsigned long long>(live_remainder),
      static_cast<unsigned long long>(attributed_));

  HeatReport report;
  report.attributed = attributed_;
  report.unattributed = unattributed_;
  report.touched_pages = touched_pages_;

  uint64_t structure_sum = 0;
  for (const auto& [name, row] : structures_) {
    report.structures.push_back(row);
    structure_sum += row.accesses;
  }
  PMG_CHECK(structure_sum == folded_accesses_);
  std::sort(report.structures.begin(), report.structures.end(),
            [](const HeatStructureRow& a, const HeatStructureRow& b) {
              if (a.accesses != b.accesses) return a.accesses > b.accesses;
              return a.name < b.name;
            });

  for (const auto& [node, accesses] : node_accesses_) {
    report.nodes.push_back({node, accesses});
  }
  for (const auto& [page_bytes, accesses] : page_size_accesses_) {
    report.page_sizes.push_back({page_bytes, accesses});
  }
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    report.heat_bins[b] = heat_bins_[b];
  }

  report.hot_pages = candidates_;
  std::sort(report.hot_pages.begin(), report.hot_pages.end(), HotterThan);
  uint64_t hot_sum = 0;
  for (const HotPageRow& row : report.hot_pages) hot_sum += row.accesses;
  report.dropped_pages = touched_pages_ - report.hot_pages.size();
  report.dropped_accesses = folded_accesses_ - hot_sum;
  return report;
}

}  // namespace pmg::metrics
