#ifndef PMG_METRICS_REGISTRY_H_
#define PMG_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "pmg/common/types.h"

/// \file registry.h
/// The live metrics registry of pmg::metrics: typed Counter / Gauge /
/// Histogram<log2> slots that the simulator layers (memsim mirrors,
/// runtime worklists, faultsim, analytics kernels) register into.
///
/// Writes go to per-thread shards (relaxed atomic adds, lock-free) keyed
/// by the *virtual* ThreadId, and are merged on read — the layout a real
/// multi-threaded runtime needs, kept even though the simulator serializes
/// virtual threads on one host thread, so the instrumentation sites stay
/// correct if the runtime ever runs them concurrently. Reads (merges,
/// Prometheus text) are deterministic: identical event streams produce
/// byte-identical output.
///
/// Registration is not thread-safe and must happen before concurrent
/// writers exist (a MetricsSession registers everything up front).

namespace pmg::metrics {

using MetricId = uint32_t;

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// Histogram bucketing is log2: bucket 0 holds observations of value 0,
/// bucket b (1..64) holds values in [2^(b-1), 2^b).
inline constexpr size_t kHistogramBuckets = 65;

/// The log2 bucket of one value: 0 for 0, else floor(log2(value)) + 1,
/// saturating in the last bucket. Shared by Histogram and the heatmap's
/// page-heat bins.
size_t Log2Bucket(uint64_t value);

/// Merged view of one histogram, with log2 buckets.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t buckets[kHistogramBuckets] = {};

  /// Inclusive upper bound of bucket `b` (as a double; bucket 64's bound
  /// saturates at 2^64 - 1).
  static double BucketUpper(size_t b);
  /// Lower bound of bucket `b`.
  static double BucketLower(size_t b);

  /// Linear-interpolated quantile (q in [0, 1]) over the log2 buckets.
  /// Zero observations yield 0. The interpolation is exact at bucket
  /// boundaries: q ranks falling on a bucket edge return that edge.
  double Quantile(double q) const;
};

/// One bucket's representative observation (OpenMetrics-style exemplar):
/// `exemplar` is a caller-defined id — pmg::serve records the request id
/// whose latency landed in the bucket, so a histogram tail links straight
/// back to a traceable request.
struct HistogramExemplar {
  size_t bucket = 0;
  uint64_t value = 0;
  uint64_t exemplar = 0;
};

class Registry {
 public:
  Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // --- Registration (single-threaded, up-front) ---

  MetricId AddCounter(std::string name, std::string help);
  MetricId AddGauge(std::string name, std::string help);
  MetricId AddHistogram(std::string name, std::string help);
  /// A histogram that additionally keeps one exemplar per bucket
  /// (ObserveExemplar). Opt-in so plain histograms keep their exposition
  /// bytes and write path unchanged.
  MetricId AddHistogramWithExemplars(std::string name, std::string help);

  // --- Writes (lock-free; shard picked from the virtual thread id) ---

  void Add(MetricId id, uint64_t delta) { AddShard(id, 0, delta); }
  void AddShard(MetricId id, ThreadId t, uint64_t delta);
  void GaugeSet(MetricId id, int64_t value);
  void Observe(MetricId id, uint64_t value) { ObserveShard(id, 0, value); }
  void ObserveShard(MetricId id, ThreadId t, uint64_t value);
  /// Observes `value` and records `exemplar` as the bucket's candidate
  /// representative. The replacement rule is order-independent (largest
  /// value wins, ties to the lowest exemplar id), so the retained set is
  /// deterministic. Exemplar cells are not sharded: unlike the counter
  /// cells this write path expects a single writer (the serve event loop);
  /// the metric must come from AddHistogramWithExemplars.
  void ObserveExemplar(MetricId id, uint64_t value, uint64_t exemplar);

  // --- Reads (merge shards; deterministic) ---

  uint64_t CounterValue(MetricId id) const;
  int64_t GaugeValue(MetricId id) const;
  HistogramSnapshot HistogramValue(MetricId id) const;
  /// Retained exemplars of an AddHistogramWithExemplars histogram,
  /// ascending by bucket; empty for a plain histogram.
  std::vector<HistogramExemplar> HistogramExemplars(MetricId id) const;

  /// Deterministic Prometheus-style text exposition: families sorted by
  /// metric name, histogram buckets as cumulative `_bucket{le=...}` rows
  /// (zero-count buckets elided), then `_sum` and `_count`. Exemplar
  /// histograms append an OpenMetrics-style `# {exemplar_id="..."} value`
  /// suffix to each bucket row; plain families are byte-identical to a
  /// registry built before exemplars existed.
  std::string PrometheusText() const;

  size_t metric_count() const { return metrics_.size(); }
  const std::string& name(MetricId id) const;
  MetricKind kind(MetricId id) const;

 private:
  struct Metric {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    /// Counter/histogram: base index into the sharded slot array.
    /// Gauge: index into gauges_.
    uint32_t slot = 0;
    /// Histogram with exemplars: index into exemplars_; -1 = plain.
    int32_t exemplar_slot = -1;
  };

  struct ExemplarCell {
    bool set = false;
    uint64_t value = 0;
    uint64_t exemplar = 0;
  };

  static constexpr size_t kShards = 8;
  /// Slots one histogram occupies: 65 buckets + a sum cell.
  static constexpr size_t kHistogramSlots = kHistogramBuckets + 1;

  const Metric& Get(MetricId id, MetricKind kind) const;
  /// Grows every shard to hold `slots` cells (registration phase only).
  void EnsureSlots(size_t slots);
  uint64_t MergedSlot(size_t slot) const;

  std::vector<Metric> metrics_;
  size_t slot_count_ = 0;
  size_t slot_capacity_ = 0;
  /// shards_[s][slot]: per-shard counter cells (counters + histograms).
  std::unique_ptr<std::atomic<uint64_t>[]> shards_[kShards];
  /// Deque: grows without moving (atomics are not movable).
  std::deque<std::atomic<int64_t>> gauges_;
  /// Per-bucket exemplar cells of opt-in histograms (single-writer).
  std::vector<std::array<ExemplarCell, kHistogramBuckets>> exemplars_;
};

}  // namespace pmg::metrics

#endif  // PMG_METRICS_REGISTRY_H_
