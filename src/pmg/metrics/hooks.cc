#include "pmg/metrics/hooks.h"

#include "pmg/common/check.h"

namespace pmg::metrics {

namespace internal {
HookTable* g_hooks = nullptr;
}  // namespace internal

void InstallHooks(HookTable* table) {
  PMG_CHECK(table != nullptr && table->registry != nullptr);
  PMG_CHECK_MSG(internal::g_hooks == nullptr,
                "a metrics hook table is already installed");
  internal::g_hooks = table;
}

void UninstallHooks(HookTable* table) {
  PMG_CHECK_MSG(internal::g_hooks == table,
                "uninstalling a metrics hook table that is not installed");
  internal::g_hooks = nullptr;
}

}  // namespace pmg::metrics
