#ifndef PMG_METRICS_PROFILER_H_
#define PMG_METRICS_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pmg/common/types.h"

/// \file profiler.h
/// A sampling profiler that runs on *simulated* time. Code marks phases
/// with PMG_PROF_SCOPE("label"); the active MetricsSession drives
/// SampleUpTo() from the machine's epoch clock, so the profiler takes one
/// stack sample every `sample_interval_ns` of simulated time — samples
/// are proportional to where the modeled machine spent its cycles, not
/// where the host process did. Output is folded-stack text
/// ("a;b;c <count>\n", sorted), directly consumable by flamegraph.pl and
/// speedscope.
///
/// Like the metrics hooks, an inactive profiler costs one predictable
/// null check per scope and nothing per access.

namespace pmg::metrics {

class Profiler {
 public:
  /// Takes one sample every `sample_interval_ns` of simulated time.
  explicit Profiler(SimNs sample_interval_ns);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Installs this profiler as the process-wide scope collector
  /// (PMG_CHECKs that none is active).
  void Activate();
  void Deactivate();

  /// Scope stack maintenance — called via PMG_PROF_SCOPE, labels must be
  /// string literals (stored by pointer while on the stack).
  void Push(const char* label) { stack_.push_back(label); }
  void Pop() { stack_.pop_back(); }

  /// Advances the sample clock to `session_now` (simulated ns since the
  /// session began), folding one stack sample per elapsed interval.
  void SampleUpTo(SimNs session_now);

  /// Folded-stack text: one "frame;frame;frame count" line per distinct
  /// stack, sorted by stack string. Samples with an empty scope stack
  /// fold under "(unscoped)".
  std::string FoldedText() const;

  uint64_t sample_count() const { return sample_count_; }
  SimNs sample_interval_ns() const { return interval_; }
  /// Folded stack -> sample count, sorted by stack string.
  const std::map<std::string, uint64_t>& folded() const { return folded_; }

 private:
  SimNs interval_;
  SimNs next_sample_;
  uint64_t sample_count_ = 0;
  bool active_ = false;
  std::vector<const char*> stack_;
  /// Folded stack -> number of samples; std::map keeps output sorted.
  std::map<std::string, uint64_t> folded_;
};

namespace internal {
extern Profiler* g_profiler;
}  // namespace internal

/// RAII frame for PMG_PROF_SCOPE. Remembers the profiler it pushed on so
/// a profiler activated or deactivated mid-scope cannot unbalance the
/// stack.
class ProfScope {
 public:
  explicit ProfScope(const char* label) : prof_(internal::g_profiler) {
    if (prof_ != nullptr) [[unlikely]] {
      prof_->Push(label);
    }
  }
  ~ProfScope() {
    if (prof_ != nullptr) [[unlikely]] {
      prof_->Pop();
    }
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* prof_;
};

}  // namespace pmg::metrics

#define PMG_PROF_CONCAT_INNER(a, b) a##b
#define PMG_PROF_CONCAT(a, b) PMG_PROF_CONCAT_INNER(a, b)
/// Marks the enclosing scope with `label` for the sampling profiler.
#define PMG_PROF_SCOPE(label) \
  ::pmg::metrics::ProfScope PMG_PROF_CONCAT(pmg_prof_scope_, __LINE__)(label)

#endif  // PMG_METRICS_PROFILER_H_
