#include "pmg/metrics/profiler.h"

#include "pmg/common/check.h"

namespace pmg::metrics {

namespace internal {
Profiler* g_profiler = nullptr;
}  // namespace internal

Profiler::Profiler(SimNs sample_interval_ns) : interval_(sample_interval_ns) {
  PMG_CHECK_MSG(interval_ > 0, "profiler sample interval must be positive");
  next_sample_ = interval_;
}

Profiler::~Profiler() {
  if (active_) Deactivate();
}

void Profiler::Activate() {
  PMG_CHECK_MSG(internal::g_profiler == nullptr,
                "a profiler is already active");
  internal::g_profiler = this;
  active_ = true;
}

void Profiler::Deactivate() {
  PMG_CHECK_MSG(internal::g_profiler == this,
                "deactivating a profiler that is not active");
  PMG_CHECK_MSG(stack_.empty(),
                "profiler deactivated inside a PMG_PROF_SCOPE");
  internal::g_profiler = nullptr;
  active_ = false;
}

void Profiler::SampleUpTo(SimNs session_now) {
  while (next_sample_ <= session_now) {
    std::string key;
    if (stack_.empty()) {
      key = "(unscoped)";
    } else {
      for (size_t i = 0; i < stack_.size(); ++i) {
        if (i != 0) key += ';';
        key += stack_[i];
      }
    }
    ++folded_[key];
    ++sample_count_;
    next_sample_ += interval_;
  }
}

std::string Profiler::FoldedText() const {
  std::string out;
  for (const auto& [stack, count] : folded_) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace pmg::metrics
