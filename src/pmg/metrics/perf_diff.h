#ifndef PMG_METRICS_PERF_DIFF_H_
#define PMG_METRICS_PERF_DIFF_H_

#include <string>
#include <vector>

#include "pmg/trace/json.h"

/// \file perf_diff.h
/// The perf-regression gate's diff engine: compares two versioned
/// BENCH_*.json documents (the trajectory artifacts every bench binary
/// writes) row by row. Rows are matched on their *identity* — the
/// concatenation of every string/bool field ("problem=bfs graph=rmat32
/// variant=Dense-WL") — and every shared numeric field becomes a delta.
/// Fields ending in `_ns` are simulated-time measurements and gate the
/// result: a gated ratio above 1 + threshold is a regression. Other
/// numeric fields are reported but informational.
///
/// A row present in the baseline but missing from the current report is a
/// failure (a silently-dropped measurement must not pass the gate); a row
/// new in the current report is a note. `pmg_perf` wraps this engine with
/// directory walking and the delta table.

namespace pmg::metrics {

struct PerfDelta {
  std::string bench;
  std::string row;
  std::string field;
  double baseline = 0.0;
  double current = 0.0;
  /// current / baseline; 1.0 when both are zero.
  double ratio = 1.0;
  /// Whether this field gates (name ends in "_ns").
  bool gated = false;
  /// gated && ratio > 1 + threshold.
  bool regression = false;
};

struct PerfDiffResult {
  std::vector<PerfDelta> deltas;
  /// Informational: rows/fields new in the current report.
  std::vector<std::string> notes;
  /// Hard failures: rows or fields that disappeared, malformed documents.
  std::vector<std::string> failures;
  uint64_t regressions = 0;

  bool ok() const { return regressions == 0 && failures.empty(); }
};

/// Parses "5%" or "0.05" into a fraction. Returns false on bad input or a
/// negative value.
bool ParseThreshold(const std::string& text, double* out);

/// The identity of one bench row: every string/bool field, in document
/// order, as "key=value" joined by spaces.
std::string RowIdentity(const trace::JsonValue& row);

/// Diffs two parsed BENCH documents into `*out` (appending, so one result
/// can accumulate a whole baseline directory). Bench-name or schema
/// mismatches are failures.
void DiffBenchDocs(const trace::JsonValue& baseline,
                   const trace::JsonValue& current, double threshold,
                   PerfDiffResult* out);

/// Text front-end: parses both documents and diffs them. Parse errors are
/// recorded as failures in `*out`.
void DiffBenchText(const std::string& baseline_text,
                   const std::string& current_text,
                   const std::string& label, double threshold,
                   PerfDiffResult* out);

}  // namespace pmg::metrics

#endif  // PMG_METRICS_PERF_DIFF_H_
