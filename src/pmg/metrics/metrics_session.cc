#include "pmg/metrics/metrics_session.h"

#include <algorithm>
#include <vector>

#include "pmg/common/check.h"
#include "pmg/trace/json.h"

namespace pmg::metrics {

MetricsSession::MetricsSession(const MetricsOptions& options)
    : options_(options), heat_(options.heat_top_k) {
  ids_.accesses = registry_.AddCounter(
      "pmg_machine_accesses_total", "Costed accesses priced by the machine");
  ids_.tlb_misses =
      registry_.AddCounter("pmg_machine_tlb_misses_total", "TLB misses");
  ids_.tlb_shootdowns = registry_.AddCounter("pmg_machine_tlb_shootdowns_total",
                                             "TLB shootdowns broadcast");
  ids_.near_mem_hits = registry_.AddCounter(
      "pmg_machine_near_mem_hits_total",
      "Near-memory (DRAM cache) hits in memory mode");
  ids_.near_mem_misses = registry_.AddCounter(
      "pmg_machine_near_mem_misses_total",
      "Near-memory (DRAM cache) misses in memory mode");
  ids_.migrated_pages = registry_.AddCounter(
      "pmg_machine_migrated_pages_total", "Pages moved by the NUMA daemon");
  ids_.minor_faults = registry_.AddCounter("pmg_machine_minor_faults_total",
                                           "First-touch minor faults");
  ids_.hint_faults = registry_.AddCounter("pmg_machine_hint_faults_total",
                                          "AutoNUMA hint faults");
  ids_.fault_retries = registry_.AddCounter(
      "pmg_faultsim_retries_total", "Transient media faults retried");
  ids_.pages_quarantined = registry_.AddCounter(
      "pmg_faultsim_pages_quarantined_total",
      "Frames retired by quarantine-and-remap");
  ids_.epochs =
      registry_.AddCounter("pmg_epochs_total", "Parallel epochs completed");
  ids_.mapped_pages = registry_.AddGauge("pmg_machine_mapped_pages",
                                         "Pages currently mapped");
  ids_.epoch_ns = registry_.AddHistogram("pmg_epoch_ns",
                                         "Simulated epoch duration (ns)");

  hooks_.registry = &registry_;
  hooks_.worklist_pushes = registry_.AddCounter("pmg_worklist_pushes_total",
                                                "Worklist items pushed");
  hooks_.worklist_pops =
      registry_.AddCounter("pmg_worklist_pops_total", "Worklist items popped");
  hooks_.worklist_steals = registry_.AddCounter(
      "pmg_worklist_steals_total", "Worklist pops served from another "
                                   "thread's bag");
  hooks_.worklist_occupancy = registry_.AddHistogram(
      "pmg_worklist_occupancy", "Frontier/worklist occupancy at round "
                                "boundaries");

  if (options_.profile) {
    profiler_ = std::make_unique<Profiler>(options_.profile_interval_ns);
  }
}

MetricsSession::~MetricsSession() {
  if (machine_ != nullptr) Detach();
}

void MetricsSession::Attach(memsim::Machine* machine) {
  PMG_CHECK_MSG(machine_ == nullptr,
                "MetricsSession is already attached to a machine");
  machine_ = machine;
  attach_base_ = machine_->stats();
  last_stats_ = attach_base_;
  attach_now_ = machine_->now();
  machine_->AddObserver(this);
  InstallHooks(&hooks_);
  if (profiler_ != nullptr) profiler_->Activate();
}

void MetricsSession::Detach() {
  PMG_CHECK_MSG(machine_ != nullptr, "MetricsSession is not attached");
  SyncMachineDeltas();
  heat_.Finalize(machine_->page_table());

  const memsim::MachineStats& cur = machine_->stats();
  accum_.accesses += cur.accesses - attach_base_.accesses;
  accum_.tlb_misses += cur.tlb_misses - attach_base_.tlb_misses;
  accum_.near_mem_misses += cur.near_mem_misses - attach_base_.near_mem_misses;
  accum_.migrated_pages += cur.migrations - attach_base_.migrations;
  clock_offset_ += machine_->now() - attach_now_;

  if (profiler_ != nullptr) {
    profiler_->SampleUpTo(clock_offset_);
    profiler_->Deactivate();
  }
  UninstallHooks(&hooks_);
  machine_->RemoveObserver(this);
  machine_ = nullptr;
  CheckConservation();
}

SimNs MetricsSession::SessionNow() const {
  if (machine_ == nullptr) return clock_offset_;
  return clock_offset_ + (machine_->now() - attach_now_);
}

void MetricsSession::OnAlloc(memsim::RegionId id, VirtAddr base,
                             uint64_t bytes, std::string_view name) {
  heat_.OnAlloc(id, base, bytes, name);
}

void MetricsSession::OnFree(memsim::RegionId id) {
  // The machine fires OnFree before destroying the region, so the page
  // table still resolves it — fold its heat now.
  heat_.OnFree(id, machine_->page_table());
}

void MetricsSession::OnAccess(ThreadId t, VirtAddr addr, uint32_t bytes,
                              AccessType type) {
  (void)t;
  (void)bytes;
  (void)type;
  heat_.RecordAccess(addr);
}

void MetricsSession::OnEpochBegin(uint32_t active_threads) {
  (void)active_threads;
}

uint64_t MetricsSession::OnEpochEnd() {
  // EndEpoch advances stats before observers fire, so the delta since the
  // previous sync is exactly this epoch (plus any between-epoch accesses).
  const SimNs epoch_ns = machine_->stats().total_ns - last_stats_.total_ns;
  registry_.Observe(ids_.epoch_ns, epoch_ns);
  SyncMachineDeltas();
  registry_.GaugeSet(ids_.mapped_pages,
                     static_cast<int64_t>(machine_->page_table().mapped_pages()));
  ++epoch_counter_;

  if (snapshots_.size() < options_.max_snapshots) {
    EpochSnapshot s;
    s.epoch = epoch_counter_;
    s.end_ns = SessionNow();
    s.accesses = registry_.CounterValue(ids_.accesses);
    s.tlb_misses = registry_.CounterValue(ids_.tlb_misses);
    s.near_mem_misses = registry_.CounterValue(ids_.near_mem_misses);
    s.migrated_pages = registry_.CounterValue(ids_.migrated_pages);
    s.worklist_pushes = registry_.CounterValue(hooks_.worklist_pushes);
    s.worklist_pops = registry_.CounterValue(hooks_.worklist_pops);
    s.worklist_steals = registry_.CounterValue(hooks_.worklist_steals);
    snapshots_.push_back(s);
  } else {
    ++dropped_snapshots_;
  }

  if (profiler_ != nullptr) profiler_->SampleUpTo(SessionNow());
  return 0;  // No race violations to fold into MachineStats.
}

void MetricsSession::SyncMachineDeltas() {
  const memsim::MachineStats cur = machine_->stats();
  const memsim::MachineStats d = cur - last_stats_;
  registry_.Add(ids_.accesses, d.accesses);
  registry_.Add(ids_.tlb_misses, d.tlb_misses);
  registry_.Add(ids_.tlb_shootdowns, d.tlb_shootdowns);
  registry_.Add(ids_.near_mem_hits, d.near_mem_hits);
  registry_.Add(ids_.near_mem_misses, d.near_mem_misses);
  registry_.Add(ids_.migrated_pages, d.migrations);
  registry_.Add(ids_.minor_faults, d.minor_faults);
  registry_.Add(ids_.hint_faults, d.hint_faults);
  registry_.Add(ids_.fault_retries, d.fault_retries);
  registry_.Add(ids_.pages_quarantined, d.pages_quarantined);
  registry_.Add(ids_.epochs, d.epochs);
  last_stats_ = cur;
}

MetricsSession::Expected MetricsSession::ExpectedTotals() const {
  Expected e = accum_;
  if (machine_ != nullptr) {
    const memsim::MachineStats& cur = machine_->stats();
    e.accesses += cur.accesses - attach_base_.accesses;
    e.tlb_misses += cur.tlb_misses - attach_base_.tlb_misses;
    e.near_mem_misses += cur.near_mem_misses - attach_base_.near_mem_misses;
    e.migrated_pages += cur.migrations - attach_base_.migrations;
  }
  return e;
}

void MetricsSession::CheckConservation() const {
  // The registry accumulated per-epoch deltas; the expected totals come
  // from whole-attachment stats subtraction. Both must bit-match, and the
  // heatmap must have attributed exactly one count per priced access.
  const Expected e = ExpectedTotals();
  PMG_CHECK_MSG(registry_.CounterValue(ids_.accesses) == e.accesses,
                "metrics conservation: accesses mirror diverged from "
                "MachineStats");
  PMG_CHECK_MSG(registry_.CounterValue(ids_.tlb_misses) == e.tlb_misses,
                "metrics conservation: tlb_misses mirror diverged from "
                "MachineStats");
  PMG_CHECK_MSG(
      registry_.CounterValue(ids_.near_mem_misses) == e.near_mem_misses,
      "metrics conservation: near_mem_misses mirror diverged from "
      "MachineStats");
  PMG_CHECK_MSG(
      registry_.CounterValue(ids_.migrated_pages) == e.migrated_pages,
      "metrics conservation: migrated_pages mirror diverged from "
      "MachineStats");
  PMG_CHECK_MSG(heat_.attributed() + heat_.unattributed() == e.accesses,
                "metrics conservation: heatmap traffic does not sum to the "
                "machine's priced accesses");
}

std::string MetricsSession::PrometheusText() {
  if (machine_ != nullptr) SyncMachineDeltas();
  CheckConservation();
  return registry_.PrometheusText();
}

HeatReport MetricsSession::BuildHeatReport() {
  if (machine_ != nullptr) SyncMachineDeltas();
  CheckConservation();
  return heat_.BuildReport();
}

std::string MetricsSession::ProfileFoldedText() const {
  if (profiler_ == nullptr) return std::string();
  return profiler_->FoldedText();
}

std::string MetricsSession::ReportJson() {
  trace::JsonWriter w;
  AppendReportJson(&w);
  return w.str();
}

void MetricsSession::AppendReportJson(trace::JsonWriter* wp) {
  if (machine_ != nullptr) SyncMachineDeltas();
  CheckConservation();
  const HeatReport heat = heat_.BuildReport();

  trace::JsonWriter& w = *wp;
  w.BeginObject();
  w.Key("schema_version").UInt(kMetricsSchemaVersion);

  // --- Registry, sorted by metric name like the Prometheus text ---
  std::vector<MetricId> order(registry_.metric_count());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<MetricId>(i);
  }
  std::sort(order.begin(), order.end(), [&](MetricId a, MetricId b) {
    return registry_.name(a) < registry_.name(b);
  });

  w.Key("counters").BeginArray();
  for (const MetricId id : order) {
    if (registry_.kind(id) != MetricKind::kCounter) continue;
    w.BeginObject();
    w.Key("name").String(registry_.name(id));
    w.Key("value").UInt(registry_.CounterValue(id));
    w.EndObject();
  }
  w.EndArray();

  w.Key("gauges").BeginArray();
  for (const MetricId id : order) {
    if (registry_.kind(id) != MetricKind::kGauge) continue;
    w.BeginObject();
    w.Key("name").String(registry_.name(id));
    w.Key("value").Int(registry_.GaugeValue(id));
    w.EndObject();
  }
  w.EndArray();

  w.Key("histograms").BeginArray();
  for (const MetricId id : order) {
    if (registry_.kind(id) != MetricKind::kHistogram) continue;
    const HistogramSnapshot snap = registry_.HistogramValue(id);
    w.BeginObject();
    w.Key("name").String(registry_.name(id));
    w.Key("count").UInt(snap.count);
    w.Key("sum").UInt(snap.sum);
    w.Key("p50").Double(snap.Quantile(0.5));
    w.Key("p99").Double(snap.Quantile(0.99));
    w.Key("buckets").BeginArray();
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      w.BeginObject();
      w.Key("bin").UInt(b);
      w.Key("count").UInt(snap.buckets[b]);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  // --- Heatmap ---
  w.Key("heatmap").BeginObject();
  w.Key("attributed").UInt(heat.attributed);
  w.Key("unattributed").UInt(heat.unattributed);
  w.Key("touched_pages").UInt(heat.touched_pages);
  w.Key("dropped_pages").UInt(heat.dropped_pages);
  w.Key("dropped_accesses").UInt(heat.dropped_accesses);
  w.Key("structures").BeginArray();
  for (const HeatStructureRow& row : heat.structures) {
    w.BeginObject();
    w.Key("name").String(row.name);
    w.Key("accesses").UInt(row.accesses);
    w.Key("bytes").UInt(row.bytes);
    w.EndObject();
  }
  w.EndArray();
  w.Key("nodes").BeginArray();
  for (const HeatNodeRow& row : heat.nodes) {
    w.BeginObject();
    w.Key("node").UInt(row.node);
    w.Key("accesses").UInt(row.accesses);
    w.EndObject();
  }
  w.EndArray();
  w.Key("page_sizes").BeginArray();
  for (const HeatPageSizeRow& row : heat.page_sizes) {
    w.BeginObject();
    w.Key("page_bytes").UInt(row.page_bytes);
    w.Key("accesses").UInt(row.accesses);
    w.EndObject();
  }
  w.EndArray();
  w.Key("heat_bins").BeginArray();
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (heat.heat_bins[b] == 0) continue;
    w.BeginObject();
    w.Key("bin").UInt(b);
    w.Key("pages").UInt(heat.heat_bins[b]);
    w.EndObject();
  }
  w.EndArray();
  w.Key("hot_pages").BeginArray();
  for (const HotPageRow& row : heat.hot_pages) {
    w.BeginObject();
    w.Key("structure").String(row.structure);
    w.Key("page_index").UInt(row.page_index);
    w.Key("page_bytes").UInt(row.page_bytes);
    w.Key("node").UInt(row.node);
    w.Key("accesses").UInt(row.accesses);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  // --- Per-epoch snapshots on the session timeline ---
  w.Key("snapshots").BeginObject();
  w.Key("dropped").UInt(dropped_snapshots_);
  w.Key("rows").BeginArray();
  for (const EpochSnapshot& s : snapshots_) {
    w.BeginObject();
    w.Key("epoch").UInt(s.epoch);
    w.Key("end_ns").UInt(s.end_ns);
    w.Key("accesses").UInt(s.accesses);
    w.Key("tlb_misses").UInt(s.tlb_misses);
    w.Key("near_mem_misses").UInt(s.near_mem_misses);
    w.Key("migrated_pages").UInt(s.migrated_pages);
    w.Key("worklist_pushes").UInt(s.worklist_pushes);
    w.Key("worklist_pops").UInt(s.worklist_pops);
    w.Key("worklist_steals").UInt(s.worklist_steals);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  // --- Profile ---
  w.Key("profile").BeginObject();
  w.Key("enabled").Bool(profiler_ != nullptr);
  if (profiler_ != nullptr) {
    w.Key("interval_ns").UInt(profiler_->sample_interval_ns());
    w.Key("samples").UInt(profiler_->sample_count());
    w.Key("folded").BeginArray();
    for (const auto& [stack, count] : profiler_->folded()) {
      w.BeginObject();
      w.Key("stack").String(stack);
      w.Key("count").UInt(count);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();

  w.EndObject();
}

}  // namespace pmg::metrics
