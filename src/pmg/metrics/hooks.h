#ifndef PMG_METRICS_HOOKS_H_
#define PMG_METRICS_HOOKS_H_

#include "pmg/common/types.h"
#include "pmg/metrics/registry.h"

/// \file hooks.h
/// The runtime-side instrumentation seam. Worklists (and any other
/// header-only runtime structure) call the inline Count* functions below
/// at their event sites; with no MetricsSession active the global hook
/// table is null and each call is one branch-predictable null check —
/// the same zero-cost-when-detached contract as the machine's observer
/// seams. A MetricsSession installs its table for the duration of its
/// attachment; nesting is rejected (one collector at a time, matching
/// the single-host-thread simulator).

namespace pmg::metrics {

/// Registry plus the pre-registered ids of every runtime event site.
struct HookTable {
  Registry* registry = nullptr;
  MetricId worklist_pushes = 0;
  MetricId worklist_pops = 0;
  MetricId worklist_steals = 0;
  /// Histogram of frontier/worklist occupancy observed at round
  /// boundaries (DenseWorklist::Advance) and drain starts.
  MetricId worklist_occupancy = 0;
};

namespace internal {
extern HookTable* g_hooks;
}  // namespace internal

/// Installs `table` as the process-wide collector (PMG_CHECKs that no
/// other table is active). `table` must outlive the installation.
void InstallHooks(HookTable* table);
/// Uninstalls `table` (PMG_CHECKs it is the active one).
void UninstallHooks(HookTable* table);

inline bool HooksActive() { return internal::g_hooks != nullptr; }

inline void CountWorklistPush(ThreadId t) {
  HookTable* h = internal::g_hooks;
  if (h != nullptr) [[unlikely]] {
    h->registry->AddShard(h->worklist_pushes, t, 1);
  }
}

inline void CountWorklistPop(ThreadId t, bool stolen) {
  HookTable* h = internal::g_hooks;
  if (h != nullptr) [[unlikely]] {
    h->registry->AddShard(h->worklist_pops, t, 1);
    if (stolen) h->registry->AddShard(h->worklist_steals, t, 1);
  }
}

inline void ObserveWorklistOccupancy(uint64_t occupancy) {
  HookTable* h = internal::g_hooks;
  if (h != nullptr) [[unlikely]] {
    h->registry->Observe(h->worklist_occupancy, occupancy);
  }
}

}  // namespace pmg::metrics

#endif  // PMG_METRICS_HOOKS_H_
