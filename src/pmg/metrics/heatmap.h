#ifndef PMG_METRICS_HEATMAP_H_
#define PMG_METRICS_HEATMAP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/memsim/page_table.h"
#include "pmg/metrics/registry.h"

/// \file heatmap.h
/// Spatial attribution: a per-page heat table fed from the machine's
/// AccessObserver seam. Every region allocation is tagged with its
/// allocation-site label (the NumaArray / CSR segment name the page table
/// already carries), accesses are counted per 4KB slot, and at fold time
/// (region free, or session detach for still-live regions) the slots are
/// collapsed against the page table into:
///
///   - per-structure traffic      ("pagerank spends 61% of reads in dsts")
///   - per-NUMA-node traffic
///   - per-page-size traffic      (4KB vs promoted/explicit 2MB pages)
///   - a log2-binned page-heat distribution
///   - a deterministic top-K hot-page table
///
/// The top-K order is total — (accesses desc, structure name asc, page
/// index asc) — so pruning to K after each fold keeps the report
/// byte-identical across runs, fold orders, and thread counts. Whatever
/// the table drops is reported explicitly (dropped_pages /
/// dropped_accesses), never silently.

namespace pmg::metrics {

struct HotPageRow {
  std::string structure;
  /// Page index within the structure, in units of `page_bytes` (chunk
  /// index for 2MB pages, 4KB-slot index for small pages).
  uint64_t page_index = 0;
  uint64_t page_bytes = 0;
  NodeId node = 0;
  uint64_t accesses = 0;
};

struct HeatStructureRow {
  std::string name;
  uint64_t accesses = 0;
  uint64_t bytes = 0;
};

struct HeatNodeRow {
  NodeId node = 0;
  uint64_t accesses = 0;
};

struct HeatPageSizeRow {
  uint64_t page_bytes = 0;
  uint64_t accesses = 0;
};

struct HeatReport {
  /// Accesses landing in a tracked region vs. outside every tracked
  /// region (regions allocated before the session attached).
  uint64_t attributed = 0;
  uint64_t unattributed = 0;
  /// Sorted by accesses desc, then name asc.
  std::vector<HeatStructureRow> structures;
  /// Sorted by node id.
  std::vector<HeatNodeRow> nodes;
  /// Sorted by page size.
  std::vector<HeatPageSizeRow> page_sizes;
  /// heat_bins[b]: touched pages whose access count falls in log2 bucket
  /// b (see Log2Bucket); untouched pages are not binned.
  uint64_t heat_bins[kHistogramBuckets] = {};
  /// Top-K hottest pages, hottest first.
  std::vector<HotPageRow> hot_pages;
  /// Touched pages total, and what the top-K table dropped.
  uint64_t touched_pages = 0;
  uint64_t dropped_pages = 0;
  uint64_t dropped_accesses = 0;

  uint64_t total() const { return attributed + unattributed; }
};

class HeatTable {
 public:
  explicit HeatTable(size_t top_k = 32);

  HeatTable(const HeatTable&) = delete;
  HeatTable& operator=(const HeatTable&) = delete;

  /// Observer feed: starts tracking a region.
  void OnAlloc(memsim::RegionId id, VirtAddr base, uint64_t bytes,
               std::string_view name);
  /// Folds and stops tracking `id` (must be called while the region is
  /// still live in `pt` — i.e., from AccessObserver::OnFree).
  void OnFree(memsim::RegionId id, const memsim::PageTable& pt);
  /// Counts one access; unattributed if `addr` is in no tracked region.
  void RecordAccess(VirtAddr addr);

  /// Folds every still-tracked region (session detach). The table keeps
  /// no per-slot state afterwards; only RecordAccess on already-folded
  /// ranges is invalid (the session detaches from the machine first).
  void Finalize(const memsim::PageTable& pt);

  /// Builds the report. PMG_CHECKs conservation: folded per-structure
  /// traffic sums to the attributed access count.
  HeatReport BuildReport() const;

  uint64_t attributed() const { return attributed_; }
  uint64_t unattributed() const { return unattributed_; }
  size_t top_k() const { return top_k_; }

 private:
  struct Tracked {
    memsim::RegionId id = 0;
    VirtAddr base = 0;
    uint64_t bytes = 0;
    std::string name;
    /// Access count per 4KB slot of the region.
    std::vector<uint64_t> slots;
  };

  /// Index of the tracked region containing `addr`, or npos.
  size_t Find(VirtAddr addr);
  void Fold(const Tracked& r, const memsim::PageTable& pt);
  void PruneCandidates();

  size_t top_k_;
  uint64_t attributed_ = 0;
  uint64_t unattributed_ = 0;

  /// Live tracked regions, sorted by base (the machine's bump allocator
  /// never reuses address ranges, so bases are unique forever).
  std::vector<Tracked> live_;
  /// One-entry lookup cache, same idea as PageTable's.
  size_t last_hit_ = static_cast<size_t>(-1);

  // --- Folded aggregates ---
  std::map<std::string, HeatStructureRow> structures_;
  std::map<NodeId, uint64_t> node_accesses_;
  std::map<uint64_t, uint64_t> page_size_accesses_;
  uint64_t heat_bins_[kHistogramBuckets] = {};
  uint64_t folded_accesses_ = 0;
  uint64_t touched_pages_ = 0;
  /// Top-K candidates, pruned after every fold.
  std::vector<HotPageRow> candidates_;
};

}  // namespace pmg::metrics

#endif  // PMG_METRICS_HEATMAP_H_
