#include "pmg/scenarios/scenarios.h"

#include <algorithm>
#include <numeric>

#include "pmg/common/check.h"
#include "pmg/graph/generators.h"

namespace pmg::scenarios {

Scenario MakeScenario(const std::string& name) {
  Scenario s;
  s.name = name;
  if (name == "kron30") {
    s.topo = graph::Kron(/*scale=*/16, /*edge_factor=*/16, /*seed=*/30);
    s.represented_vertices = 1073ull * 1000 * 1000;
    s.paper_size_gb = 136;
    s.paper_vertices_m = 1073;
    s.paper_edges_m = 10791;
    s.paper_diameter = 6;
  } else if (name == "rmat32") {
    s.topo = graph::Rmat(/*scale=*/18, /*edge_factor=*/16, /*seed=*/32);
    s.represented_vertices = 4295ull * 1000 * 1000;  // > 2^31 - 1
    s.paper_size_gb = 544;
    s.paper_vertices_m = 4295;
    s.paper_edges_m = 68719;
    s.paper_diameter = 7;
  } else if (name == "clueweb12") {
    graph::WebCrawlParams p;
    // Sized so the CSR plus labels fill ~95% of the scaled machine's
    // total near-memory, as the paper's 365GB-of-384GB clueweb12 does.
    p.vertices = 58000;
    p.avg_out_degree = 44;
    p.communities = 40;
    p.tail_length = 500;
    p.hubs = 4;
    p.seed = 12;
    s.topo = graph::WebCrawl(p);
    s.represented_vertices = 978ull * 1000 * 1000;
    s.paper_size_gb = 325;
    s.paper_vertices_m = 978;
    s.paper_edges_m = 42574;
    s.paper_diameter = 498;
  } else if (name == "uk14") {
    graph::WebCrawlParams p;
    p.vertices = 40000;
    p.avg_out_degree = 60;
    p.communities = 28;
    p.tail_length = 2500;
    p.tail_width = 4;
    p.hubs = 4;
    p.seed = 14;
    s.topo = graph::WebCrawl(p);
    s.represented_vertices = 788ull * 1000 * 1000;
    s.paper_size_gb = 361;
    s.paper_vertices_m = 788;
    s.paper_edges_m = 47615;
    s.paper_diameter = 2498;
  } else if (name == "iso_m100") {
    s.topo = graph::ProteinCluster(/*clusters=*/50, /*cluster_size=*/160,
                                   /*intra_degree=*/120, /*seed=*/100);
    s.represented_vertices = 76ull * 1000 * 1000;
    s.paper_size_gb = 509;
    s.paper_vertices_m = 76;
    s.paper_edges_m = 68211;
    s.paper_diameter = 83;
  } else if (name == "wdc12") {
    graph::WebCrawlParams p;
    p.vertices = 120000;
    p.avg_out_degree = 36;
    p.communities = 64;
    p.tail_length = 5000;
    p.hubs = 6;
    p.seed = 2012;
    s.topo = graph::WebCrawl(p);
    s.represented_vertices = 3563ull * 1000 * 1000;  // > 2^31 - 1
    s.paper_size_gb = 986;
    s.paper_vertices_m = 3563;
    s.paper_edges_m = 128736;
    s.paper_diameter = 5274;
  } else {
    PMG_CHECK_MSG(false, "unknown scenario '%s'", name.c_str());
  }
  return s;
}

std::vector<std::string> AllScenarioNames() {
  return {"kron30", "clueweb12", "uk14", "iso_m100", "rmat32", "wdc12"};
}

graph::CsrTopology ScatterIds(const graph::CsrTopology& g, uint64_t seed) {
  std::vector<VertexId> perm(g.num_vertices);
  std::iota(perm.begin(), perm.end(), 0);
  // Deterministic Fisher-Yates with a splitmix-style generator.
  uint64_t x = seed + 0x9e3779b97f4a7c15ull;
  auto next = [&x]() {
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (uint64_t i = g.num_vertices; i > 1; --i) {
    std::swap(perm[i - 1], perm[next() % i]);
  }
  return graph::Relabel(g, perm);
}

}  // namespace pmg::scenarios
