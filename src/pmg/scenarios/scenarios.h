#ifndef PMG_SCENARIOS_SCENARIOS_H_
#define PMG_SCENARIOS_SCENARIOS_H_

#include <string>
#include <vector>

#include "pmg/graph/topology.h"

/// \file scenarios.h
/// The paper's input graphs (Table 3), reproduced as scaled-down stand-ins
/// with matched *structure*. Capacities of the simulated machines are
/// scaled by the same factor (memsim::kDefaultCapacityScale), so the
/// ratios that drive the paper's results are preserved:
///   - kron30 fits comfortably in near-memory (~1/3);
///   - clueweb12 almost fills total DRAM (conflict misses appear);
///   - rmat32, uk14, iso_m100 and wdc12 exceed DRAM (PMM-only);
///   - diameters: kron/rmat ~ 5-10, clueweb ~ 500, uk14 ~ 2500,
///     wdc12 ~ 5000, iso_m100 ~ 100.

namespace pmg::scenarios {

struct Scenario {
  std::string name;
  /// Mini stand-in topology (directed, unweighted).
  graph::CsrTopology topo;
  /// Paper-scale vertex count this graph represents — used to enforce the
  /// 32-bit-node-id limits exactly where the paper hits them (wdc12).
  uint64_t represented_vertices = 0;
  /// Paper-reported properties, echoed in Table 3 reproduction.
  double paper_size_gb = 0;
  uint64_t paper_vertices_m = 0;
  uint64_t paper_edges_m = 0;
  uint64_t paper_diameter = 0;
};

/// Builds one scenario by paper name: "kron30", "clueweb12", "uk14",
/// "iso_m100", "rmat32", or "wdc12". Aborts on unknown names.
Scenario MakeScenario(const std::string& name);

/// All six Table 3 names, in the paper's order.
std::vector<std::string> AllScenarioNames();

/// Applies a deterministic pseudo-random relabeling. Out-of-core grid
/// engines see scattered frontiers on real crawls; the generator's
/// cluster-contiguous ids would otherwise gift them unrealistic
/// block-level selectivity (Section 6.4 reproduction).
graph::CsrTopology ScatterIds(const graph::CsrTopology& g, uint64_t seed);

}  // namespace pmg::scenarios

#endif  // PMG_SCENARIOS_SCENARIOS_H_
