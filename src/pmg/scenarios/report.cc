#include "pmg/scenarios/report.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace pmg::scenarios {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::FILE* out) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::fprintf(out, "%-*s  ", static_cast<int>(width[c]),
                   c < row.size() ? row[c].c_str() : "");
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  for (size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSeconds(SimNs ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e9);
  return buf;
}

std::string FormatMillis(SimNs ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatRatio(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void PrintSancheckReport(const sancheck::SancheckSummary& summary,
                         std::FILE* out) {
  if (summary.races == 0) {
    std::fprintf(out,
                 "\nsancheck: PASS — %llu access(es) over %llu epoch(s), "
                 "no data races\n",
                 static_cast<unsigned long long>(summary.checked_accesses),
                 static_cast<unsigned long long>(summary.checked_epochs));
    return;
  }
  std::fprintf(out, "\nsancheck: FAIL — %llu data race(s) in %llu epoch(s)\n",
               static_cast<unsigned long long>(summary.races),
               static_cast<unsigned long long>(summary.race_epochs));
  Table table({"epoch", "region", "offset", "first", "second"});
  for (const sancheck::RaceReport& r : summary.reports) {
    char offset[32];
    std::snprintf(offset, sizeof(offset), "+%llu",
                  static_cast<unsigned long long>(r.offset));
    table.AddRow({std::to_string(r.epoch), r.region, offset,
                  std::string(AccessTypeName(r.first_type)) + " t" +
                      std::to_string(r.first_thread),
                  std::string(AccessTypeName(r.second_type)) + " t" +
                      std::to_string(r.second_thread)});
  }
  table.Print(out);
  const uint64_t dropped =
      summary.races - static_cast<uint64_t>(summary.reports.size());
  if (dropped > 0) {
    std::fprintf(out, "... %llu further race(s) not shown\n",
                 static_cast<unsigned long long>(dropped));
  }
}

void PrintFaultReport(const faultsim::FaultReport& fault,
                      const memsim::MachineStats& stats, std::FILE* out) {
  const bool fired = fault.ue_delivered > 0 || fault.transient_faults > 0 ||
                     fault.degraded_epochs > 0 || fault.crashes > 0;
  if (!fired) {
    std::fprintf(out,
                 "\nfaults: none delivered over %llu media op(s)\n",
                 static_cast<unsigned long long>(fault.media_ops));
    return;
  }
  std::fprintf(out, "\nfault report (%llu media op(s) observed)\n",
               static_cast<unsigned long long>(fault.media_ops));
  Table table({"fault", "events", "effect"});
  if (fault.ue_delivered > 0) {
    // machine_check_ns bills every trapping thread; kernel_ns only the
    // per-epoch critical path, so the run total is the honest denominator.
    const double mce_share =
        stats.total_ns == 0
            ? 0.0
            : static_cast<double>(stats.machine_check_ns) /
                  static_cast<double>(stats.total_ns);
    char effect[128];
    std::snprintf(effect, sizeof(effect),
                  "%llu frame(s) quarantined, mce %s ms (%.1f%% of run)",
                  static_cast<unsigned long long>(stats.pages_quarantined),
                  FormatMillis(stats.machine_check_ns).c_str(),
                  mce_share * 100.0);
    table.AddRow({"uncorrectable", std::to_string(fault.ue_delivered),
                  effect});
  }
  if (fault.transient_faults > 0) {
    char effect[128];
    std::snprintf(effect, sizeof(effect), "%llu retr%s, stall %s ms",
                  static_cast<unsigned long long>(fault.retries),
                  fault.retries == 1 ? "y" : "ies",
                  FormatMillis(fault.stall_ns).c_str());
    table.AddRow({"transient", std::to_string(fault.transient_faults),
                  effect});
  }
  if (fault.degraded_epochs > 0) {
    table.AddRow({"link", std::to_string(fault.degraded_epochs),
                  "epoch(s) priced at degraded remote bandwidth"});
  }
  if (fault.crashes > 0) {
    table.AddRow({"crash", std::to_string(fault.crashes),
                  "process terminated"});
  }
  table.Print(out);
  if (!fault.losses.empty()) {
    Table loss({"lost region", "page", "bytes"});
    for (const faultsim::FaultReport::Loss& l : fault.losses) {
      char page[32];
      std::snprintf(page, sizeof(page), "0x%llx",
                    static_cast<unsigned long long>(l.page_base));
      loss.AddRow({l.region, page, std::to_string(l.bytes)});
    }
    std::fprintf(out, "data lost to quarantine:\n");
    loss.Print(out);
  }
}

void PrintRecoveryReport(const faultsim::RecoveryResult& r, std::FILE* out) {
  std::fprintf(out, "\nrecovery: %s after %u attempt(s), %llu round(s)\n",
               r.completed ? "COMPLETED" : "GAVE UP",
               r.attempts, static_cast<unsigned long long>(r.rounds));
  Table table({"metric", "value"});
  table.AddRow({"crashes", std::to_string(r.fault.crashes)});
  table.AddRow({"restarts from checkpoint",
                std::to_string(r.restarts_from_checkpoint)});
  table.AddRow({"restarts from scratch",
                std::to_string(r.restarts_from_scratch)});
  table.AddRow({"checkpoints committed",
                std::to_string(r.ckpt.writes_committed) + " of " +
                    std::to_string(r.ckpt.writes_started)});
  table.AddRow({"torn / crc-failed slots",
                std::to_string(r.ckpt.torn_detected) + " / " +
                    std::to_string(r.ckpt.crc_failures)});
  table.AddRow({"checkpoint fallbacks", std::to_string(r.ckpt.fallbacks)});
  table.AddRow({"total simulated time (s)", FormatSeconds(r.total_ns)});
  table.AddRow({"checkpoint write time (s)",
                FormatSeconds(r.checkpoint_write_ns)});
  table.AddRow({"restore time (s)", FormatSeconds(r.restore_ns)});
  table.Print(out);
}

void PrintServeReport(const serve::ServeReport& report, std::FILE* out) {
  std::fprintf(
      out,
      "\nserve: %s — %llu offered, %llu answered (%llu degraded), "
      "%llu shed, %llu failed, %s%% deadline misses\n",
      report.finished ? "FINISHED" : "GAVE UP",
      static_cast<unsigned long long>(report.offered),
      static_cast<unsigned long long>(report.completed +
                                      report.completed_degraded),
      static_cast<unsigned long long>(report.completed_degraded),
      static_cast<unsigned long long>(report.shed),
      static_cast<unsigned long long>(report.failed),
      FormatDouble(report.deadline_miss_pct).c_str());
  Table actions({"metric", "value"});
  actions.AddRow({"timeouts", std::to_string(report.timeouts)});
  actions.AddRow({"retries", std::to_string(report.retries)});
  actions.AddRow({"hedges", std::to_string(report.hedges)});
  actions.AddRow({"crashes", std::to_string(report.crashes)});
  actions.AddRow({"recoveries", std::to_string(report.recoveries)});
  actions.AddRow({"shed: queue-full-reject",
                  std::to_string(report.shed_by_reason[0])});
  actions.AddRow({"shed: queue-full-oldest",
                  std::to_string(report.shed_by_reason[1])});
  actions.AddRow({"shed: deadline-hopeless",
                  std::to_string(report.shed_by_reason[2])});
  actions.AddRow({"busy time (ms)", FormatMillis(report.busy_ns)});
  actions.AddRow({"idle time (ms)", FormatMillis(report.idle_ns)});
  actions.AddRow({"recovery time (ms)", FormatMillis(report.recovery_ns)});
  actions.AddRow({"total time (ms)", FormatMillis(report.total_ns)});
  actions.AddRow(
      {"conservation", report.Conserves() ? "OK" : "VIOLATED"});
  actions.Print(out);
  Table lat({"kind", "offered", "answered", "degraded", "shed", "failed",
             "missed", "p50 (ms)", "p99 (ms)", "p999 (ms)"});
  lat.AddRow({"all", std::to_string(report.offered),
              std::to_string(report.completed + report.completed_degraded),
              std::to_string(report.completed_degraded),
              std::to_string(report.shed), std::to_string(report.failed),
              std::to_string(report.deadline_missed),
              FormatMillis(report.p50_ns), FormatMillis(report.p99_ns),
              FormatMillis(report.p999_ns)});
  for (const serve::ServeKindRow& row : report.kinds) {
    if (row.offered == 0) continue;
    lat.AddRow({serve::QueryKindName(row.kind), std::to_string(row.offered),
                std::to_string(row.completed + row.degraded),
                std::to_string(row.degraded), std::to_string(row.shed),
                std::to_string(row.failed),
                std::to_string(row.deadline_missed),
                FormatMillis(row.p50_ns), FormatMillis(row.p99_ns),
                FormatMillis(row.p999_ns)});
  }
  std::fputc('\n', out);
  lat.Print(out);
}

void PrintTraceReport(const trace::TraceReport& report, std::FILE* out) {
  std::fprintf(out,
               "\ntrace: %llu epoch(s), %s ms attributed, conservation %s\n",
               static_cast<unsigned long long>(report.epochs),
               FormatMillis(report.attributed_ns).c_str(),
               report.Conserves() ? "OK" : "VIOLATED");
  Table table({"bucket", "side", "time (ms)", "share"});
  const double denom = report.attributed_ns == 0
                           ? 1.0
                           : static_cast<double>(report.attributed_ns);
  for (size_t b = 0; b < memsim::kTraceBucketCount; ++b) {
    const SimNs ns = report.buckets[b];
    if (ns == 0) continue;
    const auto bucket = static_cast<memsim::TraceBucket>(b);
    table.AddRow({std::string(memsim::TraceBucketName(bucket)),
                  memsim::IsKernelBucket(bucket) ? "kernel" : "user",
                  FormatMillis(ns),
                  FormatDouble(static_cast<double>(ns) / denom * 100.0, 1) +
                      "%"});
  }
  table.Print(out);
  if (!report.regions.empty()) {
    Table regions({"region", "accesses", "access time (ms)"});
    for (const trace::TraceReport::RegionRow& r : report.regions) {
      regions.AddRow({r.name, std::to_string(r.accesses),
                      FormatMillis(r.user_ns)});
    }
    std::fprintf(out, "access time by region:\n");
    regions.Print(out);
  }
  if (report.quarantines + report.checkpoint_writes +
          report.checkpoint_restores + report.crashes >
      0) {
    std::fprintf(out,
                 "events: %llu quarantine(s), %llu checkpoint write(s), "
                 "%llu restore(s), %llu crash(es)\n",
                 static_cast<unsigned long long>(report.quarantines),
                 static_cast<unsigned long long>(report.checkpoint_writes),
                 static_cast<unsigned long long>(report.checkpoint_restores),
                 static_cast<unsigned long long>(report.crashes));
  }
}

void PrintHeatReport(const metrics::HeatReport& heat, std::FILE* out) {
  std::fprintf(out,
               "\nheatmap: %llu access(es) attributed, %llu outside tracked "
               "regions, %llu page(s) touched\n",
               static_cast<unsigned long long>(heat.attributed),
               static_cast<unsigned long long>(heat.unattributed),
               static_cast<unsigned long long>(heat.touched_pages));
  const double denom =
      heat.attributed == 0 ? 1.0 : static_cast<double>(heat.attributed);
  Table structures({"structure", "accesses", "share", "bytes"});
  for (const metrics::HeatStructureRow& row : heat.structures) {
    structures.AddRow(
        {row.name, std::to_string(row.accesses),
         FormatDouble(static_cast<double>(row.accesses) / denom * 100.0, 1) +
             "%",
         std::to_string(row.bytes)});
  }
  structures.Print(out);

  Table split({"numa node / page size", "accesses", "share"});
  for (const metrics::HeatNodeRow& row : heat.nodes) {
    split.AddRow(
        {"node " + std::to_string(row.node), std::to_string(row.accesses),
         FormatDouble(static_cast<double>(row.accesses) / denom * 100.0, 1) +
             "%"});
  }
  for (const metrics::HeatPageSizeRow& row : heat.page_sizes) {
    const char* label = row.page_bytes == memsim::kHugePageBytes
                            ? "2M pages"
                            : row.page_bytes == memsim::kSmallPageBytes
                                  ? "4K pages"
                                  : "other pages";
    split.AddRow(
        {label, std::to_string(row.accesses),
         FormatDouble(static_cast<double>(row.accesses) / denom * 100.0, 1) +
             "%"});
  }
  split.Print(out);

  if (!heat.hot_pages.empty()) {
    std::fprintf(out, "hottest pages:\n");
    Table hot({"structure", "page", "size", "node", "accesses"});
    for (const metrics::HotPageRow& row : heat.hot_pages) {
      hot.AddRow({row.structure, std::to_string(row.page_index),
                  row.page_bytes == memsim::kHugePageBytes ? "2M" : "4K",
                  std::to_string(row.node), std::to_string(row.accesses)});
    }
    hot.Print(out);
  }
  // Never drop silently: say what fell off the top-K table.
  std::fprintf(out,
               "dropped from top-%llu: %llu page(s) holding %llu access(es)\n",
               static_cast<unsigned long long>(heat.hot_pages.size()),
               static_cast<unsigned long long>(heat.dropped_pages),
               static_cast<unsigned long long>(heat.dropped_accesses));
}

void PrintWhatifReport(const whatif::ExplainReport& report, std::FILE* out) {
  std::fprintf(out,
               "\nwhatif: %s machine '%s', %u socket(s), migration %s, "
               "%llu epoch(s), %s ms journaled\n",
               report.kind.c_str(), report.machine_name.c_str(),
               report.sockets, report.migration_enabled ? "on" : "off",
               static_cast<unsigned long long>(report.epochs),
               FormatMillis(report.total_ns).c_str());

  const double denom =
      report.total_ns == 0 ? 1.0 : static_cast<double>(report.total_ns);
  Table bound({"bound", "epochs", "time (ms)", "share"});
  bound.AddRow({"latency", std::to_string(report.latency_bound_epochs),
                FormatMillis(report.latency_bound_ns),
                FormatDouble(static_cast<double>(report.latency_bound_ns) /
                                 denom * 100.0,
                             1) +
                    "%"});
  bound.AddRow({"bandwidth", std::to_string(report.bandwidth_bound_epochs),
                FormatMillis(report.bandwidth_bound_ns),
                FormatDouble(static_cast<double>(report.bandwidth_bound_ns) /
                                 denom * 100.0,
                             1) +
                    "%"});
  bound.AddRow({"daemon", std::to_string(report.daemon_bound_epochs),
                FormatMillis(report.daemon_bound_ns),
                FormatDouble(static_cast<double>(report.daemon_bound_ns) /
                                 denom * 100.0,
                             1) +
                    "%"});
  bound.Print(out);

  if (!report.stragglers.empty()) {
    std::fprintf(out, "stragglers (thread that set the epoch barrier):\n");
    Table straggle({"thread", "critical epochs", "critical time (ms)"});
    for (const whatif::ExplainReport::ThreadBlame& b : report.stragglers) {
      straggle.AddRow({std::to_string(b.thread),
                       std::to_string(b.critical_epochs),
                       FormatMillis(b.critical_ns)});
    }
    straggle.Print(out);
    std::fprintf(out, "barrier idle: %s ms; imbalance (critical/mean):",
                 FormatMillis(report.barrier_idle_ns).c_str());
    for (size_t i = 0; i < whatif::kImbalanceBuckets; ++i) {
      std::fprintf(out, " %s=%llu", whatif::ImbalanceBucketName(i),
                   static_cast<unsigned long long>(report.imbalance[i]));
    }
    std::fprintf(out, "\n");
  }

  std::fprintf(out, "top levers (counterfactual re-pricing):\n");
  Table levers({"lever", "predicted (ms)", "speedup", "what it models"});
  for (const whatif::ExplainReport::Lever& l : report.levers) {
    levers.AddRow({l.name, FormatMillis(l.predicted_total_ns),
                   FormatRatio(l.speedup), l.description});
  }
  levers.Print(out);
}

void PrintServeTailReport(const servetrace::ServeTailReport& report,
                          std::FILE* out) {
  std::fprintf(out,
               "\nserve tail: %llu offered, %llu answered, "
               "%llu deadline miss(es)\n",
               static_cast<unsigned long long>(report.offered),
               static_cast<unsigned long long>(report.answered),
               static_cast<unsigned long long>(report.deadline_missed));
  if (report.rows.empty()) {
    std::fprintf(out, "no answered requests — nothing to decompose\n");
  } else {
    Table rows({"scope", "quantile", "request", "latency (ms)", "queue",
                "service", "degraded", "hedge", "backoff", "recovery"});
    for (const servetrace::TailQuantileRow& r : report.rows) {
      std::vector<std::string> cells = {
          r.all ? "all" : serve::QueryKindName(r.kind), r.quantile,
          std::to_string(r.request_id), FormatMillis(r.latency_ns)};
      for (size_t c = 0; c < servetrace::kBreakdownComponents; ++c) {
        cells.push_back(
            FormatMillis(servetrace::BreakdownComponent(r.parts, c)));
      }
      rows.AddRow(std::move(cells));
    }
    rows.Print(out);

    const SimNs total = report.answered_total.Sum();
    const double denom = total == 0 ? 1.0 : static_cast<double>(total);
    std::fprintf(out, "answered time split:");
    for (size_t c = 0; c < servetrace::kBreakdownComponents; ++c) {
      const SimNs ns =
          servetrace::BreakdownComponent(report.answered_total, c);
      std::fprintf(out, " %s=%s%%", servetrace::BreakdownComponentName(c),
                   FormatDouble(static_cast<double>(ns) / denom * 100.0, 1)
                       .c_str());
    }
    std::fprintf(out, "\n");
  }
  if (!report.miss_causes.empty()) {
    std::fprintf(out, "miss causes (ranked):\n");
    Table causes({"cause", "count"});
    for (const servetrace::TailCause& c : report.miss_causes) {
      causes.AddRow({c.cause, std::to_string(c.count)});
    }
    causes.Print(out);
  }
}

void PrintServeTailContrast(const servetrace::ServeTailReport& base,
                            const servetrace::ServeTailReport& other,
                            std::FILE* out) {
  std::fprintf(out,
               "\nserve tail contrast: base %llu answered vs other %llu "
               "answered\n",
               static_cast<unsigned long long>(base.answered),
               static_cast<unsigned long long>(other.answered));

  auto find_all_row =
      [](const servetrace::ServeTailReport& r,
         const std::string& quantile) -> const servetrace::TailQuantileRow* {
    for (const servetrace::TailQuantileRow& row : r.rows) {
      if (row.all && row.quantile == quantile) return &row;
    }
    return nullptr;
  };

  Table quantiles(
      {"quantile", "base (ms)", "other (ms)", "delta (ms)", "ratio"});
  const char* kNames[] = {"p50", "p99", "p999"};
  for (const char* q : kNames) {
    const servetrace::TailQuantileRow* a = find_all_row(base, q);
    const servetrace::TailQuantileRow* b = find_all_row(other, q);
    if (a == nullptr || b == nullptr) continue;
    const int64_t delta = static_cast<int64_t>(b->latency_ns) -
                          static_cast<int64_t>(a->latency_ns);
    const double ratio =
        a->latency_ns == 0 ? 0.0
                           : static_cast<double>(b->latency_ns) /
                                 static_cast<double>(a->latency_ns);
    char delta_ms[32];
    std::snprintf(delta_ms, sizeof(delta_ms), "%+.3f",
                  static_cast<double>(delta) / 1e6);
    quantiles.AddRow({q, FormatMillis(a->latency_ns),
                      FormatMillis(b->latency_ns), delta_ms,
                      FormatRatio(ratio)});
  }
  quantiles.Print(out);

  // The headline decomposition: which component moved the p999.
  const servetrace::TailQuantileRow* a = find_all_row(base, "p999");
  const servetrace::TailQuantileRow* b = find_all_row(other, "p999");
  if (a == nullptr || b == nullptr) {
    std::fprintf(out, "no p999 row on both sides — skipping component "
                      "contrast\n");
    return;
  }
  struct ComponentDelta {
    size_t c;
    int64_t delta;
  };
  std::vector<ComponentDelta> deltas;
  for (size_t c = 0; c < servetrace::kBreakdownComponents; ++c) {
    deltas.push_back(
        {c, static_cast<int64_t>(servetrace::BreakdownComponent(b->parts, c)) -
                static_cast<int64_t>(
                    servetrace::BreakdownComponent(a->parts, c))});
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const ComponentDelta& x, const ComponentDelta& y) {
              const int64_t ax = x.delta < 0 ? -x.delta : x.delta;
              const int64_t ay = y.delta < 0 ? -y.delta : y.delta;
              if (ax != ay) return ax > ay;
              return x.c < y.c;
            });
  std::fprintf(out, "p999 movers (component deltas, largest first):\n");
  Table movers({"component", "base (ms)", "other (ms)", "delta (ms)"});
  for (const ComponentDelta& d : deltas) {
    char delta_ms[32];
    std::snprintf(delta_ms, sizeof(delta_ms), "%+.3f",
                  static_cast<double>(d.delta) / 1e6);
    movers.AddRow(
        {servetrace::BreakdownComponentName(d.c),
         FormatMillis(servetrace::BreakdownComponent(a->parts, d.c)),
         FormatMillis(servetrace::BreakdownComponent(b->parts, d.c)),
         delta_ms});
  }
  movers.Print(out);
}

void PrintTierReport(const tierscope::TierReport& report, std::FILE* out) {
  std::fprintf(out,
               "\ntierscope: %llu scan(s), %llu candidate(s) -> %llu "
               "migrated page(s) (%llu bytes), conservation %s\n",
               static_cast<unsigned long long>(report.scans),
               static_cast<unsigned long long>(report.candidates),
               static_cast<unsigned long long>(report.migrated_pages),
               static_cast<unsigned long long>(report.migrated_bytes),
               report.Conserves() ? "OK" : "VIOLATED");
  std::fprintf(out,
               "placements %llu, quarantines %llu, shootdowns %llu over "
               "%llu epoch(s)\n",
               static_cast<unsigned long long>(report.placements),
               static_cast<unsigned long long>(report.quarantines),
               static_cast<unsigned long long>(report.shootdowns),
               static_cast<unsigned long long>(report.epochs));

  Table funnel({"decision", "pages"});
  funnel.AddRow({"candidates", std::to_string(report.candidates)});
  funnel.AddRow({"migrated", std::to_string(report.migrated_pages)});
  for (size_t r = 0; r < memsim::kTierSkipReasonCount; ++r) {
    funnel.AddRow({std::string("skipped: ") +
                       memsim::TierSkipReasonName(
                           static_cast<memsim::TierSkipReason>(r)),
                   std::to_string(report.skipped[r])});
  }
  funnel.Print(out);

  Table daemon({"daemon component", "time (ms)"});
  daemon.AddRow({"scan", FormatMillis(report.daemon_scan_ns)});
  daemon.AddRow({"move", FormatMillis(report.daemon_move_ns)});
  daemon.AddRow({"remap", FormatMillis(report.daemon_remap_ns)});
  daemon.AddRow({"shootdown", FormatMillis(report.daemon_shootdown_ns)});
  daemon.Print(out);

  if (!report.flows.empty()) {
    Table flows({"flow", "pages", "bytes"});
    for (const tierscope::TierFlowRow& f : report.flows) {
      flows.AddRow({"node " + std::to_string(f.from) + " -> node " +
                        std::to_string(f.to),
                    std::to_string(f.pages), std::to_string(f.bytes)});
    }
    std::fprintf(out, "migration flows:\n");
    flows.Print(out);
  }
  Table nodes({"node", "placed", "bytes used", "mig in", "mig out",
               "traffic bytes"});
  for (const tierscope::TierNodeRow& n : report.nodes) {
    nodes.AddRow({"node " + std::to_string(n.node),
                  std::to_string(n.placements), std::to_string(n.bytes_used),
                  std::to_string(n.migrations_in),
                  std::to_string(n.migrations_out),
                  std::to_string(n.dram_bytes + n.pmm_bytes)});
  }
  nodes.Print(out);
  if (report.dropped_scans + report.dropped_epochs > 0) {
    std::fprintf(out,
                 "dropped from the Chrome export: %llu scan(s), %llu "
                 "epoch(s) (aggregates above are complete)\n",
                 static_cast<unsigned long long>(report.dropped_scans),
                 static_cast<unsigned long long>(report.dropped_epochs));
  }
}

void PrintMisplacementReport(const tierscope::MisplacementReport& report,
                             std::FILE* out) {
  std::fprintf(out,
               "\nmisplacement: %llu hot page(s) joined to live placement, "
               "%llu unjoined, tiering regret %s ms\n",
               static_cast<unsigned long long>(report.joined_pages),
               static_cast<unsigned long long>(report.unjoined_pages),
               FormatMillis(report.regret_total_ns).c_str());
  if (!report.pages.empty()) {
    Table pages({"structure", "page", "node", "wanted", "heat", "remote",
                 "local"});
    for (const tierscope::MisplacedPageRow& p : report.pages) {
      pages.AddRow({p.structure, std::to_string(p.page_index),
                    std::to_string(p.node), std::to_string(p.wanted),
                    std::to_string(p.accesses),
                    std::to_string(p.remote_accesses),
                    std::to_string(p.local_accesses)});
    }
    std::fprintf(out, "hot pages on the wrong node:\n");
    pages.Print(out);
  }
  if (!report.structures.empty()) {
    Table structures(
        {"structure", "misplaced pages", "remote accesses", "regret (ms)"});
    for (const tierscope::MisplacementStructureRow& s : report.structures) {
      structures.AddRow({s.structure, std::to_string(s.misplaced_pages),
                         std::to_string(s.remote_accesses),
                         FormatMillis(s.regret_ns)});
    }
    structures.Print(out);
  }
}

double Geomean(const std::vector<double>& values) {
  double log_sum = 0;
  int n = 0;
  for (double v : values) {
    if (v > 0) {
      log_sum += std::log(v);
      ++n;
    }
  }
  return n == 0 ? 0.0 : std::exp(log_sum / n);
}

}  // namespace pmg::scenarios
