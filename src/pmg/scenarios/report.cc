#include "pmg/scenarios/report.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace pmg::scenarios {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::FILE* out) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::fprintf(out, "%-*s  ", static_cast<int>(width[c]),
                   c < row.size() ? row[c].c_str() : "");
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  for (size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSeconds(SimNs ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e9);
  return buf;
}

std::string FormatMillis(SimNs ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatRatio(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void PrintSancheckReport(const sancheck::SancheckSummary& summary,
                         std::FILE* out) {
  if (summary.races == 0) {
    std::fprintf(out,
                 "\nsancheck: PASS — %llu access(es) over %llu epoch(s), "
                 "no data races\n",
                 static_cast<unsigned long long>(summary.checked_accesses),
                 static_cast<unsigned long long>(summary.checked_epochs));
    return;
  }
  std::fprintf(out, "\nsancheck: FAIL — %llu data race(s) in %llu epoch(s)\n",
               static_cast<unsigned long long>(summary.races),
               static_cast<unsigned long long>(summary.race_epochs));
  Table table({"epoch", "region", "offset", "first", "second"});
  for (const sancheck::RaceReport& r : summary.reports) {
    char offset[32];
    std::snprintf(offset, sizeof(offset), "+%llu",
                  static_cast<unsigned long long>(r.offset));
    table.AddRow({std::to_string(r.epoch), r.region, offset,
                  std::string(AccessTypeName(r.first_type)) + " t" +
                      std::to_string(r.first_thread),
                  std::string(AccessTypeName(r.second_type)) + " t" +
                      std::to_string(r.second_thread)});
  }
  table.Print(out);
  const uint64_t dropped =
      summary.races - static_cast<uint64_t>(summary.reports.size());
  if (dropped > 0) {
    std::fprintf(out, "... %llu further race(s) not shown\n",
                 static_cast<unsigned long long>(dropped));
  }
}

double Geomean(const std::vector<double>& values) {
  double log_sum = 0;
  int n = 0;
  for (double v : values) {
    if (v > 0) {
      log_sum += std::log(v);
      ++n;
    }
  }
  return n == 0 ? 0.0 : std::exp(log_sum / n);
}

}  // namespace pmg::scenarios
