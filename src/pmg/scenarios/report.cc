#include "pmg/scenarios/report.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace pmg::scenarios {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::FILE* out) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::fprintf(out, "%-*s  ", static_cast<int>(width[c]),
                   c < row.size() ? row[c].c_str() : "");
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  for (size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSeconds(SimNs ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e9);
  return buf;
}

std::string FormatMillis(SimNs ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatRatio(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

double Geomean(const std::vector<double>& values) {
  double log_sum = 0;
  int n = 0;
  for (double v : values) {
    if (v > 0) {
      log_sum += std::log(v);
      ++n;
    }
  }
  return n == 0 ? 0.0 : std::exp(log_sum / n);
}

}  // namespace pmg::scenarios
