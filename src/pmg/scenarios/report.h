#ifndef PMG_SCENARIOS_REPORT_H_
#define PMG_SCENARIOS_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/faultsim/fault_injector.h"
#include "pmg/faultsim/recovery.h"
#include "pmg/memsim/stats.h"
#include "pmg/metrics/heatmap.h"
#include "pmg/sancheck/sancheck.h"
#include "pmg/serve/server.h"
#include "pmg/servetrace/servetrace.h"
#include "pmg/tierscope/tierscope.h"
#include "pmg/trace/trace_session.h"
#include "pmg/whatif/explain.h"

/// \file report.h
/// Plain-text table rendering and summary statistics for the benchmark
/// binaries, which print each paper table/figure as an aligned table.

namespace pmg::scenarios {

/// A fixed-header text table with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Prints the header, a separator, and all rows.
  void Print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Seconds with 3 fractional digits, e.g. "1.234".
std::string FormatSeconds(SimNs ns);

/// Milliseconds with 3 fractional digits (for microbenchmark tables).
std::string FormatMillis(SimNs ns);

/// "12.3x" style ratio.
std::string FormatRatio(double ratio);

/// Fixed-precision double.
std::string FormatDouble(double v, int precision = 2);

/// Geometric mean (ignores non-positive entries).
double Geomean(const std::vector<double>& values);

/// Prints a sanitized run's verdict: a one-line PASS when no races were
/// found, otherwise the summary with one table row per stored report.
void PrintSancheckReport(const sancheck::SancheckSummary& summary,
                         std::FILE* out = stdout);

/// Prints what a fault schedule delivered: one table row per fault class,
/// the machine-check share of kernel time, and any data-loss rows from
/// quarantined pages. One clean line when nothing fired.
void PrintFaultReport(const faultsim::FaultReport& fault,
                      const memsim::MachineStats& stats,
                      std::FILE* out = stdout);

/// Prints a crash-recovery run: attempts/restart breakdown plus the time
/// split between useful work, checkpoint writes, and restores.
void PrintRecoveryReport(const faultsim::RecoveryResult& r,
                         std::FILE* out = stdout);

/// Prints a traced run's attribution: one row per nonzero bucket with its
/// share of attributed time (user buckets first, then kernel), the
/// per-region access-time table, and the conservation verdict.
void PrintTraceReport(const trace::TraceReport& report,
                      std::FILE* out = stdout);

/// Prints a metered run's spatial attribution: per-structure traffic with
/// shares, per-NUMA-node and per-page-size splits, and the top-K hot
/// pages — with an explicit line for what the top-K table dropped.
void PrintHeatReport(const metrics::HeatReport& heat,
                     std::FILE* out = stdout);

/// Prints a serve run: outcome totals, the robustness-action counters
/// (shed/timeouts/retries/hedges/crashes), the busy/idle/recovery time
/// split, and per-query-kind latency quantile rows (p50/p99/p999).
void PrintServeReport(const serve::ServeReport& report,
                      std::FILE* out = stdout);

/// Prints a journaled run's explanation: the epoch bound-classification
/// split, the straggler table with the barrier-imbalance histogram, and
/// the ranked "top levers" counterfactual table.
void PrintWhatifReport(const whatif::ExplainReport& report,
                       std::FILE* out = stdout);

/// Prints the tail explainer: per-kind p50/p99/p999 representative
/// requests decomposed into the six latency components, the aggregate
/// answered-time split, and the ranked miss-cause table.
void PrintServeTailReport(const servetrace::ServeTailReport& report,
                          std::FILE* out = stdout);

/// Prints a tier-scoped run's decision audit: the candidate -> migrate /
/// skip-by-reason funnel, the daemon cost split, the node-to-node flow
/// matrix, per-node placement rows, and the conservation verdict.
void PrintTierReport(const tierscope::TierReport& report,
                     std::FILE* out = stdout);

/// Prints the misplacement join: hot pages living off their wanted node
/// ranked by sampled remote accesses, the per-structure regret table, and
/// the journal-priced regret total.
void PrintMisplacementReport(const tierscope::MisplacementReport& report,
                             std::FILE* out = stdout);

/// Prints two tail reports side by side (the PMM-vs-DRAM workflow): the
/// "all" quantile rows of `base` against `other` with ratios, then the
/// headline p999 component deltas ranked largest-first, whatif's
/// ranked-levers style.
void PrintServeTailContrast(const servetrace::ServeTailReport& base,
                            const servetrace::ServeTailReport& other,
                            std::FILE* out = stdout);

}  // namespace pmg::scenarios

#endif  // PMG_SCENARIOS_REPORT_H_
