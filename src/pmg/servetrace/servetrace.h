#ifndef PMG_SERVETRACE_SERVETRACE_H_
#define PMG_SERVETRACE_SERVETRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pmg/common/types.h"
#include "pmg/metrics/registry.h"
#include "pmg/serve/observer.h"
#include "pmg/serve/request.h"
#include "pmg/trace/json.h"
#include "pmg/trace/trace_session.h"

/// \file servetrace.h
/// pmg::servetrace — request-scoped tracing and tail-latency attribution
/// for the serving layer. A ServeTracer attaches to serve::Server through
/// the ServeObserver seam (serve/observer.h) and rebuilds, per request, a
/// gap-free span timeline on the simulated serve clock:
///
///   arrival -> queue wait -> attempt execution (per dispatch) ->
///   retry backoff -> hedge re-run -> recovery stall -> terminal
///
/// The conservation law is the core invariant and is PMG_CHECKed at every
/// request's terminal event: spans are contiguous from arrival_ns to
/// terminal_ns and their durations sum *bit-exactly* to the end-to-end
/// latency. (Tests re-derive the same law independently from the raw
/// spans.) On top of the timelines sit three consumers:
///
///   - a Chrome trace-event exporter (trace::ChromeEventSource): the
///     slowest-K answered requests plus shed/failed requests become
///     per-request tracks of span slices, flow-linked arrival->terminal,
///     laid next to the machine's epoch tracks in one Perfetto document;
///   - log2-histogram exemplars (metrics::Registry) — emitted by
///     pmg::serve itself; AppendRegistryExemplarsJson here renders them;
///   - a tail explainer (BuildTailReport): p50/p99/p999 per query kind
///     decomposed into queue/service/degraded/hedge/backoff/recovery
///     components with ranked deadline-miss causes, in pmg::whatif's
///     ranked-levers style. Two reports from different machines (PMM vs
///     DRAM) diff offline via pmg_explain --tail/--contrast.
///
/// Everything here is host-side bookkeeping of already-priced simulated
/// events: attaching a tracer never changes a simulated number
/// (bench_serve_trace asserts byte-identical serve reports), and every
/// output is a pure function of (workload seed, fault schedule, config) —
/// byte-identical across reruns and PMG_HOST_THREADS widths.

namespace pmg::servetrace {

inline constexpr uint32_t kServeTraceSchemaVersion = 1;

/// Default slowest-K selection width of the Chrome/JSON exports.
inline constexpr uint32_t kDefaultSlowestK = 8;

/// What a request was doing during one contiguous slice of its lifetime.
enum class SpanKind : uint8_t {
  kQueue = 0,   ///< Waiting in the admission queue.
  kExec,        ///< Executing on the worker (one dispatch).
  kBackoff,     ///< Waiting out a retry backoff.
  kRecovery,    ///< Stalled by a crash-recovery machine rebuild.
};

constexpr const char* SpanKindName(SpanKind k) {
  switch (k) {
    case SpanKind::kQueue:
      return "queue";
    case SpanKind::kExec:
      return "exec";
    case SpanKind::kBackoff:
      return "backoff";
    case SpanKind::kRecovery:
      return "recovery";
  }
  return "?";
}

struct Span {
  SpanKind kind = SpanKind::kQueue;
  SimNs start_ns = 0;
  SimNs end_ns = 0;
  /// Exec spans: the 1-based billed-attempt ordinal and its flavor.
  uint32_t attempt = 0;
  bool degraded = false;
  bool hedge_rerun = false;
  /// Exec spans: why the attempt stopped billing.
  serve::ServeObserver::ExecEnd end_why =
      serve::ServeObserver::ExecEnd::kAnswered;
};

const char* ExecEndName(serve::ServeObserver::ExecEnd why);

/// The 6-component latency split of one request. Components partition the
/// span timeline (each span lands in exactly one), so for every terminal
/// request Sum() == terminal_ns - arrival_ns, bit-exactly.
struct LatencyBreakdown {
  SimNs queue_ns = 0;     ///< Admission-queue wait.
  SimNs service_ns = 0;   ///< Full-fidelity execution.
  SimNs degraded_ns = 0;  ///< Degraded execution (incl. degraded retries).
  SimNs hedge_ns = 0;     ///< Hedge re-run execution after a straggler.
  SimNs backoff_ns = 0;   ///< Retry backoff waits.
  SimNs recovery_ns = 0;  ///< Crash-recovery stalls.

  SimNs Sum() const {
    return queue_ns + service_ns + degraded_ns + hedge_ns + backoff_ns +
           recovery_ns;
  }
};

inline constexpr size_t kBreakdownComponents = 6;
const char* BreakdownComponentName(size_t c);
SimNs BreakdownComponent(const LatencyBreakdown& b, size_t c);

/// One request's reconstructed lifetime.
struct RequestTimeline {
  serve::Request req;
  bool terminal = false;
  /// Terminal without an answer because the server gave up.
  bool abandoned = false;
  bool missed_deadline = false;
  serve::Outcome outcome = serve::Outcome::kCompleted;
  serve::ShedReason shed_reason = serve::ShedReason::kQueueFullReject;
  /// When the request left the system. Unarrived requests abandoned at
  /// give-up carry their arrival time (empty timeline, 0 == 0 law).
  SimNs terminal_ns = 0;
  uint32_t attempts = 0;
  uint32_t hedges = 0;
  uint32_t timeouts = 0;
  uint32_t crashes = 0;
  /// Contiguous from arrival_ns to terminal_ns (the conservation law).
  std::vector<Span> spans;

  SimNs LatencyNs() const { return terminal_ns - req.arrival_ns; }
  LatencyBreakdown Breakdown() const;
};

/// One quantile's representative request with its component split.
struct TailQuantileRow {
  bool all = false;  ///< Aggregate row over every kind.
  serve::QueryKind kind = serve::QueryKind::kBfs;
  std::string quantile;  ///< "p50" | "p99" | "p999".
  uint64_t request_id = 0;
  SimNs latency_ns = 0;
  LatencyBreakdown parts;
};

/// One ranked reason answers missed their deadline (or never came).
struct TailCause {
  std::string cause;
  uint64_t count = 0;
};

/// The tail explainer: nearest-rank p50/p99/p999 representatives per kind
/// decomposed into components, plus ranked deadline-miss causes. Fully
/// serializable (AppendJson/FromJson) so two runs on different machines
/// (PMM vs DRAM) can be contrasted offline by pmg_explain.
struct ServeTailReport {
  uint32_t schema_version = kServeTraceSchemaVersion;
  uint64_t offered = 0;
  uint64_t answered = 0;
  uint64_t deadline_missed = 0;
  /// The "all" rows first (p50/p99/p999), then per kind with answers.
  std::vector<TailQuantileRow> rows;
  /// Count-ranked causes of missed deadlines (ties break on name).
  std::vector<TailCause> miss_causes;
  /// Component sums over every answered request (the mean split, kept as
  /// exact integer sums).
  LatencyBreakdown answered_total;

  void AppendJson(trace::JsonWriter* w) const;
  std::string ToJson() const;
  /// Parses an AppendJson document (the `serve_tail` section of a
  /// pmg_run --json report). False + *error on malformed input.
  static bool FromJson(const trace::JsonValue& v, ServeTailReport* out,
                       std::string* error);
};

/// The ServeObserver implementation. One-shot, like the Server it
/// observes: construct a fresh tracer per Server::Run.
class ServeTracer : public serve::ServeObserver,
                    public trace::ChromeEventSource {
 public:
  explicit ServeTracer(uint32_t slowest_k = kDefaultSlowestK);

  ServeTracer(const ServeTracer&) = delete;
  ServeTracer& operator=(const ServeTracer&) = delete;

  // ServeObserver:
  void OnRun(const std::vector<serve::Request>& arrivals) override;
  void OnEnqueue(uint64_t req_index, uint32_t attempt, SimNs at_ns) override;
  void OnShed(uint64_t req_index, serve::ShedReason reason,
              SimNs at_ns) override;
  void OnDispatch(uint64_t req_index, uint32_t attempt, bool degraded,
                  bool hedge_rerun, SimNs at_ns) override;
  void OnExecEnd(uint64_t req_index, ExecEnd why, SimNs at_ns) override;
  void OnBackoff(uint64_t req_index, SimNs from_ns) override;
  void OnRecovery(uint64_t req_index, SimNs from_ns, SimNs to_ns) override;
  void OnFinish(uint64_t req_index, serve::Outcome outcome,
                bool missed_deadline, SimNs at_ns) override;
  void OnAbandon(uint64_t req_index, SimNs at_ns) override;

  // trace::ChromeEventSource — per-request tracks for the selection below.
  void AppendChromeEvents(trace::JsonWriter* w) const override;

  const std::vector<RequestTimeline>& timelines() const { return timelines_; }
  uint32_t slowest_k() const { return slowest_k_; }

  /// The deterministic export selection, ascending by request id: the
  /// slowest K answered requests (latency desc, id asc) plus the first K
  /// shed and first K failed requests.
  std::vector<uint64_t> SelectedRequests() const;

  /// The `servetrace` JSON section: selected timelines span by span, with
  /// explicit dropped accounting.
  void AppendJson(trace::JsonWriter* w) const;
  std::string ToJson() const;

 private:
  /// Closes the open span (there must be one) at `at_ns`.
  void CloseOpenSpan(uint64_t req_index, SimNs at_ns);
  void OpenSpan(uint64_t req_index, SpanKind kind, SimNs at_ns);
  /// Marks the terminal event and PMG_CHECKs the conservation law.
  void Terminal(uint64_t req_index, SimNs at_ns);

  uint32_t slowest_k_;
  std::vector<RequestTimeline> timelines_;
  /// open_[i] != 0: timelines_[i].spans.back() is still open.
  std::vector<uint8_t> open_;
};

/// Builds the tail explainer from a finished tracer's timelines.
ServeTailReport BuildTailReport(const ServeTracer& tracer);

/// Renders every exemplar-carrying histogram of `registry` as one JSON
/// array value (rows of {metric, bucket_le, value, exemplar_id}) — the
/// `exemplars` section of the pmg_run --json serve report.
void AppendRegistryExemplarsJson(const metrics::Registry& registry,
                                 trace::JsonWriter* w);

}  // namespace pmg::servetrace

#endif  // PMG_SERVETRACE_SERVETRACE_H_
