#include "pmg/servetrace/servetrace.h"

#include <algorithm>
#include <cstdio>

#include "pmg/common/check.h"

namespace pmg::servetrace {

using serve::Outcome;
using serve::QueryKind;
using serve::ShedReason;
using trace::JsonValue;
using trace::JsonWriter;

namespace {

/// Synthetic Chrome tids. The epoch track sits at 1000000
/// (trace_session.cc); the serve worker track and the per-request tracks
/// live above it so the two layers never collide.
constexpr uint64_t kServeWorkerTid = 2000000;
constexpr uint64_t kFirstRequestTid = kServeWorkerTid + 1;

double ToUs(SimNs ns) { return static_cast<double>(ns) / 1000.0; }

unsigned long long Ull(uint64_t v) {
  return static_cast<unsigned long long>(v);
}

bool Answered(const RequestTimeline& t) {
  return t.terminal && (t.outcome == Outcome::kCompleted ||
                        t.outcome == Outcome::kCompletedDegraded);
}

/// Nearest-rank index of quantile qnum/qden over n sorted samples, in
/// pure integer math so every platform picks the same representative.
size_t QuantileIndex(size_t n, size_t qnum, size_t qden) {
  PMG_CHECK(n > 0);
  const size_t rank = (n * qnum + qden - 1) / qden;  // ceil(n * q), >= 1
  return std::min(n - 1, rank - 1);
}

struct QuantileSpec {
  const char* name;
  size_t qnum;
  size_t qden;
};

constexpr QuantileSpec kQuantiles[] = {
    {"p50", 1, 2}, {"p99", 99, 100}, {"p999", 999, 1000}};

void AppendBreakdownJson(const LatencyBreakdown& b, JsonWriter* w) {
  w->BeginObject();
  for (size_t c = 0; c < kBreakdownComponents; ++c) {
    w->Key(std::string(BreakdownComponentName(c)) + "_ns")
        .UInt(BreakdownComponent(b, c));
  }
  w->EndObject();
}

bool ParseU64Field(const JsonValue& obj, const char* key, uint64_t* out,
                   std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsNumber()) {
    *error = std::string("serve_tail: missing numeric field '") + key + "'";
    return false;
  }
  *out = v->AsUInt();
  return true;
}

bool ParseBreakdown(const JsonValue& obj, const char* key,
                    LatencyBreakdown* out, std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kObject) {
    *error = std::string("serve_tail: missing object field '") + key + "'";
    return false;
  }
  SimNs parts[kBreakdownComponents] = {};
  for (size_t c = 0; c < kBreakdownComponents; ++c) {
    const std::string name =
        std::string(BreakdownComponentName(c)) + "_ns";
    if (!ParseU64Field(*v, name.c_str(), &parts[c], error)) return false;
  }
  out->queue_ns = parts[0];
  out->service_ns = parts[1];
  out->degraded_ns = parts[2];
  out->hedge_ns = parts[3];
  out->backoff_ns = parts[4];
  out->recovery_ns = parts[5];
  return true;
}

}  // namespace

const char* ExecEndName(serve::ServeObserver::ExecEnd why) {
  switch (why) {
    case serve::ServeObserver::ExecEnd::kAnswered:
      return "answered";
    case serve::ServeObserver::ExecEnd::kDeadline:
      return "deadline";
    case serve::ServeObserver::ExecEnd::kHedge:
      return "hedge";
    case serve::ServeObserver::ExecEnd::kCrash:
      return "crash";
  }
  return "?";
}

const char* BreakdownComponentName(size_t c) {
  switch (c) {
    case 0:
      return "queue";
    case 1:
      return "service";
    case 2:
      return "degraded";
    case 3:
      return "hedge";
    case 4:
      return "backoff";
    case 5:
      return "recovery";
    default:
      return "?";
  }
}

SimNs BreakdownComponent(const LatencyBreakdown& b, size_t c) {
  switch (c) {
    case 0:
      return b.queue_ns;
    case 1:
      return b.service_ns;
    case 2:
      return b.degraded_ns;
    case 3:
      return b.hedge_ns;
    case 4:
      return b.backoff_ns;
    case 5:
      return b.recovery_ns;
    default:
      return 0;
  }
}

LatencyBreakdown RequestTimeline::Breakdown() const {
  LatencyBreakdown b;
  for (const Span& s : spans) {
    const SimNs d = s.end_ns - s.start_ns;
    switch (s.kind) {
      case SpanKind::kQueue:
        b.queue_ns += d;
        break;
      case SpanKind::kExec:
        if (s.hedge_rerun) {
          b.hedge_ns += d;
        } else if (s.degraded) {
          b.degraded_ns += d;
        } else {
          b.service_ns += d;
        }
        break;
      case SpanKind::kBackoff:
        b.backoff_ns += d;
        break;
      case SpanKind::kRecovery:
        b.recovery_ns += d;
        break;
    }
  }
  return b;
}

ServeTracer::ServeTracer(uint32_t slowest_k) : slowest_k_(slowest_k) {
  PMG_CHECK_MSG(slowest_k_ >= 1, "ServeTracer slowest_k must be >= 1");
}

void ServeTracer::OnRun(const std::vector<serve::Request>& arrivals) {
  PMG_CHECK_MSG(timelines_.empty(),
                "ServeTracer is one-shot: attach a fresh tracer per run");
  timelines_.resize(arrivals.size());
  open_.assign(arrivals.size(), 0);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    timelines_[i].req = arrivals[i];
  }
}

void ServeTracer::OpenSpan(uint64_t req_index, SpanKind kind, SimNs at_ns) {
  PMG_CHECK(req_index < timelines_.size());
  PMG_CHECK_MSG(open_[req_index] == 0,
                "request %llu already has an open span", Ull(req_index));
  Span s;
  s.kind = kind;
  s.start_ns = at_ns;
  s.end_ns = at_ns;
  timelines_[req_index].spans.push_back(s);
  open_[req_index] = 1;
}

void ServeTracer::CloseOpenSpan(uint64_t req_index, SimNs at_ns) {
  PMG_CHECK(req_index < timelines_.size());
  PMG_CHECK_MSG(open_[req_index] != 0, "request %llu has no open span",
                Ull(req_index));
  Span& s = timelines_[req_index].spans.back();
  PMG_CHECK_MSG(at_ns >= s.start_ns,
                "request %llu span would close before it opened",
                Ull(req_index));
  s.end_ns = at_ns;
  open_[req_index] = 0;
}

void ServeTracer::Terminal(uint64_t req_index, SimNs at_ns) {
  RequestTimeline& t = timelines_[req_index];
  PMG_CHECK_MSG(!t.terminal, "request %llu reached two terminal events",
                Ull(req_index));
  PMG_CHECK(open_[req_index] == 0);
  t.terminal = true;
  t.terminal_ns = at_ns;

  // The conservation law, checked bit-exactly at every terminal: spans
  // tile [arrival_ns, terminal_ns] with no gap and no overlap, so their
  // durations sum to the end-to-end latency.
  if (t.spans.empty()) {
    PMG_CHECK_MSG(at_ns == t.req.arrival_ns,
                  "request %llu: empty timeline must terminate at arrival",
                  Ull(req_index));
    return;
  }
  PMG_CHECK_MSG(t.spans.front().start_ns == t.req.arrival_ns,
                "request %llu: first span does not start at arrival",
                Ull(req_index));
  SimNs sum = 0;
  SimNs cursor = t.req.arrival_ns;
  for (const Span& s : t.spans) {
    PMG_CHECK_MSG(s.start_ns == cursor,
                  "request %llu: span timeline has a gap at %llu",
                  Ull(req_index), Ull(cursor));
    PMG_CHECK(s.end_ns >= s.start_ns);
    sum += s.end_ns - s.start_ns;
    cursor = s.end_ns;
  }
  PMG_CHECK_MSG(cursor == at_ns,
                "request %llu: last span does not end at the terminal",
                Ull(req_index));
  PMG_CHECK_MSG(sum == at_ns - t.req.arrival_ns,
                "request %llu: span durations do not sum to latency",
                Ull(req_index));
}

void ServeTracer::OnEnqueue(uint64_t req_index, uint32_t attempt,
                            SimNs at_ns) {
  (void)attempt;
  PMG_CHECK(req_index < timelines_.size());
  // A retry's backoff wait ends the moment it becomes eligible again.
  if (open_[req_index] != 0) {
    PMG_CHECK(timelines_[req_index].spans.back().kind == SpanKind::kBackoff);
    CloseOpenSpan(req_index, at_ns);
  }
  OpenSpan(req_index, SpanKind::kQueue, at_ns);
}

void ServeTracer::OnShed(uint64_t req_index, ShedReason reason,
                         SimNs at_ns) {
  CloseOpenSpan(req_index, at_ns);  // always sheds out of the queue
  RequestTimeline& t = timelines_[req_index];
  t.outcome = Outcome::kShed;
  t.shed_reason = reason;
  Terminal(req_index, at_ns);
}

void ServeTracer::OnDispatch(uint64_t req_index, uint32_t attempt,
                             bool degraded, bool hedge_rerun, SimNs at_ns) {
  PMG_CHECK(req_index < timelines_.size());
  // First dispatch of an attempt leaves the queue; the hedge re-run starts
  // back-to-back with the aborted straggler, no span open in between.
  if (open_[req_index] != 0) {
    PMG_CHECK(timelines_[req_index].spans.back().kind == SpanKind::kQueue);
    CloseOpenSpan(req_index, at_ns);
  }
  OpenSpan(req_index, SpanKind::kExec, at_ns);
  Span& s = timelines_[req_index].spans.back();
  s.attempt = attempt;
  s.degraded = degraded;
  s.hedge_rerun = hedge_rerun;
  ++timelines_[req_index].attempts;
}

void ServeTracer::OnExecEnd(uint64_t req_index, ExecEnd why, SimNs at_ns) {
  PMG_CHECK(req_index < timelines_.size());
  PMG_CHECK(timelines_[req_index].spans.back().kind == SpanKind::kExec);
  CloseOpenSpan(req_index, at_ns);
  RequestTimeline& t = timelines_[req_index];
  t.spans.back().end_why = why;
  switch (why) {
    case ExecEnd::kAnswered:
      break;
    case ExecEnd::kDeadline:
      ++t.timeouts;
      break;
    case ExecEnd::kHedge:
      ++t.hedges;
      break;
    case ExecEnd::kCrash:
      ++t.crashes;
      break;
  }
}

void ServeTracer::OnBackoff(uint64_t req_index, SimNs from_ns) {
  OpenSpan(req_index, SpanKind::kBackoff, from_ns);
}

void ServeTracer::OnRecovery(uint64_t req_index, SimNs from_ns,
                             SimNs to_ns) {
  PMG_CHECK(req_index < timelines_.size());
  PMG_CHECK(to_ns >= from_ns);
  OpenSpan(req_index, SpanKind::kRecovery, from_ns);
  CloseOpenSpan(req_index, to_ns);
}

void ServeTracer::OnFinish(uint64_t req_index, Outcome outcome,
                           bool missed_deadline, SimNs at_ns) {
  PMG_CHECK(req_index < timelines_.size());
  PMG_CHECK(open_[req_index] == 0);
  RequestTimeline& t = timelines_[req_index];
  t.outcome = outcome;
  t.missed_deadline = missed_deadline;
  Terminal(req_index, at_ns);
}

void ServeTracer::OnAbandon(uint64_t req_index, SimNs at_ns) {
  PMG_CHECK(req_index < timelines_.size());
  RequestTimeline& t = timelines_[req_index];
  t.abandoned = true;
  t.outcome = Outcome::kFailed;
  if (open_[req_index] != 0) CloseOpenSpan(req_index, at_ns);
  // Queued/backing-off requests terminate where their last span was cut;
  // requests that never arrived before the server gave up keep an empty
  // timeline pinned at their arrival (the 0 == 0 law).
  Terminal(req_index,
           t.spans.empty() ? t.req.arrival_ns : t.spans.back().end_ns);
}

std::vector<uint64_t> ServeTracer::SelectedRequests() const {
  std::vector<uint64_t> answered;
  std::vector<uint64_t> shed;
  std::vector<uint64_t> failed;
  for (uint64_t i = 0; i < timelines_.size(); ++i) {
    const RequestTimeline& t = timelines_[i];
    if (!t.terminal) continue;
    if (Answered(t)) {
      answered.push_back(i);
    } else if (t.outcome == Outcome::kShed) {
      shed.push_back(i);
    } else {
      failed.push_back(i);
    }
  }
  std::sort(answered.begin(), answered.end(), [&](uint64_t a, uint64_t b) {
    const SimNs la = timelines_[a].LatencyNs();
    const SimNs lb = timelines_[b].LatencyNs();
    if (la != lb) return la > lb;
    return timelines_[a].req.id < timelines_[b].req.id;
  });
  if (answered.size() > slowest_k_) answered.resize(slowest_k_);
  if (shed.size() > slowest_k_) shed.resize(slowest_k_);
  if (failed.size() > slowest_k_) failed.resize(slowest_k_);

  std::vector<uint64_t> selected;
  selected.reserve(answered.size() + shed.size() + failed.size());
  selected.insert(selected.end(), answered.begin(), answered.end());
  selected.insert(selected.end(), shed.begin(), shed.end());
  selected.insert(selected.end(), failed.begin(), failed.end());
  std::sort(selected.begin(), selected.end(), [&](uint64_t a, uint64_t b) {
    return timelines_[a].req.id < timelines_[b].req.id;
  });
  return selected;
}

void ServeTracer::AppendChromeEvents(JsonWriter* w) const {
  const std::vector<uint64_t> selected = SelectedRequests();

  auto metadata = [&](uint64_t tid, const std::string& name) {
    w->BeginObject();
    w->Key("name").String("thread_name");
    w->Key("ph").String("M");
    w->Key("pid").UInt(0);
    w->Key("tid").UInt(tid);
    w->Key("args").BeginObject();
    w->Key("name").String(name);
    w->EndObject();
    w->EndObject();
  };

  auto slice = [&](uint64_t tid, const std::string& name, SimNs start,
                   SimNs end) {
    w->BeginObject();
    w->Key("name").String(name);
    w->Key("ph").String("X");
    w->Key("pid").UInt(0);
    w->Key("tid").UInt(tid);
    w->Key("ts").Fixed(ToUs(start), 3);
    w->Key("dur").Fixed(ToUs(end - start), 3);
  };

  auto instant = [&](uint64_t tid, const std::string& name, SimNs at,
                     uint64_t value) {
    w->BeginObject();
    w->Key("name").String(name);
    w->Key("ph").String("i");
    w->Key("s").String("g");
    w->Key("pid").UInt(0);
    w->Key("tid").UInt(tid);
    w->Key("ts").Fixed(ToUs(at), 3);
    w->Key("args").BeginObject();
    w->Key("value").UInt(value);
    w->EndObject();
    w->EndObject();
  };

  metadata(kServeWorkerTid, "serve worker (selected requests)");
  for (size_t slot = 0; slot < selected.size(); ++slot) {
    const RequestTimeline& t = timelines_[selected[slot]];
    metadata(kFirstRequestTid + slot,
             "req " + std::to_string(t.req.id) + " " +
                 QueryKindName(t.req.kind));
  }

  for (size_t slot = 0; slot < selected.size(); ++slot) {
    const RequestTimeline& t = timelines_[selected[slot]];
    const uint64_t tid = kFirstRequestTid + slot;

    // The request as a flow: arrival binds to the first span's slice, the
    // terminal to the last, so Perfetto draws one arrow through the
    // request's whole lifetime next to the epoch tracks.
    if (!t.spans.empty()) {
      w->BeginObject();
      w->Key("name").String("req " + std::to_string(t.req.id));
      w->Key("cat").String("serve");
      w->Key("ph").String("s");
      w->Key("id").UInt(t.req.id);
      w->Key("pid").UInt(0);
      w->Key("tid").UInt(tid);
      w->Key("ts").Fixed(ToUs(t.spans.front().start_ns), 3);
      w->EndObject();
      w->BeginObject();
      w->Key("name").String("req " + std::to_string(t.req.id));
      w->Key("cat").String("serve");
      w->Key("ph").String("f");
      w->Key("bp").String("e");
      w->Key("id").UInt(t.req.id);
      w->Key("pid").UInt(0);
      w->Key("tid").UInt(tid);
      w->Key("ts").Fixed(ToUs(t.terminal_ns), 3);
      w->EndObject();
    }

    for (const Span& s : t.spans) {
      std::string name = SpanKindName(s.kind);
      if (s.kind == SpanKind::kExec) {
        name = "attempt " + std::to_string(s.attempt);
        if (s.hedge_rerun) {
          name += " (hedge)";
        } else if (s.degraded) {
          name += " (degraded)";
        }
      }
      slice(tid, name, s.start_ns, s.end_ns);
      w->Key("args").BeginObject();
      w->Key("request").UInt(t.req.id);
      if (s.kind == SpanKind::kExec) {
        w->Key("attempt").UInt(s.attempt);
        w->Key("degraded").Bool(s.degraded);
        w->Key("hedge_rerun").Bool(s.hedge_rerun);
        w->Key("end").String(ExecEndName(s.end_why));
      }
      w->EndObject();
      w->EndObject();

      // The busy view: execution and recovery stalls also land on the
      // shared worker track, interleaving the selected requests the way
      // the single worker actually ran them.
      if (s.kind == SpanKind::kExec || s.kind == SpanKind::kRecovery) {
        slice(kServeWorkerTid,
              s.kind == SpanKind::kRecovery
                  ? "recovery"
                  : "req " + std::to_string(t.req.id),
              s.start_ns, s.end_ns);
        w->Key("args").BeginObject();
        w->Key("request").UInt(t.req.id);
        w->EndObject();
        w->EndObject();
      }

      if (s.kind == SpanKind::kExec &&
          s.end_why == ExecEnd::kHedge) {
        instant(tid, "serve-hedge", s.end_ns, t.req.id);
      }
      if (s.kind == SpanKind::kExec &&
          s.end_why == ExecEnd::kDeadline) {
        instant(tid, "serve-timeout", s.end_ns, t.req.id);
      }
    }
    if (t.terminal && t.outcome == Outcome::kShed) {
      instant(tid, "serve-shed", t.terminal_ns, t.req.id);
    }
  }
}

void ServeTracer::AppendJson(JsonWriter* w) const {
  const std::vector<uint64_t> selected = SelectedRequests();
  uint64_t terminal = 0;
  for (const RequestTimeline& t : timelines_) {
    if (t.terminal) ++terminal;
  }

  w->BeginObject();
  w->Key("schema_version").UInt(kServeTraceSchemaVersion);
  w->Key("slowest_k").UInt(slowest_k_);
  w->Key("requests").UInt(timelines_.size());
  w->Key("terminal").UInt(terminal);
  w->Key("selected").BeginArray();
  for (const uint64_t i : selected) {
    const RequestTimeline& t = timelines_[i];
    w->BeginObject();
    w->Key("id").UInt(t.req.id);
    w->Key("kind").String(QueryKindName(t.req.kind));
    w->Key("outcome").String(OutcomeName(t.outcome));
    if (t.outcome == Outcome::kShed) {
      w->Key("shed_reason").String(ShedReasonName(t.shed_reason));
    }
    if (t.abandoned) w->Key("abandoned").Bool(true);
    w->Key("missed_deadline").Bool(t.missed_deadline);
    w->Key("arrival_ns").UInt(t.req.arrival_ns);
    w->Key("terminal_ns").UInt(t.terminal_ns);
    w->Key("latency_ns").UInt(t.LatencyNs());
    w->Key("attempts").UInt(t.attempts);
    w->Key("hedges").UInt(t.hedges);
    w->Key("timeouts").UInt(t.timeouts);
    w->Key("crashes").UInt(t.crashes);
    w->Key("breakdown");
    AppendBreakdownJson(t.Breakdown(), w);
    w->Key("spans").BeginArray();
    for (const Span& s : t.spans) {
      w->BeginObject();
      w->Key("kind").String(SpanKindName(s.kind));
      w->Key("start_ns").UInt(s.start_ns);
      w->Key("end_ns").UInt(s.end_ns);
      if (s.kind == SpanKind::kExec) {
        w->Key("attempt").UInt(s.attempt);
        w->Key("degraded").Bool(s.degraded);
        w->Key("hedge_rerun").Bool(s.hedge_rerun);
        w->Key("end").String(ExecEndName(s.end_why));
      }
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->Key("selected_dropped").UInt(terminal - selected.size());
  w->EndObject();
}

std::string ServeTracer::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.str();
}

void ServeTailReport::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("schema_version").UInt(schema_version);
  w->Key("offered").UInt(offered);
  w->Key("answered").UInt(answered);
  w->Key("deadline_missed").UInt(deadline_missed);
  w->Key("rows").BeginArray();
  for (const TailQuantileRow& r : rows) {
    w->BeginObject();
    w->Key("scope").String(r.all ? "all" : QueryKindName(r.kind));
    w->Key("quantile").String(r.quantile);
    w->Key("request_id").UInt(r.request_id);
    w->Key("latency_ns").UInt(r.latency_ns);
    w->Key("parts");
    AppendBreakdownJson(r.parts, w);
    w->EndObject();
  }
  w->EndArray();
  w->Key("miss_causes").BeginArray();
  for (const TailCause& c : miss_causes) {
    w->BeginObject();
    w->Key("cause").String(c.cause);
    w->Key("count").UInt(c.count);
    w->EndObject();
  }
  w->EndArray();
  w->Key("answered_total");
  AppendBreakdownJson(answered_total, w);
  w->EndObject();
}

std::string ServeTailReport::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.str();
}

bool ServeTailReport::FromJson(const JsonValue& v, ServeTailReport* out,
                               std::string* error) {
  std::string scratch;
  if (error == nullptr) error = &scratch;
  if (v.kind != JsonValue::Kind::kObject) {
    *error = "serve_tail: document is not an object";
    return false;
  }
  ServeTailReport r;
  uint64_t schema = 0;
  if (!ParseU64Field(v, "schema_version", &schema, error)) return false;
  if (schema != kServeTraceSchemaVersion) {
    *error = "serve_tail: unsupported schema_version " +
             std::to_string(schema);
    return false;
  }
  r.schema_version = static_cast<uint32_t>(schema);
  if (!ParseU64Field(v, "offered", &r.offered, error) ||
      !ParseU64Field(v, "answered", &r.answered, error) ||
      !ParseU64Field(v, "deadline_missed", &r.deadline_missed, error)) {
    return false;
  }
  const JsonValue* rows = v.Find("rows");
  if (rows == nullptr || rows->kind != JsonValue::Kind::kArray) {
    *error = "serve_tail: missing 'rows' array";
    return false;
  }
  for (const JsonValue& rv : rows->array) {
    if (rv.kind != JsonValue::Kind::kObject) {
      *error = "serve_tail: row is not an object";
      return false;
    }
    TailQuantileRow row;
    const JsonValue* scope = rv.Find("scope");
    const JsonValue* quantile = rv.Find("quantile");
    if (scope == nullptr || scope->kind != JsonValue::Kind::kString ||
        quantile == nullptr ||
        quantile->kind != JsonValue::Kind::kString) {
      *error = "serve_tail: row needs string 'scope' and 'quantile'";
      return false;
    }
    if (scope->string_value == "all") {
      row.all = true;
    } else {
      bool known = false;
      for (size_t k = 0; k < serve::kQueryKindCount; ++k) {
        const QueryKind kind = static_cast<QueryKind>(k);
        if (scope->string_value == QueryKindName(kind)) {
          row.kind = kind;
          known = true;
          break;
        }
      }
      if (!known) {
        *error = "serve_tail: unknown row scope '" + scope->string_value +
                 "'";
        return false;
      }
    }
    row.quantile = quantile->string_value;
    if (!ParseU64Field(rv, "request_id", &row.request_id, error) ||
        !ParseU64Field(rv, "latency_ns", &row.latency_ns, error) ||
        !ParseBreakdown(rv, "parts", &row.parts, error)) {
      return false;
    }
    r.rows.push_back(std::move(row));
  }
  const JsonValue* causes = v.Find("miss_causes");
  if (causes == nullptr || causes->kind != JsonValue::Kind::kArray) {
    *error = "serve_tail: missing 'miss_causes' array";
    return false;
  }
  for (const JsonValue& cv : causes->array) {
    const JsonValue* cause =
        cv.kind == JsonValue::Kind::kObject ? cv.Find("cause") : nullptr;
    TailCause c;
    if (cause == nullptr || cause->kind != JsonValue::Kind::kString ||
        !ParseU64Field(cv, "count", &c.count, error)) {
      *error = "serve_tail: malformed miss_causes entry";
      return false;
    }
    c.cause = cause->string_value;
    r.miss_causes.push_back(std::move(c));
  }
  if (!ParseBreakdown(v, "answered_total", &r.answered_total, error)) {
    return false;
  }
  *out = std::move(r);
  return true;
}

ServeTailReport BuildTailReport(const ServeTracer& tracer) {
  ServeTailReport report;
  const std::vector<RequestTimeline>& timelines = tracer.timelines();
  report.offered = timelines.size();

  std::vector<const RequestTimeline*> answered;
  struct CauseAgg {
    std::string cause;
    uint64_t count = 0;
  };
  std::vector<CauseAgg> causes;
  auto count_cause = [&](const std::string& cause) {
    for (CauseAgg& c : causes) {
      if (c.cause == cause) {
        ++c.count;
        return;
      }
    }
    causes.push_back({cause, 1});
  };

  for (const RequestTimeline& t : timelines) {
    if (!t.terminal) continue;
    if (Answered(t)) {
      answered.push_back(&t);
      const LatencyBreakdown b = t.Breakdown();
      report.answered_total.queue_ns += b.queue_ns;
      report.answered_total.service_ns += b.service_ns;
      report.answered_total.degraded_ns += b.degraded_ns;
      report.answered_total.hedge_ns += b.hedge_ns;
      report.answered_total.backoff_ns += b.backoff_ns;
      report.answered_total.recovery_ns += b.recovery_ns;
      if (t.missed_deadline) {
        ++report.deadline_missed;
        // A late answer's cause is its dominant latency component (the
        // fixed component order breaks exact ties).
        size_t dominant = 0;
        for (size_t c = 1; c < kBreakdownComponents; ++c) {
          if (BreakdownComponent(b, c) >
              BreakdownComponent(b, dominant)) {
            dominant = c;
          }
        }
        count_cause(std::string("late:") + BreakdownComponentName(dominant));
      }
    } else if (t.outcome == Outcome::kShed) {
      count_cause(std::string("shed:") + ShedReasonName(t.shed_reason));
    } else {
      count_cause(t.abandoned ? "failed:server-gave-up"
                              : "failed:retries-exhausted");
    }
  }
  report.answered = answered.size();

  std::sort(answered.begin(), answered.end(),
            [](const RequestTimeline* a, const RequestTimeline* b) {
              const SimNs la = a->LatencyNs();
              const SimNs lb = b->LatencyNs();
              if (la != lb) return la < lb;
              return a->req.id < b->req.id;
            });

  auto emit_rows = [&](bool all, QueryKind kind,
                       const std::vector<const RequestTimeline*>& pool) {
    if (pool.empty()) return;
    for (const QuantileSpec& q : kQuantiles) {
      const RequestTimeline* pick =
          pool[QuantileIndex(pool.size(), q.qnum, q.qden)];
      TailQuantileRow row;
      row.all = all;
      row.kind = kind;
      row.quantile = q.name;
      row.request_id = pick->req.id;
      row.latency_ns = pick->LatencyNs();
      row.parts = pick->Breakdown();
      report.rows.push_back(std::move(row));
    }
  };

  emit_rows(true, QueryKind::kBfs, answered);
  for (size_t k = 0; k < serve::kQueryKindCount; ++k) {
    const QueryKind kind = static_cast<QueryKind>(k);
    std::vector<const RequestTimeline*> pool;
    for (const RequestTimeline* t : answered) {
      if (t->req.kind == kind) pool.push_back(t);
    }
    emit_rows(false, kind, pool);
  }

  std::sort(causes.begin(), causes.end(),
            [](const CauseAgg& a, const CauseAgg& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.cause < b.cause;
            });
  for (CauseAgg& c : causes) {
    report.miss_causes.push_back({std::move(c.cause), c.count});
  }
  return report;
}

void AppendRegistryExemplarsJson(const metrics::Registry& registry,
                                 JsonWriter* w) {
  w->BeginArray();
  for (metrics::MetricId id = 0; id < registry.metric_count(); ++id) {
    if (registry.kind(id) != metrics::MetricKind::kHistogram) continue;
    for (const metrics::HistogramExemplar& e :
         registry.HistogramExemplars(id)) {
      w->BeginObject();
      w->Key("metric").String(registry.name(id));
      w->Key("bucket").UInt(e.bucket);
      w->Key("le");
      if (e.bucket == 0) {
        w->String("0");
      } else if (e.bucket == metrics::kHistogramBuckets - 1) {
        w->String("+Inf");
      } else {
        w->String(std::to_string((uint64_t{1} << e.bucket) - 1));
      }
      w->Key("value").UInt(e.value);
      w->Key("exemplar_id").UInt(e.exemplar);
      w->EndObject();
    }
  }
  w->EndArray();
}

}  // namespace pmg::servetrace
