#include "pmg/frameworks/framework.h"

#include <memory>
#include <optional>
#include <utility>

#include "pmg/analytics/bc.h"
#include "pmg/analytics/bfs.h"
#include "pmg/analytics/cc.h"
#include "pmg/analytics/kcore.h"
#include "pmg/analytics/pagerank.h"
#include "pmg/analytics/sssp.h"
#include "pmg/analytics/tc.h"
#include "pmg/common/check.h"
#include "pmg/graph/csr_graph.h"
#include "pmg/graph/properties.h"
#include "pmg/metrics/metrics_session.h"
#include "pmg/runtime/runtime.h"
#include "pmg/tierscope/tierscope.h"
#include "pmg/trace/trace_session.h"
#include "pmg/whatif/journal.h"

namespace pmg::frameworks {

FrameworkProfile GetProfile(FrameworkKind kind) {
  FrameworkProfile p;
  p.kind = kind;
  switch (kind) {
    case FrameworkKind::kGalois:
      p.name = "Galois";
      p.sparse_worklists = true;
      p.async_execution = true;
      p.explicit_huge_pages = true;
      p.per_app_numa_policy = true;
      p.loads_both_directions = false;
      break;
    case FrameworkKind::kGap:
      p.name = "GAP";
      p.supports_kcore = false;
      p.node_ids_32bit = true;
      break;
    case FrameworkKind::kGraphIt:
      p.name = "GraphIt";
      p.vertex_programs_only = true;
      p.supports_bc = false;
      p.supports_kcore = false;
      p.node_ids_32bit = true;
      break;
    case FrameworkKind::kGbbs:
      p.name = "GBBS";
      break;
  }
  return p;
}

const std::vector<FrameworkKind>& AllFrameworks() {
  static const std::vector<FrameworkKind> kAll = {
      FrameworkKind::kGraphIt, FrameworkKind::kGap, FrameworkKind::kGbbs,
      FrameworkKind::kGalois};
  return kAll;
}

std::string AppName(App app) {
  switch (app) {
    case App::kBc:
      return "bc";
    case App::kBfs:
      return "bfs";
    case App::kCc:
      return "cc";
    case App::kKcore:
      return "kcore";
    case App::kPr:
      return "pr";
    case App::kSssp:
      return "sssp";
    case App::kTc:
      return "tc";
  }
  return "?";
}

const std::vector<App>& AllApps() {
  static const std::vector<App> kAll = {App::kBc,    App::kBfs, App::kCc,
                                        App::kKcore, App::kPr,  App::kSssp,
                                        App::kTc};
  return kAll;
}

AppInputs AppInputs::Prepare(graph::CsrTopology base,
                             uint64_t represented_vertices) {
  AppInputs in;
  in.base = std::move(base);
  in.weighted = in.base;
  graph::AssignRandomWeights(&in.weighted, 100, /*seed=*/12345);
  in.sym = graph::Symmetrize(in.base);
  in.tc_fwd = analytics::TcPrepare(in.base);
  in.source = graph::MaxOutDegreeVertex(in.base);
  in.represented_vertices =
      represented_vertices != 0 ? represented_vertices : in.base.num_vertices;
  return in;
}

namespace {

bool Supports(const FrameworkProfile& p, App app, const AppInputs& in) {
  if (app == App::kBc && !p.supports_bc) return false;
  if (app == App::kKcore && !p.supports_kcore) return false;
  if (p.node_ids_32bit && in.represented_vertices > 0x7fffffffull) {
    return false;
  }
  return true;
}

/// Placement the framework would pick for this app, unless overridden.
memsim::Placement PlacementFor(const FrameworkProfile& p, App app,
                               const RunConfig& cfg) {
  if (cfg.placement.has_value()) return *cfg.placement;
  if (p.per_app_numa_policy && (app == App::kBc || app == App::kPr)) {
    return memsim::Placement::kBlocked;
  }
  return memsim::Placement::kInterleaved;
}

memsim::PagePolicy PolicyFor(const FrameworkProfile& p, App app,
                             const RunConfig& cfg) {
  memsim::PagePolicy policy;
  policy.placement = PlacementFor(p, app, cfg);
  if (cfg.page_size.has_value()) {
    // Explicit page-size override: a Section 4.3-style page-size study,
    // so THP is off and the requested size is used verbatim.
    policy.page_size = *cfg.page_size;
    policy.thp = false;
  } else if (p.explicit_huge_pages) {
    policy.page_size = memsim::PageSizeClass::k2M;
  } else {
    policy.page_size = memsim::PageSizeClass::k4K;
    policy.thp = true;  // rely on the OS
  }
  return policy;
}

const graph::CsrTopology& TopologyFor(const FrameworkProfile& p, App app,
                                      const AppInputs& in) {
  switch (app) {
    case App::kSssp:
      return in.weighted;
    case App::kCc:
      // Galois hooks both endpoints of directed edges (non-vertex
      // operator), so it skips the symmetrized copy the dense systems
      // need; forced-vertex-program runs use the symmetric view too.
      return p.sparse_worklists && !p.vertex_programs_only ? in.base
                                                           : in.sym;
    case App::kKcore:
      return in.sym;
    case App::kTc:
      return in.tc_fwd;
    default:  // kBfs/kBc/kPr run on the unmodified input topology
      return in.base;
  }
}

}  // namespace

AppRunResult RunApp(FrameworkKind kind, App app, const AppInputs& inputs,
                    const RunConfig& config) {
  FrameworkProfile profile = GetProfile(kind);
  AppRunResult out;
  if (!Supports(profile, app, inputs)) return out;
  if (config.force_vertex_programs) {
    profile.vertex_programs_only = true;
    profile.sparse_worklists = false;
    profile.async_execution = false;
  }

  memsim::Machine machine(config.machine);
  machine.SetHostPool(config.host_threads == 0
                          ? memsim::HostPool::Default()
                          : memsim::HostPool::ForWorkers(config.host_threads));
  runtime::Runtime rt(&machine, config.threads);

  // The trace session covers the whole run, graph construction included:
  // the conservation law is over everything the machine bills.
  if (config.trace != nullptr) config.trace->Attach(&machine);

  // The journal recorder splices in front of the trace session's sink
  // (forwarding everything downstream), so it must attach after it and
  // detach before it.
  if (config.journal != nullptr) config.journal->Attach(&machine);

  // Same for the metrics session: the heatmap must see every allocation
  // and the counter mirrors cover everything the machine prices.
  if (config.metrics != nullptr) config.metrics->Attach(&machine);

  // And the tier scope: first-touch placements during graph construction
  // are most of where memory ends up living.
  if (config.tierscope != nullptr) config.tierscope->Attach(&machine);

  // Attach the sanitizer before the graph is materialized so its shadow
  // region table sees every allocation.
  std::unique_ptr<sancheck::Sancheck> checker;
  if (config.sanitize) {
    checker = std::make_unique<sancheck::Sancheck>(config.sancheck);
    checker->Attach(&machine);
  }

  // Likewise the fault injector: media errors during graph construction
  // are part of the fault model, not just the measured region.
  std::unique_ptr<faultsim::FaultInjector> injector;
  if (!config.faults.empty()) {
    injector = std::make_unique<faultsim::FaultInjector>(config.faults);
    machine.SetFaultHook(injector.get());
  }

  const memsim::PagePolicy policy = PolicyFor(profile, app, config);
  graph::GraphLayout layout;
  layout.policy = policy;
  layout.with_weights = app == App::kSssp;
  // Direction needs: pull pagerank reads in-edges; direction-optimizing
  // bfs reads both. Frameworks that always materialize both pay the
  // footprint on every app.
  const bool needs_in = app == App::kPr || (!profile.sparse_worklists &&
                                            app == App::kBfs);
  layout.load_in_edges = profile.loads_both_directions || needs_in;

  const graph::CsrTopology& topo = TopologyFor(profile, app, inputs);
  // Held in an optional so a simulated crash can unwind out of the run
  // while the regions are still torn down after the observer detaches.
  std::optional<graph::CsrGraph> graph;
  try {
    graph.emplace(&machine, topo, layout, "g");
    graph->Prefault(config.threads);

    analytics::AlgoOptions opt;
    opt.label_policy = policy;
    opt.pr_max_rounds = config.pr_max_rounds;

    const memsim::MachineStats before = machine.stats();
    switch (app) {
      case App::kBc: {
        const auto r =
            profile.sparse_worklists
                ? analytics::BcSparse(rt, *graph, inputs.source, opt)
                : analytics::BcDense(rt, *graph, inputs.source, opt);
        out.time_ns = r.time_ns;
        out.rounds = r.rounds;
        break;
      }
      case App::kBfs: {
        const auto r =
            profile.sparse_worklists
                ? analytics::BfsSparseWl(rt, *graph, inputs.source, opt)
                : analytics::BfsDirectionOpt(rt, *graph, inputs.source, opt);
        out.time_ns = r.time_ns;
        out.rounds = r.rounds;
        break;
      }
      case App::kCc: {
        analytics::CcResult r;
        if (profile.vertex_programs_only) {
          r = analytics::CcLabelProp(rt, *graph, opt);  // GraphIt
        } else if (profile.sparse_worklists) {
          // Galois: directed-input shortcutted label propagation.
          r = analytics::CcLabelPropSCDir(rt, *graph, opt);
        } else {
          r = analytics::CcUnionFind(rt, *graph, opt);  // GAP / GBBS
        }
        out.time_ns = r.time_ns;
        out.rounds = r.rounds;
        break;
      }
      case App::kKcore: {
        const auto r = profile.async_execution
                           ? analytics::KcoreAsync(rt, *graph, opt)
                           : analytics::KcoreDense(rt, *graph, opt);
        out.time_ns = r.time_ns;
        out.rounds = r.rounds;
        break;
      }
      case App::kPr: {
        const auto r = analytics::PrPull(rt, *graph, opt);
        out.time_ns = r.time_ns;
        out.rounds = r.rounds;
        break;
      }
      case App::kSssp: {
        const auto r =
            profile.vertex_programs_only
                ? analytics::SsspDenseWl(rt, *graph, inputs.source, opt)
                : analytics::SsspDeltaStep(rt, *graph, inputs.source, opt);
        out.time_ns = r.time_ns;
        out.rounds = r.rounds;
        break;
      }
      case App::kTc: {
        const auto r = analytics::Tc(rt, *graph);
        out.time_ns = r.time_ns;
        out.rounds = 1;
        break;
      }
    }
    out.stats = machine.stats() - before;
  } catch (const memsim::SimulatedCrash&) {
    out.crashed = true;
    // Close the interrupted epoch so time spent before the crash is
    // accounted; a second crash fired while closing is swallowed — this
    // machine is already dead.
    try {
      machine.CloseEpochIfOpen();
    } catch (const memsim::SimulatedCrash&) {
    }
    out.stats = machine.stats();  // whole run up to the crash
    if (machine.trace_sink() != nullptr) {
      machine.trace_sink()->OnInstant(memsim::TraceInstantKind::kCrash, 0,
                                      machine.now(), 1);
    }
  }
  if (injector != nullptr) {
    machine.SetFaultHook(nullptr);
    out.fault_injected = true;
    out.fault = injector->report();
  }
  if (checker != nullptr) {
    // Detach before the graph's regions are freed on return: the checker
    // must not outlive its view of the region table.
    checker->Detach(&machine);
    out.sanitized = true;
    out.sancheck = checker->summary();
  }
  // The journal recorder restores the trace session as the machine's
  // sink, so it detaches first.
  if (config.journal != nullptr) config.journal->Detach();
  // Detach while the graph is still mapped: the heatmap folds still-live
  // regions against the page table.
  if (config.metrics != nullptr) config.metrics->Detach();
  // The tier scope keeps its shadow of still-live pages across detach (the
  // misplacement join runs after the machine is gone).
  if (config.tierscope != nullptr) config.tierscope->Detach();
  if (config.trace != nullptr) config.trace->Detach();
  out.supported = true;
  return out;
}

}  // namespace pmg::frameworks
