#ifndef PMG_FRAMEWORKS_FRAMEWORK_H_
#define PMG_FRAMEWORKS_FRAMEWORK_H_

#include <optional>
#include <string>
#include <vector>

#include "pmg/analytics/common.h"
#include "pmg/faultsim/fault_injector.h"
#include "pmg/faultsim/fault_schedule.h"
#include "pmg/graph/topology.h"
#include "pmg/memsim/machine.h"
#include "pmg/memsim/stats.h"
#include "pmg/sancheck/sancheck.h"

/// \file framework.h
/// The four shared-memory frameworks of the paper's Section 6.1, expressed
/// as *profiles* over one algorithm library. Each profile encodes exactly
/// the restrictions and allocation habits the paper attributes the
/// performance differences to:
///
///   - Galois-like: sparse worklists, asynchronous & non-vertex operators,
///     explicit 2MB huge pages, per-application NUMA blocked/interleaved
///     choice, allocates only the edge direction(s) the algorithm needs.
///   - GAP-like: expert-written kernels, dense worklists,
///     direction-optimizing bfs (both edge directions always), 4KB pages
///     with THP, numactl interleaved; no kcore; 32-bit node ids.
///   - GraphIt-like: vertex programs only (no delta-stepping, plain label
///     propagation), dense worklists, both directions, 4KB + THP; no bc,
///     no kcore; 32-bit node ids.
///   - GBBS-like (Ligra): dense worklists, direction optimization,
///     union-find cc, bulk-synchronous kcore, both directions, 4KB + THP.

namespace pmg::metrics {
class MetricsSession;
}  // namespace pmg::metrics

namespace pmg::trace {
class TraceSession;
}  // namespace pmg::trace

namespace pmg::whatif {
class JournalRecorder;
}  // namespace pmg::whatif

namespace pmg::tierscope {
class TierScope;
}  // namespace pmg::tierscope

namespace pmg::frameworks {

enum class FrameworkKind { kGalois, kGap, kGraphIt, kGbbs };

enum class App { kBc, kBfs, kCc, kKcore, kPr, kSssp, kTc };

/// Static capabilities/habits of a framework.
struct FrameworkProfile {
  FrameworkKind kind = FrameworkKind::kGalois;
  std::string name;
  bool vertex_programs_only = false;
  bool sparse_worklists = false;
  bool async_execution = false;
  /// Explicit 2MB pages (Galois) vs 4KB + Transparent Huge Pages.
  bool explicit_huge_pages = false;
  /// Chooses NUMA blocked for topology-driven apps (bc, pr) and
  /// interleaved for data-driven ones; others interleave everything.
  bool per_app_numa_policy = false;
  /// Always materializes both in- and out-edges.
  bool loads_both_directions = true;
  bool supports_bc = true;
  bool supports_kcore = true;
  /// Uses signed 32-bit node ids: graphs with > 2^31 - 1 vertices (the
  /// paper's wdc12) cannot be represented.
  bool node_ids_32bit = false;
};

FrameworkProfile GetProfile(FrameworkKind kind);
const std::vector<FrameworkKind>& AllFrameworks();
std::string AppName(App app);
const std::vector<App>& AllApps();

/// Graph inputs shared by every framework run of one scenario: the
/// preprocessing (symmetrization, weight assignment, tc orientation) that
/// the paper excludes from measured time, done once.
struct AppInputs {
  graph::CsrTopology base;      // directed, unweighted
  graph::CsrTopology weighted;  // base + random weights (sssp)
  graph::CsrTopology sym;       // symmetrized (cc, kcore)
  graph::CsrTopology tc_fwd;    // degree-ordered forward orientation (tc)
  VertexId source = 0;          // max out-degree vertex (bc, bfs, sssp)
  /// Vertex count of the paper-scale original this mini graph stands in
  /// for; used to enforce 32-bit-id limits the way the paper hits them.
  uint64_t represented_vertices = 0;

  static AppInputs Prepare(graph::CsrTopology base,
                           uint64_t represented_vertices = 0);
};

/// One framework x app x machine execution request.
struct RunConfig {
  memsim::MachineConfig machine;
  uint32_t threads = 96;
  /// Host worker threads for the machine's phased pricing engine
  /// (docs/determinism.md). 0 = the process default (PMG_HOST_THREADS or
  /// hardware concurrency); 1 = serial host execution; N > 1 = exactly N
  /// host threads. Never changes a simulated result — every report is
  /// byte-identical across values of this knob.
  uint32_t host_threads = 0;
  /// Overrides of the profile's allocation habits (used by the Section 4
  /// studies: page-size and placement sweeps).
  std::optional<memsim::PageSizeClass> page_size;
  std::optional<memsim::Placement> placement;
  /// Cap on PageRank rounds (scenarios use the paper's 100).
  uint32_t pr_max_rounds = 100;
  /// Force bulk-synchronous vertex programs with dense worklists even on
  /// frameworks that support more (the Figure 11 "OS"/"OA" configurations:
  /// the same algorithms D-Galois runs, executed on the Optane machine).
  bool force_vertex_programs = false;
  /// Attach the pmg::sancheck dynamic-analysis layer for this run (epoch
  /// race detection + shadow bounds checking). Off by default: the
  /// checker changes no results but slows simulation.
  bool sanitize = false;
  sancheck::SancheckOptions sancheck;
  /// Fault schedule injected through the machine's fault hook. Empty (the
  /// default) attaches nothing: simulated timings stay bit-identical to a
  /// fault-free build.
  faultsim::FaultSchedule faults;
  /// Checkpoint every N algorithm rounds. RunApp itself never checkpoints
  /// (the plain kernels have no recovery path); the CLI and scenarios use
  /// this to route crash schedules to the faultsim recovery drivers.
  uint32_t checkpoint_every = 0;
  /// Attach this pmg::trace session for the run (per-bucket time
  /// attribution + Chrome trace). Like the sanitizer, tracing changes no
  /// simulated result. The session is attached before the graph is built
  /// and detached before the machine dies.
  trace::TraceSession* trace = nullptr;
  /// Attach this pmg::metrics session for the run (live counters, heatmap,
  /// sampling profiler). Same contract as `trace`: attached before the
  /// graph is built, detached before the machine dies, changes nothing.
  metrics::MetricsSession* metrics = nullptr;
  /// Attach this pmg::whatif cost-journal recorder for the run. Attached
  /// after (in front of) any trace session — it forwards every event
  /// downstream — and detached first. Recording changes no simulated
  /// result; the recorded journal re-prices the run bit-exactly.
  whatif::JournalRecorder* journal = nullptr;
  /// Attach this pmg::tierscope placement observer for the run (page
  /// lifecycle events, migration decision audit, per-epoch tier
  /// time-series). Same contract as the other seams: attached before the
  /// graph is built, detached before the machine dies, changes no
  /// simulated number (it only forces inline pricing).
  tierscope::TierScope* tierscope = nullptr;
};

struct AppRunResult {
  bool supported = false;
  SimNs time_ns = 0;
  uint64_t rounds = 0;
  memsim::MachineStats stats;  // delta over the measured region
  /// Filled when RunConfig::sanitize was set.
  bool sanitized = false;
  sancheck::SancheckSummary sancheck;
  /// Filled when RunConfig::faults had events armed.
  bool fault_injected = false;
  /// The schedule crashed the run: time_ns/rounds are unset and stats
  /// cover the whole run up to the crash.
  bool crashed = false;
  faultsim::FaultReport fault;
};

/// Builds a fresh simulated machine, materializes the graph per the
/// framework's habits, runs the framework's algorithm for `app`, and
/// returns simulated time and hardware counters.
AppRunResult RunApp(FrameworkKind kind, App app, const AppInputs& inputs,
                    const RunConfig& config);

}  // namespace pmg::frameworks

#endif  // PMG_FRAMEWORKS_FRAMEWORK_H_
