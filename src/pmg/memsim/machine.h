#ifndef PMG_MEMSIM_MACHINE_H_
#define PMG_MEMSIM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pmg/common/check.h"
#include "pmg/common/types.h"
#include "pmg/memsim/access_observer.h"
#include "pmg/memsim/cost_model.h"
#include "pmg/memsim/fault_hook.h"
#include "pmg/memsim/cpu_cache.h"
#include "pmg/memsim/host_pool.h"
#include "pmg/memsim/near_memory.h"
#include "pmg/memsim/numa_topology.h"
#include "pmg/memsim/page_table.h"
#include "pmg/memsim/stats.h"
#include "pmg/memsim/tier_hook.h"
#include "pmg/memsim/timings.h"
#include "pmg/memsim/tlb.h"
#include "pmg/memsim/trace_sink.h"

/// \file machine.h
/// The discrete-cost model of one machine. Application code (the runtime's
/// NumaArray accessors) reports every memory access; the machine prices it
/// through CPU cache -> TLB/page table -> NUMA placement -> medium
/// (DRAM, or near-memory-cached Optane PMM), accumulating per-virtual-thread
/// user/kernel clocks and per-channel byte counts. Execution proceeds in
/// *epochs* (one parallel region each): epoch duration is
/// max(latency critical path over threads, bandwidth roofline over
/// channels), after which the optional NUMA-migration daemon runs.
///
/// Virtual-thread *execution* stays deterministic and single-threaded: the
/// runtime interleaves bodies on one host thread, which is what makes
/// simulated results bit-reproducible. Host parallelism enters only through
/// the phased pricing engine (SetHostPool + docs/determinism.md): eligible
/// epochs record the priced-operation stream and settle it with
/// per-virtual-thread passes on a host worker pool plus a fixed-order
/// serial replay of the order-dependent residue, producing clocks, stats
/// and channel counters byte-identical to direct (serial) pricing.

namespace pmg::memsim {

// MachineKind lives in cost_model.h (the shared machine/whatif pricing
// vocabulary) and is re-exported here for all existing users.

/// Knobs of the Linux AutoNUMA-style migration model (Section 4.2).
struct MigrationConfig {
  bool enabled = false;
  /// Minimum simulated time between daemon scans (Linux AutoNUMA scans
  /// on a period, not per scheduler quantum).
  SimNs scan_interval_ns = 500000;
  /// One of every `hint_every` pages gets a hint fault armed per scan.
  uint32_t hint_every = 128;
  /// Remote-access count at which a page becomes a migration candidate.
  uint32_t min_remote_accesses = 4;
  /// Daemon bookkeeping cost per mapped page per scan.
  SimNs scan_per_page_ns = 3;
  /// TLB shootdown: base IPI cost charged to every thread, plus a per-page
  /// invalidation term.
  SimNs shootdown_base_ns = 4000;
  SimNs shootdown_per_page_ns = 60;
  /// Page-copy bandwidth during migration.
  double copy_bw_gbs = 8.0;
  /// Upper bound on migrations per scan (kernel rate limit).
  uint32_t max_migrations_per_scan = 64;
  /// Byte budget per scan (Linux rate-limits NUMA-balancing migration
  /// bandwidth); unused budget accumulates so an occasional huge page
  /// can still move.
  uint64_t migrate_bytes_per_scan = 512 * 1024;
  /// Huge pages take one hint fault for 512x the memory, so their
  /// migration trigger is proportionally higher.
  uint32_t huge_page_threshold_factor = 64;
};

/// Full static configuration of a machine.
struct MachineConfig {
  MachineKind kind = MachineKind::kDramMain;
  NumaTopology topology;
  MemoryTimings timings;
  TlbConfig tlb;
  MigrationConfig migration;
  /// Lines in each virtual thread's private cache (power of two).
  uint32_t cpu_cache_lines = 16384;
  /// Near-memory associativity (memory mode): 1 = direct-mapped, as the
  /// hardware; higher values model the Section 6.5 future-work question
  /// of improving the near-memory hit rate.
  uint32_t near_mem_ways = 1;
  /// Fraction (percent) of 2MB chunks THP manages to promote.
  uint32_t thp_percent = 70;
  uint64_t seed = 1;
  std::string name = "machine";

  /// Main-memory bytes per socket given the kind.
  uint64_t MainBytesPerSocket() const {
    return kind == MachineKind::kMemoryMode
               ? topology.pmm_bytes_per_socket
               : topology.dram_bytes_per_socket;
  }
};

/// Duration breakdown of one epoch, returned by EndEpoch.
struct EpochReport {
  SimNs total_ns = 0;
  SimNs latency_path_ns = 0;
  SimNs bandwidth_path_ns = 0;
  SimNs daemon_ns = 0;
  bool bandwidth_bound = false;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // --- Allocation ---

  /// Maps a region; physical frames are assigned lazily at first touch
  /// (minor fault), which is when the placement policy runs.
  RegionId Alloc(uint64_t bytes, const PagePolicy& policy,
                 std::string_view name);
  void Free(RegionId id);
  VirtAddr BaseOf(RegionId id) const;

  // --- Access costing (hot path) ---

  /// One load/store of `bytes` (<= one cache line) at `addr` by virtual
  /// thread `t`.
  void Access(ThreadId t, VirtAddr addr, uint32_t bytes, AccessType type);

  /// A streaming access of arbitrary length, charged line by line.
  void AccessRange(ThreadId t, VirtAddr addr, uint64_t bytes,
                   AccessType type);

  /// Pure-compute time on thread `t` (no memory traffic).
  void AddCompute(ThreadId t, SimNs ns);

  // --- App-direct storage I/O (an app-direct namespace carved out of
  // the PMM media; available in every machine kind, e.g. for checkpoints)
  // ---

  /// `remote`: the issuing core is on a different socket than `node`.
  void StorageRead(ThreadId t, uint64_t bytes, NodeId node, bool sequential,
                   bool remote = false);
  void StorageWrite(ThreadId t, uint64_t bytes, NodeId node, bool sequential,
                    bool remote = false);

  // --- Epochs ---

  /// Begins a parallel region executing on threads [0, active_threads).
  void BeginEpoch(uint32_t active_threads);
  /// Ends the region: computes its duration, advances the global clock,
  /// and runs the migration daemon.
  EpochReport EndEpoch();
  /// Ends any epoch opened implicitly by a stray Access (no-op otherwise).
  void CloseEpochIfOpen() {
    if (in_epoch_) EndEpoch();
  }
  bool in_epoch() const { return in_epoch_; }

  // --- Introspection ---

  /// The global clock advances only at EndEpoch (in both pricing modes),
  /// so this is exact even while an epoch records for phased pricing.
  SimNs now() const { return stats_.total_ns; }
  /// Reading stats mid-epoch first settles any recorded-but-unpriced
  /// operations (host-parallel pricing defers them), so every observed
  /// counter is byte-identical to serial pricing at the same program
  /// point — introspection can never see the pricing mode.
  const MachineStats& stats() const {
    if (host_recording_) const_cast<Machine*>(this)->HostSettle();
    return stats_;
  }
  const MachineConfig& config() const { return config_; }
  NodeId SocketOfThread(ThreadId t) const {
    return config_.topology.SocketOfThread(t);
  }
  uint32_t MaxThreads() const { return config_.topology.TotalThreads(); }
  /// Main-memory bytes across all sockets.
  uint64_t MainMemoryCapacity() const;
  /// Bytes currently backed by frames on `node`.
  uint64_t NodeBytesUsed(NodeId node) const;
  const NearMemoryCache* near_memory() const { return near_mem_.get(); }
  const PageTable& page_table() const { return pages_; }

  /// Drops all cached state (CPU caches, TLBs, near-memory) without
  /// unmapping pages — used between benchmark trials.
  void FlushVolatileState();

  // --- Dynamic analysis (sancheck and friends) ---

  /// Appends `observer` to the access-path dispatch chain. Observers are
  /// not owned and must outlive their attachment; events are dispatched in
  /// attachment order. Attach/detach outside an epoch so every observer
  /// sees balanced epoch events. With the chain empty the hot path pays
  /// one emptiness check and the machine prices bit-identically to an
  /// observer-free build.
  void AddObserver(AccessObserver* observer) {
    PMG_CHECK_MSG(!in_epoch_, "attach/detach an observer outside an epoch");
    PMG_CHECK(observer != nullptr);
    for (const AccessObserver* o : observers_) PMG_CHECK(o != observer);
    observers_.push_back(observer);
  }
  /// Removes `observer` from the chain (it must be attached).
  void RemoveObserver(AccessObserver* observer) {
    PMG_CHECK_MSG(!in_epoch_, "attach/detach an observer outside an epoch");
    for (size_t i = 0; i < observers_.size(); ++i) {
      if (observers_[i] == observer) {
        observers_.erase(observers_.begin() + static_cast<ptrdiff_t>(i));
        return;
      }
    }
    PMG_CHECK_MSG(false, "removing an observer that is not attached");
  }
  const std::vector<AccessObserver*>& observers() const { return observers_; }

  // --- Time attribution (pmg::trace) ---

  /// Attaches `sink` to the attribution path (nullptr detaches). The sink
  /// is not owned and must outlive its attachment; attach/detach outside
  /// an epoch. With no sink attached the machine prices bit-identically
  /// to a sink-free build (the hot path pays only a null check); with one
  /// attached, pricing is unchanged and every nanosecond added to the
  /// user/kernel clocks is additionally attributed to a TraceBucket.
  void SetTraceSink(TraceSink* sink) {
    PMG_CHECK_MSG(!in_epoch_, "attach/detach a trace sink outside an epoch");
    trace_ = sink;
    trace_cost_ = sink != nullptr && sink->WantsCostModel();
  }
  TraceSink* trace_sink() const { return trace_; }

  // --- Host-parallel pricing (docs/determinism.md) ---

  /// Attaches a host worker pool (nullptr detaches; the pool is not owned
  /// and must outlive its attachment; attach/detach outside an epoch).
  /// With a pool of more than one worker attached, epochs that carry no
  /// order-dependent instrumentation (no observers, no trace sink, no
  /// fault hook, migration daemon off) are priced in phases: the
  /// recording pass stays on the calling thread and preserves the exact
  /// serial schedule, per-virtual-thread simulation fans out across the
  /// pool, and the order-dependent residue (first-touch faults, the
  /// near-memory cache) replays serially in recorded global order. Every
  /// published number — clocks, stats, channel bytes — is byte-identical
  /// to pricing without a pool; host thread count is never observable.
  /// Ineligible epochs fall back to direct pricing unchanged.
  void SetHostPool(HostPool* pool) {
    PMG_CHECK_MSG(!in_epoch_, "attach/detach the host pool outside an epoch");
    host_pool_ = pool;
  }
  HostPool* host_pool() const { return host_pool_; }

  // --- Fault injection (faultsim) ---

  /// Attaches `hook` to the media-event path (nullptr detaches). The hook
  /// is not owned and must outlive its attachment; attach/detach outside
  /// an epoch. With no hook attached the machine prices bit-identically
  /// to a hook-free build (the hot path pays only a null check).
  void SetFaultHook(FaultHook* hook) {
    PMG_CHECK_MSG(!in_epoch_, "attach/detach a fault hook outside an epoch");
    fault_hook_ = hook;
  }
  FaultHook* fault_hook() const { return fault_hook_; }

  // --- Tier placement observability (pmg::tierscope) ---

  /// Attaches `hook` to the placement-decision path (nullptr detaches).
  /// The hook is not owned and must outlive its attachment; attach/detach
  /// outside an epoch. With no hook attached the machine prices
  /// bit-identically to a hook-free build (each decision site pays only a
  /// null check); with one attached, pricing is unchanged — the hook only
  /// observes decisions already priced — but epochs fall back to inline
  /// pricing (see HostPhasedEligible), which is itself byte-identical.
  void SetTierHook(TierHook* hook) {
    PMG_CHECK_MSG(!in_epoch_, "attach/detach a tier hook outside an epoch");
    tier_ = hook;
  }
  TierHook* tier_hook() const { return tier_; }

 private:
  struct ThreadState {
    double user_ns = 0;  // fractional: per-miss cost is latency / MLP
    SimNs kernel_ns = 0;
    uint64_t last_line = ~0ull;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<CpuCache> cache;
    /// Trace attribution mirrors of the two clocks, maintained only while
    /// a TraceSink is attached. Each user-side add to user_ns lands in one
    /// user_bucket; each kernel-side add in one kernel_bucket.
    double user_bucket[kTraceBucketCount] = {};
    SimNs kernel_bucket[kTraceBucketCount] = {};
    /// Per-CostClass event counts, maintained only while the attached
    /// sink wants the cost model (pmg::whatif journaling). Counts never
    /// feed pricing.
    uint64_t cost_count[kCostClassCount] = {};
  };

  /// Kernel-cost breakdown of the last migration-daemon scan. The _raw
  /// fields are the pre-pmm_kernel_factor integral costs, recorded for
  /// the whatif cost journal.
  struct DaemonCost {
    SimNs scan = 0;
    SimNs move = 0;
    SimNs remap = 0;
    SimNs shootdown = 0;
    SimNs scan_raw = 0;
    SimNs shootdown_raw = 0;
    uint64_t migrated = 0;
    uint64_t migrated_bytes = 0;
  };

  /// Byte counters of one socket's channels for the current epoch
  /// (shared with the whatif re-pricer via cost_model.h).
  using ChannelBytes = ChannelByteCounts;

  ThreadState& Thread(ThreadId t);
  /// Handles a minor fault: places the page per policy and maps frames.
  void HandleFault(ThreadId t, const PageLookup& lk);
  /// Delivers an uncorrectable media error on the page under `lk`: charges
  /// the machine-check handler, retires the poisoned frames (capacity is
  /// lost), remaps the page to fresh frames and notifies the fault hook
  /// of the data loss.
  void QuarantinePage(ThreadId t, const PageLookup& lk);
  /// Picks the home node for a faulting page.
  NodeId PlacePage(const Region& region, uint32_t page_index,
                   NodeId toucher_socket) const;
  /// Allocates `n` consecutive 4KB frames on `node` (or any node with
  /// room, preferring `node`). Returns kInvalidFrame when memory is full.
  PhysPage AllocFrames(NodeId node, uint64_t n);
  void FreeFrames(NodeId node, PhysPage frame, uint64_t n);
  NodeId NodeOfFrame(PhysPage frame) const;
  SimNs KernelCost(SimNs dram_cost) const;
  /// Runs one migration-daemon scan; returns its kernel cost. Always
  /// records the scan/move/remap/shootdown breakdown in last_daemon_.
  SimNs RunMigrationDaemon();

  // Every add to a thread's clocks goes through one of these so no cost
  // site can exist without a bucket (the trace conservation law).
  void ChargeUser(ThreadState& ts, TraceBucket b, double ns) {
    ts.user_ns += ns;
    if (trace_ != nullptr) [[unlikely]] {
      ts.user_bucket[static_cast<size_t>(b)] += ns;
    }
  }
  void ChargeKernel(ThreadState& ts, TraceBucket b, SimNs ns) {
    ts.kernel_ns += ns;
    if (trace_ != nullptr) [[unlikely]] {
      ts.kernel_bucket[static_cast<size_t>(b)] += ns;
    }
  }
  /// Counts one priced event for the whatif cost journal (cost-model
  /// sinks only; counts never feed pricing).
  void CountCost(ThreadState& ts, CostClass c) {
    if (trace_cost_) [[unlikely]] {
      ++ts.cost_count[static_cast<size_t>(c)];
    }
  }
  /// Attributes access-path user time to a region (tracing only).
  void ChargeRegion(RegionId id, double ns);
  /// Converts the critical thread's fractional buckets to integer
  /// nanoseconds, folds in roofline/daemon time, and delivers the epoch
  /// to the attached sink (tracing only; called from EndEpoch).
  void EmitEpochTrace(uint64_t epoch_index, const EpochReport& report,
                      SimNs start_ns, uint32_t crit_index, SimNs crit_user,
                      SimNs crit_kernel, double remote_factor);
  void ChargeChannel(NodeId node, bool pmm, bool remote, bool sequential,
                     bool write, uint64_t bytes);
  /// Epoch time of one socket's channels. `remote_factor` scales the
  /// interconnect rows down (fault injection of a degraded link); 1.0
  /// takes a branch-free path that is bit-identical to the pre-fault
  /// pricing.
  SimNs ChannelTime(const ChannelBytes& ch, double remote_factor = 1.0) const;

  // --- Phased pricing (machine_phased.cc; see docs/determinism.md) ---

  /// Kinds of recorded priced operations.
  enum HostRecKind : uint8_t { kHostAccess = 0, kHostCompute, kHostStorage };
  /// Pass-1/2 result bits stored in HostRec::tag.
  enum HostTag : uint16_t {
    kHostTagMiss = 1,   ///< CPU-cache miss: reaches the memory system.
    kHostTagSeq = 2,    ///< Line-sequential at access time.
    kHostTagWrite = 4,  ///< IsWrite(type).
    kHostTagFault = 8,  ///< Page unmapped at pass-1 time: pass 2 resolves.
  };
  /// One recorded priced operation (16 bytes).
  struct HostRec {
    uint64_t a = 0;     ///< access: vaddr; compute: ns; storage: bytes
    uint32_t b = 0;     ///< storage: node
    uint8_t kind = 0;   ///< HostRecKind
    uint8_t flags = 0;  ///< access: AccessType; storage: bit0 write,
                        ///< bit1 sequential, bit2 remote
    uint16_t tag = 0;   ///< HostTag bits, written by passes 1-2
  };
  /// The (up to) two user-clock charges of one operation, resolved by
  /// passes 1-2 and accumulated in recorded order by pass 3. Zero-valued
  /// adds are exact no-ops on the non-negative user clock, so absent
  /// charges cost nothing and change no bits.
  struct HostPriced {
    double walk_ns = 0;  ///< TLB-walk charge (first add in serial order).
    double main_ns = 0;  ///< Hit/medium/compute/storage charge (second).
  };
  /// Integer shadow counters one pass-1 worker accumulates for its
  /// virtual thread; folded into stats_/channels_ at settle (integer
  /// sums are order-free, so the fold is byte-identical to interleaved
  /// direct-mode increments).
  struct HostShadow {
    uint64_t accesses = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t cpu_cache_hits = 0;
    uint64_t cpu_cache_misses = 0;
    uint64_t tlb_hits = 0;
    uint64_t tlb_misses = 0;
    SimNs page_walk_ns = 0;
    uint64_t local_accesses = 0;
    uint64_t remote_accesses = 0;
    uint64_t dram_bytes = 0;
    uint64_t storage_read_bytes = 0;
    uint64_t storage_write_bytes = 0;
    std::vector<ChannelByteCounts> channels;  // per socket
  };
  /// Per-virtual-thread recording and settle state.
  struct HostLog {
    std::vector<HostRec> rec;
    std::vector<HostPriced> priced;
    /// Indices into `rec` whose charges are order-dependent (faults,
    /// memory-mode medium); resolved serially by pass 2 in global order.
    std::vector<uint32_t> pass2;
    HostShadow shadow;
    uint32_t hint = ~0u;  ///< LookupView per-thread region cache.
  };

  /// Entries buffered before a mid-epoch settle bounds recording memory.
  static constexpr uint64_t kHostSettleEntries = uint64_t{1} << 21;

  bool HostPhasedEligible(uint32_t active_threads) const {
    return host_pool_ != nullptr && host_pool_->workers() > 1 &&
           active_threads > 1 && observers_.empty() && trace_ == nullptr &&
           fault_hook_ == nullptr && tier_ == nullptr &&
           !config_.migration.enabled;
  }
  void HostBeginRecord();
  /// Prices the recorded prefix (parallel pass 1, serial pass 2 in global
  /// order, parallel pass 3) and clears the logs; recording continues.
  void HostSettle();
  void HostPass1(ThreadId t);
  void HostPass2();
  void HostPass3(ThreadId t);

  /// Appends one operation to thread `t`'s log, maintaining the global
  /// turn log that pass 2 replays in exact serial order.
  void HostRecord(ThreadId t, uint64_t a, uint32_t b, uint8_t kind,
                  uint8_t flags) {
    host_logs_[t].rec.push_back(HostRec{a, b, kind, flags, 0});
    if (t != host_last_vt_) {
      if (host_logs_[t].rec.size() == 1) host_active_.push_back(t);
      host_runs_.emplace_back(t, 0u);
      host_last_vt_ = t;
    }
    ++host_runs_.back().second;
    if (++host_pending_ >= kHostSettleEntries) HostSettle();
  }

  MachineConfig config_;
  PageTable pages_;
  std::unique_ptr<NearMemoryCache> near_mem_;
  std::vector<ThreadState> threads_;
  std::vector<ChannelBytes> channels_;  // per socket
  /// Per-node frame accounting.
  std::vector<uint64_t> frames_used_;
  std::vector<uint64_t> frames_capacity_;
  /// Free lists of (frame, count) runs per node, from migrations/frees.
  std::vector<std::vector<std::pair<PhysPage, uint64_t>>> free_runs_;
  uint64_t frame_stride_ = 0;  // frames per node id-space
  MachineStats stats_;
  uint32_t epoch_active_threads_ = 0;
  bool in_epoch_ = false;
  uint64_t scan_counter_ = 0;
  SimNs last_scan_ns_ = 0;
  uint64_t migrate_budget_bytes_ = 0;
  double inv_mlp_ = 1.0;
  /// Not owned; empty when no dynamic analysis is attached (the common
  /// case — the hot path pays only this emptiness check). Dispatch is in
  /// attachment order.
  std::vector<AccessObserver*> observers_;
  /// Not owned; null when no fault injection is attached (the hot path
  /// pays only a null check).
  FaultHook* fault_hook_ = nullptr;
  /// Not owned; null when no time attribution is attached (same
  /// zero-cost-when-empty contract as the other seams).
  TraceSink* trace_ = nullptr;
  /// Cached trace_->WantsCostModel() so the hot path pays one bool test.
  bool trace_cost_ = false;
  /// Not owned; null when no tier-placement observability is attached
  /// (every decision site pays only a null check).
  TierHook* tier_ = nullptr;
  /// Per-socket near-memory miss fill/writeback bytes for the current
  /// epoch, maintained only when trace_cost_.
  std::vector<EpochTrace::CostRecord::SocketFill> cost_fills_;
  DaemonCost last_daemon_;
  /// Not owned; null when no host pool is attached (direct pricing).
  HostPool* host_pool_ = nullptr;
  /// True while the current epoch records operations for phased pricing.
  bool host_recording_ = false;
  /// Per-virtual-thread operation logs (indexed by ThreadId; sized
  /// lazily to the machine's thread count on first phased epoch).
  std::vector<HostLog> host_logs_;
  /// Global turn log: (thread, run length) in exact recording order.
  /// Pass 2 walks it with per-thread cursors to replay the serial
  /// schedule over the order-dependent residue.
  std::vector<std::pair<uint32_t, uint32_t>> host_runs_;
  uint32_t host_last_vt_ = ~0u;
  /// Recorded-but-unsettled entries across all threads.
  uint64_t host_pending_ = 0;
  /// Threads with a non-empty log this settle window, in first-record
  /// order (the settle fold iterates this fixed order).
  std::vector<ThreadId> host_active_;
  /// Per-region access-path scratch for the current epoch, maintained
  /// only while tracing; indexed by RegionId, compacted via
  /// epoch_regions_ at epoch end.
  std::vector<double> region_user_;
  std::vector<uint64_t> region_accesses_;
  std::vector<RegionId> epoch_regions_;
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_MACHINE_H_
