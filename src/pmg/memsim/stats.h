#ifndef PMG_MEMSIM_STATS_H_
#define PMG_MEMSIM_STATS_H_

#include <cstdint>
#include <string>

#include "pmg/common/types.h"

/// \file stats.h
/// Aggregate hardware-event counters of a simulated run — the model's
/// equivalent of the paper's VTune / Platform Profiler measurements.

namespace pmg::memsim {

struct MachineStats {
  // Access mix.
  uint64_t accesses = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;

  // CPU cache.
  uint64_t cpu_cache_hits = 0;
  uint64_t cpu_cache_misses = 0;

  // Translation.
  uint64_t tlb_hits = 0;
  uint64_t tlb_misses = 0;
  SimNs page_walk_ns = 0;

  // Kernel events.
  uint64_t minor_faults = 0;
  uint64_t hint_faults = 0;
  uint64_t migrations = 0;
  uint64_t migration_scans = 0;
  uint64_t tlb_shootdowns = 0;

  // Placement.
  uint64_t local_accesses = 0;
  uint64_t remote_accesses = 0;
  uint64_t pages_mapped_small = 0;
  uint64_t pages_mapped_huge = 0;

  // Near-memory (memory mode only).
  uint64_t near_mem_hits = 0;
  uint64_t near_mem_misses = 0;
  uint64_t near_mem_writebacks = 0;

  // Traffic (bytes).
  uint64_t dram_bytes = 0;
  uint64_t pmm_read_bytes = 0;
  uint64_t pmm_write_bytes = 0;
  uint64_t storage_read_bytes = 0;
  uint64_t storage_write_bytes = 0;

  // Time. total_ns advances once per epoch by
  // max(latency critical path, bandwidth roofline) plus daemon overheads.
  SimNs total_ns = 0;
  SimNs user_ns = 0;
  SimNs kernel_ns = 0;
  uint64_t epochs = 0;
  /// Epochs in which the bandwidth roofline (not the latency path) set the
  /// epoch duration.
  uint64_t bandwidth_bound_epochs = 0;

  // Sancheck (only nonzero while a sancheck observer is attached).
  /// Data-race violations reported by the epoch race detector, and the
  /// number of epochs that contained at least one.
  uint64_t sancheck_races = 0;
  uint64_t sancheck_race_epochs = 0;

  // Fault injection (only nonzero while a fault hook is attached).
  /// Uncorrectable media errors delivered, and 4KB frames retired by the
  /// quarantine-and-remap path.
  uint64_t media_ue_events = 0;
  uint64_t pages_quarantined = 0;
  /// Transient-fault retries and the stall time they charged.
  uint64_t fault_retries = 0;
  SimNs fault_stall_ns = 0;
  /// Machine-check handler time charged for UE recovery.
  SimNs machine_check_ns = 0;
  /// Epochs priced with a degraded (factor < 1) remote link.
  uint64_t link_degraded_epochs = 0;

  // Trace attribution (only nonzero while a TraceSink is attached).
  /// Simulated time attributed to TraceBucket's — equals the user+kernel
  /// time of the traced epochs (the conservation law; see trace_sink.h).
  SimNs trace_attributed_ns = 0;
  /// Epochs that delivered an EpochTrace to the attached sink.
  uint64_t traced_epochs = 0;

  /// Element-wise difference (for measuring one phase of a run).
  MachineStats operator-(const MachineStats& other) const;

  double NearMemHitRate() const {
    const uint64_t n = near_mem_hits + near_mem_misses;
    return n == 0 ? 1.0 : static_cast<double>(near_mem_hits) / n;
  }
  double TlbMissRate() const {
    const uint64_t n = tlb_hits + tlb_misses;
    return n == 0 ? 0.0 : static_cast<double>(tlb_misses) / n;
  }
  double LocalAccessFraction() const {
    const uint64_t n = local_accesses + remote_accesses;
    return n == 0 ? 1.0 : static_cast<double>(local_accesses) / n;
  }
  double TotalSeconds() const { return static_cast<double>(total_ns) / 1e9; }

  /// Multi-line human-readable dump.
  std::string ToString() const;
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_STATS_H_
