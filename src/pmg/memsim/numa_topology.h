#ifndef PMG_MEMSIM_NUMA_TOPOLOGY_H_
#define PMG_MEMSIM_NUMA_TOPOLOGY_H_

#include <cstdint>

#include "pmg/common/types.h"

/// \file numa_topology.h
/// Socket layout of the simulated machine: how many NUMA nodes exist, how
/// much DRAM and PMM each carries, and which socket runs each hardware
/// thread.

namespace pmg::memsim {

/// Static description of the machine's NUMA layout.
struct NumaTopology {
  uint32_t sockets = 2;
  /// Physical cores per socket. Hardware threads are assigned to sockets by
  /// filling the physical cores of socket 0, then socket 1, ..., then the
  /// hyperthread siblings in the same order — matching the paper's machine,
  /// where runs with t <= 24 threads stay entirely on socket 0 (Figure 4b).
  uint32_t cores_per_socket = 24;
  /// SMT ways (2 = hyperthreading on the paper's machine: 96 threads).
  uint32_t smt = 2;
  /// DRAM capacity per socket (bytes). In memory mode this is the
  /// near-memory cache size of the socket.
  uint64_t dram_bytes_per_socket = 0;
  /// Optane PMM capacity per socket (bytes); 0 on DRAM-only machines.
  uint64_t pmm_bytes_per_socket = 0;

  /// Total schedulable hardware threads.
  uint32_t TotalThreads() const { return sockets * cores_per_socket * smt; }

  /// Socket that hardware thread `t` runs on (block mapping, see above).
  NodeId SocketOfThread(ThreadId t) const {
    return (t / cores_per_socket) % sockets;
  }
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_NUMA_TOPOLOGY_H_
