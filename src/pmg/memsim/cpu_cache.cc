#include "pmg/memsim/cpu_cache.h"

#include "pmg/common/check.h"

namespace pmg::memsim {

CpuCache::CpuCache(uint32_t lines) {
  PMG_CHECK(lines > 0 && (lines & (lines - 1)) == 0);
  mask_ = lines - 1;
  tags_.assign(lines, ~0ull);
}

void CpuCache::Clear() { tags_.assign(tags_.size(), ~0ull); }

}  // namespace pmg::memsim
