#ifndef PMG_MEMSIM_HOST_POOL_H_
#define PMG_MEMSIM_HOST_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file host_pool.h
/// A persistent pool of *host* threads that the machine's phased pricing
/// engine fans per-virtual-thread work onto (docs/determinism.md). The
/// pool is pure mechanism: it runs `count` independent tasks to
/// completion and blocks. Nothing about simulated results may depend on
/// it — tasks must write disjoint state, and the task *execution order*
/// is deliberately perturbable (SetShuffleSeed) so the schedule-stress
/// tests can prove that published numbers are order-independent.
///
/// Worker count comes from PMG_HOST_THREADS (default: hardware
/// concurrency) for the process-wide Default() pool; tests and the
/// --host-threads CLI flag pin exact counts through ForWorkers().

namespace pmg::memsim {

class HostPool {
 public:
  /// Upper bound on the pool width: guards against typo'd or truncated
  /// PMG_HOST_THREADS / --host-threads values spawning an absurd number
  /// of OS threads.
  static constexpr uint32_t kMaxWorkers = 4096;

  /// `workers` is the total host concurrency: the calling thread plus
  /// `workers - 1` pooled threads. Must be in [1, kMaxWorkers]; a
  /// 1-worker pool runs every task inline on the caller.
  explicit HostPool(uint32_t workers);
  ~HostPool();

  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;

  uint32_t workers() const { return workers_; }

  /// Runs `fn(i)` for every i in [0, count) across the pool (the caller
  /// participates) and returns when all tasks finished. Tasks must be
  /// independent: they may not touch shared mutable state, and no result
  /// may depend on which worker ran a task or in what order.
  ///
  /// Single driver: pools are cached per width and shared by every
  /// machine of that width, so exactly one host thread may be inside
  /// RunTasks at a time and tasks must not call RunTasks themselves.
  /// Both violations die on a PMG_CHECK rather than racing silently.
  void RunTasks(uint32_t count, const std::function<void(uint32_t)>& fn);

  /// Seed != 0 makes every subsequent RunTasks dispatch its tasks in a
  /// seed-derived shuffled order (varying per call); 0 restores natural
  /// order. Results must be byte-identical either way — this knob exists
  /// so the stress tests can prove it. Safe to call from any thread; the
  /// new seed takes effect at the next RunTasks.
  void SetShuffleSeed(uint64_t seed) {
    shuffle_seed_.store(seed, std::memory_order_relaxed);
  }

  /// The process-wide pool sized by PMG_HOST_THREADS (default: hardware
  /// concurrency). Returns nullptr when the resolved width is 1 — serial
  /// host execution needs no pool.
  static HostPool* Default();

  /// A cached pool of exactly `workers` host threads (nullptr when
  /// `workers` <= 1). Pools are shared per width and live for the
  /// process; machines only borrow them (see the RunTasks single-driver
  /// contract).
  static HostPool* ForWorkers(uint32_t workers);

 private:
  void WorkerLoop();
  /// Claims and runs tasks of batch `gen` until the batch drains or
  /// retires; returns how many tasks this thread finished. A claim is a
  /// CAS on ticket_, so it can only succeed while ticket_ still carries
  /// `gen` — a worker holding stale batch state can never touch a newer
  /// batch's slots, order_, or fn.
  uint32_t DrainBatch(uint32_t gen, uint32_t count,
                      const std::function<void(uint32_t)>& fn);

  const uint32_t workers_;
  std::atomic<uint64_t> shuffle_seed_{0};
  uint64_t shuffle_calls_ = 0;  // mutated only by the single driver

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  bool stopping_ = false;
  uint32_t task_count_ = 0;
  const std::function<void(uint32_t)>* task_fn_ = nullptr;
  /// Shuffled task ids for the current batch; empty = natural order.
  std::vector<uint32_t> order_;
  /// Current batch ticket: (generation & 0xffffffff) << 32 | next task
  /// index. Packing the generation into the same atomic as the index
  /// binds every task claim to its batch (see DrainBatch).
  std::atomic<uint64_t> ticket_{0};
  std::atomic<uint32_t> done_{0};
  /// Single-driver gate: set for the duration of each RunTasks so a
  /// concurrent or reentrant call fails loudly instead of racing.
  std::atomic<bool> busy_{false};
  std::vector<std::thread> threads_;
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_HOST_POOL_H_
