#ifndef PMG_MEMSIM_HOST_POOL_H_
#define PMG_MEMSIM_HOST_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file host_pool.h
/// A persistent pool of *host* threads that the machine's phased pricing
/// engine fans per-virtual-thread work onto (docs/determinism.md). The
/// pool is pure mechanism: it runs `count` independent tasks to
/// completion and blocks. Nothing about simulated results may depend on
/// it — tasks must write disjoint state, and the task *execution order*
/// is deliberately perturbable (SetShuffleSeed) so the schedule-stress
/// tests can prove that published numbers are order-independent.
///
/// Worker count comes from PMG_HOST_THREADS (default: hardware
/// concurrency) for the process-wide Default() pool; tests and the
/// --host-threads CLI flag pin exact counts through ForWorkers().

namespace pmg::memsim {

class HostPool {
 public:
  /// `workers` is the total host concurrency: the calling thread plus
  /// `workers - 1` pooled threads. Must be >= 1; a 1-worker pool runs
  /// every task inline on the caller.
  explicit HostPool(uint32_t workers);
  ~HostPool();

  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;

  uint32_t workers() const { return workers_; }

  /// Runs `fn(i)` for every i in [0, count) across the pool (the caller
  /// participates) and returns when all tasks finished. Tasks must be
  /// independent: they may not touch shared mutable state, and no result
  /// may depend on which worker ran a task or in what order. Not
  /// reentrant: tasks must not call RunTasks.
  void RunTasks(uint32_t count, const std::function<void(uint32_t)>& fn);

  /// Seed != 0 makes every subsequent RunTasks dispatch its tasks in a
  /// seed-derived shuffled order (varying per call); 0 restores natural
  /// order. Results must be byte-identical either way — this knob exists
  /// so the stress tests can prove it.
  void SetShuffleSeed(uint64_t seed) { shuffle_seed_ = seed; }

  /// The process-wide pool sized by PMG_HOST_THREADS (default: hardware
  /// concurrency). Returns nullptr when the resolved width is 1 — serial
  /// host execution needs no pool.
  static HostPool* Default();

  /// A cached pool of exactly `workers` host threads (nullptr when
  /// `workers` <= 1). Pools are shared per width and live for the
  /// process; machines only borrow them.
  static HostPool* ForWorkers(uint32_t workers);

 private:
  void WorkerLoop();

  const uint32_t workers_;
  uint64_t shuffle_seed_ = 0;
  uint64_t shuffle_calls_ = 0;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  bool stopping_ = false;
  uint32_t task_count_ = 0;
  const std::function<void(uint32_t)>* task_fn_ = nullptr;
  /// Shuffled task ids for the current batch; empty = natural order.
  std::vector<uint32_t> order_;
  std::atomic<uint32_t> next_{0};
  std::atomic<uint32_t> done_{0};
  std::vector<std::thread> threads_;
};

}  // namespace pmg::memsim

#endif  // PMG_MEMSIM_HOST_POOL_H_
